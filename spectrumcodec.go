package spectral

// This file is the wire/storage codec for Spectrum values: an exact
// binary encoding of the eigenpairs (bit-patterns of every float64 are
// preserved verbatim) used by the persistent spectrum store
// (internal/specstore) and by shard-routed peer lookups between
// spectrald instances. The clique-model graph inside a Spectrum is NOT
// encoded — it is a deterministic function of (netlist, model), so the
// decoder rebuilds it from the netlist the caller supplies. That keeps
// entries compact (O(n·d) floats, not O(n²) edges) and makes a decoded
// spectrum structurally identical to a freshly computed one.

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/linalg"
)

// specMagic opens every encoded spectrum; the version digit guards
// format evolution.
const specMagic = "SPECV1\n"

// EncodeSpectrum serializes sp into the binary interchange format:
//
//	"SPECV1\n"
//	uvarint modules
//	uvarint model
//	uvarint pairs
//	pairs   × 8B little-endian float64 bits (eigenvalues, ascending)
//	modules × pairs × 8B float64 bits (eigenvector matrix, row-major)
//
// The encoding is exact: DecodeSpectrum returns bit-identical
// eigenpairs.
func EncodeSpectrum(sp *Spectrum) ([]byte, error) {
	if sp == nil || sp.dec == nil {
		return nil, fmt.Errorf("spectral: encode nil spectrum")
	}
	n, pairs := sp.modules, sp.dec.D()
	vec := sp.dec.Vectors
	if vec == nil || vec.Rows != n || vec.Cols != pairs || len(vec.Data) != n*pairs {
		return nil, fmt.Errorf("spectral: encode inconsistent spectrum (%d modules, %d pairs, %dx%d vectors)",
			n, pairs, vecRows(vec), vecCols(vec))
	}
	var hdr [3 * binary.MaxVarintLen64]byte
	hn := binary.PutUvarint(hdr[:], uint64(n))
	hn += binary.PutUvarint(hdr[hn:], uint64(sp.Model()))
	hn += binary.PutUvarint(hdr[hn:], uint64(pairs))
	out := make([]byte, 0, len(specMagic)+hn+8*(pairs+n*pairs))
	out = append(out, specMagic...)
	out = append(out, hdr[:hn]...)
	var b [8]byte
	for _, v := range sp.dec.Values {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		out = append(out, b[:]...)
	}
	for _, v := range vec.Data {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		out = append(out, b[:]...)
	}
	return out, nil
}

func vecRows(m *linalg.Dense) int {
	if m == nil {
		return 0
	}
	return m.Rows
}

func vecCols(m *linalg.Dense) int {
	if m == nil {
		return 0
	}
	return m.Cols
}

// DecodeSpectrum parses data (produced by EncodeSpectrum) into a
// Spectrum of h, rebuilding the clique-model graph from the netlist.
// The caller is responsible for handing it the same netlist the
// spectrum was computed from — the decoder verifies the module count
// (the only structural check possible) and every frame bound, and
// returns an error rather than a malformed spectrum for any truncated,
// oversized or inconsistent input. It never panics on arbitrary bytes.
func DecodeSpectrum(data []byte, h *Netlist) (*Spectrum, error) {
	if h == nil {
		return nil, fmt.Errorf("spectral: decode spectrum: nil netlist")
	}
	if len(data) < len(specMagic) || string(data[:len(specMagic)]) != specMagic {
		return nil, fmt.Errorf("spectral: decode spectrum: bad magic")
	}
	rest := data[len(specMagic):]
	readUvarint := func(what string) (int, error) {
		v, k := binary.Uvarint(rest)
		if k <= 0 || v > math.MaxInt32 {
			return 0, fmt.Errorf("spectral: decode spectrum: bad %s", what)
		}
		rest = rest[k:]
		return int(v), nil
	}
	modules, err := readUvarint("module count")
	if err != nil {
		return nil, err
	}
	modelNum, err := readUvarint("model")
	if err != nil {
		return nil, err
	}
	pairs, err := readUvarint("pair count")
	if err != nil {
		return nil, err
	}
	if modules != h.NumModules() {
		return nil, fmt.Errorf("spectral: decode spectrum: encoded for %d modules, netlist has %d", modules, h.NumModules())
	}
	if pairs < 1 || pairs > modules {
		return nil, fmt.Errorf("spectral: decode spectrum: %d pairs for %d modules", pairs, modules)
	}
	model := Model(modelNum)
	cm, err := model.clique()
	if err != nil {
		return nil, fmt.Errorf("spectral: decode spectrum: %w", err)
	}
	want := 8 * (pairs + modules*pairs)
	if len(rest) != want {
		return nil, fmt.Errorf("spectral: decode spectrum: %d payload bytes, want %d", len(rest), want)
	}
	values := make([]float64, pairs)
	for i := range values {
		values[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
	}
	rest = rest[8*pairs:]
	vec := linalg.NewDense(modules, pairs)
	for i := range vec.Data {
		vec.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
	}
	for _, v := range values {
		if math.IsNaN(v) {
			return nil, fmt.Errorf("spectral: decode spectrum: NaN eigenvalue")
		}
	}
	g, err := graph.FromHypergraph(h, cm, 0)
	if err != nil {
		return nil, fmt.Errorf("spectral: decode spectrum: rebuild graph: %w", err)
	}
	return &Spectrum{
		modules: modules,
		model:   cm,
		g:       g,
		dec:     &eigen.Decomposition{Values: values, Vectors: vec},
	}, nil
}
