package spectral

import (
	"context"
	"testing"

	"repro/internal/trace"
)

// TestPartitionEmitsFullSpanTree pins the observable shape of one
// end-to-end MELO partition: every pipeline stage emits a named span,
// nested exactly as the pipeline nests. The test is deliberately
// strict — a stage that stops emitting, double-emits, or re-parents
// its span is a regression in the observability contract, not a
// cosmetic change.
func TestPartitionEmitsFullSpanTree(t *testing.T) {
	ring := trace.NewRing(256)
	tracer := trace.New(ring)
	ctx := trace.WithTracer(context.Background(), tracer)

	h := smallBenchmark(t) // prim1 at 0.15: n <= 256, connected, dense-direct rung
	p, err := PartitionCtx(ctx, h, Options{K: 4, D: 4, Method: MELO})
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 4 {
		t.Fatalf("K = %d", p.K)
	}

	recs := ring.Snapshot()
	byName := map[string][]trace.SpanRecord{}
	byID := map[uint64]trace.SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = append(byName[r.Name], r)
		byID[r.Span] = r
	}

	one := func(name string) trace.SpanRecord {
		t.Helper()
		rs := byName[name]
		if len(rs) != 1 {
			t.Fatalf("span %q recorded %d times, want exactly 1 (all: %v)", name, len(rs), names(recs))
		}
		return rs[0]
	}
	childOf := func(child, parent string) {
		t.Helper()
		c, p := one(child), one(parent)
		if c.Parent != p.Span {
			t.Errorf("span %q has parent id %d, want %q (id %d)", child, c.Parent, parent, p.Span)
		}
		if c.Trace != p.Trace {
			t.Errorf("span %q is in trace %d, parent %q in %d", child, c.Trace, parent, p.Trace)
		}
	}

	root := one("partition")
	if root.Parent != 0 {
		t.Errorf("root span has parent %d, want none", root.Parent)
	}
	if got := attr(root, "method"); got != "melo" {
		t.Errorf("root method attr = %q, want melo", got)
	}

	// Stages are siblings under the root, in pipeline order.
	for _, stage := range []string{"clique-model", "eigen", "ordering", "split"} {
		childOf(stage, "partition")
	}
	// No refine was requested and validation precedes the root span.
	for _, absent := range []string{"refine", "validate"} {
		if len(byName[absent]) != 0 {
			t.Errorf("unexpected %q span: %v", absent, byName[absent])
		}
	}

	// The work inside each stage nests under that stage's span.
	childOf("eigen.solve", "eigen")
	childOf("eigen.dense", "eigen.solve") // n <= 256: the dense-direct rung
	childOf("ordering.melo", "ordering")
	childOf("split.dp", "split") // K > 2: the DP-RP path

	if got := attr(one("eigen.solve"), "rung"); got != "dense-direct" {
		t.Errorf("eigen.solve rung attr = %q, want dense-direct", got)
	}

	// Kernel counters posted once per solve/order/split.
	for _, c := range []string{"melo.candidates", "dprp.cells", "resilience.rung.dense-direct"} {
		if tracer.Counter(c) <= 0 {
			t.Errorf("counter %q = %d, want > 0", c, tracer.Counter(c))
		}
	}
}

// TestPartitionTraceDisabledEmitsNothing is the other half of the
// contract: with no tracer in ctx and no global, the same run records
// no spans and allocates no per-span state.
func TestPartitionTraceDisabledEmitsNothing(t *testing.T) {
	ring := trace.NewRing(16)
	tracer := trace.New(ring)
	tracer.SetEnabled(false)
	ctx := trace.WithTracer(context.Background(), tracer)

	h := smallBenchmark(t)
	if _, err := PartitionCtx(ctx, h, Options{K: 4, D: 4, Method: MELO}); err != nil {
		t.Fatal(err)
	}
	if recs := ring.Snapshot(); len(recs) != 0 {
		t.Fatalf("disabled tracer recorded %d spans: %v", len(recs), names(recs))
	}
	if stats := tracer.SpanStats(); len(stats) != 0 {
		t.Fatalf("disabled tracer aggregated %d span names", len(stats))
	}
}

func names(recs []trace.SpanRecord) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Name
	}
	return out
}

func attr(r trace.SpanRecord, key string) string {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}
