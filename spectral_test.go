package spectral

import (
	"bytes"
	"strings"
	"testing"
)

func smallBenchmark(t *testing.T) *Netlist {
	t.Helper()
	h, err := GenerateBenchmark("prim1", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestPartitionAllMethodsBipartition(t *testing.T) {
	h := smallBenchmark(t)
	n := h.NumModules()
	for _, m := range []Method{MELO, SB, RSB, KP, SFC, Placement} {
		p, err := Partition(h, Options{K: 2, Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if p.K != 2 || p.N() != n {
			t.Fatalf("%v: wrong shape", m)
		}
		for c, s := range p.Sizes() {
			if s == 0 {
				t.Errorf("%v: cluster %d empty", m, c)
			}
		}
		cut := NetCut(h, p)
		if cut < 0 || cut > h.NumNets() {
			t.Errorf("%v: nonsense cut %d", m, cut)
		}
	}
}

func TestPartitionMultiway(t *testing.T) {
	h := smallBenchmark(t)
	for _, m := range []Method{MELO, RSB, KP, SFC, VKP, Barnes, HL} {
		p, err := Partition(h, Options{K: 4, Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if p.K != 4 {
			t.Fatalf("%v: K = %d", m, p.K)
		}
		for c, s := range p.Sizes() {
			if s == 0 {
				t.Errorf("%v: cluster %d empty", m, c)
			}
		}
		sc := ScaledCost(h, p)
		if sc <= 0 {
			t.Errorf("%v: scaled cost %v", m, sc)
		}
	}
}

func TestBipartitionersRejectMultiway(t *testing.T) {
	h := smallBenchmark(t)
	for _, m := range []Method{SB, Placement} {
		if _, err := Partition(h, Options{K: 3, Method: m}); err == nil {
			t.Errorf("%v: K=3 accepted", m)
		}
	}
}

func TestRefineImprovesOrMatches(t *testing.T) {
	h := smallBenchmark(t)
	plain, err := Partition(h, Options{K: 2, Method: MELO})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Partition(h, Options{K: 2, Method: MELO, Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	if NetCut(h, refined) > NetCut(h, plain) {
		t.Errorf("refined cut %d worse than plain %d", NetCut(h, refined), NetCut(h, plain))
	}
	// k > 2 uses pairwise FM sweeps and must not worsen either.
	plain4, err := Partition(h, Options{K: 4, Method: MELO})
	if err != nil {
		t.Fatal(err)
	}
	refined4, err := Partition(h, Options{K: 4, Method: MELO, Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	if NetCut(h, refined4) > NetCut(h, plain4) {
		t.Errorf("k-way refined cut %d worse than plain %d", NetCut(h, refined4), NetCut(h, plain4))
	}
}

func TestOrderModules(t *testing.T) {
	h := smallBenchmark(t)
	order, err := OrderModules(h, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != h.NumModules() {
		t.Fatalf("ordering length %d", len(order))
	}
	seen := make([]bool, len(order))
	for _, v := range order {
		if seen[v] {
			t.Fatal("ordering repeats a module")
		}
		seen[v] = true
	}
}

func TestHLRejectsNonPowerOfTwo(t *testing.T) {
	h := smallBenchmark(t)
	if _, err := Partition(h, Options{K: 3, Method: HL}); err == nil {
		t.Error("HL with K=3 accepted")
	}
}

func TestMethodStringRoundTrip(t *testing.T) {
	for m := MELO; m <= TwoVectorTripartition; m++ {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Errorf("round trip failed for %v", m)
		}
	}
	if _, err := ParseMethod("bogus"); err == nil {
		t.Error("bogus method accepted")
	}
}

func TestLoadSaveNetlist(t *testing.T) {
	h := smallBenchmark(t)
	var buf bytes.Buffer
	if err := SaveNetlist(&buf, "x", h); err != nil {
		t.Fatal(err)
	}
	name, h2, err := LoadNetlist(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "x" || h2.NumNets() != h.NumNets() || h2.NumPins() != h.NumPins() {
		t.Error("round trip changed the netlist")
	}
}

func TestLoadNetlistError(t *testing.T) {
	if _, _, err := LoadNetlist(strings.NewReader("garbage line\n")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	if len(names) != 12 {
		t.Fatalf("got %d benchmarks", len(names))
	}
	for _, n := range names {
		if n == "" {
			t.Fatal("empty name")
		}
	}
	if _, err := GenerateBenchmark("nope", 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestMetricsConsistency(t *testing.T) {
	h := smallBenchmark(t)
	p, err := Partition(h, Options{K: 2, Method: MELO, MinFrac: 0.45})
	if err != nil {
		t.Fatal(err)
	}
	cut := NetCut(h, p)
	rc := RatioCut(h, p)
	sizes := p.Sizes()
	want := float64(cut) / (float64(sizes[0]) * float64(sizes[1]))
	if diff := rc - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("RatioCut %v inconsistent with NetCut %d", rc, cut)
	}
	sc := ScaledCost(h, p)
	if diff := sc - rc; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("ScaledCost %v != RatioCut %v for k=2", sc, rc)
	}
}
