package spectral

// One benchmark per paper table/figure plus the ablations called out in
// DESIGN.md. Each BenchmarkTableN regenerates the corresponding table on
// a reduced-scale suite (the full-scale run is `cmd/experiments -all`;
// see EXPERIMENTS.md for recorded full-scale results). The scale can be
// overridden:
//
//	go test -bench=Table -benchscale 0.3

import (
	"flag"
	"io"
	"testing"

	"repro/internal/bench"
	"repro/internal/dprp"
	"repro/internal/eigen"
	"repro/internal/experiments"
	"repro/internal/fm"
	"repro/internal/graph"
	"repro/internal/melo"
	"repro/internal/partition"
)

var benchScale = flag.Float64("benchscale", 0.15, "benchmark suite scale for table benchmarks")

func tableLab(b *testing.B) *experiments.Lab {
	b.Helper()
	return experiments.NewLab(experiments.Config{Out: io.Discard, Scale: *benchScale})
}

func runTable(b *testing.B, f func(*experiments.Lab) error) {
	b.Helper()
	lab := tableLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f(lab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) { runTable(b, experiments.Table1) }
func BenchmarkTable2(b *testing.B) { runTable(b, experiments.Table2) }
func BenchmarkTable3(b *testing.B) { runTable(b, experiments.Table3) }
func BenchmarkTable4(b *testing.B) { runTable(b, experiments.Table4) }
func BenchmarkTable5(b *testing.B) { runTable(b, experiments.Table5) }

func BenchmarkFigure1(b *testing.B) { runTable(b, experiments.Figure1) }
func BenchmarkFigure2(b *testing.B) { runTable(b, experiments.Figure2) }

// benchPipeline prepares the prim1 instance at the current scale.
func benchPipeline(b *testing.B, d int) (*graph.Graph, *eigen.Decomposition, *Netlist) {
	b.Helper()
	c, err := bench.Lookup("prim1")
	if err != nil {
		b.Fatal(err)
	}
	h, err := bench.Generate(c.Scaled(*benchScale))
	if err != nil {
		b.Fatal(err)
	}
	g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
	if err != nil {
		b.Fatal(err)
	}
	dec, err := eigen.SmallestEigenpairs(g.Laplacian(), d+1)
	if err != nil {
		b.Fatal(err)
	}
	return g, dec, h
}

// BenchmarkAblationSchemes measures each MELO weighting scheme's ordering
// construction (Ablation A in DESIGN.md).
func BenchmarkAblationSchemes(b *testing.B) {
	g, dec, _ := benchPipeline(b, 10)
	for s := melo.Scheme(0); s < melo.NumSchemes; s++ {
		b.Run(s.String(), func(b *testing.B) {
			opts := melo.NewOptions()
			opts.Scheme = s
			for i := 0; i < b.N; i++ {
				if _, err := melo.Order(g, dec, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEigen compares the dense and Lanczos eigensolvers on
// the same Laplacian (Ablation B).
func BenchmarkAblationEigen(b *testing.B) {
	g := graph.RandomConnected(400, 1600, 7)
	lap := g.Laplacian()
	b.Run("lanczos-d6", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eigen.Lanczos(lap, 6, &eigen.LanczosOptions{Tol: 1e-6, MaxDim: 400}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dense-full", func(b *testing.B) {
		dm := lap.ToDense()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eigen.SymEig(dm); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationFM measures FM refinement on top of a MELO bipartition
// (Ablation C: the paper's iterative-improvement future-work item).
func BenchmarkAblationFM(b *testing.B) {
	g, dec, h := benchPipeline(b, 10)
	res, err := melo.Order(g, dec, melo.NewOptions())
	if err != nil {
		b.Fatal(err)
	}
	split, err := dprp.BestBalancedSplit(h, res.Order, 0.45)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := fm.Refine(h, split.Partition, fm.Options{MinFrac: 0.45})
		if err != nil {
			b.Fatal(err)
		}
		if out.Cut > out.InitialCut {
			b.Fatal("FM worsened the cut")
		}
	}
}

// BenchmarkMeloOrder isolates the O(d·n²) ordering construction.
func BenchmarkMeloOrder(b *testing.B) {
	g, dec, _ := benchPipeline(b, 10)
	opts := melo.NewOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := melo.Order(g, dec, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDPRP isolates the dynamic-programming splitter.
func BenchmarkDPRP(b *testing.B) {
	g, dec, h := benchPipeline(b, 10)
	res, err := melo.Order(g, dec, melo.NewOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dprp.Partition(h, res.Order, dprp.Options{K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLaplacianEigensolve isolates the Lanczos solve that dominates
// the full pipeline.
func BenchmarkLaplacianEigensolve(b *testing.B) {
	c, err := bench.Lookup("prim2")
	if err != nil {
		b.Fatal(err)
	}
	h, err := bench.Generate(c.Scaled(*benchScale))
	if err != nil {
		b.Fatal(err)
	}
	g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
	if err != nil {
		b.Fatal(err)
	}
	lap := g.Laplacian()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eigen.SmallestEigenpairs(lap, 11); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetCut exercises the hot metric used across every experiment.
func BenchmarkNetCut(b *testing.B) {
	_, _, h := benchPipeline(b, 2)
	assign := make([]int, h.NumModules())
	for i := range assign {
		assign[i] = i % 2
	}
	p := partition.MustNew(assign, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if partition.NetCut(h, p) < 0 {
			b.Fatal("impossible")
		}
	}
}
