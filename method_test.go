package spectral

import (
	"strings"
	"testing"
)

func TestMethodStringParseRoundTrip(t *testing.T) {
	for m := MELO; m <= TwoVectorTripartition; m++ {
		name := m.String()
		if name == "" || strings.HasPrefix(name, "Method(") {
			t.Fatalf("method %d has no name", int(m))
		}
		got, err := ParseMethod(name)
		if err != nil {
			t.Fatalf("ParseMethod(%q): %v", name, err)
		}
		if got != m {
			t.Errorf("ParseMethod(%q) = %v, want %v", name, got, m)
		}
	}
}

func TestParseMethodErrors(t *testing.T) {
	for _, s := range []string{
		"", "MELO", "Melo", "melo ", " melo", "unknown", "kp2", "Method(0)",
	} {
		if m, err := ParseMethod(s); err == nil {
			t.Errorf("ParseMethod(%q) = %v, want error", s, m)
		} else if !strings.Contains(err.Error(), "unknown method") {
			t.Errorf("ParseMethod(%q): error %q lacks context", s, err)
		}
	}
}

func TestMethodStringUnknown(t *testing.T) {
	if got := Method(999).String(); got != "Method(999)" {
		t.Errorf("Method(999).String() = %q", got)
	}
	if got := Method(-1).String(); got != "Method(-1)" {
		t.Errorf("Method(-1).String() = %q", got)
	}
}
