package spectral

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/hypergraph"
	"repro/internal/resilience"
)

// PipelineError attributes a partitioning failure to the pipeline stage
// that produced it: "validate", "clique-model", "eigen", "ordering",
// "split" or "refine". Panics inside a stage are recovered and reported
// as a PipelineError with Panicked set and the goroutine stack captured,
// so a malformed input can never crash a host process through Partition.
//
// Context cancellation is never wrapped: a cancelled or expired context
// surfaces as context.Canceled / context.DeadlineExceeded directly, so
// errors.Is works without unwrapping.
type PipelineError struct {
	// Stage names the pipeline stage that failed.
	Stage string
	// Method is the partitioning method that was running.
	Method Method
	// Err is the underlying cause.
	Err error
	// Panicked reports whether the stage panicked (rather than returning
	// an error).
	Panicked bool
	// Stack holds the goroutine stack at the point of a recovered panic;
	// nil for ordinary errors.
	Stack []byte
}

func (e *PipelineError) Error() string {
	if e.Panicked {
		return fmt.Sprintf("spectral: %v: panic in %s stage: %v", e.Method, e.Stage, e.Err)
	}
	return fmt.Sprintf("spectral: %v: %s stage: %v", e.Method, e.Stage, e.Err)
}

func (e *PipelineError) Unwrap() error { return e.Err }

// wrapPipelineErr converts an internal error into a *PipelineError
// attributed to the given method. Context errors pass through untouched;
// stage attributions recorded deeper in the pipeline win over fallback.
func wrapPipelineErr(m Method, fallback resilience.Stage, err error) error {
	if err == nil || resilience.IsContextError(err) {
		return err
	}
	var pe *PipelineError
	if errors.As(err, &pe) {
		return err
	}
	stage := fallback
	cause := err
	var se *resilience.StageError
	if errors.As(err, &se) {
		stage = se.Stage
		cause = se.Err
		return &PipelineError{Stage: string(stage), Method: m, Err: cause, Panicked: se.Panicked, Stack: se.Stack}
	}
	return &PipelineError{Stage: string(stage), Method: m, Err: cause}
}

// ValidateNetlist checks a netlist before it enters the pipeline: it
// must have at least one module, structurally valid nets (sorted,
// deduplicated, >= 2 in-range pins each) and finite positive module
// areas. Partition and OrderModules run this automatically; it is
// exported for callers that parse untrusted netlists and want the check
// without a full run.
func ValidateNetlist(h *Netlist) error {
	if h == nil {
		return fmt.Errorf("spectral: nil netlist")
	}
	if h.NumModules() == 0 {
		return fmt.Errorf("spectral: netlist has no modules")
	}
	if err := h.Validate(); err != nil {
		return err
	}
	for i, n := 0, h.NumModules(); i < n; i++ {
		a := h.Area(i)
		if math.IsNaN(a) || math.IsInf(a, 0) || a <= 0 {
			return fmt.Errorf("spectral: module %d (%s) has invalid area %v, want finite > 0", i, h.Names[i], a)
		}
	}
	return nil
}

// validateOptions rejects unusable option combinations with descriptive
// errors. It sees both the raw options (so an explicit D can be told
// apart from the zero-value "use the default") and the defaulted ones.
func validateOptions(h *hypergraph.Hypergraph, raw, o Options) error {
	n := h.NumModules()
	if o.K < 2 {
		return fmt.Errorf("spectral: K = %d, want >= 2", o.K)
	}
	if o.K > n {
		return fmt.Errorf("spectral: K = %d exceeds the netlist's %d modules", o.K, n)
	}
	if raw.D < 0 {
		return fmt.Errorf("spectral: D = %d, want >= 1 (or 0 for the default)", raw.D)
	}
	if raw.D > n {
		return fmt.Errorf("spectral: D = %d exceeds the netlist's %d modules", raw.D, n)
	}
	if o.Scheme < 0 || o.Scheme > 3 {
		return fmt.Errorf("spectral: Scheme = %d, want 0..3", o.Scheme)
	}
	if math.IsNaN(o.MinFrac) || o.MinFrac <= 0 || o.MinFrac > 0.5 {
		return fmt.Errorf("spectral: MinFrac = %v, want in (0, 0.5]", o.MinFrac)
	}
	if methodInfoOf(o.Method) == nil {
		return fmt.Errorf("spectral: unknown method %v", o.Method)
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("spectral: Parallelism = %d, want >= 1 (or 0 for the process default)", o.Parallelism)
	}
	if o.CoarsenThreshold < 0 {
		return fmt.Errorf("spectral: CoarsenThreshold = %d, want >= 0 (0 for the default)", o.CoarsenThreshold)
	}
	if o.MaxLevels < 0 {
		return fmt.Errorf("spectral: MaxLevels = %d, want >= 0 (0 for the default)", o.MaxLevels)
	}
	return nil
}

// checkPartitioning is the pipeline's exit guard: whatever path produced
// p — including every degraded rung of the eigensolver ladder — the
// result handed to the caller must be a complete, in-range k-way
// assignment.
func checkPartitioning(h *Netlist, p *Partitioning, k int) error {
	if p == nil {
		return fmt.Errorf("spectral: internal: nil partitioning")
	}
	if p.N() != h.NumModules() {
		return fmt.Errorf("spectral: internal: partitioning covers %d modules, netlist has %d", p.N(), h.NumModules())
	}
	if p.K != k {
		return fmt.Errorf("spectral: internal: partitioning has %d clusters, want %d", p.K, k)
	}
	for i, c := range p.Assign {
		if c < 0 || c >= k {
			return fmt.Errorf("spectral: internal: module %d assigned to cluster %d, out of [0,%d)", i, c, k)
		}
	}
	return nil
}
