// Package probe implements the probe-vector bipartitioner of Frankle and
// Karp [19], one of the multiple-eigenvector predecessors the paper
// builds on: pick a probe direction in the d-dimensional vector space,
// find the indicator vector that maximally projects onto the probe in
// O(n log n), and keep the best resulting bipartition.
//
// In the vector-partitioning view, a bipartition's subset vector Y_1
// satisfies ‖Y_1‖ ≥ Y_1·p for any unit probe p, with equality when Y_1
// is parallel to p — so maximizing the projection over many probes
// searches for the max-‖Y‖ cluster directly. The Goemans–Williamson
// max-cut rounding [22] uses the same primitive with random probes.
package probe

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/partition"
	"repro/internal/vecpart"
)

// Options configures the probe search.
type Options struct {
	// Probes is the number of probe directions tried (default 64).
	Probes int
	// Seed makes the random probes deterministic (default 1).
	Seed int64
	// MinFrac is the balance bound: each side keeps at least
	// ceil(MinFrac·n) vertices (default 0, unconstrained).
	MinFrac float64
}

// Result is the best bipartition found.
type Result struct {
	Partition *partition.Partition
	// Objective is Σ_h ‖Y_h‖² of the winning bipartition under the
	// instance's scaling (maximized for MaxSum).
	Objective float64
	// Probes is the number of probes evaluated.
	Probes int
}

// Bipartition searches for the bipartition whose cluster subset vector
// best aligns with some probe direction. The instance should use the
// MaxSum scaling (the search maximizes Σ‖Y_h‖²).
func Bipartition(v *vecpart.Vectors, opts Options) (*Result, error) {
	n := v.N()
	if n < 2 {
		return nil, fmt.Errorf("probe: need >= 2 vectors, have %d", n)
	}
	probes := opts.Probes
	if probes <= 0 {
		probes = 64
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	lo := int(math.Ceil(opts.MinFrac * float64(n)))
	if lo < 1 {
		lo = 1
	}
	if 2*lo > n {
		return nil, fmt.Errorf("probe: balance bound %v infeasible for n = %d", opts.MinFrac, n)
	}
	rng := rand.New(rand.NewSource(seed))
	d := v.D()

	best := math.Inf(-1)
	var bestAssign []int
	projections := make([]float64, n)
	order := make([]int, n)

	evalProbe := func(p []float64) {
		// Projection of each vertex vector onto the probe.
		for i := 0; i < n; i++ {
			row := v.Row(i)
			var s float64
			for j, pv := range p {
				s += pv * row[j]
			}
			projections[i] = s
		}
		// The indicator set maximizing projection-sum with |S| free is
		// the set of positive projections; under a balance bound, the
		// optimal fixed-size sets are prefixes of the sorted order. Scan
		// all feasible prefix sizes and keep the best TOTAL objective
		// Σ‖Y_h‖² (both sides count).
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return projections[order[a]] > projections[order[b]] })
		// Prefix subset vectors, built incrementally.
		y1 := make([]float64, d)
		total := v.SubsetVector(order) // Y_1 + Y_2 (all vertices)
		y2 := make([]float64, d)
		for s := 0; s < n-lo; s++ {
			vtx := order[s]
			row := v.Row(vtx)
			for j := range y1 {
				y1[j] += row[j]
			}
			size := s + 1
			if size < lo {
				continue
			}
			for j := range y2 {
				y2[j] = total[j] - y1[j]
			}
			obj := normSq(y1) + normSq(y2)
			if obj > best {
				best = obj
				assign := make([]int, n)
				for _, u := range order[size:] {
					assign[u] = 1
				}
				bestAssign = assign
			}
		}
	}

	// Axis-aligned probes first (the eigenvector directions themselves),
	// then random directions on the unit sphere.
	for j := 0; j < d && j < probes; j++ {
		p := make([]float64, d)
		p[j] = 1
		evalProbe(p)
	}
	for t := d; t < probes; t++ {
		p := make([]float64, d)
		var ns float64
		for j := range p {
			p[j] = rng.NormFloat64()
			ns += p[j] * p[j]
		}
		if ns == 0 {
			continue
		}
		inv := 1 / math.Sqrt(ns)
		for j := range p {
			p[j] *= inv
		}
		evalProbe(p)
	}

	if bestAssign == nil {
		return nil, fmt.Errorf("probe: no feasible bipartition found")
	}
	p, err := partition.New(bestAssign, 2)
	if err != nil {
		return nil, err
	}
	return &Result{Partition: p, Objective: best, Probes: probes}, nil
}

func normSq(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}
