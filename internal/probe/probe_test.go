package probe

import (
	"math"
	"testing"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/vecpart"
)

func instance(t *testing.T, g *graph.Graph, d int) *vecpart.Vectors {
	t.Helper()
	dec, err := eigen.SymEig(g.LaplacianDense())
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	if d > n {
		d = n
	}
	H := vecpart.ChooseH(g.TotalDegree(), dec.Values[:d], n)
	v, err := vecpart.FromDecomposition(dec, d, vecpart.MaxSum, H)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestProbeFindsPlantedCut(t *testing.T) {
	g := graph.TwoClusters(10, 10, 2, 0.25, 3)
	v := instance(t, g, 6)
	res, err := Bipartition(v, Options{Probes: 32, MinFrac: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	cut := partition.CutWeight(g, res.Partition)
	if cut > 0.5+1e-9 {
		t.Errorf("cut %v, want planted 0.5", cut)
	}
}

func TestProbeFullSpectrumNearOptimal(t *testing.T) {
	// With d = n the probe objective is the exact max-sum objective; with
	// enough probes on a small instance the result should match the
	// brute-force optimum.
	g := graph.RandomConnected(10, 15, 5)
	v := instance(t, g, 10)
	res, err := Bipartition(v, Options{Probes: 400})
	if err != nil {
		t.Fatal(err)
	}
	_, bestObj := vecpart.BestVectorPartition(v, 2)
	if res.Objective > bestObj+1e-9 {
		t.Fatalf("probe objective %v exceeds brute-force optimum %v", res.Objective, bestObj)
	}
	if res.Objective < bestObj-0.12*math.Abs(bestObj) {
		t.Errorf("probe objective %v far from optimum %v", res.Objective, bestObj)
	}
}

func TestProbeRespectsBalance(t *testing.T) {
	g := graph.RandomConnected(30, 60, 7)
	v := instance(t, g, 5)
	res, err := Bipartition(v, Options{Probes: 16, MinFrac: 0.45})
	if err != nil {
		t.Fatal(err)
	}
	min, max := res.Partition.MinMaxSize()
	if min < 14 || max > 16 {
		t.Errorf("sizes %v violate 45%% balance", res.Partition.Sizes())
	}
}

func TestProbeDeterministic(t *testing.T) {
	g := graph.RandomConnected(20, 40, 9)
	v := instance(t, g, 4)
	r1, err := Bipartition(v, Options{Probes: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Bipartition(v, Options{Probes: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Partition.Assign {
		if r1.Partition.Assign[i] != r2.Partition.Assign[i] {
			t.Fatal("same seed produced different partitions")
		}
	}
}

func TestProbeValidation(t *testing.T) {
	g := graph.RandomConnected(10, 15, 1)
	v := instance(t, g, 3)
	if _, err := Bipartition(v, Options{MinFrac: 0.9}); err == nil {
		t.Error("infeasible balance accepted")
	}
	single := instance(t, graph.Path(2), 2)
	if _, err := Bipartition(single, Options{}); err != nil {
		t.Errorf("n=2 should work: %v", err)
	}
}

func TestObjectiveMatchesMetric(t *testing.T) {
	g := graph.RandomConnected(16, 30, 11)
	v := instance(t, g, 16)
	res, err := Bipartition(v, Options{Probes: 32})
	if err != nil {
		t.Fatal(err)
	}
	direct := v.SumSquaredSubsets(res.Partition)
	if math.Abs(direct-res.Objective) > 1e-7*(1+math.Abs(direct)) {
		t.Errorf("reported objective %v, metric %v", res.Objective, direct)
	}
	// With the full spectrum the identity links the objective to the cut.
	f := partition.F(g, res.Partition)
	want := float64(g.N())*v.H - f
	if math.Abs(res.Objective-want) > 1e-6*(1+math.Abs(want)) {
		t.Errorf("objective %v but nH-f = %v", res.Objective, want)
	}
}
