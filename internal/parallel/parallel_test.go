package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestLimitDefaultsToNumCPU(t *testing.T) {
	SetLimit(0)
	if got := Limit(); got != runtime.NumCPU() {
		t.Errorf("Limit() = %d, want NumCPU %d", got, runtime.NumCPU())
	}
}

func TestSetLimitRoundTrip(t *testing.T) {
	defer SetLimit(0)
	SetLimit(3)
	if got := Limit(); got != 3 {
		t.Errorf("Limit() = %d after SetLimit(3)", got)
	}
	SetLimit(-5)
	if got := Limit(); got != runtime.NumCPU() {
		t.Errorf("Limit() = %d after SetLimit(-5), want NumCPU", got)
	}
}

func TestWorkersResolution(t *testing.T) {
	defer SetLimit(0)
	SetLimit(4)
	for _, tc := range []struct{ req, want int }{
		{0, 4}, {-1, 4}, {1, 1}, {7, 7},
	} {
		if got := Workers(tc.req); got != tc.want {
			t.Errorf("Workers(%d) = %d, want %d", tc.req, got, tc.want)
		}
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 5} {
		for _, n := range []int{0, 1, 7, 100, 1001} {
			var touched []int32
			if n > 0 {
				touched = make([]int32, n)
			}
			For(workers, n, 3, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&touched[i], 1)
				}
			})
			for i, c := range touched {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d touched %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForChunkBoundariesIgnoreTiming(t *testing.T) {
	// Chunk index must map to a fixed [lo,hi) for fixed (workers, n,
	// grain), regardless of which goroutine runs it.
	const workers, n, grain = 4, 503, 16
	count := NumChunks(workers, n, grain)
	type span struct{ lo, hi int }
	ref := make([]span, count)
	For(workers, n, grain, func(c, lo, hi int) { ref[c] = span{lo, hi} })
	for trial := 0; trial < 10; trial++ {
		got := make([]span, count)
		For(workers, n, grain, func(c, lo, hi int) { got[c] = span{lo, hi} })
		for c := range ref {
			if got[c] != ref[c] {
				t.Fatalf("trial %d chunk %d: got %v, want %v", trial, c, got[c], ref[c])
			}
		}
	}
}

func TestNumChunksMatchesFor(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		for _, n := range []int{0, 1, 64, 999} {
			var calls atomic.Int32
			For(workers, n, 10, func(_, _, _ int) { calls.Add(1) })
			if int(calls.Load()) != NumChunks(workers, n, 10) {
				t.Errorf("workers=%d n=%d: For made %d chunks, NumChunks says %d",
					workers, n, calls.Load(), NumChunks(workers, n, 10))
			}
		}
	}
}

func TestForRespectsGrain(t *testing.T) {
	// Every chunk except possibly the last must hold >= grain indices.
	const n, grain = 1000, 64
	For(8, n, grain, func(c, lo, hi int) {
		if hi-lo < grain && hi != n {
			panic("short interior chunk")
		}
	})
}

func TestDoRunsEveryTask(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		var ran [20]int32
		tasks := make([]func(), len(ran))
		for i := range tasks {
			i := i
			tasks[i] = func() { atomic.AddInt32(&ran[i], 1) }
		}
		Do(workers, tasks...)
		for i, c := range ran {
			if c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestDoEmpty(t *testing.T) {
	Do(4) // must not hang or panic
}
