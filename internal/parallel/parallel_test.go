package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/trace"
)

func TestLimitDefaultsToNumCPU(t *testing.T) {
	SetLimit(0)
	if got := Limit(); got != runtime.NumCPU() {
		t.Errorf("Limit() = %d, want NumCPU %d", got, runtime.NumCPU())
	}
}

func TestSetLimitRoundTrip(t *testing.T) {
	defer SetLimit(0)
	SetLimit(3)
	if got := Limit(); got != 3 {
		t.Errorf("Limit() = %d after SetLimit(3)", got)
	}
	SetLimit(-5)
	if got := Limit(); got != runtime.NumCPU() {
		t.Errorf("Limit() = %d after SetLimit(-5), want NumCPU", got)
	}
}

func TestWorkersResolution(t *testing.T) {
	defer SetLimit(0)
	SetLimit(4)
	for _, tc := range []struct{ req, want int }{
		{0, 4}, {-1, 4}, {1, 1}, {4, 4}, {7, 4}, // explicit requests clamp to the set limit
	} {
		if got := Workers(tc.req); got != tc.want {
			t.Errorf("Workers(%d) = %d, want %d", tc.req, got, tc.want)
		}
	}
	// Without an explicit limit the clamp is off: explicit requests pass
	// through even above NumCPU (equivalence tests rely on this).
	SetLimit(0)
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) with no limit = %d, want 7", got)
	}
}

// TestWorkersClampBoundsJobRequests is the regression test for the
// spectrald scenario: the daemon caps process parallelism via SetLimit
// (its -parallelism flag), and a job arrives requesting more workers
// through its own options. The per-job request must not override the
// operator's cap.
func TestWorkersClampBoundsJobRequests(t *testing.T) {
	defer SetLimit(0)
	SetLimit(2) // operator: at most 2 workers for this process
	if got := Workers(16); got != 2 {
		t.Fatalf("explicit job request for 16 workers resolved to %d under SetLimit(2), want 2", got)
	}
	// The resolved count also governs For's fan-out: no chunk may
	// observe a worker index implying more than the cap... workers are
	// anonymous in For, so assert via the chunk plan instead: the count
	// For actually uses equals Workers(16).
	if NumChunks(16, 1000, 1) != NumChunks(2, 1000, 1) {
		t.Fatalf("For's chunk plan for an explicit 16-worker request does not match the clamped plan")
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 5} {
		for _, n := range []int{0, 1, 7, 100, 1001} {
			var touched []int32
			if n > 0 {
				touched = make([]int32, n)
			}
			For(workers, n, 3, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&touched[i], 1)
				}
			})
			for i, c := range touched {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d touched %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForChunkBoundariesIgnoreTiming(t *testing.T) {
	// Chunk index must map to a fixed [lo,hi) for fixed (workers, n,
	// grain), regardless of which goroutine runs it.
	const workers, n, grain = 4, 503, 16
	count := NumChunks(workers, n, grain)
	type span struct{ lo, hi int }
	ref := make([]span, count)
	For(workers, n, grain, func(c, lo, hi int) { ref[c] = span{lo, hi} })
	for trial := 0; trial < 10; trial++ {
		got := make([]span, count)
		For(workers, n, grain, func(c, lo, hi int) { got[c] = span{lo, hi} })
		for c := range ref {
			if got[c] != ref[c] {
				t.Fatalf("trial %d chunk %d: got %v, want %v", trial, c, got[c], ref[c])
			}
		}
	}
}

func TestNumChunksMatchesFor(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		for _, n := range []int{0, 1, 64, 999} {
			var calls atomic.Int32
			For(workers, n, 10, func(_, _, _ int) { calls.Add(1) })
			if int(calls.Load()) != NumChunks(workers, n, 10) {
				t.Errorf("workers=%d n=%d: For made %d chunks, NumChunks says %d",
					workers, n, calls.Load(), NumChunks(workers, n, 10))
			}
		}
	}
}

func TestForRespectsGrain(t *testing.T) {
	// Every chunk except possibly the last must hold >= grain indices.
	const n, grain = 1000, 64
	For(8, n, grain, func(c, lo, hi int) {
		if hi-lo < grain && hi != n {
			panic("short interior chunk")
		}
	})
}

// TestForSerialNoAllocsWhenSamplingOff: with a process-global tracer
// installed but chunk sampling disabled (the production spectrald
// configuration), the serial fast path of For must not allocate — in
// particular it must not build the chunk-span wrapper closure, and its
// goroutine machinery must stay out of the serial path's frame. This
// pins down the regression where every kernel invocation heap-allocated
// even at workers = 1.
func TestForSerialNoAllocsWhenSamplingOff(t *testing.T) {
	tr := trace.New()
	trace.SetGlobal(tr)
	defer trace.SetGlobal(nil)
	data := make([]float64, 4096)
	fn := func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i]++
		}
	}
	if allocs := testing.AllocsPerRun(100, func() {
		For(1, len(data), 64, fn)
	}); allocs != 0 {
		t.Fatalf("serial For with sampling off: %v allocs per call, want 0", allocs)
	}
	// Flipping sampling on must restore chunk spans (the wrapper is
	// gated, not removed).
	tr.SetChunkSampling(1)
	For(1, len(data), 64, fn)
	if got := tr.Counter("parallel.chunks"); got == 0 {
		t.Fatal("chunk counter not advanced with sampling on")
	}
}

// BenchmarkForSerialTracerOff measures the disabled-instrumentation
// overhead budget of the serial fast path (tracer installed, sampling
// off — the spectrald steady state).
func BenchmarkForSerialTracerOff(b *testing.B) {
	tr := trace.New()
	trace.SetGlobal(tr)
	defer trace.SetGlobal(nil)
	data := make([]float64, 4096)
	fn := func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i]++
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		For(1, len(data), 64, fn)
	}
}

func TestDoRunsEveryTask(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		var ran [20]int32
		tasks := make([]func(), len(ran))
		for i := range tasks {
			i := i
			tasks[i] = func() { atomic.AddInt32(&ran[i], 1) }
		}
		Do(workers, tasks...)
		for i, c := range ran {
			if c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestDoEmpty(t *testing.T) {
	Do(4) // must not hang or panic
}
