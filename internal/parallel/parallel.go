// Package parallel is the shared sharding/worker helper behind the
// repository's parallel numerical kernels (row-sharded MatVec, block
// Gram–Schmidt, MELO candidate scans, per-component eigensolves).
//
// The package enforces one discipline that every caller relies on:
// parallelism must never change results. A kernel built on For or Do
// must (a) write only to disjoint state per chunk/task, and (b) perform
// a fixed arithmetic sequence per chunk that does not depend on the
// worker count, reducing any cross-chunk accumulation in chunk-index
// order. Under that discipline the worker count only changes *who*
// computes each chunk, never *what* is computed — serial (workers = 1)
// and parallel runs are bitwise identical, which is what lets the
// partest equivalence suite demand exact orderings and partitions.
//
// The process-wide default worker count is Limit() (runtime.NumCPU
// unless overridden by SetLimit, e.g. from spectrald's -parallelism
// flag); per-call worker counts resolve through Workers.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// limit holds the process-wide worker cap; 0 means "unset, use
// runtime.NumCPU()".
var limit atomic.Int32

// Limit returns the process-wide default worker count: the last value
// passed to SetLimit, or runtime.NumCPU() if never set.
func Limit() int {
	if v := limit.Load(); v > 0 {
		return int(v)
	}
	return runtime.NumCPU()
}

// SetLimit sets the process-wide default worker count used when a
// kernel is invoked with workers <= 0. n <= 0 resets to
// runtime.NumCPU(). Safe for concurrent use; kernels already running
// keep the worker count they resolved at entry.
func SetLimit(n int) {
	if n < 0 {
		n = 0
	}
	limit.Store(int32(n))
}

// Workers resolves a requested parallelism level: anything below 1
// (0 = "automatic") resolves to Limit(), and explicit requests are
// clamped to the limit when one has been set with SetLimit. The clamp
// is what makes an operator-facing cap (spectrald's -parallelism flag)
// actually bound per-job worker counts arriving through job options —
// without it an explicit per-job request overrode the process cap.
// When no limit has been set, explicit requests pass through unclamped
// (the NumCPU default is a sizing hint, not an operator instruction;
// equivalence and race tests legitimately run more workers than cores).
func Workers(requested int) int {
	if requested >= 1 {
		if v := limit.Load(); v > 0 && requested > int(v) {
			return int(v)
		}
		return requested
	}
	return Limit()
}

// chunksPerWorker oversubscribes chunks relative to workers so dynamic
// scheduling can balance uneven per-index cost (e.g. CSR rows with
// varying nnz) without shrinking chunks below the grain.
const chunksPerWorker = 4

// plan splits [0,n) into chunks of at least grain indices, sized for
// the given worker count. It returns the chunk size and chunk count;
// the final chunk may be short.
func plan(workers, n, grain int) (size, count int) {
	if grain < 1 {
		grain = 1
	}
	if workers < 1 {
		workers = 1
	}
	size = (n + workers*chunksPerWorker - 1) / (workers * chunksPerWorker)
	if size < grain {
		size = grain
	}
	count = (n + size - 1) / size
	if count < 1 {
		count = 1
	}
	return size, count
}

// NumChunks returns the number of chunks For will split [0,n) into for
// the given workers and grain, so reductions can preallocate one slot
// per chunk and combine them in chunk order (the deterministic-reduce
// pattern; see the package comment). It resolves workers exactly as For
// does (including the Workers clamp), so the two agree for any request
// as long as the limit does not change between the calls.
func NumChunks(workers, n, grain int) int {
	if n <= 0 {
		return 0
	}
	_, count := plan(Workers(workers), n, grain)
	return count
}

// For runs fn over [0,n) split into contiguous chunks of at least grain
// indices, on at most workers goroutines (0 resolves to Limit()). fn
// receives the chunk index (0-based, increasing with lo) and the
// half-open range [lo, hi). Chunk boundaries depend only on (workers,
// n, grain) — never on timing — so per-chunk partial results indexed by
// chunk are reproducible; chunk-to-goroutine assignment is dynamic and
// is NOT reproducible, so fn must not touch shared non-chunk state.
//
// When the resolved worker count is 1, or the range fits one chunk,
// fn runs on the calling goroutine, and For itself performs no heap
// allocations — the goroutine machinery lives in forChunks so the
// serial fast path (the common case inside reorthogonalization and
// other per-iteration kernels) stays allocation-free.
func For(workers, n, grain int, fn func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	size, count := plan(workers, n, grain)
	// Sharding has no context; utilization reporting goes through the
	// process-global tracer. Per-chunk spans only exist behind the
	// tracer's sampling flag (trace.Tracer.SetChunkSampling) — they are
	// the one per-iteration instrumentation in the repository. The
	// span wrapper is a heap-allocated closure, so it is only built when
	// sampling is actually on; counters alone are atomic adds. The
	// wrapper observes chunks, never reorders them: the determinism
	// discipline above is untouched.
	if tr := trace.Active(); tr != nil {
		tr.Add("parallel.chunks", int64(count))
		tr.SetGauge("parallel.workers", float64(workers))
		if tr.ChunkSamplingEnabled() {
			inner := fn
			fn = func(c, lo, hi int) {
				if sp := tr.ChunkSpan("parallel.chunk"); sp != nil {
					inner(c, lo, hi)
					sp.End()
					return
				}
				inner(c, lo, hi)
			}
		}
	}
	if workers == 1 || count == 1 {
		for c := 0; c < count; c++ {
			lo := c * size
			hi := lo + size
			if hi > n {
				hi = n
			}
			fn(c, lo, hi)
		}
		return
	}
	forChunks(workers, n, size, count, fn)
}

// forChunks is For's multi-goroutine path. It is a separate function so
// its synchronization state (captured by the worker closures, hence
// heap-allocated at entry) does not burden For's serial fast path.
func forChunks(workers, n, size, count int, fn func(chunk, lo, hi int)) {
	if workers > count {
		workers = count
	}
	var next atomic.Int32
	var pan panicBox
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer pan.capture()
			for {
				c := int(next.Add(1)) - 1
				if c >= count {
					return
				}
				lo := c * size
				hi := lo + size
				if hi > n {
					hi = n
				}
				fn(c, lo, hi)
			}
		}()
	}
	wg.Wait()
	pan.repanic()
}

// Do runs the tasks on at most workers goroutines (0 resolves to
// Limit()). Tasks must be independent: they may run in any order and
// concurrently with each other. With a resolved worker count of 1 (or
// a single task) the tasks run sequentially, in order, on the calling
// goroutine.
func Do(workers int, tasks ...func()) {
	workers = Workers(workers)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if tr := trace.Active(); tr != nil {
		tr.Add("parallel.tasks", int64(len(tasks)))
	}
	if workers <= 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	var next atomic.Int32
	var pan panicBox
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer pan.capture()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				tasks[i]()
			}
		}()
	}
	wg.Wait()
	pan.repanic()
}

// panicBox carries the first panic observed in a worker goroutine back
// to the calling goroutine, so the pipeline's recover-based hardening
// (resilience.Protect, spectral's pipeline.protect) still sees panics
// raised inside parallel kernels. A worker that panics stops consuming
// chunks; the remaining workers finish theirs before the re-panic.
type panicBox struct {
	once sync.Once
	val  any
	set  atomic.Bool
}

// capture is deferred in every worker; it stores the first panic value.
func (p *panicBox) capture() {
	if r := recover(); r != nil {
		p.once.Do(func() {
			p.val = r
			p.set.Store(true)
		})
	}
}

// repanic re-raises the captured panic, if any, on the caller.
func (p *panicBox) repanic() {
	if p.set.Load() {
		panic(p.val)
	}
}
