package fm

import (
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// weightedNetlist: 8 unit modules plus one 6-area macro (module 0).
func weightedNetlist(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder()
	b.AddModules(9)
	for i := 0; i < 8; i++ {
		_ = b.AddNet("", i, i+1)
	}
	_ = b.AddNet("", 0, 4)
	_ = b.AddNet("", 2, 6)
	h := b.Build()
	areas := []float64{6, 1, 1, 1, 1, 1, 1, 1, 1} // total 14
	if err := h.SetAreas(areas); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestRefineRespectsAreaBalance(t *testing.T) {
	h := weightedNetlist(t)
	// Start: macro alone vs everything else — areas 6 vs 8; both sides
	// are >= 40% of 14 (5.6).
	assign := []int{0, 1, 1, 1, 1, 1, 1, 1, 1}
	p := partition.MustNew(assign, 2)
	res, err := Refine(h, p, Options{MinFrac: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	areas := partition.ClusterAreas(h, res.Partition)
	if areas[0] < 5.6-1e-9 || areas[1] < 5.6-1e-9 {
		t.Errorf("refined areas %v violate the 40%% area bound", areas)
	}
	if res.Cut > res.InitialCut {
		t.Errorf("cut worsened %d -> %d", res.InitialCut, res.Cut)
	}
}

func TestRefineRejectsAreaImbalancedInput(t *testing.T) {
	h := weightedNetlist(t)
	// All unit modules on one side: areas 6 vs 8 is fine at 0.4, but
	// macro + all on one side (14 vs 0) must be rejected.
	assign := make([]int, 9)
	p := partition.MustNew(assign, 1)
	_ = p
	all := partition.MustNew(assign, 2)
	if _, err := Refine(h, all, Options{MinFrac: 0.4}); err == nil {
		t.Error("area-imbalanced input accepted")
	}
}

func TestRefineUnitAreasUnchangedSemantics(t *testing.T) {
	// Without explicit areas the area machinery must reduce to module
	// counts: a 10-module netlist with MinFrac 0.4 keeps >= 4 modules per
	// side.
	b := hypergraph.NewBuilder()
	b.AddModules(10)
	for i := 0; i < 9; i++ {
		_ = b.AddNet("", i, i+1)
	}
	h := b.Build()
	assign := []int{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}
	p := partition.MustNew(assign, 2)
	res, err := Refine(h, p, Options{MinFrac: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	min, _ := res.Partition.MinMaxSize()
	if min < 4 {
		t.Errorf("side shrank below the count bound: sizes %v", res.Partition.Sizes())
	}
}
