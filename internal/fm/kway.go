package fm

import (
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// KWayOptions configures multi-way refinement.
type KWayOptions struct {
	// MinSize is the minimum cluster size maintained throughout
	// (default: half of the smallest input cluster, at least 1).
	MinSize int
	// MaxRounds caps the sweeps over cluster pairs (default 3).
	MaxRounds int
	// PassesPerPair caps FM passes inside one pairwise refinement
	// (default 4).
	PassesPerPair int
}

// KWayResult reports a multi-way refinement outcome.
type KWayResult struct {
	Partition  *partition.Partition
	Cut        int
	InitialCut int
	// PairsImproved counts pairwise refinements that reduced the cut.
	PairsImproved int
}

// RefineKWay improves a k-way partitioning by pairwise FM: for every pair
// of clusters, the sub-hypergraph induced on their union is refined as a
// bipartition (all other clusters held fixed), repeating until a full
// sweep makes no improvement. This is the standard generalization of FM
// used as iterative-improvement post-processing on spectral k-way
// solutions (cf. Hadley et al. [26]).
func RefineKWay(h *hypergraph.Hypergraph, p *partition.Partition, opts KWayOptions) (*KWayResult, error) {
	if p.N() != h.NumModules() {
		return nil, fmt.Errorf("fm: partition over %d modules, hypergraph has %d", p.N(), h.NumModules())
	}
	k := p.K
	if k < 2 {
		return nil, fmt.Errorf("fm: k = %d, want >= 2", k)
	}
	rounds := opts.MaxRounds
	if rounds <= 0 {
		rounds = 3
	}
	passes := opts.PassesPerPair
	if passes <= 0 {
		passes = 4
	}
	assign := append([]int(nil), p.Assign...)
	sizes := make([]int, k)
	for _, c := range assign {
		sizes[c]++
	}
	minSize := opts.MinSize
	if minSize <= 0 {
		smallest := sizes[0]
		for _, s := range sizes[1:] {
			if s < smallest {
				smallest = s
			}
		}
		minSize = smallest / 2
		if minSize < 1 {
			minSize = 1
		}
	}

	cur := &partition.Partition{Assign: assign, K: k}
	initial := partition.NetCut(h, cur)
	result := &KWayResult{InitialCut: initial}

	for round := 0; round < rounds; round++ {
		improvedThisRound := false
		for a := 0; a < k; a++ {
			for b := a + 1; b < k; b++ {
				improved, err := refinePair(h, assign, sizes, a, b, minSize, passes)
				if err != nil {
					return nil, err
				}
				if improved {
					result.PairsImproved++
					improvedThisRound = true
				}
			}
		}
		if !improvedThisRound {
			break
		}
	}

	refined, err := partition.New(assign, k)
	if err != nil {
		return nil, err
	}
	result.Partition = refined
	result.Cut = partition.NetCut(h, refined)
	return result, nil
}

// refinePair runs bipartition FM on the union of clusters a and b,
// holding everything else fixed. Only nets whose pins lie entirely within
// the pair enter the local instance: a net with a pin in any other
// cluster is cut globally regardless of how the pair's modules are
// arranged, so including it would make local gains diverge from global
// ones. With that filter, local Δcut equals global Δcut exactly.
func refinePair(h *hypergraph.Hypergraph, assign, sizes []int, a, b, minSize, passes int) (bool, error) {
	var members []int
	for m, c := range assign {
		if c == a || c == b {
			members = append(members, m)
		}
	}
	if len(members) < 2 || sizes[a] < minSize || sizes[b] < minSize {
		return false, nil
	}
	old2new := make(map[int]int, len(members))
	for i, m := range members {
		old2new[m] = i
	}
	// Build the pair-internal sub-hypergraph.
	builder := hypergraph.NewBuilder()
	for _, m := range members {
		builder.AddModule(h.Names[m])
	}
	for _, net := range h.Nets {
		inside := true
		for _, m := range net {
			if c := assign[m]; c != a && c != b {
				inside = false
				break
			}
		}
		if !inside {
			continue
		}
		mapped := make([]int, len(net))
		for i, m := range net {
			mapped[i] = old2new[m]
		}
		if err := builder.AddNet("", mapped...); err != nil {
			return false, err
		}
	}
	sub := builder.Build()
	if sub.NumNets() == 0 {
		return false, nil
	}
	subAssign := make([]int, len(members))
	for i, orig := range members {
		if assign[orig] == b {
			subAssign[i] = 1
		}
	}
	subPart, err := partition.New(subAssign, 2)
	if err != nil {
		return false, err
	}
	minFrac := float64(minSize) / float64(len(members))
	if minFrac > 0.5 {
		return false, nil
	}
	if minFrac <= 0 {
		minFrac = 1e-9
	}
	res, err := Refine(sub, subPart, Options{MinFrac: minFrac, MaxPasses: passes})
	if err != nil {
		return false, err
	}
	if res.Cut >= res.InitialCut {
		return false, nil
	}
	// Apply the improved pair assignment.
	for i, orig := range members {
		want := a
		if res.Partition.Assign[i] == 1 {
			want = b
		}
		if assign[orig] != want {
			sizes[assign[orig]]--
			sizes[want]++
			assign[orig] = want
		}
	}
	return true, nil
}
