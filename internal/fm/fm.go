// Package fm implements Fiduccia–Mattheyses bipartition refinement for
// hypergraphs: linear-time passes of single-module moves driven by gain
// buckets, with rollback to the best prefix of each pass.
//
// The paper lists iterative-improvement post-processing of spectral
// solutions (cf. Hadley et al. [26]) as a natural extension of MELO; this
// package provides it, and the ablation benches measure how much FM adds
// on top of each ordering-based bipartitioner.
package fm

import (
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// Options configures refinement.
type Options struct {
	// MinFrac is the balance bound: each side must keep at least this
	// fraction of the total module AREA (for unit-area netlists, of the
	// module count). Required in (0, 0.5].
	MinFrac float64
	// MaxPasses caps the number of improvement passes. Default 8.
	MaxPasses int
}

// Result reports a refinement outcome.
type Result struct {
	// Partition is the refined bipartition.
	Partition *partition.Partition
	// Cut is the refined net cut.
	Cut int
	// InitialCut is the cut of the input partition.
	InitialCut int
	// Passes is the number of passes executed (including the final
	// no-improvement pass).
	Passes int
}

// Refine improves a bipartition of h by FM passes. The input partition is
// not modified.
func Refine(h *hypergraph.Hypergraph, p *partition.Partition, opts Options) (*Result, error) {
	if p.K != 2 {
		return nil, fmt.Errorf("fm: need a bipartition, got k = %d", p.K)
	}
	n := h.NumModules()
	if p.N() != n {
		return nil, fmt.Errorf("fm: partition over %d modules, hypergraph has %d", p.N(), n)
	}
	if opts.MinFrac <= 0 || opts.MinFrac > 0.5 {
		return nil, fmt.Errorf("fm: MinFrac = %v, want (0, 0.5]", opts.MinFrac)
	}
	maxPasses := opts.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 8
	}
	total := h.TotalArea()
	lo := opts.MinFrac * total
	if 2*lo > total {
		return nil, fmt.Errorf("fm: balance bound %v infeasible", opts.MinFrac)
	}

	side := make([]int, n)
	copy(side, p.Assign)
	var areas [2]float64
	for i, s := range side {
		areas[s] += h.Area(i)
	}
	if areas[0] < lo-1e-9 || areas[1] < lo-1e-9 {
		return nil, fmt.Errorf("fm: input partition violates the balance bound")
	}

	st := newState(h, side)
	initial := st.cut()
	res := &Result{InitialCut: initial}
	for pass := 0; pass < maxPasses; pass++ {
		res.Passes = pass + 1
		improved := st.onePass(lo)
		if !improved {
			break
		}
	}
	res.Cut = st.cut()
	refined, err := partition.New(st.side, 2)
	if err != nil {
		return nil, err
	}
	res.Partition = refined
	return res, nil
}

// state holds the mutable FM bookkeeping. Balance is tracked in module
// area (unit areas reduce to module counts).
type state struct {
	h       *hypergraph.Hypergraph
	side    []int
	pins    [2][]int // pins[s][e]: pins of net e on side s
	areas   [2]float64
	maxArea float64

	// Gain bucket structure.
	gain    []int
	maxDeg  int
	buckets []int // head module per gain bucket (index = gain + maxDeg), -1 empty
	next    []int
	prev    []int
	inList  []bool
	locked  []bool
	maxGain int // current highest non-empty bucket index hint
}

func newState(h *hypergraph.Hypergraph, side []int) *state {
	n := h.NumModules()
	st := &state{h: h, side: side}
	st.pins[0] = make([]int, h.NumNets())
	st.pins[1] = make([]int, h.NumNets())
	for e, net := range h.Nets {
		for _, m := range net {
			st.pins[side[m]][e]++
		}
	}
	for i, s := range side {
		st.areas[s] += h.Area(i)
		if a := h.Area(i); a > st.maxArea {
			st.maxArea = a
		}
	}
	for i := 0; i < n; i++ {
		if d := h.Degree(i); d > st.maxDeg {
			st.maxDeg = d
		}
	}
	st.gain = make([]int, n)
	st.next = make([]int, n)
	st.prev = make([]int, n)
	st.inList = make([]bool, n)
	st.locked = make([]bool, n)
	st.buckets = make([]int, 2*st.maxDeg+1)
	return st
}

func (st *state) cut() int {
	c := 0
	for e := range st.h.Nets {
		if st.pins[0][e] > 0 && st.pins[1][e] > 0 {
			c++
		}
	}
	return c
}

func (st *state) computeGain(m int) int {
	s := st.side[m]
	g := 0
	for _, e := range st.h.NetsOf(m) {
		if st.pins[s][e] == 1 {
			g++
		}
		if st.pins[1-s][e] == 0 {
			g--
		}
	}
	return g
}

func (st *state) bucketIndex(g int) int { return g + st.maxDeg }

func (st *state) insert(m int) {
	b := st.bucketIndex(st.gain[m])
	st.next[m] = st.buckets[b]
	st.prev[m] = -1
	if st.buckets[b] != -1 {
		st.prev[st.buckets[b]] = m
	}
	st.buckets[b] = m
	st.inList[m] = true
	if b > st.maxGain {
		st.maxGain = b
	}
}

func (st *state) remove(m int) {
	b := st.bucketIndex(st.gain[m])
	if st.prev[m] != -1 {
		st.next[st.prev[m]] = st.next[m]
	} else {
		st.buckets[b] = st.next[m]
	}
	if st.next[m] != -1 {
		st.prev[st.next[m]] = st.prev[m]
	}
	st.inList[m] = false
}

// onePass runs one FM pass and reports whether the cut improved.
func (st *state) onePass(lo float64) bool {
	n := len(st.side)
	// Reset buckets.
	for i := range st.buckets {
		st.buckets[i] = -1
	}
	st.maxGain = 0
	for m := 0; m < n; m++ {
		st.locked[m] = false
		st.inList[m] = false
		st.gain[m] = st.computeGain(m)
	}
	for m := 0; m < n; m++ {
		st.insert(m)
	}

	moves := make([]int, 0, n)
	bestPrefix, bestDelta, delta := 0, 0, 0
	// Abort the pass once it has wandered stall moves past the best
	// prefix: the tail of a converged pass moves every remaining module
	// at negative gain only to be rolled back, doubling the cost of every
	// pass for nothing. The bound is generous enough to carry the pass
	// across the negative-gain valleys hill-climbing relies on.
	stall := n/8 + 64

	for len(moves) < n {
		m := st.pickMove(lo)
		if m == -1 {
			break
		}
		delta += st.gain[m]
		st.applyMove(m)
		moves = append(moves, m)
		// Only balanced prefixes are eligible outcomes; the pass itself
		// may walk through one-module imbalance (the classic FM
		// tolerance, without which an exactly balanced instance would
		// have no legal move at all).
		if delta > bestDelta && st.areas[0] >= lo-1e-9 && st.areas[1] >= lo-1e-9 {
			bestDelta = delta
			bestPrefix = len(moves)
		}
		if len(moves)-bestPrefix >= stall {
			break
		}
	}

	// Roll back past the best prefix.
	for i := len(moves) - 1; i >= bestPrefix; i-- {
		st.revertMove(moves[i])
	}
	return bestDelta > 0
}

// pickMove returns the highest-gain unlocked module whose move keeps the
// donor side's area within one largest-module of the bound (the classic
// FM transient tolerance), or -1 if none exists. The scan starts at the
// maxGain hint — an upper bound on the highest occupied bucket, since
// every insert raises it — and lowers the hint to the first occupied
// bucket it finds, so repeated picks do not rescan the empty top.
func (st *state) pickMove(lo float64) int {
	b := st.maxGain
	if top := len(st.buckets) - 1; b > top {
		b = top
	}
	lowered := false
	for ; b >= 0; b-- {
		m := st.buckets[b]
		if m == -1 {
			continue
		}
		if !lowered {
			st.maxGain = b
			lowered = true
		}
		for ; m != -1; m = st.next[m] {
			from := st.side[m]
			if st.areas[from]-st.h.Area(m) >= lo-st.maxArea-1e-9 {
				return m
			}
		}
	}
	return -1
}

// applyMove moves module m to the other side, locks it, and updates
// neighbor gains with the standard before/after critical-net rules.
func (st *state) applyMove(m int) {
	from := st.side[m]
	to := 1 - from
	st.remove(m)
	st.locked[m] = true

	for _, e := range st.h.NetsOf(m) {
		// Before the move.
		if st.pins[to][e] == 0 {
			for _, w := range st.h.Nets[e] {
				st.bumpGain(w, +1)
			}
		} else if st.pins[to][e] == 1 {
			for _, w := range st.h.Nets[e] {
				if st.side[w] == to {
					st.bumpGain(w, -1)
				}
			}
		}
		st.pins[from][e]--
		st.pins[to][e]++
		// After the move.
		if st.pins[from][e] == 0 {
			for _, w := range st.h.Nets[e] {
				st.bumpGain(w, -1)
			}
		} else if st.pins[from][e] == 1 {
			for _, w := range st.h.Nets[e] {
				if st.side[w] == from {
					st.bumpGain(w, +1)
				}
			}
		}
	}
	st.side[m] = to
	st.areas[from] -= st.h.Area(m)
	st.areas[to] += st.h.Area(m)
}

// revertMove undoes a locked move without touching the gain structure
// (the pass is over; buckets are rebuilt next pass).
func (st *state) revertMove(m int) {
	from := st.side[m]
	to := 1 - from
	for _, e := range st.h.NetsOf(m) {
		st.pins[from][e]--
		st.pins[to][e]++
	}
	st.side[m] = to
	st.areas[from] -= st.h.Area(m)
	st.areas[to] += st.h.Area(m)
}

// bumpGain adjusts a module's gain, repositioning it in the buckets when
// it is unlocked.
func (st *state) bumpGain(m, delta int) {
	if st.locked[m] {
		return
	}
	st.remove(m)
	st.gain[m] += delta
	st.insert(m)
}
