package fm

import (
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// plantedKNetlist builds k dense clusters with a few bridges.
func plantedKNetlist(t *testing.T, k, size int, seed int64) *hypergraph.Hypergraph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := hypergraph.NewBuilder()
	b.AddModules(k * size)
	for c := 0; c < k; c++ {
		base := c * size
		for i := 0; i < size-1; i++ {
			_ = b.AddNet("", base+i, base+i+1)
		}
		for e := 0; e < 2*size; e++ {
			i, j := rng.Intn(size), rng.Intn(size)
			if i != j {
				_ = b.AddNet("", base+i, base+j)
			}
		}
	}
	for c := 0; c+1 < k; c++ {
		_ = b.AddNet("", c*size+rng.Intn(size), (c+1)*size+rng.Intn(size))
	}
	return b.Build()
}

func TestRefineKWayNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 6; trial++ {
		k := 3 + trial%2
		h := plantedKNetlist(t, k, 10, int64(trial))
		n := h.NumModules()
		assign := make([]int, n)
		for i := range assign {
			assign[i] = rng.Intn(k)
		}
		// Ensure non-empty clusters.
		for c := 0; c < k; c++ {
			assign[c] = c
		}
		p := partition.MustNew(assign, k)
		res, err := RefineKWay(h, p, KWayOptions{MinSize: 1})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Cut > res.InitialCut {
			t.Errorf("trial %d: cut worsened %d -> %d", trial, res.InitialCut, res.Cut)
		}
		if got := partition.NetCut(h, res.Partition); got != res.Cut {
			t.Errorf("trial %d: reported %d, metric %d", trial, res.Cut, got)
		}
	}
}

func TestRefineKWayFixesScrambledPlanted(t *testing.T) {
	k, size := 3, 12
	h := plantedKNetlist(t, k, size, 7)
	// Start from the planted partition with 30% of modules scrambled.
	rng := rand.New(rand.NewSource(5))
	assign := make([]int, k*size)
	for c := 0; c < k; c++ {
		for i := 0; i < size; i++ {
			assign[c*size+i] = c
		}
	}
	for i := range assign {
		if rng.Float64() < 0.3 {
			assign[i] = rng.Intn(k)
		}
	}
	for c := 0; c < k; c++ {
		assign[c*size] = c // keep all clusters non-empty
	}
	p := partition.MustNew(assign, k)
	res, err := RefineKWay(h, p, KWayOptions{MinSize: 4, MaxRounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut >= res.InitialCut {
		t.Errorf("no improvement: %d -> %d", res.InitialCut, res.Cut)
	}
	// The planted optimum cuts only the k−1 bridges; refinement should
	// get close.
	if res.Cut > 3*(k-1) {
		t.Errorf("cut %d far from planted %d", res.Cut, k-1)
	}
	t.Logf("scrambled %d -> refined %d (planted %d)", res.InitialCut, res.Cut, k-1)
}

func TestRefineKWayPreservesSizesBound(t *testing.T) {
	h := plantedKNetlist(t, 4, 8, 9)
	n := h.NumModules()
	assign := make([]int, n)
	for i := range assign {
		assign[i] = i % 4
	}
	p := partition.MustNew(assign, 4)
	res, err := RefineKWay(h, p, KWayOptions{MinSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	for c, s := range res.Partition.Sizes() {
		if s < 5 {
			t.Errorf("cluster %d shrank to %d < 5", c, s)
		}
	}
}

func TestRefineKWayValidation(t *testing.T) {
	h := plantedKNetlist(t, 2, 5, 1)
	p1 := partition.MustNew(make([]int, 10), 1)
	if _, err := RefineKWay(h, p1, KWayOptions{}); err == nil {
		t.Error("k=1 accepted")
	}
	short := partition.MustNew([]int{0, 1}, 2)
	if _, err := RefineKWay(h, short, KWayOptions{}); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestRefineKWayInputNotMutated(t *testing.T) {
	h := plantedKNetlist(t, 3, 6, 3)
	assign := make([]int, 18)
	for i := range assign {
		assign[i] = i % 3
	}
	p := partition.MustNew(assign, 3)
	orig := append([]int(nil), p.Assign...)
	if _, err := RefineKWay(h, p, KWayOptions{MinSize: 1}); err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if p.Assign[i] != orig[i] {
			t.Fatal("input partition mutated")
		}
	}
}
