package fm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hypergraph"
	"repro/internal/partition"
)

func randomNetlist(t *testing.T, n, nets int, seed int64) *hypergraph.Hypergraph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := hypergraph.NewBuilder()
	b.AddModules(n)
	for e := 0; e < nets; e++ {
		size := 2 + rng.Intn(3)
		if size > n {
			size = n
		}
		mods := rng.Perm(n)[:size]
		if err := b.AddNet("", mods...); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func randomBalancedBipartition(rng *rand.Rand, n int) *partition.Partition {
	assign := make([]int, n)
	perm := rng.Perm(n)
	for i, v := range perm {
		if i < n/2 {
			assign[v] = 0
		} else {
			assign[v] = 1
		}
	}
	return partition.MustNew(assign, 2)
}

func TestRefineNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.Intn(40)
		h := randomNetlist(t, n, 3*n, int64(trial))
		p := randomBalancedBipartition(rng, n)
		res, err := Refine(h, p, Options{MinFrac: 0.45})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cut > res.InitialCut {
			t.Errorf("trial %d: cut worsened %d -> %d", trial, res.InitialCut, res.Cut)
		}
		// Reported cut must match the metric.
		if got := partition.NetCut(h, res.Partition); got != res.Cut {
			t.Errorf("trial %d: reported %d, metric %d", trial, res.Cut, got)
		}
		// Balance must hold.
		lo := int(float64(n)*0.45 + 0.999999)
		if !res.Partition.IsBalanced(lo, n-lo) {
			t.Errorf("trial %d: sizes %v violate balance", trial, res.Partition.Sizes())
		}
	}
}

func TestRefineImprovesBadStart(t *testing.T) {
	// Two cliques of 10 joined by one net, started from a deliberately
	// interleaved partition: FM must find the planted cut of 1.
	b := hypergraph.NewBuilder()
	b.AddModules(20)
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			_ = b.AddNet("", i, j)
			_ = b.AddNet("", 10+i, 10+j)
		}
	}
	_ = b.AddNet("bridge", 9, 10)
	h := b.Build()
	assign := make([]int, 20)
	for i := range assign {
		assign[i] = i % 2 // worst case: alternate sides
	}
	p := partition.MustNew(assign, 2)
	res, err := Refine(h, p, Options{MinFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != 1 {
		t.Errorf("cut = %d, want 1 after refinement", res.Cut)
	}
	if res.Cut >= res.InitialCut {
		t.Errorf("no improvement recorded: %d -> %d", res.InitialCut, res.Cut)
	}
}

func TestRefineLocalOptimumIsStable(t *testing.T) {
	// Refining an already-optimal partition must leave the cut unchanged.
	b := hypergraph.NewBuilder()
	b.AddModules(8)
	for i := 0; i < 3; i++ {
		_ = b.AddNet("", i, i+1)
	}
	for i := 4; i < 7; i++ {
		_ = b.AddNet("", i, i+1)
	}
	_ = b.AddNet("bridge", 3, 4)
	h := b.Build()
	p := partition.MustNew([]int{0, 0, 0, 0, 1, 1, 1, 1}, 2)
	res, err := Refine(h, p, Options{MinFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != 1 || res.InitialCut != 1 {
		t.Errorf("cut %d (initial %d), want 1/1", res.Cut, res.InitialCut)
	}
}

func TestRefineValidation(t *testing.T) {
	h := randomNetlist(t, 10, 15, 2)
	p2 := partition.MustNew(make([]int, 10), 2) // all on side 0: imbalanced
	if _, err := Refine(h, p2, Options{MinFrac: 0.4}); err == nil {
		t.Error("imbalanced input accepted")
	}
	p3 := partition.MustNew([]int{0, 1, 2, 0, 1, 2, 0, 1, 2, 0}, 3)
	if _, err := Refine(h, p3, Options{MinFrac: 0.4}); err == nil {
		t.Error("3-way partition accepted")
	}
	pOK := partition.MustNew([]int{0, 1, 0, 1, 0, 1, 0, 1, 0, 1}, 2)
	if _, err := Refine(h, pOK, Options{MinFrac: 0}); err == nil {
		t.Error("MinFrac=0 accepted")
	}
	if _, err := Refine(h, pOK, Options{MinFrac: 0.8}); err == nil {
		t.Error("MinFrac>0.5 accepted")
	}
	short := partition.MustNew([]int{0, 1}, 2)
	if _, err := Refine(h, short, Options{MinFrac: 0.4}); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestRefineDoesNotMutateInput(t *testing.T) {
	h := randomNetlist(t, 16, 30, 8)
	rng := rand.New(rand.NewSource(3))
	p := randomBalancedBipartition(rng, 16)
	orig := append([]int(nil), p.Assign...)
	if _, err := Refine(h, p, Options{MinFrac: 0.4}); err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if p.Assign[i] != orig[i] {
			t.Fatal("input partition mutated")
		}
	}
}

// Property-based: for random netlists and random balanced starts, the
// refined partition always satisfies the balance bound and never worsens
// the cut.
func TestQuickRefineInvariants(t *testing.T) {
	h := randomNetlist(t, 24, 60, 12)
	n := 24
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomBalancedBipartition(rng, n)
		res, err := Refine(h, p, Options{MinFrac: 0.4})
		if err != nil {
			return false
		}
		lo := int(float64(n)*0.4 + 0.999999)
		return res.Cut <= res.InitialCut && res.Partition.IsBalanced(lo, n-lo)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
