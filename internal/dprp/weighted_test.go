package dprp

import (
	"testing"

	"repro/internal/partition"
)

func TestBestBalancedSplitAreasUnitEqualsUnweighted(t *testing.T) {
	h := randomNetlist(t, 14, 25, 3)
	order := identityOrder(14)
	w, err := BestBalancedSplitAreas(h, order, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	u, err := BestBalancedSplit(h, order, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if w.Cut != u.Cut {
		t.Errorf("unit-area weighted split cut %v != unweighted %v", w.Cut, u.Cut)
	}
}

func TestBestBalancedSplitAreasRespectsAreas(t *testing.T) {
	h := randomNetlist(t, 10, 20, 5)
	// Module 0 is huge: an area-balanced split must put it alone-ish.
	areas := make([]float64, 10)
	for i := range areas {
		areas[i] = 1
	}
	areas[0] = 9 // total 18; each side needs >= 7.2
	if err := h.SetAreas(areas); err != nil {
		t.Fatal(err)
	}
	order := identityOrder(10)
	res, err := BestBalancedSplitAreas(h, order, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	a := partition.ClusterAreas(h, res.Partition)
	if a[0] < 7.2 || a[1] < 7.2 {
		t.Errorf("areas %v violate 40%% area balance", a)
	}
	// With module counts, side 0 can be tiny (the big module alone is
	// almost enough area): verify the split is not count-balanced.
	if res.Pos > 4 {
		t.Logf("split pos %d (count-unbalanced as expected)", res.Pos)
	}
}

func TestBestBalancedSplitAreasRelaxesToMostBalanced(t *testing.T) {
	h := randomNetlist(t, 6, 10, 7)
	areas := []float64{100, 1, 1, 1, 1, 1}
	if err := h.SetAreas(areas); err != nil {
		t.Fatal(err)
	}
	// Every split puts the 100-area module on one side: a min side frac
	// of 0.45 is unreachable (other side max 5/105 < 45%). The sweep must
	// relax to the most balanced achievable split — the giant alone —
	// rather than fail (the hard failure was an oracle-harness find).
	res, err := BestBalancedSplitAreas(h, identityOrder(6), 0.45)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pos != 1 {
		t.Errorf("split pos %d, want 1 (giant module alone is the most balanced split)", res.Pos)
	}
	// A fraction above 1/2 is impossible by definition and still errors.
	if _, err := BestBalancedSplitAreas(h, identityOrder(6), 0.6); err == nil {
		t.Error("minFrac > 0.5 accepted")
	}
}

func TestAreaScaledCostUnitMatches(t *testing.T) {
	h := randomNetlist(t, 12, 24, 9)
	p, err := partition.FromOrderSplit(identityOrder(12), []int{6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	u := partition.ScaledCost(h, p)
	w := partition.AreaScaledCost(h, p)
	if diff := u - w; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("unit-area AreaScaledCost %v != ScaledCost %v", w, u)
	}
}
