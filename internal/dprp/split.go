// Package dprp implements splitting a vertex ordering into partitionings:
//
//   - single-split bipartitioning helpers (all splits, balanced splits,
//     best ratio-cut split) used by MELO, SB and RSB, and
//
//   - DP-RP, the dynamic-programming "restricted partitioning" algorithm
//     of Alpert–Kahng [1]: given an ordering, find the k-way partitioning
//     whose clusters are contiguous blocks of the ordering, minimizing
//     Scaled Cost subject to cluster-size bounds.
package dprp

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// CutProfile returns, for each split position s in 1..n−1, the number of
// nets cut when ordering[0:s] is one side and ordering[s:] the other.
// profile[0] corresponds to s = 1. Runs in O(pins + n).
func CutProfile(h *hypergraph.Hypergraph, order []int) []float64 {
	n := len(order)
	if n != h.NumModules() {
		panic(fmt.Sprintf("dprp: ordering covers %d modules, hypergraph has %d", n, h.NumModules()))
	}
	pos := invert(order)
	diff := make([]float64, n+1)
	for _, net := range h.Nets {
		lo, hi := span(net, pos)
		// Net is cut for split positions s in [lo+1, hi].
		diff[lo+1]++
		diff[hi+1]--
	}
	return accumulate(diff, n)
}

// GraphCutProfile is CutProfile for a weighted graph: profile[s−1] is the
// total weight of edges crossing split position s.
func GraphCutProfile(g *graph.Graph, order []int) []float64 {
	n := len(order)
	pos := invert(order)
	diff := make([]float64, n+1)
	for u := 0; u < g.N(); u++ {
		for _, half := range g.Adj(u) {
			if u < half.To {
				lo, hi := pos[u], pos[half.To]
				if lo > hi {
					lo, hi = hi, lo
				}
				diff[lo+1] += half.W
				diff[hi+1] -= half.W
			}
		}
	}
	return accumulate(diff, n)
}

func accumulate(diff []float64, n int) []float64 {
	profile := make([]float64, n-1)
	run := 0.0
	for s := 1; s < n; s++ {
		run += diff[s]
		profile[s-1] = run
	}
	return profile
}

func invert(order []int) []int {
	pos := make([]int, len(order))
	for p, v := range order {
		pos[v] = p
	}
	return pos
}

func span(net []int, pos []int) (lo, hi int) {
	lo, hi = pos[net[0]], pos[net[0]]
	for _, m := range net[1:] {
		p := pos[m]
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	return lo, hi
}

// SplitResult describes the best split found by a bipartitioning sweep.
type SplitResult struct {
	// Pos is the split position: the first Pos ordering entries form
	// cluster 0.
	Pos int
	// Cut is the objective at the split (net count, edge weight, or ratio
	// cut depending on the sweep).
	Cut float64
	// Partition is the resulting bipartition over the original indices.
	Partition *partition.Partition
}

// BestBalancedSplit scans all split positions whose smaller side holds at
// least minFrac of the elements (the paper's Table 5 uses minFrac = 0.45)
// and returns the minimum net cut. Ties prefer the most balanced split.
func BestBalancedSplit(h *hypergraph.Hypergraph, order []int, minFrac float64) (SplitResult, error) {
	if len(order) != h.NumModules() {
		return SplitResult{}, fmt.Errorf("dprp: ordering covers %d modules, hypergraph has %d", len(order), h.NumModules())
	}
	if len(order) < 2 {
		return SplitResult{}, fmt.Errorf("dprp: cannot split an ordering of %d elements", len(order))
	}
	profile := CutProfile(h, order)
	return bestSplit(order, profile, minFrac, false)
}

// BestRatioCutSplit scans all split positions and returns the one
// minimizing cut(s)/(s·(n−s)) — the split rule of spectral bipartitioning
// in the Hagen–Kahng ratio-cut formulation [25].
func BestRatioCutSplit(h *hypergraph.Hypergraph, order []int) (SplitResult, error) {
	profile := CutProfile(h, order)
	return bestSplit(order, profile, 0, true)
}

// BestRatioCutSplitBalanced is BestRatioCutSplit restricted to splits
// whose smaller side holds at least minFrac of the elements — useful when
// pure ratio cut would peel single vertices (e.g. in hierarchical
// clustering).
func BestRatioCutSplitBalanced(h *hypergraph.Hypergraph, order []int, minFrac float64) (SplitResult, error) {
	profile := CutProfile(h, order)
	return bestSplit(order, profile, minFrac, true)
}

// BestBalancedSplitGraph and BestRatioCutSplitGraph are the weighted-graph
// analogues.
func BestBalancedSplitGraph(g *graph.Graph, order []int, minFrac float64) (SplitResult, error) {
	profile := GraphCutProfile(g, order)
	return bestSplit(order, profile, minFrac, false)
}

// BestRatioCutSplitGraph scans all splits minimizing weighted ratio cut.
func BestRatioCutSplitGraph(g *graph.Graph, order []int) (SplitResult, error) {
	profile := GraphCutProfile(g, order)
	return bestSplit(order, profile, 0, true)
}

func bestSplit(order []int, profile []float64, minFrac float64, ratio bool) (SplitResult, error) {
	n := len(order)
	if n < 2 {
		return SplitResult{}, fmt.Errorf("dprp: cannot split an ordering of %d elements", n)
	}
	lo := int(math.Ceil(minFrac * float64(n)))
	// For odd n a fractional bound can exceed the most balanced
	// achievable smaller side (minFrac = 0.45, n = 5: ceil(2.25) = 3 > 2),
	// which would reject every split including the perfectly balanced
	// one. Relax to the most balanced split instead of failing.
	if most := n / 2; lo > most && minFrac <= 0.5 {
		lo = most
	}
	if lo < 1 {
		lo = 1
	}
	hi := n - lo
	if hi < lo {
		return SplitResult{}, fmt.Errorf("dprp: balance bound %.2f leaves no feasible split for n=%d", minFrac, n)
	}
	bestPos := -1
	best := math.Inf(1)
	mid := float64(n) / 2
	for s := lo; s <= hi; s++ {
		c := profile[s-1]
		if ratio {
			c = c / (float64(s) * float64(n-s))
		}
		if c < best || (c == best && math.Abs(float64(s)-mid) < math.Abs(float64(bestPos)-mid)) {
			best = c
			bestPos = s
		}
	}
	p, err := partition.FromOrderSplit(order, []int{bestPos}, 2)
	if err != nil {
		return SplitResult{}, err
	}
	return SplitResult{Pos: bestPos, Cut: best, Partition: p}, nil
}
