package dprp

import (
	"fmt"
	"testing"

	"repro/internal/hypergraph"
)

func pathNetlist(t *testing.T, n int) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder()
	b.AddModules(n)
	for i := 0; i+1 < n; i++ {
		if err := b.AddNet("", i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// TestBestBalancedSplitOddN: for odd n, ceil(0.45·n) can exceed floor(n/2)
// (n = 5: 3 > 2), and the sweep used to reject every split — spectral
// bipartitioning hard-failed on ANY odd netlist up to n = 9 with the
// paper's default balance. The oracle harness surfaced this; the window
// must relax to the most balanced achievable split.
func TestBestBalancedSplitOddN(t *testing.T) {
	for _, n := range []int{3, 5, 7, 9, 11} {
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			h := pathNetlist(t, n)
			res, err := BestBalancedSplit(h, identityOrder(n), 0.45)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if res.Cut != 1 {
				t.Errorf("n=%d: cut %v, want 1 (path)", n, res.Cut)
			}
			sizes := res.Partition.Sizes()
			small := sizes[0]
			if sizes[1] < small {
				small = sizes[1]
			}
			if small < n/2 {
				t.Errorf("n=%d: smaller side %d, want most balanced >= %d", n, small, n/2)
			}
		})
	}
	// A fraction above 1/2 is impossible by definition and still errors.
	if _, err := BestBalancedSplit(pathNetlist(t, 5), identityOrder(5), 0.6); err == nil {
		t.Error("minFrac > 0.5 accepted")
	}
}
