package dprp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/partition"
)

func randomNetlist(t *testing.T, n, nets int, seed int64) *hypergraph.Hypergraph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := hypergraph.NewBuilder()
	b.AddModules(n)
	for e := 0; e < nets; e++ {
		size := 2 + rng.Intn(4)
		if size > n {
			size = n
		}
		mods := rng.Perm(n)[:size]
		if err := b.AddNet("", mods...); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func identityOrder(n int) []int {
	o := make([]int, n)
	for i := range o {
		o[i] = i
	}
	return o
}

func TestCutProfileMatchesDirectNetCut(t *testing.T) {
	h := randomNetlist(t, 12, 20, 1)
	rng := rand.New(rand.NewSource(2))
	order := rng.Perm(12)
	profile := CutProfile(h, order)
	if len(profile) != 11 {
		t.Fatalf("profile length %d", len(profile))
	}
	for s := 1; s < 12; s++ {
		p, err := partition.FromOrderSplit(order, []int{s}, 2)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(partition.NetCut(h, p))
		if profile[s-1] != want {
			t.Errorf("split %d: profile %v, direct %v", s, profile[s-1], want)
		}
	}
}

func TestGraphCutProfileMatchesDirectCut(t *testing.T) {
	g := graph.RandomConnected(15, 25, 3)
	rng := rand.New(rand.NewSource(4))
	order := rng.Perm(15)
	profile := GraphCutProfile(g, order)
	for s := 1; s < 15; s++ {
		p, err := partition.FromOrderSplit(order, []int{s}, 2)
		if err != nil {
			t.Fatal(err)
		}
		want := partition.CutWeight(g, p)
		if math.Abs(profile[s-1]-want) > 1e-9 {
			t.Errorf("split %d: profile %v, direct %v", s, profile[s-1], want)
		}
	}
}

func TestBestBalancedSplit(t *testing.T) {
	// Two cliques of 4 joined by one net: best balanced split cuts 1 net.
	b := hypergraph.NewBuilder()
	b.AddModules(8)
	for _, pair := range [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}} {
		_ = b.AddNet("", pair[0], pair[1])
	}
	for _, pair := range [][2]int{{4, 5}, {4, 6}, {4, 7}, {5, 6}, {5, 7}, {6, 7}} {
		_ = b.AddNet("", pair[0], pair[1])
	}
	_ = b.AddNet("bridge", 3, 4)
	h := b.Build()
	res, err := BestBalancedSplit(h, identityOrder(8), 0.45)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pos != 4 || res.Cut != 1 {
		t.Errorf("pos=%d cut=%v, want 4 and 1", res.Pos, res.Cut)
	}
	sizes := res.Partition.Sizes()
	if sizes[0] != 4 || sizes[1] != 4 {
		t.Errorf("sizes = %v", sizes)
	}
	// Balance bound must be respected even when a lopsided cut is lower.
	res2, err := BestBalancedSplit(h, identityOrder(8), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Pos != 4 {
		t.Errorf("50%% balance must force the middle split, got %d", res2.Pos)
	}
}

func TestBestRatioCutSplit(t *testing.T) {
	h := randomNetlist(t, 10, 15, 5)
	order := identityOrder(10)
	res, err := BestRatioCutSplit(h, order)
	if err != nil {
		t.Fatal(err)
	}
	// Verify optimality by scanning.
	profile := CutProfile(h, order)
	best := math.Inf(1)
	for s := 1; s < 10; s++ {
		rc := profile[s-1] / (float64(s) * float64(10-s))
		if rc < best {
			best = rc
		}
	}
	if math.Abs(res.Cut-best) > 1e-12 {
		t.Errorf("ratio cut %v, want %v", res.Cut, best)
	}
}

func TestBestSplitErrors(t *testing.T) {
	h := randomNetlist(t, 4, 3, 6)
	if _, err := BestBalancedSplit(h, []int{0}, 0.4); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := BestBalancedSplit(h, identityOrder(4), 0.9); err == nil {
		t.Error("infeasible balance accepted")
	}
}

// bruteDPRP enumerates all contiguous k-way splits and returns the minimal
// Scaled Cost.
func bruteDPRP(h *hypergraph.Hypergraph, order []int, k, lo, hi int) float64 {
	n := len(order)
	best := math.Inf(1)
	var rec func(start, t int, splits []int)
	rec = func(start, t int, splits []int) {
		if t == k {
			size := n - start
			if size < lo || size > hi {
				return
			}
			p, err := partition.FromOrderSplit(order, splits, k)
			if err != nil {
				return
			}
			if sc := partition.ScaledCost(h, p); sc < best {
				best = sc
			}
			return
		}
		for size := lo; size <= hi && start+size < n; size++ {
			rec(start+size, t+1, append(splits, start+size))
		}
	}
	rec(0, 1, nil)
	return best
}

func TestDPRPMatchesBruteForce(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		n := 10 + trial
		h := randomNetlist(t, n, 2*n, int64(trial+10))
		rng := rand.New(rand.NewSource(int64(trial)))
		order := rng.Perm(n)
		for _, k := range []int{2, 3, 4} {
			lo, hi := 1, n
			res, err := Partition(h, order, Options{K: k, MinSize: lo, MaxSize: hi})
			if err != nil {
				t.Fatalf("trial %d k=%d: %v", trial, k, err)
			}
			want := bruteDPRP(h, order, k, lo, hi)
			if math.Abs(res.ScaledCost-want) > 1e-9 {
				t.Errorf("trial %d k=%d: DP %v, brute force %v", trial, k, res.ScaledCost, want)
			}
			// The reported Scaled Cost must match the metric on the
			// returned partition.
			direct := partition.ScaledCost(h, res.Partition)
			if math.Abs(res.ScaledCost-direct) > 1e-9 {
				t.Errorf("trial %d k=%d: reported %v, metric %v", trial, k, res.ScaledCost, direct)
			}
		}
	}
}

func TestDPRPRespectsSizeBounds(t *testing.T) {
	h := randomNetlist(t, 20, 40, 99)
	res, err := Partition(h, identityOrder(20), Options{K: 4, MinSize: 4, MaxSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Partition.Sizes() {
		if s < 4 || s > 6 {
			t.Errorf("cluster size %d outside [4,6]", s)
		}
	}
	if len(res.Splits) != 3 {
		t.Errorf("splits = %v", res.Splits)
	}
}

func TestDPRPDefaultsAndErrors(t *testing.T) {
	h := randomNetlist(t, 16, 30, 7)
	res, err := Partition(h, identityOrder(16), Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Default bounds: [n/(2k), ceil(2n/k)] = [2, 8].
	for _, s := range res.Partition.Sizes() {
		if s < 2 || s > 8 {
			t.Errorf("cluster size %d outside default bounds", s)
		}
	}
	if _, err := Partition(h, identityOrder(16), Options{K: 1}); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := Partition(h, identityOrder(16), Options{K: 17}); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := Partition(h, identityOrder(8), Options{K: 2}); err == nil {
		t.Error("ordering/hypergraph size mismatch accepted")
	}
	if _, err := Partition(h, identityOrder(16), Options{K: 4, MinSize: 5, MaxSize: 5}); err == nil {
		t.Error("infeasible bounds accepted (4 clusters of exactly 5 != 16)")
	}
}

func TestNextPinAfter(t *testing.T) {
	ps := []int{1, 4, 9}
	if got := nextPinAfter(ps, 0); got != 1 {
		t.Errorf("nextPinAfter(0) = %d", got)
	}
	if got := nextPinAfter(ps, 1); got != 4 {
		t.Errorf("nextPinAfter(1) = %d", got)
	}
	if got := nextPinAfter(ps, 9); got < 1<<30 {
		t.Errorf("nextPinAfter(9) = %d, want MaxInt", got)
	}
}
