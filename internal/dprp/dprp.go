package dprp

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/hypergraph"
	"repro/internal/partition"
	"repro/internal/trace"
)

// Options configures the DP-RP dynamic program.
type Options struct {
	// K is the number of clusters. Required, >= 2.
	K int
	// MinSize and MaxSize bound every cluster's size. Zero values select
	// the defaults n/(2k) and ceil(2n/k), the "restricted partitioning"
	// bounds of [1]. Ignored when the netlist carries explicit module
	// areas (unless set explicitly): the paper's weighted-vertex
	// constraint L_h ≤ w(S_h) ≤ W_h bounds AREA sums, not module counts.
	MinSize, MaxSize int
	// MinArea and MaxArea bound every cluster's total module area. Zero
	// values select A/(2k) and 2A/k (the area analogues of the
	// restricted-partitioning bounds) when the netlist has explicit
	// areas and no explicit size bounds were given.
	MinArea, MaxArea float64
}

// AreaBounds returns the default restricted-partitioning area window
// [A/(2k), 2A/k] the DP uses for a netlist of total area A.
func AreaBounds(totalArea float64, k int) (lo, hi float64) {
	return totalArea / (2 * float64(k)), 2 * totalArea / float64(k)
}

// Result is a DP-RP solution.
type Result struct {
	// Partition assigns original indices to clusters 0..K−1 in ordering
	// order (cluster 0 is the first block).
	Partition *partition.Partition
	// Splits are the K−1 block boundaries in the ordering.
	Splits []int
	// ScaledCost is the Scaled Cost of the solution.
	ScaledCost float64
}

// Partition runs DP-RP: it finds the k-way partitioning of the ordering
// into contiguous blocks, with block sizes in [MinSize, MaxSize],
// minimizing Scaled Cost — Σ_blocks E_b/|b| scaled by 1/(n(k−1)), where
// E_b counts nets with a pin inside block b and a pin outside it.
//
// The dynamic program is dp[t][j] = min over block starts i of
// dp[t−1][i−1] + E(i,j)/(j−i+1). Block costs are produced incrementally by
// walking the window start i downward for each block end j, so the total
// cost is O(n·(W + pins·W/n) + n·k·W) where W = MaxSize−MinSize+1.
func Partition(h *hypergraph.Hypergraph, order []int, opts Options) (*Result, error) {
	return PartitionCtx(context.Background(), h, order, opts)
}

// PartitionCtx is Partition with cooperative cancellation: ctx is
// checked at every block-end column of the dynamic program, so a
// cancelled context aborts within one DP column, returning ctx.Err().
func PartitionCtx(ctx context.Context, h *hypergraph.Hypergraph, order []int, opts Options) (*Result, error) {
	n := len(order)
	if n != h.NumModules() {
		return nil, fmt.Errorf("dprp: ordering covers %d modules, hypergraph has %d", n, h.NumModules())
	}
	k := opts.K
	if k < 2 {
		return nil, fmt.Errorf("dprp: k = %d, want >= 2", k)
	}
	if k > n {
		return nil, fmt.Errorf("dprp: k = %d exceeds n = %d", k, n)
	}
	// Balance windows: explicit size bounds always win; otherwise a
	// netlist with explicit module areas is bounded in AREA (the paper's
	// weighted-vertex constraint L_h ≤ w(S_h) ≤ W_h), and only unit-area
	// netlists fall back to the module-count bounds of [1]. Counting
	// modules on a heterogeneous-area netlist was the area-balance bug
	// the oracle harness surfaced: a "balanced" block could hold nearly
	// all the area.
	lo, hi := opts.MinSize, opts.MaxSize
	loA, hiA := opts.MinArea, opts.MaxArea
	sizeExplicit := lo > 0 || hi > 0
	areaMode := loA > 0 || hiA > 0 || (h.HasAreas() && !sizeExplicit)
	if lo <= 0 {
		lo = 1
		if !areaMode {
			lo = n / (2 * k)
			if lo < 1 {
				lo = 1
			}
		}
	}
	if hi <= 0 {
		hi = n
		if !areaMode {
			hi = (2*n + k - 1) / k
		}
	}
	if hi > n {
		hi = n
	}
	if lo*k > n || hi*k < n {
		return nil, fmt.Errorf("dprp: size bounds [%d,%d] infeasible for n=%d k=%d", lo, hi, n, k)
	}
	totalArea := h.TotalArea()
	const areaEps = 1e-9
	areaTol := areaEps * (1 + totalArea)
	if areaMode {
		defLoA, defHiA := AreaBounds(totalArea, k)
		if loA <= 0 {
			loA = defLoA
		}
		if hiA <= 0 {
			hiA = defHiA
		}
		if loA*float64(k) > totalArea+areaTol || hiA*float64(k) < totalArea-areaTol {
			return nil, fmt.Errorf("dprp: area bounds [%g,%g] infeasible for total area %g, k=%d", loA, hiA, totalArea, k)
		}
	}
	// prefixArea[t] is the area of order[0:t]; blocks are bounded via
	// pre-sums so the window arithmetic below is O(1) per (i, j).
	prefixArea := make([]float64, n+1)
	for t := 1; t <= n; t++ {
		prefixArea[t] = prefixArea[t-1] + h.Area(order[t-1])
	}
	blockAreaOK := func(i, j int) bool {
		if !areaMode {
			return true
		}
		a := prefixArea[j+1] - prefixArea[i]
		return a >= loA-areaTol && a <= hiA+areaTol
	}
	// areaILo returns the smallest block start i for which [i, j] does
	// not exceed MaxArea (areas are positive, so block area is monotone
	// decreasing in i).
	areaILo := func(j int) int {
		if !areaMode {
			return 0
		}
		want := prefixArea[j+1] - hiA - areaTol
		i := sort.Search(n+1, func(t int) bool { return prefixArea[t] >= want })
		return i
	}
	// areaIHi returns the largest block start i for which [i, j] still
	// reaches MinArea, or -1 if none does.
	areaIHi := func(j int) int {
		if !areaMode {
			return j
		}
		want := prefixArea[j+1] - loA + areaTol
		i := sort.Search(n+1, func(t int) bool { return prefixArea[t] > want })
		return i - 1
	}

	ctx, sp := trace.Start(ctx, "split.dp", trace.Int("n", n), trace.Int("k", k))
	var cells int64
	defer func() {
		trace.Add(ctx, "dprp.cells", cells)
		sp.Annotate(trace.Int64("cells", cells))
		sp.End()
	}()

	pos := invert(order)
	m := h.NumNets()
	minPos := make([]int, m)
	maxPos := make([]int, m)
	// beforeCnt[i]: nets with maxPos < i. afterCnt[j]: nets with
	// minPos >= j. Used for the O(1) first-block (i = 0) costs, where
	// span overlap and pin containment coincide.
	beforeCnt := make([]int, n+1)
	afterCnt := make([]int, n+1)
	for e, net := range h.Nets {
		lo2, hi2 := span(net, pos)
		minPos[e], maxPos[e] = lo2, hi2
		beforeCnt[hi2+1]++
		afterCnt[lo2]++
	}
	for i := 1; i <= n; i++ {
		beforeCnt[i] += beforeCnt[i-1]
	}
	for j := n - 1; j >= 0; j-- {
		afterCnt[j] += afterCnt[j+1]
	}

	// netsAtPos[p] lists the nets with a pin at ordering position p;
	// nextPin[idx] is, for that (position, net) incidence, the smallest
	// pin position of the same net greater than p (n if none). minStart[p]
	// lists nets whose minimum pin position is p.
	netsAtPos := make([][]int, n)
	minStart := make([][]int, n)
	for e, net := range h.Nets {
		for _, mod := range net {
			p := pos[mod]
			netsAtPos[p] = append(netsAtPos[p], e)
		}
		minStart[minPos[e]] = append(minStart[minPos[e]], e)
	}
	// Per-net sorted pin positions, for next-pin lookups.
	netPins := make([][]int, m)
	for e, net := range h.Nets {
		ps := make([]int, len(net))
		for i2, mod := range net {
			ps[i2] = pos[mod]
		}
		sortInts(ps)
		netPins[e] = ps
	}

	const infCost = math.MaxFloat64 / 4
	dp := make([][]float64, k+1)
	parent := make([][]int, k+1)
	for t := 0; t <= k; t++ {
		dp[t] = make([]float64, n)
		parent[t] = make([]int, n)
		for j := range dp[t] {
			dp[t][j] = infCost
			parent[t][j] = -1
		}
	}

	cost := make([]float64, n) // cost[i] = E(i,j)/(j-i+1) for current j

	for j := 0; j < n; j++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// First block starts at 0: E(0,j) = pinned(0,j) − contained(0,j),
		// where pinned(0,j) = nets with minPos <= j and contained =
		// nets with maxPos <= j.
		size := j + 1
		if size >= lo && size <= hi && blockAreaOK(0, j) {
			pinned := m - afterCnt[j+1]
			contained := beforeCnt[j+1]
			dp[1][j] = float64(pinned-contained) / float64(size)
			parent[1][j] = 0
		}
		if k >= 2 {
			// Walk i from j down to the lowest start any block ending at
			// j may use, maintaining:
			//   pinned    = # nets with >= 1 pin in [i, j]
			//   contained = # nets with all pins in [i, j]
			iLo := j - hi + 1
			if a := areaILo(j); a > iLo {
				iLo = a
			}
			if iLo < 1 {
				iLo = 1
			}
			pinned, contained := 0, 0
			for i := j; i >= iLo; i-- {
				for _, e := range netsAtPos[i] {
					// Net e gains its first pin in the window iff its next
					// pin after position i lies beyond j.
					if nextPinAfter(netPins[e], i) > j {
						pinned++
					}
				}
				for _, e := range minStart[i] {
					if maxPos[e] <= j {
						contained++
					}
				}
				cost[i] = float64(pinned-contained) / float64(j-i+1)
			}
			iHi := j - lo + 1
			if a := areaIHi(j); a < iHi {
				iHi = a
			}
			if iHi > j {
				iHi = j
			}
			for t := 2; t <= k; t++ {
				best := infCost
				bestI := -1
				if iHi >= iLo {
					cells += int64(iHi - iLo + 1)
				}
				for i := iLo; i <= iHi; i++ {
					prev := dp[t-1][i-1]
					if prev >= infCost {
						continue
					}
					if c := prev + cost[i]; c < best {
						best = c
						bestI = i
					}
				}
				dp[t][j] = best
				parent[t][j] = bestI
			}
		}
	}

	if dp[k][n-1] >= infCost {
		return nil, fmt.Errorf("dprp: no feasible %d-way restricted partitioning with bounds [%d,%d]", k, lo, hi)
	}

	// Reconstruct block boundaries right-to-left.
	splits := make([]int, 0, k-1)
	j := n - 1
	for t := k; t >= 2; t-- {
		i := parent[t][j]
		splits = append(splits, i)
		j = i - 1
	}
	for l, r := 0, len(splits)-1; l < r; l, r = l+1, r-1 {
		splits[l], splits[r] = splits[r], splits[l]
	}
	p, err := partition.FromOrderSplit(order, splits, k)
	if err != nil {
		return nil, err
	}
	sc := dp[k][n-1] / (float64(n) * float64(k-1))
	return &Result{Partition: p, Splits: splits, ScaledCost: sc}, nil
}

// nextPinAfter returns the smallest element of sorted ps strictly greater
// than p, or a value larger than any position if none exists.
func nextPinAfter(ps []int, p int) int {
	lo, hi := 0, len(ps)
	for lo < hi {
		mid := (lo + hi) / 2
		if ps[mid] <= p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(ps) {
		return int(^uint(0) >> 1) // MaxInt
	}
	return ps[lo]
}

func sortInts(a []int) {
	// Insertion sort: net sizes are small; avoids pulling in sort for the
	// hot path.
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
