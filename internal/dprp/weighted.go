package dprp

import (
	"fmt"
	"math"

	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// BestBalancedSplitAreas is BestBalancedSplit with balance measured in
// module AREA: the smaller side must hold at least minFrac of the total
// area (the paper's weighted-vertex constraint L_h ≤ w(S_h) ≤ W_h).
// For unit-area netlists it coincides with BestBalancedSplit up to ties.
func BestBalancedSplitAreas(h *hypergraph.Hypergraph, order []int, minFrac float64) (SplitResult, error) {
	n := len(order)
	if n != h.NumModules() {
		return SplitResult{}, fmt.Errorf("dprp: ordering covers %d modules, hypergraph has %d", n, h.NumModules())
	}
	if n < 2 {
		return SplitResult{}, fmt.Errorf("dprp: cannot split an ordering of %d elements", n)
	}
	profile := CutProfile(h, order)
	total := h.TotalArea()
	loArea := minFrac * total
	areaTol := 1e-9 * (1 + total)

	// prefixArea[s] = area of order[0:s].
	prefixArea := make([]float64, n+1)
	for s := 1; s <= n; s++ {
		prefixArea[s] = prefixArea[s-1] + h.Area(order[s-1])
	}

	// When no split reaches the fractional bound (a single huge module,
	// or the count analogue of the odd-n case in bestSplit), relax to the
	// most balanced achievable split rather than fail.
	maxMin := 0.0
	for s := 1; s < n; s++ {
		if m := math.Min(prefixArea[s], total-prefixArea[s]); m > maxMin {
			maxMin = m
		}
	}
	if loArea > maxMin && minFrac <= 0.5 {
		loArea = maxMin
	}

	bestPos := -1
	best := math.Inf(1)
	half := total / 2
	for s := 1; s < n; s++ {
		a := prefixArea[s]
		if a < loArea-areaTol || total-a < loArea-areaTol {
			continue
		}
		c := profile[s-1]
		if c < best || (c == best && math.Abs(a-half) < math.Abs(prefixArea[bestPos]-half)) {
			best = c
			bestPos = s
		}
	}
	if bestPos == -1 {
		return SplitResult{}, fmt.Errorf("dprp: area balance %.2f leaves no feasible split", minFrac)
	}
	p, err := partition.FromOrderSplit(order, []int{bestPos}, 2)
	if err != nil {
		return SplitResult{}, err
	}
	return SplitResult{Pos: bestPos, Cut: best, Partition: p}, nil
}
