package dprp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// TestQuickCutProfileReversal: reversing the ordering mirrors the cut
// profile.
func TestQuickCutProfileReversal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		h := randomNetlistSeeded(rng, n)
		order := rng.Perm(n)
		rev := make([]int, n)
		for i, v := range order {
			rev[n-1-i] = v
		}
		p1 := CutProfile(h, order)
		p2 := CutProfile(h, rev)
		for s := 1; s < n; s++ {
			if p1[s-1] != p2[n-s-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickDPRPNeverWorseThanEvenSplit: DP-RP's optimum over contiguous
// partitions is at most the cost of the even contiguous split.
func TestQuickDPRPNeverWorseThanEvenSplit(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 9 + rng.Intn(15)
		h := randomNetlistSeeded(rng, n)
		order := rng.Perm(n)
		k := 2 + rng.Intn(2)
		res, err := Partition(h, order, Options{K: k, MinSize: 1, MaxSize: n})
		if err != nil {
			return false
		}
		// Even contiguous split.
		splits := make([]int, k-1)
		for i := range splits {
			splits[i] = (i + 1) * n / k
		}
		p, err := partition.FromOrderSplit(order, splits, k)
		if err != nil {
			return false
		}
		even := partition.ScaledCost(h, p)
		return res.ScaledCost <= even+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickBalancedSplitRespectsBound: the returned split never violates
// the requested minimum fraction — relaxed, as documented, to the most
// balanced achievable split when ceil(frac*n) exceeds n/2 (odd n).
func TestQuickBalancedSplitRespectsBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(20)
		h := randomNetlistSeeded(rng, n)
		order := rng.Perm(n)
		frac := 0.2 + 0.25*rng.Float64()
		res, err := BestBalancedSplit(h, order, frac)
		if err != nil {
			return false // frac <= 0.45 is always feasible post-relaxation
		}
		lo := int(math.Ceil(frac * float64(n)))
		if most := n / 2; lo > most {
			lo = most
		}
		sizes := res.Partition.Sizes()
		return sizes[0] >= lo && sizes[1] >= lo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func randomNetlistSeeded(rng *rand.Rand, n int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder()
	b.AddModules(n)
	for e := 0; e < 2*n; e++ {
		size := 2 + rng.Intn(3)
		if size > n {
			size = n
		}
		_ = b.AddNet("", rng.Perm(n)[:size]...)
	}
	return b.Build()
}
