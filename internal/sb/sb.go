// Package sb implements spectral bipartitioning (SB), the classic
// single-eigenvector heuristic of Hall [27] and Fiedler [18] in the
// ratio-cut formulation of Hagen–Kahng [25]: sort the vertices by their
// Fiedler-vector (second Laplacian eigenvector) coordinates and split the
// resulting linear ordering.
//
// SB is the d = 1 special case of MELO's philosophy and the primary
// baseline the paper argues against.
package sb

import (
	"errors"
	"sort"

	"repro/internal/dprp"
	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/hypergraph"
)

// FiedlerOrder returns the vertices of g sorted by their coordinates in
// the Fiedler vector (the eigenvector of the second-smallest Laplacian
// eigenvalue). Ties are broken by vertex index for determinism.
func FiedlerOrder(g *graph.Graph, dec *eigen.Decomposition) ([]int, error) {
	if dec.D() < 2 {
		return nil, errors.New("sb: decomposition must include at least 2 eigenpairs")
	}
	n := g.N()
	if dec.Vectors.Rows != n {
		return nil, errors.New("sb: decomposition size does not match graph")
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	fiedler := dec.Vector(1)
	sort.SliceStable(order, func(a, b int) bool {
		if fiedler[order[a]] != fiedler[order[b]] {
			return fiedler[order[a]] < fiedler[order[b]]
		}
		return order[a] < order[b]
	})
	return order, nil
}

// Bipartition runs SB on the netlist h using the clique-model graph g
// (and its eigendecomposition): Fiedler ordering followed by the best
// balanced split with the smaller side holding at least minFrac of the
// modules.
func Bipartition(h *hypergraph.Hypergraph, g *graph.Graph, dec *eigen.Decomposition, minFrac float64) (dprp.SplitResult, error) {
	order, err := FiedlerOrder(g, dec)
	if err != nil {
		return dprp.SplitResult{}, err
	}
	return dprp.BestBalancedSplit(h, order, minFrac)
}

// RatioCutBipartition runs SB with the Hagen–Kahng ratio-cut split rule:
// the best of all splits of the Fiedler ordering under cut/(|C_1|·|C_2|).
func RatioCutBipartition(h *hypergraph.Hypergraph, g *graph.Graph, dec *eigen.Decomposition) (dprp.SplitResult, error) {
	order, err := FiedlerOrder(g, dec)
	if err != nil {
		return dprp.SplitResult{}, err
	}
	return dprp.BestRatioCutSplit(h, order)
}
