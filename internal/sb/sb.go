// Package sb implements spectral bipartitioning (SB), the classic
// single-eigenvector heuristic of Hall [27] and Fiedler [18] in the
// ratio-cut formulation of Hagen–Kahng [25]: sort the vertices by their
// Fiedler-vector (second Laplacian eigenvector) coordinates and split the
// resulting linear ordering.
//
// SB is the d = 1 special case of MELO's philosophy and the primary
// baseline the paper argues against.
package sb

import (
	"errors"
	"math"
	"sort"

	"repro/internal/dprp"
	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/hypergraph"
)

// FiedlerOrder returns the vertices of g sorted by their coordinates in
// the Fiedler vector (the eigenvector of the second-smallest Laplacian
// eigenvalue). The coordinates are quantized and sign-canonicalized
// first, so the ordering is deterministic under the eigenvector's
// arbitrary sign and under eigensolver noise — the fragile regime is a
// degenerate λ₂ (even cycles, stars, disconnected netlists), where
// coordinates tie or differ only by solver noise and v and −v are
// equally valid answers. Residual ties break by vertex index.
func FiedlerOrder(g *graph.Graph, dec *eigen.Decomposition) ([]int, error) {
	if dec.D() < 2 {
		return nil, errors.New("sb: decomposition must include at least 2 eigenpairs")
	}
	n := g.N()
	if dec.Vectors.Rows != n {
		return nil, errors.New("sb: decomposition size does not match graph")
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	key := canonicalKeys(dec.Vector(1))
	sort.SliceStable(order, func(a, b int) bool {
		if key[order[a]] != key[order[b]] {
			return key[order[a]] < key[order[b]]
		}
		return order[a] < order[b]
	})
	return order, nil
}

// quantum is the relative grid the Fiedler coordinates are snapped to:
// coordinates within eigensolver noise of each other must collapse to
// the same key so their order is decided by index, not by noise.
const quantum = 1e-9

// canonicalKeys maps Fiedler coordinates to comparison keys: each
// coordinate is rounded onto a quantum·max|v| grid, then the whole key
// vector is negated if its first nonzero entry is negative. Rounding
// commutes with negation (math.Round is odd), so v and −v produce
// identical keys.
func canonicalKeys(v []float64) []float64 {
	maxAbs := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	keys := make([]float64, len(v))
	if maxAbs == 0 {
		return keys
	}
	scale := quantum * maxAbs
	for i, x := range v {
		keys[i] = math.Round(x / scale)
	}
	for _, k := range keys {
		if k != 0 {
			if k < 0 {
				for i := range keys {
					keys[i] = -keys[i]
				}
			}
			break
		}
	}
	return keys
}

// Bipartition runs SB on the netlist h using the clique-model graph g
// (and its eigendecomposition): Fiedler ordering followed by the best
// balanced split with the smaller side holding at least minFrac of the
// modules.
func Bipartition(h *hypergraph.Hypergraph, g *graph.Graph, dec *eigen.Decomposition, minFrac float64) (dprp.SplitResult, error) {
	order, err := FiedlerOrder(g, dec)
	if err != nil {
		return dprp.SplitResult{}, err
	}
	return dprp.BestBalancedSplit(h, order, minFrac)
}

// RatioCutBipartition runs SB with the Hagen–Kahng ratio-cut split rule:
// the best of all splits of the Fiedler ordering under cut/(|C_1|·|C_2|).
func RatioCutBipartition(h *hypergraph.Hypergraph, g *graph.Graph, dec *eigen.Decomposition) (dprp.SplitResult, error) {
	order, err := FiedlerOrder(g, dec)
	if err != nil {
		return dprp.SplitResult{}, err
	}
	return dprp.BestRatioCutSplit(h, order)
}
