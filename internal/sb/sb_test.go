package sb

import (
	"testing"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/linalg"
	"repro/internal/partition"
)

func decompose(t *testing.T, g *graph.Graph) *eigen.Decomposition {
	t.Helper()
	dec, err := eigen.SmallestEigenpairs(g.Laplacian(), 2)
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

// pathNetlist builds the hypergraph whose clique expansion is the path.
func pathNetlist(t *testing.T, n int) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder()
	b.AddModules(n)
	for i := 0; i < n-1; i++ {
		if err := b.AddNet("", i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestFiedlerOrderOnPath(t *testing.T) {
	// The path's Fiedler vector is monotone along the path, so the order
	// must be the path order or its reverse.
	n := 16
	g := graph.Path(n)
	order, err := FiedlerOrder(g, decompose(t, g))
	if err != nil {
		t.Fatal(err)
	}
	forward, backward := true, true
	for i, v := range order {
		if v != i {
			forward = false
		}
		if v != n-1-i {
			backward = false
		}
	}
	if !forward && !backward {
		t.Errorf("Fiedler order of path = %v", order)
	}
}

func TestBipartitionPath(t *testing.T) {
	n := 12
	h := pathNetlist(t, n)
	g, err := graph.FromHypergraph(h, graph.Standard, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Bipartition(h, g, decompose(t, g), 0.45)
	if err != nil {
		t.Fatal(err)
	}
	// The optimal balanced cut of a path is a single net.
	if res.Cut != 1 {
		t.Errorf("cut = %v, want 1", res.Cut)
	}
	if !res.Partition.IsBalanced(5, 7) {
		t.Errorf("sizes = %v violate 45%% balance", res.Partition.Sizes())
	}
}

func TestRatioCutBipartitionTwoClusters(t *testing.T) {
	// Netlist with two cliques of 5 joined by one net.
	b := hypergraph.NewBuilder()
	b.AddModules(10)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			_ = b.AddNet("", i, j)
			_ = b.AddNet("", 5+i, 5+j)
		}
	}
	_ = b.AddNet("bridge", 4, 5)
	h := b.Build()
	g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RatioCutBipartition(h, g, decompose(t, g))
	if err != nil {
		t.Fatal(err)
	}
	if got := partition.NetCut(h, res.Partition); got != 1 {
		t.Errorf("net cut = %d, want 1 (the bridge)", got)
	}
	sizes := res.Partition.Sizes()
	if sizes[0] != 5 || sizes[1] != 5 {
		t.Errorf("sizes = %v, want 5/5", sizes)
	}
}

func TestFiedlerOrderValidation(t *testing.T) {
	g := graph.Path(6)
	dec := decompose(t, g)
	one, err := dec.Truncate(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FiedlerOrder(g, one); err == nil {
		t.Error("single-pair decomposition accepted")
	}
	other := graph.Path(7)
	if _, err := FiedlerOrder(other, dec); err == nil {
		t.Error("size mismatch accepted")
	}
}

// negatedFiedler returns a copy of dec with the Fiedler column negated —
// an equally valid eigendecomposition, since eigenvector signs are
// arbitrary.
func negatedFiedler(dec *eigen.Decomposition) *eigen.Decomposition {
	n, d := dec.Vectors.Rows, dec.D()
	vecs := linalg.NewDense(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			x := dec.Vectors.At(i, j)
			if j == 1 {
				x = -x
			}
			vecs.Set(i, j, x)
		}
	}
	vals := make([]float64, d)
	copy(vals, dec.Values)
	return &eigen.Decomposition{Values: vals, Vectors: vecs}
}

// TestFiedlerOrderSignInvariant: v and −v are both Fiedler vectors, so
// the ordering must not depend on which one the eigensolver returns.
// The degenerate-λ₂ graphs (even cycle, star, disconnected twins) are
// exactly where SB/RSB used to flip between mirror-image splits.
func TestFiedlerOrderSignInvariant(t *testing.T) {
	twins := func() *graph.Graph {
		var edges []graph.Edge
		for i := 0; i < 4; i++ {
			edges = append(edges,
				graph.Edge{U: i, V: (i + 1) % 4, W: 1},
				graph.Edge{U: 4 + i, V: 4 + (i+1)%4, W: 1})
		}
		return graph.MustNew(8, edges)
	}
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle4", graph.Cycle(4)},
		{"star6", graph.Star(6)},
		{"twins", twins()},
		{"path9", graph.Path(9)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dec, err := eigen.SymEig(tc.g.LaplacianDense())
			if err != nil {
				t.Fatal(err)
			}
			order, err := FiedlerOrder(tc.g, dec)
			if err != nil {
				t.Fatal(err)
			}
			flipped, err := FiedlerOrder(tc.g, negatedFiedler(dec))
			if err != nil {
				t.Fatal(err)
			}
			for i := range order {
				if order[i] != flipped[i] {
					t.Fatalf("sign flip changed the ordering:\n  +v: %v\n  -v: %v", order, flipped)
				}
			}
		})
	}
}

// TestBipartitionSignInvariant: the end-to-end SB split must be the same
// bipartition for either eigenvector sign.
func TestBipartitionSignInvariant(t *testing.T) {
	h := pathNetlist(t, 9)
	g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := eigen.SymEig(g.LaplacianDense())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Bipartition(h, g, dec, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bipartition(h, g, negatedFiedler(dec), 0.45)
	if err != nil {
		t.Fatal(err)
	}
	swap := a.Partition.Assign[0] != b.Partition.Assign[0]
	for i, c := range b.Partition.Assign {
		if swap {
			c = 1 - c
		}
		if c != a.Partition.Assign[i] {
			t.Fatalf("sign flip changed the split: %v vs %v", a.Partition.Assign, b.Partition.Assign)
		}
	}
}
