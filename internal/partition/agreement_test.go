package partition

import (
	"math"
	"math/rand"
	"testing"
)

func TestRandIndexIdentical(t *testing.T) {
	p := MustNew([]int{0, 0, 1, 1, 2}, 3)
	q := MustNew([]int{2, 2, 0, 0, 1}, 3) // same clustering, relabeled
	ri, err := RandIndex(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if ri != 1 {
		t.Errorf("RandIndex = %v, want 1", ri)
	}
	ari, err := AdjustedRandIndex(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ari-1) > 1e-12 {
		t.Errorf("ARI = %v, want 1", ari)
	}
}

func TestRandIndexDisjoint(t *testing.T) {
	// Maximally disagreeing small case: {01|23} vs {02|13} share no
	// within-pairs; agreements are only the cross pairs.
	p := MustNew([]int{0, 0, 1, 1}, 2)
	q := MustNew([]int{0, 1, 0, 1}, 2)
	ri, err := RandIndex(p, q)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs: 6 total; agree on pairs that are apart in both: (0,3),(1,2)
	// => 2 agreements.
	if math.Abs(ri-2.0/6.0) > 1e-12 {
		t.Errorf("RandIndex = %v, want 1/3", ri)
	}
}

func TestRandIndexKnownValue(t *testing.T) {
	// Hand-computed example.
	p := MustNew([]int{0, 0, 0, 1, 1, 1}, 2)
	q := MustNew([]int{0, 0, 1, 1, 1, 1}, 2)
	// Together in both: (0,1),(3,4),(3,5),(4,5) = 4... plus (2 with 3,4,5
	// in q but apart in p). Apart in both: (0,3),(0,4),(0,5),(1,3),(1,4),
	// (1,5) = 6. Agreements = 4+6 = 10 of 15.
	ri, err := RandIndex(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ri-10.0/15.0) > 1e-12 {
		t.Errorf("RandIndex = %v, want 2/3", ri)
	}
}

func TestAdjustedRandIndexNearZeroForRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 400
	var sum float64
	trials := 20
	for tr := 0; tr < trials; tr++ {
		a := make([]int, n)
		b := make([]int, n)
		for i := 0; i < n; i++ {
			a[i] = rng.Intn(4)
			b[i] = rng.Intn(4)
		}
		ari, err := AdjustedRandIndex(MustNew(a, 4), MustNew(b, 4))
		if err != nil {
			t.Fatal(err)
		}
		sum += ari
	}
	if avg := sum / float64(trials); math.Abs(avg) > 0.02 {
		t.Errorf("mean ARI of independent clusterings = %v, want ~0", avg)
	}
}

func TestAgreementValidation(t *testing.T) {
	p := MustNew([]int{0, 1}, 2)
	q := MustNew([]int{0, 1, 0}, 2)
	if _, err := RandIndex(p, q); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := AdjustedRandIndex(p, q); err == nil {
		t.Error("size mismatch accepted")
	}
	one := MustNew([]int{0}, 1)
	if ri, err := RandIndex(one, one); err != nil || ri != 1 {
		t.Error("singleton should be trivially 1")
	}
}

func TestARITrivialPartitions(t *testing.T) {
	// Both all-in-one-cluster: max == expected, defined as 1.
	p := MustNew([]int{0, 0, 0}, 1)
	ari, err := AdjustedRandIndex(p, p)
	if err != nil || ari != 1 {
		t.Errorf("ARI of trivial partitions = %v, %v", ari, err)
	}
}
