package partition

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/hypergraph"
)

func TestNewValidation(t *testing.T) {
	if _, err := New([]int{0, 1}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := New([]int{0, 2}, 2); err == nil {
		t.Error("out-of-range cluster accepted")
	}
	if _, err := New([]int{0}, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestNewCopiesAssign(t *testing.T) {
	a := []int{0, 1, 0}
	p, _ := New(a, 2)
	a[0] = 1
	if p.Assign[0] != 0 {
		t.Error("New must copy the assignment")
	}
}

func TestSizesClusters(t *testing.T) {
	p := MustNew([]int{0, 1, 0, 2, 1}, 3)
	s := p.Sizes()
	if s[0] != 2 || s[1] != 2 || s[2] != 1 {
		t.Fatalf("Sizes = %v", s)
	}
	c1 := p.Cluster(1)
	if len(c1) != 2 || c1[0] != 1 || c1[1] != 4 {
		t.Fatalf("Cluster(1) = %v", c1)
	}
	cs := p.Clusters()
	if len(cs) != 3 || len(cs[2]) != 1 || cs[2][0] != 3 {
		t.Fatalf("Clusters = %v", cs)
	}
	min, max := p.MinMaxSize()
	if min != 1 || max != 2 {
		t.Errorf("MinMax = %d,%d", min, max)
	}
	if !p.IsBalanced(1, 2) || p.IsBalanced(2, 2) {
		t.Error("IsBalanced wrong")
	}
}

func TestCanonical(t *testing.T) {
	p1 := MustNew([]int{1, 0, 1, 0}, 2).Canonical()
	p2 := MustNew([]int{0, 1, 0, 1}, 2).Canonical()
	for i := range p1.Assign {
		if p1.Assign[i] != p2.Assign[i] {
			t.Fatal("canonical forms differ for label-swapped partitions")
		}
	}
}

func TestFromOrderSplit(t *testing.T) {
	order := []int{3, 1, 0, 2}
	p, err := FromOrderSplit(order, []int{2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// order[0:2] = {3,1} -> cluster 0; {0,2} -> cluster 1.
	want := []int{1, 0, 1, 0}
	for i := range want {
		if p.Assign[i] != want[i] {
			t.Fatalf("Assign = %v, want %v", p.Assign, want)
		}
	}
	// Three-way.
	p3, err := FromOrderSplit(order, []int{1, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Assign[3] != 0 || p3.Assign[1] != 1 || p3.Assign[0] != 1 || p3.Assign[2] != 2 {
		t.Fatalf("3-way Assign = %v", p3.Assign)
	}
	// Errors.
	if _, err := FromOrderSplit(order, []int{0}, 2); err == nil {
		t.Error("split at 0 accepted")
	}
	if _, err := FromOrderSplit(order, []int{4}, 2); err == nil {
		t.Error("split at n accepted")
	}
	if _, err := FromOrderSplit(order, []int{2, 1}, 3); err == nil {
		t.Error("unsorted splits accepted")
	}
	if _, err := FromOrderSplit([]int{0, 0, 1, 2}, []int{2}, 2); err == nil {
		t.Error("non-permutation ordering accepted")
	}
	if _, err := FromOrderSplit(order, []int{1, 2, 3}, 3); err == nil {
		t.Error("wrong split count accepted")
	}
}

func TestCutWeightAndF(t *testing.T) {
	// Path 0-1-2-3 cut between 1 and 2.
	g := graph.Path(4)
	p := MustNew([]int{0, 0, 1, 1}, 2)
	if got := CutWeight(g, p); got != 1 {
		t.Errorf("CutWeight = %v, want 1", got)
	}
	if got := F(g, p); got != 2 {
		t.Errorf("F = %v, want 2", got)
	}
	e := ClusterCutDegrees(g, p)
	if e[0] != 1 || e[1] != 1 {
		t.Errorf("ClusterCutDegrees = %v", e)
	}
}

func TestFMatchesTraceFormula(t *testing.T) {
	// Theorem 1: f(P_k) = trace(Xᵀ Q X).
	g := graph.RandomConnected(14, 25, 5)
	q := g.LaplacianDense()
	partitions := [][]int{
		{0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1},
		{0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1},
		{0, 0, 1, 1, 2, 2, 3, 3, 0, 1, 2, 3, 0, 1},
	}
	ks := []int{2, 3, 4}
	for ci, assign := range partitions {
		k := ks[ci]
		p := MustNew(assign, k)
		// Build X: n×k assignment matrix.
		n := g.N()
		x := make([][]float64, n)
		for i := range x {
			x[i] = make([]float64, k)
			x[i][assign[i]] = 1
		}
		// trace(XᵀQX) = Σ_h x_hᵀ Q x_h.
		var tr float64
		col := make([]float64, n)
		qc := make([]float64, n)
		for h := 0; h < k; h++ {
			for i := 0; i < n; i++ {
				col[i] = x[i][h]
			}
			q.MatVec(col, qc)
			for i := 0; i < n; i++ {
				tr += col[i] * qc[i]
			}
		}
		if f := F(g, p); math.Abs(f-tr) > 1e-9 {
			t.Errorf("case %d: f = %v but trace = %v", ci, f, tr)
		}
	}
}

func netlist(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder()
	b.AddModules(6)
	_ = b.AddNet("", 0, 1, 2)
	_ = b.AddNet("", 2, 3)
	_ = b.AddNet("", 3, 4, 5)
	_ = b.AddNet("", 0, 5)
	return b.Build()
}

func TestNetCut(t *testing.T) {
	h := netlist(t)
	p := MustNew([]int{0, 0, 0, 1, 1, 1}, 2)
	// Cut nets: {2,3} and {0,5} -> 2.
	if got := NetCut(h, p); got != 2 {
		t.Errorf("NetCut = %d, want 2", got)
	}
	pAll := MustNew([]int{0, 0, 0, 0, 0, 0}, 1)
	if got := NetCut(h, pAll); got != 0 {
		t.Errorf("NetCut all-in-one = %d, want 0", got)
	}
}

func TestNetClusterCutDegrees(t *testing.T) {
	h := netlist(t)
	p := MustNew([]int{0, 0, 0, 1, 1, 1}, 2)
	e := NetClusterCutDegrees(h, p)
	// Both cut nets touch both clusters.
	if e[0] != 2 || e[1] != 2 {
		t.Errorf("NetClusterCutDegrees = %v", e)
	}
}

func TestScaledCostReducesToRatioCutForK2(t *testing.T) {
	h := netlist(t)
	p := MustNew([]int{0, 0, 1, 1, 1, 0}, 2)
	sc := ScaledCost(h, p)
	rc := RatioCut(h, p)
	if math.Abs(sc-rc) > 1e-12 {
		t.Errorf("ScaledCost %v != RatioCut %v for k=2", sc, rc)
	}
}

func TestScaledCostEmptyClusterIsInf(t *testing.T) {
	h := netlist(t)
	p := MustNew([]int{0, 0, 0, 0, 0, 0}, 2)
	if !math.IsInf(ScaledCost(h, p), 1) {
		t.Error("empty cluster should give +Inf scaled cost")
	}
	if !math.IsInf(RatioCut(h, p), 1) {
		t.Error("empty cluster should give +Inf ratio cut")
	}
}

func TestGraphScaledCostAndRatioCut(t *testing.T) {
	g := graph.Path(4)
	p := MustNew([]int{0, 0, 1, 1}, 2)
	// cut = 1, sizes 2/2: ratio cut 0.25; scaled cost (1/(4·1))·(1/2+1/2) = 0.25.
	if got := GraphRatioCut(g, p); math.Abs(got-0.25) > 1e-15 {
		t.Errorf("GraphRatioCut = %v", got)
	}
	if got := GraphScaledCost(g, p); math.Abs(got-0.25) > 1e-15 {
		t.Errorf("GraphScaledCost = %v", got)
	}
	empty := MustNew([]int{0, 0, 0, 0}, 2)
	if !math.IsInf(GraphScaledCost(g, empty), 1) || !math.IsInf(GraphRatioCut(g, empty), 1) {
		t.Error("empty cluster should be +Inf")
	}
}

func TestRatioCutPanicsOnNon2Way(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RatioCut(netlist(t), MustNew([]int{0, 1, 2, 0, 1, 2}, 3))
}
