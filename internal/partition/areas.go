package partition

import (
	"math"

	"repro/internal/hypergraph"
)

// ClusterAreas returns the total module area in each cluster.
func ClusterAreas(h *hypergraph.Hypergraph, p *Partition) []float64 {
	a := make([]float64, p.K)
	for i, c := range p.Assign {
		a[c] += h.Area(i)
	}
	return a
}

// IsAreaBalanced reports whether every cluster's area lies in [lo, hi].
func IsAreaBalanced(h *hypergraph.Hypergraph, p *Partition, lo, hi float64) bool {
	for _, a := range ClusterAreas(h, p) {
		if a < lo || a > hi {
			return false
		}
	}
	return true
}

// AreaScaledCost is the Scaled Cost objective with cluster sizes measured
// in area instead of module count: (1/(A·(k−1)))·Σ_h E_h/area(C_h), where
// A is the total area. For unit areas it equals ScaledCost.
func AreaScaledCost(h *hypergraph.Hypergraph, p *Partition) float64 {
	areas := ClusterAreas(h, p)
	e := NetClusterCutDegrees(h, p)
	var sum float64
	for c := 0; c < p.K; c++ {
		if areas[c] == 0 {
			return math.Inf(1)
		}
		sum += float64(e[c]) / areas[c]
	}
	return sum / (h.TotalArea() * float64(p.K-1))
}
