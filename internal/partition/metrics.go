package partition

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/hypergraph"
)

// CutWeight returns the total weight of graph edges whose endpoints lie in
// different clusters (each edge counted once).
func CutWeight(g *graph.Graph, p *Partition) float64 {
	var cut float64
	for u := 0; u < g.N(); u++ {
		for _, h := range g.Adj(u) {
			if u < h.To && p.Assign[u] != p.Assign[h.To] {
				cut += h.W
			}
		}
	}
	return cut
}

// F returns the paper's min-cut objective f(P_k) = Σ_h E_h, which counts
// the cost of each cut edge twice (Theorem 1: f = trace(XᵀQX)).
func F(g *graph.Graph, p *Partition) float64 {
	return 2 * CutWeight(g, p)
}

// ClusterCutDegrees returns E_h for each cluster h: the total weight of
// edges with exactly one endpoint in C_h.
func ClusterCutDegrees(g *graph.Graph, p *Partition) []float64 {
	e := make([]float64, p.K)
	for u := 0; u < g.N(); u++ {
		for _, h := range g.Adj(u) {
			if u < h.To && p.Assign[u] != p.Assign[h.To] {
				e[p.Assign[u]] += h.W
				e[p.Assign[h.To]] += h.W
			}
		}
	}
	return e
}

// NetCut returns the number of hyperedges (nets) that span more than one
// cluster — the standard VLSI min-cut objective.
func NetCut(h *hypergraph.Hypergraph, p *Partition) int {
	cut := 0
	for _, net := range h.Nets {
		first := p.Assign[net[0]]
		for _, m := range net[1:] {
			if p.Assign[m] != first {
				cut++
				break
			}
		}
	}
	return cut
}

// NetClusterCutDegrees returns, for each cluster h, the number of cut nets
// incident to at least one module of C_h (the hypergraph analogue of E_h,
// used by the Scaled Cost objective of Chan et al. [10]).
func NetClusterCutDegrees(h *hypergraph.Hypergraph, p *Partition) []int {
	e := make([]int, p.K)
	touched := make([]bool, p.K)
	for _, net := range h.Nets {
		for i := range touched {
			touched[i] = false
		}
		spans := false
		first := p.Assign[net[0]]
		for _, m := range net {
			c := p.Assign[m]
			touched[c] = true
			if c != first {
				spans = true
			}
		}
		if spans {
			for c, t := range touched {
				if t {
					e[c]++
				}
			}
		}
	}
	return e
}

// ScaledCost returns the Scaled Cost objective of Chan–Schlag–Zien [10]
// over the hypergraph:
//
//	ScaledCost(P_k) = (1 / (n(k−1))) · Σ_h E_h / |C_h|
//
// where E_h counts cut nets incident to cluster C_h. For k = 2 this
// reduces to the ratio cut E/(|C_1|·|C_2|). Partitions with an empty
// cluster have infinite scaled cost; +Inf is returned.
func ScaledCost(h *hypergraph.Hypergraph, p *Partition) float64 {
	n := h.NumModules()
	if n != p.N() {
		panic(fmt.Sprintf("partition: hypergraph has %d modules but partition %d", n, p.N()))
	}
	sizes := p.Sizes()
	e := NetClusterCutDegrees(h, p)
	var sum float64
	for c := 0; c < p.K; c++ {
		if sizes[c] == 0 {
			return inf()
		}
		sum += float64(e[c]) / float64(sizes[c])
	}
	return sum / (float64(n) * float64(p.K-1))
}

// GraphScaledCost is ScaledCost computed on a weighted graph instead of a
// hypergraph, using E_h = weighted cut degree of cluster h.
func GraphScaledCost(g *graph.Graph, p *Partition) float64 {
	n := g.N()
	sizes := p.Sizes()
	e := ClusterCutDegrees(g, p)
	var sum float64
	for c := 0; c < p.K; c++ {
		if sizes[c] == 0 {
			return inf()
		}
		sum += e[c] / float64(sizes[c])
	}
	return sum / (float64(n) * float64(p.K-1))
}

// RatioCut returns cut/(|C_1|·|C_2|) for a bipartition over the
// hypergraph net cut. It panics if p.K != 2.
func RatioCut(h *hypergraph.Hypergraph, p *Partition) float64 {
	if p.K != 2 {
		panic("partition: RatioCut requires a bipartition")
	}
	sizes := p.Sizes()
	if sizes[0] == 0 || sizes[1] == 0 {
		return inf()
	}
	return float64(NetCut(h, p)) / (float64(sizes[0]) * float64(sizes[1]))
}

// GraphRatioCut returns cutWeight/(|C_1|·|C_2|) for a graph bipartition.
func GraphRatioCut(g *graph.Graph, p *Partition) float64 {
	if p.K != 2 {
		panic("partition: GraphRatioCut requires a bipartition")
	}
	sizes := p.Sizes()
	if sizes[0] == 0 || sizes[1] == 0 {
		return inf()
	}
	return CutWeight(g, p) / (float64(sizes[0]) * float64(sizes[1]))
}

func inf() float64 { return math.Inf(1) }
