package partition

import "fmt"

// Agreement metrics between two partitions of the same element set, used
// to quantify how well a heuristic recovers a reference (e.g. planted)
// clustering independent of label permutations.

// RandIndex returns the Rand index between two partitions: the fraction
// of element pairs on which they agree (both together or both apart).
// 1 means identical clusterings up to relabeling.
func RandIndex(a, b *Partition) (float64, error) {
	n := a.N()
	if b.N() != n {
		return 0, fmt.Errorf("partition: RandIndex over %d vs %d elements", n, b.N())
	}
	if n < 2 {
		return 1, nil
	}
	// Count pair agreements via the contingency table: agreements =
	// C(n,2) + 2Σ_ij C(n_ij,2) − Σ_i C(a_i,2) − Σ_j C(b_j,2).
	nij := make(map[[2]int]int)
	ai := make([]int, a.K)
	bj := make([]int, b.K)
	for idx := 0; idx < n; idx++ {
		ca, cb := a.Assign[idx], b.Assign[idx]
		nij[[2]int{ca, cb}]++
		ai[ca]++
		bj[cb]++
	}
	var sumNij, sumA, sumB float64
	for _, v := range nij {
		sumNij += choose2(v)
	}
	for _, v := range ai {
		sumA += choose2(v)
	}
	for _, v := range bj {
		sumB += choose2(v)
	}
	total := choose2(n)
	return (total + 2*sumNij - sumA - sumB) / total, nil
}

// AdjustedRandIndex returns the chance-corrected Rand index: 0 in
// expectation for independent random clusterings, 1 for identical ones.
func AdjustedRandIndex(a, b *Partition) (float64, error) {
	n := a.N()
	if b.N() != n {
		return 0, fmt.Errorf("partition: AdjustedRandIndex over %d vs %d elements", n, b.N())
	}
	if n < 2 {
		return 1, nil
	}
	nij := make(map[[2]int]int)
	ai := make([]int, a.K)
	bj := make([]int, b.K)
	for idx := 0; idx < n; idx++ {
		nij[[2]int{a.Assign[idx], b.Assign[idx]}]++
		ai[a.Assign[idx]]++
		bj[b.Assign[idx]]++
	}
	var index, sumA, sumB float64
	for _, v := range nij {
		index += choose2(v)
	}
	for _, v := range ai {
		sumA += choose2(v)
	}
	for _, v := range bj {
		sumB += choose2(v)
	}
	total := choose2(n)
	expected := sumA * sumB / total
	max := (sumA + sumB) / 2
	if max == expected {
		return 1, nil // both partitions trivial (all-one-cluster)
	}
	return (index - expected) / (max - expected), nil
}

func choose2(v int) float64 {
	return float64(v) * float64(v-1) / 2
}
