// Package partition represents k-way partitionings of modules/vertices
// and implements the cost metrics used across the paper's experiments:
// weighted graph cut f(P_k), hyperedge (net) cut, Scaled Cost, and ratio
// cut, together with balance constraints.
package partition

import (
	"fmt"
	"sort"
)

// Partition assigns each of n elements to one of K clusters.
type Partition struct {
	Assign []int // Assign[i] in [0, K)
	K      int
}

// New creates a partition from an assignment slice, validating ranges.
func New(assign []int, k int) (*Partition, error) {
	if k < 1 {
		return nil, fmt.Errorf("partition: k = %d, want >= 1", k)
	}
	for i, c := range assign {
		if c < 0 || c >= k {
			return nil, fmt.Errorf("partition: element %d assigned to cluster %d, out of [0,%d)", i, c, k)
		}
	}
	cp := make([]int, len(assign))
	copy(cp, assign)
	return &Partition{Assign: cp, K: k}, nil
}

// MustNew is New but panics on error; for tests and literals.
func MustNew(assign []int, k int) *Partition {
	p, err := New(assign, k)
	if err != nil {
		panic(err)
	}
	return p
}

// N returns the number of elements.
func (p *Partition) N() int { return len(p.Assign) }

// Sizes returns the number of elements in each cluster.
func (p *Partition) Sizes() []int {
	s := make([]int, p.K)
	for _, c := range p.Assign {
		s[c]++
	}
	return s
}

// Cluster returns the sorted elements of cluster h.
func (p *Partition) Cluster(h int) []int {
	var c []int
	for i, a := range p.Assign {
		if a == h {
			c = append(c, i)
		}
	}
	return c
}

// Clusters returns all clusters as sorted slices (empty clusters
// included).
func (p *Partition) Clusters() [][]int {
	cs := make([][]int, p.K)
	for i, a := range p.Assign {
		cs[a] = append(cs[a], i)
	}
	return cs
}

// MinMaxSize returns the smallest and largest cluster sizes.
func (p *Partition) MinMaxSize() (min, max int) {
	s := p.Sizes()
	min, max = s[0], s[0]
	for _, v := range s[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// IsBalanced reports whether every cluster holds at least lo and at most
// hi elements.
func (p *Partition) IsBalanced(lo, hi int) bool {
	min, max := p.MinMaxSize()
	return min >= lo && max <= hi
}

// Canonical returns a copy with clusters renumbered in order of first
// appearance, so that partitions that differ only by cluster labels
// compare equal. Useful for deduplication in search/tests.
func (p *Partition) Canonical() *Partition {
	relabel := make([]int, p.K)
	for i := range relabel {
		relabel[i] = -1
	}
	next := 0
	out := make([]int, len(p.Assign))
	for i, c := range p.Assign {
		if relabel[c] == -1 {
			relabel[c] = next
			next++
		}
		out[i] = relabel[c]
	}
	return &Partition{Assign: out, K: p.K}
}

// FromOrderSplit builds a k-way partition from a vertex ordering and
// k−1 split positions: ordering[0:splits[0]] forms cluster 0, and so on.
// splits must be strictly increasing positions in (0, len(order)).
func FromOrderSplit(order []int, splits []int, k int) (*Partition, error) {
	if len(splits) != k-1 {
		return nil, fmt.Errorf("partition: %d splits cannot form %d clusters", len(splits), k)
	}
	if !sort.IntsAreSorted(splits) {
		return nil, fmt.Errorf("partition: splits %v are not sorted", splits)
	}
	assign := make([]int, len(order))
	for i := range assign {
		assign[i] = -1
	}
	cluster, next := 0, 0
	for pos, v := range order {
		for next < len(splits) && pos >= splits[next] {
			cluster++
			next++
		}
		if v < 0 || v >= len(order) || assign[v] != -1 {
			return nil, fmt.Errorf("partition: ordering is not a permutation (element %d)", v)
		}
		assign[v] = cluster
	}
	for i, s := range splits {
		if s <= 0 || s >= len(order) || (i > 0 && s == splits[i-1]) {
			return nil, fmt.Errorf("partition: split %v out of range or empty cluster", splits)
		}
	}
	return New(assign, k)
}
