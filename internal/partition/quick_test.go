package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/hypergraph"
)

func randomHypergraph(rng *rand.Rand, n int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder()
	b.AddModules(n)
	for e := 0; e < 2*n; e++ {
		size := 2 + rng.Intn(3)
		if size > n {
			size = n
		}
		_ = b.AddNet("", rng.Perm(n)[:size]...)
	}
	return b.Build()
}

// TestQuickCanonicalIdempotent: Canonical is idempotent and preserves the
// cluster structure (same pairs together).
func TestQuickCanonicalIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		k := 1 + rng.Intn(4)
		assign := make([]int, n)
		for i := range assign {
			assign[i] = rng.Intn(k)
		}
		p := MustNew(assign, k)
		c1 := p.Canonical()
		c2 := c1.Canonical()
		for i := range c1.Assign {
			if c1.Assign[i] != c2.Assign[i] {
				return false
			}
		}
		// Same-cluster relation preserved.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if (p.Assign[i] == p.Assign[j]) != (c1.Assign[i] == c1.Assign[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickMetricsLabelInvariant: NetCut, ScaledCost and F are invariant
// under cluster relabeling.
func TestQuickMetricsLabelInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(16)
		h := randomHypergraph(rng, n)
		g, err := graph.FromHypergraph(h, graph.Standard, 0)
		if err != nil {
			return false
		}
		k := 2 + rng.Intn(3)
		assign := make([]int, n)
		perm := rng.Perm(n)
		for c := 0; c < k; c++ {
			assign[perm[c]] = c
		}
		for _, i := range perm[k:] {
			assign[i] = rng.Intn(k)
		}
		p := MustNew(assign, k)
		// Relabel by a random permutation of cluster ids.
		relabel := rng.Perm(k)
		swapped := make([]int, n)
		for i, c := range assign {
			swapped[i] = relabel[c]
		}
		q := MustNew(swapped, k)
		if NetCut(h, p) != NetCut(h, q) {
			return false
		}
		if math.Abs(ScaledCost(h, p)-ScaledCost(h, q)) > 1e-12 {
			return false
		}
		return math.Abs(F(g, p)-F(g, q)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickNetCutBounds: 0 <= NetCut <= NumNets, and the all-one-cluster
// partition cuts nothing.
func TestQuickNetCutBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(16)
		h := randomHypergraph(rng, n)
		assign := make([]int, n)
		for i := range assign {
			assign[i] = rng.Intn(3)
		}
		p := MustNew(assign, 3)
		cut := NetCut(h, p)
		if cut < 0 || cut > h.NumNets() {
			return false
		}
		one := MustNew(make([]int, n), 1)
		return NetCut(h, one) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickClusterCutDegreeIdentity: Σ_h E_h = 2·CutWeight = F for graph
// metrics.
func TestQuickClusterCutDegreeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(16)
		g := graph.RandomConnected(n, 2*n, seed)
		k := 2 + rng.Intn(3)
		assign := make([]int, n)
		for i := range assign {
			assign[i] = rng.Intn(k)
		}
		p := MustNew(assign, k)
		var sum float64
		for _, e := range ClusterCutDegrees(g, p) {
			sum += e
		}
		return math.Abs(sum-F(g, p)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickFromOrderSplitInverse: splitting an ordering and reading the
// clusters back off the partition reproduces contiguous blocks.
func TestQuickFromOrderSplitInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		order := rng.Perm(n)
		s := 1 + rng.Intn(n-1)
		p, err := FromOrderSplit(order, []int{s}, 2)
		if err != nil {
			return false
		}
		for pos, v := range order {
			want := 0
			if pos >= s {
				want = 1
			}
			if p.Assign[v] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
