// Package sfc reimplements the spacefilling-curve partitioner of Alpert
// and Kahng [1]: embed each vertex in d-space using d non-trivial
// Laplacian eigenvectors, order the embedded points along a spacefilling
// curve, and split the ordering (DP-RP for multi-way).
//
// Two curves are provided: the 2-D Hilbert curve (the locality-preserving
// choice, used when d = 2) and d-dimensional Morton (Z-order) for d > 2.
package sfc

import (
	"fmt"
	"sort"

	"repro/internal/eigen"
)

// Curve selects the spacefilling curve.
type Curve int

const (
	// Hilbert is the 2-D Hilbert curve (requires d = 2).
	Hilbert Curve = iota
	// Morton interleaves coordinate bits (any d).
	Morton
)

// String returns the curve name.
func (c Curve) String() string {
	switch c {
	case Hilbert:
		return "hilbert"
	case Morton:
		return "morton"
	default:
		return fmt.Sprintf("Curve(%d)", int(c))
	}
}

// Options configures the ordering.
type Options struct {
	// D is the number of non-trivial eigenvectors used for the embedding.
	D int
	// Curve selects the spacefilling curve; Hilbert requires D = 2.
	Curve Curve
}

// bitsPerDim is the quantization resolution of each embedding coordinate.
const bitsPerDim = 16

// Order returns the vertices sorted along the chosen spacefilling curve
// through the d-dimensional spectral embedding. dec must hold at least
// D+1 eigenpairs (trivial + D informative).
func Order(dec *eigen.Decomposition, opts Options) ([]int, error) {
	d := opts.D
	if d < 1 {
		return nil, fmt.Errorf("sfc: D = %d, want >= 1", d)
	}
	if dec.D() < d+1 {
		return nil, fmt.Errorf("sfc: decomposition holds %d pairs, need %d", dec.D(), d+1)
	}
	if opts.Curve == Hilbert && d != 2 {
		return nil, fmt.Errorf("sfc: the Hilbert curve requires D = 2, got %d", d)
	}
	n := dec.Vectors.Rows
	// Quantize each coordinate (eigenvector j+1) into [0, 2^bits).
	coords := make([][]uint32, n)
	for i := range coords {
		coords[i] = make([]uint32, d)
	}
	for j := 0; j < d; j++ {
		lo, hi := dec.Vectors.At(0, j+1), dec.Vectors.At(0, j+1)
		for i := 1; i < n; i++ {
			v := dec.Vectors.At(i, j+1)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		span := hi - lo
		for i := 0; i < n; i++ {
			var q float64
			if span > 0 {
				q = (dec.Vectors.At(i, j+1) - lo) / span
			}
			c := uint32(q * float64((1<<bitsPerDim)-1))
			coords[i][j] = c
		}
	}

	keys := make([][]uint64, n) // multi-word curve keys, compared lexicographically
	for i := 0; i < n; i++ {
		switch opts.Curve {
		case Hilbert:
			keys[i] = []uint64{hilbert2D(coords[i][0], coords[i][1])}
		default:
			keys[i] = mortonKey(coords[i])
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ka, kb := keys[order[a]], keys[order[b]]
		for w := 0; w < len(ka); w++ {
			if ka[w] != kb[w] {
				return ka[w] < kb[w]
			}
		}
		return order[a] < order[b]
	})
	return order, nil
}

// hilbert2D maps (x, y) on the 2^bitsPerDim grid to its distance along the
// Hilbert curve (the classic xy-to-d rotation algorithm).
func hilbert2D(x, y uint32) uint64 {
	var rx, ry uint32
	var d uint64
	for s := uint32(1) << (bitsPerDim - 1); s > 0; s /= 2 {
		if x&s > 0 {
			rx = 1
		} else {
			rx = 0
		}
		if y&s > 0 {
			ry = 1
		} else {
			ry = 0
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}

// mortonKey interleaves the bits of the coordinates, most significant
// first, packing the result into one or more 64-bit words.
func mortonKey(c []uint32) []uint64 {
	d := len(c)
	totalBits := d * bitsPerDim
	words := (totalBits + 63) / 64
	key := make([]uint64, words)
	bit := 0
	for b := bitsPerDim - 1; b >= 0; b-- {
		for j := 0; j < d; j++ {
			v := (c[j] >> uint(b)) & 1
			w := bit / 64
			off := 63 - bit%64
			key[w] |= uint64(v) << uint(off)
			bit++
		}
	}
	return key
}
