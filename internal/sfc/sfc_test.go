package sfc

import (
	"testing"

	"repro/internal/dprp"
	"repro/internal/eigen"
	"repro/internal/graph"
)

func decompose(t *testing.T, g *graph.Graph, d int) *eigen.Decomposition {
	t.Helper()
	dec, err := eigen.SmallestEigenpairs(g.Laplacian(), d+1)
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

func isPermutation(order []int, n int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

func TestHilbert2DIsBijective(t *testing.T) {
	// On a small grid every (x,y) must map to a distinct curve index, and
	// consecutive indices must be grid neighbors (curve continuity).
	const side = 16
	seen := make(map[uint64][2]uint32)
	for x := uint32(0); x < side; x++ {
		for y := uint32(0); y < side; y++ {
			// Scale into the full bitsPerDim grid to exercise high bits.
			d := hilbert2D(x<<(bitsPerDim-4), y<<(bitsPerDim-4))
			if prev, dup := seen[d]; dup {
				t.Fatalf("collision: (%d,%d) and (%v) -> %d", x, y, prev, d)
			}
			seen[d] = [2]uint32{x, y}
		}
	}
}

func TestHilbertContinuityFullResolution(t *testing.T) {
	// For coordinates below 2^8 the high-order iterations of hilbert2D are
	// all identity (even number of trivial swaps), so hilbert2D restricted
	// to the 256×256 corner IS the 8-bit Hilbert curve with consecutive
	// integer indices. Walk it and verify each step moves to a 4-neighbor.
	coords := make(map[uint64][2]int)
	const side = 1 << 8
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			d := hilbert2D(uint32(x), uint32(y))
			coords[d] = [2]int{x, y}
		}
	}
	var prev [2]int
	for d := uint64(0); d < side*side; d++ {
		c, ok := coords[d]
		if !ok {
			t.Fatalf("missing curve index %d", d)
		}
		if d > 0 {
			dx, dy := c[0]-prev[0], c[1]-prev[1]
			if dx*dx+dy*dy != 1 {
				t.Fatalf("discontinuity between %v and %v at index %d", prev, c, d)
			}
		}
		prev = c
	}
}

func TestMortonKeyOrdering(t *testing.T) {
	// Morton keys must sort lexicographically by interleaved bits: a point
	// dominating another in all coordinates has a larger key.
	a := mortonKey([]uint32{1, 1, 1})
	b := mortonKey([]uint32{2, 2, 2})
	if !lessKey(a, b) {
		t.Error("dominated point should have smaller Morton key")
	}
	// Keys longer than 64 bits (d=5 → 80 bits) must still work.
	k := mortonKey([]uint32{1, 2, 3, 4, 5})
	if len(k) != 2 {
		t.Errorf("5-dim key words = %d, want 2", len(k))
	}
}

func lessKey(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func TestOrderIsPermutation(t *testing.T) {
	g := graph.RandomConnected(64, 160, 5)
	for _, cfg := range []Options{
		{D: 2, Curve: Hilbert},
		{D: 2, Curve: Morton},
		{D: 4, Curve: Morton},
	} {
		dec := decompose(t, g, cfg.D)
		order, err := Order(dec, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if !isPermutation(order, g.N()) {
			t.Errorf("%+v: not a permutation", cfg)
		}
	}
}

func TestOrderGroupsGridHalves(t *testing.T) {
	// On a grid, a Hilbert ordering of the 2-D spectral embedding should
	// yield a good balanced split (close to the optimal cut of side
	// length).
	g := graph.Grid(8, 8)
	dec := decompose(t, g, 2)
	order, err := Order(dec, Options{D: 2, Curve: Hilbert})
	if err != nil {
		t.Fatal(err)
	}
	split, err := dprp.BestBalancedSplitGraph(g, order, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal balanced cut of an 8x8 grid is 8; SFC is a coarse heuristic
	// (the paper's Table 4 shows MELO beating it by ~13%), so allow slack
	// but reject degenerate orderings (a random ordering cuts ~50 edges).
	if split.Cut > 2*8 {
		t.Errorf("grid split cut = %v, want near 8", split.Cut)
	}
}

func TestOrderValidation(t *testing.T) {
	g := graph.Path(10)
	dec := decompose(t, g, 3)
	if _, err := Order(dec, Options{D: 0}); err == nil {
		t.Error("D=0 accepted")
	}
	if _, err := Order(dec, Options{D: 9, Curve: Morton}); err == nil {
		t.Error("D beyond available pairs accepted")
	}
	if _, err := Order(dec, Options{D: 3, Curve: Hilbert}); err == nil {
		t.Error("Hilbert with D!=2 accepted")
	}
}

func TestCurveString(t *testing.T) {
	if Hilbert.String() != "hilbert" || Morton.String() != "morton" {
		t.Error("curve names wrong")
	}
	if Curve(7).String() == "" {
		t.Error("unknown curve should format")
	}
}
