// Package bench provides the benchmark suite for the experiments: a
// registry of the paper's Table 1 ACM/SIGDA circuits and a deterministic
// synthetic netlist generator that reproduces each circuit's published
// module/net/pin statistics.
//
// The original MCNC/ACM-SIGDA netlist files are not distributable with
// this repository, so each named benchmark is synthesized as a clustered
// VLSI-like hypergraph with exactly the published number of modules, nets
// and pins (see DESIGN.md §5 for why this substitution preserves the
// paper's comparisons: every algorithm is run on the identical instance,
// and the instances match the originals' scale and net-size statistics).
package bench

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"repro/internal/hypergraph"
)

// Circuit describes one benchmark: its published statistics from the
// paper's Table 1.
type Circuit struct {
	Name    string
	Modules int
	Nets    int
	Pins    int
}

// Table1 lists the paper's benchmark suite with the published statistics
// of the ACM/SIGDA circuits.
var Table1 = []Circuit{
	{"bm1", 882, 902, 2910},
	{"prim1", 833, 902, 2908},
	{"prim2", 3014, 3029, 11219},
	{"test02", 1663, 1720, 6134},
	{"test03", 1607, 1618, 5807},
	{"test04", 1515, 1658, 5975},
	{"test05", 2595, 2750, 10076},
	{"test06", 1752, 1541, 6638},
	{"struct", 1952, 1920, 5471},
	{"19ks", 2844, 3282, 10547},
	{"biomed", 6514, 5742, 21040},
	{"industry2", 12637, 13419, 48404},
}

// Lookup returns the registered circuit with the given name.
func Lookup(name string) (Circuit, error) {
	for _, c := range Table1 {
		if c.Name == name {
			return c, nil
		}
	}
	return Circuit{}, fmt.Errorf("bench: unknown benchmark %q", name)
}

// Scaled returns a copy of the circuit with statistics scaled by f,
// preserving the pins/net and nets/module ratios. f = 1 reproduces the
// published sizes; f < 1 gives fast test runs, and f > 1 synthesizes
// larger instances of the same shape (the multilevel smoke tests scale
// industry2 to n ≈ 10⁵).
func (c Circuit) Scaled(f float64) Circuit {
	if f == 1 {
		return c
	}
	s := Circuit{Name: c.Name}
	s.Modules = maxInt(8, int(float64(c.Modules)*f))
	s.Nets = maxInt(8, int(float64(c.Nets)*f))
	s.Pins = maxInt(2*s.Nets, int(float64(c.Pins)*f))
	return s
}

// MaxNetSize caps generated net sizes (matching practical netlists, where
// the largest nets are clock/reset trees; the paper notes [10] dropped
// nets over 99 pins).
const MaxNetSize = 64

// Generate synthesizes the circuit as a connected hypergraph with exactly
// c.Modules modules, c.Nets nets and c.Pins pins. Generation is
// deterministic: the same circuit always yields the same netlist.
//
// Structure: a "skeleton" of overlapping nets covering the modules in
// index order guarantees connectivity and local structure; the remaining
// nets choose a home cluster on a grid of ~16-module clusters and draw
// almost all pins from the home's 3×3 neighborhood, giving the locality
// (and the small ratio cuts) real circuits exhibit.
func Generate(c Circuit) (*hypergraph.Hypergraph, error) {
	return GenerateSeeded(c, 0)
}

// GenerateSeeded is Generate with an explicit seed for the random-net
// draw, so callers can produce distinct-but-reproducible instances of
// the same circuit. Seed 0 selects the canonical per-name seed that
// Generate uses; any other seed varies the random nets (the connecting
// skeleton is seed-independent, so every instance stays connected with
// exactly the published statistics).
func GenerateSeeded(c Circuit, seed int64) (*hypergraph.Hypergraph, error) {
	if c.Modules < 2 || c.Nets < 1 || c.Pins < 2*c.Nets {
		return nil, fmt.Errorf("bench: infeasible circuit %+v (need pins >= 2·nets)", c)
	}
	if c.Pins > c.Nets*MaxNetSize {
		return nil, fmt.Errorf("bench: circuit %+v exceeds max net size %d", c, MaxNetSize)
	}
	if seed == 0 {
		seed = seedFor(c.Name)
	}
	rng := rand.New(rand.NewSource(seed))

	// Skeleton: nets of size s covering modules [j(s−1), j(s−1)+s−1], so
	// consecutive nets overlap in one module and the whole chain is
	// connected. Choose the smallest s (>= 3) whose skeleton fits in half
	// the net budget.
	s := 3
	skeletonCount := func(s int) int { return (c.Modules - 2 + s - 2) / (s - 1) }
	for s < MaxNetSize && (skeletonCount(s) > c.Nets/2 || skeletonCount(s)*s > c.Pins/2) {
		s++
	}
	kSkel := skeletonCount(s)
	skelPins := 0
	type pendingNet struct{ mods []int }
	var nets []pendingNet
	for j := 0; j < kSkel; j++ {
		start := j * (s - 1)
		end := start + s - 1
		if end > c.Modules-1 {
			end = c.Modules - 1
		}
		if end-start+1 < 2 {
			start = end - 1
		}
		mods := make([]int, 0, end-start+1)
		for m := start; m <= end; m++ {
			mods = append(mods, m)
		}
		nets = append(nets, pendingNet{mods})
		skelPins += len(mods)
	}
	remainingNets := c.Nets - len(nets)
	remainingPins := c.Pins - skelPins
	if remainingNets < 0 || remainingPins < 2*remainingNets || remainingPins > remainingNets*MaxNetSize {
		return nil, fmt.Errorf("bench: %s: skeleton of %d nets leaves infeasible budget (%d nets, %d pins)",
			c.Name, kSkel, remainingNets, remainingPins)
	}

	// Cluster geometry for the random nets: ~16 modules per cluster on a
	// grid.
	clusterSize := 16
	numClusters := (c.Modules + clusterSize - 1) / clusterSize
	gridSide := 1
	for gridSide*gridSide < numClusters {
		gridSide++
	}
	clusterMembers := make([][]int, numClusters)
	for m := 0; m < c.Modules; m++ {
		cl := m / clusterSize
		clusterMembers[cl] = append(clusterMembers[cl], m)
	}
	neighborhood := func(cl int) []int {
		r, col := cl/gridSide, cl%gridSide
		var mods []int
		for dr := -1; dr <= 1; dr++ {
			for dc := -1; dc <= 1; dc++ {
				nr, nc := r+dr, col+dc
				if nr < 0 || nc < 0 || nr >= gridSide || nc >= gridSide {
					continue
				}
				ncl := nr*gridSide + nc
				if ncl < numClusters {
					mods = append(mods, clusterMembers[ncl]...)
				}
			}
		}
		return mods
	}

	sizes := randomSizes(rng, remainingPins, remainingNets)
	drawNet := func(size int) pendingNet {
		home := rng.Intn(numClusters)
		pool := clusterMembers[home]
		wide := neighborhood(home)
		seen := make(map[int]bool, size)
		mods := make([]int, 0, size)
		attempts := 0
		for len(mods) < size && attempts < 60*size {
			attempts++
			var m int
			switch r := rng.Float64(); {
			case r < 0.70 && len(pool) > 0:
				m = pool[rng.Intn(len(pool))] // home cluster
			case r < 0.95 && len(wide) > 0:
				m = wide[rng.Intn(len(wide))] // 3×3 neighborhood
			default:
				m = rng.Intn(c.Modules) // global
			}
			if !seen[m] {
				seen[m] = true
				mods = append(mods, m)
			}
		}
		for len(mods) < size {
			m := rng.Intn(c.Modules)
			if !seen[m] {
				seen[m] = true
				mods = append(mods, m)
			}
		}
		return pendingNet{mods}
	}
	for _, sz := range sizes {
		nets = append(nets, drawNet(sz))
	}

	b := hypergraph.NewBuilder()
	for m := 0; m < c.Modules; m++ {
		b.AddModule(fmt.Sprintf("%s.m%d", c.Name, m))
	}
	for i, net := range nets {
		if err := b.AddNet(fmt.Sprintf("%s.n%d", c.Name, i), net.mods...); err != nil {
			return nil, fmt.Errorf("bench: %s: %v", c.Name, err)
		}
	}
	h := b.Build()
	if got := h.Stats(); got.Modules != c.Modules || got.Nets != c.Nets || got.Pins != c.Pins {
		return nil, fmt.Errorf("bench: %s generated %+v, want %+v", c.Name, got, c)
	}
	if !h.IsConnected() {
		return nil, fmt.Errorf("bench: %s generated a disconnected netlist", c.Name)
	}
	return h, nil
}

// randomSizes draws count net sizes (each in [2, MaxNetSize]) from a
// geometric tail distribution and adjusts them to sum exactly to pins.
func randomSizes(rng *rand.Rand, pins, count int) []int {
	if count == 0 {
		return nil
	}
	mean := float64(pins) / float64(count)
	// size = 2 + Geometric with success probability p has mean 2 + (1−p)/p.
	p := 1.0
	if mean > 2 {
		p = 1 / (mean - 1)
	}
	if p > 0.95 {
		p = 0.95
	}
	if p < 0.05 {
		p = 0.05
	}
	sizes := make([]int, count)
	total := 0
	for i := range sizes {
		sz := 2
		for rng.Float64() > p && sz < MaxNetSize {
			sz++
		}
		sizes[i] = sz
		total += sz
	}
	for total < pins {
		i := rng.Intn(count)
		if sizes[i] < MaxNetSize {
			sizes[i]++
			total++
		}
	}
	for total > pins {
		i := rng.Intn(count)
		if sizes[i] > 2 {
			sizes[i]--
			total--
		}
	}
	return sizes
}

// AttachAreas assigns deterministic skewed module areas to a generated
// netlist, modelling real cell libraries: most cells near unit size with
// a lognormal-style tail of macros. The distribution is reproducible per
// netlist (seeded by the module count and the given salt).
func AttachAreas(h *hypergraph.Hypergraph, salt int64) error {
	rng := rand.New(rand.NewSource(seedFor(fmt.Sprintf("areas:%d:%d", h.NumModules(), salt))))
	areas := make([]float64, h.NumModules())
	for i := range areas {
		// exp(N(0, 0.5)) concentrates near 1 with a right tail; clamp to
		// [0.25, 16] to keep the balance problems well-posed.
		a := math.Exp(rng.NormFloat64() * 0.5)
		if a < 0.25 {
			a = 0.25
		}
		if a > 16 {
			a = 16
		}
		areas[i] = a
	}
	return h.SetAreas(areas)
}

func seedFor(name string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte("melo-bench:" + name))
	return int64(h.Sum64())
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
