package bench

import (
	"testing"

	"repro/internal/hypergraph"
)

func TestLookup(t *testing.T) {
	c, err := Lookup("prim1")
	if err != nil {
		t.Fatal(err)
	}
	if c.Modules != 833 || c.Nets != 902 || c.Pins != 2908 {
		t.Errorf("prim1 = %+v", c)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestGenerateMatchesPublishedStats(t *testing.T) {
	// Full-size generation for the two smallest circuits; scaled versions
	// of the rest (full-size generation of every circuit runs in the
	// benchmarks).
	for _, c := range []Circuit{mustLookup(t, "bm1"), mustLookup(t, "prim1")} {
		h, err := Generate(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		s := h.Stats()
		if s.Modules != c.Modules || s.Nets != c.Nets || s.Pins != c.Pins {
			t.Errorf("%s: generated %+v, want %+v", c.Name, s, c)
		}
		if !h.IsConnected() {
			t.Errorf("%s: disconnected", c.Name)
		}
		if s.MaxNetSize > MaxNetSize {
			t.Errorf("%s: net of %d pins exceeds cap", c.Name, s.MaxNetSize)
		}
		if err := h.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestGenerateScaledAll(t *testing.T) {
	for _, c := range Table1 {
		sc := c.Scaled(0.05)
		h, err := Generate(sc)
		if err != nil {
			t.Fatalf("%s scaled: %v", c.Name, err)
		}
		s := h.Stats()
		if s.Modules != sc.Modules || s.Nets != sc.Nets || s.Pins != sc.Pins {
			t.Errorf("%s scaled: %+v, want %+v", c.Name, s, sc)
		}
		if !h.IsConnected() {
			t.Errorf("%s scaled: disconnected", c.Name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c := mustLookup(t, "bm1").Scaled(0.2)
	h1, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	if h1.NumNets() != h2.NumNets() {
		t.Fatal("net counts differ across runs")
	}
	for e := range h1.Nets {
		if len(h1.Nets[e]) != len(h2.Nets[e]) {
			t.Fatalf("net %d sizes differ", e)
		}
		for i := range h1.Nets[e] {
			if h1.Nets[e][i] != h2.Nets[e][i] {
				t.Fatalf("net %d contents differ", e)
			}
		}
	}
}

func sameNets(a, b *hypergraph.Hypergraph) bool {
	if a.NumNets() != b.NumNets() {
		return false
	}
	for e := range a.Nets {
		if len(a.Nets[e]) != len(b.Nets[e]) {
			return false
		}
		for i := range a.Nets[e] {
			if a.Nets[e][i] != b.Nets[e][i] {
				return false
			}
		}
	}
	return true
}

func TestGenerateSeeded(t *testing.T) {
	c := mustLookup(t, "bm1").Scaled(0.2)

	a1, err := GenerateSeeded(c, 42)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := GenerateSeeded(c, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !sameNets(a1, a2) {
		t.Error("same seed produced different netlists")
	}

	b, err := GenerateSeeded(c, 43)
	if err != nil {
		t.Fatal(err)
	}
	if sameNets(a1, b) {
		t.Error("different seeds produced identical netlists")
	}
	if a1.NumModules() != b.NumModules() || a1.NumNets() != b.NumNets() {
		t.Error("seed changed published module/net counts")
	}
	if !b.IsConnected() {
		t.Error("seeded instance disconnected")
	}

	// Seed 0 is the named default: identical to Generate.
	d0, err := GenerateSeeded(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	def, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	if !sameNets(d0, def) {
		t.Error("seed 0 differs from Generate default")
	}
}

func TestGenerateRejectsInfeasible(t *testing.T) {
	if _, err := Generate(Circuit{Name: "x", Modules: 10, Nets: 10, Pins: 5}); err == nil {
		t.Error("pins < 2·nets accepted")
	}
	if _, err := Generate(Circuit{Name: "x", Modules: 1000, Nets: 1, Pins: 1000}); err == nil {
		t.Error("net over MaxNetSize accepted")
	}
	if _, err := Generate(Circuit{Name: "x", Modules: 1, Nets: 2, Pins: 4}); err == nil {
		t.Error("single-module circuit accepted")
	}
}

func TestScaled(t *testing.T) {
	c := mustLookup(t, "industry2")
	s := c.Scaled(0.1)
	if s.Modules >= c.Modules || s.Nets >= c.Nets || s.Pins >= c.Pins {
		t.Errorf("Scaled did not shrink: %+v", s)
	}
	if s.Pins < 2*s.Nets {
		t.Errorf("Scaled broke feasibility: %+v", s)
	}
	if same := c.Scaled(1); same != c {
		t.Error("Scaled(1) should be identity")
	}
}

func TestGeneratedNetlistHasLocality(t *testing.T) {
	// A clustered netlist must have a much better balanced bipartition
	// than a uniformly random hypergraph of the same size; check the
	// trivial ordering split is far below the ~50% of nets a random
	// netlist would cut.
	c := mustLookup(t, "prim1").Scaled(0.3)
	h, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	// Identity order follows module index, which follows cluster layout.
	order := make([]int, h.NumModules())
	for i := range order {
		order[i] = i
	}
	// Count nets cut at the middle.
	mid := len(order) / 2
	cut := 0
	for _, net := range h.Nets {
		lo, hi := net[0], net[0]
		for _, m := range net {
			if m < lo {
				lo = m
			}
			if m > hi {
				hi = m
			}
		}
		if lo < mid && hi >= mid {
			cut++
		}
	}
	if frac := float64(cut) / float64(h.NumNets()); frac > 0.35 {
		t.Errorf("middle split cuts %.0f%% of nets; expected locality", 100*frac)
	}
}

func TestAttachAreas(t *testing.T) {
	c := mustLookup(t, "bm1").Scaled(0.2)
	h, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := AttachAreas(h, 1); err != nil {
		t.Fatal(err)
	}
	if !h.HasAreas() {
		t.Fatal("areas not set")
	}
	var min, max float64 = 1e9, 0
	for i := 0; i < h.NumModules(); i++ {
		a := h.Area(i)
		if a < min {
			min = a
		}
		if a > max {
			max = a
		}
	}
	if min < 0.25 || max > 16 {
		t.Errorf("areas out of clamp range: [%v, %v]", min, max)
	}
	if max/min < 2 {
		t.Errorf("areas not skewed enough: [%v, %v]", min, max)
	}
	// Deterministic.
	h2, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := AttachAreas(h2, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < h.NumModules(); i++ {
		if h.Area(i) != h2.Area(i) {
			t.Fatal("areas differ across identical runs")
		}
	}
}

func mustLookup(t *testing.T, name string) Circuit {
	t.Helper()
	c, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
