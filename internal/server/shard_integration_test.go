package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	spectral "repro"
	"repro/internal/jobs"
)

func netlistTextScale(t *testing.T, scale float64) string {
	t.Helper()
	h, err := spectral.GenerateBenchmark("prim1", scale)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := spectral.SaveNetlist(&buf, "prim1-scaled", h); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func uploadText(t *testing.T, ts *httptest.Server, text string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/netlists", "text/plain", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status = %d", resp.StatusCode)
	}
	var st storedNetlist
	decode(t, resp, &st)
	return st.Hash
}

func metricsText(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	_, _ = body.ReadFrom(resp.Body)
	resp.Body.Close()
	return body.String()
}

// Two sharded instances must behave as one cache: a spectrum computed
// by instance A serves instance B's job for the same netlist with zero
// additional eigensolves — either B proxies the fetch to the owner, or
// the owner (B) already adopted A's synchronous offer. And when the
// peer dies, jobs still complete by local compute.
func TestTwoInstanceShardSharesSpectra(t *testing.T) {
	srvA, poolA, tsA := newTestServer(t, jobs.Config{Workers: 2, QueueDepth: 8})
	srvB, poolB, tsB := newTestServer(t, jobs.Config{Workers: 2, QueueDepth: 8})
	if err := srvA.ConfigureSharding(tsA.URL, []string{tsB.URL}); err != nil {
		t.Fatal(err)
	}
	if err := srvB.ConfigureSharding(tsB.URL, []string{tsA.URL}); err != nil {
		t.Fatal(err)
	}
	if srvA.Ring().N() != 2 || srvB.Ring().N() != 2 {
		t.Fatalf("ring sizes %d/%d, want 2/2", srvA.Ring().N(), srvB.Ring().N())
	}

	// Both instances hold the netlist (the shard shares spectra, not
	// netlists).
	text := netlistTextScale(t, 0.06)
	hash := uploadText(t, tsA, text)
	if h2 := uploadText(t, tsB, text); h2 != hash {
		t.Fatalf("same netlist hashed %s on A, %s on B", hash, h2)
	}

	stA, code := submitJob(t, tsA, fmt.Sprintf(`{"netlist":%q,"method":"melo","k":2}`, hash))
	if code != http.StatusAccepted {
		t.Fatalf("submit to A = %d", code)
	}
	finalA := awaitJob(t, tsA, stA.ID)
	if finalA.State != jobs.Done || finalA.Result == nil {
		t.Fatalf("job on A finished %s", finalA.State)
	}
	if got := poolA.Stats().Computed; got != 1 {
		t.Fatalf("A computed %d decompositions, want 1", got)
	}

	stB, code := submitJob(t, tsB, fmt.Sprintf(`{"netlist":%q,"method":"melo","k":2}`, hash))
	if code != http.StatusAccepted {
		t.Fatalf("submit to B = %d", code)
	}
	finalB := awaitJob(t, tsB, stB.ID)
	if finalB.State != jobs.Done || finalB.Result == nil {
		t.Fatalf("job on B finished %s", finalB.State)
	}
	// The cross-instance guarantee: B never ran an eigensolve, and the
	// answer is bit-identical to A's.
	if got := poolB.Stats().Computed; got != 0 {
		t.Errorf("B computed %d decompositions, want 0 (shard should have served it)", got)
	}
	if !strings.Contains(metricsText(t, tsB), "spectrald_spectrum_computed_total 0") {
		t.Error("B /metrics does not report zero computed decompositions")
	}
	if len(finalA.Result.Assign) != len(finalB.Result.Assign) {
		t.Fatal("assignment lengths differ across instances")
	}
	for i := range finalA.Result.Assign {
		if finalA.Result.Assign[i] != finalB.Result.Assign[i] {
			t.Fatalf("module %d: A assigned %d, B assigned %d", i, finalA.Result.Assign[i], finalB.Result.Assign[i])
		}
	}

	// Kill A. B must still complete new work by degrading to local
	// compute, whichever instance owns the key.
	tsA.Close()
	hash2 := uploadText(t, tsB, netlistTextScale(t, 0.15))
	stB2, code := submitJob(t, tsB, fmt.Sprintf(`{"netlist":%q,"method":"melo","k":2}`, hash2))
	if code != http.StatusAccepted {
		t.Fatalf("submit to B after peer death = %d", code)
	}
	finalB2 := awaitJob(t, tsB, stB2.ID)
	if finalB2.State != jobs.Done {
		t.Fatalf("job on B after peer death finished %s: %s", finalB2.State, finalB2.Error)
	}
	if got := poolB.Stats().Computed; got != 1 {
		t.Errorf("B computed %d decompositions after peer death, want 1 (local fallback)", got)
	}
}

// GET /v1/spectra answers peer lookups from local tiers only — a miss
// is a 404, never a compute — and PUT /v1/spectra rejects damaged
// payloads so a misbehaving peer cannot poison the cache.
func TestSpectraPeerEndpoints(t *testing.T) {
	_, pool, ts := newTestServer(t, jobs.Config{Workers: 1, QueueDepth: 4})
	hash := uploadNetlist(t, ts)

	// Miss: nothing cached yet, and the lookup must not trigger a solve.
	resp, err := http.Get(ts.URL + "/v1/spectra?hash=" + hash + "&model=partitioning-specific&pairs=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cold lookup = %d, want 404", resp.StatusCode)
	}
	if got := pool.Stats().Computed; got != 0 {
		t.Fatalf("peer lookup triggered %d eigensolves", got)
	}

	// Warm the cache, then the lookup serves bytes.
	st, _ := submitJob(t, ts, fmt.Sprintf(`{"netlist":%q,"method":"melo","k":2}`, hash))
	awaitJob(t, ts, st.ID)
	resp, err = http.Get(ts.URL + "/v1/spectra?hash=" + hash + "&model=partitioning-specific&pairs=2")
	if err != nil {
		t.Fatal(err)
	}
	data := new(bytes.Buffer)
	_, _ = data.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || data.Len() == 0 {
		t.Fatalf("warm lookup = %d with %d bytes", resp.StatusCode, data.Len())
	}
	if resp.Header.Get("Spectrald-Pairs") == "" {
		t.Error("warm lookup missing Spectrald-Pairs header")
	}

	// A garbage offer for a known netlist must be rejected.
	req, _ := http.NewRequest(http.MethodPut,
		ts.URL+"/v1/spectra?hash="+hash+"&model=partitioning-specific&pairs=2",
		strings.NewReader("not a spectrum"))
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("garbage offer = %d, want 422", resp.StatusCode)
	}

	// Re-offering the real bytes is accepted.
	req, _ = http.NewRequest(http.MethodPut,
		ts.URL+"/v1/spectra?hash="+hash+"&model=partitioning-specific&pairs=2",
		bytes.NewReader(data.Bytes()))
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("valid offer = %d, want 204", resp.StatusCode)
	}

	// Parameter validation.
	for _, q := range []string{"", "?hash=x", "?hash=x&model=y", "?hash=x&model=y&pairs=0"} {
		resp, err := http.Get(ts.URL + "/v1/spectra" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("lookup %q = %d, want 400", q, resp.StatusCode)
		}
	}
}
