// Package server is the HTTP/JSON surface of the spectrald daemon: a
// content-addressed netlist store plus a thin REST layer over the
// internal/jobs worker pool and its spectrum cache.
//
// API (all bodies JSON unless noted):
//
//	GET  /healthz                  liveness; 503 while draining
//	GET  /metrics                  Prometheus text format
//	POST /v1/netlists              upload a netlist (text or hMETIS body,
//	                               ?format=text|hmetis) or generate a
//	                               benchmark (JSON {"benchmark","scale","seed"});
//	                               returns its content hash
//	GET  /v1/netlists              list stored netlists
//	GET  /v1/netlists/{hash}       one stored netlist's statistics
//	                               (?format=text exports the full body)
//	POST /v1/netlists/{hash}/delta apply an ECO delta to a stored base
//	                               netlist and submit an incremental
//	                               partitioning job warm-started from the
//	                               base's cached spectrum; 202 on accept
//	POST /v1/jobs                  submit a job; 202 on accept, 429 when
//	                               the queue is full, 503 while draining
//	GET  /v1/jobs                  list jobs
//	GET  /v1/jobs/{id}             job status (includes result when done)
//	GET  /v1/jobs/{id}/result      result only; 409 until the job is done
//	DELETE /v1/jobs/{id}           request cancellation
//	GET  /v1/spectra               shard protocol: serve a cached encoded
//	                               spectrum (?hash=&model=&pairs=); 404 on miss
//	PUT  /v1/spectra               shard protocol: accept a peer's computed
//	                               spectrum (octet-stream body)
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	spectral "repro"
	"repro/internal/delta"
	"repro/internal/jobs"
	"repro/internal/journal"
	"repro/internal/speccache"
	"repro/internal/trace"
)

// Config sizes the server. Zero fields select the noted defaults.
type Config struct {
	// MaxNetlists bounds the content-addressed netlist store; the
	// oldest uploads are evicted first. Default 128.
	MaxNetlists int
	// MaxBodyBytes bounds request bodies. Default 64 MiB.
	MaxBodyBytes int64
	// Tracer, when set, is the daemon's tracer: /metrics renders its
	// per-span timings and counter totals as the Prometheus bridge.
	Tracer *trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.MaxNetlists <= 0 {
		c.MaxNetlists = 128
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	return c
}

type storedNetlist struct {
	Hash    string    `json:"hash"`
	Name    string    `json:"name,omitempty"`
	Modules int       `json:"modules"`
	Nets    int       `json:"nets"`
	Pins    int       `json:"pins"`
	Stored  time.Time `json:"stored"`

	h *spectral.Netlist
}

// Server is the spectrald HTTP handler. Create with New; it implements
// http.Handler.
type Server struct {
	cfg   Config
	pool  *jobs.Pool
	mux   *http.ServeMux
	start time.Time

	draining atomic.Bool

	// shard, when set via ConfigureSharding, proxies spectrum traffic
	// to peer instances; the counters track the serving side of that
	// protocol (see shard.go).
	shard             *shardClient
	peerFetchesServed atomic.Uint64
	peerFetchMisses   atomic.Uint64
	adoptedSpectra    atomic.Uint64
	adoptRejects      atomic.Uint64

	mu       sync.Mutex
	netlists map[string]*storedNetlist
	netOrder []string // insertion order for eviction
}

// New wires a server over a pool (started, or about to be). When the
// pool is durable, uploaded netlists are journaled and included in
// journal compactions so a restarted daemon can serve the same hashes.
func New(pool *jobs.Pool, cfg Config) *Server {
	s := &Server{
		cfg:      cfg.withDefaults(),
		pool:     pool,
		mux:      http.NewServeMux(),
		start:    time.Now(),
		netlists: make(map[string]*storedNetlist),
	}
	if pool.Journal() != nil {
		pool.SetSnapshotExtra(s.snapshotNetlists)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/netlists", s.handlePostNetlist)
	s.mux.HandleFunc("GET /v1/netlists", s.handleListNetlists)
	s.mux.HandleFunc("GET /v1/netlists/{hash}", s.handleGetNetlist)
	s.mux.HandleFunc("POST /v1/netlists/{hash}/delta", s.handlePostDelta)
	s.mux.HandleFunc("POST /v1/jobs", s.handlePostJob)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleGetResult)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	// Shard protocol endpoints (shard.go). Registered unconditionally:
	// a non-sharded daemon still serves its cached spectra, which is
	// harmless and lets operators mix configurations during rollout.
	s.mux.HandleFunc("GET /v1/spectra", s.handleGetSpectrum)
	s.mux.HandleFunc("PUT /v1/spectra", s.handlePutSpectrum)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SetDraining flips the server into shutdown mode: /healthz reports 503
// (so load balancers stop routing here) and job submission is refused.
// Status, result and cancellation endpoints keep working so clients can
// collect what finished.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "draining",
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"uptimeSeconds": time.Since(s.start).Seconds(),
	})
}

// generateRequest is the JSON body of a benchmark-generation upload.
type generateRequest struct {
	Benchmark string  `json:"benchmark"`
	Scale     float64 `json:"scale"`
	Seed      int64   `json:"seed"`
}

func (s *Server) handlePostNetlist(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var (
		name string
		h    *spectral.Netlist
		err  error
	)
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		var req generateRequest
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
			return
		}
		if req.Scale == 0 {
			req.Scale = 1
		}
		h, err = spectral.GenerateBenchmarkSeeded(req.Benchmark, req.Scale, req.Seed)
		name = req.Benchmark
	} else {
		switch format := r.URL.Query().Get("format"); format {
		case "hmetis":
			h, err = spectral.LoadHMetis(body)
		case "", "text":
			name, h, err = spectral.LoadNetlist(body)
		default:
			writeError(w, http.StatusBadRequest, "unknown format %q (want text|hmetis)", format)
			return
		}
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse netlist: %v", err)
		return
	}
	if err := spectral.ValidateNetlist(h); err != nil {
		writeError(w, http.StatusUnprocessableEntity, "invalid netlist: %v", err)
		return
	}
	st := s.store(name, h)
	// Journal the upload before acknowledging it: a client that got a
	// 201 must find the hash usable after a daemon restart, so a netlist
	// that cannot be journaled — whether serialization or the append
	// failed — must not be acknowledged as durable.
	if jnl := s.pool.Journal(); jnl != nil {
		var buf bytes.Buffer
		if err := spectral.SaveNetlist(&buf, name, h); err != nil {
			writeError(w, http.StatusInternalServerError, "journal netlist: %v", err)
			return
		}
		if err := jnl.AppendNetlist(st.Hash, name, buf.Bytes(), time.Now().UnixNano()); err != nil {
			writeError(w, http.StatusServiceUnavailable, "journal unavailable: %v", err)
			return
		}
	}
	writeJSON(w, http.StatusCreated, st)
}

// store registers the netlist under its content hash, evicting the
// oldest stored netlists beyond capacity. Re-uploading is idempotent.
func (s *Server) store(name string, h *spectral.Netlist) *storedNetlist {
	hash := speccache.Fingerprint(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.netlists[hash]; ok {
		return st
	}
	stats := h.Stats()
	st := &storedNetlist{
		Hash:    hash,
		Name:    name,
		Modules: stats.Modules,
		Nets:    stats.Nets,
		Pins:    stats.Pins,
		Stored:  time.Now(),
		h:       h,
	}
	s.netlists[hash] = st
	s.netOrder = append(s.netOrder, hash)
	for len(s.netOrder) > s.cfg.MaxNetlists {
		oldest := s.netOrder[0]
		s.netOrder = s.netOrder[1:]
		delete(s.netlists, oldest)
	}
	return st
}

// AdoptNetlists installs netlists recovered by a journal replay (see
// jobs.Pool.Restore) into the content-addressed store, so clients can
// reference pre-crash hashes immediately after a restart. Call before
// serving.
func (s *Server) AdoptNetlists(nets map[string]jobs.RestoredNetlist) {
	for _, rn := range nets {
		s.store(rn.Name, rn.Netlist)
	}
}

// snapshotNetlists contributes the store's contents to journal
// compactions: a stored netlist must survive a compaction even when no
// live job references it.
func (s *Server) snapshotNetlists() []journal.Record {
	s.mu.Lock()
	stored := make([]*storedNetlist, 0, len(s.netOrder))
	for _, hash := range s.netOrder {
		if st, ok := s.netlists[hash]; ok {
			stored = append(stored, st)
		}
	}
	s.mu.Unlock()
	recs := make([]journal.Record, 0, len(stored))
	for _, st := range stored {
		var buf bytes.Buffer
		if err := spectral.SaveNetlist(&buf, st.Name, st.h); err != nil {
			continue
		}
		recs = append(recs, journal.Record{
			Type: journal.TypeNetlist, Hash: st.Hash, Name: st.Name,
			Netlist: buf.Bytes(), UnixNS: st.Stored.UnixNano(),
		})
	}
	return recs
}

func (s *Server) lookup(hash string) (*storedNetlist, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.netlists[hash]
	return st, ok
}

func (s *Server) handleListNetlists(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	list := make([]*storedNetlist, 0, len(s.netOrder))
	for _, hash := range s.netOrder {
		if st, ok := s.netlists[hash]; ok {
			list = append(list, st)
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"netlists": list})
}

func (s *Server) handleGetNetlist(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookup(r.PathValue("hash"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown netlist %q", r.PathValue("hash"))
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "":
		writeJSON(w, http.StatusOK, st)
	case "text":
		// Full-body export in the text interchange format — the inverse
		// of POST /v1/netlists, so a stored (or delta-derived) netlist
		// can be fed to offline tools or another daemon.
		var buf bytes.Buffer
		if err := spectral.SaveNetlist(&buf, st.Name, st.h); err != nil {
			writeError(w, http.StatusInternalServerError, "serialize netlist: %v", err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write(buf.Bytes())
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want text)", format)
	}
}

// jobRequest is the JSON body of a job submission.
type jobRequest struct {
	// Netlist is the content hash of a stored netlist.
	Netlist string `json:"netlist"`
	// Kind is "partition" (default) or "order".
	Kind string `json:"kind"`
	// Method names the partitioning algorithm (see ParseMethod);
	// default "melo". Ignored for kind "order".
	Method string `json:"method"`
	// K, D, Scheme, MinFrac, Refine mirror spectral.Options; zero
	// values select the façade defaults.
	K       int     `json:"k"`
	D       int     `json:"d"`
	Scheme  int     `json:"scheme"`
	MinFrac float64 `json:"minFrac"`
	Refine  bool    `json:"refine"`
	// CoarsenThreshold, MaxLevels and RefinePasses mirror the multilevel
	// fields of spectral.Options (method "mlmelo"); zero values select
	// the façade defaults, and the flat methods ignore them.
	CoarsenThreshold int `json:"coarsenThreshold"`
	MaxLevels        int `json:"maxLevels"`
	RefinePasses     int `json:"refinePasses"`
	// Timeout is the job's end-to-end deadline (queue wait included) as
	// a Go duration string, e.g. "30s". The Spectrald-Timeout request
	// header is an alternative spelling; the body field wins when both
	// are set. Empty means no deadline.
	Timeout string `json:"timeout"`
}

// parseTimeout resolves the request deadline from the body field or the
// Spectrald-Timeout header.
func parseTimeout(req jobRequest, r *http.Request) (time.Duration, error) {
	raw := req.Timeout
	if raw == "" {
		raw = r.Header.Get("Spectrald-Timeout")
	}
	if raw == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, fmt.Errorf("bad timeout %q: %v", raw, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("bad timeout %q: must be positive", raw)
	}
	return d, nil
}

func (s *Server) handlePostJob(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req jobRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	st, ok := s.lookup(req.Netlist)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown netlist %q (upload it via POST /v1/netlists first)", req.Netlist)
		return
	}
	timeout, err := parseTimeout(req, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	jr := jobs.Request{Netlist: st.h, Hash: st.Hash, Timeout: timeout}
	switch req.Kind {
	case "", "partition":
		jr.Kind = jobs.KindPartition
		opts, err := partitionOptions(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		jr.Opts = opts
	case "order":
		jr.Kind = jobs.KindOrder
		jr.D = req.D
		jr.Scheme = req.Scheme
	default:
		writeError(w, http.StatusBadRequest, "unknown kind %q (want partition|order)", req.Kind)
		return
	}
	j, ok := s.submitJob(w, jr)
	if !ok {
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

// partitionOptions translates the request's option fields into
// spectral.Options, shared by the partition and delta submissions.
func partitionOptions(req jobRequest) (spectral.Options, error) {
	method := spectral.MELO
	if req.Method != "" {
		var err error
		method, err = spectral.ParseMethod(req.Method)
		if err != nil {
			return spectral.Options{}, err
		}
	}
	return spectral.Options{
		K:                req.K,
		Method:           method,
		D:                req.D,
		Scheme:           req.Scheme,
		MinFrac:          req.MinFrac,
		Refine:           req.Refine,
		CoarsenThreshold: req.CoarsenThreshold,
		MaxLevels:        req.MaxLevels,
		RefinePasses:     req.RefinePasses,
	}, nil
}

// submitJob submits to the pool and maps submission failures onto HTTP
// semantics (429 with backoff, 503 draining/journal, 400 validation).
// It reports false after writing the error response.
func (s *Server) submitJob(w http.ResponseWriter, jr jobs.Request) (*jobs.Job, bool) {
	j, err := s.pool.Submit(jr)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		// Derived backoff: queued work ahead of the client in
		// worker-widths times the median recent job duration (see
		// jobs.RetryAfter), instead of a hard-coded constant.
		retry := s.pool.RetryAfter()
		secs := int(math.Ceil(retry.Seconds()))
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error":             "queue full, retry later",
			"retryAfterSeconds": secs,
		})
		return nil, false
	case errors.Is(err, jobs.ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "shutting down")
		return nil, false
	case errors.Is(err, jobs.ErrJournal):
		// The job could not be made durable, so it was not accepted;
		// the client must not treat it as submitted.
		writeError(w, http.StatusServiceUnavailable, "journal unavailable: %v", err)
		return nil, false
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, false
	}
	return j, true
}

// deltaRequest is the JSON body of an incremental (ECO) submission: the
// delta to apply plus the partitioning options of an ordinary job
// request (kind is implicitly "delta"; the netlist is the path's base).
type deltaRequest struct {
	jobRequest
	Delta *delta.Delta `json:"delta"`
}

// handlePostDelta applies an ECO delta to a stored base netlist and
// submits an incremental partitioning job against the result. The delta
// is applied synchronously so structural errors (unknown net names,
// out-of-range modules) surface as a 422 here, not as a failed job; the
// mutated netlist enters the content-addressed store under its own
// fingerprint and the response reports it alongside the job status.
func (s *Server) handlePostDelta(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	base, ok := s.lookup(r.PathValue("hash"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown netlist %q (upload it via POST /v1/netlists first)", r.PathValue("hash"))
		return
	}
	var req deltaRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if req.Delta == nil {
		writeError(w, http.StatusBadRequest, "missing delta")
		return
	}
	timeout, err := parseTimeout(req.jobRequest, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts, err := partitionOptions(req.jobRequest)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	mut, reach, err := delta.Apply(base.h, req.Delta)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "apply delta: %v", err)
		return
	}
	mutSt := s.store(base.Name, mut)
	j, ok := s.submitJob(w, jobs.Request{
		Netlist:     mut,
		Hash:        mutSt.Hash,
		Kind:        jobs.KindDelta,
		Opts:        opts,
		Timeout:     timeout,
		BaseHash:    base.Hash,
		BaseNetlist: base.h,
		Delta:       req.Delta,
	})
	if !ok {
		return
	}
	// The job's durable journal entry (written inside Submit) carries
	// both netlist bodies, so the hashes in this acknowledgement stay
	// resolvable across a daemon restart.
	writeJSON(w, http.StatusAccepted, map[string]any{
		"job":     j.Status(),
		"netlist": mutSt.Hash,
		"base":    base.Hash,
		"reach":   reach,
	})
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.pool.Jobs()})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.pool.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleGetResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.pool.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	res, err := j.Result()
	if err != nil {
		switch j.State() {
		case jobs.Failed, jobs.Cancelled:
			writeJSON(w, http.StatusOK, map[string]any{"state": j.State(), "error": err.Error()})
		default:
			writeError(w, http.StatusConflict, "job %s is %s", j.ID(), j.State())
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"state": jobs.Done, "result": res})
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.pool.Job(id); !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	cancelled := s.pool.Cancel(id)
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "cancelled": cancelled})
}
