package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	spectral "repro"
	"repro/internal/shard"
)

// peerTimeout bounds every proxied spectrum call. A slow peer must cost
// less than the eigensolve it would save, or the fallback is the better
// deal.
const peerTimeout = 10 * time.Second

// shardClient implements jobs.RemoteSpectrum over a rendezvous ring of
// spectrald base URLs: spectrum lookups for keys owned elsewhere are
// proxied to the owner, and locally computed spectra are offered to
// their owner so the shard converges on one copy per key. Every failure
// mode — owner down, owner misses, payload damaged — degrades to local
// compute.
type shardClient struct {
	ring     *shard.Ring
	client   *http.Client
	maxBytes int64

	proxied     atomic.Uint64 // fetches sent to a peer
	proxyHits   atomic.Uint64 // fetches a peer answered with a spectrum
	proxyMisses atomic.Uint64 // fetches a peer answered 404
	peerErrors  atomic.Uint64 // transport/protocol failures (peer down)
	offersSent  atomic.Uint64 // computed spectra pushed to their owner
}

// shardStats is a counter snapshot for /metrics.
type shardStats struct {
	peers                                               int
	proxied, proxyHits, proxyMisses, peerErrors, offers uint64
	servedPeerFetches, servedPeerMisses, adoptedSpectra uint64
	adoptRejects                                        uint64
}

// ConfigureSharding joins this server to a static shard of spectrald
// instances. self and peers are base URLs ("http://host:port"), spelled
// identically on every instance so each computes the same ring. Call
// after New and before the pool starts serving traffic.
func (s *Server) ConfigureSharding(self string, peers []string) error {
	ring, err := shard.New(strings.TrimSuffix(self, "/"), trimSlashes(peers))
	if err != nil {
		return err
	}
	sc := &shardClient{
		ring:     ring,
		client:   &http.Client{Timeout: peerTimeout},
		maxBytes: s.cfg.MaxBodyBytes,
	}
	s.shard = sc
	s.pool.SetRemote(sc)
	return nil
}

func trimSlashes(peers []string) []string {
	out := make([]string, len(peers))
	for i, p := range peers {
		out[i] = strings.TrimSuffix(p, "/")
	}
	return out
}

// Ring exposes the shard ring (nil when sharding is not configured).
func (s *Server) Ring() *shard.Ring {
	if s.shard == nil {
		return nil
	}
	return s.shard.ring
}

func spectraURL(base, hash, model string, pairs int) string {
	return fmt.Sprintf("%s/v1/spectra?hash=%s&model=%s&pairs=%d",
		base, url.QueryEscape(hash), url.QueryEscape(model), pairs)
}

// Fetch implements jobs.RemoteSpectrum: ask the key's owner for an
// encoded spectrum. ok == false (never an error) covers every reason to
// compute locally instead — local ownership, owner miss, owner down.
func (c *shardClient) Fetch(ctx context.Context, hash, model string, pairs int) ([]byte, bool, error) {
	owner := c.ring.Owner(hash)
	if owner == c.ring.Self() {
		return nil, false, nil
	}
	c.proxied.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, spectraURL(owner, hash, model, pairs), nil)
	if err != nil {
		c.peerErrors.Add(1)
		return nil, false, nil
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.peerErrors.Add(1)
		return nil, false, nil
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		c.proxyMisses.Add(1)
		return nil, false, nil
	default:
		c.peerErrors.Add(1)
		return nil, false, nil
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, c.maxBytes+1))
	if err != nil || int64(len(data)) > c.maxBytes {
		c.peerErrors.Add(1)
		return nil, false, nil
	}
	c.proxyHits.Add(1)
	return data, true, nil
}

// Offer implements jobs.RemoteSpectrum: push a locally computed
// spectrum to its owner. Synchronous and best-effort — the caller just
// paid for an eigensolve, so one bounded HTTP round-trip is noise, and
// a deterministic hand-off is what makes "the owner has it" testable.
func (c *shardClient) Offer(hash, model string, pairs int, data []byte) {
	owner := c.ring.Owner(hash)
	if owner == c.ring.Self() {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), peerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, spectraURL(owner, hash, model, pairs), bytes.NewReader(data))
	if err != nil {
		c.peerErrors.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.client.Do(req)
	if err != nil {
		c.peerErrors.Add(1)
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode >= 300 {
		c.peerErrors.Add(1)
		return
	}
	c.offersSent.Add(1)
}

// spectraParams parses the common hash/model/pairs query triple.
func spectraParams(r *http.Request) (hash, model string, pairs int, err error) {
	q := r.URL.Query()
	hash, model = q.Get("hash"), q.Get("model")
	pairs, aerr := strconv.Atoi(q.Get("pairs"))
	switch {
	case hash == "" || model == "":
		err = fmt.Errorf("hash and model query parameters are required")
	case aerr != nil || pairs < 1:
		err = fmt.Errorf("pairs must be a positive integer")
	}
	return hash, model, pairs, err
}

// handleGetSpectrum serves a shard peer's spectrum lookup from the
// local cache and store, never by computing or re-proxying.
func (s *Server) handleGetSpectrum(w http.ResponseWriter, r *http.Request) {
	hash, model, pairs, err := spectraParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	data, got, ok := s.pool.SpectrumBytes(hash, model, pairs)
	if !ok {
		s.peerFetchMisses.Add(1)
		writeError(w, http.StatusNotFound, "no cached spectrum for %s/%s with >= %d pairs", hash, model, pairs)
		return
	}
	s.peerFetchesServed.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Spectrald-Pairs", strconv.Itoa(got))
	_, _ = w.Write(data)
}

// handlePutSpectrum accepts a spectrum offered by a shard peer. When
// the matching netlist is stored here the payload is validated against
// it and seeded into the hot cache; otherwise it lands in the
// persistent store, to be validated on first read.
func (s *Server) handlePutSpectrum(w http.ResponseWriter, r *http.Request) {
	hash, model, pairs, err := spectraParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "read body: %v", err)
		return
	}
	var h *spectral.Netlist
	if st, ok := s.lookup(hash); ok {
		h = st.h
	}
	if err := s.pool.AdoptSpectrum(hash, model, pairs, data, h); err != nil {
		s.adoptRejects.Add(1)
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.adoptedSpectra.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// shardStatsSnapshot collects the shard counters for /metrics (zero
// value when sharding is off — the served/adopted counters still count,
// since the endpoints answer regardless).
func (s *Server) shardStatsSnapshot() shardStats {
	st := shardStats{
		servedPeerFetches: s.peerFetchesServed.Load(),
		servedPeerMisses:  s.peerFetchMisses.Load(),
		adoptedSpectra:    s.adoptedSpectra.Load(),
		adoptRejects:      s.adoptRejects.Load(),
	}
	if c := s.shard; c != nil {
		st.peers = c.ring.N()
		st.proxied = c.proxied.Load()
		st.proxyHits = c.proxyHits.Load()
		st.proxyMisses = c.proxyMisses.Load()
		st.peerErrors = c.peerErrors.Load()
		st.offers = c.offersSent.Load()
	}
	return st
}
