package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/jobs"
	"repro/internal/parallel"
)

// handleMetrics renders the pool, cache and store counters in the
// Prometheus text exposition format — scrapable, and greppable by eye.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.pool.Stats()
	s.mu.Lock()
	stored := len(s.netlists)
	s.mu.Unlock()

	var b strings.Builder
	gauge := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}

	fmt.Fprintf(&b, "# HELP spectrald_jobs Current jobs by lifecycle state.\n# TYPE spectrald_jobs gauge\n")
	for _, sc := range []struct {
		state jobs.State
		n     int
	}{
		{jobs.Pending, st.Pending},
		{jobs.Running, st.Running},
		{jobs.Done, st.Done},
		{jobs.Failed, st.Failed},
		{jobs.Cancelled, st.Cancelled},
	} {
		fmt.Fprintf(&b, "spectrald_jobs{state=%q} %d\n", sc.state, sc.n)
	}
	counter("spectrald_jobs_submitted_total", "Jobs accepted into the queue.", st.Submitted)
	counter("spectrald_jobs_rejected_total", "Submissions rejected by queue backpressure.", st.Rejected)
	gauge("spectrald_queue_depth", "Jobs currently waiting for a worker.", st.QueueDepth)
	gauge("spectrald_queue_capacity", "Configured queue bound.", st.QueueCapacity)
	gauge("spectrald_workers", "Configured worker count.", st.Workers)
	gauge("spectrald_parallelism", "Worker goroutines per numerical kernel.", parallel.Limit())

	counter("spectrald_spectrum_cache_hits_total", "Jobs served by a cached eigendecomposition.", st.Cache.Hits)
	counter("spectrald_spectrum_cache_misses_total", "Eigendecompositions computed (cache misses).", st.Cache.Misses)
	counter("spectrald_spectrum_cache_evictions_total", "Cached decompositions evicted by the LRU bound.", st.Cache.Evictions)
	counter("spectrald_spectrum_cache_warm_hints_total", "Decompositions prewarmed from journal replay hints.", st.Cache.WarmHints)
	gauge("spectrald_spectrum_cache_entries", "Decompositions currently cached.", st.Cache.Entries)
	counter("spectrald_spectrum_computed_total", "Eigendecompositions actually solved by this process (not served by any cache tier).", st.Computed)
	counter("spectrald_spectrum_store_hits_total", "Spectrum fetches served by the persistent store tier.", st.StoreHits)
	counter("spectrald_spectrum_remote_hits_total", "Spectrum fetches served by a shard peer.", st.RemoteHits)

	// Incremental (ECO) delta jobs: eigensolves by warm-start outcome.
	fmt.Fprintf(&b, "# HELP spectrald_warmstart_total Delta-job eigensolves by warm-start outcome.\n# TYPE spectrald_warmstart_total counter\n")
	for _, wc := range []struct {
		outcome string
		n       uint64
	}{
		{"accepted", st.WarmAccepted},
		{"seeded", st.WarmSeeded},
		{"rejected", st.WarmRejected},
		{"cold", st.WarmCold},
	} {
		fmt.Fprintf(&b, "spectrald_warmstart_total{outcome=%q} %d\n", wc.outcome, wc.n)
	}

	// Persistent spectrum store (when configured).
	if store := s.pool.Store(); store != nil {
		ss := store.Stats()
		counter("spectrald_specstore_hits_total", "Persistent store reads that returned an entry.", ss.Hits)
		counter("spectrald_specstore_misses_total", "Persistent store reads that missed.", ss.Misses)
		counter("spectrald_specstore_puts_total", "Entries written to the persistent store.", ss.Puts)
		counter("spectrald_specstore_skipped_puts_total", "Writes skipped because the stored capacity already sufficed.", ss.SkippedPuts)
		counter("spectrald_specstore_quarantined_total", "Corrupt entries quarantined by the persistent store.", ss.Quarantined)
		counter("spectrald_specstore_errors_total", "Persistent store I/O failures.", ss.Errors)
		gauge("spectrald_specstore_entries", "Entries currently in the persistent store.", ss.Entries)
	}

	// Request batching (when enabled).
	counter("spectrald_batches_fired_total", "Spectrum batch windows fired (size or deadline trigger).", st.Batches)
	counter("spectrald_batched_jobs_total", "Jobs whose decomposition was delivered by a shared batch.", st.BatchedJobs)

	// Shard routing.
	sh := s.shardStatsSnapshot()
	if sh.peers > 0 {
		gauge("spectrald_shard_peers", "Instances in the shard ring (self included).", sh.peers)
		counter("spectrald_shard_proxied_total", "Spectrum fetches proxied to the owning peer.", sh.proxied)
		counter("spectrald_shard_proxy_hits_total", "Proxied fetches the owner answered with a spectrum.", sh.proxyHits)
		counter("spectrald_shard_proxy_misses_total", "Proxied fetches the owner answered 404.", sh.proxyMisses)
		counter("spectrald_shard_peer_errors_total", "Shard peer calls that failed (peer down or protocol error).", sh.peerErrors)
		counter("spectrald_shard_offers_sent_total", "Locally computed spectra pushed to their owning peer.", sh.offers)
	}
	counter("spectrald_shard_served_fetches_total", "Peer spectrum lookups answered from local tiers.", sh.servedPeerFetches)
	counter("spectrald_shard_served_misses_total", "Peer spectrum lookups answered 404.", sh.servedPeerMisses)
	counter("spectrald_shard_adopted_spectra_total", "Peer-offered spectra accepted into local tiers.", sh.adoptedSpectra)
	counter("spectrald_shard_adopt_rejects_total", "Peer-offered spectra rejected as invalid.", sh.adoptRejects)

	// Overload control and crash safety.
	gauge("spectrald_retry_after_seconds", "Current backoff hint quoted to rejected submissions.", st.RetryAfterSeconds)
	boolGauge := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	fmt.Fprintf(&b, "# HELP spectrald_shedding Whether admission control is actively shedding (policy %q).\n# TYPE spectrald_shedding gauge\nspectrald_shedding %d\n",
		st.Shed.Policy, boolGauge(st.Shed.Active))
	counter("spectrald_shed_degraded_total", "Jobs admitted with a degraded eigenvector count.", st.Shed.Degraded)
	counter("spectrald_shed_rejected_total", "Jobs rejected by load shedding before the queue filled.", st.Shed.Rejected)
	counter("spectrald_shed_trips_total", "Transitions of the shedder into the active state.", st.Shed.Trips)
	counter("spectrald_job_panics_total", "Jobs that panicked and were isolated.", st.Panics)
	counter("spectrald_journal_append_errors_total", "Journal appends that failed.", st.JournalErrors)

	if jnl := s.pool.Journal(); jnl != nil {
		js := jnl.Stats()
		counter("spectrald_journal_appends_total", "Records appended to the job journal.", js.Appends)
		counter("spectrald_journal_syncs_total", "fsync batches flushed by the journal.", js.Syncs)
		counter("spectrald_journal_rotations_total", "Journal segment rotations.", js.Rotations)
		counter("spectrald_journal_compactions_total", "Journal compactions (rewrites).", js.Compactions)
		counter("spectrald_journal_bytes_appended_total", "Bytes appended to the journal.", js.BytesAppended)
		gauge("spectrald_journal_segments", "Journal segments currently on disk.", js.Segments)
	}
	if rs := s.pool.RestoreStatsSnapshot(); rs != nil {
		gauge("spectrald_replay_jobs_reenqueued", "Jobs re-enqueued by the last journal replay.", rs.Reenqueued)
		gauge("spectrald_replay_jobs_recovered_terminal", "Terminal jobs recovered by the last journal replay.", rs.RecoveredTerminal)
		gauge("spectrald_replay_jobs_cancelled", "Jobs cancelled on replay (pre-crash cancel honoured).", rs.CancelledOnReplay)
		gauge("spectrald_replay_jobs_failed", "Jobs failed on replay (unrecoverable).", rs.FailedOnReplay)
		gauge("spectrald_replay_corrupt_records", "Corrupt journal records skipped by the last replay.", rs.Replay.CorruptRecords)
		gauge("spectrald_replay_torn_segments", "Journal segments with torn tails truncated by the last replay.", rs.Replay.TornSegments)
		gauge("spectrald_replay_truncated_bytes", "Journal bytes dropped as damaged by the last replay.", rs.Replay.TruncatedBytes)
	}

	fmt.Fprintf(&b, "# HELP spectrald_stage_seconds Cumulative per-stage latency of finished jobs.\n# TYPE spectrald_stage_seconds summary\n")
	for _, sc := range []struct {
		stage string
		agg   jobs.StageStats
	}{
		{"queue", st.QueueWait},
		{"batch", st.Batch},
		{"spectrum", st.Spectrum},
		{"solve", st.Solve},
	} {
		fmt.Fprintf(&b, "spectrald_stage_seconds_sum{stage=%q} %g\n", sc.stage, sc.agg.TotalSeconds)
		fmt.Fprintf(&b, "spectrald_stage_seconds_count{stage=%q} %d\n", sc.stage, sc.agg.Count)
	}

	if tr := s.cfg.Tracer; tr != nil {
		// The tracer's built-in aggregation is the Prometheus bridge: no
		// second registry, the same numbers WriteReport prints.
		if stats := tr.SpanStats(); len(stats) > 0 {
			fmt.Fprintf(&b, "# HELP spectrald_trace_span_seconds Cumulative duration of trace spans by name.\n# TYPE spectrald_trace_span_seconds summary\n")
			for _, sp := range stats {
				fmt.Fprintf(&b, "spectrald_trace_span_seconds_sum{name=%q} %g\n", sp.Name, sp.Total.Seconds())
				fmt.Fprintf(&b, "spectrald_trace_span_seconds_count{name=%q} %d\n", sp.Name, sp.Count)
			}
		}
		if counters := tr.Counters(); len(counters) > 0 {
			names := make([]string, 0, len(counters))
			for name := range counters {
				names = append(names, name)
			}
			sort.Strings(names)
			fmt.Fprintf(&b, "# HELP spectrald_trace_counter_total Trace counter totals by name.\n# TYPE spectrald_trace_counter_total counter\n")
			for _, name := range names {
				fmt.Fprintf(&b, "spectrald_trace_counter_total{name=%q} %d\n", name, counters[name])
			}
		}
	}

	gauge("spectrald_netlists_stored", "Netlists in the content-addressed store.", stored)
	gauge("spectrald_uptime_seconds", "Seconds since the server started.", int64(time.Since(s.start).Seconds()))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
