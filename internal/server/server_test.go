package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	spectral "repro"
	"repro/internal/jobs"
)

func newTestServer(t *testing.T, cfg jobs.Config) (*Server, *jobs.Pool, *httptest.Server) {
	t.Helper()
	pool := jobs.NewPool(cfg)
	pool.Start()
	srv := New(pool, Config{})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = pool.Shutdown(ctx)
	})
	return srv, pool, ts
}

func decode(t *testing.T, resp *http.Response, into any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("decode response: %v", err)
	}
}

func netlistText(t *testing.T) string {
	t.Helper()
	h, err := spectral.GenerateBenchmark("prim1", 0.06)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := spectral.SaveNetlist(&buf, "prim1-small", h); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func uploadNetlist(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/netlists", "text/plain", strings.NewReader(netlistText(t)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status = %d", resp.StatusCode)
	}
	var st storedNetlist
	decode(t, resp, &st)
	if st.Hash == "" || st.Modules == 0 {
		t.Fatalf("stored = %+v", st)
	}
	return st.Hash
}

func submitJob(t *testing.T, ts *httptest.Server, body string) (jobs.Status, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st jobs.Status
	if resp.StatusCode == http.StatusAccepted {
		decode(t, resp, &st)
	} else {
		resp.Body.Close()
	}
	return st, resp.StatusCode
}

func awaitJob(t *testing.T, ts *httptest.Server, id string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st jobs.Status
		decode(t, resp, &st)
		switch st.State {
		case jobs.Done, jobs.Failed, jobs.Cancelled:
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return jobs.Status{}
}

func TestHealthz(t *testing.T) {
	srv, _, ts := newTestServer(t, jobs.Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
	srv.SetDraining(true)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", resp.StatusCode)
	}
}

// The whole happy path over HTTP: upload, submit, poll, fetch result —
// then a second job with different K that must hit the spectrum cache,
// visible both in the result payload and on /metrics.
func TestSubmitPollResultAndCacheHit(t *testing.T) {
	_, _, ts := newTestServer(t, jobs.Config{Workers: 2, QueueDepth: 8})
	hash := uploadNetlist(t, ts)

	st, code := submitJob(t, ts, fmt.Sprintf(`{"netlist":%q,"method":"melo","k":2}`, hash))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	final := awaitJob(t, ts, st.ID)
	if final.State != jobs.Done || final.Result == nil {
		t.Fatalf("job finished %s: %+v", final.State, final)
	}
	if final.Result.K != 2 || len(final.Result.Assign) == 0 {
		t.Errorf("result = %+v", final.Result)
	}
	if final.Result.SpectrumCacheHit {
		t.Error("first job reported a cache hit")
	}

	// Same netlist, different method and K: one eigensolve total.
	st2, code := submitJob(t, ts, fmt.Sprintf(`{"netlist":%q,"method":"sfc","k":4}`, hash))
	if code != http.StatusAccepted {
		t.Fatalf("second submit = %d", code)
	}
	if final2 := awaitJob(t, ts, st2.ID); final2.Result == nil || !final2.Result.SpectrumCacheHit {
		t.Errorf("second job should hit the spectrum cache: %+v", final2.Result)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	_, _ = body.ReadFrom(resp.Body)
	resp.Body.Close()
	metrics := body.String()
	for _, want := range []string{
		"spectrald_spectrum_cache_hits_total 1",
		"spectrald_spectrum_cache_misses_total 1",
		`spectrald_jobs{state="done"} 2`,
		`spectrald_stage_seconds_count{stage="solve"} 2`,
		"spectrald_netlists_stored 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q\n%s", want, metrics)
		}
	}

	// Result endpoint.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		State  jobs.State   `json:"state"`
		Result *jobs.Result `json:"result"`
	}
	decode(t, resp, &res)
	if res.State != jobs.Done || res.Result == nil || res.Result.NetCut < 0 {
		t.Errorf("result endpoint = %+v", res)
	}
}

func TestOrderJob(t *testing.T) {
	_, _, ts := newTestServer(t, jobs.Config{Workers: 1, QueueDepth: 4})
	hash := uploadNetlist(t, ts)
	st, code := submitJob(t, ts, fmt.Sprintf(`{"netlist":%q,"kind":"order","d":5}`, hash))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	final := awaitJob(t, ts, st.ID)
	if final.State != jobs.Done || final.Result == nil || len(final.Result.Order) == 0 {
		t.Fatalf("order job: %+v", final)
	}
}

func TestGenerateBenchmarkUpload(t *testing.T) {
	_, _, ts := newTestServer(t, jobs.Config{Workers: 1})
	resp, err := http.Post(ts.URL+"/v1/netlists", "application/json",
		strings.NewReader(`{"benchmark":"prim1","scale":0.06,"seed":7}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("generate = %d", resp.StatusCode)
	}
	var st storedNetlist
	decode(t, resp, &st)
	if st.Name != "prim1" || st.Modules == 0 {
		t.Errorf("stored = %+v", st)
	}
	// Distinct seed, distinct instance, distinct hash.
	resp, err = http.Post(ts.URL+"/v1/netlists", "application/json",
		strings.NewReader(`{"benchmark":"prim1","scale":0.06,"seed":8}`))
	if err != nil {
		t.Fatal(err)
	}
	var st2 storedNetlist
	decode(t, resp, &st2)
	if st2.Hash == st.Hash {
		t.Error("different seeds produced the same content hash")
	}
}

func TestBadRequests(t *testing.T) {
	_, _, ts := newTestServer(t, jobs.Config{Workers: 1})
	hash := uploadNetlist(t, ts)
	cases := []struct {
		body string
		want int
	}{
		{`{not json`, http.StatusBadRequest},
		{`{"netlist":"sha256:nope"}`, http.StatusNotFound},
		{fmt.Sprintf(`{"netlist":%q,"method":"quantum"}`, hash), http.StatusBadRequest},
		{fmt.Sprintf(`{"netlist":%q,"kind":"juggle"}`, hash), http.StatusBadRequest},
		{fmt.Sprintf(`{"netlist":%q,"k":1}`, hash), http.StatusBadRequest},
	}
	for _, c := range cases {
		if _, code := submitJob(t, ts, c.body); code != c.want {
			t.Errorf("submit %s: code = %d, want %d", c.body, code, c.want)
		}
	}
	resp, _ := http.Get(ts.URL + "/v1/jobs/job-999999")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d", resp.StatusCode)
	}
	resp, _ = http.Post(ts.URL+"/v1/netlists", "text/plain", strings.NewReader("net a m1\n"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad netlist upload = %d, want 400", resp.StatusCode)
	}
}

// A full queue surfaces as HTTP 429 with Retry-After.
func TestBackpressure429(t *testing.T) {
	_, pool, ts := newTestServer(t, jobs.Config{Workers: 1, QueueDepth: 1})
	// Occupy the single worker with a genuinely slow job — a ~750
	// module netlist with a 30-eigenvector solve — so later submissions
	// pile into the depth-1 queue.
	resp, err := http.Post(ts.URL+"/v1/netlists", "application/json",
		strings.NewReader(`{"benchmark":"industry2","scale":0.06}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("generate = %d", resp.StatusCode)
	}
	var stored storedNetlist
	decode(t, resp, &stored)
	body := fmt.Sprintf(`{"netlist":%q,"method":"melo","k":2,"d":30}`, stored.Hash)
	var ids []string
	got429 := false
	for i := 0; i < 50; i++ {
		st, code := submitJob(t, ts, body)
		switch code {
		case http.StatusAccepted:
			ids = append(ids, st.ID)
		case http.StatusTooManyRequests:
			got429 = true
		default:
			t.Fatalf("submit %d: unexpected code %d", i, code)
		}
		if got429 {
			break
		}
	}
	if !got429 {
		t.Fatal("never saw 429 despite queue depth 1")
	}
	if pool.Stats().Rejected == 0 {
		t.Error("pool did not count the rejection")
	}
	for _, id := range ids {
		awaitJob(t, ts, id)
	}
}

func TestCancelOverHTTP(t *testing.T) {
	_, _, ts := newTestServer(t, jobs.Config{Workers: 1, QueueDepth: 4})
	hash := uploadNetlist(t, ts)
	// Queue two jobs on one worker; cancel the second while it waits.
	st1, _ := submitJob(t, ts, fmt.Sprintf(`{"netlist":%q,"k":2}`, hash))
	st2, _ := submitJob(t, ts, fmt.Sprintf(`{"netlist":%q,"k":4}`, hash))
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st2.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Cancelled bool `json:"cancelled"`
	}
	decode(t, resp, &out)
	final2 := awaitJob(t, ts, st2.ID)
	// The job either got cancelled in the queue or finished first —
	// both are legal; what must never happen is a stuck or lost job.
	if final2.State != jobs.Cancelled && final2.State != jobs.Done {
		t.Errorf("cancelled job state = %s", final2.State)
	}
	if out.Cancelled && final2.State != jobs.Cancelled {
		t.Errorf("cancel acknowledged but state = %s", final2.State)
	}
	awaitJob(t, ts, st1.ID)
}

func TestJobsAndNetlistsListing(t *testing.T) {
	_, _, ts := newTestServer(t, jobs.Config{Workers: 1})
	hash := uploadNetlist(t, ts)
	st, _ := submitJob(t, ts, fmt.Sprintf(`{"netlist":%q,"k":2}`, hash))
	awaitJob(t, ts, st.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var jl struct {
		Jobs []jobs.Status `json:"jobs"`
	}
	decode(t, resp, &jl)
	if len(jl.Jobs) != 1 || jl.Jobs[0].ID != st.ID {
		t.Errorf("jobs list = %+v", jl)
	}

	resp, err = http.Get(ts.URL + "/v1/netlists")
	if err != nil {
		t.Fatal(err)
	}
	var nl struct {
		Netlists []storedNetlist `json:"netlists"`
	}
	decode(t, resp, &nl)
	if len(nl.Netlists) != 1 || nl.Netlists[0].Hash != hash {
		t.Errorf("netlists list = %+v", nl)
	}

	resp, err = http.Get(ts.URL + "/v1/netlists/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("netlist get = %d", resp.StatusCode)
	}
}
