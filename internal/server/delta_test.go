package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	spectral "repro"
	"repro/internal/delta"
	"repro/internal/jobs"
	"repro/internal/speccache"
	"repro/internal/trace"
)

// deltaAccepted is the 202 body of POST /v1/netlists/{hash}/delta.
type deltaAccepted struct {
	Job     jobs.Status `json:"job"`
	Netlist string      `json:"netlist"`
	Base    string      `json:"base"`
	Reach   delta.Reach `json:"reach"`
}

func postDelta(t *testing.T, ts *httptest.Server, base, body string) (*http.Response, error) {
	t.Helper()
	return http.Post(ts.URL+"/v1/netlists/"+base+"/delta", "application/json", strings.NewReader(body))
}

// The full incremental flow over HTTP: upload a base, partition it,
// POST a delta, and check the job's answer matches a cold partition of
// the mutated netlist exactly.
func TestDeltaEndpointEndToEnd(t *testing.T) {
	_, pool, ts := newTestServer(t, jobs.Config{Workers: 2, QueueDepth: 16})
	baseHash := uploadNetlist(t, ts)

	// The generator is deterministic, so the test knows the uploaded
	// netlist's net names and can mirror the server-side Apply locally.
	base, err := spectral.GenerateBenchmark("prim1", 0.06)
	if err != nil {
		t.Fatal(err)
	}
	d := &delta.Delta{
		RemoveNets: []string{base.NetNames[0]},
		AddNets:    []delta.NetChange{{Name: "eco-http", Modules: []int{0, 7}}},
	}
	mut, _, err := delta.Apply(base, d)
	if err != nil {
		t.Fatal(err)
	}

	// Warm the base spectrum like an ECO flow: partition the base first.
	st, code := submitJob(t, ts, fmt.Sprintf(`{"netlist":%q,"k":2}`, baseHash))
	if code != http.StatusAccepted {
		t.Fatalf("base job status = %d", code)
	}
	awaitJob(t, ts, st.ID)

	resp, err := postDelta(t, ts, baseHash,
		`{"delta":{"removeNets":["`+base.NetNames[0]+`"],"addNets":[{"name":"eco-http","modules":[0,7]}]},"k":2}`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("delta status = %d: %s", resp.StatusCode, body)
	}
	var acc deltaAccepted
	decode(t, resp, &acc)
	if acc.Base != baseHash {
		t.Errorf("base echo = %q, want %q", acc.Base, baseHash)
	}
	if want := speccache.Fingerprint(mut); acc.Netlist != want {
		t.Errorf("mutated hash = %q, want %q", acc.Netlist, want)
	}
	if acc.Reach.Nets < 2 || acc.Reach.Modules == 0 {
		t.Errorf("reach = %+v, want a visible perturbation", acc.Reach)
	}
	if acc.Job.Kind != jobs.KindDelta || acc.Job.BaseHash != baseHash {
		t.Errorf("job status = %+v, want kind delta with base hash", acc.Job)
	}

	// The mutated netlist is now stored and exportable.
	nresp, err := http.Get(ts.URL + "/v1/netlists/" + acc.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusOK {
		t.Errorf("mutated netlist lookup = %d, want 200", nresp.StatusCode)
	}

	fin := awaitJob(t, ts, acc.Job.ID)
	if fin.State != jobs.Done {
		t.Fatalf("delta job state %s: %s", fin.State, fin.Error)
	}
	res := fin.Result
	if res == nil {
		t.Fatal("done delta job has no result")
	}
	if res.WarmStart == "" || res.BaseHash != baseHash || res.Stability == nil || res.Reach == nil {
		t.Fatalf("delta result incomplete: %+v", res)
	}
	cold, err := spectral.Partition(mut, spectral.Options{K: 2, Method: spectral.MELO})
	if err != nil {
		t.Fatal(err)
	}
	if res.NetCut != spectral.NetCut(mut, cold) {
		t.Errorf("delta cut %d != cold cut %d", res.NetCut, spectral.NetCut(mut, cold))
	}
	for i := range res.Assign {
		if res.Assign[i] != cold.Assign[i] {
			t.Fatalf("delta assign differs from cold at module %d", i)
		}
	}
	if res.Stability.NewCut != res.NetCut {
		t.Errorf("stability NewCut %d != cut %d", res.Stability.NewCut, res.NetCut)
	}
	if sum := func() uint64 {
		s := pool.Stats()
		return s.WarmAccepted + s.WarmSeeded + s.WarmRejected + s.WarmCold
	}(); sum != 1 {
		t.Errorf("warm outcome count = %d, want 1", sum)
	}
}

func TestDeltaEndpointErrors(t *testing.T) {
	_, _, ts := newTestServer(t, jobs.Config{Workers: 1, QueueDepth: 4})
	baseHash := uploadNetlist(t, ts)

	cases := []struct {
		name, base, body string
		want             int
	}{
		{"unknown-base", "nope", `{"delta":{"removeNets":["x"]},"k":2}`, http.StatusNotFound},
		{"missing-delta", baseHash, `{"k":2}`, http.StatusBadRequest},
		{"bad-json", baseHash, `{`, http.StatusBadRequest},
		{"unknown-net", baseHash, `{"delta":{"removeNets":["no-such-net"]},"k":2}`, http.StatusUnprocessableEntity},
		{"out-of-range", baseHash, `{"delta":{"addNets":[{"name":"x","modules":[0,99999]}]},"k":2}`, http.StatusUnprocessableEntity},
		{"bad-method", baseHash, `{"delta":{"setAreas":[{"module":0,"area":2}]},"method":"bogus"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := postDelta(t, ts, tc.base, tc.body)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
}

// GET /v1/netlists/{hash}?format=text must round-trip: the export
// reparses to the same fingerprint.
func TestNetlistTextExportRoundTrips(t *testing.T) {
	_, _, ts := newTestServer(t, jobs.Config{Workers: 1})
	baseHash := uploadNetlist(t, ts)
	resp, err := http.Get(ts.URL + "/v1/netlists/" + baseHash + "?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export status = %d", resp.StatusCode)
	}
	_, h, err := spectral.LoadNetlist(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := speccache.Fingerprint(h); got != baseHash {
		t.Errorf("re-parsed fingerprint %q != %q", got, baseHash)
	}

	bad, err := http.Get(ts.URL + "/v1/netlists/" + baseHash + "?format=bogus")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus format status = %d, want 400", bad.StatusCode)
	}
}

// /metrics must expose the warm-start outcome counters — both the
// pool's spectrald_warmstart_total family and the facade's trace
// counter (what the CI smoke asserts on).
func TestMetricsExposeWarmStartCounters(t *testing.T) {
	tr := trace.New(trace.NewRing(4096))
	pool := jobs.NewPool(jobs.Config{Workers: 1, QueueDepth: 8})
	pool.SetTracer(tr)
	pool.Start()
	srv := New(pool, Config{Tracer: tr})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	baseHash := uploadNetlist(t, ts)
	resp, err := postDelta(t, ts, baseHash, `{"delta":{"setAreas":[{"module":0,"area":2}]},"k":2}`)
	if err != nil {
		t.Fatal(err)
	}
	var acc deltaAccepted
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("delta status = %d", resp.StatusCode)
	}
	decode(t, resp, &acc)
	awaitJob(t, ts, acc.Job.ID)

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(body)
	if !strings.Contains(text, `spectrald_warmstart_total{outcome="accepted"}`) {
		t.Error("metrics lack spectrald_warmstart_total{outcome=\"accepted\"}")
	}
	if !strings.Contains(text, `spectrald_trace_counter_total{name="eigen.warmstart.`) {
		t.Error("metrics lack the eigen.warmstart trace counter the CI smoke asserts on")
	}
}
