package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/journal"
)

// faultFile wraps a journal segment file and fails writes and syncs
// while armed, simulating a full or failing disk under the journal.
type faultFile struct {
	f    journal.File
	fail *atomic.Bool
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if ff.fail.Load() {
		return 0, errors.New("injected write error")
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	if ff.fail.Load() {
		return errors.New("injected sync error")
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }

// newJournaledServer boots a server over a pool backed by a journal in
// dir, optionally wrapping segment files so tests can inject faults.
func newJournaledServer(t *testing.T, dir string, fail *atomic.Bool, cfg jobs.Config) (*Server, *jobs.Pool, *httptest.Server) {
	t.Helper()
	opts := journal.Options{}
	if fail != nil {
		opts.OpenFile = func(path string) (journal.File, error) {
			f, err := journal.DefaultOpenFile(path)
			if err != nil {
				return nil, err
			}
			return &faultFile{f: f, fail: fail}, nil
		}
	}
	jnl, rep, err := journal.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Journal = jnl
	pool := jobs.NewPool(cfg)
	srv := New(pool, Config{})
	if _, nets, err := pool.Restore(rep); err != nil {
		t.Fatal(err)
	} else {
		srv.AdoptNetlists(nets)
	}
	pool.Start()
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = pool.Shutdown(ctx)
		_ = jnl.Close()
	})
	return srv, pool, ts
}

func TestTimeoutValidation(t *testing.T) {
	_, _, ts := newTestServer(t, jobs.Config{Workers: 1, QueueDepth: 4})
	hash := uploadNetlist(t, ts)
	for _, c := range []struct {
		body string
		want int
	}{
		{fmt.Sprintf(`{"netlist":%q,"k":2,"timeout":"banana"}`, hash), http.StatusBadRequest},
		{fmt.Sprintf(`{"netlist":%q,"k":2,"timeout":"-5s"}`, hash), http.StatusBadRequest},
		{fmt.Sprintf(`{"netlist":%q,"k":2,"timeout":"45s"}`, hash), http.StatusAccepted},
	} {
		if _, code := submitJob(t, ts, c.body); code != c.want {
			t.Errorf("submit %s: code = %d, want %d", c.body, code, c.want)
		}
	}
}

func TestTimeoutFromBodyAndHeader(t *testing.T) {
	_, _, ts := newTestServer(t, jobs.Config{Workers: 1, QueueDepth: 4})
	hash := uploadNetlist(t, ts)

	// Header alone sets the deadline.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
		strings.NewReader(fmt.Sprintf(`{"netlist":%q,"k":2}`, hash)))
	req.Header.Set("Spectrald-Timeout", "90s")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st jobs.Status
	decode(t, resp, &st)
	if st.TimeoutSeconds != 90 {
		t.Errorf("header timeout = %gs, want 90s", st.TimeoutSeconds)
	}

	// Body field wins over the header.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
		strings.NewReader(fmt.Sprintf(`{"netlist":%q,"k":2,"timeout":"30s"}`, hash)))
	req.Header.Set("Spectrald-Timeout", "90s")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	decode(t, resp, &st)
	if st.TimeoutSeconds != 30 {
		t.Errorf("body timeout = %gs, want 30s (body wins over header)", st.TimeoutSeconds)
	}
	awaitJob(t, ts, st.ID)
}

// A 429 carries a Retry-After derived from live queue state, not the
// old hard-coded "1" — and the JSON body repeats it for clients that
// cannot reach headers.
func TestDerivedRetryAfter(t *testing.T) {
	_, _, ts := newTestServer(t, jobs.Config{Workers: 1, QueueDepth: 1})
	resp, err := http.Post(ts.URL+"/v1/netlists", "application/json",
		strings.NewReader(`{"benchmark":"industry2","scale":0.06}`))
	if err != nil {
		t.Fatal(err)
	}
	var stored storedNetlist
	decode(t, resp, &stored)
	body := fmt.Sprintf(`{"netlist":%q,"method":"melo","k":2,"d":30}`, stored.Hash)

	var ids []string
	for i := 0; i < 50; i++ {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusAccepted {
			var st jobs.Status
			decode(t, resp, &st)
			ids = append(ids, st.ID)
			continue
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("submit %d: unexpected code %d", i, resp.StatusCode)
		}
		header := resp.Header.Get("Retry-After")
		secs, err := strconv.Atoi(header)
		if err != nil || secs < 1 {
			t.Errorf("Retry-After = %q, want integer >= 1", header)
		}
		var out struct {
			RetryAfterSeconds int `json:"retryAfterSeconds"`
		}
		decode(t, resp, &out)
		if out.RetryAfterSeconds != secs {
			t.Errorf("body retryAfterSeconds = %d, header = %d", out.RetryAfterSeconds, secs)
		}
		for _, id := range ids {
			awaitJob(t, ts, id)
		}
		return
	}
	t.Fatal("never saw 429 despite queue depth 1")
}

// Upload + submit + finish on a journaled server, then a cold restart
// over the same directory: the netlist hash and the finished job (with
// its result) must both be served again.
func TestJournalRoundTripOverHTTP(t *testing.T) {
	dir := t.TempDir()
	_, pool1, ts1 := newJournaledServer(t, dir, nil, jobs.Config{Workers: 2, QueueDepth: 8})

	hash := uploadNetlist(t, ts1)
	st, code := submitJob(t, ts1, fmt.Sprintf(`{"netlist":%q,"method":"melo","k":2}`, hash))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	final := awaitJob(t, ts1, st.ID)
	if final.State != jobs.Done || final.Result == nil {
		t.Fatalf("job finished %s: %+v", final.State, final)
	}
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := pool1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := pool1.Journal().Close(); err != nil {
		t.Fatal(err)
	}

	_, _, ts2 := newJournaledServer(t, dir, nil, jobs.Config{Workers: 2, QueueDepth: 8})
	resp, err := http.Get(ts2.URL + "/v1/netlists/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("restored netlist get = %d, want 200", resp.StatusCode)
	}
	restored := awaitJob(t, ts2, st.ID)
	if restored.State != jobs.Done || restored.Result == nil {
		t.Fatalf("restored job: %+v", restored)
	}
	if !restored.Restored {
		t.Error("restored job not flagged as restored")
	}
	if restored.Result.NetCut != final.Result.NetCut || restored.Result.K != final.Result.K {
		t.Errorf("restored result = %+v, want %+v", restored.Result, final.Result)
	}
}

// When the journal cannot make a submission durable, the server must
// refuse it with 503 rather than acknowledge a job that a crash would
// silently lose.
func TestJournalUnavailable503(t *testing.T) {
	var fail atomic.Bool
	_, pool, ts := newJournaledServer(t, t.TempDir(), &fail, jobs.Config{Workers: 1, QueueDepth: 4})
	hash := uploadNetlist(t, ts)

	fail.Store(true)
	// An already-journaled netlist dedups to a no-op append, so its
	// re-upload still succeeds while the disk is down...
	resp, err := http.Post(ts.URL+"/v1/netlists", "text/plain", strings.NewReader(netlistText(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Errorf("re-upload of journaled netlist = %d, want 201", resp.StatusCode)
	}
	// ...but a new netlist needs a durable write, and must be refused.
	resp, err = http.Post(ts.URL+"/v1/netlists", "application/json",
		strings.NewReader(`{"benchmark":"prim1","scale":0.08,"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("new upload with failed journal = %d, want 503", resp.StatusCode)
	}
	// So must a submission: a job the journal cannot record would be
	// silently lost by a crash, so the server must never ack it.
	_, code := submitJob(t, ts, fmt.Sprintf(`{"netlist":%q,"k":2}`, hash))
	if code != http.StatusServiceUnavailable {
		t.Errorf("submit with failed journal = %d, want 503", code)
	}
	if got := pool.Stats().Pending + pool.Stats().Running; got != 0 {
		t.Errorf("refused job still entered the pool: %d active", got)
	}
}
