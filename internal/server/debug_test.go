package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/trace"
)

// seedSpans records two tiny traces into the ring, one per job id, and
// returns the tracer that aggregated them.
func seedSpans(ring *trace.Ring) *trace.Tracer {
	tracer := trace.New(ring)
	for _, job := range []string{"job-1", "job-2"} {
		ctx, root := trace.Start(trace.WithTracer(context.Background(), tracer), "job", trace.Str("job", job))
		_, child := trace.Start(ctx, "job.run")
		child.End()
		root.End()
	}
	return tracer
}

func TestDebugTraceDumpGroupsAndFilters(t *testing.T) {
	ring := trace.NewRing(64)
	tracer := seedSpans(ring)
	ts := httptest.NewServer(NewDebugHandler(tracer, ring))
	defer ts.Close()

	var dump struct {
		Traces []struct {
			Job  string `json:"job"`
			Root struct {
				Name     string `json:"name"`
				Children []struct {
					Name string `json:"name"`
				} `json:"children"`
			} `json:"root"`
		} `json:"traces"`
	}
	get := func(url string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", url, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
			t.Fatal(err)
		}
	}

	get(ts.URL + "/debug/trace")
	if len(dump.Traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(dump.Traces))
	}
	tr := dump.Traces[0]
	if tr.Root.Name != "job" || len(tr.Root.Children) != 1 || tr.Root.Children[0].Name != "job.run" {
		t.Fatalf("trace tree mis-shaped: %+v", tr)
	}

	get(ts.URL + "/debug/trace?job=job-2")
	if len(dump.Traces) != 1 || dump.Traces[0].Job != "job-2" {
		t.Fatalf("job filter: got %+v, want exactly job-2", dump.Traces)
	}

	get(ts.URL + "/debug/trace?job=nope")
	if len(dump.Traces) != 0 {
		t.Fatalf("unknown job filter matched %d traces", len(dump.Traces))
	}
}

func TestDebugReportAndPprofServed(t *testing.T) {
	ring := trace.NewRing(64)
	tracer := seedSpans(ring)
	ts := httptest.NewServer(NewDebugHandler(tracer, ring))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "job.run") {
		t.Errorf("report lacks the recorded span:\n%s", body)
	}

	pp, err := http.Get(ts.URL + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Errorf("pprof: %d", pp.StatusCode)
	}
}

// TestDebugHandlerNilTracer: a nil tracer must not panic — the report
// is empty and the dump serves whatever the ring holds.
func TestDebugHandlerNilTracer(t *testing.T) {
	ts := httptest.NewServer(NewDebugHandler(nil, nil))
	defer ts.Close()
	for _, path := range []string{"/debug/report", "/debug/trace"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %d", path, resp.StatusCode)
		}
	}
}
