package server

import (
	"net/http"
	"net/http/pprof"
	"sort"

	"repro/internal/trace"
)

// NewDebugHandler builds the diagnostics mux spectrald serves on its
// -debug-addr listener — deliberately a separate listener so profiling
// and span dumps are never exposed on the public API address:
//
//	/debug/pprof/*          net/http/pprof (CPU, heap, goroutine, ...)
//	/debug/trace            recent finished spans as JSON, grouped into
//	                        trees; ?job=<id> filters to the traces of
//	                        one job
//	/debug/report           the tracer's text report (per-span
//	                        p50/p95/max, counters, gauges)
//
// ring holds the spans (it must be one of tracer's sinks); tracer may
// be nil, in which case /debug/report is empty and /debug/trace serves
// whatever the ring holds.
func NewDebugHandler(tracer *trace.Tracer, ring *trace.Ring) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/trace", func(w http.ResponseWriter, r *http.Request) {
		handleTraceDump(w, r, ring)
	})
	mux.HandleFunc("GET /debug/report", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		tracer.WriteReport(w)
	})
	return mux
}

// spanNode is one span in a rendered trace tree.
type spanNode struct {
	Name     string       `json:"name"`
	DurNs    int64        `json:"ns"`
	Attrs    []trace.Attr `json:"attrs,omitempty"`
	Children []*spanNode  `json:"children,omitempty"`
}

// traceTree is one trace (a root span and its descendants).
type traceTree struct {
	Trace uint64    `json:"trace"`
	Job   string    `json:"job,omitempty"`
	Root  *spanNode `json:"root"`
}

// handleTraceDump renders the ring's retained spans as trace trees.
// ?job=<id> keeps only traces whose root carries a job attribute with
// that value (the span the job pool opens per execution).
func handleTraceDump(w http.ResponseWriter, r *http.Request, ring *trace.Ring) {
	jobFilter := r.URL.Query().Get("job")
	var recs []trace.SpanRecord
	if ring != nil {
		recs = ring.Snapshot()
	}

	nodes := make(map[uint64]*spanNode, len(recs))
	parentOf := make(map[uint64]uint64, len(recs))
	traceOf := make(map[uint64]uint64, len(recs))
	for _, rec := range recs {
		nodes[rec.Span] = &spanNode{Name: rec.Name, DurNs: int64(rec.Dur), Attrs: rec.Attrs}
		parentOf[rec.Span] = rec.Parent
		traceOf[rec.Span] = rec.Trace
	}
	// A span whose parent fell out of the ring is promoted to root of
	// its trace fragment.
	roots := make(map[uint64][]*spanNode) // trace id -> root fragments
	var rootIDs []uint64
	for _, rec := range recs {
		n := nodes[rec.Span]
		if p, ok := nodes[rec.Parent]; ok && rec.Parent != 0 {
			p.Children = append(p.Children, n)
			continue
		}
		if _, seen := roots[rec.Trace]; !seen {
			rootIDs = append(rootIDs, rec.Trace)
		}
		roots[rec.Trace] = append(roots[rec.Trace], n)
	}
	sort.Slice(rootIDs, func(i, j int) bool { return rootIDs[i] < rootIDs[j] })

	out := make([]traceTree, 0, len(rootIDs))
	for _, tid := range rootIDs {
		for _, root := range roots[tid] {
			t := traceTree{Trace: tid, Root: root, Job: attrValue(root.Attrs, "job")}
			if jobFilter != "" && t.Job != jobFilter {
				continue
			}
			out = append(out, t)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": out})
}

func attrValue(attrs []trace.Attr, key string) string {
	for _, a := range attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}
