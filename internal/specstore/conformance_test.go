package specstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// The conformance suite: every Store backend — current and future —
// must pass every check here. Backends are registered as factories
// returning the store, a "reboot" function simulating a process restart
// (nil when the backend has no persistence), and a flag for whether
// entries must survive that reboot.

type backendFixture struct {
	store      Store
	reboot     func(t *testing.T) Store // nil = not persistent
	persistent bool
}

func backends(t *testing.T) map[string]func(t *testing.T) backendFixture {
	return map[string]func(t *testing.T) backendFixture{
		"memory": func(t *testing.T) backendFixture {
			return backendFixture{store: NewMemory()}
		},
		"disk": func(t *testing.T) backendFixture {
			dir := t.TempDir()
			d, err := OpenDisk(dir)
			if err != nil {
				t.Fatal(err)
			}
			return backendFixture{
				store: d,
				reboot: func(t *testing.T) Store {
					d2, err := OpenDisk(dir)
					if err != nil {
						t.Fatalf("reopen: %v", err)
					}
					return d2
				},
				persistent: true,
			}
		},
		// The disk backend behind a flaky device: every third Put fails
		// with an I/O error. Conformance still holds — failures surface
		// as errors, and reads return either a previously stored entry
		// or a miss, never damaged data.
		"faulty": func(t *testing.T) backendFixture {
			dir := t.TempDir()
			d, err := OpenDisk(dir)
			if err != nil {
				t.Fatal(err)
			}
			return backendFixture{store: &faultyStore{inner: d, failEvery: 3}}
		},
	}
}

// faultyStore models an unreliable device at the Store boundary.
type faultyStore struct {
	inner     Store
	mu        sync.Mutex
	puts      int
	failEvery int
}

func (f *faultyStore) Put(key Key, e Entry) error {
	f.mu.Lock()
	f.puts++
	fail := f.puts%f.failEvery == 0
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("faulty: injected write failure")
	}
	return f.inner.Put(key, e)
}

func (f *faultyStore) Get(key Key) (Entry, bool, error) { return f.inner.Get(key) }
func (f *faultyStore) Has(key Key, pairs int) bool      { return f.inner.Has(key, pairs) }
func (f *faultyStore) Len() int                         { return f.inner.Len() }
func (f *faultyStore) Stats() Stats                     { return f.inner.Stats() }
func (f *faultyStore) Close() error                     { return f.inner.Close() }

func randomEntry(rng *rand.Rand, pairs int) Entry {
	data := make([]byte, 64+rng.Intn(256))
	rng.Read(data)
	return Entry{Pairs: pairs, Data: data}
}

func key(i int) Key {
	return Key{Hash: fmt.Sprintf("sha256:%064d", i), Model: "partitioning-specific"}
}

func TestConformance(t *testing.T) {
	for name, factory := range backends(t) {
		t.Run(name, func(t *testing.T) {
			t.Run("RoundTrip", func(t *testing.T) { conformRoundTrip(t, factory(t)) })
			t.Run("CapacityOnlyGrows", func(t *testing.T) { conformCapacity(t, factory(t)) })
			t.Run("EmptyStore", func(t *testing.T) { conformEmpty(t, factory(t)) })
			t.Run("Concurrency", func(t *testing.T) { conformConcurrency(t, factory(t)) })
			t.Run("Reboot", func(t *testing.T) { conformReboot(t, factory(t)) })
		})
	}
}

// conformRoundTrip: what you Put is what you Get, bit for bit, and
// Has/Len agree. A faulty backend may refuse a Put (with an error, not
// silently) — a refused Put must behave as if it never happened.
func conformRoundTrip(t *testing.T, fx backendFixture) {
	s := fx.store
	defer s.Close()
	rng := rand.New(rand.NewSource(1))
	want := make(map[Key]Entry)
	for i := 0; i < 32; i++ {
		k := key(i)
		e := randomEntry(rng, 2+rng.Intn(10))
		if err := s.Put(k, e); err != nil {
			continue // injected failure: key must stay absent
		}
		want[k] = e
	}
	if got := s.Len(); got != len(want) {
		t.Fatalf("Len = %d, want %d", got, len(want))
	}
	for i := 0; i < 32; i++ {
		k := key(i)
		e, stored := want[k]
		got, ok, err := s.Get(k)
		if err != nil {
			t.Fatalf("Get(%v): %v", k, err)
		}
		if ok != stored {
			t.Fatalf("Get(%v) ok = %v, want %v", k, ok, stored)
		}
		if !stored {
			if s.Has(k, 1) {
				t.Errorf("Has(%v) true for absent key", k)
			}
			continue
		}
		if got.Pairs != e.Pairs || !bytes.Equal(got.Data, e.Data) {
			t.Errorf("Get(%v) returned different bytes than Put stored", k)
		}
		if !s.Has(k, e.Pairs) || s.Has(k, e.Pairs+1) {
			t.Errorf("Has(%v) capacity semantics wrong", k)
		}
	}
}

// conformCapacity: overwriting with fewer pairs is a no-op, with more
// pairs replaces.
func conformCapacity(t *testing.T, fx backendFixture) {
	s := fx.store
	defer s.Close()
	k := key(0)
	big := Entry{Pairs: 8, Data: []byte("eight-pairs-payload")}
	small := Entry{Pairs: 2, Data: []byte("two-pairs-payload")}
	mustPut := func(e Entry) {
		t.Helper()
		for i := 0; i < 8; i++ { // outlast any injected failure cadence
			if err := s.Put(k, e); err == nil {
				return
			}
		}
		t.Fatalf("Put(%d pairs) kept failing", e.Pairs)
	}
	mustPut(big)
	mustPut(small) // must not regress
	got, ok, err := s.Get(k)
	if err != nil || !ok {
		t.Fatalf("Get after downgrade attempt: ok=%v err=%v", ok, err)
	}
	if got.Pairs != 8 || !bytes.Equal(got.Data, big.Data) {
		t.Fatalf("smaller Put regressed the entry: got %d pairs", got.Pairs)
	}
	bigger := Entry{Pairs: 12, Data: []byte("twelve-pairs-payload")}
	mustPut(bigger)
	got, ok, _ = s.Get(k)
	if !ok || got.Pairs != 12 || !bytes.Equal(got.Data, bigger.Data) {
		t.Fatalf("larger Put did not replace: got %d pairs", got.Pairs)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after overwrites of one key, want 1", s.Len())
	}
}

// conformEmpty: a fresh store misses politely everywhere.
func conformEmpty(t *testing.T, fx backendFixture) {
	s := fx.store
	defer s.Close()
	if s.Len() != 0 {
		t.Fatalf("fresh store Len = %d", s.Len())
	}
	if _, ok, err := s.Get(key(0)); ok || err != nil {
		t.Fatalf("fresh store Get: ok=%v err=%v", ok, err)
	}
	if s.Has(key(0), 1) {
		t.Fatal("fresh store Has = true")
	}
	if st := s.Stats(); st.Misses == 0 {
		t.Fatal("miss not counted")
	}
}

// conformConcurrency: concurrent Put/Get/Has on overlapping keys must
// be race-free (run under -race) and never yield torn reads.
func conformConcurrency(t *testing.T, fx backendFixture) {
	s := fx.store
	defer s.Close()
	// Payload content is derived from (key, pairs) so readers can verify
	// integrity no matter which writer won.
	payload := func(i, pairs int) []byte {
		return []byte(strings.Repeat(fmt.Sprintf("k%d-p%d.", i, pairs), 8))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for n := 0; n < 50; n++ {
				i := rng.Intn(4)
				pairs := 2 + rng.Intn(3)
				k := key(i)
				switch rng.Intn(3) {
				case 0:
					_ = s.Put(k, Entry{Pairs: pairs, Data: payload(i, pairs)})
				case 1:
					e, ok, err := s.Get(k)
					if err != nil {
						t.Errorf("Get: %v", err)
						return
					}
					if ok && !bytes.Equal(e.Data, payload(i, e.Pairs)) {
						t.Errorf("torn read: key %d pairs %d", i, e.Pairs)
						return
					}
				case 2:
					s.Has(k, pairs)
				}
			}
		}(g)
	}
	wg.Wait()
}

// conformReboot: a persistent backend serves identical bytes after a
// reopen; every backend starts serving again without error.
func conformReboot(t *testing.T, fx backendFixture) {
	s := fx.store
	rng := rand.New(rand.NewSource(7))
	stored := make(map[Key]Entry)
	for i := 0; i < 8; i++ {
		k, e := key(i), randomEntry(rng, 3+i)
		if err := s.Put(k, e); err == nil {
			stored[k] = e
		}
	}
	if fx.reboot == nil {
		s.Close()
		return
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := fx.reboot(t)
	defer s2.Close()
	if !fx.persistent {
		return
	}
	if got := s2.Len(); got != len(stored) {
		t.Fatalf("after reboot Len = %d, want %d", got, len(stored))
	}
	for k, e := range stored {
		got, ok, err := s2.Get(k)
		if err != nil || !ok {
			t.Fatalf("after reboot Get(%v): ok=%v err=%v", k, ok, err)
		}
		if got.Pairs != e.Pairs || !bytes.Equal(got.Data, e.Data) {
			t.Fatalf("after reboot Get(%v) differs from what was stored", k)
		}
	}
}

// --- disk corruption: damaged entries are quarantined, never served ---

func diskWithEntry(t *testing.T) (*Disk, string, Key, Entry) {
	t.Helper()
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := key(0)
	e := Entry{Pairs: 5, Data: bytes.Repeat([]byte("spectrum-payload"), 16)}
	if err := d.Put(k, e); err != nil {
		t.Fatal(err)
	}
	return d, filepath.Join(dir, entryFile(k)), k, e
}

func reopen(t *testing.T, d *Disk) *Disk {
	t.Helper()
	dir := d.Dir()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	return d2
}

func quarantineCount(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".quarantine") {
			n++
		}
	}
	return n
}

// A bit flip anywhere in the payload must fail the CRC: the entry is
// quarantined and reported as a miss, never returned damaged.
func TestDiskBitFlipQuarantined(t *testing.T) {
	d, path, k, _ := diskWithEntry(t)
	defer d.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-8] ^= 0x40 // inside the payload frame
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := d.Get(k); ok || err != nil {
		t.Fatalf("Get on bit-flipped entry: ok=%v err=%v, want clean miss", ok, err)
	}
	if st := d.Stats(); st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
	}
	if quarantineCount(t, d.Dir()) != 1 {
		t.Fatal("expected one .quarantine file for forensics")
	}
	// The key is gone, not poisoned: a fresh Put repairs it.
	if _, ok, _ := d.Get(k); ok {
		t.Fatal("quarantined key still served")
	}
}

// A torn write (crash mid-write leaving a truncated file under the live
// name — only reachable by hand, since Put renames atomically) must be
// quarantined on read and on reopen.
func TestDiskTornWriteQuarantined(t *testing.T) {
	d, path, k, _ := diskWithEntry(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := d.Get(k); ok || err != nil {
		t.Fatalf("Get on torn entry: ok=%v err=%v, want clean miss", ok, err)
	}
	if st := d.Stats(); st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
	}
	d.Close()
}

// Trailing garbage after the frames is rejected with the same severity
// as a bad checksum.
func TestDiskTrailingGarbageQuarantined(t *testing.T) {
	d, path, k, _ := diskWithEntry(t)
	defer d.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("junk"))
	f.Close()
	if _, ok, err := d.Get(k); ok || err != nil {
		t.Fatalf("Get on entry with trailing bytes: ok=%v err=%v, want miss", ok, err)
	}
	if st := d.Stats(); st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
	}
}

// A store whose directory holds a corrupt entry must open (smaller, not
// dead) and quarantine the damage.
func TestDiskOpenQuarantinesCorruptHeader(t *testing.T) {
	d, path, k, e := diskWithEntry(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(diskMagic)+4] ^= 0xFF // header frame CRC byte
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// A healthy sibling entry must survive the reopen.
	k2 := key(1)
	if err := d.Put(k2, e); err != nil {
		t.Fatal(err)
	}
	d2 := reopen(t, d)
	defer d2.Close()
	if d2.Len() != 1 {
		t.Fatalf("reopened Len = %d, want 1 (corrupt entry dropped)", d2.Len())
	}
	if _, ok, _ := d2.Get(k); ok {
		t.Fatal("corrupt entry served after reopen")
	}
	if got, ok, _ := d2.Get(k2); !ok || !bytes.Equal(got.Data, e.Data) {
		t.Fatal("healthy entry lost in reopen")
	}
	if st := d2.Stats(); st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
	}
}

// A file renamed to the wrong key's name (operator error, cross-linked
// restore) is detected by the header/key cross-check.
func TestDiskWrongKeyQuarantined(t *testing.T) {
	d, path, _, e := diskWithEntry(t)
	defer d.Close()
	other := key(9)
	wrongPath := filepath.Join(d.Dir(), entryFile(other))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wrongPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	d2 := reopen(t, d)
	defer d2.Close()
	if got, ok, _ := d2.Get(other); ok {
		t.Fatalf("cross-linked entry served under wrong key (pairs %d, want miss)", got.Pairs)
	}
	_ = e
}
