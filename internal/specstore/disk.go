package specstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// diskMagic opens every entry file; the version digit guards format
// evolution (same discipline as internal/journal's segment magic).
const diskMagic = "SPECSTOR1\n"

// maxFrameBytes bounds a single frame payload; a larger claimed length
// is treated as corruption rather than attempted as an allocation.
const maxFrameBytes = 1 << 30

// diskHeader is the JSON header frame of an entry file: enough to
// rebuild the index without reading the (much larger) payload frame,
// and to detect a file that was renamed or cross-linked to the wrong
// key.
type diskHeader struct {
	Hash  string `json:"hash"`
	Model string `json:"model"`
	Pairs int    `json:"pairs"`
	Bytes int    `json:"bytes"` // payload frame length, for index stats
}

// Disk is the on-disk Store backend: one CRC-framed file per entry in a
// flat directory, written atomically (temp file + fsync + rename) so a
// crash mid-write leaves either the old entry or the new one, never a
// torn file under the live name. Damaged entries — torn frames, CRC
// mismatches, key mismatches — are quarantined (renamed aside with a
// ".quarantine" suffix) and reported as misses; the store never fails
// to open and never returns corrupt data.
//
// A Disk store assumes a single writing process per directory; the
// spectrald sharding layer (one logical cache across instances) is the
// supported multi-instance topology, not a shared directory.
type Disk struct {
	dir string

	mu    sync.Mutex
	index map[Key]diskIndexEntry
	stats Stats
}

type diskIndexEntry struct {
	pairs int
	file  string
}

// entryFile maps a key to its file name: a content hash of the key, so
// arbitrary fingerprint strings never meet the filesystem.
func entryFile(key Key) string {
	sum := sha256.Sum256([]byte(key.Hash + "\x00" + key.Model))
	return fmt.Sprintf("%x.spec", sum[:16])
}

// OpenDisk opens (creating if needed) a disk store rooted at dir and
// indexes its entries by reading each file's header frame. Entries
// whose header is damaged are quarantined, not fatal: a corrupt store
// degrades to a smaller store, it does not stop the daemon from
// booting.
func OpenDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("specstore: create dir: %w", err)
	}
	d := &Disk{dir: dir, index: make(map[Key]diskIndexEntry)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("specstore: read dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".spec") {
			continue
		}
		path := filepath.Join(dir, name)
		hdr, err := readHeader(path)
		if err != nil {
			d.quarantineLocked(name)
			continue
		}
		key := Key{Hash: hdr.Hash, Model: hdr.Model}
		if prev, ok := d.index[key]; ok && prev.pairs >= hdr.Pairs {
			continue
		}
		d.index[key] = diskIndexEntry{pairs: hdr.Pairs, file: name}
	}
	return d, nil
}

// Dir returns the store's root directory.
func (d *Disk) Dir() string { return d.dir }

// readFrame reads one [len][crc][payload] frame from r, verifying the
// checksum.
func readFrame(r io.Reader) ([]byte, error) {
	var head [8]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("frame header: %w", err)
	}
	length := binary.LittleEndian.Uint32(head[0:4])
	sum := binary.LittleEndian.Uint32(head[4:8])
	if length > maxFrameBytes {
		return nil, fmt.Errorf("frame length %d exceeds bound", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("frame payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("frame checksum mismatch")
	}
	return payload, nil
}

// writeFrame appends one [len][crc][payload] frame to w.
func writeFrame(w io.Writer, payload []byte) error {
	var head [8]byte
	binary.LittleEndian.PutUint32(head[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(head[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(head[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readHeader parses just the magic and header frame of an entry file.
func readHeader(path string) (*diskHeader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	magic := make([]byte, len(diskMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != diskMagic {
		return nil, fmt.Errorf("bad magic")
	}
	payload, err := readFrame(f)
	if err != nil {
		return nil, err
	}
	var hdr diskHeader
	if err := json.Unmarshal(payload, &hdr); err != nil {
		return nil, fmt.Errorf("header decode: %w", err)
	}
	if hdr.Pairs < 1 {
		return nil, fmt.Errorf("header pairs = %d", hdr.Pairs)
	}
	return &hdr, nil
}

// readEntry parses a whole entry file, verifying both frames.
func readEntry(path string) (*diskHeader, []byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	magic := make([]byte, len(diskMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != diskMagic {
		return nil, nil, fmt.Errorf("bad magic")
	}
	hp, err := readFrame(f)
	if err != nil {
		return nil, nil, err
	}
	var hdr diskHeader
	if err := json.Unmarshal(hp, &hdr); err != nil {
		return nil, nil, fmt.Errorf("header decode: %w", err)
	}
	data, err := readFrame(f)
	if err != nil {
		return nil, nil, err
	}
	// A trailing garbage byte after the frames means the file is not
	// what Put wrote; reject it with the same severity as a bad CRC.
	var one [1]byte
	if n, _ := f.Read(one[:]); n != 0 {
		return nil, nil, fmt.Errorf("trailing bytes after entry frames")
	}
	return &hdr, data, nil
}

// quarantineLocked moves a damaged entry file aside so it stops
// shadowing the key but remains available for forensics. Caller holds
// d.mu (or is in single-threaded Open).
func (d *Disk) quarantineLocked(file string) {
	src := filepath.Join(d.dir, file)
	dst := src + ".quarantine"
	if err := os.Rename(src, dst); err != nil {
		// Removal is the fallback: a corrupt entry must never be served
		// again, even if we cannot keep it for inspection.
		_ = os.Remove(src)
	}
	d.stats.Quarantined++
}

// Get implements Store. A damaged entry is quarantined and reported as
// a miss — the caller recomputes, and the bad bytes can never reach a
// client.
func (d *Disk) Get(key Key) (Entry, bool, error) {
	d.mu.Lock()
	ie, ok := d.index[key]
	d.mu.Unlock()
	if !ok {
		d.mu.Lock()
		d.stats.Misses++
		d.mu.Unlock()
		return Entry{}, false, nil
	}
	hdr, data, err := readEntry(filepath.Join(d.dir, ie.file))
	if err == nil && (hdr.Hash != key.Hash || hdr.Model != key.Model) {
		err = fmt.Errorf("entry file holds key %s/%s", hdr.Hash, hdr.Model)
	}
	if err != nil {
		d.mu.Lock()
		if cur, ok := d.index[key]; ok && cur.file == ie.file {
			delete(d.index, key)
			d.quarantineLocked(ie.file)
		}
		d.stats.Misses++
		d.mu.Unlock()
		return Entry{}, false, nil
	}
	d.mu.Lock()
	d.stats.Hits++
	d.mu.Unlock()
	return Entry{Pairs: hdr.Pairs, Data: data}, true, nil
}

// Put implements Store: atomic temp-file write, fsync, rename. A key's
// capacity only grows; a Put with fewer pairs than the stored entry is
// a counted no-op.
func (d *Disk) Put(key Key, e Entry) error {
	if e.Pairs < 1 {
		return fmt.Errorf("specstore: put %d pairs", e.Pairs)
	}
	d.mu.Lock()
	if ie, ok := d.index[key]; ok && ie.pairs >= e.Pairs {
		d.stats.SkippedPuts++
		d.mu.Unlock()
		return nil
	}
	d.mu.Unlock()

	hdr, err := json.Marshal(diskHeader{Hash: key.Hash, Model: key.Model, Pairs: e.Pairs, Bytes: len(e.Data)})
	if err != nil {
		return fmt.Errorf("specstore: encode header: %w", err)
	}
	file := entryFile(key)
	tmp, err := os.CreateTemp(d.dir, file+".tmp-*")
	if err != nil {
		d.noteError()
		return fmt.Errorf("specstore: create temp: %w", err)
	}
	tmpName := tmp.Name()
	werr := func() error {
		if _, err := tmp.Write([]byte(diskMagic)); err != nil {
			return err
		}
		if err := writeFrame(tmp, hdr); err != nil {
			return err
		}
		if err := writeFrame(tmp, e.Data); err != nil {
			return err
		}
		return tmp.Sync()
	}()
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmpName, filepath.Join(d.dir, file))
	}
	if werr != nil {
		_ = os.Remove(tmpName)
		d.noteError()
		return fmt.Errorf("specstore: write entry: %w", werr)
	}
	d.syncDir()

	d.mu.Lock()
	// Re-check under the lock: a concurrent Put may have stored a larger
	// entry while we wrote; its file name is the same, so whichever
	// rename landed last owns the name — keep the larger capacity in the
	// index and let a future Get quarantine-and-miss if they disagree.
	if ie, ok := d.index[key]; !ok || e.Pairs >= ie.pairs {
		d.index[key] = diskIndexEntry{pairs: e.Pairs, file: file}
	}
	d.stats.Puts++
	d.mu.Unlock()
	return nil
}

// syncDir fsyncs the store directory so a rename survives power loss.
// Best-effort: not every platform supports directory fsync.
func (d *Disk) syncDir() {
	if f, err := os.Open(d.dir); err == nil {
		_ = f.Sync()
		_ = f.Close()
	}
}

func (d *Disk) noteError() {
	d.mu.Lock()
	d.stats.Errors++
	d.mu.Unlock()
}

// Has implements Store, answering from the in-memory index (no I/O).
func (d *Disk) Has(key Key, pairs int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	ie, ok := d.index[key]
	return ok && ie.pairs >= pairs
}

// Len implements Store.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.index)
}

// Stats implements Store.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats
	s.Entries = len(d.index)
	return s
}

// Close implements Store. Entries are already durable (every Put
// fsyncs); Close only drops the index.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.index = make(map[Key]diskIndexEntry)
	return nil
}
