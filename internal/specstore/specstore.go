// Package specstore is the persistent tier behind the spectrald
// spectrum cache (internal/speccache): a pluggable content-addressed
// store of encoded eigendecompositions, so restarts and horizontal
// scale-out stop recomputing identical O(d·n²) eigensolves. The
// in-memory LRU stays the hot tier; this package is the durable tier it
// spills evicted entries to and repopulates misses from.
//
// Entries are opaque byte payloads (the root package's EncodeSpectrum
// format) keyed by (netlist fingerprint, clique model) with a recorded
// eigenpair capacity: a stored entry with Pairs >= p serves any request
// for p pairs, mirroring the LRU's prefix-reuse rule. Put only ever
// grows a key's capacity — overwriting with fewer pairs is a no-op —
// so concurrent writers cannot regress a key.
//
// Two backends ship here: Memory (tests, single-process default) and
// Disk (CRC-framed files, atomic temp-file + rename writes, fsync,
// corrupt-entry quarantine). Every backend must pass the conformance
// suite in conformance_test.go; new backends (object stores) inherit
// the same gate.
package specstore

import (
	"sort"
	"sync"
)

// Key identifies one stored decomposition family: netlist content hash
// plus clique model name, matching speccache.Key.
type Key struct {
	Hash  string
	Model string
}

// Entry is one stored value: the encoded spectrum bytes plus the
// eigenpair capacity they hold.
type Entry struct {
	// Pairs is the entry's reuse capacity (eigenpairs, trivial pair
	// included).
	Pairs int
	// Data is the encoded spectrum (spectral.EncodeSpectrum).
	Data []byte
}

// Stats reports a store's effectiveness and health counters.
type Stats struct {
	Hits, Misses uint64
	// Puts counts accepted writes; SkippedPuts counts writes refused
	// because the stored capacity already covered the new entry.
	Puts, SkippedPuts uint64
	// Quarantined counts corrupt entries moved aside (disk backend).
	Quarantined uint64
	// Errors counts I/O failures that neither served nor stored data.
	Errors uint64
	// Entries is the current entry count.
	Entries int
}

// Store is a persistent spectrum tier. Implementations must be safe for
// concurrent use and must never return data that fails integrity
// checks — a corrupt entry is a miss (and, where possible, is
// quarantined), never a wrong answer.
type Store interface {
	// Get returns the entry for key. ok is false when the key is absent
	// (or its entry was corrupt); err reports I/O failures.
	Get(key Key) (e Entry, ok bool, err error)
	// Put stores the entry for key, keeping whichever of the existing
	// and new entries has the larger capacity.
	Put(key Key, e Entry) error
	// Has reports whether key holds an entry with capacity >= pairs,
	// without reading the payload.
	Has(key Key, pairs int) bool
	// Len returns the number of stored entries.
	Len() int
	// Stats returns a snapshot of the store's counters.
	Stats() Stats
	// Close releases backend resources. The store is unusable after.
	Close() error
}

// Memory is the in-process Store backend: a mutex-guarded map. Useful
// as the conformance-reference implementation and for tests; a
// production spectrald uses Disk (or nothing).
type Memory struct {
	mu      sync.Mutex
	entries map[Key]Entry
	stats   Stats
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{entries: make(map[Key]Entry)}
}

// Get implements Store.
func (m *Memory) Get(key Key) (Entry, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key]
	if !ok {
		m.stats.Misses++
		return Entry{}, false, nil
	}
	m.stats.Hits++
	// Callers may retain the returned slice; hand out a copy so a later
	// Put cannot alias it.
	c := Entry{Pairs: e.Pairs, Data: append([]byte(nil), e.Data...)}
	return c, true, nil
}

// Put implements Store.
func (m *Memory) Put(key Key, e Entry) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if old, ok := m.entries[key]; ok && old.Pairs >= e.Pairs {
		m.stats.SkippedPuts++
		return nil
	}
	m.entries[key] = Entry{Pairs: e.Pairs, Data: append([]byte(nil), e.Data...)}
	m.stats.Puts++
	return nil
}

// Has implements Store.
func (m *Memory) Has(key Key, pairs int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key]
	return ok && e.Pairs >= pairs
}

// Len implements Store.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Stats implements Store.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.Entries = len(m.entries)
	return s
}

// Close implements Store.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries = make(map[Key]Entry)
	return nil
}

// Keys returns the stored keys in deterministic order (tests).
func (m *Memory) Keys() []Key {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]Key, 0, len(m.entries))
	for k := range m.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Hash != keys[j].Hash {
			return keys[i].Hash < keys[j].Hash
		}
		return keys[i].Model < keys[j].Model
	})
	return keys
}
