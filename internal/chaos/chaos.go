// Package chaos provides deterministic, seedable fault injection for
// crash/restart testing of the spectrald stack.
//
// The package simulates a machine-level kill (SIGKILL plus power loss)
// at the journal's filesystem boundary: an FS wraps every segment file
// the journal opens, tracks which byte ranges an fsync actually
// covered, and on Crash tears the unsynced tail of the active segment
// — optionally appending garbage bytes, the way a torn sector write
// leaves junk at the end of a log. Everything a crashed process writes
// afterwards is discarded, exactly as if the process were gone.
//
// Because the tear point never reaches below the sync watermark, any
// record the journal acknowledged as durable (and therefore anything a
// client got a 2xx for) survives every crash by construction; whether
// the *daemon* upholds that same contract is what the harness in this
// package asserts.
//
// Fault dimensions beyond the kill itself are deterministic too:
// solver faults route through resilience.FaultPlan, journal I/O errors
// through SetFailWrites, and request deadlines trigger clock-free via
// already-expired contexts. A Plan derives all knobs from one seed so
// a failing run reproduces exactly.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/journal"
)

// Plan is one seeded chaos schedule. The zero value injects nothing;
// NewPlan derives every knob deterministically from the seed.
type Plan struct {
	Seed int64
	// CrashAfterFinishes is how many jobs must reach a terminal state
	// before the kill fires — 0 crashes into a fully queued backlog.
	CrashAfterFinishes int
	// KeepExtra is how many unsynced tail bytes survive past the sync
	// watermark (a partially persisted write), tearing mid-record.
	KeepExtra int64
	// Garbage, when non-empty, is appended at the tear point: junk from
	// a torn sector that replay must skip without refusing to boot.
	Garbage []byte
	// SegmentBytes sizes journal segments, small enough that most runs
	// rotate at least once (crashes must not damage sealed segments).
	SegmentBytes int64
}

// NewPlan derives a crash schedule from seed. Half the seeds append
// garbage at the tear, and tear offsets, backlog depth and segment
// sizes all vary, so a sweep over seeds covers clean kills, torn
// tails, corrupt tails and mid-rotation kills.
func NewPlan(seed int64) *Plan {
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{
		Seed:               seed,
		CrashAfterFinishes: rng.Intn(5),
		KeepExtra:          int64(rng.Intn(96)),
		SegmentBytes:       int64(1) << (10 + rng.Intn(6)), // 1 KiB .. 32 KiB
	}
	if rng.Intn(2) == 1 {
		p.Garbage = make([]byte, 1+rng.Intn(48))
		rng.Read(p.Garbage)
	}
	return p
}

// FS hands crash-aware files to journal.Open via its Open method and
// owns the kill switch. One FS models one machine lifetime: after
// Crash every file it opened is dead and new opens fail.
type FS struct {
	failWrites atomic.Bool

	mu      sync.Mutex
	files   []*CrashFile // open order == generation order
	crashed bool
}

// NewFS returns a filesystem with no scheduled faults.
func NewFS() *FS { return &FS{} }

// Open implements journal.Options.OpenFile.
func (fs *FS) Open(path string) (journal.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, errors.New("chaos: filesystem crashed")
	}
	f, err := journal.DefaultOpenFile(path)
	if err != nil {
		return nil, err
	}
	cf := &CrashFile{fs: fs, path: path, f: f}
	fs.files = append(fs.files, cf)
	return cf, nil
}

// SetFailWrites toggles injected I/O errors on every subsequent write
// and sync — a full or failing disk. The journal's sticky-error
// contract means one failed append poisons it until a compaction
// rewrites onto a fresh segment.
func (fs *FS) SetFailWrites(v bool) { fs.failWrites.Store(v) }

// Crash kills the machine: the active segment is truncated to its
// sync watermark plus keepExtra bytes of whatever tail the page cache
// happened to persist, garbage (if any) lands at the tear point, and
// every file — sealed segments included — stops accepting writes.
// Sealed segments keep their bytes: they were synced at rotation.
func (fs *FS) Crash(keepExtra int64, garbage []byte) error {
	fs.mu.Lock()
	fs.crashed = true
	files := make([]*CrashFile, len(fs.files))
	copy(files, fs.files)
	fs.mu.Unlock()
	var firstErr error
	for i, cf := range files {
		active := i == len(files)-1
		if err := cf.crash(active, keepExtra, garbage); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// CrashFile wraps one journal segment file, tracking the byte ranges
// that writes delivered and fsyncs made durable so a crash can tear
// precisely the window a real power loss would.
type CrashFile struct {
	fs   *FS
	path string

	mu      sync.Mutex
	f       journal.File
	written int64 // bytes handed to the OS
	synced  int64 // watermark covered by the last successful sync
	crashed bool
}

// Write implements journal.File. After a crash the write is silently
// discarded — the process that issued it is dead, there is nobody to
// observe an error.
func (c *CrashFile) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return len(p), nil
	}
	if c.fs.failWrites.Load() {
		return 0, errors.New("chaos: injected write error")
	}
	if c.f == nil {
		return 0, errors.New("chaos: write to closed segment")
	}
	n, err := c.f.Write(p)
	c.written += int64(n)
	return n, err
}

// Sync implements journal.File, advancing the durability watermark.
func (c *CrashFile) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return nil
	}
	if c.fs.failWrites.Load() {
		return errors.New("chaos: injected sync error")
	}
	if c.f == nil {
		return errors.New("chaos: sync of closed segment")
	}
	if err := c.f.Sync(); err != nil {
		return err
	}
	c.synced = c.written
	return nil
}

// Close implements journal.File. Rotation closes sealed segments after
// a final sync, so their full length is durable.
func (c *CrashFile) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed || c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}

// Synced reports the file's durability watermark (for assertions).
func (c *CrashFile) Synced() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.synced
}

// crash closes the handle and, for the active segment, applies the
// tear: truncate to max(synced, min(synced+keepExtra, written)) and
// append garbage. The tear never reaches below the sync watermark —
// fsynced bytes survive power loss.
func (c *CrashFile) crash(active bool, keepExtra int64, garbage []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.crashed = true
	if c.f != nil {
		_ = c.f.Close()
		c.f = nil
	}
	if !active {
		return nil
	}
	keep := c.synced + keepExtra
	if keep > c.written {
		keep = c.written
	}
	if err := os.Truncate(c.path, keep); err != nil {
		return fmt.Errorf("chaos: tear %s: %w", c.path, err)
	}
	if len(garbage) > 0 {
		f, err := os.OpenFile(c.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("chaos: corrupt %s: %w", c.path, err)
		}
		_, werr := f.Write(garbage)
		cerr := f.Close()
		if werr != nil {
			return fmt.Errorf("chaos: corrupt %s: %w", c.path, werr)
		}
		if cerr != nil {
			return cerr
		}
	}
	return nil
}
