package chaos_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/jobs"
	"repro/internal/journal"
	"repro/internal/resilience"
	"repro/internal/server"
)

// The workload vocabulary: every chaos run draws jobs from this fixed
// set of specs, so one control run per spec yields the expected result
// bytes for every seed. net 0 and 1 are small (ms-scale jobs); net 2
// is the heavy netlist whose d=30 solve keeps a worker busy long
// enough for crashes to land mid-job.
var specPool = []struct {
	key  string
	net  int
	body string // fragment spliced after the netlist field
}{
	{"melo-k2", 0, `"method":"melo","k":2`},
	{"melo-k4-d8", 0, `"method":"melo","k":4,"d":8`},
	{"sfc-k2", 0, `"method":"sfc","k":2`},
	{"sb-k2", 1, `"method":"sb","k":2`},
	{"order-d4", 1, `"kind":"order","d":4`},
	{"order-d6", 0, `"kind":"order","d":6`},
	{"heavy-melo-k2-d30", 2, `"method":"melo","k":2,"d":30`},
}

var netlistBodies = []string{
	`{"benchmark":"prim1","scale":0.06,"seed":1}`,
	`{"benchmark":"prim1","scale":0.05,"seed":2}`,
	`{"benchmark":"industry2","scale":0.06,"seed":1}`,
}

// harness is one daemon lifetime: pool + server + journal, HTTP-fronted.
type harness struct {
	pool *jobs.Pool
	srv  *server.Server
	ts   *httptest.Server
	jnl  *journal.Journal
}

// boot starts a daemon over dir the way cmd/spectrald does: open the
// journal, build the pool, replay, adopt netlists, start, serve.
func boot(t *testing.T, dir string, opts journal.Options, cfg jobs.Config) *harness {
	t.Helper()
	jnl, rep, err := journal.Open(dir, opts)
	if err != nil {
		t.Fatalf("journal must open over any damage, got: %v", err)
	}
	cfg.Journal = jnl
	pool := jobs.NewPool(cfg)
	srv := server.New(pool, server.Config{})
	_, nets, err := pool.Restore(rep)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	srv.AdoptNetlists(nets)
	pool.Start()
	return &harness{pool: pool, srv: srv, ts: httptest.NewServer(srv), jnl: jnl}
}

func (h *harness) uploadNetlists(t *testing.T) []string {
	t.Helper()
	hashes := make([]string, len(netlistBodies))
	for i, body := range netlistBodies {
		resp, err := http.Post(h.ts.URL+"/v1/netlists", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Hash string `json:"hash"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.Hash == "" {
			t.Fatalf("upload %d: no hash", i)
		}
		hashes[i] = st.Hash
	}
	return hashes
}

func (h *harness) submit(t *testing.T, body string) (jobs.Status, int) {
	t.Helper()
	resp, err := http.Post(h.ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobs.Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

func (h *harness) await(t *testing.T, id string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(h.ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st jobs.Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case jobs.Done, jobs.Failed, jobs.Cancelled:
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return jobs.Status{}
}

// normalize renders a result for byte-comparison across runs: cache
// hits depend on scheduling, everything else must match exactly.
func normalize(t *testing.T, res *jobs.Result) string {
	t.Helper()
	cp := *res
	cp.SpectrumCacheHit = false
	b, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// controlResults runs every spec once on an uninterrupted, journal-free
// server and records the normalized result bytes per spec key.
func controlResults(t *testing.T) map[string]string {
	t.Helper()
	pool := jobs.NewPool(jobs.Config{Workers: 2, QueueDepth: 32})
	pool.Start()
	srv := server.New(pool, server.Config{})
	h := &harness{pool: pool, srv: srv, ts: httptest.NewServer(srv)}
	defer func() {
		h.ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		_ = pool.Shutdown(ctx)
	}()
	hashes := h.uploadNetlists(t)
	control := make(map[string]string, len(specPool))
	for _, spec := range specPool {
		st, code := h.submit(t, fmt.Sprintf(`{"netlist":%q,%s}`, hashes[spec.net], spec.body))
		if code != http.StatusAccepted {
			t.Fatalf("control submit %s = %d", spec.key, code)
		}
		final := h.await(t, st.ID)
		if final.State != jobs.Done || final.Result == nil {
			t.Fatalf("control job %s: %+v", spec.key, final)
		}
		control[spec.key] = normalize(t, final.Result)
	}
	return control
}

// buildWorkload draws a seed-determined multiset of specs.
func buildWorkload(seed int64) []int {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	n := 8 + rng.Intn(5)
	picks := make([]int, n)
	for i := range picks {
		picks[i] = rng.Intn(len(specPool))
	}
	return picks
}

// TestChaosCrashRestart is the headline invariant sweep: 20 seeded
// kill-and-restart cycles (5 under -short), each tearing or corrupting
// the journal tail differently, asserting that
//
//   - the daemon always boots over the damaged journal,
//   - no acknowledged job is silently lost,
//   - every surviving job finishes with results byte-identical to an
//     uninterrupted run,
//   - no job acquires duplicate terminal states on disk, and
//   - killing the pool with an expired context returns promptly.
func TestChaosCrashRestart(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	control := controlResults(t)
	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed-%02d", seed), func(t *testing.T) {
			runCrashRestart(t, int64(seed), control)
		})
	}
}

func runCrashRestart(t *testing.T, seed int64, control map[string]string) {
	plan := chaos.NewPlan(seed)
	dir := t.TempDir()
	fs := chaos.NewFS()

	h1 := boot(t, dir, journal.Options{OpenFile: fs.Open, SegmentBytes: plan.SegmentBytes},
		jobs.Config{Workers: 2, QueueDepth: 32})
	hashes := h1.uploadNetlists(t)

	acked := make(map[string]string) // job ID -> spec key
	var order []string
	for _, pick := range buildWorkload(seed) {
		spec := specPool[pick]
		st, code := h1.submit(t, fmt.Sprintf(`{"netlist":%q,%s}`, hashes[spec.net], spec.body))
		if code != http.StatusAccepted {
			t.Fatalf("submit %s = %d", spec.key, code)
		}
		acked[st.ID] = spec.key
		order = append(order, st.ID)
	}

	// Let the schedule's share of jobs finish, then kill the machine.
	waitUntil := time.Now().Add(60 * time.Second)
	for {
		stats := h1.pool.Stats()
		if stats.Done+stats.Failed+stats.Cancelled >= plan.CrashAfterFinishes {
			break
		}
		if time.Now().After(waitUntil) {
			t.Fatalf("never reached %d finished jobs", plan.CrashAfterFinishes)
		}
		time.Sleep(2 * time.Millisecond)
	}
	h1.ts.Close()
	if err := fs.Crash(plan.KeepExtra, plan.Garbage); err != nil {
		t.Fatalf("crash: %v", err)
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_ = h1.pool.Shutdown(expired)
	if d := time.Since(start); d > 20*time.Second {
		t.Fatalf("shutdown with expired context took %v", d)
	}
	_ = h1.jnl.Close()

	// Reboot over the torn journal.
	h2 := boot(t, dir, journal.Options{}, jobs.Config{Workers: 2, QueueDepth: 32})
	defer func() {
		h2.ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		_ = h2.pool.Shutdown(ctx)
		_ = h2.jnl.Close()
	}()
	if len(plan.Garbage) > 0 {
		rs := h2.pool.RestoreStatsSnapshot()
		if rs == nil || rs.Replay.CorruptRecords+rs.Replay.TornSegments == 0 {
			t.Errorf("garbage at the tear point went undetected by replay")
		}
	}

	// Zero silently lost jobs: every 202-acked ID must exist and reach
	// Done with the control run's exact result bytes.
	for _, id := range order {
		key := acked[id]
		if _, ok := h2.pool.Job(id); !ok {
			t.Errorf("job %s (%s) lost after crash", id, key)
			continue
		}
		final := h2.await(t, id)
		if final.State != jobs.Done || final.Result == nil {
			t.Errorf("job %s (%s) finished %s (%s), want done", id, key, final.State, final.Error)
			continue
		}
		if got := normalize(t, final.Result); got != control[key] {
			t.Errorf("job %s (%s) result diverged after replay\n got %s\nwant %s", id, key, got, control[key])
		}
	}

	// No duplicate terminal states on disk: shut down cleanly and fold
	// the journal one more time.
	h2.ts.Close()
	ctx, cancel2 := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel2()
	if err := h2.pool.Shutdown(ctx); err != nil {
		t.Fatalf("final shutdown: %v", err)
	}
	if err := h2.jnl.Close(); err != nil {
		t.Fatalf("final close: %v", err)
	}
	jnl3, rep3, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatalf("final replay: %v", err)
	}
	defer jnl3.Close()
	if rep3.Stats.DuplicateTerm != 0 {
		t.Errorf("journal holds %d duplicate terminal records:\n%s",
			rep3.Stats.DuplicateTerm, strings.Join(rep3.Stats.Warnings, "\n"))
	}
	for _, id := range order {
		jr := findJob(rep3, id)
		if jr == nil {
			t.Errorf("job %s missing from the final journal", id)
			continue
		}
		if !jr.Terminal() {
			t.Errorf("job %s non-terminal (%s) in the final journal", id, jr.State)
		}
	}
}

func findJob(rep *journal.ReplayResult, id string) *journal.JobReplay {
	for _, jr := range rep.Jobs {
		if jr.ID == id {
			return jr
		}
	}
	return nil
}

// TestChaosFaultsDeadlinesAndRecovery drives the remaining fault
// dimensions in one daemon lifetime: injected eigensolver faults (the
// resilience ladder must absorb them), clock-free deadline triggers
// (already-expired contexts at pickup), client cancels, slow 1-byte
// client reads, and a journal I/O outage with the documented
// compaction recovery — all without a panic, a lost job, or a
// duplicate terminal record.
func TestChaosFaultsDeadlinesAndRecovery(t *testing.T) {
	dir := t.TempDir()
	fs := chaos.NewFS()
	faults := &resilience.FaultPlan{FailAttempts: []int{1, 4}, StallAttempts: []int{6}}
	h := boot(t, dir, journal.Options{OpenFile: fs.Open},
		jobs.Config{
			Workers:     2,
			QueueDepth:  32,
			EigenPolicy: resilience.EigenPolicy{Faults: faults},
		})
	defer func() {
		h.ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		_ = h.pool.Shutdown(ctx)
		_ = h.jnl.Close()
	}()
	hashes := h.uploadNetlists(t)

	var terminalIDs []string

	// Solver faults: the ladder retries/degrades, the jobs still finish.
	for i := 0; i < 4; i++ {
		spec := specPool[i%3]
		st, code := h.submit(t, fmt.Sprintf(`{"netlist":%q,%s}`, hashes[spec.net], spec.body))
		if code != http.StatusAccepted {
			t.Fatalf("submit %s = %d", spec.key, code)
		}
		final := h.await(t, st.ID)
		if final.State != jobs.Done {
			t.Errorf("job %s under solver faults finished %s (%s)", spec.key, final.State, final.Error)
		}
		terminalIDs = append(terminalIDs, st.ID)
	}
	if faults.Attempts() == 0 {
		t.Error("fault plan observed no solver attempts")
	}

	// Clock-free deadline: expired before pickup, must fail not hang.
	st, code := h.submit(t, fmt.Sprintf(`{"netlist":%q,"k":2,"timeout":"1ns"}`, hashes[0]))
	if code != http.StatusAccepted {
		t.Fatalf("deadline submit = %d", code)
	}
	if final := h.await(t, st.ID); final.State != jobs.Failed {
		t.Errorf("1ns-deadline job finished %s, want failed", final.State)
	}
	terminalIDs = append(terminalIDs, st.ID)

	// Client cancel: either honoured or beaten by completion, never stuck.
	st, code = h.submit(t, fmt.Sprintf(`{"netlist":%q,"method":"melo","k":2,"d":30}`, hashes[2]))
	if code != http.StatusAccepted {
		t.Fatalf("cancel-target submit = %d", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, h.ts.URL+"/v1/jobs/"+st.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	if final := h.await(t, st.ID); final.State != jobs.Cancelled && final.State != jobs.Done {
		t.Errorf("cancelled job finished %s", final.State)
	}
	terminalIDs = append(terminalIDs, st.ID)

	// Slow client: drain a result one byte at a time.
	resp, err := http.Get(h.ts.URL + "/v1/jobs/" + terminalIDs[0] + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var slow []byte
	buf := make([]byte, 1)
	for {
		n, err := resp.Body.Read(buf)
		slow = append(slow, buf[:n]...)
		if err != nil {
			break
		}
	}
	resp.Body.Close()
	if !json.Valid(slow) {
		t.Errorf("slow read produced invalid JSON (%d bytes)", len(slow))
	}

	// Journal outage: durable acks must stop, not lie.
	fs.SetFailWrites(true)
	if _, code := h.submit(t, fmt.Sprintf(`{"netlist":%q,"k":2}`, hashes[0])); code != http.StatusServiceUnavailable {
		t.Errorf("submit during journal outage = %d, want 503", code)
	}
	if h.pool.Stats().JournalErrors == 0 {
		t.Error("journal outage left no error trace")
	}

	// Recovery: disk back + compaction rewrites onto a fresh segment.
	fs.SetFailWrites(false)
	if err := h.pool.CompactJournal(); err != nil {
		t.Fatalf("compaction after outage: %v", err)
	}
	st, code = h.submit(t, fmt.Sprintf(`{"netlist":%q,"k":2}`, hashes[0]))
	if code != http.StatusAccepted {
		t.Fatalf("submit after recovery = %d, want 202", code)
	}
	if final := h.await(t, st.ID); final.State != jobs.Done {
		t.Errorf("post-recovery job finished %s", final.State)
	}
	terminalIDs = append(terminalIDs, st.ID)

	if h.pool.Stats().Panics != 0 {
		t.Errorf("pool isolated %d panics during chaos", h.pool.Stats().Panics)
	}

	// Clean shutdown, then verify the on-disk fold one last time.
	h.ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := h.pool.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := h.jnl.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	jnl2, rep2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatalf("final replay: %v", err)
	}
	defer jnl2.Close()
	if rep2.Stats.DuplicateTerm != 0 {
		t.Errorf("duplicate terminal records: %d", rep2.Stats.DuplicateTerm)
	}
	for _, id := range terminalIDs {
		jr := findJob(rep2, id)
		if jr == nil || !jr.Terminal() {
			t.Errorf("job %s not terminal in the journal after a clean shutdown", id)
		}
	}
}
