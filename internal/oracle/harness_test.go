package oracle

import (
	"reflect"
	"testing"
)

// TestDifferentialCorpusGate is the PR's central assertion: every
// partitioner, on every corpus case, produces a feasible partition whose
// reported cut matches the independent recomputation and is never below
// the brute-force optimum. Any violation here is a real bug in either an
// algorithm or the oracle — both block the gate.
func TestDifferentialCorpusGate(t *testing.T) {
	cases := Corpus(1)
	if len(cases) < 50 {
		t.Fatalf("corpus has %d cases, want >= 50", len(cases))
	}
	rep, err := Run(1, cases)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("%s/%s: %s", v.Case, v.Method, v.Detail)
	}
	wantMethods := len(runners())
	if len(rep.Methods) != wantMethods {
		t.Fatalf("stats for %d methods, want %d", len(rep.Methods), wantMethods)
	}
	for _, st := range rep.Methods {
		if st.Instances != len(cases) {
			t.Errorf("%s ran on %d/%d cases", st.Method, st.Instances, len(cases))
		}
		if st.Optimal < 1 {
			t.Errorf("%s never found an optimum on %d tiny cases — wiring suspect", st.Method, st.Instances)
		}
		if st.MeanGap < 0 || st.MaxGap < st.MeanGap {
			t.Errorf("%s has inconsistent gaps: mean %g, max %g", st.Method, st.MeanGap, st.MaxGap)
		}
	}
}

// TestHarnessDeterministic: the same seed must reproduce the report
// bit-for-bit — the BENCH_oracle.json artifact is meant to be diffable.
func TestHarnessDeterministic(t *testing.T) {
	a, err := Run(3, Corpus(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(3, Corpus(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("identical seeds produced different reports")
	}
}
