package oracle

import (
	"fmt"
	"math"
	"sort"

	spectral "repro"
	"repro/internal/barnes"
	"repro/internal/dprp"
	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/hl"
	"repro/internal/hypergraph"
	"repro/internal/kp"
	"repro/internal/linalg"
	"repro/internal/melo"
	"repro/internal/paraboli"
	"repro/internal/partition"
	"repro/internal/recbis"
	"repro/internal/rsb"
	"repro/internal/sb"
	"repro/internal/sfc"
	"repro/internal/trivec"
	"repro/internal/vecpart"
	"repro/internal/vkp"
)

// Violation is one failed oracle check.
type Violation struct {
	Case   string `json:"case"`
	Method string `json:"method"`
	Detail string `json:"detail"`
}

// MethodStats aggregates one method's differential results over a
// corpus.
type MethodStats struct {
	Method string `json:"method"`
	// Instances counts corpus cases the method ran on.
	Instances int `json:"instances"`
	// Optimal counts instances where the heuristic matched the exact
	// optimum cut.
	Optimal int `json:"optimal"`
	// MeanGap and MaxGap are relative optimality gaps
	// (cut − exact)/max(1, exact).
	MeanGap float64 `json:"mean_gap"`
	MaxGap  float64 `json:"max_gap"`

	sumGap float64
}

// Report is the differential harness output, serialized by cmd/oracle
// into BENCH_oracle.json.
type Report struct {
	Seed       int64         `json:"seed"`
	Cases      int           `json:"cases"`
	Methods    []MethodStats `json:"methods"`
	Violations []Violation   `json:"violations"`
}

// caseEnv holds per-case shared state: the clique graphs and their full
// dense eigendecompositions (the exact d = n references every method
// draws from, so the harness isolates algorithm bugs from eigensolver
// noise).
type caseEnv struct {
	h        *hypergraph.Hypergraph
	g        *graph.Graph // PartitioningSpecific clique model
	dec      *eigen.Decomposition
	gFrankle *graph.Graph
	decFr    *eigen.Decomposition
	exact    map[string]*Exact
}

func newCaseEnv(h *hypergraph.Hypergraph) (*caseEnv, error) {
	g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
	if err != nil {
		return nil, err
	}
	dec, err := eigen.SymEig(g.LaplacianDense())
	if err != nil {
		return nil, err
	}
	gf, err := graph.FromHypergraph(h, graph.Frankle, 0)
	if err != nil {
		return nil, err
	}
	decf, err := eigen.SymEig(gf.LaplacianDense())
	if err != nil {
		return nil, err
	}
	return &caseEnv{h: h, g: g, dec: dec, gFrankle: gf, decFr: decf, exact: map[string]*Exact{}}, nil
}

// exactFor memoizes ExactKWay per (k, balance) within a case.
func (e *caseEnv) exactFor(k int, bal Balance) (*Exact, error) {
	key := fmt.Sprintf("%d/%d/%d/%g/%g", k, bal.MinSize, bal.MaxSize, bal.MinArea, bal.MaxArea)
	if ex, ok := e.exact[key]; ok {
		return ex, nil
	}
	ex, err := ExactKWay(e.h, k, bal)
	if err != nil {
		return nil, err
	}
	e.exact[key] = ex
	return ex, nil
}

// runResult is one method's output on one case.
type runResult struct {
	p   *partition.Partition
	k   int
	bal Balance
	// problems lists reported-value mismatches detected inside the
	// runner (reported cut ≠ recomputed cut, DP cost ≠ exact, …).
	problems []string
}

type runner struct {
	name string
	// run returns (nil, nil) when the method does not apply to the case
	// (e.g. k exceeds n).
	run func(e *caseEnv) (*runResult, error)
}

// meloD returns the d MELO-family methods use on an n-module netlist.
func meloD(n int) int {
	d := 10
	if d > n-1 {
		d = n - 1
	}
	return d
}

func dpBounds(n, k int) (lo, hi int) {
	lo = n / (2 * k)
	if lo < 1 {
		lo = 1
	}
	hi = (2*n + k - 1) / k
	if hi > n {
		hi = n
	}
	return lo, hi
}

const minFrac = 0.45

func balancedMin(n int) int { return BalancedMinSize(n, minFrac) }

// areaBalancedMin is the area-balance floor BestBalancedSplitAreas
// actually guarantees for this ordering: minFrac of the total area,
// relaxed to the most balanced achievable split when no position
// reaches the fraction.
func areaBalancedMin(h *hypergraph.Hypergraph, order []int) float64 {
	total := h.TotalArea()
	lo := minFrac * total
	maxMin, prefix := 0.0, 0.0
	for s := 1; s < len(order); s++ {
		prefix += h.Area(order[s-1])
		if m := math.Min(prefix, total-prefix); m > maxMin {
			maxMin = m
		}
	}
	if lo > maxMin {
		lo = maxMin
	}
	return lo
}

// checkSplitResult verifies a SplitResult's reported cut against the
// independent recomputation and (for count-balanced sweeps) against the
// exact best split of the same ordering.
func checkSplitResult(h *hypergraph.Hypergraph, res dprp.SplitResult, order []int, exactSweep bool, byArea bool) []string {
	var problems []string
	if err := CheckReportedCut(h, res.Partition, int(res.Cut)); err != nil {
		problems = append(problems, fmt.Sprintf("split: %v", err))
	}
	if exactSweep && order != nil {
		want, err := ExactBestSplitCut(h, order, minFrac, byArea)
		if err != nil {
			problems = append(problems, fmt.Sprintf("exact sweep: %v", err))
		} else if int(res.Cut) != want {
			problems = append(problems, fmt.Sprintf("sweep returned cut %d, exact best split of same ordering is %d", int(res.Cut), want))
		}
	}
	return problems
}

func runners() []runner {
	return []runner{
		{name: "sb", run: func(e *caseEnv) (*runResult, error) {
			n := e.h.NumModules()
			res, err := sb.Bipartition(e.h, e.g, e.dec, minFrac)
			if err != nil {
				return nil, err
			}
			order, err := sb.FiedlerOrder(e.g, e.dec)
			if err != nil {
				return nil, err
			}
			return &runResult{p: res.Partition, k: 2, bal: Balance{MinSize: balancedMin(n)},
				problems: checkSplitResult(e.h, res, order, true, false)}, nil
		}},
		{name: "sb-ratio", run: func(e *caseEnv) (*runResult, error) {
			res, err := sb.RatioCutBipartition(e.h, e.g, e.dec)
			if err != nil {
				return nil, err
			}
			var problems []string
			// The reported value is the ratio cut; recompute it.
			want := partition.RatioCut(e.h, res.Partition)
			if math.Abs(res.Cut-want) > 1e-9 {
				problems = append(problems, fmt.Sprintf("reported ratio %.12g, recomputed %.12g", res.Cut, want))
			}
			return &runResult{p: res.Partition, k: 2, bal: Balance{}, problems: problems}, nil
		}},
		{name: "rsb-k2", run: rsbRunner(2)},
		{name: "rsb-k3", run: rsbRunner(3)},
		{name: "melo-k2", run: func(e *caseEnv) (*runResult, error) {
			n := e.h.NumModules()
			mo := melo.NewOptions()
			mo.D = meloD(n)
			res, err := melo.Order(e.g, e.dec, mo)
			if err != nil {
				return nil, err
			}
			if e.h.HasAreas() {
				split, err := dprp.BestBalancedSplitAreas(e.h, res.Order, minFrac)
				if err != nil {
					return nil, err
				}
				return &runResult{p: split.Partition, k: 2, bal: Balance{MinArea: areaBalancedMin(e.h, res.Order)},
					problems: checkSplitResult(e.h, split, res.Order, true, true)}, nil
			}
			split, err := dprp.BestBalancedSplit(e.h, res.Order, minFrac)
			if err != nil {
				return nil, err
			}
			return &runResult{p: split.Partition, k: 2, bal: Balance{MinSize: balancedMin(n)},
				problems: checkSplitResult(e.h, split, res.Order, true, false)}, nil
		}},
		{name: "melo-dp-k3", run: dpRunner(3)},
		{name: "melo-dp-k4", run: dpRunner(4)},
		{name: "kp-k2", run: kpRunner(2)},
		{name: "kp-k3", run: kpRunner(3)},
		{name: "sfc", run: func(e *caseEnv) (*runResult, error) {
			n := e.h.NumModules()
			if e.dec.D() < 3 {
				return nil, nil
			}
			order, err := sfc.Order(e.dec, sfc.Options{D: 2, Curve: sfc.Hilbert})
			if err != nil {
				return nil, err
			}
			split, err := dprp.BestBalancedSplit(e.h, order, minFrac)
			if err != nil {
				return nil, err
			}
			return &runResult{p: split.Partition, k: 2, bal: Balance{MinSize: balancedMin(n)},
				problems: checkSplitResult(e.h, split, order, true, false)}, nil
		}},
		{name: "placement", run: func(e *caseEnv) (*runResult, error) {
			n := e.h.NumModules()
			res, err := paraboli.Bipartition(e.h, paraboli.Options{Model: graph.PartitioningSpecific, MinFrac: minFrac})
			if err != nil {
				return nil, err
			}
			return &runResult{p: res.Partition, k: 2, bal: Balance{MinSize: balancedMin(n)},
				problems: checkSplitResult(e.h, res, nil, false, false)}, nil
		}},
		{name: "barnes-k2", run: barnesRunner(2)},
		{name: "barnes-k3", run: barnesRunner(3)},
		{name: "hl-d1", run: hlRunner(1)},
		{name: "hl-d2", run: hlRunner(2)},
		{name: "vkp-k2", run: vkpRunner(2)},
		{name: "vkp-k3", run: vkpRunner(3)},
		{name: "mlmelo-k2", run: mlmeloRunner(2)},
		{name: "mlmelo-k3", run: mlmeloRunner(3)},
		{name: "recbis-k2", run: recbisRunner(2)},
		{name: "recbis-k4", run: recbisRunner(4)},
		{name: "trivec-k3", run: trivecRunner()},
	}
}

// mlmeloRunner exercises the full multilevel V-cycle through the façade.
// The corpus netlists are tiny, so the coarsening threshold is forced
// down to 4 to guarantee real coarsen/project/refine levels rather than
// a degenerate flat solve. No balance window is claimed: projection plus
// FM guarantees feasibility (complete assignment, no empty cluster) but
// only a relaxed balance on chunky coarse modules.
func mlmeloRunner(k int) func(e *caseEnv) (*runResult, error) {
	return func(e *caseEnv) (*runResult, error) {
		if k > e.h.NumModules() {
			return nil, nil
		}
		p, err := spectral.Partition(e.h, spectral.Options{
			K: k, Method: spectral.MultilevelMELO, CoarsenThreshold: 4,
		})
		if err != nil {
			return nil, err
		}
		return &runResult{p: p, k: k, bal: Balance{}}, nil
	}
}

// recbisRunner checks shared-decomposition recursive bisection against
// the exact optimum using the case's dense d = n decomposition.
func recbisRunner(k int) func(e *caseEnv) (*runResult, error) {
	return func(e *caseEnv) (*runResult, error) {
		if k > e.h.NumModules() {
			return nil, nil
		}
		p, err := recbis.Partition(e.dec, k)
		if err != nil {
			return nil, err
		}
		return &runResult{p: p, k: k, bal: Balance{}}, nil
	}
}

// trivecRunner checks the two-eigenvector 120°-sector tripartition; it
// needs n >= 3 and at least three eigenpairs (v1, v2, v3).
func trivecRunner() func(e *caseEnv) (*runResult, error) {
	return func(e *caseEnv) (*runResult, error) {
		if e.h.NumModules() < 3 || e.dec.D() < 3 {
			return nil, nil
		}
		p, err := trivec.Partition(e.h, e.dec, trivec.Options{})
		if err != nil {
			return nil, err
		}
		return &runResult{p: p, k: 3, bal: Balance{}}, nil
	}
}

func rsbRunner(k int) func(e *caseEnv) (*runResult, error) {
	return func(e *caseEnv) (*runResult, error) {
		if k > e.h.NumModules() {
			return nil, nil
		}
		p, err := rsb.Partition(e.h, rsb.Options{K: k, Model: graph.PartitioningSpecific})
		if err != nil {
			return nil, err
		}
		return &runResult{p: p, k: k, bal: Balance{}}, nil
	}
}

func dpRunner(k int) func(e *caseEnv) (*runResult, error) {
	return func(e *caseEnv) (*runResult, error) {
		n := e.h.NumModules()
		if k > n {
			return nil, nil
		}
		mo := melo.NewOptions()
		mo.D = meloD(n)
		res, err := melo.Order(e.g, e.dec, mo)
		if err != nil {
			return nil, err
		}
		dp, err := dprp.Partition(e.h, res.Order, dprp.Options{K: k})
		if err != nil {
			return nil, err
		}
		var problems []string
		// Reported Scaled Cost must match the metric recomputation …
		if sc := partition.ScaledCost(e.h, dp.Partition); math.Abs(sc-dp.ScaledCost) > 1e-9 {
			problems = append(problems, fmt.Sprintf("DP reported ScaledCost %.12g, metrics recompute %.12g", dp.ScaledCost, sc))
		}
		// The DP's balance window: counts for unit areas, area sums for
		// weighted netlists.
		var bal Balance
		if e.h.HasAreas() {
			loA, hiA := dprp.AreaBounds(e.h.TotalArea(), k)
			bal = Balance{MinArea: loA, MaxArea: hiA}
		} else {
			lo, hi := dpBounds(n, k)
			bal = Balance{MinSize: lo, MaxSize: hi}
		}
		// … and must equal the exact optimum over contiguous splits of
		// the same ordering, which the DP claims to minimize.
		exact, _, err := ExactOrderSplit(e.h, res.Order, k, bal)
		if err == nil && dp.ScaledCost > exact+1e-9 {
			problems = append(problems, fmt.Sprintf("DP ScaledCost %.12g above exact contiguous optimum %.12g", dp.ScaledCost, exact))
		}
		return &runResult{p: dp.Partition, k: k, bal: bal, problems: problems}, nil
	}
}

func kpRunner(k int) func(e *caseEnv) (*runResult, error) {
	return func(e *caseEnv) (*runResult, error) {
		n := e.h.NumModules()
		if k > n {
			return nil, nil
		}
		ko := kp.Options{K: k, MinSize: 1}
		bal := Balance{}
		if e.h.HasAreas() {
			// Mirror the facade: repair against the restricted-partitioning
			// area floor, and hold KP to it.
			areas := make([]float64, n)
			for i := range areas {
				areas[i] = e.h.Area(i)
			}
			ko.Areas = areas
			ko.MinArea, _ = dprp.AreaBounds(e.h.TotalArea(), k)
			bal = Balance{MinArea: ko.MinArea}
		}
		p, err := kp.Partition(e.decFr, ko)
		if err != nil {
			return nil, err
		}
		return &runResult{p: p, k: k, bal: bal}, nil
	}
}

func barnesRunner(k int) func(e *caseEnv) (*runResult, error) {
	return func(e *caseEnv) (*runResult, error) {
		n := e.h.NumModules()
		if k > n {
			return nil, nil
		}
		p, err := barnes.Partition(e.g, barnes.Options{K: k, SignFlips: true})
		if err != nil {
			return nil, err
		}
		return &runResult{p: p, k: k, bal: Balance{MinSize: n / k, MaxSize: (n + k - 1) / k}}, nil
	}
}

func hlRunner(d int) func(e *caseEnv) (*runResult, error) {
	return func(e *caseEnv) (*runResult, error) {
		n := e.h.NumModules()
		k := 1 << uint(d)
		if k > n || e.dec.D() < d+1 {
			return nil, nil
		}
		p, err := hl.Partition(e.dec, d)
		if err != nil {
			return nil, err
		}
		// Nested median splits bound every cluster's size exactly.
		lo, hi := n, 0
		for _, s := range medianSizes(n, d) {
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		return &runResult{p: p, k: k, bal: Balance{MinSize: lo, MaxSize: hi}}, nil
	}
}

// medianSizes returns the cluster sizes d rounds of median splitting
// produce on n vertices.
func medianSizes(n, d int) []int {
	sizes := []int{n}
	for i := 0; i < d; i++ {
		var next []int
		for _, s := range sizes {
			next = append(next, s/2, s-s/2)
		}
		sizes = next
	}
	return sizes
}

func vkpRunner(k int) func(e *caseEnv) (*runResult, error) {
	return func(e *caseEnv) (*runResult, error) {
		n := e.h.NumModules()
		if k > n {
			return nil, nil
		}
		d := meloD(n)
		trimmed, err := trimTrivial(e.dec, d)
		if err != nil {
			return nil, err
		}
		H := vecpart.ChooseH(e.g.TotalDegree(), append([]float64{0}, trimmed.Values...), n)
		v, err := vecpart.FromDecomposition(trimmed, d, vecpart.MaxSum, H)
		if err != nil {
			return nil, err
		}
		res, err := vkp.Partition(v, vkp.Options{K: k})
		if err != nil {
			return nil, err
		}
		var problems []string
		// Reported objective must match Σ_h ‖Y_h‖² recomputed from the
		// final partition.
		if want := v.SumSquaredSubsets(res.Partition); math.Abs(res.Objective-want) > 1e-6*(1+math.Abs(want)) {
			problems = append(problems, fmt.Sprintf("VKP reported objective %.12g, recomputed %.12g", res.Objective, want))
		}
		lo, hi := dpBounds(n, k)
		return &runResult{p: res.Partition, k: k, bal: Balance{MinSize: lo, MaxSize: hi}, problems: problems}, nil
	}
}

// trimTrivial drops the trivial constant eigenpair and keeps d pairs
// (mirrors the facade's VKP preprocessing).
func trimTrivial(dec *eigen.Decomposition, d int) (*eigen.Decomposition, error) {
	if d > dec.D()-1 {
		d = dec.D() - 1
	}
	if d < 1 {
		return nil, fmt.Errorf("oracle: decomposition has %d pairs, need >= 2", dec.D())
	}
	n := dec.Vectors.Rows
	vecs := linalg.NewDense(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			vecs.Set(i, j, dec.Vectors.At(i, j+1))
		}
	}
	vals := make([]float64, d)
	copy(vals, dec.Values[1:d+1])
	return &eigen.Decomposition{Values: vals, Vectors: vecs}, nil
}

// Run executes the differential harness over the corpus: every method on
// every applicable case, with feasibility, reported-cut, and optimality
// checks. The returned report carries per-method gap statistics and the
// full violation list (empty when the repo is healthy).
func Run(seed int64, cases []Case) (*Report, error) {
	rep := &Report{Seed: seed, Cases: len(cases), Violations: []Violation{}}
	stats := map[string]*MethodStats{}
	rs := runners()
	for _, c := range cases {
		env, err := newCaseEnv(c.H)
		if err != nil {
			return nil, fmt.Errorf("case %s: %v", c.Name, err)
		}
		for _, r := range rs {
			res, err := r.run(env)
			if err != nil {
				rep.Violations = append(rep.Violations, Violation{Case: c.Name, Method: r.name, Detail: fmt.Sprintf("run failed: %v", err)})
				continue
			}
			if res == nil {
				continue
			}
			st := stats[r.name]
			if st == nil {
				st = &MethodStats{Method: r.name}
				stats[r.name] = st
			}
			st.Instances++
			for _, pr := range res.problems {
				rep.Violations = append(rep.Violations, Violation{Case: c.Name, Method: r.name, Detail: pr})
			}
			if err := CheckFeasible(c.H, res.p, res.k, res.bal); err != nil {
				rep.Violations = append(rep.Violations, Violation{Case: c.Name, Method: r.name, Detail: err.Error()})
				continue
			}
			exact, err := env.exactFor(res.k, res.bal)
			if err != nil {
				rep.Violations = append(rep.Violations, Violation{Case: c.Name, Method: r.name, Detail: fmt.Sprintf("exact reference: %v", err)})
				continue
			}
			cut, err := c.H.CutSize(res.p.Assign)
			if err != nil {
				return nil, err
			}
			if cut < exact.Cut {
				rep.Violations = append(rep.Violations, Violation{Case: c.Name, Method: r.name,
					Detail: fmt.Sprintf("heuristic cut %d below exact optimum %d — oracle or feasibility bug", cut, exact.Cut)})
				continue
			}
			gap := float64(cut-exact.Cut) / math.Max(1, float64(exact.Cut))
			st.sumGap += gap
			if gap > st.MaxGap {
				st.MaxGap = gap
			}
			if cut == exact.Cut {
				st.Optimal++
			}
		}
	}
	for _, st := range stats {
		if st.Instances > 0 {
			st.MeanGap = st.sumGap / float64(st.Instances)
		}
		rep.Methods = append(rep.Methods, *st)
	}
	sort.Slice(rep.Methods, func(a, b int) bool { return rep.Methods[a].Method < rep.Methods[b].Method })
	return rep, nil
}
