package oracle

import (
	"fmt"
	"math/rand"

	"repro/internal/hypergraph"
	"repro/internal/partest"
)

// Case is one corpus instance: a named netlist small enough for the
// exact references.
type Case struct {
	Name string
	H    *hypergraph.Hypergraph
}

// Path returns the path netlist P_n (n−1 two-pin nets in a chain).
func Path(n int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder()
	b.AddModules(n)
	for i := 0; i+1 < n; i++ {
		mustAddNet(b, fmt.Sprintf("e%d", i), i, i+1)
	}
	return b.Build()
}

// Cycle returns the cycle netlist C_n. For even n its clique-model
// Laplacian has a degenerate Fiedler value (λ₂ multiplicity 2) — the
// regime where tie-breaking bugs hide.
func Cycle(n int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder()
	b.AddModules(n)
	for i := 0; i < n; i++ {
		mustAddNet(b, fmt.Sprintf("e%d", i), i, (i+1)%n)
	}
	return b.Build()
}

// Star returns the star netlist S_n: one hub, n−1 leaves, all two-pin
// nets. Every non-trivial Laplacian eigenvalue but one coincides.
func Star(n int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder()
	b.AddModules(n)
	for i := 1; i < n; i++ {
		mustAddNet(b, fmt.Sprintf("e%d", i), 0, i)
	}
	return b.Build()
}

// CompleteBipartite returns K_{a,b} as two-pin nets between every pair
// of opposite-side modules.
func CompleteBipartite(a, b int) *hypergraph.Hypergraph {
	bl := hypergraph.NewBuilder()
	bl.AddModules(a + b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			mustAddNet(bl, fmt.Sprintf("e%d_%d", i, j), i, a+j)
		}
	}
	return bl.Build()
}

// Dumbbell returns two s-cliques joined by `bridges` two-pin nets — the
// canonical provable-optimum bipartitioning instance (optimal cut =
// bridges).
func Dumbbell(s, bridges int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder()
	b.AddModules(2 * s)
	clique := func(base int, tag string) {
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				mustAddNet(b, fmt.Sprintf("%s%d_%d", tag, i, j), base+i, base+j)
			}
		}
	}
	clique(0, "l")
	clique(s, "r")
	for k := 0; k < bridges; k++ {
		mustAddNet(b, fmt.Sprintf("bridge%d", k), k%s, s+k%s)
	}
	return b.Build()
}

// Twins returns two disjoint copies of an s-cycle — a disconnected
// netlist whose Fiedler value is 0 with multiplicity 2, the worst case
// for eigenvector-based splitting.
func Twins(s int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder()
	b.AddModules(2 * s)
	for i := 0; i < s; i++ {
		mustAddNet(b, fmt.Sprintf("a%d", i), i, (i+1)%s)
		mustAddNet(b, fmt.Sprintf("b%d", i), s+i, s+(i+1)%s)
	}
	return b.Build()
}

// Corpus returns the seeded differential corpus: structured families
// with hand-provable optima and degenerate spectra, plus seeded random
// netlists (some multi-pin, some with heterogeneous areas). Every
// instance has n ≤ MaxModules. The same seed always produces the same
// corpus.
func Corpus(seed int64) []Case {
	var cases []Case
	add := func(name string, h *hypergraph.Hypergraph) {
		cases = append(cases, Case{Name: name, H: h})
	}
	for n := 4; n <= 12; n += 2 {
		add(fmt.Sprintf("path%d", n), Path(n))
		add(fmt.Sprintf("cycle%d", n), Cycle(n))
	}
	for _, n := range []int{5, 7, 9} {
		add(fmt.Sprintf("star%d", n), Star(n))
	}
	add("k23", CompleteBipartite(2, 3))
	add("k33", CompleteBipartite(3, 3))
	add("k34", CompleteBipartite(3, 4))
	add("k44", CompleteBipartite(4, 4))
	add("dumbbell4x1", Dumbbell(4, 1))
	add("dumbbell5x2", Dumbbell(5, 2))
	add("dumbbell6x3", Dumbbell(6, 3))
	add("twins4", Twins(4))
	add("twins5", Twins(5))
	add("twins6", Twins(6))

	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 18; i++ {
		n := 6 + rng.Intn(7) // 6..12
		extra := 2 + rng.Intn(2*n)
		maxPin := 2 + rng.Intn(4)
		h := partest.RandomNetlist(n, extra, maxPin, seed+int64(i)*101)
		add(fmt.Sprintf("rand%d_n%d", i, n), h)
	}
	// Heterogeneous-area variants: same topologies, skewed module areas.
	for i := 0; i < 8; i++ {
		n := 6 + rng.Intn(7)
		extra := 2 + rng.Intn(n)
		h := partest.RandomNetlist(n, extra, 4, seed+1000+int64(i)*131)
		areas := make([]float64, n)
		for m := range areas {
			areas[m] = float64(1 + rng.Intn(5))
		}
		if err := h.SetAreas(areas); err != nil {
			panic(err)
		}
		add(fmt.Sprintf("area%d_n%d", i, n), h)
	}
	areaPath := Path(8)
	if err := areaPath.SetAreas([]float64{5, 1, 1, 1, 1, 1, 1, 5}); err != nil {
		panic(err)
	}
	add("areapath8", areaPath)
	areaBell := Dumbbell(4, 1)
	if err := areaBell.SetAreas([]float64{4, 1, 1, 1, 1, 1, 1, 4}); err != nil {
		panic(err)
	}
	add("areabell4", areaBell)
	return cases
}

func mustAddNet(b *hypergraph.Builder, name string, mods ...int) {
	if err := b.AddNet(name, mods...); err != nil {
		panic(err)
	}
}
