package oracle

import (
	"fmt"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// CheckFeasible verifies that p is a legal k-way partition of h under
// bal: non-nil, covering every module exactly once, every cluster
// non-empty, and the balance window honored. It returns a descriptive
// error for the first violation.
func CheckFeasible(h *hypergraph.Hypergraph, p *partition.Partition, k int, bal Balance) error {
	if p == nil {
		return fmt.Errorf("oracle: nil partition")
	}
	if p.N() != h.NumModules() {
		return fmt.Errorf("oracle: partition covers %d modules, netlist has %d", p.N(), h.NumModules())
	}
	if p.K != k {
		return fmt.Errorf("oracle: partition has K = %d, want %d", p.K, k)
	}
	for i, c := range p.Assign {
		if c < 0 || c >= k {
			return fmt.Errorf("oracle: module %d assigned to cluster %d, out of [0,%d)", i, c, k)
		}
	}
	sizes := p.Sizes()
	areas := partition.ClusterAreas(h, p)
	for c := 0; c < k; c++ {
		if sizes[c] == 0 {
			return fmt.Errorf("oracle: cluster %d is empty", c)
		}
		if bal.MinSize > 0 && sizes[c] < bal.MinSize {
			return fmt.Errorf("oracle: cluster %d has %d modules, balance requires >= %d", c, sizes[c], bal.MinSize)
		}
		if bal.MaxSize > 0 && sizes[c] > bal.MaxSize {
			return fmt.Errorf("oracle: cluster %d has %d modules, balance requires <= %d", c, sizes[c], bal.MaxSize)
		}
		if bal.MinArea > 0 && areas[c] < bal.MinArea-areaTol {
			return fmt.Errorf("oracle: cluster %d has area %g, balance requires >= %g", c, areas[c], bal.MinArea)
		}
		if bal.MaxArea > 0 && areas[c] > bal.MaxArea+areaTol {
			return fmt.Errorf("oracle: cluster %d has area %g, balance requires <= %g", c, areas[c], bal.MaxArea)
		}
	}
	return nil
}

// areaTol absorbs float accumulation order differences when comparing
// area sums against window bounds.
const areaTol = 1e-9

// CheckReportedCut verifies that a cut value an algorithm reported for p
// equals the independent hypergraph.CutSize recomputation.
func CheckReportedCut(h *hypergraph.Hypergraph, p *partition.Partition, reported int) error {
	actual, err := h.CutSize(p.Assign)
	if err != nil {
		return err
	}
	if actual != reported {
		return fmt.Errorf("oracle: reported cut %d, recomputed cut %d", reported, actual)
	}
	return nil
}

// CheckSpectrum cross-checks an iteratively computed decomposition of
// g's Laplacian against the exhaustive dense eigensolve: eigenvalues
// must agree pairwise within tol and the decomposition's residual
// max_j ‖Qv_j − λ_j v_j‖ must be below tol.
func CheckSpectrum(g *graph.Graph, dec *eigen.Decomposition, tol float64) error {
	full, err := eigen.SymEig(g.LaplacianDense())
	if err != nil {
		return fmt.Errorf("oracle: dense eigensolve: %v", err)
	}
	if dec.D() > full.D() {
		return fmt.Errorf("oracle: decomposition has %d pairs, matrix only %d", dec.D(), full.D())
	}
	for j := 0; j < dec.D(); j++ {
		if d := abs(dec.Values[j] - full.Values[j]); d > tol {
			return fmt.Errorf("oracle: eigenvalue %d: iterative %.12g vs dense %.12g (Δ %.3g > %.3g)", j, dec.Values[j], full.Values[j], d, tol)
		}
	}
	if r := eigen.Residual(g.Laplacian(), dec); r > tol {
		return fmt.Errorf("oracle: eigen residual %.3g > %.3g", r, tol)
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
