package oracle

import (
	"strings"
	"testing"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/partition"
)

func TestCheckFeasible(t *testing.T) {
	h := Path(4)
	good := partition.MustNew([]int{0, 0, 1, 1}, 2)
	if err := CheckFeasible(h, good, 2, Balance{MinSize: 2, MaxSize: 2}); err != nil {
		t.Errorf("good partition rejected: %v", err)
	}
	if err := CheckFeasible(h, nil, 2, Balance{}); err == nil {
		t.Error("nil partition accepted")
	}
	if err := CheckFeasible(h, good, 3, Balance{}); err == nil {
		t.Error("K mismatch accepted")
	}
	short := partition.MustNew([]int{0, 1}, 2)
	if err := CheckFeasible(h, short, 2, Balance{}); err == nil {
		t.Error("wrong module count accepted")
	}
	empty := &partition.Partition{Assign: []int{0, 0, 0, 0}, K: 2}
	if err := CheckFeasible(h, empty, 2, Balance{}); err == nil {
		t.Error("empty cluster accepted")
	}
	skew := partition.MustNew([]int{0, 1, 1, 1}, 2)
	if err := CheckFeasible(h, skew, 2, Balance{MinSize: 2}); err == nil {
		t.Error("MinSize violation accepted")
	}
	if err := CheckFeasible(h, skew, 2, Balance{MaxSize: 2}); err == nil {
		t.Error("MaxSize violation accepted")
	}
	if err := h.SetAreas([]float64{4, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	// skew: cluster 0 = {0} area 4, cluster 1 = {1,2,3} area 3.
	if err := CheckFeasible(h, skew, 2, Balance{MinArea: 3.5}); err == nil {
		t.Error("MinArea violation accepted")
	}
	if err := CheckFeasible(h, skew, 2, Balance{MaxArea: 3.5}); err == nil {
		t.Error("MaxArea violation accepted")
	}
	if err := CheckFeasible(h, skew, 2, Balance{MinArea: 3, MaxArea: 4}); err != nil {
		t.Errorf("area-legal partition rejected: %v", err)
	}
}

func TestCheckReportedCut(t *testing.T) {
	h := Path(4)
	p := partition.MustNew([]int{0, 0, 1, 1}, 2)
	if err := CheckReportedCut(h, p, 1); err != nil {
		t.Errorf("correct report rejected: %v", err)
	}
	err := CheckReportedCut(h, p, 2)
	if err == nil {
		t.Fatal("wrong report accepted")
	}
	if !strings.Contains(err.Error(), "reported cut 2") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestCheckSpectrum(t *testing.T) {
	g := graph.Path(6)
	dec, err := eigen.SymEig(g.LaplacianDense())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSpectrum(g, dec, 1e-8); err != nil {
		t.Errorf("dense decomposition rejected: %v", err)
	}
	dec.Values[1] += 0.5
	if err := CheckSpectrum(g, dec, 1e-8); err == nil {
		t.Error("corrupted eigenvalue accepted")
	}
}
