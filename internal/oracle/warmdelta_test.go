package oracle

import (
	"context"
	"testing"

	spectral "repro"
	"repro/internal/delta"
	"repro/internal/resilience"
)

// TestWarmDeltaMatchesColdOnCorpus sweeps the differential corpus with
// a fixed structural+area ECO delta per case: the warm-started solve of
// every mutated netlist must reproduce a cold solve's partition
// bit-for-bit, and the reported cut must equal the cut recomputed from
// the assignment. The corpus instances are far below the seeded-regime
// floor (n ≤ MaxModules < DenseDirectN), so this pins the fallthrough
// side of the warm path: on problems too small to seed, warm starting
// must degrade to exactly the cold solve, not an approximation of it.
func TestWarmDeltaMatchesColdOnCorpus(t *testing.T) {
	cases := Corpus(1)
	if len(cases) != 51 {
		t.Fatalf("corpus has %d cases, want 51 — update the warm≡cold sweep note", len(cases))
	}
	ctx := context.Background()
	const d = 3
	opts := spectral.Options{Method: spectral.MELO, K: 2, D: d}
	for _, c := range cases {
		t.Run(c.Name, func(t *testing.T) {
			base := c.H
			n := base.NumModules()
			ecoDelta := &delta.Delta{
				RemoveNets: []string{base.NetNames[0]},
				AddNets:    []delta.NetChange{{Name: "eco", Modules: []int{0, n - 1}}},
				SetAreas:   []delta.AreaChange{{Module: 0, Area: 2}},
			}
			mut, reach, err := delta.Apply(base, ecoDelta)
			if err != nil {
				t.Fatalf("apply: %v", err)
			}
			if reach.Nets < 2 {
				t.Fatalf("reach = %+v, want >= 2 touched nets", reach)
			}
			seed, err := spectral.DecomposeCtx(ctx, base, spectral.ModelPartitioningSpecific, d)
			if err != nil {
				t.Fatalf("base decompose: %v", err)
			}
			warm, info, err := spectral.DecomposeWarmCtxPolicy(ctx, mut, spectral.ModelPartitioningSpecific, d, seed, resilience.EigenPolicy{})
			if err != nil {
				t.Fatalf("warm decompose: %v", err)
			}
			pw, err := spectral.PartitionWithSpectrum(ctx, mut, warm, opts)
			if err != nil {
				t.Fatalf("warm partition (outcome %q): %v", info.Outcome, err)
			}
			pc, err := spectral.PartitionCtx(ctx, mut, opts)
			if err != nil {
				t.Fatalf("cold partition: %v", err)
			}
			if len(pw.Assign) != n || len(pc.Assign) != n {
				t.Fatalf("assign lengths %d/%d, want %d", len(pw.Assign), len(pc.Assign), n)
			}
			for i := range pw.Assign {
				if pw.Assign[i] != pc.Assign[i] {
					t.Fatalf("warm (outcome %q) and cold partitions differ at module %d", info.Outcome, i)
				}
			}
			if wc, cc := spectral.NetCut(mut, pw), spectral.NetCut(mut, pc); wc != cc {
				t.Fatalf("warm cut %d != cold cut %d", wc, cc)
			}
		})
	}
}
