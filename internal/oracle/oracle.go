// Package oracle provides exact brute-force references for the
// partitioning heuristics in this repository, plus the differential
// harness that cross-checks every algorithm against them (see harness.go).
//
// The references are only feasible on tiny instances (n ≤ MaxModules),
// which is the point: on instances small enough to enumerate, a heuristic
// that ever reports a cut below the true optimum, an infeasible
// partition, or a cut value that disagrees with an independent
// recomputation has a bug — and the fragile regimes (Fiedler-value
// multiplicity, heterogeneous areas, degenerate netlists) all occur at
// small n.
package oracle

import (
	"fmt"
	"math"

	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// MaxModules is the largest instance ExactKWay will enumerate. With
// restricted-growth-string symmetry breaking the worst case (n = 12,
// k = 4) visits well under a million leaf assignments.
const MaxModules = 12

// Balance constrains the clusters of a feasible partition. Zero values
// leave the corresponding bound unconstrained; every cluster must be
// non-empty regardless.
type Balance struct {
	// MinSize and MaxSize bound each cluster's module count.
	MinSize, MaxSize int
	// MinArea and MaxArea bound each cluster's total module area.
	MinArea, MaxArea float64
}

// Exact is the result of a brute-force enumeration.
type Exact struct {
	// Cut is the minimum number of cut nets over all feasible partitions.
	Cut int
	// Partition attains the optimum (the first optimum in enumeration
	// order, so repeated runs agree).
	Partition *partition.Partition
	// Feasible counts the feasible assignments examined.
	Feasible int
}

// ExactKWay enumerates every partition of h's modules into exactly k
// non-empty clusters satisfying bal and returns the minimum net cut.
// Cluster labels are symmetry-broken (restricted growth strings), so each
// set partition is visited once. n must be ≤ MaxModules.
func ExactKWay(h *hypergraph.Hypergraph, k int, bal Balance) (*Exact, error) {
	n := h.NumModules()
	if n > MaxModules {
		return nil, fmt.Errorf("oracle: n = %d exceeds enumeration limit %d", n, MaxModules)
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("oracle: k = %d infeasible for n = %d", k, n)
	}
	maxSize := bal.MaxSize
	if maxSize <= 0 {
		maxSize = n
	}
	maxArea := bal.MaxArea
	if maxArea <= 0 {
		maxArea = math.Inf(1)
	}

	assign := make([]int, n)
	sizes := make([]int, k)
	areas := make([]float64, k)
	best := &Exact{Cut: math.MaxInt}
	feasible := 0

	var recur func(i, used int)
	recur = func(i, used int) {
		if i == n {
			if used != k {
				return
			}
			for c := 0; c < k; c++ {
				if sizes[c] < bal.MinSize || areas[c] < bal.MinArea {
					return
				}
			}
			feasible++
			cut, err := h.CutSize(assign)
			if err != nil {
				panic(err) // assign always covers n modules
			}
			if cut < best.Cut {
				best.Cut = cut
				best.Partition = partition.MustNew(assign, k)
			}
			return
		}
		// Remaining modules must still be able to open the unopened
		// clusters.
		if k-used > n-i {
			return
		}
		limit := used
		if limit >= k {
			limit = k - 1
		}
		a := h.Area(i)
		for c := 0; c <= limit; c++ {
			if sizes[c]+1 > maxSize || areas[c]+a > maxArea {
				continue
			}
			assign[i] = c
			sizes[c]++
			areas[c] += a
			nu := used
			if c == used {
				nu++
			}
			recur(i+1, nu)
			sizes[c]--
			areas[c] -= a
		}
	}
	recur(0, 0)
	best.Feasible = feasible
	if best.Partition == nil {
		return nil, fmt.Errorf("oracle: no feasible %d-way partition under %+v", k, bal)
	}
	return best, nil
}

// BalancedMinSize is the repository's MinFrac balance rule for
// count-balanced bipartitioning: the smaller side must hold at least
// ceil(minFrac·n) modules, relaxed to floor(n/2) when the fractional
// bound exceeds the most balanced achievable split (odd n).
func BalancedMinSize(n int, minFrac float64) int {
	lo := int(math.Ceil(minFrac * float64(n)))
	if most := n / 2; lo > most && minFrac <= 0.5 {
		lo = most
	}
	if lo < 1 {
		lo = 1
	}
	return lo
}

// ExactBipartition is ExactKWay with k = 2 and the MinFrac balance rule
// the repository's bipartitioners use: the smaller side must hold at
// least BalancedMinSize(n, minFrac) modules (or, when byArea is set, at
// least minFrac of the total area).
func ExactBipartition(h *hypergraph.Hypergraph, minFrac float64, byArea bool) (*Exact, error) {
	n := h.NumModules()
	bal := Balance{}
	if byArea {
		bal.MinArea = minFrac * h.TotalArea()
	} else {
		bal.MinSize = BalancedMinSize(n, minFrac)
	}
	return ExactKWay(h, 2, bal)
}

// ExactOrderSplit enumerates every way to cut the ordering into k
// contiguous blocks satisfying bal and returns the minimum Scaled Cost
// together with the minimizing partition. This is the exact reference
// for the DP-RP dynamic program, which promises optimality over exactly
// this family. Feasibility of each candidate is judged by CheckFeasible,
// sharing no window arithmetic with the DP.
func ExactOrderSplit(h *hypergraph.Hypergraph, order []int, k int, bal Balance) (float64, *partition.Partition, error) {
	n := len(order)
	if n != h.NumModules() {
		return 0, nil, fmt.Errorf("oracle: ordering covers %d modules, netlist has %d", n, h.NumModules())
	}
	if n > MaxModules+4 { // C(n-1, k-1) stays tiny well past MaxModules
		return 0, nil, fmt.Errorf("oracle: n = %d too large for split enumeration", n)
	}
	bestCost := math.Inf(1)
	var bestP *partition.Partition
	splits := make([]int, k-1)
	var recur func(block, start int)
	recur = func(block, start int) {
		if block == k-1 {
			p, err := partition.FromOrderSplit(order, splits, k)
			if err != nil {
				return
			}
			if CheckFeasible(h, p, k, bal) != nil {
				return
			}
			if sc := partition.ScaledCost(h, p); sc < bestCost {
				bestCost = sc
				bestP = p
			}
			return
		}
		for pos := start + 1; pos < n; pos++ {
			splits[block] = pos
			recur(block+1, pos)
		}
	}
	recur(0, 0)
	if bestP == nil {
		return 0, nil, fmt.Errorf("oracle: no feasible %d-way order split under %+v", k, bal)
	}
	return bestCost, bestP, nil
}

// ExactBestSplitCut returns the minimum net cut over all single split
// positions of the ordering whose smaller side holds at least
// BalancedMinSize(n, minFrac) modules (or minFrac of the total area
// when byArea is set, relaxed to the most balanced achievable split if
// no position reaches the fraction). The cut at each position is
// recomputed from scratch — no shared profile code with dprp — so it is
// an independent reference for the split sweeps.
func ExactBestSplitCut(h *hypergraph.Hypergraph, order []int, minFrac float64, byArea bool) (int, error) {
	n := len(order)
	if n != h.NumModules() {
		return 0, fmt.Errorf("oracle: ordering covers %d modules, netlist has %d", n, h.NumModules())
	}
	totalArea := h.TotalArea()
	tol := 1e-9 * (1 + totalArea)
	prefix := make([]float64, n+1)
	for s := 1; s <= n; s++ {
		prefix[s] = prefix[s-1] + h.Area(order[s-1])
	}
	loArea := minFrac * totalArea
	maxMin := 0.0
	for s := 1; s < n; s++ {
		if m := math.Min(prefix[s], totalArea-prefix[s]); m > maxMin {
			maxMin = m
		}
	}
	if loArea > maxMin && minFrac <= 0.5 {
		loArea = maxMin
	}
	lo := BalancedMinSize(n, minFrac)

	best := math.MaxInt
	assign := make([]int, n)
	for _, v := range order {
		assign[v] = 1
	}
	for s := 1; s < n; s++ {
		assign[order[s-1]] = 0
		if byArea {
			if prefix[s] < loArea-tol || totalArea-prefix[s] < loArea-tol {
				continue
			}
		} else if s < lo || n-s < lo {
			continue
		}
		cut, err := h.CutSize(assign)
		if err != nil {
			return 0, err
		}
		if cut < best {
			best = cut
		}
	}
	if best == math.MaxInt {
		return 0, fmt.Errorf("oracle: balance %.2f leaves no feasible split for n = %d", minFrac, n)
	}
	return best, nil
}
