package oracle

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dprp"
	"repro/internal/hypergraph"
	"repro/internal/partest"
)

func TestBalancedMinSize(t *testing.T) {
	cases := []struct {
		n       int
		minFrac float64
		want    int
	}{
		{5, 0.45, 2},  // ceil(2.25) = 3 > 2 → most balanced
		{7, 0.45, 3},  // ceil(3.15) = 4 > 3 → most balanced
		{9, 0.45, 4},  // ceil(4.05) = 5 > 4 → most balanced
		{11, 0.45, 5}, // ceil(4.95) = 5 ≤ 5, no clamp
		{8, 0.45, 4},
		{10, 0.45, 5},
		{12, 0.45, 6},
		{4, 0.1, 1},
		{2, 0.45, 1},
		{5, 0.6, 3}, // above 1/2: no clamp, caller gets the impossible bound
	}
	for _, c := range cases {
		if got := BalancedMinSize(c.n, c.minFrac); got != c.want {
			t.Errorf("BalancedMinSize(%d, %g) = %d, want %d", c.n, c.minFrac, got, c.want)
		}
	}
}

// TestExactKnownOptima pins the brute-force references to hand-provable
// optima on the structured families: paths and cycles (tree/cycle edge
// connectivity), stars, complete bipartite graphs, two-clique dumbbells
// and disconnected twins.
func TestExactKnownOptima(t *testing.T) {
	cases := []struct {
		name string
		h    *hypergraph.Hypergraph
		k    int
		bal  Balance
		want int
	}{
		{"path6-k2", Path(6), 2, Balance{MinSize: 3}, 1},
		{"path9-k3", Path(9), 3, Balance{MinSize: 3, MaxSize: 3}, 2},
		{"cycle6-k2", Cycle(6), 2, Balance{MinSize: 3}, 2},
		{"cycle8-k4", Cycle(8), 4, Balance{MinSize: 2, MaxSize: 2}, 4},
		{"star5-k2", Star(5), 2, Balance{MinSize: 2}, 2},
		{"k23-k2", CompleteBipartite(2, 3), 2, Balance{MinSize: 2}, 3},
		{"k33-k2", CompleteBipartite(3, 3), 2, Balance{MinSize: 3}, 5},
		{"dumbbell4x1-k2", Dumbbell(4, 1), 2, Balance{MinSize: 4}, 1},
		{"dumbbell5x2-k2", Dumbbell(5, 2), 2, Balance{MinSize: 5}, 2},
		{"twins4-k2", Twins(4), 2, Balance{MinSize: 4}, 0},
		{"twins4-k2-free", Twins(4), 2, Balance{}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ex, err := ExactKWay(c.h, c.k, c.bal)
			if err != nil {
				t.Fatal(err)
			}
			if ex.Cut != c.want {
				t.Errorf("exact cut %d, want %d", ex.Cut, c.want)
			}
			if err := CheckFeasible(c.h, ex.Partition, c.k, c.bal); err != nil {
				t.Errorf("optimum infeasible: %v", err)
			}
			if err := CheckReportedCut(c.h, ex.Partition, ex.Cut); err != nil {
				t.Errorf("optimum cut inconsistent: %v", err)
			}
			if ex.Feasible < 1 {
				t.Errorf("feasible count %d", ex.Feasible)
			}
		})
	}
}

func TestExactKWayValidation(t *testing.T) {
	h := Path(13)
	if _, err := ExactKWay(h, 2, Balance{}); err == nil {
		t.Error("n > MaxModules accepted")
	}
	h = Path(6)
	if _, err := ExactKWay(h, 0, Balance{}); err == nil {
		t.Error("k = 0 accepted")
	}
	if _, err := ExactKWay(h, 7, Balance{}); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := ExactKWay(h, 2, Balance{MinSize: 4}); err == nil {
		t.Error("infeasible balance accepted")
	}
}

// TestExactKWayAreaWindow: a giant module forces the area-windowed
// optimum away from the count-balanced one.
func TestExactKWayAreaWindow(t *testing.T) {
	h := Path(6)
	if err := h.SetAreas([]float64{5, 1, 1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	// Total area 10; each side in [4, 6]: the giant plus at most one unit
	// module on its side.
	ex, err := ExactKWay(h, 2, Balance{MinArea: 4, MaxArea: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFeasible(h, ex.Partition, 2, Balance{MinArea: 4, MaxArea: 6}); err != nil {
		t.Fatal(err)
	}
	if ex.Cut != 1 {
		t.Errorf("cut %d, want 1 (contiguous area-legal split exists)", ex.Cut)
	}
}

// TestExactOrderSplitMatchesDP: the DP and the enumeration minimize the
// same objective over the same family, so their optima must coincide.
func TestExactOrderSplitMatchesDP(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		h := partest.RandomNetlist(10, 8, 4, seed)
		order := rand.New(rand.NewSource(seed)).Perm(10)
		for _, k := range []int{2, 3} {
			dp, err := dprp.Partition(h, order, dprp.Options{K: k})
			if err != nil {
				t.Fatalf("seed %d k %d: %v", seed, k, err)
			}
			lo, hi := dpBounds(10, k)
			exact, _, err := ExactOrderSplit(h, order, k, Balance{MinSize: lo, MaxSize: hi})
			if err != nil {
				t.Fatalf("seed %d k %d: %v", seed, k, err)
			}
			if math.Abs(dp.ScaledCost-exact) > 1e-9 {
				t.Errorf("seed %d k %d: DP %.12g, exact %.12g", seed, k, dp.ScaledCost, exact)
			}
		}
	}
}

// TestExactBestSplitCutMatchesSweep: the O(pins) profile sweep and the
// per-position recount must agree on every ordering.
func TestExactBestSplitCutMatchesSweep(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		for _, n := range []int{5, 8, 11} {
			h := partest.RandomNetlist(n, 6, 3, seed*17+int64(n))
			order := rand.New(rand.NewSource(seed)).Perm(n)
			res, err := dprp.BestBalancedSplit(h, order, 0.45)
			if err != nil {
				t.Fatalf("n %d seed %d: %v", n, seed, err)
			}
			want, err := ExactBestSplitCut(h, order, 0.45, false)
			if err != nil {
				t.Fatalf("n %d seed %d: %v", n, seed, err)
			}
			if int(res.Cut) != want {
				t.Errorf("n %d seed %d: sweep %d, exact %d", n, seed, int(res.Cut), want)
			}
		}
	}
}

func TestCorpusShape(t *testing.T) {
	cases := Corpus(1)
	if len(cases) < 50 {
		t.Fatalf("corpus has %d cases, want >= 50", len(cases))
	}
	seen := map[string]bool{}
	areas := 0
	for _, c := range cases {
		if seen[c.Name] {
			t.Errorf("duplicate case name %s", c.Name)
		}
		seen[c.Name] = true
		if n := c.H.NumModules(); n < 2 || n > MaxModules {
			t.Errorf("%s: n = %d outside [2, %d]", c.Name, n, MaxModules)
		}
		if c.H.HasAreas() {
			areas++
		}
	}
	if areas < 5 {
		t.Errorf("only %d heterogeneous-area cases, want >= 5", areas)
	}
	// Same seed, same corpus.
	again := Corpus(1)
	if len(again) != len(cases) {
		t.Fatal("corpus not deterministic in size")
	}
	for i := range again {
		if again[i].Name != cases[i].Name || again[i].H.NumPins() != cases[i].H.NumPins() {
			t.Fatalf("corpus case %d differs between identical seeds", i)
		}
	}
}

func ExampleExactKWay() {
	ex, _ := ExactKWay(Dumbbell(4, 1), 2, Balance{MinSize: 4})
	fmt.Println(ex.Cut)
	// Output: 1
}
