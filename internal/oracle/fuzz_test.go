package oracle

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dprp"
	"repro/internal/hypergraph"
	"repro/internal/partest"
	"repro/internal/partition"
)

// fuzzSeed folds fuzzer bytes into a deterministic RNG seed.
func fuzzSeed(data []byte) int64 {
	s := int64(1469598103934665603)
	for _, b := range data {
		s = s*1099511628211 + int64(b)
	}
	if s < 0 {
		s = -s
	}
	return s
}

// FuzzParseHMetis differentially checks the parser: any netlist it
// accepts must satisfy the production metric (partition.NetCut) and the
// oracle's independent recount (Hypergraph.CutSize) agreeing on an
// arbitrary bipartition — including weighted-format and duplicate-pin
// inputs.
func FuzzParseHMetis(f *testing.F) {
	f.Add("2 3\n1 2\n2 3\n")
	f.Add("1 2 10\n1 2\n3\n4\n")
	f.Add("3 4 11\n1 1 2\n2 2 3\n1 3 4\n1\n2\n3\n4\n")
	f.Add("2 3\n1 2 2 3\n3 3 1\n")
	f.Add("1 2 1\n5 1 2\n")
	f.Fuzz(func(t *testing.T, src string) {
		h, err := hypergraph.ReadHMetis(strings.NewReader(src))
		if err != nil {
			return // rejected input is fine; panics and bad accepts are not
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("accepted netlist fails validation: %v", err)
		}
		n := h.NumModules()
		if n < 2 {
			return
		}
		assign := make([]int, n)
		for i := range assign {
			assign[i] = i % 2
		}
		p := partition.MustNew(assign, 2)
		cut, err := h.CutSize(assign)
		if err != nil {
			t.Fatal(err)
		}
		if got := partition.NetCut(h, p); got != cut {
			t.Fatalf("NetCut %d != oracle CutSize %d", got, cut)
		}
	})
}

// FuzzPartition runs a fuzzer-chosen partitioner on a fuzzer-shaped
// random netlist and holds it to the oracle contract: the run succeeds,
// internal reported-value checks pass, the partition is feasible for the
// method's promise, and the cut is never below the brute-force optimum.
func FuzzPartition(f *testing.F) {
	f.Add([]byte{4, 3, 0, 0, 1})
	f.Add([]byte{8, 9, 1, 5, 2, 7})
	f.Add([]byte{2, 0, 2, 16, 3})
	f.Add([]byte{6, 11, 0, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		n := 4 + int(data[0])%7 // 4..10
		extra := int(data[1]) % 12
		maxPin := 2 + int(data[2])%3
		h := partest.RandomNetlist(n, extra, maxPin, fuzzSeed(data))
		env, err := newCaseEnv(h)
		if err != nil {
			t.Fatal(err)
		}
		rs := runners()
		r := rs[int(data[3])%len(rs)]
		res, err := r.run(env)
		if err != nil {
			t.Fatalf("%s failed on n=%d extra=%d maxPin=%d: %v", r.name, n, extra, maxPin, err)
		}
		if res == nil {
			return // method does not apply at this size
		}
		for _, pr := range res.problems {
			t.Errorf("%s: %s", r.name, pr)
		}
		if err := CheckFeasible(h, res.p, res.k, res.bal); err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		exact, err := env.exactFor(res.k, res.bal)
		if err != nil {
			t.Fatalf("%s: exact reference: %v", r.name, err)
		}
		cut, err := h.CutSize(res.p.Assign)
		if err != nil {
			t.Fatal(err)
		}
		if cut < exact.Cut {
			t.Fatalf("%s: heuristic cut %d below exact optimum %d", r.name, cut, exact.Cut)
		}
	})
}

// FuzzOrderSplit checks the ordering splitters against enumeration on
// fuzzer-shaped netlists, orderings and (optionally) module areas: the
// balanced sweep must match the per-position recount, and the DP must
// match the exact contiguous-split optimum.
func FuzzOrderSplit(f *testing.F) {
	f.Add([]byte{6, 1, 0, 3, 7})
	f.Add([]byte{9, 0, 1, 0, 1, 2, 3, 4, 5})
	f.Add([]byte{12, 2, 0})
	f.Add([]byte{5, 1, 1, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		n := 4 + int(data[0])%9 // 4..12
		k := 2 + int(data[1])%3
		if k > n {
			k = 2
		}
		withAreas := data[2]%2 == 1
		seed := fuzzSeed(data)
		h := partest.RandomNetlist(n, 3+int(data[0])%5, 3, seed)
		if withAreas {
			areas := make([]float64, n)
			for i := range areas {
				areas[i] = float64(1 + (int(data[i%len(data)])+i)%5)
			}
			if err := h.SetAreas(areas); err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(seed))
		order := rng.Perm(n)

		// Single balanced split vs per-position recount.
		var res dprp.SplitResult
		var err error
		if withAreas {
			res, err = dprp.BestBalancedSplitAreas(h, order, 0.45)
		} else {
			res, err = dprp.BestBalancedSplit(h, order, 0.45)
		}
		if err != nil {
			t.Fatalf("balanced split n=%d: %v", n, err)
		}
		want, err := ExactBestSplitCut(h, order, 0.45, withAreas)
		if err != nil {
			t.Fatalf("exact sweep n=%d: %v", n, err)
		}
		if int(res.Cut) != want {
			t.Fatalf("sweep cut %d, exact best split %d", int(res.Cut), want)
		}
		if err := CheckReportedCut(h, res.Partition, int(res.Cut)); err != nil {
			t.Fatal(err)
		}

		// DP vs exact contiguous-split optimum under the same window.
		var bal Balance
		if h.HasAreas() {
			loA, hiA := dprp.AreaBounds(h.TotalArea(), k)
			bal = Balance{MinArea: loA, MaxArea: hiA}
		} else {
			lo, hi := dpBounds(n, k)
			bal = Balance{MinSize: lo, MaxSize: hi}
		}
		dp, dpErr := dprp.Partition(h, order, dprp.Options{K: k})
		exact, _, exErr := ExactOrderSplit(h, order, k, bal)
		if dpErr != nil {
			if exErr == nil {
				t.Fatalf("DP found no feasible split but enumeration did (k=%d): %v", k, dpErr)
			}
			return
		}
		if exErr != nil {
			t.Fatalf("DP split succeeded but enumeration found none (k=%d): %v", k, exErr)
		}
		if math.Abs(dp.ScaledCost-exact) > 1e-9 {
			t.Fatalf("DP ScaledCost %.12g != exact %.12g (k=%d)", dp.ScaledCost, exact, k)
		}
	})
}
