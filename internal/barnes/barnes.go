// Package barnes reimplements Barnes' spectral partitioning algorithm
// [7], the earliest multiple-eigenvector method the paper surveys: the
// scaled indicator vectors x_h/√m_h of a k-way partition with prescribed
// sizes m_h are approximated by the k largest eigenvectors of the
// adjacency matrix, and the best rounding of eigenvectors to indicators
// is found exactly as a transportation problem.
//
// Maximizing Σ_h Σ_{i∈C_h} u_h[i]/√m_h over assignments with |C_h| = m_h
// is a balanced transportation instance: every vertex supplies one unit,
// cluster h demands m_h units, and shipping vertex i to cluster h costs
// −u_h[i]/√m_h. Network-flow integrality makes the rounding exact.
package barnes

import (
	"fmt"
	"math"

	"repro/internal/eigen"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/partition"
)

// Options configures the algorithm.
type Options struct {
	// Sizes prescribes the cluster sizes (must sum to n). Nil selects
	// near-equal sizes for K clusters.
	Sizes []int
	// K is the number of clusters when Sizes is nil.
	K int
	// SignFlips tries both orientations of each eigenvector (2^k cost
	// evaluations of the transportation problem are too many, so a
	// greedy per-vector orientation pass is used) — eigenvector signs are
	// arbitrary and the approximation is sign-sensitive.
	SignFlips bool
}

// Partition runs Barnes' algorithm on the graph.
func Partition(g *graph.Graph, opts Options) (*partition.Partition, error) {
	n := g.N()
	sizes := opts.Sizes
	if sizes == nil {
		k := opts.K
		if k < 2 {
			return nil, fmt.Errorf("barnes: k = %d, want >= 2", k)
		}
		sizes = nearEqualSizes(n, k)
	}
	k := len(sizes)
	if k < 2 {
		return nil, fmt.Errorf("barnes: need >= 2 clusters")
	}
	total := 0
	for _, m := range sizes {
		if m < 1 {
			return nil, fmt.Errorf("barnes: cluster size %d < 1", m)
		}
		total += m
	}
	if total != n {
		return nil, fmt.Errorf("barnes: sizes sum to %d, want n = %d", total, n)
	}

	u, err := largestAdjacencyEigenvectors(g, k)
	if err != nil {
		return nil, err
	}

	// Greedy sign orientation: flip each eigenvector if that increases
	// the attainable total affinity Σ_i max_h u_h[i] (a cheap proxy for
	// the transportation optimum).
	if opts.SignFlips {
		orientSigns(u)
	}

	supplies := make([]float64, n)
	for i := range supplies {
		supplies[i] = 1
	}
	demands := make([]float64, k)
	cost := make([][]float64, n)
	for i := 0; i < n; i++ {
		cost[i] = make([]float64, k)
		for h := 0; h < k; h++ {
			cost[i][h] = -u[h][i] / math.Sqrt(float64(sizes[h]))
		}
	}
	for h := 0; h < k; h++ {
		demands[h] = float64(sizes[h])
	}
	ship, _, err := flow.Transportation(supplies, demands, cost)
	if err != nil {
		return nil, err
	}
	assign := make([]int, n)
	for i := 0; i < n; i++ {
		best, bestV := 0, -1.0
		for h := 0; h < k; h++ {
			if ship[i][h] > bestV {
				bestV = ship[i][h]
				best = h
			}
		}
		assign[i] = best
	}
	return partition.New(assign, k)
}

// nearEqualSizes splits n into k sizes differing by at most one.
func nearEqualSizes(n, k int) []int {
	sizes := make([]int, k)
	base, rem := n/k, n%k
	for h := range sizes {
		sizes[h] = base
		if h < rem {
			sizes[h]++
		}
	}
	return sizes
}

// largestAdjacencyEigenvectors returns the k eigenvectors of the
// adjacency matrix with the largest eigenvalues, as rows.
func largestAdjacencyEigenvectors(g *graph.Graph, k int) ([][]float64, error) {
	n := g.N()
	if k > n {
		return nil, fmt.Errorf("barnes: k = %d exceeds n = %d", k, n)
	}
	// The k largest eigenpairs of A are the k smallest of c·I − A for any
	// c ≥ λ_max(A); c = max degree suffices (Gershgorin).
	var c float64
	for i := 0; i < n; i++ {
		if d := g.Degree(i); d > c {
			c = d
		}
	}
	op := &shiftedNegAdjacency{a: g.Adjacency(), c: c}
	dec, err := eigen.SmallestEigenpairs(op, k)
	if err != nil {
		return nil, err
	}
	u := make([][]float64, k)
	for j := 0; j < k; j++ {
		u[j] = dec.Vector(j)
	}
	return u, nil
}

// shiftedNegAdjacency applies x -> c·x − A·x.
type shiftedNegAdjacency struct {
	a *linalg.CSR
	c float64
}

func (s *shiftedNegAdjacency) Dim() int { return s.a.Dim() }

func (s *shiftedNegAdjacency) MatVec(x, y []float64) {
	s.a.MatVec(x, y)
	for i := range y {
		y[i] = s.c*x[i] - y[i]
	}
}

// orientSigns flips eigenvectors in place so their positive mass
// dominates, making the transportation costs favor coherent clusters.
func orientSigns(u [][]float64) {
	for _, vec := range u {
		var pos, neg float64
		for _, v := range vec {
			if v > 0 {
				pos += v
			} else {
				neg -= v
			}
		}
		if neg > pos {
			for i := range vec {
				vec[i] = -vec[i]
			}
		}
	}
}
