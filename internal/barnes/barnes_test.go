package barnes

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
)

func TestRecoversTwoClusters(t *testing.T) {
	g := graph.TwoClusters(12, 12, 2, 0.2, 3)
	p, err := Partition(g, Options{K: 2, SignFlips: true})
	if err != nil {
		t.Fatal(err)
	}
	sizes := p.Sizes()
	if sizes[0] != 12 || sizes[1] != 12 {
		t.Fatalf("sizes %v, want 12/12", sizes)
	}
	if cut := partition.CutWeight(g, p); cut > 0.4+1e-9 {
		t.Errorf("cut %v, want planted 0.4", cut)
	}
}

func TestThreeClusters(t *testing.T) {
	// Three 8-cliques weakly chained.
	var edges []graph.Edge
	for c := 0; c < 3; c++ {
		base := c * 8
		for i := 0; i < 8; i++ {
			for j := i + 1; j < 8; j++ {
				edges = append(edges, graph.Edge{U: base + i, V: base + j, W: 1})
			}
		}
	}
	edges = append(edges, graph.Edge{U: 7, V: 8, W: 0.05}, graph.Edge{U: 15, V: 16, W: 0.05})
	g := graph.MustNew(24, edges)
	p, err := Partition(g, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cut := partition.CutWeight(g, p); cut > 0.1+1e-9 {
		t.Errorf("cut %v, want the two 0.05 bridges", cut)
	}
	for c := 0; c < 3; c++ {
		first := p.Assign[c*8]
		for i := 1; i < 8; i++ {
			if p.Assign[c*8+i] != first {
				t.Fatalf("planted cluster %d split", c)
			}
		}
	}
}

func TestPrescribedSizes(t *testing.T) {
	g := graph.RandomConnected(20, 50, 7)
	p, err := Partition(g, Options{Sizes: []int{5, 7, 8}})
	if err != nil {
		t.Fatal(err)
	}
	s := p.Sizes()
	// The transportation demands pin the sizes exactly.
	got := map[int]int{}
	for _, v := range s {
		got[v]++
	}
	if got[5] != 1 || got[7] != 1 || got[8] != 1 {
		t.Errorf("sizes %v, want a permutation of 5/7/8", s)
	}
}

func TestValidation(t *testing.T) {
	g := graph.Path(6)
	if _, err := Partition(g, Options{K: 1}); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := Partition(g, Options{Sizes: []int{3, 2}}); err == nil {
		t.Error("sizes not summing to n accepted")
	}
	if _, err := Partition(g, Options{Sizes: []int{6, 0}}); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := Partition(g, Options{K: 7}); err == nil {
		t.Error("k>n accepted")
	}
}

func TestNearEqualSizes(t *testing.T) {
	s := nearEqualSizes(10, 3)
	if s[0]+s[1]+s[2] != 10 {
		t.Fatalf("sizes %v do not sum", s)
	}
	for _, v := range s {
		if v < 3 || v > 4 {
			t.Fatalf("sizes %v not near-equal", s)
		}
	}
}

func TestLargestAdjacencyEigenvectors(t *testing.T) {
	// For K_n the largest adjacency eigenvalue is n−1 with the constant
	// eigenvector.
	g := graph.Complete(8)
	u, err := largestAdjacencyEigenvectors(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	// All entries equal magnitude.
	first := u[0][0]
	for _, v := range u[0] {
		if diff := v - first; diff > 1e-8 || diff < -1e-8 {
			t.Fatalf("top eigenvector of K_n not constant: %v", u[0])
		}
	}
}
