// Package cluster builds hierarchical clusterings of netlists by
// recursive spectral bipartitioning with MELO orderings — the clustering
// application the paper's abstract highlights ("top-down hierarchical
// cell placement", netlist clustering [3][24]).
//
// The tree records every split; Flatten extracts a k-way partitioning by
// always splitting the largest frontier cluster (the RSB policy), and
// Dendrogram renders the hierarchy.
package cluster

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/dprp"
	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/melo"
	"repro/internal/partition"
)

// Options configures tree construction.
type Options struct {
	// LeafSize stops splitting clusters at or below this size
	// (default 8).
	LeafSize int
	// MaxDepth caps the recursion depth (default 16).
	MaxDepth int
	// D is the number of eigenvectors per MELO split (default 5; splits
	// happen on small sub-netlists, so a moderate d suffices).
	D int
	// Model is the clique model for sub-netlist graphs.
	Model graph.CliqueModel
}

// Node is one cluster in the hierarchy.
type Node struct {
	// Members are the original module indices in this cluster, sorted.
	Members []int
	// Cut is the ratio cut of the split that created the children
	// (0 for leaves).
	Cut float64
	// Left, Right are the sub-clusters (nil for leaves).
	Left, Right *Node
	// Depth is the node's distance from the root.
	Depth int
}

// IsLeaf reports whether the node was not split.
func (n *Node) IsLeaf() bool { return n.Left == nil }

// Leaves returns the leaf nodes left-to-right.
func (n *Node) Leaves() []*Node {
	if n.IsLeaf() {
		return []*Node{n}
	}
	return append(n.Left.Leaves(), n.Right.Leaves()...)
}

// Size returns the number of modules in the cluster.
func (n *Node) Size() int { return len(n.Members) }

// Build constructs the hierarchy for a netlist.
func Build(h *hypergraph.Hypergraph, opts Options) (*Node, error) {
	leaf := opts.LeafSize
	if leaf <= 0 {
		leaf = 8
	}
	if leaf < 2 {
		leaf = 2
	}
	depth := opts.MaxDepth
	if depth <= 0 {
		depth = 16
	}
	d := opts.D
	if d <= 0 {
		d = 5
	}
	all := make([]int, h.NumModules())
	for i := range all {
		all[i] = i
	}
	return build(h, all, 0, leaf, depth, d, opts.Model)
}

func build(h *hypergraph.Hypergraph, members []int, depth, leaf, maxDepth, d int, model graph.CliqueModel) (*Node, error) {
	node := &Node{Members: append([]int(nil), members...), Depth: depth}
	sort.Ints(node.Members)
	if len(members) <= leaf || depth >= maxDepth {
		return node, nil
	}
	left, right, cut, err := bisect(h, node.Members, d, model)
	if err != nil {
		return nil, err
	}
	if len(left) == 0 || len(right) == 0 {
		return node, nil // unsplittable; keep as leaf
	}
	node.Cut = cut
	node.Left, err = build(h, left, depth+1, leaf, maxDepth, d, model)
	if err != nil {
		return nil, err
	}
	node.Right, err = build(h, right, depth+1, leaf, maxDepth, d, model)
	if err != nil {
		return nil, err
	}
	return node, nil
}

// bisect splits one cluster by the best ratio-cut split of a MELO
// ordering of its induced sub-netlist, falling back to a component-based
// split when the sub-netlist is disconnected.
func bisect(h *hypergraph.Hypergraph, members []int, d int, model graph.CliqueModel) (left, right []int, cut float64, err error) {
	sub, back := h.Induce(members)
	g, err := graph.FromHypergraph(sub, model, 0)
	if err != nil {
		return nil, nil, 0, err
	}
	var orders [][]int
	if comps := g.Components(); len(comps) > 1 {
		var order []int
		for _, c := range comps {
			order = append(order, c...)
		}
		orders = append(orders, order)
	} else {
		want := d + 1
		if want > g.N() {
			want = g.N()
		}
		dec, derr := eigen.SmallestEigenpairs(g.Laplacian(), want)
		if derr != nil {
			return nil, nil, 0, fmt.Errorf("cluster: eigensolve on %d modules: %v", len(members), derr)
		}
		// Best of all four MELO weighting schemes (the paper's
		// best-of-orderings protocol); the eigensolve dominates, so the
		// extra orderings are nearly free.
		for s := melo.Scheme(0); s < melo.NumSchemes; s++ {
			mo := melo.NewOptions()
			mo.D = d
			mo.Scheme = s
			res, merr := melo.Order(g, dec, mo)
			if merr != nil {
				return nil, nil, 0, merr
			}
			orders = append(orders, res.Order)
		}
	}
	var best dprp.SplitResult
	var bestOrder []int
	for i, order := range orders {
		// Quarter-balance keeps the hierarchy meaningful: unrestricted
		// ratio cut on small noisy sub-netlists peels single modules.
		split, serr := dprp.BestRatioCutSplitBalanced(sub, order, 0.25)
		if serr != nil {
			return nil, nil, 0, serr
		}
		if i == 0 || split.Cut < best.Cut {
			best = split
			bestOrder = order
		}
	}
	for i, v := range bestOrder {
		orig := back[v]
		if i < best.Pos {
			left = append(left, orig)
		} else {
			right = append(right, orig)
		}
	}
	return left, right, best.Cut, nil
}

// Flatten extracts a k-way partitioning from the tree by repeatedly
// splitting the largest frontier cluster. If the tree has fewer than k
// splittable nodes the result has fewer clusters; the returned partition
// always uses exactly the number of clusters produced.
func (n *Node) Flatten(h *hypergraph.Hypergraph, k int) (*partition.Partition, error) {
	if k < 1 {
		return nil, fmt.Errorf("cluster: k = %d", k)
	}
	frontier := []*Node{n}
	for len(frontier) < k {
		// Largest splittable frontier node.
		best := -1
		for i, nd := range frontier {
			if nd.IsLeaf() {
				continue
			}
			if best == -1 || nd.Size() > frontier[best].Size() {
				best = i
			}
		}
		if best == -1 {
			break
		}
		nd := frontier[best]
		frontier = append(frontier[:best], frontier[best+1:]...)
		frontier = append(frontier, nd.Left, nd.Right)
	}
	assign := make([]int, h.NumModules())
	for c, nd := range frontier {
		for _, m := range nd.Members {
			assign[m] = c
		}
	}
	return partition.New(assign, len(frontier))
}

// Dendrogram writes an indented rendering of the tree.
func (n *Node) Dendrogram(w io.Writer, names []string) {
	var walk func(nd *Node)
	walk = func(nd *Node) {
		indent := ""
		for i := 0; i < nd.Depth; i++ {
			indent += "  "
		}
		if nd.IsLeaf() {
			label := fmt.Sprintf("%d modules", nd.Size())
			if names != nil && nd.Size() <= 6 {
				label = ""
				for i, m := range nd.Members {
					if i > 0 {
						label += " "
					}
					label += names[m]
				}
			}
			fmt.Fprintf(w, "%s- leaf: %s\n", indent, label)
			return
		}
		fmt.Fprintf(w, "%s+ %d modules (split ratio cut %.4g)\n", indent, nd.Size(), nd.Cut)
		walk(nd.Left)
		walk(nd.Right)
	}
	walk(n)
}
