package cluster

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// plantedNetlist builds k clusters of the given size with dense internal
// 2-pin nets and one bridge net between consecutive clusters.
func plantedNetlist(t *testing.T, k, size int, seed int64) *hypergraph.Hypergraph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := hypergraph.NewBuilder()
	b.AddModules(k * size)
	for c := 0; c < k; c++ {
		base := c * size
		for i := 0; i < size-1; i++ {
			_ = b.AddNet("", base+i, base+i+1)
		}
		for e := 0; e < 2*size; e++ {
			i, j := rng.Intn(size), rng.Intn(size)
			if i != j {
				_ = b.AddNet("", base+i, base+j)
			}
		}
	}
	for c := 0; c+1 < k; c++ {
		_ = b.AddNet("", c*size+rng.Intn(size), (c+1)*size+rng.Intn(size))
	}
	return b.Build()
}

func TestBuildCoversAllModules(t *testing.T) {
	h := plantedNetlist(t, 3, 10, 1)
	tree, err := Build(h, Options{LeafSize: 5, Model: graph.PartitioningSpecific})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() != 30 {
		t.Fatalf("root size %d", tree.Size())
	}
	seen := make([]bool, 30)
	total := 0
	for _, leaf := range tree.Leaves() {
		for _, m := range leaf.Members {
			if seen[m] {
				t.Fatalf("module %d in two leaves", m)
			}
			seen[m] = true
			total++
		}
		if leaf.Size() > 30 {
			t.Error("leaf larger than root")
		}
	}
	if total != 30 {
		t.Fatalf("leaves cover %d of 30 modules", total)
	}
}

func TestFlattenRecoversPlantedClusters(t *testing.T) {
	k, size := 4, 12
	h := plantedNetlist(t, k, size, 3)
	tree, err := Build(h, Options{LeafSize: size, Model: graph.PartitioningSpecific})
	if err != nil {
		t.Fatal(err)
	}
	p, err := tree.Flatten(h, k)
	if err != nil {
		t.Fatal(err)
	}
	if p.K != k {
		t.Fatalf("K = %d, want %d", p.K, k)
	}
	if cut := partition.NetCut(h, p); cut > k-1 {
		t.Errorf("net cut %d, want <= %d bridges", cut, k-1)
	}
	for c := 0; c < k; c++ {
		first := p.Assign[c*size]
		for i := 1; i < size; i++ {
			if p.Assign[c*size+i] != first {
				t.Errorf("planted cluster %d split", c)
				break
			}
		}
	}
}

func TestLeafSizeRespected(t *testing.T) {
	h := plantedNetlist(t, 2, 16, 5)
	tree, err := Build(h, Options{LeafSize: 4, Model: graph.Standard})
	if err != nil {
		t.Fatal(err)
	}
	for _, leaf := range tree.Leaves() {
		// Leaves stop splitting at <= LeafSize but a split of a 5-module
		// cluster can produce leaves up to 4; parents larger than
		// LeafSize must have been split (unless depth-capped).
		if leaf.Size() > 4 && leaf.Depth < 16 {
			t.Errorf("leaf of %d modules above LeafSize", leaf.Size())
		}
	}
}

func TestMaxDepth(t *testing.T) {
	h := plantedNetlist(t, 2, 20, 7)
	tree, err := Build(h, Options{LeafSize: 2, MaxDepth: 2, Model: graph.Standard})
	if err != nil {
		t.Fatal(err)
	}
	for _, leaf := range tree.Leaves() {
		if leaf.Depth > 2 {
			t.Errorf("leaf at depth %d > MaxDepth 2", leaf.Depth)
		}
	}
}

func TestFlattenFewerClustersThanRequested(t *testing.T) {
	h := plantedNetlist(t, 2, 4, 9)
	tree, err := Build(h, Options{LeafSize: 8, Model: graph.Standard})
	if err != nil {
		t.Fatal(err)
	}
	// LeafSize 8 on 8 modules: root is a leaf, so k=4 flattens to 1.
	p, err := tree.Flatten(h, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.K > 4 {
		t.Errorf("K = %d", p.K)
	}
	if _, err := tree.Flatten(h, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestDendrogram(t *testing.T) {
	h := plantedNetlist(t, 2, 6, 11)
	tree, err := Build(h, Options{LeafSize: 6, Model: graph.Standard})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tree.Dendrogram(&buf, h.Names)
	out := buf.String()
	if !strings.Contains(out, "split ratio cut") || !strings.Contains(out, "leaf") {
		t.Errorf("dendrogram output unexpected:\n%s", out)
	}
}

func TestDisconnectedNetlist(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddModules(12)
	for i := 0; i < 5; i++ {
		_ = b.AddNet("", i, i+1)
	}
	for i := 6; i < 11; i++ {
		_ = b.AddNet("", i, i+1)
	}
	h := b.Build()
	tree, err := Build(h, Options{LeafSize: 6, Model: graph.Standard})
	if err != nil {
		t.Fatal(err)
	}
	if tree.IsLeaf() {
		t.Fatal("disconnected netlist should split")
	}
	if tree.Cut != 0 {
		t.Errorf("component split should have zero cut, got %v", tree.Cut)
	}
}
