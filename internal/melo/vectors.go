package melo

import (
	"errors"
	"math"

	"repro/internal/linalg"
	"repro/internal/vecpart"
)

// OrderVectors constructs a MELO ordering directly from a prepared
// vector-partitioning instance (vectors already scaled, e.g. by
// vecpart.FromDecomposition): greedily insert the vector that best
// extends the running subset vector under the chosen weighting scheme.
//
// Unlike Order, this variant needs no graph and performs no adaptive H
// re-estimation — the instance's scaling is taken as given. It is the
// natural entry point when experimenting with alternative scalings
// (MinSum, custom H) or with vectors from other sources.
func OrderVectors(v *vecpart.Vectors, scheme Scheme) (*Result, error) {
	n := v.N()
	if n == 0 {
		return nil, errors.New("melo: empty vector instance")
	}
	d := v.D()
	res := &Result{
		Order:     make([]int, 0, n),
		Objective: make([]float64, 0, n),
		H:         make([]float64, 0, n),
		D:         d,
		Scheme:    scheme,
	}
	sum := make([]float64, d)
	placed := make([]bool, n)

	for t := 0; t < n; t++ {
		yNorm := linalg.Norm2(sum)
		best := -1
		bestScore := math.Inf(-1)
		for i := 0; i < n; i++ {
			if placed[i] {
				continue
			}
			row := v.Row(i)
			ns := linalg.NormSq(row)
			var score float64
			if t == 0 {
				score = ns
			} else {
				dot := linalg.Dot(sum, row)
				switch scheme {
				case SchemeCosine:
					den := yNorm * math.Sqrt(ns)
					if den < 1e-300 {
						score = ns
					} else {
						score = dot / den
					}
				case SchemeNormalizedGain:
					den := math.Sqrt(ns)
					if den < 1e-300 {
						score = 0
					} else {
						score = (2*dot + ns) / den
					}
				case SchemeProjection:
					score = dot
				default: // SchemeGain
					score = 2*dot + ns
				}
			}
			if score > bestScore {
				bestScore = score
				best = i
			}
		}
		placed[best] = true
		linalg.Axpy(1, v.Row(best), sum)
		res.Order = append(res.Order, best)
		res.Objective = append(res.Objective, linalg.NormSq(sum))
		res.H = append(res.H, v.H)
	}
	return res, nil
}
