package melo

import (
	"errors"
	"math"

	"repro/internal/linalg"
	"repro/internal/parallel"
	"repro/internal/vecpart"
)

// OrderVectors constructs a MELO ordering directly from a prepared
// vector-partitioning instance (vectors already scaled, e.g. by
// vecpart.FromDecomposition): greedily insert the vector that best
// extends the running subset vector under the chosen weighting scheme.
//
// Unlike Order, this variant needs no graph and performs no adaptive H
// re-estimation — the instance's scaling is taken as given. It is the
// natural entry point when experimenting with alternative scalings
// (MinSum, custom H) or with vectors from other sources.
func OrderVectors(v *vecpart.Vectors, scheme Scheme) (*Result, error) {
	return OrderVectorsWorkers(v, scheme, 0)
}

// OrderVectorsWorkers is OrderVectors with an explicit bound on the
// goroutines used by the per-candidate gain scan (0 selects the
// process default, 1 forces serial). The scan reduces shard winners in
// index order with the serial loop's first-wins tie-break, so the
// ordering is byte-identical at every worker count.
func OrderVectorsWorkers(v *vecpart.Vectors, scheme Scheme, workers int) (*Result, error) {
	n := v.N()
	if n == 0 {
		return nil, errors.New("melo: empty vector instance")
	}
	d := v.D()
	res := &Result{
		Order:     make([]int, 0, n),
		Objective: make([]float64, 0, n),
		H:         make([]float64, 0, n),
		D:         d,
		Scheme:    scheme,
	}
	sum := make([]float64, d)
	placed := make([]bool, n)

	workers = parallel.Workers(workers)
	type shardBest struct {
		idx int
		s   float64
	}
	shards := make([]shardBest, parallel.NumChunks(workers, n, scanGrain))

	for t := 0; t < n; t++ {
		yNorm := linalg.Norm2(sum)
		first := t == 0
		parallel.For(workers, n, scanGrain, func(ch, lo, hi int) {
			b := shardBest{idx: -1, s: math.Inf(-1)}
			for i := lo; i < hi; i++ {
				if placed[i] {
					continue
				}
				row := v.Row(i)
				ns := linalg.NormSq(row)
				var score float64
				if first {
					score = ns
				} else {
					dot := linalg.Dot(sum, row)
					switch scheme {
					case SchemeCosine:
						den := yNorm * math.Sqrt(ns)
						if den < 1e-300 {
							score = ns
						} else {
							score = dot / den
						}
					case SchemeNormalizedGain:
						den := math.Sqrt(ns)
						if den < 1e-300 {
							score = 0
						} else {
							score = (2*dot + ns) / den
						}
					case SchemeProjection:
						score = dot
					default: // SchemeGain
						score = 2*dot + ns
					}
				}
				if score > b.s {
					b.s = score
					b.idx = i
				}
			}
			shards[ch] = b
		})
		best := -1
		bestScore := math.Inf(-1)
		for _, b := range shards {
			if b.idx >= 0 && b.s > bestScore {
				bestScore = b.s
				best = b.idx
			}
		}
		placed[best] = true
		linalg.Axpy(1, v.Row(best), sum)
		res.Order = append(res.Order, best)
		res.Objective = append(res.Objective, linalg.NormSq(sum))
		res.H = append(res.H, v.H)
	}
	return res, nil
}
