package melo

import (
	"testing"

	"repro/internal/dprp"
	"repro/internal/eigen"
	"repro/internal/graph"
)

func TestCandidateWindowIsPermutation(t *testing.T) {
	g := graph.RandomConnected(120, 300, 3)
	dec := decompose(t, g, 6)
	opts := NewOptions()
	opts.D = 6
	opts.CandidateWindow = 16
	opts.RecomputeEvery = 20
	res, err := Order(g, dec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !isPermutation(res.Order, g.N()) {
		t.Fatal("windowed ordering is not a permutation")
	}
}

func TestCandidateWindowQualityClose(t *testing.T) {
	// The windowed variant trades a little quality for speed; on a
	// clustered instance its balanced cut should stay within 2x of the
	// exact greedy (usually identical).
	g := graph.TwoClusters(30, 30, 3, 0.25, 7)
	dec := decompose(t, g, 5)

	exact := NewOptions()
	exact.D = 5
	resExact, err := Order(g, dec, exact)
	if err != nil {
		t.Fatal(err)
	}
	windowed := exact
	windowed.CandidateWindow = 10
	windowed.RecomputeEvery = 15
	resWin, err := Order(g, dec, windowed)
	if err != nil {
		t.Fatal(err)
	}

	se, err := dprp.BestBalancedSplitGraph(g, resExact.Order, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := dprp.BestBalancedSplitGraph(g, resWin.Order, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Cut > 2*se.Cut+1e-9 {
		t.Errorf("windowed cut %v much worse than exact %v", sw.Cut, se.Cut)
	}
	t.Logf("exact cut %v, windowed cut %v", se.Cut, sw.Cut)
}

func TestCandidateWindowTinyWindow(t *testing.T) {
	// Degenerate window of 1 must still produce a valid permutation
	// (falls back to re-ranking whenever the window empties).
	g := graph.RandomConnected(40, 90, 9)
	dec := decompose(t, g, 3)
	opts := NewOptions()
	opts.D = 3
	opts.CandidateWindow = 1
	opts.RecomputeEvery = 7
	res, err := Order(g, dec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !isPermutation(res.Order, g.N()) {
		t.Fatal("window=1 ordering is not a permutation")
	}
}

func BenchmarkCandidateWindow(b *testing.B) {
	g := graph.RandomConnected(800, 2400, 5)
	dec, err := decomposeB(g, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("exact", func(b *testing.B) {
		opts := NewOptions()
		for i := 0; i < b.N; i++ {
			if _, err := Order(g, dec, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("window64", func(b *testing.B) {
		opts := NewOptions()
		opts.CandidateWindow = 64
		for i := 0; i < b.N; i++ {
			if _, err := Order(g, dec, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func decomposeB(g *graph.Graph, d int) (*eigen.Decomposition, error) {
	return eigen.SmallestEigenpairs(g.Laplacian(), d+1)
}
