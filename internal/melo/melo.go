// Package melo implements MELO (Multiple-Eigenvector Linear Orderings),
// the paper's partitioning heuristic.
//
// MELO works on the vector-partitioning view: each vertex v_i is a
// d-dimensional vector y_i with coordinates sqrt(H − λ_j)·U[i][j]. A
// cluster S has subset vector Y_S = Σ_{i∈S} y_i, and growing S to maximize
// ‖Y_S‖² is (for d = n) exactly minimizing the cut between S and V∖S.
// MELO greedily inserts the vertex whose vector best extends Y_S under a
// weighting scheme; the insertion order is a vertex ordering that is then
// split into partitionings (all splits for 2-way, DP-RP for multi-way).
//
// The constant H is chosen so the truncated objective is unbiased
// (Σ_{j>d}(H−λ_j) = 0) and is re-estimated adaptively as the cluster grows
// using the cluster's true cut degree — the "recompute H using C_1" step
// of the paper's Figure 2.
package melo

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// scanGrain is the minimum candidates per shard of a parallel gain
// scan; each candidate costs O(d) flops, so finer shards would be all
// scheduling overhead.
const scanGrain = 256

// Scheme selects the weighting function that ranks candidate vectors at
// each MELO step. The source scan garbles the paper's exact formulas; the
// four schemes below span the design axes the paper describes (magnitude
// vs direction; see DESIGN.md §5). All are evaluated against the current
// subset vector Y and candidate vector y.
type Scheme int

const (
	// SchemeGain maximizes the objective increase ‖Y+y‖² − ‖Y‖² =
	// 2·Y·y + ‖y‖² (pure magnitude gain). Scheme #1.
	SchemeGain Scheme = iota
	// SchemeCosine maximizes the directional cosine Y·y/(‖Y‖·‖y‖)
	// (pure direction, the similarity measure of KP [10]). Scheme #2.
	SchemeCosine
	// SchemeNormalizedGain maximizes (2·Y·y + ‖y‖²)/‖y‖, the gain per
	// unit of candidate magnitude. Scheme #3.
	SchemeNormalizedGain
	// SchemeProjection maximizes the raw projection Y·y. Scheme #4.
	SchemeProjection
)

// NumSchemes is the number of weighting schemes.
const NumSchemes = 4

// String returns the scheme's paper-style label.
func (s Scheme) String() string {
	switch s {
	case SchemeGain:
		return "#1 gain"
	case SchemeCosine:
		return "#2 cosine"
	case SchemeNormalizedGain:
		return "#3 normalized gain"
	case SchemeProjection:
		return "#4 projection"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Options configures an ordering construction.
type Options struct {
	// D is the number of non-trivial eigenvectors to use (the paper's d;
	// its main experiments use d = 10). Required.
	D int
	// Scheme is the candidate weighting scheme.
	Scheme Scheme
	// AdaptiveH re-estimates H from the growing cluster's true cut degree
	// (the paper's Figure 2 Step 6). When false, the initial
	// truncation-balanced H is kept throughout.
	AdaptiveH bool
	// RecomputeEvery controls how often (in insertions) H is re-estimated
	// when AdaptiveH is set. The paper re-ranks "periodically (e.g.,
	// every 100 iterations)". Default 100.
	RecomputeEvery int
	// Start forces the ordering to start from this vertex; -1 (default
	// via NewOptions) selects the vertex with the largest vector
	// magnitude.
	Start int
	// CandidateWindow enables the paper's candidate-list speedup: only
	// the top-ranked unplaced vectors are scanned each step, with the
	// full ranking recomputed every RecomputeEvery insertions ("the
	// remaining vectors are re-ranked periodically (e.g., every 100
	// iterations) and T is updated"). 0 scans every unplaced vector
	// every step (exact greedy).
	CandidateWindow int
	// Workers bounds the goroutines the per-candidate gain evaluation
	// may use. 0 selects the process default (parallel.Limit()); 1
	// forces serial. The scan reduces shard results in index order
	// with the same first-wins tie-break as the serial loop, so the
	// constructed ordering is byte-identical at every setting.
	Workers int
}

// NewOptions returns Options with the paper's defaults (d = 10, scheme #1,
// adaptive H every 100 insertions, automatic start vertex).
func NewOptions() Options {
	return Options{D: 10, Scheme: SchemeGain, AdaptiveH: true, RecomputeEvery: 100, Start: -1}
}

// Result is a constructed ordering plus diagnostics.
type Result struct {
	// Order is the vertex ordering (a permutation of 0..n-1).
	Order []int
	// Objective[t] is ‖Y_S‖² after inserting Order[t].
	Objective []float64
	// H holds the value of H in effect when each vertex was inserted.
	H []float64
	// D and Scheme echo the options used.
	D      int
	Scheme Scheme
}

// Order constructs a MELO ordering of g's vertices. dec must hold at least
// D+1 eigenpairs of g's Laplacian (the trivial constant eigenvector plus D
// informative ones); compute it with eigen.SmallestEigenpairs(g.Laplacian(),
// D+1). The complexity is O(D·n²).
func Order(g *graph.Graph, dec *eigen.Decomposition, opts Options) (*Result, error) {
	return OrderCtx(context.Background(), g, dec, opts)
}

// OrderCtx is Order with cooperative cancellation: ctx is checked at
// every insertion boundary, so a cancelled context aborts within one
// greedy step, returning ctx.Err().
func OrderCtx(ctx context.Context, g *graph.Graph, dec *eigen.Decomposition, opts Options) (*Result, error) {
	n := g.N()
	if n == 0 {
		return nil, errors.New("melo: empty graph")
	}
	if opts.D < 1 {
		return nil, fmt.Errorf("melo: D = %d, want >= 1", opts.D)
	}
	// Skip the trivial eigenvector (λ_1 = 0, constant): it contributes the
	// same amount to every candidate and carries no ordering information.
	d := opts.D
	if d > dec.D()-1 {
		d = dec.D() - 1
	}
	if d > n-1 {
		d = n - 1
	}
	if d < 1 {
		return nil, fmt.Errorf("melo: decomposition has %d pairs, need >= 2", dec.D())
	}
	// Candidate-evaluation counting stays in serial code (shard closures
	// must not share a counter — see the parallelism model): each scan
	// knows its candidate count up front from the placed tally.
	ctx, span := trace.Start(ctx, "ordering.melo",
		trace.Int("n", n), trace.Int("d", opts.D), trace.Str("scheme", opts.Scheme.String()))
	var evals int64
	placedN := 0
	defer func() {
		trace.Add(ctx, "melo.candidates", evals)
		span.Annotate(trace.Int64("evals", evals))
		span.End()
	}()

	lam := dec.Values[1 : d+1]
	// U rows: raw (unscaled) eigenvector coordinates per vertex, sliced
	// from one n×d backing array (n separate row allocations would
	// dominate the setup cost for large netlists and scatter the rows
	// across the heap; the scan kernels walk them row by row).
	ubuf := make([]float64, n*d)
	u := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := ubuf[i*d : (i+1)*d : (i+1)*d]
		for j := 0; j < d; j++ {
			row[j] = dec.Vectors.At(i, j+1)
		}
		u[i] = row
	}

	traceQ := g.TotalDegree()
	h0 := chooseH(traceQ, dec.Values[:d+1], n)
	H := h0

	recomputeEvery := opts.RecomputeEvery
	if recomputeEvery <= 0 {
		recomputeEvery = 100
	}

	// State: raw projections of the cluster indicator onto each used
	// eigenvector (p[j] = Σ_{i∈S} U[i][j]), so that
	// Y_S·y_i = Σ_j (H−λ_j)·p[j]·U[i][j] and
	// ‖Y_S‖² = Σ_j (H−λ_j)·p[j]² can be evaluated under the *current* H.
	p := make([]float64, d)
	placed := make([]bool, n)
	// connToS[i] = total weight of edges from i into S; cutS = E(S) =
	// X_SᵀQX_S, maintained incrementally for the adaptive-H estimate.
	connToS := make([]float64, n)
	cutS := 0.0
	// sumProj2 = Σ_{j≤d} p[j]²; sumLamProj2 = Σ_{j≤d} λ_j p[j]².
	res := &Result{Order: make([]int, 0, n), Objective: make([]float64, 0, n), H: make([]float64, 0, n), D: d, Scheme: opts.Scheme}

	weights := make([]float64, d) // (H − λ_j), refreshed when H changes
	refreshWeights := func() {
		for j := 0; j < d; j++ {
			w := H - lam[j]
			if w < 0 {
				w = 0
			}
			weights[j] = w
		}
	}
	refreshWeights()

	normSqUnder := func(row []float64) float64 {
		var s float64
		for j, v := range row {
			s += weights[j] * v * v
		}
		return s
	}
	dotUnder := func(row []float64) float64 {
		var s float64
		for j, v := range row {
			s += weights[j] * p[j] * v
		}
		return s
	}

	score := func(i int, first bool, yNorm float64) float64 {
		ns := normSqUnder(u[i])
		if first {
			// Seed with the largest vector (the strongest global
			// signal); all schemes agree on the seed.
			return ns
		}
		dot := dotUnder(u[i])
		switch opts.Scheme {
		case SchemeGain:
			return 2*dot + ns
		case SchemeCosine:
			den := yNorm * math.Sqrt(ns)
			if den < 1e-300 {
				return ns
			}
			return dot / den
		case SchemeNormalizedGain:
			den := math.Sqrt(ns)
			if den < 1e-300 {
				return 0
			}
			return (2*dot + ns) / den
		case SchemeProjection:
			return dot
		default:
			return 2*dot + ns
		}
	}
	yNorm := func() float64 {
		yNormSq := 0.0
		for j := 0; j < d; j++ {
			yNormSq += weights[j] * p[j] * p[j]
		}
		return math.Sqrt(yNormSq)
	}

	workers := parallel.Workers(opts.Workers)

	// pickAll scans every unplaced vector (exact greedy). The scan is
	// sharded: each shard keeps its first-best candidate, and shards
	// are reduced in index order with a strict comparison — exactly the
	// serial loop's lowest-index-wins tie-break, so the winner is
	// identical at every worker count.
	type shardBest struct {
		idx int
		s   float64
	}
	shards := make([]shardBest, parallel.NumChunks(workers, n, scanGrain))
	pickAll := func(first bool) int {
		evals += int64(n - placedN)
		yn := yNorm()
		parallel.For(workers, n, scanGrain, func(ch, lo, hi int) {
			b := shardBest{idx: -1, s: math.Inf(-1)}
			for i := lo; i < hi; i++ {
				if placed[i] {
					continue
				}
				if s := score(i, first, yn); s > b.s {
					b.s = s
					b.idx = i
				}
			}
			shards[ch] = b
		})
		best := -1
		bestScore := math.Inf(-1)
		for _, b := range shards {
			if b.idx >= 0 && b.s > bestScore {
				bestScore = b.s
				best = b.idx
			}
		}
		return best
	}

	// Candidate list T (the paper's periodic re-ranking speedup): keep
	// the top CandidateWindow unplaced vectors by score, re-rank the
	// whole remainder every recomputeEvery insertions, and between
	// re-rankings replenish T after each insertion with the next vector
	// of the stale ranking ("the next ranked vector not in S or T is
	// added to T").
	candidates := make([]int, 0, opts.CandidateWindow) // active window (unplaced)
	ranking := make([]int, 0, n)                       // full stale ranking; ptr = next replenishment
	ptr := 0
	scores := make([]float64, n) // scratch for refreshCandidates
	refreshCandidates := func() {
		evals += int64(n - placedN)
		w := opts.CandidateWindow
		yn := yNorm()
		// Score every unplaced vector in parallel (disjoint writes, one
		// serial evaluation per candidate: worker-invariant), then rank
		// serially so the sort sees identical input at every setting.
		parallel.For(workers, n, scanGrain, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				if !placed[i] {
					scores[i] = score(i, false, yn)
				}
			}
		})
		// Rank the unplaced indices in place (no per-refresh candidate
		// structs): ranking is filled index-ascending, and the stable
		// sort on descending score preserves that order on ties —
		// identical to the old build-and-sort over (idx, score) pairs.
		ranking = ranking[:0]
		for i := 0; i < n; i++ {
			if !placed[i] {
				ranking = append(ranking, i)
			}
		}
		sort.Stable(&rankedDesc{idx: ranking, score: scores})
		if w > len(ranking) {
			w = len(ranking)
		}
		candidates = append(candidates[:0], ranking[:w]...)
		ptr = w
	}
	replenish := func(justPlaced int) {
		// Drop the placed vector from the window, then top it up from
		// the stale ranking.
		for i, c := range candidates {
			if c == justPlaced {
				candidates[i] = candidates[len(candidates)-1]
				candidates = candidates[:len(candidates)-1]
				break
			}
		}
		for ptr < len(ranking) && len(candidates) < opts.CandidateWindow {
			next := ranking[ptr]
			ptr++
			if !placed[next] {
				candidates = append(candidates, next)
			}
		}
	}
	pickWindow := func() int {
		evals += int64(len(candidates))
		yn := yNorm()
		best := -1
		bestScore := math.Inf(-1)
		for _, i := range candidates {
			if placed[i] {
				continue
			}
			if s := score(i, false, yn); s > bestScore {
				bestScore = s
				best = i
			}
		}
		return best
	}

	windowed := opts.CandidateWindow > 0
	for t := 0; t < n; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var v int
		switch {
		case t == 0 && opts.Start >= 0 && opts.Start < n:
			v = opts.Start
		case t == 0 || !windowed:
			v = pickAll(t == 0)
		default:
			if (t-1)%recomputeEvery == 0 || allPlaced(candidates, placed) {
				refreshCandidates()
			}
			v = pickWindow()
			if v == -1 {
				refreshCandidates()
				v = pickWindow()
			}
			if v == -1 {
				v = pickAll(false)
			}
		}
		placed[v] = true
		placedN++
		if windowed {
			replenish(v)
		}
		for j := 0; j < d; j++ {
			p[j] += u[v][j]
		}
		cutS += g.Degree(v) - 2*connToS[v]
		for _, half := range g.Adj(v) {
			connToS[half.To] += half.W
		}
		res.Order = append(res.Order, v)
		res.H = append(res.H, H)
		obj := 0.0
		for j := 0; j < d; j++ {
			obj += weights[j] * p[j] * p[j]
		}
		res.Objective = append(res.Objective, obj)

		if opts.AdaptiveH && (t+1)%recomputeEvery == 0 && t+1 < n {
			if newH, ok := adaptiveH(lam, p, cutS, t+1, d, n); ok {
				H = newH
				refreshWeights()
			}
		}
	}
	return res, nil
}

// allPlaced reports whether every candidate has already been placed.
func allPlaced(candidates []int, placed []bool) bool {
	for _, i := range candidates {
		if !placed[i] {
			return false
		}
	}
	return true
}

// chooseH mirrors vecpart.ChooseH for the non-trivial eigenvalues used
// here: the mean of the unused eigenvalues, computed from trace(Q).
// lamAll includes the trivial λ_1 ≈ 0 plus the d used eigenvalues.
func chooseH(traceQ float64, lamAll []float64, n int) float64 {
	used := 0.0
	for _, l := range lamAll {
		used += l
	}
	dUsed := len(lamAll)
	if dUsed >= n {
		return lamAll[dUsed-1]
	}
	h := (traceQ - used) / float64(n-dUsed)
	if last := lamAll[dUsed-1]; h < last {
		h = last
	}
	return h
}

// adaptiveH re-estimates H from the current cluster S (the paper's
// "recompute H using C_1"): choose H so the contribution of the *unused*
// eigenvectors to this specific cluster vanishes,
//
//	Σ_{j>d} (H − λ_j)·α_j² = 0  ⟹  H = Σ_{j>d} λ_j α_j² / Σ_{j>d} α_j²
//
// where α_j is the projection of S's indicator onto eigenvector j. Both
// sums are computable without the unused eigenvectors:
// Σ_j α_j² = |S| and Σ_j λ_j α_j² = E(S) (the cluster's cut degree).
func adaptiveH(lam, p []float64, cutS float64, sizeS, d, n int) (float64, bool) {
	var proj2, lamProj2 float64
	for j := 0; j < d; j++ {
		proj2 += p[j] * p[j]
		lamProj2 += lam[j] * p[j] * p[j]
	}
	// Include the trivial eigenvector's projection: α_0 = |S|/√n, λ_0 = 0.
	proj2 += float64(sizeS) * float64(sizeS) / float64(n)
	denom := float64(sizeS) - proj2
	num := cutS - lamProj2
	if denom <= 1e-9 || num <= 0 {
		return 0, false // cluster fully captured by used eigenvectors
	}
	h := num / denom
	if h < lam[d-1] {
		// Keep the MaxSum scaling real: H may not drop below λ_{d+1}.
		h = lam[d-1]
	}
	return h, true
}

// rankedDesc sorts an index slice by descending score; used with
// sort.Stable so equal scores keep their index-ascending insertion
// order (the serial tie-break every worker count must reproduce).
type rankedDesc struct {
	idx   []int
	score []float64
}

func (r *rankedDesc) Len() int           { return len(r.idx) }
func (r *rankedDesc) Less(a, b int) bool { return r.score[r.idx[a]] > r.score[r.idx[b]] }
func (r *rankedDesc) Swap(a, b int)      { r.idx[a], r.idx[b] = r.idx[b], r.idx[a] }
