package melo

import (
	"math"
	"testing"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/vecpart"
)

func vectorInstance(t *testing.T, g *graph.Graph, d int) *vecpart.Vectors {
	t.Helper()
	dec, err := eigen.SmallestEigenpairs(g.Laplacian(), d+1)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	// Drop the trivial eigenvector.
	trimmed := make([]float64, d)
	copy(trimmed, dec.Values[1:d+1])
	H := vecpart.ChooseH(g.TotalDegree(), dec.Values[:d+1], n)
	full, err := dec.Truncate(d + 1)
	if err != nil {
		t.Fatal(err)
	}
	v, err := vecpart.FromDecomposition(full, d+1, vecpart.MaxSum, H)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestOrderVectorsIsPermutation(t *testing.T) {
	g := graph.RandomConnected(50, 120, 5)
	v := vectorInstance(t, g, 6)
	for s := Scheme(0); s < NumSchemes; s++ {
		res, err := OrderVectors(v, s)
		if err != nil {
			t.Fatalf("scheme %v: %v", s, err)
		}
		if !isPermutation(res.Order, g.N()) {
			t.Errorf("scheme %v: not a permutation", s)
		}
	}
}

func TestOrderVectorsSeparatesClusters(t *testing.T) {
	g := graph.TwoClusters(16, 16, 2, 0.2, 9)
	v := vectorInstance(t, g, 5)
	res, err := OrderVectors(v, SchemeGain)
	if err != nil {
		t.Fatal(err)
	}
	side := res.Order[0] < 16
	mixed := false
	for _, u := range res.Order[:16] {
		if (u < 16) != side {
			mixed = true
			break
		}
	}
	if mixed {
		t.Error("first half of the ordering mixes planted clusters")
	}
}

func TestOrderVectorsObjectiveConsistent(t *testing.T) {
	// The recorded objective must equal ‖Σ placed vectors‖² at each step.
	g := graph.RandomConnected(20, 50, 3)
	v := vectorInstance(t, g, 4)
	res, err := OrderVectors(v, SchemeGain)
	if err != nil {
		t.Fatal(err)
	}
	sum := make([]float64, v.D())
	for tstep, vtx := range res.Order {
		row := v.Row(vtx)
		for j := range sum {
			sum[j] += row[j]
		}
		var ns float64
		for _, x := range sum {
			ns += x * x
		}
		if math.Abs(ns-res.Objective[tstep]) > 1e-9*(1+ns) {
			t.Fatalf("step %d: recorded %v, actual %v", tstep, res.Objective[tstep], ns)
		}
	}
}

func TestOrderVectorsEmpty(t *testing.T) {
	v := &vecpart.Vectors{Y: linalg.NewDense(0, 0)}
	if _, err := OrderVectors(v, SchemeGain); err == nil {
		t.Error("empty instance accepted")
	}
}
