package melo

import (
	"math"
	"testing"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/partition"
	"repro/internal/vecpart"
)

func vectorInstance(t *testing.T, g *graph.Graph, d int) *vecpart.Vectors {
	t.Helper()
	dec, err := eigen.SmallestEigenpairs(g.Laplacian(), d+1)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	// Drop the trivial eigenvector.
	trimmed := make([]float64, d)
	copy(trimmed, dec.Values[1:d+1])
	H := vecpart.ChooseH(g.TotalDegree(), dec.Values[:d+1], n)
	full, err := dec.Truncate(d + 1)
	if err != nil {
		t.Fatal(err)
	}
	v, err := vecpart.FromDecomposition(full, d+1, vecpart.MaxSum, H)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestOrderVectorsIsPermutation(t *testing.T) {
	g := graph.RandomConnected(50, 120, 5)
	v := vectorInstance(t, g, 6)
	for s := Scheme(0); s < NumSchemes; s++ {
		res, err := OrderVectors(v, s)
		if err != nil {
			t.Fatalf("scheme %v: %v", s, err)
		}
		if !isPermutation(res.Order, g.N()) {
			t.Errorf("scheme %v: not a permutation", s)
		}
	}
}

func TestOrderVectorsSeparatesClusters(t *testing.T) {
	g := graph.TwoClusters(16, 16, 2, 0.2, 9)
	v := vectorInstance(t, g, 5)
	res, err := OrderVectors(v, SchemeGain)
	if err != nil {
		t.Fatal(err)
	}
	side := res.Order[0] < 16
	mixed := false
	for _, u := range res.Order[:16] {
		if (u < 16) != side {
			mixed = true
			break
		}
	}
	if mixed {
		t.Error("first half of the ordering mixes planted clusters")
	}
}

func TestOrderVectorsObjectiveConsistent(t *testing.T) {
	// The recorded objective must equal ‖Σ placed vectors‖² at each step.
	g := graph.RandomConnected(20, 50, 3)
	v := vectorInstance(t, g, 4)
	res, err := OrderVectors(v, SchemeGain)
	if err != nil {
		t.Fatal(err)
	}
	sum := make([]float64, v.D())
	for tstep, vtx := range res.Order {
		row := v.Row(vtx)
		for j := range sum {
			sum[j] += row[j]
		}
		var ns float64
		for _, x := range sum {
			ns += x * x
		}
		if math.Abs(ns-res.Objective[tstep]) > 1e-9*(1+ns) {
			t.Fatalf("step %d: recorded %v, actual %v", tstep, res.Objective[tstep], ns)
		}
	}
}

func TestOrderVectorsEmpty(t *testing.T) {
	v := &vecpart.Vectors{Y: linalg.NewDense(0, 0)}
	if _, err := OrderVectors(v, SchemeGain); err == nil {
		t.Error("empty instance accepted")
	}
}

// fullDecomposition returns all n eigenpairs of g's Laplacian — the
// exact d = n setting of the paper's Corollaries 5 and 6.
func fullDecomposition(t *testing.T, g *graph.Graph) *eigen.Decomposition {
	t.Helper()
	dec, err := eigen.SymEig(g.LaplacianDense())
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

// TestCorollary6VectorNorms: under the MinSum scaling with d = n,
// ‖y_iⁿ‖² = deg(v_i) for every vertex — the vector magnitudes encode
// the degrees exactly (Corollary 6).
func TestCorollary6VectorNorms(t *testing.T) {
	for _, seed := range []int64{3, 5} {
		g := graph.RandomConnected(40, 100, seed)
		dec := fullDecomposition(t, g)
		v, err := vecpart.FromDecomposition(dec, g.N(), vecpart.MinSum, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.N(); i++ {
			ns := linalg.NormSq(v.Row(i))
			deg := g.Degree(i)
			if math.Abs(ns-deg) > 1e-8*(1+deg) {
				t.Errorf("seed %d: ‖y_%d‖² = %v, deg = %v", seed, i, ns, deg)
			}
		}
	}
}

// TestMinSumNormsMonotoneInD: each vertex's truncated MinSum norm
// ‖y_i^d‖² is a sum of nonnegative per-coordinate terms λ_j·U[i][j]², so
// it is nondecreasing in d and reaches deg(v_i) at d = n. More
// eigenvectors can only move the vectors closer to their exact geometry.
func TestMinSumNormsMonotoneInD(t *testing.T) {
	g := graph.RandomConnected(30, 70, 7)
	dec := fullDecomposition(t, g)
	n := g.N()
	prev := make([]float64, n)
	for d := 1; d <= n; d++ {
		v, err := vecpart.FromDecomposition(dec, d, vecpart.MinSum, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			ns := linalg.NormSq(v.Row(i))
			if ns < prev[i]-1e-10 {
				t.Fatalf("vertex %d: norm decreased from %v to %v at d=%d", i, prev[i], ns, d)
			}
			prev[i] = ns
		}
	}
	for i := 0; i < n; i++ {
		deg := g.Degree(i)
		if math.Abs(prev[i]-deg) > 1e-8*(1+deg) {
			t.Errorf("vertex %d: ‖y_i^n‖² = %v, deg = %v", i, prev[i], deg)
		}
	}
}

// TestMinSumObjectiveMonotoneInD: for a fixed partition, the truncated
// MinSum objective Σ_h ‖Y_h^d‖² is nondecreasing in d (each coordinate
// adds λ_j·(Y_h[j])² ≥ 0) and equals f(P_k) exactly at d = n
// (Corollary 5) — the monotone lower-bound ladder that justifies using
// as many eigenvectors as the solver can afford.
func TestMinSumObjectiveMonotoneInD(t *testing.T) {
	g := graph.RandomConnected(32, 80, 11)
	dec := fullDecomposition(t, g)
	n := g.N()
	for _, k := range []int{2, 4} {
		assign := make([]int, n)
		for i := range assign {
			assign[i] = (i*7 + k) % k
		}
		p := partition.MustNew(assign, k)
		f := partition.F(g, p)
		prev := math.Inf(-1)
		for d := 1; d <= n; d++ {
			v, err := vecpart.FromDecomposition(dec, d, vecpart.MinSum, 0)
			if err != nil {
				t.Fatal(err)
			}
			obj := v.SumSquaredSubsets(p)
			if obj < prev-1e-8 {
				t.Fatalf("K=%d: objective decreased from %v to %v at d=%d", k, prev, obj, d)
			}
			if obj > f+1e-8*(1+f) {
				t.Fatalf("K=%d d=%d: truncated objective %v exceeds f = %v", k, d, obj, f)
			}
			prev = obj
		}
		if math.Abs(prev-f) > 1e-8*(1+f) {
			t.Errorf("K=%d: Σ‖Y_h^n‖² = %v, f(P_k) = %v", k, prev, f)
		}
	}
}
