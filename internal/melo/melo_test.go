package melo

import (
	"math"
	"testing"

	"repro/internal/dprp"
	"repro/internal/eigen"
	"repro/internal/graph"
)

func decompose(t *testing.T, g *graph.Graph, d int) *eigen.Decomposition {
	t.Helper()
	dec, err := eigen.SmallestEigenpairs(g.Laplacian(), d+1)
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

func isPermutation(order []int, n int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

func TestOrderIsPermutation(t *testing.T) {
	g := graph.RandomConnected(60, 120, 7)
	dec := decompose(t, g, 8)
	for s := Scheme(0); s < NumSchemes; s++ {
		opts := NewOptions()
		opts.D = 8
		opts.Scheme = s
		res, err := Order(g, dec, opts)
		if err != nil {
			t.Fatalf("scheme %v: %v", s, err)
		}
		if !isPermutation(res.Order, g.N()) {
			t.Errorf("scheme %v: ordering is not a permutation", s)
		}
		if len(res.Objective) != g.N() || len(res.H) != g.N() {
			t.Errorf("scheme %v: diagnostics have wrong length", s)
		}
	}
}

// TestPathGraphD1ReproducesFiedlerOrder: with a single eigenvector the
// greedy gain scheme must walk the path monotonically — MELO with d = 1 is
// spectral bipartitioning's linear ordering.
func TestPathGraphD1ReproducesFiedlerOrder(t *testing.T) {
	n := 24
	g := graph.Path(n)
	dec := decompose(t, g, 1)
	opts := NewOptions()
	opts.D = 1
	opts.AdaptiveH = false
	res, err := Order(g, dec, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The ordering must be the path order or its reverse.
	forward, backward := true, true
	for i, v := range res.Order {
		if v != i {
			forward = false
		}
		if v != n-1-i {
			backward = false
		}
	}
	if !forward && !backward {
		t.Errorf("d=1 path ordering = %v, want monotone walk", res.Order)
	}
}

// TestTwoClustersSeparated: on a graph of two dense clusters joined by
// weak bridges, MELO must place one cluster contiguously first, so the
// best balanced split recovers the planted cut.
func TestTwoClustersSeparated(t *testing.T) {
	g := graph.TwoClusters(20, 20, 3, 0.25, 11)
	dec := decompose(t, g, 6)
	opts := NewOptions()
	opts.D = 6
	res, err := Order(g, dec, opts)
	if err != nil {
		t.Fatal(err)
	}
	split, err := dprp.BestBalancedSplitGraph(g, res.Order, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	// Planted cut: 3 bridges of weight 0.25.
	if split.Cut > 0.75+1e-9 {
		t.Errorf("balanced cut %v, want planted 0.75", split.Cut)
	}
	sideOfFirst := res.Order[0] < 20
	for _, v := range res.Order[:20] {
		if (v < 20) != sideOfFirst {
			t.Errorf("first 20 ordering positions mix clusters")
			break
		}
	}
}

// TestMoreEigenvectorsHelp is the paper's headline claim at unit-test
// scale: across several random clustered instances, the best balanced
// bipartition from d = 5 orderings is on average at least as good as from
// d = 1, and strictly better somewhere.
func TestMoreEigenvectorsHelp(t *testing.T) {
	var sum1, sum5 float64
	better, worse := 0, 0
	for seed := int64(0); seed < 6; seed++ {
		g := graph.RandomConnected(80, 200, seed)
		dec := decompose(t, g, 5)
		var cuts [2]float64
		for idx, d := range []int{1, 5} {
			opts := NewOptions()
			opts.D = d
			res, err := Order(g, dec, opts)
			if err != nil {
				t.Fatal(err)
			}
			split, err := dprp.BestBalancedSplitGraph(g, res.Order, 0.45)
			if err != nil {
				t.Fatal(err)
			}
			cuts[idx] = split.Cut
		}
		sum1 += cuts[0]
		sum5 += cuts[1]
		if cuts[1] < cuts[0]-1e-9 {
			better++
		}
		if cuts[1] > cuts[0]+1e-9 {
			worse++
		}
	}
	if sum5 > sum1 {
		t.Errorf("d=5 total cut %v worse than d=1 total %v", sum5, sum1)
	}
	if better == 0 {
		t.Error("d=5 never strictly improved on d=1 across six instances")
	}
	t.Logf("d=1 total %.3f, d=5 total %.3f (better on %d, worse on %d of 6)", sum1, sum5, better, worse)
}

func TestAdaptiveHRecorded(t *testing.T) {
	g := graph.RandomConnected(150, 400, 5)
	dec := decompose(t, g, 4)
	opts := NewOptions()
	opts.D = 4
	opts.AdaptiveH = true
	opts.RecomputeEvery = 25
	res, err := Order(g, dec, opts)
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	for i := 1; i < len(res.H); i++ {
		if res.H[i] != res.H[0] {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("adaptive H never changed on a 150-vertex instance")
	}
	// H must never drop below λ_{d+1} (the largest used eigenvalue).
	lamD := dec.Values[opts.D]
	for i, h := range res.H {
		if h < lamD-1e-9 {
			t.Fatalf("H[%d] = %v below λ_d = %v", i, h, lamD)
		}
	}
	// Fixed-H run must keep H constant.
	opts.AdaptiveH = false
	res2, err := Order(g, dec, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res2.H {
		if h != res2.H[0] {
			t.Fatal("fixed-H run changed H")
		}
	}
}

func TestObjectiveIsFinalTotal(t *testing.T) {
	// After the last insertion S = V, so Y_S is the full sum: under the
	// raw projections, Y_V projects only onto the trivial eigenvector,
	// which MELO excludes — the final objective must therefore be ~0
	// relative to intermediate values (all non-trivial eigenvectors are
	// orthogonal to the all-ones indicator).
	g := graph.RandomConnected(40, 100, 13)
	dec := decompose(t, g, 5)
	opts := NewOptions()
	opts.D = 5
	opts.AdaptiveH = false
	res, err := Order(g, dec, opts)
	if err != nil {
		t.Fatal(err)
	}
	peak := 0.0
	for _, o := range res.Objective {
		if o > peak {
			peak = o
		}
	}
	final := res.Objective[len(res.Objective)-1]
	if final > 1e-6*peak {
		t.Errorf("final objective %v, want ~0 (peak %v)", final, peak)
	}
}

func TestOrderArgumentValidation(t *testing.T) {
	g := graph.Path(10)
	dec := decompose(t, g, 3)
	if _, err := Order(g, dec, Options{D: 0}); err == nil {
		t.Error("D=0 accepted")
	}
	empty := graph.MustNew(0, nil)
	if _, err := Order(empty, dec, NewOptions()); err == nil {
		t.Error("empty graph accepted")
	}
	// Decomposition with a single pair cannot supply non-trivial vectors.
	small, err := dec.Truncate(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Order(g, small, NewOptions()); err == nil {
		t.Error("decomposition with only the trivial pair accepted")
	}
}

func TestDClampedToAvailablePairs(t *testing.T) {
	g := graph.Path(12)
	dec := decompose(t, g, 4) // 5 pairs
	opts := NewOptions()
	opts.D = 50 // more than available: clamp to dec.D()-1 = 4
	res, err := Order(g, dec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.D != 4 {
		t.Errorf("clamped D = %d, want 4", res.D)
	}
}

func TestStartVertexOption(t *testing.T) {
	g := graph.RandomConnected(30, 60, 21)
	dec := decompose(t, g, 3)
	opts := NewOptions()
	opts.D = 3
	opts.Start = 17
	res, err := Order(g, dec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Order[0] != 17 {
		t.Errorf("Start=17 ignored, ordering begins at %d", res.Order[0])
	}
}

func TestSchemesProduceDifferentOrderings(t *testing.T) {
	g := graph.RandomConnected(50, 150, 33)
	dec := decompose(t, g, 6)
	orders := make([][]int, NumSchemes)
	for s := Scheme(0); s < NumSchemes; s++ {
		opts := NewOptions()
		opts.D = 6
		opts.Scheme = s
		res, err := Order(g, dec, opts)
		if err != nil {
			t.Fatal(err)
		}
		orders[s] = res.Order
	}
	distinct := 0
	for s := 1; s < NumSchemes; s++ {
		same := true
		for i := range orders[s] {
			if orders[s][i] != orders[0][i] {
				same = false
				break
			}
		}
		if !same {
			distinct++
		}
	}
	if distinct == 0 {
		t.Error("all schemes produced the identical ordering on a random graph")
	}
}

func TestSchemeString(t *testing.T) {
	names := map[Scheme]string{
		SchemeGain:           "#1 gain",
		SchemeCosine:         "#2 cosine",
		SchemeNormalizedGain: "#3 normalized gain",
		SchemeProjection:     "#4 projection",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("Scheme %d String = %q, want %q", s, s.String(), want)
		}
	}
	if Scheme(9).String() == "" {
		t.Error("unknown scheme should format")
	}
}

func TestChooseHMeanOfUnused(t *testing.T) {
	g := graph.Path(10)
	dec := decompose(t, g, 9) // all 10 pairs
	full := dec.Values
	traceQ := g.TotalDegree()
	for d := 2; d < 10; d++ {
		h := chooseH(traceQ, full[:d], 10)
		var mean float64
		for j := d; j < 10; j++ {
			mean += full[j]
		}
		mean /= float64(10 - d)
		if math.Abs(h-mean) > 1e-9 {
			t.Errorf("d=%d: chooseH = %v, want mean of unused %v", d, h, mean)
		}
	}
}
