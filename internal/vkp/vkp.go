// Package vkp implements a direct vector k-partitioning heuristic — the
// research direction the paper's conclusion singles out: "our
// experimental results suggest that more sophisticated vector
// partitioning heuristics hold much promise".
//
// Instead of flattening the vectors into a single linear ordering (MELO),
// vkp grows all k clusters simultaneously in the vector space:
//
//  1. Seed each cluster with one vector, chosen greedily to maximize
//     mutual separation (most-orthogonal-first, as in KP's prototypes).
//  2. Repeatedly take the best (vector, cluster) pair by objective gain
//     Δ = ‖Y_c + y‖² − ‖Y_c‖², respecting cluster capacity.
//  3. Refine with single-vector moves between clusters while the total
//     objective Σ_h ‖Y_h‖² increases and sizes stay within bounds.
//
// Under the MaxSum scaling, maximizing Σ_h ‖Y_h‖² is (exactly at d = n,
// approximately below) minimizing the paper's cut objective f(P_k).
package vkp

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/partition"
	"repro/internal/vecpart"
)

// Objective selects what the heuristic optimizes over the subset vectors.
type Objective int

const (
	// MaxSum maximizes Σ_h ‖Y_h‖² — under the MaxSum scaling with d = n
	// this is exactly min-cut (the paper's central reduction).
	MaxSum Objective = iota
	// MaxMin maximizes min_h ‖Y_h‖² — the paper's §3 objective for
	// minimum Scaled Cost ("the corresponding partitioning objective is
	// to maximize g(S_k) = min_h ‖Y_h‖²").
	MaxMin
)

// Options configures the heuristic.
type Options struct {
	// K is the number of clusters, >= 2.
	K int
	// MinSize and MaxSize bound cluster sizes; zero values default to
	// n/(2k) and ceil(2n/k) (the DP-RP restricted-partitioning bounds,
	// for comparability).
	MinSize, MaxSize int
	// RefinePasses caps the improvement passes (default 8).
	RefinePasses int
	// Objective selects MaxSum (default) or MaxMin.
	Objective Objective
}

// Result is a vector k-partitioning solution.
type Result struct {
	Partition *partition.Partition
	// Objective is Σ_h ‖Y_h‖² of the final solution.
	Objective float64
	// Moves counts refinement moves applied.
	Moves int
}

// Partition runs the heuristic on a MaxSum vector instance.
func Partition(v *vecpart.Vectors, opts Options) (*Result, error) {
	n := v.N()
	k := opts.K
	if k < 2 {
		return nil, fmt.Errorf("vkp: k = %d, want >= 2", k)
	}
	if k > n {
		return nil, fmt.Errorf("vkp: k = %d exceeds n = %d", k, n)
	}
	lo, hi := opts.MinSize, opts.MaxSize
	if lo <= 0 {
		lo = n / (2 * k)
		if lo < 1 {
			lo = 1
		}
	}
	if hi <= 0 {
		hi = (2*n + k - 1) / k
	}
	if hi > n {
		hi = n
	}
	if lo*k > n || hi*k < n {
		return nil, fmt.Errorf("vkp: bounds [%d,%d] infeasible for n=%d k=%d", lo, hi, n, k)
	}
	passes := opts.RefinePasses
	if passes <= 0 {
		passes = 8
	}
	d := v.D()

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	sizes := make([]int, k)
	sums := make([][]float64, k)
	for c := range sums {
		sums[c] = make([]float64, d)
	}

	place := func(i, c int) {
		assign[i] = c
		sizes[c]++
		linalg.Axpy(1, v.Row(i), sums[c])
	}

	// 1. Seeds: first the largest vector, then repeatedly the vector
	// minimizing its maximum |cosine| to the chosen seeds.
	seeds := chooseSeeds(v, k)
	for c, s := range seeds {
		place(s, c)
	}

	gain := func(i, c int) float64 {
		row := v.Row(i)
		return 2*linalg.Dot(sums[c], row) + linalg.NormSq(row)
	}

	if opts.Objective == MaxMin {
		return partitionMaxMin(v, assign, sizes, sums, lo, hi, passes, gain)
	}

	// 2. Greedy assignment by a lazy max-heap of (gain, vector, cluster)
	// candidates. Stale entries are re-evaluated on pop (gains only
	// change when a cluster's subset vector changes, so we stamp each
	// entry with the cluster's version).
	version := make([]int, k)
	pq := &candHeap{}
	for i := 0; i < n; i++ {
		if assign[i] != -1 {
			continue
		}
		for c := 0; c < k; c++ {
			heap.Push(pq, cand{gain: gain(i, c), vec: i, cluster: c, version: 0})
		}
	}
	remaining := n - k
	for remaining > 0 {
		if pq.Len() == 0 {
			return nil, fmt.Errorf("vkp: ran out of candidates with %d vectors unplaced", remaining)
		}
		top := heap.Pop(pq).(cand)
		if assign[top.vec] != -1 {
			continue
		}
		if sizes[top.cluster] >= hi {
			continue // cluster full; other entries for this vector remain
		}
		// Capacity feasibility: placing here must leave enough room for
		// the rest to satisfy minimums. With uniform bounds this reduces
		// to the max-size check plus global feasibility, which holds.
		if top.version != version[top.cluster] {
			heap.Push(pq, cand{gain: gain(top.vec, top.cluster), vec: top.vec, cluster: top.cluster, version: version[top.cluster]})
			continue
		}
		place(top.vec, top.cluster)
		version[top.cluster]++
		remaining--
	}

	// Ensure minimum sizes (the greedy can starve a cluster): move the
	// best-gain vectors from oversized clusters.
	for {
		deficit := -1
		for c := 0; c < k; c++ {
			if sizes[c] < lo {
				deficit = c
				break
			}
		}
		if deficit == -1 {
			break
		}
		bestI, bestGain := -1, math.Inf(-1)
		for i := 0; i < n; i++ {
			c := assign[i]
			if c == deficit || sizes[c] <= lo {
				continue
			}
			if g := moveGain(v, sums, i, c, deficit); g > bestGain {
				bestGain = g
				bestI = i
			}
		}
		if bestI == -1 {
			return nil, fmt.Errorf("vkp: cannot satisfy minimum size %d", lo)
		}
		applyMove(v, assign, sizes, sums, bestI, deficit)
	}

	// 3. Refinement: best single-vector move per step, while positive.
	moves := 0
	for pass := 0; pass < passes; pass++ {
		improved := false
		for i := 0; i < n; i++ {
			from := assign[i]
			if sizes[from] <= lo {
				continue
			}
			bestC, bestG := -1, 1e-12
			for c := 0; c < k; c++ {
				if c == from || sizes[c] >= hi {
					continue
				}
				if g := moveGain(v, sums, i, from, c); g > bestG {
					bestG = g
					bestC = c
				}
			}
			if bestC >= 0 {
				applyMove(v, assign, sizes, sums, i, bestC)
				moves++
				improved = true
			}
		}
		if !improved {
			break
		}
	}

	p, err := partition.New(assign, k)
	if err != nil {
		return nil, err
	}
	var obj float64
	for c := 0; c < k; c++ {
		obj += linalg.NormSq(sums[c])
	}
	return &Result{Partition: p, Objective: obj, Moves: moves}, nil
}

// moveGain returns the objective change from moving vector i from cluster
// `from` to cluster `to`:
//
//	Δ = ‖Y_to + y‖² − ‖Y_to‖² + ‖Y_from − y‖² − ‖Y_from‖²
//	  = 2·y·(Y_to − Y_from) + 2‖y‖².
func moveGain(v *vecpart.Vectors, sums [][]float64, i, from, to int) float64 {
	row := v.Row(i)
	return 2*(linalg.Dot(sums[to], row)-linalg.Dot(sums[from], row)) + 2*linalg.NormSq(row)
}

func applyMove(v *vecpart.Vectors, assign, sizes []int, sums [][]float64, i, to int) {
	from := assign[i]
	row := v.Row(i)
	linalg.Axpy(-1, row, sums[from])
	linalg.Axpy(1, row, sums[to])
	sizes[from]--
	sizes[to]++
	assign[i] = to
}

// chooseSeeds picks k mutually separated vectors: the largest first, then
// repeatedly the vector minimizing its maximum |cosine| to chosen seeds.
func chooseSeeds(v *vecpart.Vectors, k int) []int {
	n := v.N()
	norms := make([]float64, n)
	first, bestNorm := 0, -1.0
	for i := 0; i < n; i++ {
		norms[i] = linalg.Norm2(v.Row(i))
		if norms[i] > bestNorm {
			bestNorm = norms[i]
			first = i
		}
	}
	seeds := []int{first}
	worst := make([]float64, n)
	update := func(s int) {
		for i := 0; i < n; i++ {
			den := norms[i] * norms[s]
			var c float64
			if den > 1e-300 {
				c = math.Abs(linalg.Dot(v.Row(i), v.Row(s))) / den
			}
			if c > worst[i] {
				worst[i] = c
			}
		}
	}
	update(first)
	for len(seeds) < k {
		next, nextWorst := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if containsInt(seeds, i) {
				continue
			}
			if worst[i] < nextWorst {
				nextWorst = worst[i]
				next = i
			}
		}
		seeds = append(seeds, next)
		update(next)
	}
	return seeds
}

func containsInt(a []int, x int) bool {
	for _, v := range a {
		if v == x {
			return true
		}
	}
	return false
}

// cand is a (gain, vector, cluster) heap entry; version stamps detect
// stale gains lazily.
type cand struct {
	gain    float64
	vec     int
	cluster int
	version int
}

type candHeap []cand

func (h candHeap) Len() int            { return len(h) }
func (h candHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(cand)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
