package vkp

import (
	"math"
	"testing"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/vecpart"
)

func instance(t *testing.T, g *graph.Graph, d int) *vecpart.Vectors {
	t.Helper()
	n := g.N()
	if d > n {
		d = n
	}
	dec, err := eigen.SmallestEigenpairs(g.Laplacian(), n)
	if err != nil {
		t.Fatal(err)
	}
	H := vecpart.ChooseH(g.TotalDegree(), dec.Values[:d], n)
	trunc, err := dec.Truncate(d)
	if err != nil {
		t.Fatal(err)
	}
	v, err := vecpart.FromDecomposition(trunc, d, vecpart.MaxSum, H)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestRecoverTwoClusters(t *testing.T) {
	g := graph.TwoClusters(15, 15, 2, 0.25, 7)
	v := instance(t, g, 8)
	res, err := Partition(v, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cut := partition.CutWeight(g, res.Partition); cut > 0.5+1e-9 {
		t.Errorf("cut %v, want planted 0.5", cut)
	}
}

func TestObjectiveMatchesMetric(t *testing.T) {
	g := graph.RandomConnected(40, 100, 3)
	v := instance(t, g, 6)
	res, err := Partition(v, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	direct := v.SumSquaredSubsets(res.Partition)
	if math.Abs(direct-res.Objective) > 1e-7*(1+math.Abs(direct)) {
		t.Errorf("reported %v, metric %v", res.Objective, direct)
	}
}

func TestSizeBounds(t *testing.T) {
	g := graph.RandomConnected(60, 150, 9)
	v := instance(t, g, 5)
	res, err := Partition(v, Options{K: 4, MinSize: 12, MaxSize: 18})
	if err != nil {
		t.Fatal(err)
	}
	for c, s := range res.Partition.Sizes() {
		if s < 12 || s > 18 {
			t.Errorf("cluster %d size %d outside [12,18]", c, s)
		}
	}
	// Default bounds.
	res2, err := Partition(v, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for c, s := range res2.Partition.Sizes() {
		if s < 10 || s > 40 {
			t.Errorf("default bounds violated: cluster %d size %d", c, s)
		}
	}
}

// TestNearOptimalWithFullSpectrum: with d = n and an exhaustively
// solvable instance, the heuristic should land close to the brute-force
// vector-partitioning optimum.
func TestNearOptimalWithFullSpectrum(t *testing.T) {
	var got, opt float64
	for seed := int64(0); seed < 4; seed++ {
		g := graph.RandomConnected(10, 18, seed)
		v := instance(t, g, 10)
		res, err := Partition(v, Options{K: 2, MinSize: 1, MaxSize: 9})
		if err != nil {
			t.Fatal(err)
		}
		_, best := vecpart.BestVectorPartition(v, 2)
		if res.Objective > best+1e-9 {
			t.Fatalf("seed %d: objective %v exceeds optimum %v", seed, res.Objective, best)
		}
		got += res.Objective
		opt += best
	}
	if got < 0.97*opt {
		t.Errorf("total objective %v below 97%% of optimum %v", got, opt)
	}
}

// TestRefinementIsLocalOptimum: after Partition returns, no single move
// within the bounds may improve the objective.
func TestRefinementIsLocalOptimum(t *testing.T) {
	g := graph.RandomConnected(30, 80, 11)
	v := instance(t, g, 5)
	res, err := Partition(v, Options{K: 3, RefinePasses: 50})
	if err != nil {
		t.Fatal(err)
	}
	assign := res.Partition.Assign
	sizes := res.Partition.Sizes()
	n := v.N()
	lo := n / (2 * 3)
	hi := (2*n + 2) / 3
	base := v.SumSquaredSubsets(res.Partition)
	for i := 0; i < n; i++ {
		from := assign[i]
		if sizes[from]-1 < lo {
			continue
		}
		for c := 0; c < 3; c++ {
			if c == from || sizes[c]+1 > hi {
				continue
			}
			trial := append([]int(nil), assign...)
			trial[i] = c
			p := partition.MustNew(trial, 3)
			if v.SumSquaredSubsets(p) > base+1e-6*(1+base) {
				t.Fatalf("move of %d from %d to %d improves the objective", i, from, c)
			}
		}
	}
}

func TestValidation(t *testing.T) {
	g := graph.Path(10)
	v := instance(t, g, 3)
	if _, err := Partition(v, Options{K: 1}); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := Partition(v, Options{K: 11}); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := Partition(v, Options{K: 3, MinSize: 4, MaxSize: 4}); err == nil {
		t.Error("infeasible bounds accepted")
	}
}

func TestMaxMinObjective(t *testing.T) {
	g := graph.RandomConnected(40, 110, 7)
	v := instance(t, g, 6)
	res, err := Partition(v, Options{K: 4, Objective: MaxMin, RefinePasses: 30})
	if err != nil {
		t.Fatal(err)
	}
	for c, s := range res.Partition.Sizes() {
		if s == 0 {
			t.Errorf("cluster %d empty", c)
		}
	}
	// No single feasible move may raise the minimum subset norm.
	n := v.N()
	k := 4
	lo := n / (2 * k)
	hi := (2*n + k - 1) / k
	sizes := res.Partition.Sizes()
	base, _ := v.MinMaxSquaredSubset(res.Partition)
	for i := 0; i < n; i++ {
		from := res.Partition.Assign[i]
		if sizes[from]-1 < lo {
			continue
		}
		for c := 0; c < k; c++ {
			if c == from || sizes[c]+1 > hi {
				continue
			}
			trial := append([]int(nil), res.Partition.Assign...)
			trial[i] = c
			p := partition.MustNew(trial, k)
			if m, _ := v.MinMaxSquaredSubset(p); m > base+1e-6*(1+base) {
				t.Fatalf("move %d: %d -> %d raises the minimum (%v > %v)", i, from, c, m, base)
			}
		}
	}
}

func TestMaxMinBeatsMaxSumOnMinNorm(t *testing.T) {
	// The MaxMin objective should (weakly) produce a larger minimum
	// subset norm than MaxSum on the same instance, most of the time.
	better := 0
	for seed := int64(0); seed < 5; seed++ {
		g := graph.RandomConnected(36, 100, seed+30)
		v := instance(t, g, 5)
		ms, err := Partition(v, Options{K: 3})
		if err != nil {
			t.Fatal(err)
		}
		mm, err := Partition(v, Options{K: 3, Objective: MaxMin, RefinePasses: 20})
		if err != nil {
			t.Fatal(err)
		}
		minSum, _ := v.MinMaxSquaredSubset(ms.Partition)
		minMin, _ := v.MinMaxSquaredSubset(mm.Partition)
		if minMin >= minSum-1e-9 {
			better++
		}
	}
	if better < 3 {
		t.Errorf("MaxMin won the min-norm comparison only %d/5 times", better)
	}
}

func TestSeedsAreDistinct(t *testing.T) {
	g := graph.RandomConnected(25, 60, 2)
	v := instance(t, g, 4)
	seeds := chooseSeeds(v, 5)
	seen := map[int]bool{}
	for _, s := range seeds {
		if seen[s] {
			t.Fatalf("duplicate seed %d", s)
		}
		seen[s] = true
	}
}
