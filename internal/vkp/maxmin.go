package vkp

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/partition"
	"repro/internal/vecpart"
)

// partitionMaxMin implements the MaxMin objective (paper §3's minimum
// Scaled Cost surrogate): after seeding, each remaining vector is handed
// to the currently weakest cluster (smallest ‖Y_h‖²) as the best-gain
// addition to it, then single-vector moves that raise the minimum are
// applied.
//
// The seeds and the scratch state (assign/sizes/sums) arrive from
// Partition, which has already validated the options.
func partitionMaxMin(v *vecpart.Vectors, assign, sizes []int, sums [][]float64, lo, hi, passes int, gain func(i, c int) float64) (*Result, error) {
	n := v.N()
	k := len(sums)

	norms := make([]float64, k)
	for c := 0; c < k; c++ {
		norms[c] = linalg.NormSq(sums[c])
	}

	place := func(i, c int) {
		assign[i] = c
		sizes[c]++
		linalg.Axpy(1, v.Row(i), sums[c])
		norms[c] = linalg.NormSq(sums[c])
	}

	remaining := 0
	for _, a := range assign {
		if a == -1 {
			remaining++
		}
	}
	for ; remaining > 0; remaining-- {
		// Weakest cluster with spare capacity.
		weak, weakNorm := -1, math.Inf(1)
		for c := 0; c < k; c++ {
			if sizes[c] < hi && norms[c] < weakNorm {
				weakNorm = norms[c]
				weak = c
			}
		}
		if weak == -1 {
			return nil, fmt.Errorf("vkp: no cluster has spare capacity with %d vectors unplaced", remaining)
		}
		best, bestGain := -1, math.Inf(-1)
		for i := 0; i < n; i++ {
			if assign[i] != -1 {
				continue
			}
			if g := gain(i, weak); g > bestGain {
				bestGain = g
				best = i
			}
		}
		place(best, weak)
	}

	// Minimum-size repair mirrors the MaxSum path.
	for {
		deficit := -1
		for c := 0; c < k; c++ {
			if sizes[c] < lo {
				deficit = c
				break
			}
		}
		if deficit == -1 {
			break
		}
		bestI, bestGain := -1, math.Inf(-1)
		for i := 0; i < n; i++ {
			c := assign[i]
			if c == deficit || sizes[c] <= lo {
				continue
			}
			if g := moveGain(v, sums, i, c, deficit); g > bestGain {
				bestGain = g
				bestI = i
			}
		}
		if bestI == -1 {
			return nil, fmt.Errorf("vkp: cannot satisfy minimum size %d", lo)
		}
		applyMove(v, assign, sizes, sums, bestI, deficit)
		for c := 0; c < k; c++ {
			norms[c] = linalg.NormSq(sums[c])
		}
	}

	// Refinement: accept single-vector moves that strictly raise
	// min_h ‖Y_h‖².
	moves := 0
	row := make([]float64, v.D())
	for pass := 0; pass < passes; pass++ {
		improved := false
		curMin := minOf(norms)
		for i := 0; i < n; i++ {
			from := assign[i]
			if sizes[from] <= lo {
				continue
			}
			copy(row, v.Row(i))
			// Norm of Y_from − y.
			fromAfter := norms[from] - 2*linalg.Dot(sums[from], row) + linalg.NormSq(row)
			for c := 0; c < k; c++ {
				if c == from || sizes[c] >= hi {
					continue
				}
				toAfter := norms[c] + 2*linalg.Dot(sums[c], row) + linalg.NormSq(row)
				newMin := math.Inf(1)
				for cc := 0; cc < k; cc++ {
					val := norms[cc]
					if cc == from {
						val = fromAfter
					}
					if cc == c {
						val = toAfter
					}
					if val < newMin {
						newMin = val
					}
				}
				if newMin > curMin+1e-12 {
					applyMove(v, assign, sizes, sums, i, c)
					norms[from] = linalg.NormSq(sums[from])
					norms[c] = linalg.NormSq(sums[c])
					curMin = minOf(norms)
					moves++
					improved = true
					break
				}
			}
		}
		if !improved {
			break
		}
	}

	p, err := partition.New(assign, k)
	if err != nil {
		return nil, err
	}
	var obj float64
	for c := 0; c < k; c++ {
		obj += norms[c]
	}
	return &Result{Partition: p, Objective: obj, Moves: moves}, nil
}

func minOf(x []float64) float64 {
	m := math.Inf(1)
	for _, v := range x {
		if v < m {
			m = v
		}
	}
	return m
}
