package graph

import (
	"math"
	"testing"

	"repro/internal/hypergraph"
)

func TestNewMergesParallelEdges(t *testing.T) {
	g := MustNew(3, []Edge{{0, 1, 1}, {1, 0, 2}, {1, 2, 1}})
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if g.Weight(0, 1) != 3 || g.Weight(1, 0) != 3 {
		t.Errorf("merged weight = %v, want 3", g.Weight(0, 1))
	}
	if g.Degree(1) != 4 {
		t.Errorf("Degree(1) = %v, want 4", g.Degree(1))
	}
	if g.TotalDegree() != 8 {
		t.Errorf("TotalDegree = %v, want 8", g.TotalDegree())
	}
}

func TestNewRejectsBadEdges(t *testing.T) {
	if _, err := New(2, []Edge{{0, 0, 1}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := New(2, []Edge{{0, 5, 1}}); err == nil {
		t.Error("out-of-range accepted")
	}
	if _, err := New(2, []Edge{{0, 1, 0}}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := New(2, []Edge{{0, 1, -2}}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestEdgesAndWeight(t *testing.T) {
	g := Path(4)
	es := g.Edges()
	if len(es) != 3 {
		t.Fatalf("Edges = %v", es)
	}
	for i, e := range es {
		if e.U != i || e.V != i+1 || e.W != 1 {
			t.Fatalf("edge %d = %+v", i, e)
		}
	}
	if g.Weight(0, 3) != 0 {
		t.Error("absent edge should weigh 0")
	}
}

func TestConnectivityAndComponents(t *testing.T) {
	if !Path(6).IsConnected() {
		t.Error("path should be connected")
	}
	g := MustNew(5, []Edge{{0, 1, 1}, {2, 3, 1}})
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
	comps := g.Components()
	if len(comps) != 3 { // {0,1}, {2,3}, {4}
		t.Fatalf("Components = %v", comps)
	}
}

func TestLaplacianProperties(t *testing.T) {
	g := RandomConnected(40, 60, 9)
	q := g.Laplacian()
	// Row sums of a Laplacian are zero.
	ones := make([]float64, g.N())
	for i := range ones {
		ones[i] = 1
	}
	out := make([]float64, g.N())
	q.MatVec(ones, out)
	for i, v := range out {
		if math.Abs(v) > 1e-10 {
			t.Fatalf("Laplacian row %d sums to %v", i, v)
		}
	}
	// trace(Q) equals the total degree.
	var tr float64
	for i := 0; i < g.N(); i++ {
		tr += q.At(i, i)
	}
	if math.Abs(tr-g.TotalDegree()) > 1e-10 {
		t.Errorf("trace %v vs total degree %v", tr, g.TotalDegree())
	}
	// Dense and sparse must agree.
	dq := g.LaplacianDense()
	for i := 0; i < g.N(); i++ {
		for j := 0; j < g.N(); j++ {
			if math.Abs(dq.At(i, j)-q.At(i, j)) > 1e-12 {
				t.Fatalf("dense/sparse Laplacian disagree at (%d,%d)", i, j)
			}
		}
	}
	// Q = D − A.
	a := g.Adjacency()
	for i := 0; i < g.N(); i++ {
		for j := 0; j < g.N(); j++ {
			want := -a.At(i, j)
			if i == j {
				want = g.Degree(i)
			}
			if math.Abs(q.At(i, j)-want) > 1e-12 {
				t.Fatalf("Q != D-A at (%d,%d)", i, j)
			}
		}
	}
}

func TestInduceSubgraph(t *testing.T) {
	g := Grid(3, 3)
	sub, back := g.Induce([]int{0, 1, 3, 4})
	if sub.N() != 4 {
		t.Fatal("wrong size")
	}
	// The induced 2x2 corner has 4 edges.
	if sub.NumEdges() != 4 {
		t.Errorf("induced edges = %d, want 4", sub.NumEdges())
	}
	if back[0] != 0 || back[3] != 4 {
		t.Error("back map wrong")
	}
}

func TestGenerators(t *testing.T) {
	if g := Cycle(5); g.NumEdges() != 5 || !g.IsConnected() {
		t.Error("Cycle wrong")
	}
	if g := Complete(6); g.NumEdges() != 15 {
		t.Error("Complete wrong")
	}
	if g := Star(7); g.NumEdges() != 6 || g.Degree(0) != 6 {
		t.Error("Star wrong")
	}
	if g := Grid(4, 5); g.N() != 20 || g.NumEdges() != 4*4+3*5 {
		t.Error("Grid wrong")
	}
	if g := RandomConnected(50, 30, 1); !g.IsConnected() || g.N() != 50 {
		t.Error("RandomConnected wrong")
	}
	if g := TwoClusters(10, 12, 3, 0.5, 2); g.N() != 22 || !g.IsConnected() {
		t.Error("TwoClusters wrong")
	}
}

func TestCliqueModelCosts(t *testing.T) {
	// Standard: 1/(p-1).
	if got := Standard.EdgeCost(2); got != 1 {
		t.Errorf("standard p=2: %v", got)
	}
	if got := Standard.EdgeCost(5); math.Abs(got-0.25) > 1e-15 {
		t.Errorf("standard p=5: %v", got)
	}
	// Frankle: (2/p)^1.5.
	if got := Frankle.EdgeCost(2); math.Abs(got-1) > 1e-15 {
		t.Errorf("frankle p=2: %v", got)
	}
	if got := Frankle.EdgeCost(8); math.Abs(got-math.Pow(0.25, 1.5)) > 1e-15 {
		t.Errorf("frankle p=8: %v", got)
	}
	// Partitioning-specific: p=2 gives 4(4-2)/(2·1·4) = 1.
	if got := PartitioningSpecific.EdgeCost(2); math.Abs(got-1) > 1e-15 {
		t.Errorf("partitioning-specific p=2: %v", got)
	}
	// Large-net limit must not overflow or go negative.
	if got := PartitioningSpecific.EdgeCost(200); got <= 0 || math.IsNaN(got) {
		t.Errorf("partitioning-specific p=200: %v", got)
	}
}

func TestPartitioningSpecificExpectedCutCostIsOne(t *testing.T) {
	// The defining property: expected cost of a cut hyperedge is 1.
	for p := 2; p <= 30; p++ {
		got := ExpectedCutCost(PartitioningSpecific, p)
		if math.Abs(got-1) > 1e-12 {
			t.Errorf("p=%d: expected cut cost %v, want 1", p, got)
		}
	}
}

func TestCliqueModelString(t *testing.T) {
	if Standard.String() != "standard" ||
		PartitioningSpecific.String() != "partitioning-specific" ||
		Frankle.String() != "frankle" {
		t.Error("String() names wrong")
	}
	if CliqueModel(9).String() == "" {
		t.Error("unknown model should still format")
	}
}

func TestFromHypergraph(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddModules(4)
	_ = b.AddNet("n0", 0, 1, 2) // 3-clique, weight 1/2 each (standard)
	_ = b.AddNet("n1", 2, 3)    // single edge, weight 1
	h := b.Build()

	g, err := FromHypergraph(h, Standard, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4", g.NumEdges())
	}
	if math.Abs(g.Weight(0, 1)-0.5) > 1e-15 {
		t.Errorf("clique edge weight %v, want 0.5", g.Weight(0, 1))
	}
	if math.Abs(g.Weight(2, 3)-1) > 1e-15 {
		t.Errorf("2-pin net weight %v, want 1", g.Weight(2, 3))
	}

	// maxNet filter drops the 3-pin net.
	g2, err := FromHypergraph(h, Standard, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 1 {
		t.Errorf("filtered edges = %d, want 1", g2.NumEdges())
	}

	// Overlapping nets merge weights: add n2 = {0,1}.
	b2 := hypergraph.NewBuilder()
	b2.AddModules(3)
	_ = b2.AddNet("a", 0, 1, 2)
	_ = b2.AddNet("b", 0, 1)
	g3, err := FromHypergraph(b2.Build(), Standard, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g3.Weight(0, 1)-1.5) > 1e-15 {
		t.Errorf("merged weight %v, want 1.5", g3.Weight(0, 1))
	}
}
