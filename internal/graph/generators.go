package graph

import "math/rand"

// The generators in this file produce the standard test-bed graphs used
// throughout the test suites and ablation benches.

// Path returns the unweighted path graph on n vertices.
func Path(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, Edge{U: i, V: i + 1, W: 1})
	}
	return MustNew(n, edges)
}

// Cycle returns the unweighted cycle on n >= 3 vertices.
func Cycle(n int) *Graph {
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{U: i, V: (i + 1) % n, W: 1})
	}
	return MustNew(n, edges)
}

// Complete returns the unweighted complete graph K_n.
func Complete(n int) *Graph {
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{U: i, V: j, W: 1})
		}
	}
	return MustNew(n, edges)
}

// Star returns the star K_{1,n-1} centered at vertex 0.
func Star(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{U: 0, V: i, W: 1})
	}
	return MustNew(n, edges)
}

// Grid returns the rows×cols 4-neighbor grid graph.
func Grid(rows, cols int) *Graph {
	var edges []Edge
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{U: id(r, c), V: id(r, c+1), W: 1})
			}
			if r+1 < rows {
				edges = append(edges, Edge{U: id(r, c), V: id(r+1, c), W: 1})
			}
		}
	}
	return MustNew(rows*cols, edges)
}

// RandomConnected returns a connected random graph on n vertices: a random
// spanning tree plus extra random edges, with weights in [1, 2). The
// generator is deterministic for a given seed.
func RandomConnected(n, extraEdges int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges []Edge
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		edges = append(edges, Edge{U: perm[i], V: perm[j], W: 1 + rng.Float64()})
	}
	for k := 0; k < extraEdges; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, Edge{U: u, V: v, W: 1 + rng.Float64()})
		}
	}
	return MustNew(n, edges)
}

// TwoClusters returns a graph of two dense clusters of the given sizes
// joined by bridge edges of weight bridgeW — the canonical partitioning
// test case with a known optimal cut.
func TwoClusters(sizeA, sizeB, bridges int, bridgeW float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges []Edge
	// Dense intra-cluster edges.
	for i := 0; i < sizeA; i++ {
		for j := i + 1; j < sizeA; j++ {
			if rng.Float64() < 0.6 {
				edges = append(edges, Edge{U: i, V: j, W: 1})
			}
		}
	}
	for i := 0; i < sizeB; i++ {
		for j := i + 1; j < sizeB; j++ {
			if rng.Float64() < 0.6 {
				edges = append(edges, Edge{U: sizeA + i, V: sizeA + j, W: 1})
			}
		}
	}
	// Spanning paths guarantee connectivity inside each cluster.
	for i := 0; i < sizeA-1; i++ {
		edges = append(edges, Edge{U: i, V: i + 1, W: 1})
	}
	for i := 0; i < sizeB-1; i++ {
		edges = append(edges, Edge{U: sizeA + i, V: sizeA + i + 1, W: 1})
	}
	for b := 0; b < bridges; b++ {
		edges = append(edges, Edge{U: rng.Intn(sizeA), V: sizeA + rng.Intn(sizeB), W: bridgeW})
	}
	return MustNew(sizeA+sizeB, edges)
}
