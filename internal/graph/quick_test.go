package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hypergraph"
	"repro/internal/linalg"
)

// TestQuickLaplacianPSD: the Laplacian of any random graph is positive
// semidefinite — every Rayleigh quotient is >= 0 — and annihilates the
// constant vector.
func TestQuickLaplacianPSD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		g := RandomConnected(n, rng.Intn(3*n), seed)
		q := g.Laplacian()
		x := make([]float64, n)
		qx := make([]float64, n)
		for trial := 0; trial < 5; trial++ {
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			q.MatVec(x, qx)
			if linalg.Dot(x, qx) < -1e-9 {
				return false
			}
		}
		for i := range x {
			x[i] = 1
		}
		q.MatVec(x, qx)
		return linalg.MaxAbs(qx) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickCliqueExpansionWeight: the total edge weight of a clique
// expansion equals Σ_nets cost(|e|)·|e|(|e|−1)/2 minus nothing — merging
// preserves total weight.
func TestQuickCliqueExpansionWeight(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		b := hypergraph.NewBuilder()
		b.AddModules(n)
		var want float64
		model := CliqueModel(rng.Intn(3))
		for e := 0; e < 3+rng.Intn(20); e++ {
			size := 2 + rng.Intn(4)
			if size > n {
				size = n
			}
			mods := rng.Perm(n)[:size]
			if err := b.AddNet("", mods...); err != nil {
				return false
			}
			p := float64(size)
			want += model.EdgeCost(size) * p * (p - 1) / 2
		}
		g, err := FromHypergraph(b.Build(), model, 0)
		if err != nil {
			return false
		}
		return math.Abs(g.TotalDegree()/2-want) < 1e-9*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickInducePreservesWeights: induced subgraph edge weights match
// the originals.
func TestQuickInducePreservesWeights(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(25)
		g := RandomConnected(n, 2*n, seed)
		size := 2 + rng.Intn(n-2)
		verts := rng.Perm(n)[:size]
		sub, back := g.Induce(verts)
		for u := 0; u < sub.N(); u++ {
			for _, h := range sub.Adj(u) {
				if u < h.To {
					if math.Abs(g.Weight(back[u], back[h.To])-h.W) > 1e-12 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickComponentsPartitionVertices: components are disjoint and cover
// all vertices.
func TestQuickComponentsPartitionVertices(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		var edges []Edge
		for e := 0; e < rng.Intn(2*n); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edges = append(edges, Edge{U: u, V: v, W: 1})
			}
		}
		g := MustNew(n, edges)
		seen := make([]bool, n)
		for _, comp := range g.Components() {
			for _, v := range comp {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
