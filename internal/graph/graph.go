// Package graph provides weighted undirected graphs, the clique-model
// transformations that turn netlist hypergraphs into graphs, and Laplacian
// matrix assembly.
//
// The paper's spectral machinery operates on the Laplacian Q = D − A of a
// weighted graph G obtained from the circuit hypergraph by expanding each
// net into a clique with one of three edge-cost models (standard,
// partitioning-specific, Frankle).
package graph

import (
	"fmt"
	"sort"

	"repro/internal/linalg"
)

// Edge is a weighted undirected edge between distinct vertices U < V.
type Edge struct {
	U, V int
	W    float64
}

// Graph is an immutable weighted undirected graph stored as adjacency
// lists. Parallel edges are merged (weights summed) during construction;
// self-loops are rejected.
type Graph struct {
	n         int
	adj       [][]Half // adj[u] sorted by neighbor index
	deg       []float64
	edgeCount int
}

// Half is one direction of an undirected edge.
type Half struct {
	To int
	W  float64
}

// New builds a graph on n vertices from the given edges. Edge weights of
// parallel edges are summed. Edges must connect distinct vertices in
// range; weights must be positive.
func New(n int, edges []Edge) (*Graph, error) {
	g := &Graph{n: n, adj: make([][]Half, n), deg: make([]float64, n)}
	type key struct{ u, v int }
	merged := make(map[key]float64, len(edges))
	for _, e := range edges {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if u == v {
			return nil, fmt.Errorf("graph: self-loop at vertex %d", u)
		}
		if u < 0 || v >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		if e.W <= 0 {
			return nil, fmt.Errorf("graph: edge (%d,%d) has non-positive weight %v", e.U, e.V, e.W)
		}
		merged[key{u, v}] += e.W
	}
	for k, w := range merged {
		g.adj[k.u] = append(g.adj[k.u], Half{To: k.v, W: w})
		g.adj[k.v] = append(g.adj[k.v], Half{To: k.u, W: w})
	}
	// Degrees are summed over the sorted adjacency, not in map order:
	// float addition is order-sensitive, and a map-ordered sum would make
	// repeated builds of the same graph differ in the last ulp — enough
	// to flip near-tied eigenvector signs downstream.
	for u := range g.adj {
		sort.Slice(g.adj[u], func(i, j int) bool { return g.adj[u][i].To < g.adj[u][j].To })
		var d float64
		for _, h := range g.adj[u] {
			d += h.W
		}
		g.deg[u] = d
	}
	g.edgeCount = len(merged)
	return g, nil
}

// MustNew is New but panics on error; for tests and literals.
func MustNew(n int, edges []Edge) *Graph {
	g, err := New(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// NumEdges returns the number of distinct undirected edges.
func (g *Graph) NumEdges() int { return g.edgeCount }

// Adj returns the adjacency list of u (sorted by neighbor). The returned
// slice must not be modified.
func (g *Graph) Adj(u int) []Half { return g.adj[u] }

// Degree returns the weighted degree of u.
func (g *Graph) Degree(u int) float64 { return g.deg[u] }

// TotalDegree returns the sum of all weighted degrees (= 2×total edge
// weight = trace of the Laplacian).
func (g *Graph) TotalDegree() float64 { return linalg.Sum(g.deg) }

// Edges returns all edges (U < V), sorted lexicographically.
func (g *Graph) Edges() []Edge {
	var es []Edge
	for u := 0; u < g.n; u++ {
		for _, h := range g.adj[u] {
			if u < h.To {
				es = append(es, Edge{U: u, V: h.To, W: h.W})
			}
		}
	}
	return es
}

// Weight returns the weight of edge (u,v), or 0 if absent.
func (g *Graph) Weight(u, v int) float64 {
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i].To >= v })
	if i < len(a) && a[i].To == v {
		return a[i].W
	}
	return 0
}

// IsConnected reports whether the graph is connected (vacuously true for
// n <= 1).
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	return len(g.componentOf(0)) == g.n
}

// Components returns the connected components, each sorted ascending,
// ordered by smallest member.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for i := 0; i < g.n; i++ {
		if seen[i] {
			continue
		}
		c := g.componentOf(i)
		for _, v := range c {
			seen[v] = true
		}
		comps = append(comps, c)
	}
	return comps
}

func (g *Graph) componentOf(start int) []int {
	visited := make([]bool, g.n)
	visited[start] = true
	queue := []int{start}
	comp := []int{start}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, h := range g.adj[u] {
			if !visited[h.To] {
				visited[h.To] = true
				queue = append(queue, h.To)
				comp = append(comp, h.To)
			}
		}
	}
	sort.Ints(comp)
	return comp
}

// Laplacian assembles Q = D − A as a sparse CSR matrix.
func (g *Graph) Laplacian() *linalg.CSR {
	ts := make([]linalg.Triplet, 0, g.n+2*g.edgeCount)
	for u := 0; u < g.n; u++ {
		ts = append(ts, linalg.Triplet{Row: u, Col: u, Val: g.deg[u]})
		for _, h := range g.adj[u] {
			ts = append(ts, linalg.Triplet{Row: u, Col: h.To, Val: -h.W})
		}
	}
	return linalg.NewCSR(g.n, g.n, ts)
}

// Adjacency assembles A as a sparse CSR matrix.
func (g *Graph) Adjacency() *linalg.CSR {
	ts := make([]linalg.Triplet, 0, 2*g.edgeCount)
	for u := 0; u < g.n; u++ {
		for _, h := range g.adj[u] {
			ts = append(ts, linalg.Triplet{Row: u, Col: h.To, Val: h.W})
		}
	}
	return linalg.NewCSR(g.n, g.n, ts)
}

// LaplacianDense assembles Q as a dense matrix (for small graphs/tests).
func (g *Graph) LaplacianDense() *linalg.Dense {
	m := linalg.NewDense(g.n, g.n)
	for u := 0; u < g.n; u++ {
		m.Set(u, u, g.deg[u])
		for _, h := range g.adj[u] {
			m.Set(u, h.To, -h.W)
		}
	}
	return m
}

// Induce extracts the subgraph on the given vertices, keeping edges with
// both endpoints inside. The second return value maps new indices back to
// the original ones.
func (g *Graph) Induce(vertices []int) (*Graph, []int) {
	old2new := make(map[int]int, len(vertices))
	back := make([]int, len(vertices))
	for newIdx, oldIdx := range vertices {
		old2new[oldIdx] = newIdx
		back[newIdx] = oldIdx
	}
	var edges []Edge
	for _, oldU := range vertices {
		u := old2new[oldU]
		for _, h := range g.adj[oldU] {
			if v, ok := old2new[h.To]; ok && u < v {
				edges = append(edges, Edge{U: u, V: v, W: h.W})
			}
		}
	}
	sub, err := New(len(vertices), edges)
	if err != nil {
		panic(err) // cannot happen: edges derive from a valid graph
	}
	return sub, back
}
