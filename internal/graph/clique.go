package graph

import (
	"fmt"
	"math"

	"repro/internal/hypergraph"
)

// CliqueModel selects the edge-cost function used when a net of |e|
// modules is expanded into a clique of |e|(|e|−1)/2 graph edges. No
// "perfect" clique model exists (Ihler et al. [31]); the paper uses three:
//
//   - Standard: cost 1/(|e|−1) per clique edge, motivated by linear
//     placement into fixed locations at unit separation [11][32].
//   - PartitioningSpecific: cost 4(2^|e|−2)/(|e|(|e|−1)·2^|e|) per clique
//     edge, so that the expected total cost of a cut hyperedge — over
//     uniformly random bipartitions, conditioned on the net being cut —
//     equals one. This is the model used for the paper's main experiments.
//   - Frankle: cost (2/|e|)^{3/2} per clique edge, proposed in [19] for
//     linear placement with a quadratic objective; the paper uses it for
//     the KP baseline.
type CliqueModel int

const (
	Standard CliqueModel = iota
	PartitioningSpecific
	Frankle
)

// String returns the model name as used in the paper.
func (m CliqueModel) String() string {
	switch m {
	case Standard:
		return "standard"
	case PartitioningSpecific:
		return "partitioning-specific"
	case Frankle:
		return "frankle"
	default:
		return fmt.Sprintf("CliqueModel(%d)", int(m))
	}
}

// EdgeCost returns the per-clique-edge cost this model assigns for a net
// with size modules. size must be >= 2.
func (m CliqueModel) EdgeCost(size int) float64 {
	p := float64(size)
	switch m {
	case Standard:
		return 1 / (p - 1)
	case PartitioningSpecific:
		// 4(2^p − 2) / (p(p−1)·2^p) — the reciprocal of the expected
		// number of cut clique edges given that the net is cut. For large
		// nets 2^p overflows float64 gracefully: the ratio tends to
		// 4/(p(p−1)), which we use directly past the overflow point.
		if size >= 60 {
			return 4 / (p * (p - 1))
		}
		pow := math.Exp2(p)
		return 4 * (pow - 2) / (p * (p - 1) * pow)
	case Frankle:
		return math.Pow(2/p, 1.5)
	default:
		panic(fmt.Sprintf("graph: unknown clique model %d", int(m)))
	}
}

// FromHypergraph converts a netlist to a weighted graph by expanding every
// net into a clique under the given cost model. Nets larger than maxNet
// are skipped entirely when maxNet > 0 (the paper notes that [10] removed
// nets with more than 99 pins; pass 0 to keep everything).
func FromHypergraph(h *hypergraph.Hypergraph, model CliqueModel, maxNet int) (*Graph, error) {
	var edges []Edge
	for _, net := range h.Nets {
		if maxNet > 0 && len(net) > maxNet {
			continue
		}
		w := model.EdgeCost(len(net))
		for i := 0; i < len(net); i++ {
			for j := i + 1; j < len(net); j++ {
				edges = append(edges, Edge{U: net[i], V: net[j], W: w})
			}
		}
	}
	return New(h.NumModules(), edges)
}

// ExpectedCutCost returns the expected total clique-edge cost of a net of
// the given size under a uniformly random bipartition conditioned on the
// net being cut. For the PartitioningSpecific model this is 1 by design.
// Exposed for tests and documentation.
func ExpectedCutCost(model CliqueModel, size int) float64 {
	p := float64(size)
	// E[i(p−i)] over i ~ Binomial(p, 1/2) is p(p−1)/4; conditioning on a
	// cut divides by P(cut) = (2^p − 2)/2^p.
	pow := math.Exp2(p)
	expCutEdges := (p * (p - 1) / 4) * pow / (pow - 2)
	return expCutEdges * model.EdgeCost(size)
}
