package paraboli

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/partition"
)

func twoClusterNetlist(t *testing.T, size int, bridges int, seed int64) *hypergraph.Hypergraph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := hypergraph.NewBuilder()
	b.AddModules(2 * size)
	for c := 0; c < 2; c++ {
		base := c * size
		for i := 0; i < size-1; i++ {
			_ = b.AddNet("", base+i, base+i+1)
		}
		for e := 0; e < 3*size; e++ {
			i, j := rng.Intn(size), rng.Intn(size)
			if i != j {
				_ = b.AddNet("", base+i, base+j)
			}
		}
	}
	for bg := 0; bg < bridges; bg++ {
		_ = b.AddNet("", rng.Intn(size), size+rng.Intn(size))
	}
	return b.Build()
}

func TestBipartitionRecoversPlantedCut(t *testing.T) {
	h := twoClusterNetlist(t, 20, 3, 5)
	res, err := Bipartition(h, Options{Model: graph.PartitioningSpecific, MinFrac: 0.45})
	if err != nil {
		t.Fatal(err)
	}
	if got := partition.NetCut(h, res.Partition); got > 3 {
		t.Errorf("net cut = %d, want <= 3 (planted bridges)", got)
	}
	if !res.Partition.IsBalanced(18, 22) {
		t.Errorf("sizes = %v outside 45%% balance", res.Partition.Sizes())
	}
}

func TestBipartitionPathNetlist(t *testing.T) {
	b := hypergraph.NewBuilder()
	n := 30
	b.AddModules(n)
	for i := 0; i < n-1; i++ {
		_ = b.AddNet("", i, i+1)
	}
	h := b.Build()
	res, err := Bipartition(h, Options{Model: graph.Standard, MinFrac: 0.45, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := partition.NetCut(h, res.Partition); got != 1 {
		t.Errorf("path net cut = %d, want 1", got)
	}
}

func TestBipartitionValidation(t *testing.T) {
	h := twoClusterNetlist(t, 5, 1, 1)
	if _, err := Bipartition(h, Options{MinFrac: 0}); err == nil {
		t.Error("MinFrac=0 accepted")
	}
	if _, err := Bipartition(h, Options{MinFrac: 0.7}); err == nil {
		t.Error("MinFrac>0.5 accepted")
	}
	tiny := hypergraph.NewBuilder()
	tiny.AddModule("only")
	if _, err := Bipartition(tiny.Build(), Options{MinFrac: 0.4}); err == nil {
		t.Error("1-module netlist accepted")
	}
}

func TestBipartitionDeterministic(t *testing.T) {
	h := twoClusterNetlist(t, 12, 2, 9)
	opts := Options{Model: graph.Standard, MinFrac: 0.45}
	r1, err := Bipartition(h, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Bipartition(h, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Partition.Assign {
		if r1.Partition.Assign[i] != r2.Partition.Assign[i] {
			t.Fatal("two identical runs disagreed")
		}
	}
}

// TestBipartitionDisconnected: on a disconnected netlist the reanchoring
// round's previous solution can solve the new anchored system exactly,
// which used to make the CG solve fail with "operator is not positive
// definite" (an oracle-harness find). The placer must instead recover
// the zero-cut component split.
func TestBipartitionDisconnected(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddModules(8)
	for i := 0; i < 4; i++ {
		_ = b.AddNet("", i, (i+1)%4)
		_ = b.AddNet("", 4+i, 4+(i+1)%4)
	}
	h := b.Build()
	res, err := Bipartition(h, Options{Model: graph.PartitioningSpecific, MinFrac: 0.45})
	if err != nil {
		t.Fatal(err)
	}
	if got := partition.NetCut(h, res.Partition); got != 0 {
		t.Errorf("net cut = %d, want 0 (split along the components)", got)
	}
	sizes := res.Partition.Sizes()
	if sizes[0] != 4 || sizes[1] != 4 {
		t.Errorf("sizes = %v, want 4/4", sizes)
	}
}
