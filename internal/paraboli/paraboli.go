// Package paraboli provides the repository's substitute for PARABOLI
// (Riess, Doll and Johannes [38]), the analytical-placement bipartitioner
// the paper's Table 5 compares against. PARABOLI itself is closed source;
// what Table 5 needs from it is "a strong balanced bipartitioner derived
// from a global quadratic placement". This package implements exactly that
// pipeline (see DESIGN.md §5):
//
//  1. Build the clique-model graph and its Laplacian L.
//  2. Pick two far-apart seed vertices (the extremes of the Fiedler
//     ordering, mirroring PARABOLI's seeded placement).
//  3. Solve the anchored quadratic placement (L + αP)x = α·b by
//     conjugate gradients, where P pins the seeds toward 0 and 1.
//  4. Iterate: reanchor each current half's center of gravity toward its
//     end of the segment and re-solve (the PROUD/PARABOLI-style
//     repartitioning iteration).
//  5. Return the best balanced split of the final placement ordering.
package paraboli

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/dprp"
	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/linalg"
)

// Options configures the placer.
type Options struct {
	// Model is the clique model for the netlist-to-graph expansion.
	Model graph.CliqueModel
	// MaxNet drops nets larger than this (0 keeps all).
	MaxNet int
	// MinFrac is the balance bound for the final split (Table 5 uses
	// 0.45).
	MinFrac float64
	// Iterations is the number of reanchoring rounds. Default 3.
	Iterations int
	// Alpha is the anchor strength. Default 1.
	Alpha float64
}

// Bipartition places the netlist on a line and returns the best balanced
// split of the placement ordering.
func Bipartition(h *hypergraph.Hypergraph, opts Options) (dprp.SplitResult, error) {
	return BipartitionCtx(context.Background(), h, opts)
}

// BipartitionCtx is Bipartition with cooperative cancellation, checked
// inside the seed eigensolve and at every CG iteration of each
// placement solve.
func BipartitionCtx(ctx context.Context, h *hypergraph.Hypergraph, opts Options) (dprp.SplitResult, error) {
	n := h.NumModules()
	if n < 2 {
		return dprp.SplitResult{}, fmt.Errorf("paraboli: need >= 2 modules, have %d", n)
	}
	if opts.MinFrac <= 0 || opts.MinFrac > 0.5 {
		return dprp.SplitResult{}, fmt.Errorf("paraboli: MinFrac = %v, want (0, 0.5]", opts.MinFrac)
	}
	iters := opts.Iterations
	if iters <= 0 {
		iters = 3
	}
	alpha := opts.Alpha
	if alpha <= 0 {
		alpha = 1
	}

	g, err := graph.FromHypergraph(h, opts.Model, opts.MaxNet)
	if err != nil {
		return dprp.SplitResult{}, err
	}
	lap := g.Laplacian()

	// Seeds: Fiedler extremes. On a disconnected graph the Fiedler vector
	// separates components, which still yields usable far-apart seeds.
	dec, err := eigen.SmallestEigenpairsCtx(ctx, lap, 2, 0)
	if err != nil {
		return dprp.SplitResult{}, fmt.Errorf("paraboli: eigensolve: %v", err)
	}
	fiedler := dec.Vector(1)
	seedLo, seedHi := 0, 0
	for i := 1; i < n; i++ {
		if fiedler[i] < fiedler[seedLo] {
			seedLo = i
		}
		if fiedler[i] > fiedler[seedHi] {
			seedHi = i
		}
	}
	if seedLo == seedHi {
		seedHi = (seedLo + 1) % n
	}

	// anchored solves (L + αP) x = α b for the given anchor set.
	diag := lap.Diag()
	x := make([]float64, n)
	anchored := func(anchors map[int]float64, x0 []float64) ([]float64, error) {
		op := &anchoredOp{lap: lap, alpha: alpha, anchors: anchors}
		b := make([]float64, n)
		for i, target := range anchors {
			b[i] = alpha * target
		}
		adiag := linalg.CopyVec(diag)
		for i := range anchors {
			adiag[i] += alpha
		}
		sol, _, err := eigen.CGCtx(ctx, op, b, x0, adiag, &eigen.CGOptions{Tol: 1e-8})
		return sol, err
	}

	anchors := map[int]float64{seedLo: 0, seedHi: 1}
	x, err = anchored(anchors, nil)
	if err != nil {
		return dprp.SplitResult{}, fmt.Errorf("paraboli: placement solve: %v", err)
	}

	for round := 1; round < iters; round++ {
		// Reanchor: every vertex in the left half is pulled gently toward
		// 0, the right half toward 1, with the original seeds pinned hard.
		order := argsort(x)
		half := n / 2
		anchors = make(map[int]float64, n)
		for rank, v := range order {
			if rank < half {
				anchors[v] = 0
			} else {
				anchors[v] = 1
			}
		}
		anchors[seedLo] = 0
		anchors[seedHi] = 1
		x, err = anchored(anchors, x)
		if err != nil {
			return dprp.SplitResult{}, fmt.Errorf("paraboli: round %d solve: %v", round, err)
		}
	}

	return dprp.BestBalancedSplit(h, argsort(x), opts.MinFrac)
}

// anchoredOp applies (L + αP) where P is the indicator of anchored rows.
type anchoredOp struct {
	lap     *linalg.CSR
	alpha   float64
	anchors map[int]float64
}

func (a *anchoredOp) Dim() int { return a.lap.Dim() }

func (a *anchoredOp) MatVec(x, y []float64) {
	a.lap.MatVec(x, y)
	for i := range a.anchors {
		y[i] += a.alpha * x[i]
	}
}

func argsort(x []float64) []int {
	order := make([]int, len(x))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if x[order[a]] != x[order[b]] {
			return x[order[a]] < x[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}
