// Package hl implements the Hendrickson–Leland style multi-eigenvector
// partitioner [29]: d eigenvectors produce a partitioning with 2^d
// clusters by quantizing each vertex's spectral coordinates into sign
// patterns. The original minimizes a quadratic assignment to hypercube
// corners; this reimplementation uses the standard median-split
// simplification, which keeps the 2^d clusters balanced by construction.
//
// HL is the "d eigenvectors → 2^d clusters" school the paper contrasts
// with MELO's "as many eigenvectors as possible for any k".
package hl

import (
	"fmt"
	"sort"

	"repro/internal/eigen"
	"repro/internal/partition"
)

// Partition builds a 2^d-way partitioning from the first d non-trivial
// eigenvectors of dec (which must hold at least d+1 pairs). Vertices are
// split at the median of each eigenvector, so every cluster holds
// n/2^d ± d vertices.
func Partition(dec *eigen.Decomposition, d int) (*partition.Partition, error) {
	if d < 1 {
		return nil, fmt.Errorf("hl: d = %d, want >= 1", d)
	}
	if d > 20 {
		return nil, fmt.Errorf("hl: d = %d would create 2^%d clusters", d, d)
	}
	if dec.D() < d+1 {
		return nil, fmt.Errorf("hl: decomposition holds %d pairs, need %d", dec.D(), d+1)
	}
	n := dec.Vectors.Rows
	k := 1 << uint(d)
	if k > n {
		return nil, fmt.Errorf("hl: 2^%d clusters exceed %d vertices", d, n)
	}

	assign := make([]int, n)
	// Recursive median splits: split the whole set on eigenvector 1, each
	// half on eigenvector 2, and so on — the recursive-bisection form
	// Hendrickson and Leland describe, which guarantees balance.
	groups := [][]int{all(n)}
	for j := 1; j <= d; j++ {
		var next [][]int
		for _, grp := range groups {
			lo, hi := medianSplit(dec, j, grp)
			next = append(next, lo, hi)
		}
		groups = next
	}
	for c, grp := range groups {
		for _, v := range grp {
			assign[v] = c
		}
	}
	return partition.New(assign, k)
}

func all(n int) []int {
	a := make([]int, n)
	for i := range a {
		a[i] = i
	}
	return a
}

// medianSplit divides grp into its lower and upper halves by coordinate
// j of the decomposition, breaking ties by vertex index.
func medianSplit(dec *eigen.Decomposition, j int, grp []int) (lo, hi []int) {
	sorted := append([]int(nil), grp...)
	sort.SliceStable(sorted, func(a, b int) bool {
		va, vb := dec.Vectors.At(sorted[a], j), dec.Vectors.At(sorted[b], j)
		if va != vb {
			return va < vb
		}
		return sorted[a] < sorted[b]
	})
	mid := len(sorted) / 2
	return sorted[:mid], sorted[mid:]
}
