package hl

import (
	"testing"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/partition"
)

func decompose(t *testing.T, g *graph.Graph, d int) *eigen.Decomposition {
	t.Helper()
	dec, err := eigen.SmallestEigenpairs(g.Laplacian(), d+1)
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

func TestPartitionShapeAndBalance(t *testing.T) {
	g := graph.RandomConnected(64, 160, 3)
	for d := 1; d <= 3; d++ {
		dec := decompose(t, g, d)
		p, err := Partition(dec, d)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		k := 1 << uint(d)
		if p.K != k {
			t.Fatalf("d=%d: K = %d, want %d", d, p.K, k)
		}
		min, max := p.MinMaxSize()
		if max-min > d+1 {
			t.Errorf("d=%d: sizes %v not balanced (median splits)", d, p.Sizes())
		}
	}
}

func TestGridQuarters(t *testing.T) {
	// On a grid, 2 eigenvectors split into 4 spatial quadrants: the cut
	// should be near the 2 center lines (16 edges for 8x8), far below a
	// random 4-way partitioning (~3/4 of 112 edges).
	g := graph.Grid(8, 8)
	dec := decompose(t, g, 2)
	p, err := Partition(dec, 2)
	if err != nil {
		t.Fatal(err)
	}
	cut := partition.CutWeight(g, p)
	if cut > 30 {
		t.Errorf("grid 4-way cut %v, want near 16", cut)
	}
}

func TestTwoClustersD1(t *testing.T) {
	g := graph.TwoClusters(16, 16, 2, 0.25, 5)
	dec := decompose(t, g, 1)
	p, err := Partition(dec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cut := partition.CutWeight(g, p); cut > 0.5+1e-9 {
		t.Errorf("cut %v, want the 2 planted bridges (0.5)", cut)
	}
}

func TestValidation(t *testing.T) {
	g := graph.Path(10)
	dec := decompose(t, g, 2)
	if _, err := Partition(dec, 0); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := Partition(dec, 5); err == nil {
		t.Error("d beyond available pairs accepted")
	}
	if _, err := Partition(dec, 21); err == nil {
		t.Error("d=21 accepted")
	}
	small := decompose(t, graph.Path(3), 1)
	if _, err := Partition(small, 2); err == nil {
		t.Error("2^d > n accepted")
	}
}
