package linalg

import "testing"

func TestArenaVecZeroedAndDisjoint(t *testing.T) {
	a := NewArena(5)
	u := a.Vec()
	v := a.Vec()
	if len(u) != 5 || len(v) != 5 {
		t.Fatalf("lengths %d, %d, want 5", len(u), len(v))
	}
	for i := range u {
		u[i] = 1
	}
	for i, x := range v {
		if x != 0 {
			t.Fatalf("v[%d] = %v after writing u, want 0 (overlap?)", i, x)
		}
	}
	// Appending to one issued vector must not clobber its slab neighbour.
	u = append(u, 9)
	if v[0] != 0 {
		t.Fatal("append to u grew into v's slab space")
	}
}

func TestArenaRecyclesFreedVectors(t *testing.T) {
	a := NewArena(8)
	v := a.Vec()
	for i := range v {
		v[i] = float64(i + 1)
	}
	a.Free(v)
	w := a.Vec()
	if &w[0] != &v[0] {
		t.Fatal("freed vector was not reissued")
	}
	for i, x := range w {
		if x != 0 {
			t.Fatalf("reissued vector not zeroed at %d: %v", i, x)
		}
	}
}

func TestArenaAllocationsAmortized(t *testing.T) {
	const n, vecs = 64, 4 * arenaSlabVecs
	allocs := testing.AllocsPerRun(10, func() {
		a := NewArena(n)
		for i := 0; i < vecs; i++ {
			a.Vec()
		}
	})
	// 4 slabs + the arena itself + free-list noise; the point is it is
	// nowhere near one allocation per vector.
	if allocs > vecs/2 {
		t.Fatalf("AllocsPerRun = %v for %d vectors, want slab-amortized", allocs, vecs)
	}
}

func TestArenaFreeChecksLength(t *testing.T) {
	a := NewArena(4)
	a.Free(nil) // no-op
	defer func() {
		if recover() == nil {
			t.Fatal("Free of wrong-length vector did not panic")
		}
	}()
	a.Free(make([]float64, 3))
}

func TestOrthogonalizeBlockBufMatchesAllocating(t *testing.T) {
	const n, m = 200, 7
	basis := make([][]float64, m)
	for b := range basis {
		v := make([]float64, n)
		for i := range v {
			v[i] = float64((b*31+i*17)%23) - 11
		}
		Normalize(v)
		basis[b] = v
	}
	mk := func() []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(i%9) - 4
		}
		return v
	}
	want := mk()
	OrthogonalizeBlock(want, basis, 1)
	got := mk()
	coef := make([]float64, m)
	OrthogonalizeBlockBuf(got, basis, 1, coef)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d differs bitwise: %v vs %v", i, got[i], want[i])
		}
	}
	// Short buffer falls back to allocating without changing results.
	got2 := mk()
	OrthogonalizeBlockBuf(got2, basis, 1, make([]float64, 1))
	for i := range want {
		if got2[i] != want[i] {
			t.Fatalf("short-buffer path: entry %d differs bitwise", i)
		}
	}
}
