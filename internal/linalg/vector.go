// Package linalg provides the dense and sparse linear-algebra kernels used
// throughout the repository: BLAS-1 style vector operations, dense
// symmetric matrices, and compressed sparse row (CSR) matrices.
//
// Everything is implemented with float64 and plain slices; there are no
// external dependencies. The package favours clarity and numerical
// robustness over raw speed, but all kernels are O(nnz) or O(n) and are
// fast enough for the graph sizes used by the partitioning experiments
// (tens of thousands of vertices).
package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of x and y.
// It panics if the lengths differ.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x, computed with scaling to avoid
// overflow and underflow.
func Norm2(x []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormSq returns the squared Euclidean norm of x.
func NormSq(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Zero sets every element of x to zero.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// CopyVec returns a newly allocated copy of x.
func CopyVec(x []float64) []float64 {
	y := make([]float64, len(x))
	copy(y, x)
	return y
}

// Normalize scales x to unit Euclidean norm and returns the original norm.
// A zero vector is left unchanged and 0 is returned.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n == 0 {
		return 0
	}
	Scale(1/n, x)
	return n
}

// Orthogonalize subtracts from v its projections onto each row of basis
// (classical Gram-Schmidt, applied twice for numerical stability). Rows of
// basis are assumed to have unit norm.
func Orthogonalize(v []float64, basis [][]float64) {
	for pass := 0; pass < 2; pass++ {
		for _, b := range basis {
			Axpy(-Dot(v, b), b, v)
		}
	}
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// MaxAbs returns the largest absolute value in x, or 0 for an empty slice.
func MaxAbs(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
