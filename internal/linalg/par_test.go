package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func randomCSR(n, nnzPerRow int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	var ts []Triplet
	for i := 0; i < n; i++ {
		for k := 0; k < nnzPerRow; k++ {
			ts = append(ts, Triplet{Row: i, Col: rng.Intn(n), Val: rng.NormFloat64()})
		}
	}
	return NewCSR(n, n, ts)
}

func randomVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// The parallel MatVec kernels must reproduce the serial ones bitwise at
// every worker count: rows are disjoint and each row's accumulation
// order is unchanged.
func TestCSRMatVecParBitwiseEqualsSerial(t *testing.T) {
	for _, n := range []int{1, 17, 700, 3000} {
		c := randomCSR(n, 6, int64(n))
		x := randomVec(n, 2)
		want := make([]float64, n)
		c.MatVec(x, want)
		for _, workers := range []int{1, 2, 4, 9} {
			got := make([]float64, n)
			c.MatVecPar(x, got, workers)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d workers=%d: y[%d] = %v, serial %v", n, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestDenseMatVecParBitwiseEqualsSerial(t *testing.T) {
	const n = 300
	m := NewDense(n, n)
	rng := rand.New(rand.NewSource(5))
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	x := randomVec(n, 7)
	want := make([]float64, n)
	m.MatVec(x, want)
	for _, workers := range []int{1, 3, 8} {
		got := make([]float64, n)
		m.MatVecPar(x, got, workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: y[%d] = %v, serial %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestParOperatorWrapsAndUnwraps(t *testing.T) {
	c := randomCSR(100, 4, 1)
	x := randomVec(100, 3)
	want := make([]float64, 100)
	c.MatVec(x, want)

	p := Par(c, 4)
	if p == Operator(c) {
		t.Fatal("Par(c, 4) did not wrap")
	}
	if Unwrap(p) != Operator(c) {
		t.Fatal("Unwrap did not recover the CSR")
	}
	if p.Dim() != 100 {
		t.Fatalf("wrapped Dim = %d", p.Dim())
	}
	got := make([]float64, 100)
	p.MatVec(x, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("wrapped MatVec differs at %d", i)
		}
	}
	if Par(c, 1) != Operator(c) {
		t.Error("Par with workers=1 should return the operator unchanged")
	}
	if Unwrap(c) != Operator(c) {
		t.Error("Unwrap of an unwrapped operator should be the identity")
	}
}

// OrthogonalizeBlock must be bitwise worker-invariant and must actually
// orthogonalize: after the call, v ⊥ every basis row to working
// precision.
func TestOrthogonalizeBlockWorkerInvariantAndOrthogonal(t *testing.T) {
	const n, m = 4000, 12
	basis := make([][]float64, 0, m)
	for b := 0; b < m; b++ {
		v := randomVec(n, int64(100+b))
		Orthogonalize(v, basis)
		Normalize(v)
		basis = append(basis, v)
	}
	ref := randomVec(n, 999)
	want := CopyVec(ref)
	OrthogonalizeBlock(want, basis, 1)
	for _, b := range basis {
		if d := math.Abs(Dot(want, b)); d > 1e-10 {
			t.Fatalf("residual projection %v after OrthogonalizeBlock", d)
		}
	}
	for _, workers := range []int{2, 3, 8} {
		got := CopyVec(ref)
		OrthogonalizeBlock(got, basis, workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: v[%d] = %v, serial %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestOrthogonalizeBlockEmptyBasis(t *testing.T) {
	v := randomVec(10, 1)
	want := CopyVec(v)
	OrthogonalizeBlock(v, nil, 4)
	for i := range want {
		if v[i] != want[i] {
			t.Fatal("empty basis modified v")
		}
	}
}
