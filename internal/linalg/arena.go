package linalg

// Arena is a slab allocator for fixed-length float64 vectors, built for
// the iterative eigensolvers whose hot loops otherwise allocate a fresh
// n-vector per step (Krylov basis growth, restart vectors, Ritz
// assembly scratch). Vectors are carved out of shared slabs of
// arenaSlabVecs vectors each, so a solve performing k steps costs
// ⌈k/arenaSlabVecs⌉ allocations instead of k, and recycled vectors cost
// none at all.
//
// Ownership rules (enforced for internal/eigen by cmd/vet-invariants):
//
//   - A vector obtained from Vec belongs to the arena's owner until it
//     is passed back via Free. It must NEVER be returned to a caller or
//     stored in a result structure — results copy out (CopyVec,
//     NewDense). The arena dies with the solve that created it.
//   - Free'd vectors are reissued by later Vec calls; holding a slice
//     after freeing it is a use-after-free bug, racing against the next
//     consumer.
//   - An Arena is NOT safe for concurrent use. Kernels hand arena
//     vectors to parallel.For shards, which is fine — sharding splits
//     element ranges of one vector, it never calls Vec/Free.
type Arena struct {
	n    int
	slab []float64   // tail of the current slab, sliced off by Vec
	free [][]float64 // recycled vectors, reissued LIFO
}

// arenaSlabVecs is the number of vectors per slab: large enough to
// amortize allocation to noise, small enough that an early-converging
// solve wastes at most one slab's tail.
const arenaSlabVecs = 16

// NewArena returns an arena issuing vectors of length n.
func NewArena(n int) *Arena {
	if n < 0 {
		n = 0
	}
	return &Arena{n: n}
}

// N returns the length of the vectors this arena issues.
func (a *Arena) N() int { return a.n }

// Vec returns a zeroed n-vector owned by the arena (see the ownership
// rules in the type comment).
func (a *Arena) Vec() []float64 {
	if m := len(a.free); m > 0 {
		v := a.free[m-1]
		a.free = a.free[:m-1]
		Zero(v)
		return v
	}
	if len(a.slab) < a.n {
		a.slab = make([]float64, a.n*arenaSlabVecs)
	}
	v := a.slab[:a.n:a.n]
	a.slab = a.slab[a.n:]
	return v
}

// Free returns v to the arena for reuse. v must have come from Vec on
// this arena; the caller must not touch it afterwards. Freeing nil is a
// no-op, so error paths can Free unconditionally.
func (a *Arena) Free(v []float64) {
	if v == nil {
		return
	}
	if len(v) != a.n {
		panic("linalg: Arena.Free of a vector with the wrong length")
	}
	a.free = append(a.free, v)
}
