package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDot(t *testing.T) {
	cases := []struct {
		x, y []float64
		want float64
	}{
		{nil, nil, 0},
		{[]float64{1}, []float64{2}, 2},
		{[]float64{1, 2, 3}, []float64{4, 5, 6}, 32},
		{[]float64{-1, 1}, []float64{1, 1}, 0},
	}
	for _, c := range cases {
		if got := Dot(c.x, c.y); got != c.want {
			t.Errorf("Dot(%v,%v)=%v want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched lengths")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); !almostEqual(got, 5, 1e-14) {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Errorf("Norm2(nil) = %v, want 0", got)
	}
	// Scaling must prevent overflow.
	big := []float64{1e300, 1e300}
	if got := Norm2(big); math.IsInf(got, 0) {
		t.Error("Norm2 overflowed on large inputs")
	}
}

func TestNormSqMatchesNorm2(t *testing.T) {
	f := func(x []float64) bool {
		// Keep magnitudes moderate so the naive square does not overflow.
		for i := range x {
			x[i] = math.Mod(x[i], 1e6)
			if math.IsNaN(x[i]) {
				x[i] = 0
			}
		}
		n := Norm2(x)
		return almostEqual(n*n, NormSq(x), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAxpyAndScale(t *testing.T) {
	y := []float64{1, 2, 3}
	Axpy(2, []float64{1, 1, 1}, y)
	want := []float64{3, 4, 5}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy result %v, want %v", y, want)
		}
	}
	Scale(0.5, y)
	want = []float64{1.5, 2, 2.5}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Scale result %v, want %v", y, want)
		}
	}
}

func TestNormalize(t *testing.T) {
	x := []float64{0, 3, 4}
	n := Normalize(x)
	if !almostEqual(n, 5, 1e-14) {
		t.Errorf("Normalize returned %v, want 5", n)
	}
	if !almostEqual(Norm2(x), 1, 1e-14) {
		t.Errorf("normalized vector has norm %v", Norm2(x))
	}
	z := []float64{0, 0}
	if Normalize(z) != 0 {
		t.Error("Normalize of zero vector should return 0")
	}
}

func TestOrthogonalize(t *testing.T) {
	b1 := []float64{1, 0, 0}
	b2 := []float64{0, 1, 0}
	v := []float64{3, 4, 5}
	Orthogonalize(v, [][]float64{b1, b2})
	if !almostEqual(v[0], 0, 1e-14) || !almostEqual(v[1], 0, 1e-14) || !almostEqual(v[2], 5, 1e-14) {
		t.Errorf("Orthogonalize result %v, want [0 0 5]", v)
	}
}

func TestSumAndMaxAbs(t *testing.T) {
	if got := Sum([]float64{1, -2, 4}); got != 3 {
		t.Errorf("Sum = %v, want 3", got)
	}
	if got := MaxAbs([]float64{1, -7, 4}); got != 7 {
		t.Errorf("MaxAbs = %v, want 7", got)
	}
	if got := MaxAbs(nil); got != 0 {
		t.Errorf("MaxAbs(nil) = %v, want 0", got)
	}
}

func TestZeroAndCopyVec(t *testing.T) {
	x := []float64{1, 2}
	y := CopyVec(x)
	Zero(x)
	if x[0] != 0 || x[1] != 0 {
		t.Error("Zero did not clear the slice")
	}
	if y[0] != 1 || y[1] != 2 {
		t.Error("CopyVec did not produce an independent copy")
	}
}
