package linalg

import (
	"fmt"

	"repro/internal/parallel"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewDense allocates a zero r×c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: NewDense negative dimension %d×%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments the element at row i, column j by v.
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MatVec computes y = m·x. The destination y must have length m.Rows and
// must not alias x.
func (m *Dense) MatVec(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("linalg: MatVec dimension mismatch (%d×%d)·%d -> %d",
			m.Rows, m.Cols, len(x), len(y)))
	}
	for i := 0; i < m.Rows; i++ {
		y[i] = Dot(m.Row(i), x)
	}
}

// MatVecPar is MatVec with the rows sharded across up to workers
// goroutines (0 uses the process default). Each row's dot product is
// computed serially by one worker, so the result is bitwise identical
// to MatVec at every worker count.
func (m *Dense) MatVecPar(x, y []float64, workers int) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("linalg: MatVec dimension mismatch (%d×%d)·%d -> %d",
			m.Rows, m.Cols, len(x), len(y)))
	}
	parallel.For(workers, m.Rows, matVecRowGrain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] = Dot(m.Row(i), x)
		}
	})
}

// Dim returns the number of rows (for the SymMatVec interface).
func (m *Dense) Dim() int { return m.Rows }

// Transpose returns a newly allocated transpose of m.
func (m *Dense) Transpose() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the product a·b as a new matrix.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %d×%d · %d×%d",
			a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// Trace returns the sum of the diagonal elements of a square matrix.
func (m *Dense) Trace() float64 {
	if m.Rows != m.Cols {
		panic("linalg: Trace of non-square matrix")
	}
	var t float64
	for i := 0; i < m.Rows; i++ {
		t += m.At(i, i)
	}
	return t
}

// IsSymmetric reports whether the matrix is square and symmetric to within
// tolerance tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			d := m.At(i, j) - m.At(j, i)
			if d < -tol || d > tol {
				return false
			}
		}
	}
	return true
}
