package linalg

import "repro/internal/parallel"

// Sharding grains for the parallel kernels: below these sizes the
// goroutine handoff costs more than the arithmetic it distributes.
const (
	// matVecRowGrain is the minimum rows per MatVec shard.
	matVecRowGrain = 512
	// axpyGrain is the minimum vector elements per element-sharded
	// update (OrthogonalizeBlock's subtraction).
	axpyGrain = 2048
)

// parOp wraps an operator whose MatVec is row-sharded; see Par.
type parOp struct {
	op      Operator
	workers int
}

// Par returns an operator whose MatVec runs row-sharded across up to
// workers goroutines. CSR and Dense operators shard natively; any other
// operator is returned unchanged (its MatVec internals are opaque).
// workers <= 1 also returns the operator unchanged. The wrapped MatVec
// is bitwise identical to the unwrapped one at every worker count.
func Par(a Operator, workers int) Operator {
	if workers <= 1 {
		return a
	}
	switch a.(type) {
	case *CSR, *Dense:
		return &parOp{op: a, workers: workers}
	}
	return a
}

// Unwrap returns the operator underneath a Par wrapper, or a itself.
// Densify and other structure-aware consumers use it to recover the
// concrete CSR/Dense representation.
func Unwrap(a Operator) Operator {
	if p, ok := a.(*parOp); ok {
		return p.op
	}
	return a
}

func (p *parOp) Dim() int { return p.op.Dim() }

func (p *parOp) MatVec(x, y []float64) {
	switch t := p.op.(type) {
	case *CSR:
		t.MatVecPar(x, y, p.workers)
	case *Dense:
		t.MatVecPar(x, y, p.workers)
	default:
		p.op.MatVec(x, y)
	}
}

// OrthogonalizeBlock subtracts from v its projections onto the rows of
// basis (assumed orthonormal) using two passes of block classical
// Gram–Schmidt: each pass computes every projection coefficient against
// a snapshot of v, then applies the combined subtraction. Two passes
// give the same "twice is enough" robustness as Orthogonalize.
//
// The kernel is built so the arithmetic is independent of workers: each
// coefficient is one serial left-to-right Dot computed by one worker,
// and the subtraction updates each element of v over the basis rows in
// index order regardless of how elements are sharded. Any workers value
// (including 1) therefore produces bitwise-identical results — the
// property the eigensolvers rely on for parallelism-invariant spectra.
//
// It differs from Orthogonalize only in using the pass snapshot for all
// coefficients where Orthogonalize re-reads v between basis rows; both
// leave v orthogonal to the basis to working precision.
func OrthogonalizeBlock(v []float64, basis [][]float64, workers int) {
	OrthogonalizeBlockBuf(v, basis, workers, nil)
}

// OrthogonalizeBlockBuf is OrthogonalizeBlock with a caller-provided
// coefficient buffer, so per-iteration callers (the Lanczos and block
// Krylov reorthogonalization loops) stay allocation-free. coef needs
// capacity len(basis); a nil or short coef allocates internally. The
// buffer is scratch only — its contents on return are meaningless.
func OrthogonalizeBlockBuf(v []float64, basis [][]float64, workers int, coef []float64) {
	m := len(basis)
	if m == 0 {
		return
	}
	if cap(coef) < m {
		coef = make([]float64, m)
	}
	coef = coef[:m]
	if parallel.Workers(workers) == 1 {
		// Serial fast path without the chunk closures: the literals
		// passed to parallel.For escape to the heap (For may hand them
		// to worker goroutines), which would make every
		// reorthogonalization event allocate. The arithmetic below is
		// the chunked arithmetic with one chunk — bitwise identical.
		for pass := 0; pass < 2; pass++ {
			for b := 0; b < m; b++ {
				coef[b] = Dot(v, basis[b])
			}
			for b := 0; b < m; b++ {
				c, row := coef[b], basis[b]
				for i := range v {
					v[i] -= c * row[i]
				}
			}
		}
		return
	}
	orthogonalizeBlockPar(v, basis, workers, coef)
}

// orthogonalizeBlockPar is OrthogonalizeBlockBuf's sharded path. It is
// a separate function so its escaping chunk closures do not force the
// caller's locals (notably coef) onto the heap on the serial path.
func orthogonalizeBlockPar(v []float64, basis [][]float64, workers int, coef []float64) {
	m := len(basis)
	for pass := 0; pass < 2; pass++ {
		// Coefficients: one whole-vector dot per basis row, each serial.
		parallel.For(workers, m, 1, func(_, lo, hi int) {
			for b := lo; b < hi; b++ {
				coef[b] = Dot(v, basis[b])
			}
		})
		// Subtraction: shard the elements of v; each element accumulates
		// its update over the basis rows in index order, matching the
		// serial subtraction order bit for bit.
		parallel.For(workers, len(v), axpyGrain, func(_, lo, hi int) {
			for b := 0; b < m; b++ {
				c, row := coef[b], basis[b]
				for i := lo; i < hi; i++ {
					v[i] -= c * row[i]
				}
			}
		})
	}
}
