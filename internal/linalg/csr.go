package linalg

import (
	"fmt"
	"sort"

	"repro/internal/parallel"
)

// Triplet is a coordinate-format matrix entry used while assembling a CSR
// matrix. Duplicate (Row, Col) entries are summed during assembly.
type Triplet struct {
	Row, Col int
	Val      float64
}

// CSR is a compressed sparse row matrix. It is immutable after assembly.
type CSR struct {
	N, M   int       // rows, cols
	RowPtr []int     // len N+1
	ColIdx []int     // len nnz
	Val    []float64 // len nnz
}

// NewCSR assembles an n×m CSR matrix from triplets. Duplicates are summed;
// explicit zeros that result from cancellation are retained (they do not
// affect results, only storage).
func NewCSR(n, m int, ts []Triplet) *CSR {
	for _, t := range ts {
		if t.Row < 0 || t.Row >= n || t.Col < 0 || t.Col >= m {
			panic(fmt.Sprintf("linalg: triplet (%d,%d) out of range for %d×%d", t.Row, t.Col, n, m))
		}
	}
	sorted := make([]Triplet, len(ts))
	copy(sorted, ts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	c := &CSR{N: n, M: m, RowPtr: make([]int, n+1)}
	for i := 0; i < len(sorted); {
		j := i + 1
		v := sorted[i].Val
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j = j + 1
		}
		c.ColIdx = append(c.ColIdx, sorted[i].Col)
		c.Val = append(c.Val, v)
		c.RowPtr[sorted[i].Row+1]++
		i = j
	}
	for r := 0; r < n; r++ {
		c.RowPtr[r+1] += c.RowPtr[r]
	}
	return c
}

// Dim returns the number of rows.
func (c *CSR) Dim() int { return c.N }

// NNZ returns the number of stored entries.
func (c *CSR) NNZ() int { return len(c.Val) }

// At returns the value at (i, j), or 0 if no entry is stored there.
// It runs a binary search within row i.
func (c *CSR) At(i, j int) float64 {
	lo, hi := c.RowPtr[i], c.RowPtr[i+1]
	k := sort.SearchInts(c.ColIdx[lo:hi], j) + lo
	if k < hi && c.ColIdx[k] == j {
		return c.Val[k]
	}
	return 0
}

// MatVec computes y = c·x. y must have length c.N and must not alias x.
func (c *CSR) MatVec(x, y []float64) {
	if len(x) != c.M || len(y) != c.N {
		panic(fmt.Sprintf("linalg: CSR MatVec dimension mismatch (%d×%d)·%d -> %d",
			c.N, c.M, len(x), len(y)))
	}
	for i := 0; i < c.N; i++ {
		var s float64
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			s += c.Val[k] * x[c.ColIdx[k]]
		}
		y[i] = s
	}
}

// MatVecPar is MatVec with the rows sharded across up to workers
// goroutines (0 uses the process default; see internal/parallel). Each
// row is accumulated by exactly one worker in the same left-to-right
// order as MatVec, and rows write disjoint entries of y, so the result
// is bitwise identical to MatVec at every worker count.
func (c *CSR) MatVecPar(x, y []float64, workers int) {
	if len(x) != c.M || len(y) != c.N {
		panic(fmt.Sprintf("linalg: CSR MatVec dimension mismatch (%d×%d)·%d -> %d",
			c.N, c.M, len(x), len(y)))
	}
	parallel.For(workers, c.N, matVecRowGrain, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			var s float64
			for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
				s += c.Val[k] * x[c.ColIdx[k]]
			}
			y[i] = s
		}
	})
}

// Diag returns a copy of the diagonal of a square CSR matrix.
func (c *CSR) Diag() []float64 {
	if c.N != c.M {
		panic("linalg: Diag of non-square matrix")
	}
	d := make([]float64, c.N)
	for i := range d {
		d[i] = c.At(i, i)
	}
	return d
}

// ToDense expands the CSR matrix to a dense matrix.
func (c *CSR) ToDense() *Dense {
	d := NewDense(c.N, c.M)
	for i := 0; i < c.N; i++ {
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			d.Set(i, c.ColIdx[k], c.Val[k])
		}
	}
	return d
}

// RowNNZ returns the number of stored entries in row i.
func (c *CSR) RowNNZ(i int) int { return c.RowPtr[i+1] - c.RowPtr[i] }

// Operator is the minimal interface the iterative solvers need: a square
// linear operator with a matrix-vector product.
type Operator interface {
	Dim() int
	MatVec(x, y []float64)
}

var (
	_ Operator = (*CSR)(nil)
	_ Operator = (*Dense)(nil)
)
