package linalg

import (
	"math/rand"
	"testing"
)

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	m.Add(1, 2, 1)
	if m.At(0, 0) != 1 || m.At(1, 2) != 6 {
		t.Fatalf("At/Set/Add broken: %v", m.Data)
	}
	r := m.Row(1)
	if len(r) != 3 || r[2] != 6 {
		t.Fatalf("Row view wrong: %v", r)
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestDenseMatVec(t *testing.T) {
	m := NewDense(2, 3)
	// [1 2 3; 4 5 6]
	for j := 0; j < 3; j++ {
		m.Set(0, j, float64(j+1))
		m.Set(1, j, float64(j+4))
	}
	y := make([]float64, 2)
	m.MatVec([]float64{1, 1, 1}, y)
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MatVec = %v, want [6 15]", y)
	}
}

func TestDenseTransposeMulTrace(t *testing.T) {
	a := NewDense(2, 3)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, float64(i*3+j+1))
		}
	}
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != a.At(1, 2) {
		t.Fatal("Transpose wrong")
	}
	p := Mul(a, at) // 2x2
	// a = [1 2 3; 4 5 6]; a·aᵀ = [14 32; 32 77]
	want := [][]float64{{14, 32}, {32, 77}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if p.At(i, j) != want[i][j] {
				t.Fatalf("Mul = %v, want %v", p.Data, want)
			}
		}
	}
	if p.Trace() != 91 {
		t.Fatalf("Trace = %v, want 91", p.Trace())
	}
	if !p.IsSymmetric(0) {
		t.Error("a·aᵀ should be symmetric")
	}
}

func TestCSRAssembly(t *testing.T) {
	ts := []Triplet{
		{0, 1, 2}, {1, 0, 2}, {0, 1, 3}, // duplicate (0,1) sums to 5
		{2, 2, 7},
	}
	c := NewCSR(3, 3, ts)
	if c.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 (duplicates summed)", c.NNZ())
	}
	if c.At(0, 1) != 5 || c.At(1, 0) != 2 || c.At(2, 2) != 7 {
		t.Fatalf("At values wrong: %v / %v / %v", c.At(0, 1), c.At(1, 0), c.At(2, 2))
	}
	if c.At(0, 0) != 0 {
		t.Fatal("missing entry should read as 0")
	}
	if c.RowNNZ(0) != 1 || c.RowNNZ(1) != 1 || c.RowNNZ(2) != 1 {
		t.Fatal("RowNNZ wrong")
	}
}

func TestCSRMatVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(30)
		m := 1 + rng.Intn(30)
		var ts []Triplet
		for k := 0; k < rng.Intn(4*n); k++ {
			ts = append(ts, Triplet{rng.Intn(n), rng.Intn(m), rng.NormFloat64()})
		}
		c := NewCSR(n, m, ts)
		d := c.ToDense()
		x := make([]float64, m)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		yc := make([]float64, n)
		yd := make([]float64, n)
		c.MatVec(x, yc)
		d.MatVec(x, yd)
		for i := range yc {
			if !almostEqual(yc[i], yd[i], 1e-12) {
				t.Fatalf("trial %d: CSR/dense MatVec disagree at %d: %v vs %v", trial, i, yc[i], yd[i])
			}
		}
	}
}

func TestCSRDiag(t *testing.T) {
	c := NewCSR(3, 3, []Triplet{{0, 0, 1}, {1, 1, 2}, {0, 2, 9}})
	d := c.Diag()
	if d[0] != 1 || d[1] != 2 || d[2] != 0 {
		t.Fatalf("Diag = %v", d)
	}
}

func TestCSRRejectsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range triplet")
		}
	}()
	NewCSR(2, 2, []Triplet{{2, 0, 1}})
}
