package speccache

import (
	"sync"
	"testing"
)

// The regression this pins down: Fingerprint used to re-canonicalize
// the whole netlist on every call, which turned every cache lookup into
// an O(pins) hash. N lookups must cost exactly one canonicalization.
func TestFingerprintMemoizedOncePerNetlist(t *testing.T) {
	h := mustNetlist(t, []int{0, 1, 2}, []int{2, 3}, []int{1, 3})
	before := Canonicalizations()
	first := Fingerprint(h)
	for i := 0; i < 100; i++ {
		if got := Fingerprint(h); got != first {
			t.Fatalf("call %d: fingerprint changed from %s to %s", i, first, got)
		}
	}
	if delta := Canonicalizations() - before; delta != 1 {
		t.Errorf("101 Fingerprint calls ran %d canonicalizations, want exactly 1", delta)
	}
}

// SetAreas changes the canonical content, so it must drop the memo: the
// next Fingerprint re-canonicalizes and yields a different hash.
func TestSetAreasInvalidatesFingerprintMemo(t *testing.T) {
	h := mustNetlist(t, []int{0, 1}, []int{1, 2})
	unweighted := Fingerprint(h)
	before := Canonicalizations()
	if err := h.SetAreas([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	weighted := Fingerprint(h)
	if weighted == unweighted {
		t.Error("fingerprint unchanged after SetAreas; stale memo served")
	}
	if delta := Canonicalizations() - before; delta != 1 {
		t.Errorf("post-SetAreas Fingerprint ran %d canonicalizations, want 1", delta)
	}
	if got := Fingerprint(h); got != weighted {
		t.Errorf("memoized weighted fingerprint %s != %s", got, weighted)
	}
}

// Concurrent first calls may race the memo install (first write wins),
// but every caller must see the same hash, and once settled the memo
// serves everyone.
func TestFingerprintMemoConcurrent(t *testing.T) {
	h := mustNetlist(t, []int{0, 1, 2, 3}, []int{0, 2}, []int{1, 3})
	const goroutines = 16
	results := make([]string, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = Fingerprint(h)
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if results[i] != results[0] {
			t.Fatalf("goroutine %d saw %s, goroutine 0 saw %s", i, results[i], results[0])
		}
	}
	before := Canonicalizations()
	for i := 0; i < 50; i++ {
		Fingerprint(h)
	}
	if delta := Canonicalizations() - before; delta != 0 {
		t.Errorf("settled memo still ran %d canonicalizations", delta)
	}
}
