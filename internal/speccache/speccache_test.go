package speccache

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/hypergraph"
)

func mustNetlist(t *testing.T, nets ...[]int) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder()
	max := 0
	for _, net := range nets {
		for _, m := range net {
			if m > max {
				max = m
			}
		}
	}
	b.AddModules(max + 1)
	for i, net := range nets {
		if err := b.AddNet(fmt.Sprintf("n%d", i), net...); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestFingerprintCanonical(t *testing.T) {
	a := mustNetlist(t, []int{0, 1, 2}, []int{2, 3})
	b := mustNetlist(t, []int{2, 3}, []int{0, 1, 2}) // net order differs
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("fingerprint depends on net declaration order")
	}
	c := mustNetlist(t, []int{0, 1, 2}, []int{1, 3})
	if Fingerprint(a) == Fingerprint(c) {
		t.Error("distinct structures share a fingerprint")
	}
}

func TestFingerprintAreas(t *testing.T) {
	a := mustNetlist(t, []int{0, 1}, []int{1, 2})
	b := mustNetlist(t, []int{0, 1}, []int{1, 2})
	if err := b.SetAreas([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if Fingerprint(a) == Fingerprint(b) {
		t.Error("areas do not affect the fingerprint")
	}
}

func TestGetOrComputeHitMissAndCapacity(t *testing.T) {
	c := New(4)
	key := Key{Hash: "sha256:x", Model: "partitioning-specific"}
	var computes atomic.Int64
	compute := func(pairs int) func(context.Context) (Entry, error) {
		return func(context.Context) (Entry, error) {
			computes.Add(1)
			return Entry{Value: pairs, Pairs: pairs}, nil
		}
	}
	if _, hit, err := c.GetOrCompute(context.Background(), key, 11, compute(11)); err != nil || hit {
		t.Fatalf("first request: hit=%v err=%v", hit, err)
	}
	// Smaller request, same key: must hit without recompute.
	e, hit, err := c.GetOrCompute(context.Background(), key, 2, compute(2))
	if err != nil || !hit || e.Pairs != 11 {
		t.Fatalf("smaller request: hit=%v pairs=%d err=%v", hit, e.Pairs, err)
	}
	// Larger request: recompute and replace.
	e, hit, err = c.GetOrCompute(context.Background(), key, 20, compute(20))
	if err != nil || hit || e.Pairs != 20 {
		t.Fatalf("larger request: hit=%v pairs=%d err=%v", hit, e.Pairs, err)
	}
	if got := computes.Load(); got != 2 {
		t.Errorf("computes = %d, want 2", got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit, 2 misses, 1 entry", st)
	}
}

func TestGetOrComputeSingleflight(t *testing.T) {
	c := New(4)
	key := Key{Hash: "sha256:y", Model: "frankle"}
	var computes atomic.Int64
	release := make(chan struct{})
	compute := func(context.Context) (Entry, error) {
		computes.Add(1)
		<-release
		return Entry{Value: "dec", Pairs: 5}, nil
	}
	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = c.GetOrCompute(context.Background(), key, 5, compute)
		}(i)
	}
	// Let the goroutines pile up on the single in-flight compute.
	for c.Stats().Misses == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if got := computes.Load(); got != 1 {
		t.Errorf("computes = %d, want 1 (singleflight)", got)
	}
}

func TestGetOrComputeErrorNotCached(t *testing.T) {
	c := New(4)
	key := Key{Hash: "sha256:z", Model: "standard"}
	var computes atomic.Int64
	fail := func(context.Context) (Entry, error) {
		computes.Add(1)
		return Entry{}, fmt.Errorf("solver exploded")
	}
	if _, _, err := c.GetOrCompute(context.Background(), key, 3, fail); err == nil {
		t.Fatal("want error")
	}
	ok := func(context.Context) (Entry, error) {
		computes.Add(1)
		return Entry{Pairs: 3}, nil
	}
	if _, hit, err := c.GetOrCompute(context.Background(), key, 3, ok); err != nil || hit {
		t.Fatalf("after failure: hit=%v err=%v", hit, err)
	}
	if got := computes.Load(); got != 2 {
		t.Errorf("computes = %d, want 2 (errors are not cached)", got)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	put := func(hash string) {
		_, _, err := c.GetOrCompute(context.Background(), Key{Hash: hash}, 1,
			func(context.Context) (Entry, error) { return Entry{Pairs: 1}, nil })
		if err != nil {
			t.Fatal(err)
		}
	}
	put("a")
	put("b")
	put("a") // refresh a: b becomes LRU
	put("c") // evicts b
	if _, hit, _ := c.GetOrCompute(context.Background(), Key{Hash: "a"}, 1,
		func(context.Context) (Entry, error) { return Entry{Pairs: 1}, nil }); !hit {
		t.Error("a was evicted, want b")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 1 eviction, 2 entries", st)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestWaiterCancellation(t *testing.T) {
	c := New(2)
	key := Key{Hash: "sha256:w"}
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _, _ = c.GetOrCompute(context.Background(), key, 1, func(context.Context) (Entry, error) {
			close(started)
			<-release
			return Entry{Pairs: 1}, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.GetOrCompute(ctx, key, 1, func(context.Context) (Entry, error) {
		t.Error("second caller must not compute")
		return Entry{}, nil
	})
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	close(release)
}

// TestWinnerCancelledMidFlight pins the singleflight contract the jobs
// pool relies on when the job that won the compute is cancelled while
// followers wait on it. Two computes exist in practice:
//
//   - a cooperative compute aborts with the winner's ctx error, which
//     is shared with every follower and never cached (a later request
//     recomputes), and
//   - the pool's detached compute (see jobs.Pool.spectrum) ignores the
//     winner's cancellation, so the cancelled winner still delivers
//     the decomposition to its followers and to the cache.
func TestWinnerCancelledMidFlight(t *testing.T) {
	t.Run("cooperative-compute-shares-the-cancellation", func(t *testing.T) {
		c := New(4)
		key := Key{Hash: "sha256:winner-coop", Model: "standard"}
		winnerCtx, cancelWinner := context.WithCancel(context.Background())
		inCompute := make(chan struct{})
		winnerCompute := func(cctx context.Context) (Entry, error) {
			close(inCompute)
			<-cctx.Done() // the winning job's cancellation reaches the compute
			return Entry{}, cctx.Err()
		}

		winnerErr := make(chan error, 1)
		go func() {
			_, _, err := c.GetOrCompute(winnerCtx, key, 3, winnerCompute)
			winnerErr <- err
		}()
		<-inCompute

		// Followers pile on. A follower that joins the cohort shares the
		// winner's error; one that arrives after the cohort dissolved
		// becomes a new winner and computes for itself — both are legal,
		// neither may hang or observe a cached error.
		var computes atomic.Int64
		followerCompute := func(context.Context) (Entry, error) {
			computes.Add(1)
			return Entry{Value: "fresh", Pairs: 3}, nil
		}
		const followers = 4
		errs := make([]error, followers)
		var wg sync.WaitGroup
		for i := 0; i < followers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, _, errs[i] = c.GetOrCompute(context.Background(), key, 3, followerCompute)
			}(i)
		}
		time.Sleep(5 * time.Millisecond) // let followers reach the in-flight wait
		cancelWinner()
		wg.Wait()
		if err := <-winnerErr; err != context.Canceled {
			t.Errorf("winner err = %v, want context.Canceled", err)
		}
		for i, err := range errs {
			if err != nil && err != context.Canceled {
				t.Errorf("follower %d: err = %v, want nil or context.Canceled", i, err)
			}
		}
		// The cancellation must not be cached: the next request computes
		// (or hits a follower's fresh entry), never sees the stale error.
		entry, _, err := c.GetOrCompute(context.Background(), key, 3, followerCompute)
		if err != nil || entry.Pairs != 3 {
			t.Errorf("post-cancel request: entry=%+v err=%v", entry, err)
		}
	})

	t.Run("detached-compute-still-feeds-followers", func(t *testing.T) {
		c := New(4)
		key := Key{Hash: "sha256:winner-detached", Model: "standard"}
		winnerCtx, cancelWinner := context.WithCancel(context.Background())
		inCompute := make(chan struct{})
		release := make(chan struct{})
		var computes atomic.Int64
		// The pool's compute: detached from the job's cancellation, it
		// runs to completion no matter what happens to the winner.
		detached := func(context.Context) (Entry, error) {
			computes.Add(1)
			close(inCompute)
			<-release
			return Entry{Value: "spectrum", Pairs: 5}, nil
		}

		type res struct {
			entry Entry
			err   error
		}
		winnerRes := make(chan res, 1)
		go func() {
			entry, _, err := c.GetOrCompute(winnerCtx, key, 5, detached)
			winnerRes <- res{entry, err}
		}()
		<-inCompute

		const followers = 4
		results := make([]res, followers)
		var wg sync.WaitGroup
		for i := 0; i < followers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				entry, _, err := c.GetOrCompute(context.Background(), key, 5, detached)
				results[i] = res{entry, err}
			}(i)
		}

		cancelWinner() // the winning job dies mid-flight...
		close(release) // ...and the detached compute finishes anyway
		wg.Wait()
		w := <-winnerRes
		if w.err != nil || w.entry.Pairs != 5 {
			t.Errorf("winner: entry=%+v err=%v, want the computed entry", w.entry, w.err)
		}
		for i, r := range results {
			if r.err != nil || r.entry.Pairs != 5 {
				t.Errorf("follower %d: entry=%+v err=%v", i, r.entry, r.err)
			}
		}
		if got := computes.Load(); got != 1 {
			t.Errorf("computes = %d, want 1 (singleflight held through the cancel)", got)
		}
		// And the cancelled winner's work is cached for the future.
		if _, hit, err := c.GetOrCompute(context.Background(), key, 5, detached); !hit || err != nil {
			t.Errorf("post-cancel lookup: hit=%v err=%v, want a cache hit", hit, err)
		}
	})
}

// TestPrefixReuseEdgeCases drives GetOrCompute through the boundary
// sizes of the prefix-reuse rule (a cached entry serves any request for
// at most Entry.Pairs eigenpairs): pairs = 0, equality, one-past, and a
// full-spectrum (pairs = n) entry serving every smaller prefix.
func TestPrefixReuseEdgeCases(t *testing.T) {
	const n = 12 // stands in for "full spectrum" capacity
	key := Key{Hash: "sha256:prefix", Model: "partitioning-specific"}
	cases := []struct {
		name string
		// sequence of (requested pairs, computed capacity); computed
		// capacity is what the fake eigensolve delivers on a miss.
		steps []struct {
			request, deliver int
			wantHit          bool
		}
	}{
		{
			name: "pairs=0 request always hits once anything is cached",
			steps: []struct {
				request, deliver int
				wantHit          bool
			}{
				{0, 1, false}, // miss: empty cache; compute delivers 1
				{0, 0, true},  // 0 <= 1: served from cache
			},
		},
		{
			name: "equal capacity hits, one past recomputes",
			steps: []struct {
				request, deliver int
				wantHit          bool
			}{
				{4, 4, false},
				{4, 0, true},  // request == capacity
				{5, 5, false}, // capacity+1: recompute, capacity grows
				{4, 0, true},  // old prefix still served
				{5, 0, true},
			},
		},
		{
			name: "full-spectrum entry serves every prefix",
			steps: []struct {
				request, deliver int
				wantHit          bool
			}{
				{n, n, false},
				{0, 0, true},
				{1, 0, true},
				{n - 1, 0, true},
				{n, 0, true},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(4)
			for si, step := range tc.steps {
				deliver := step.deliver
				entry, hit, err := c.GetOrCompute(context.Background(), key, step.request,
					func(context.Context) (Entry, error) {
						return Entry{Value: si, Pairs: deliver}, nil
					})
				if err != nil {
					t.Fatalf("step %d: %v", si, err)
				}
				if hit != step.wantHit {
					t.Fatalf("step %d: request %d: hit = %v, want %v", si, step.request, hit, step.wantHit)
				}
				if entry.Pairs < step.request {
					t.Fatalf("step %d: served %d pairs for a request of %d", si, entry.Pairs, step.request)
				}
			}
		})
	}
}

// TestCapacityNeverShrinks: a smaller recompute for an existing key must
// not shrink the stored capacity (store keeps the larger entry).
func TestCapacityNeverShrinks(t *testing.T) {
	c := New(4)
	key := Key{Hash: "sha256:grow", Model: "m"}
	mustCompute := func(request, deliver int) {
		t.Helper()
		if _, _, err := c.GetOrCompute(context.Background(), key, request,
			func(context.Context) (Entry, error) { return Entry{Pairs: deliver}, nil }); err != nil {
			t.Fatal(err)
		}
	}
	mustCompute(8, 8)
	// A fresh key forces the next call through compute even though the
	// cache could serve it; simulate by deleting nothing — request less
	// than capacity just hits. So grow-then-probe: request 8 hits.
	entry, hit, err := c.GetOrCompute(context.Background(), key, 3,
		func(context.Context) (Entry, error) {
			t.Fatal("compute ran despite sufficient cached capacity")
			return Entry{}, nil
		})
	if err != nil || !hit || entry.Pairs != 8 {
		t.Fatalf("hit=%v pairs=%d err=%v, want hit with capacity 8", hit, entry.Pairs, err)
	}
}
