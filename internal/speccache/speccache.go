// Package speccache is the content-addressed eigendecomposition cache
// behind the spectrald daemon: netlists are identified by a canonical
// hash, and decompositions are cached per (hash, model) with a recorded
// eigenvector capacity, so a request needing d eigenvectors is served
// by any cached decomposition of the same netlist and model with
// capacity >= d. A d-sweep or a method comparison (MELO vs SB vs SFC vs
// HL all share the partitioning-specific model) pays for one eigensolve.
//
// The cache is a strict LRU over entries with singleflight computation:
// concurrent requests for the same key share one compute instead of
// racing duplicate eigensolves, and a request that needs more
// eigenvectors than a cached entry holds recomputes and replaces it
// (capacities only grow).
package speccache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/hypergraph"
	"repro/internal/trace"
)

// canonicalizations counts full canonical-form hash computations (cache
// misses of the per-netlist memo) — observable via Canonicalizations so
// tests can assert the hot submit loop pays for at most one per
// netlist.
var canonicalizations atomic.Uint64

// Canonicalizations returns the number of full canonical-form hashings
// performed process-wide since start. The delta across a workload is
// the regression-test surface for the fingerprint memo.
func Canonicalizations() uint64 { return canonicalizations.Load() }

// Fingerprint returns the canonical content hash of a netlist:
// "sha256:<hex>" over the module count, per-module areas (when set) and
// the sorted net structure. Module and net names are excluded — two
// netlists that differ only in naming are the same instance to every
// algorithm in this repository, which operate on indices.
//
// The result is memoized on the netlist (hypergraphs are immutable
// apart from SetAreas, which invalidates the memo), so a hot submit
// loop pays the O(pins log pins) canonicalization once per netlist, not
// once per job.
func Fingerprint(h *hypergraph.Hypergraph) string {
	if s := h.CanonicalHash(); s != "" {
		return s
	}
	s := fingerprintSlow(h)
	h.SetCanonicalHash(s)
	return s
}

func fingerprintSlow(h *hypergraph.Hypergraph) string {
	canonicalizations.Add(1)
	hash := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) {
		n := binary.PutUvarint(buf[:], v)
		hash.Write(buf[:n])
	}
	hash.Write([]byte("netlist-v1"))
	writeUvarint(uint64(h.NumModules()))
	if h.HasAreas() {
		hash.Write([]byte("areas"))
		for i, n := 0, h.NumModules(); i < n; i++ {
			binary.BigEndian.PutUint64(buf[:8], math.Float64bits(h.Area(i)))
			hash.Write(buf[:8])
		}
	}
	// Nets hold sorted distinct module indices (a Hypergraph invariant);
	// sorting the nets themselves makes the hash independent of net
	// declaration order, which no algorithm observes.
	nets := make([][]int, len(h.Nets))
	copy(nets, h.Nets)
	sortNets(nets)
	writeUvarint(uint64(len(nets)))
	for _, net := range nets {
		writeUvarint(uint64(len(net)))
		for _, m := range net {
			writeUvarint(uint64(m))
		}
	}
	return fmt.Sprintf("sha256:%x", hash.Sum(nil))
}

// sortNets orders nets lexicographically by their module lists.
func sortNets(nets [][]int) {
	sort.Slice(nets, func(a, b int) bool {
		x, y := nets[a], nets[b]
		for i := 0; i < len(x) && i < len(y); i++ {
			if x[i] != y[i] {
				return x[i] < y[i]
			}
		}
		return len(x) < len(y)
	})
}

// Key identifies one cached decomposition family: a netlist content
// hash plus the clique model it was decomposed under.
type Key struct {
	// Hash is the netlist fingerprint (see Fingerprint).
	Hash string
	// Model names the clique model (e.g. "partitioning-specific").
	Model string
}

// Entry is one cached value. Value is opaque to the cache (the daemon
// stores a *spectral.Spectrum); Pairs is its reuse capacity — the entry
// satisfies any request for at most Pairs eigenpairs.
type Entry struct {
	Value any
	Pairs int
}

// Stats reports cache effectiveness counters.
type Stats struct {
	Hits, Misses, Evictions uint64
	// WarmHints counts keys announced via MarkExpected — decompositions
	// a journal replay said were cached before a restart.
	WarmHints uint64
	Entries   int
}

// Cache is a bounded content-addressed LRU of eigendecompositions.
// Safe for concurrent use.
type Cache struct {
	mu        sync.Mutex
	max       int
	ll        *list.List // MRU at front; values are *slot
	items     map[Key]*list.Element
	inflight  map[Key]*call
	hits      uint64
	misses    uint64
	evicted   uint64
	warmHints uint64

	// onEvict, when set, receives every entry the LRU drops for
	// capacity. It is invoked outside the cache lock, on the goroutine
	// whose insert caused the eviction (a persistent tier spills the
	// still-warm decomposition to durable storage before it is lost).
	onEvict func(Key, Entry)
}

type slot struct {
	key   Key
	entry Entry
}

// call is one in-flight compute shared by all concurrent requesters of
// a key.
type call struct {
	done  chan struct{}
	entry Entry
	err   error
}

// New returns a cache holding at most maxEntries decompositions
// (minimum 1).
func New(maxEntries int) *Cache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &Cache{
		max:      maxEntries,
		ll:       list.New(),
		items:    make(map[Key]*list.Element),
		inflight: make(map[Key]*call),
	}
}

// SetOnEvict installs the eviction callback (see Cache.onEvict). Set it
// before the cache sees traffic; it is not synchronized against
// concurrent GetOrCompute calls.
func (c *Cache) SetOnEvict(fn func(Key, Entry)) { c.onEvict = fn }

// GetOrCompute returns the cached entry for key if it holds at least
// pairs eigenpairs, marking it most-recently-used; otherwise it runs
// compute (once, shared across concurrent callers of the same key) and
// caches the result. The second return reports a cache hit.
//
// compute receives ctx only for cooperative cancellation of the calling
// request: if ctx is cancelled while waiting on another caller's
// compute, GetOrCompute returns ctx.Err() immediately but the shared
// compute keeps running and its result is still cached for the next
// request. Errors are not cached.
func (c *Cache) GetOrCompute(ctx context.Context, key Key, pairs int, compute func(context.Context) (Entry, error)) (Entry, bool, error) {
	ctx, span := trace.Start(ctx, "cache.lookup",
		trace.Str("model", key.Model), trace.Int("pairs", pairs))
	entry, hit, err := c.getOrCompute(ctx, key, pairs, compute)
	if span != nil {
		span.Annotate(trace.Bool("hit", hit))
		span.End()
		tr := trace.FromContext(ctx)
		if hit {
			tr.Add("speccache.hits", 1)
			if entry.Pairs > pairs {
				// A larger cached decomposition served a smaller request —
				// the prefix-reuse path the d-sweep pattern relies on.
				tr.Add("speccache.prefix-reuse", 1)
			}
		} else if err == nil {
			tr.Add("speccache.misses", 1)
		}
	}
	return entry, hit, err
}

func (c *Cache) getOrCompute(ctx context.Context, key Key, pairs int, compute func(context.Context) (Entry, error)) (Entry, bool, error) {
	for {
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			s := el.Value.(*slot)
			if s.entry.Pairs >= pairs {
				c.ll.MoveToFront(el)
				c.hits++
				entry := s.entry
				c.mu.Unlock()
				return entry, true, nil
			}
			// Undersized: fall through and recompute at the larger size.
		}
		if cl, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-cl.done:
			case <-ctx.Done():
				return Entry{}, false, ctx.Err()
			}
			if cl.err != nil {
				return Entry{}, false, cl.err
			}
			if cl.entry.Pairs >= pairs {
				return cl.entry, true, nil
			}
			// The shared compute delivered fewer pairs than we need
			// (e.g. it was started for a smaller request); retry, which
			// will recompute at our size.
			continue
		}
		cl := &call{done: make(chan struct{})}
		c.inflight[key] = cl
		c.misses++
		c.mu.Unlock()

		cl.entry, cl.err = compute(ctx)
		if cl.err == nil && cl.entry.Pairs < pairs {
			cl.err = fmt.Errorf("speccache: compute delivered %d pairs, requested %d", cl.entry.Pairs, pairs)
		}

		c.mu.Lock()
		delete(c.inflight, key)
		var spilled []slot
		if cl.err == nil {
			spilled = c.store(key, cl.entry)
		}
		c.mu.Unlock()
		close(cl.done)
		if c.onEvict != nil {
			for _, s := range spilled {
				c.onEvict(s.key, s.entry)
			}
		}
		if cl.err != nil {
			return Entry{}, false, cl.err
		}
		return cl.entry, false, nil
	}
}

// store inserts or replaces the entry for key and evicts LRU entries
// beyond capacity, returning the evicted slots so the caller can hand
// them to the onEvict spill hook outside the lock. Caller holds c.mu.
// A replacement only ever grows an entry's capacity: computes are sized
// to the largest outstanding request.
func (c *Cache) store(key Key, e Entry) []slot {
	if el, ok := c.items[key]; ok {
		s := el.Value.(*slot)
		if e.Pairs >= s.entry.Pairs {
			s.entry = e
		}
		c.ll.MoveToFront(el)
		return nil
	}
	c.items[key] = c.ll.PushFront(&slot{key: key, entry: e})
	var spilled []slot
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		s := back.Value.(*slot)
		c.ll.Remove(back)
		delete(c.items, s.key)
		c.evicted++
		spilled = append(spilled, *s)
	}
	return spilled
}

// Get returns the cached entry for key if it holds at least pairs
// eigenpairs, marking it most-recently-used, without ever computing.
// Shard peers serve each other's lookups through it.
func (c *Cache) Get(key Key, pairs int) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		s := el.Value.(*slot)
		if s.entry.Pairs >= pairs {
			c.ll.MoveToFront(el)
			c.hits++
			return s.entry, true
		}
	}
	c.misses++
	return Entry{}, false
}

// Peek returns the entry under key when its capacity covers pairs,
// WITHOUT promoting it in the LRU order or counting a hit or miss. It
// is the read-only probe the warm-start path uses to look for a seed
// spectrum: an absent seed is not a cache miss (the delta solve then
// fetches the base through the full tier ladder), and probing must not
// perturb the eviction order the real lookups see.
func (c *Cache) Peek(key Key, pairs int) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		s := el.Value.(*slot)
		if s.entry.Pairs >= pairs {
			return s.entry, true
		}
	}
	return Entry{}, false
}

// Seed inserts an entry obtained elsewhere — a shard peer's push or a
// persistent-store preload — without running a compute. Capacity rules
// match GetOrCompute's: an existing larger entry is kept.
func (c *Cache) Seed(key Key, e Entry) {
	c.mu.Lock()
	spilled := c.store(key, e)
	c.mu.Unlock()
	if c.onEvict != nil {
		for _, s := range spilled {
			c.onEvict(s.key, s.entry)
		}
	}
}

// MarkExpected announces that key is about to be recomputed as part of
// a warm restart (the journal recorded it as cached before a crash).
// It only counts the hint — the caller still runs GetOrCompute, whose
// singleflight coalesces the prewarm with any re-enqueued job needing
// the same decomposition.
func (c *Cache) MarkExpected(key Key) {
	c.mu.Lock()
	c.warmHints++
	c.mu.Unlock()
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evicted, WarmHints: c.warmHints, Entries: c.ll.Len()}
}
