package eigen

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/linalg"
	"repro/internal/trace"
)

// Decomposition holds the result of an eigendecomposition. Values are
// sorted ascending, Values[j] corresponding to the unit-norm eigenvector
// stored in column j of Vectors. For a graph Laplacian, Values[0] ≈ 0 and
// Vectors column 0 is (a rotation of) the constant vector.
type Decomposition struct {
	Values  []float64
	Vectors *linalg.Dense // n×d, column j is the eigenvector for Values[j]
}

// D returns the number of eigenpairs in the decomposition.
func (dec *Decomposition) D() int { return len(dec.Values) }

// Vector returns a copy of eigenvector j.
func (dec *Decomposition) Vector(j int) []float64 {
	n := dec.Vectors.Rows
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		v[i] = dec.Vectors.At(i, j)
	}
	return v
}

// Truncate returns a decomposition containing only the first d eigenpairs.
// It shares no storage with dec. Truncating beyond D() is an error.
func (dec *Decomposition) Truncate(d int) (*Decomposition, error) {
	if d < 0 || d > dec.D() {
		return nil, fmt.Errorf("eigen: cannot truncate decomposition of %d pairs to %d", dec.D(), d)
	}
	n := dec.Vectors.Rows
	v := linalg.NewDense(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			v.Set(i, j, dec.Vectors.At(i, j))
		}
	}
	return &Decomposition{Values: linalg.CopyVec(dec.Values[:d]), Vectors: v}, nil
}

// SymEig computes the full eigendecomposition of the dense symmetric
// matrix a. The input is not modified. Eigenvalues are returned ascending
// with matching eigenvector columns.
func SymEig(a *linalg.Dense) (*Decomposition, error) {
	return SymEigCtx(context.Background(), a)
}

// SymEigCtx is SymEig with cooperative cancellation. The dense solver's
// two phases (Householder reduction, QL iteration) are direct rather
// than iterative-with-restarts, so cancellation is checked at the phase
// boundaries — the coarsest-grained checks in the pipeline, acceptable
// because the dense path is reserved for small matrices.
func SymEigCtx(ctx context.Context, a *linalg.Dense) (*Decomposition, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("eigen: SymEig requires a square matrix")
	}
	if !a.IsSymmetric(1e-10 * (1 + linalg.MaxAbs(a.Data))) {
		return nil, errors.New("eigen: SymEig requires a symmetric matrix")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, span := trace.Start(ctx, "eigen.dense", trace.Int("n", a.Rows))
	defer span.End()
	n := a.Rows
	z := a.Clone()
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(z, d, e)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := tql2(d, e, z); err != nil {
		return nil, err
	}
	sortEigenAscending(d, z)
	return &Decomposition{Values: d, Vectors: z}, nil
}

// Residual returns the largest residual ‖A·u_j − λ_j·u_j‖₂ over the
// eigenpairs of dec, where A is given as an operator. It is a convenience
// for tests and for convergence verification.
func Residual(a linalg.Operator, dec *Decomposition) float64 {
	n := a.Dim()
	u := make([]float64, n)
	au := make([]float64, n)
	var worst float64
	for j := 0; j < dec.D(); j++ {
		for i := 0; i < n; i++ {
			u[i] = dec.Vectors.At(i, j)
		}
		a.MatVec(u, au)
		linalg.Axpy(-dec.Values[j], u, au)
		if r := linalg.Norm2(au); r > worst {
			worst = r
		}
	}
	return worst
}
