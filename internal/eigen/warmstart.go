// Warm-started eigensolves for incremental (ECO) workloads: a prior
// decomposition of a nearby operator — the cached base spectrum of a
// netlist a delta was applied to — is evaluated against the new
// operator, and either reused outright, folded into a Lanczos starting
// vector, or rejected in favor of a cold solve.
package eigen

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/linalg"
)

// WarmOutcome classifies how a warm-start seed was used.
type WarmOutcome int

const (
	// WarmRejected: the seed was structurally unusable (dimension
	// mismatch, non-finite entries, lost orthonormality) or its Ritz
	// pairs are too far from the new operator's eigenpairs to help.
	// The caller must run a cold solve.
	WarmRejected WarmOutcome = iota
	// WarmAccepted: every seed Ritz pair already satisfies the residual
	// tolerance on the new operator. The refreshed decomposition
	// (Rayleigh quotients recomputed, pairs re-sorted) is the answer —
	// no iteration runs at all.
	WarmAccepted
	// WarmSeeded: the seed is a valid orthonormal subspace near the new
	// operator's invariant subspace, but not converged; Lanczos should
	// start from the seed's combined Ritz direction.
	WarmSeeded
)

// String returns the counter-suffix spelling used in traces.
func (o WarmOutcome) String() string {
	switch o {
	case WarmAccepted:
		return "accepted"
	case WarmSeeded:
		return "seeded"
	default:
		return "rejected"
	}
}

// seedableFrac bounds the relative residual beyond which a seed
// subspace is considered no better than a random start: a random unit
// vector on a graph Laplacian has residual O(‖A‖), so anything near
// that carries no usable spectral information.
const seedableFrac = 0.5

// SeedEval is the verdict on one warm-start seed.
type SeedEval struct {
	Outcome WarmOutcome
	// MaxResidual is max_i ‖A vᵢ − θᵢ vᵢ‖ over the evaluated pairs
	// (NaN when the seed failed structural checks before residuals
	// were computable).
	MaxResidual float64
	// Scale is the ‖A‖ estimate the acceptance threshold was relative
	// to: max(1, max_i |θᵢ|).
	Scale float64
	// Refreshed holds the reusable decomposition when Outcome is
	// WarmAccepted: the seed's vectors with Rayleigh quotients
	// recomputed against the new operator and pairs re-sorted
	// ascending. Freshly allocated — it never aliases the seed.
	Refreshed *Decomposition
	// Start is the unit-norm combined Ritz direction to hand to
	// LanczosOptions.InitialVector when Outcome is WarmSeeded.
	Start []float64
	// Reason says why the seed was rejected (empty otherwise).
	Reason string
}

// EvaluateWarmSeed judges a prior decomposition as a warm start for
// computing the d smallest eigenpairs of a. The acceptance criterion is
// the same relative residual test a cold Lanczos solve converges under:
// ‖A vᵢ − θᵢ vᵢ‖ ≤ tol·scale for every pair, with θᵢ the Rayleigh
// quotient of seed vector vᵢ on a and scale = max(1, max|θᵢ|). Because
// the seed holds only the smallest pairs, scale underestimates ‖A‖,
// which can only make acceptance stricter than the cold solve's test —
// a seed is never accepted more loosely than a cold solve would
// converge.
//
// Note the criterion certifies that each seed pair is near *an*
// eigenpair of a; for a perturbation large enough to pull a previously
// higher eigenvalue below the seeded window the accepted set could miss
// it. Residuals bound that window shift by MaxResidual, which
// acceptance caps at tol·scale — the same ambiguity a cold solve's
// convergence test tolerates inside clustered spectra.
//
// The evaluation is deterministic and costs d matvecs plus O(d²·n) for
// the orthonormality check.
func EvaluateWarmSeed(a linalg.Operator, seed *Decomposition, d int, tol float64) SeedEval {
	n := a.Dim()
	reject := func(reason string) SeedEval {
		return SeedEval{Outcome: WarmRejected, MaxResidual: math.NaN(), Reason: reason}
	}
	if seed == nil || seed.Vectors == nil {
		return reject("no seed decomposition")
	}
	if d <= 0 || d > n {
		return reject(fmt.Sprintf("requested %d pairs of a %d-dim operator", d, n))
	}
	if seed.Vectors.Rows != n {
		return reject(fmt.Sprintf("seed dimension %d != operator dimension %d", seed.Vectors.Rows, n))
	}
	if seed.D() < d {
		return reject(fmt.Sprintf("seed holds %d pairs, need %d", seed.D(), d))
	}

	// Copy the first d seed vectors and verify they are finite and
	// orthonormal — a corrupted or rank-deficient seed must not pass as
	// a subspace. The tolerance is loose (1e-6) relative to working
	// precision but tight enough to catch real corruption.
	const orthTol = 1e-6
	vecs := make([][]float64, d)
	for j := 0; j < d; j++ {
		u := make([]float64, n)
		for i := 0; i < n; i++ {
			x := seed.Vectors.At(i, j)
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return reject(fmt.Sprintf("seed vector %d has non-finite entries", j))
			}
			u[i] = x
		}
		if math.Abs(linalg.Norm2(u)-1) > orthTol {
			return reject(fmt.Sprintf("seed vector %d is not unit norm", j))
		}
		for k := 0; k < j; k++ {
			if math.Abs(linalg.Dot(vecs[k], u)) > orthTol {
				return reject(fmt.Sprintf("seed vectors %d and %d are not orthogonal", k, j))
			}
		}
		vecs[j] = u
	}

	// Refresh Rayleigh quotients and residuals against the new operator.
	theta := make([]float64, d)
	maxRes := 0.0
	au := make([]float64, n)
	for j, u := range vecs {
		a.MatVec(u, au)
		t := linalg.Dot(u, au)
		if math.IsNaN(t) || math.IsInf(t, 0) {
			return reject(fmt.Sprintf("seed pair %d has non-finite Rayleigh quotient", j))
		}
		theta[j] = t
		linalg.Axpy(-t, u, au)
		if r := linalg.Norm2(au); r > maxRes {
			maxRes = r
		}
	}
	// The acceptance threshold is relative to ‖A‖, like the residual
	// test a cold solve converges under. The seed holds only the
	// smallest pairs, so max|θ| badly underestimates a Laplacian's norm;
	// a few deterministic power-iteration steps recover a sound lower
	// bound (lower can only make acceptance stricter, never looser).
	scale := operatorScale(a, au)
	for _, t := range theta {
		if v := math.Abs(t); v > scale {
			scale = v
		}
	}

	ev := SeedEval{MaxResidual: maxRes, Scale: scale}
	switch {
	case maxRes <= tol*scale:
		// Converged already: re-sort pairs (a perturbation can swap
		// near-degenerate neighbors) and hand back a fresh decomposition.
		order := make([]int, d)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(x, y int) bool { return theta[order[x]] < theta[order[y]] })
		u := linalg.NewDense(n, d)
		vals := make([]float64, d)
		for jj, src := range order {
			vals[jj] = theta[src]
			col := vecs[src]
			for i := 0; i < n; i++ {
				u.Set(i, jj, col[i])
			}
		}
		ev.Outcome = WarmAccepted
		ev.Refreshed = &Decomposition{Values: vals, Vectors: u}
	case maxRes <= seedableFrac*scale:
		// Usable subspace: combine the Ritz vectors into one starting
		// direction, weighted toward the smallest pairs (they converge
		// last from a random start, so they deserve the head start).
		start := make([]float64, n)
		for j, u := range vecs {
			linalg.Axpy(1/float64(j+1), u, start)
		}
		if linalg.Normalize(start) == 0 {
			return reject("combined seed direction vanished")
		}
		ev.Outcome = WarmSeeded
		ev.Start = start
	default:
		ev.Outcome = WarmRejected
		ev.Reason = fmt.Sprintf("residual %.3g exceeds seedable fraction of scale %.3g", maxRes, scale)
	}
	return ev
}

// operatorScale lower-bounds ‖A‖ with a few power-iteration steps from
// a deterministic alternating-sign start (chosen to avoid a graph
// Laplacian's constant null space), flooring at 1. scratch must have
// length a.Dim() and is clobbered.
func operatorScale(a linalg.Operator, scratch []float64) float64 {
	n := a.Dim()
	x := make([]float64, n)
	for i := range x {
		if i%2 == 0 {
			x[i] = 1
		} else {
			x[i] = -1
		}
	}
	linalg.Normalize(x)
	best := 1.0
	for step := 0; step < 8; step++ {
		a.MatVec(x, scratch)
		r := linalg.Norm2(scratch)
		if math.IsNaN(r) || math.IsInf(r, 0) {
			break
		}
		if r > best {
			best = r
		}
		copy(x, scratch)
		if linalg.Normalize(x) == 0 {
			break
		}
	}
	return best
}
