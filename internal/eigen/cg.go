package eigen

import (
	"context"
	"errors"
	"math"

	"repro/internal/linalg"
)

// CGOptions configures the conjugate-gradient solver. The zero value
// selects sensible defaults.
type CGOptions struct {
	// Tol is the relative residual tolerance ‖r‖/‖b‖. Default 1e-10.
	Tol float64
	// MaxIter caps the number of iterations. Default 10·n.
	MaxIter int
}

// CG solves the symmetric positive-definite system a·x = b with the
// Jacobi-preconditioned conjugate-gradient method. x0 provides the
// starting guess (may be nil for zero). It returns the solution and the
// number of iterations performed.
//
// The analytical-placement baseline solves anchored Laplacian systems
// (Laplacian plus a positive diagonal), which are SPD, with this routine.
func CG(a linalg.Operator, b, x0 []float64, diag []float64, opts *CGOptions) ([]float64, int, error) {
	return CGCtx(context.Background(), a, b, x0, diag, opts)
}

// CGCtx is CG with cooperative cancellation, checked at every iteration
// boundary; a cancelled context aborts the solve within one iteration,
// returning ctx.Err().
func CGCtx(ctx context.Context, a linalg.Operator, b, x0 []float64, diag []float64, opts *CGOptions) ([]float64, int, error) {
	n := a.Dim()
	if len(b) != n {
		return nil, 0, errors.New("eigen: CG right-hand side has wrong length")
	}
	tol := 1e-10
	maxIter := 10 * n
	if opts != nil {
		if opts.Tol > 0 {
			tol = opts.Tol
		}
		if opts.MaxIter > 0 {
			maxIter = opts.MaxIter
		}
	}
	x := make([]float64, n)
	if x0 != nil {
		copy(x, x0)
	}
	r := make([]float64, n)
	ax := make([]float64, n)
	a.MatVec(x, ax)
	for i := range r {
		r[i] = b[i] - ax[i]
	}
	bnorm := linalg.Norm2(b)
	if bnorm == 0 {
		return make([]float64, n), 0, nil
	}
	// Already converged at the starting guess. Without this check a
	// (near-)exact x0 makes the first search direction (near-)zero, and
	// p'Ap ≤ 0 is then misreported as "operator not positive definite" —
	// exactly what happens in reanchoring placement rounds whose previous
	// solution already solves the new system.
	if linalg.Norm2(r) <= tol*bnorm {
		return x, 0, nil
	}

	// Jacobi preconditioner: z = r ./ diag. A nil or non-positive diagonal
	// entry falls back to the identity for that coordinate.
	prec := func(r, z []float64) {
		for i := range r {
			if diag != nil && diag[i] > 0 {
				z[i] = r[i] / diag[i]
			} else {
				z[i] = r[i]
			}
		}
	}

	z := make([]float64, n)
	prec(r, z)
	p := linalg.CopyVec(z)
	rz := linalg.Dot(r, z)
	ap := make([]float64, n)

	for it := 1; it <= maxIter; it++ {
		if err := ctx.Err(); err != nil {
			return nil, it - 1, err
		}
		a.MatVec(p, ap)
		pap := linalg.Dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			return nil, it, errors.New("eigen: CG operator is not positive definite")
		}
		alpha := rz / pap
		linalg.Axpy(alpha, p, x)
		linalg.Axpy(-alpha, ap, r)
		if linalg.Norm2(r) <= tol*bnorm {
			return x, it, nil
		}
		prec(r, z)
		rzNew := linalg.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return nil, maxIter, ErrNoConvergence
}
