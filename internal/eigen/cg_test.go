package eigen

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/linalg"
)

// shiftedOp applies L + I, a strictly positive-definite operator.
type shiftedOp struct{ lap *linalg.CSR }

func (s *shiftedOp) Dim() int { return s.lap.Dim() }

func (s *shiftedOp) MatVec(x, y []float64) {
	s.lap.MatVec(x, y)
	for i := range y {
		y[i] += x[i]
	}
}

// TestCGExactStartingGuess: when x0 already solves the system the first
// search direction is zero, and CG used to misreport the (perfectly SPD)
// operator as "not positive definite" instead of returning x0. This is
// the failure the oracle harness hit in analytical placement on
// disconnected netlists, where a reanchoring round's previous solution
// solves the new system exactly.
func TestCGExactStartingGuess(t *testing.T) {
	g := graph.Path(12)
	op := &shiftedOp{lap: g.Laplacian()}
	n := op.Dim()
	rng := rand.New(rand.NewSource(7))
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	op.MatVec(want, b)

	x, iters, err := CG(op, b, want, nil, nil)
	if err != nil {
		t.Fatalf("CG with exact starting guess: %v", err)
	}
	if iters != 0 {
		t.Errorf("iterations = %d, want 0 (already converged)", iters)
	}
	for i := range x {
		if d := x[i] - want[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

// TestCGColdStartStillSolves guards the normal path around the new
// early return: a zero starting guess must still converge.
func TestCGColdStartStillSolves(t *testing.T) {
	g := graph.Path(12)
	op := &shiftedOp{lap: g.Laplacian()}
	n := op.Dim()
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%3) - 1
	}
	x, _, err := CG(op, b, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ax := make([]float64, n)
	op.MatVec(x, ax)
	for i := range ax {
		if d := ax[i] - b[i]; d > 1e-8 || d < -1e-8 {
			t.Fatalf("residual[%d] = %g", i, d)
		}
	}
}
