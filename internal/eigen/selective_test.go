package eigen

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/trace"
)

// sparseTestLaplacian builds a connected random weighted Laplacian on n
// vertices, reproducibly.
func sparseTestLaplacian(n int, seed int64) *linalg.CSR {
	rng := rand.New(rand.NewSource(seed))
	var ts []linalg.Triplet
	deg := make([]float64, n)
	addEdge := func(i, j int, w float64) {
		ts = append(ts, linalg.Triplet{Row: i, Col: j, Val: -w}, linalg.Triplet{Row: j, Col: i, Val: -w})
		deg[i] += w
		deg[j] += w
	}
	for i := 0; i < n-1; i++ {
		addEdge(i, i+1, 1)
	}
	for k := 0; k < 3*n; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			addEdge(i, j, 1+rng.Float64())
		}
	}
	for i := 0; i < n; i++ {
		ts = append(ts, linalg.Triplet{Row: i, Col: i, Val: deg[i]})
	}
	return linalg.NewCSR(n, n, ts)
}

// gershgorin returns the Gershgorin bound max_i Σ_j |a_ij| ≥ ‖A‖₂.
func gershgorin(a *linalg.CSR) float64 {
	var worst float64
	for i := 0; i < a.N; i++ {
		var row float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			row += math.Abs(a.Val[k])
		}
		if row > worst {
			worst = row
		}
	}
	return worst
}

// TestSelectiveReorthMatchesFull: selective reorthogonalization must
// deliver the same spectrum as the full-reorthogonalization reference —
// eigenvalues to residual-tolerance accuracy, vectors orthonormal, and
// true residuals within the requested tolerance — on several seeded
// instances.
func TestSelectiveReorthMatchesFull(t *testing.T) {
	const n, d = 600, 8
	const tol = 1e-9
	for _, seed := range []int64{1, 2, 5} {
		lap := sparseTestLaplacian(n, seed)
		full, err := Lanczos(lap, d, &LanczosOptions{Tol: tol, Reorth: ReorthFull})
		if err != nil {
			t.Fatalf("seed %d full: %v", seed, err)
		}
		sel, err := Lanczos(lap, d, &LanczosOptions{Tol: tol, Reorth: ReorthSelective})
		if err != nil {
			t.Fatalf("seed %d selective: %v", seed, err)
		}
		scale := math.Max(1, full.Values[d-1])
		for j := 0; j < d; j++ {
			if dv := math.Abs(sel.Values[j] - full.Values[j]); dv > 1e-7*scale {
				t.Errorf("seed %d: λ_%d selective %v vs full %v (Δ %g)", seed, j, sel.Values[j], full.Values[j], dv)
			}
		}
		// Semi-orthogonality bounds the achievable true residual at
		// O(√ε·‖A‖) — selective reorthogonalization guarantees eigenvalue
		// accuracy, not full-orthogonality residuals (Simon). Gershgorin
		// bounds ‖A‖; 100√ε·‖A‖ passes with an order of magnitude to
		// spare while a broken ω-recurrence misses by orders.
		norm := gershgorin(lap)
		if r := Residual(lap, sel); r > 100*math.Sqrt(lanczosEps)*norm {
			t.Errorf("seed %d: selective residual %g too large (‖A‖ ≈ %g)", seed, r, norm)
		}
		// The returned Ritz vectors must stay orthonormal — the whole
		// point of the ω-recurrence's √ε semi-orthogonality bound.
		for a := 0; a < d; a++ {
			for b := a; b < d; b++ {
				dot := linalg.Dot(sel.Vector(a), sel.Vector(b))
				want := 0.0
				if a == b {
					want = 1
				}
				if math.Abs(dot-want) > 1e-7 {
					t.Errorf("seed %d: ⟨u_%d,u_%d⟩ = %v, want %v", seed, a, b, dot, want)
				}
			}
		}
	}
}

// TestSelectiveReorthSkipsWork: on a well-behaved instance the
// ω-recurrence must actually skip reorthogonalizations — that is the
// optimization — while full mode reorthogonalizes every step.
func TestSelectiveReorthSkipsWork(t *testing.T) {
	lap := sparseTestLaplacian(600, 3)
	count := func(mode ReorthMode) (steps, reorths, skipped int64) {
		tr := trace.New()
		ctx := trace.WithTracer(context.Background(), tr)
		if _, err := LanczosCtx(ctx, lap, 6, &LanczosOptions{Reorth: mode}); err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		return tr.Counter("eigen.matvec"), tr.Counter("eigen.reorth"), tr.Counter("eigen.reorth.skipped")
	}
	steps, reorths, skipped := count(ReorthSelective)
	if steps < 20 {
		t.Fatalf("solve took only %d steps; instance too easy to be meaningful", steps)
	}
	if skipped == 0 {
		t.Fatalf("selective mode skipped no reorthogonalizations over %d steps", steps)
	}
	if reorths >= steps {
		t.Fatalf("selective mode reorthogonalized %d times in %d steps — no better than full", reorths, steps)
	}
	_, fullReorths, fullSkipped := count(ReorthFull)
	if fullSkipped != 0 {
		t.Fatalf("full mode reported %d skips", fullSkipped)
	}
	if fullReorths <= reorths {
		t.Fatalf("full mode reorthogonalized %d times, selective %d — selective saved nothing", fullReorths, reorths)
	}
}

// TestLanczosIterationAllocsO1: the iteration loop must not allocate
// per step — basis growth is slab-amortized by the arena, the
// Gram–Schmidt coefficients and the tridiagonal convergence checks use
// reused scratch. The bound is total allocations well below one per
// Lanczos step; the pre-arena implementation allocated several.
func TestLanczosIterationAllocsO1(t *testing.T) {
	lap := sparseTestLaplacian(1500, 7)
	tr := trace.New()
	ctx := trace.WithTracer(context.Background(), tr)
	if _, err := LanczosCtx(ctx, lap, 8, nil); err != nil {
		t.Fatal(err)
	}
	steps := tr.Counter("eigen.matvec")
	if steps < 50 {
		t.Fatalf("only %d steps; instance too easy for an allocation bound", steps)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := Lanczos(lap, 8, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > float64(steps)/2 {
		t.Fatalf("AllocsPerRun = %v over %d steps — the iteration loop is allocating per step again", allocs, steps)
	}
}

// BenchmarkLanczosSelective measures a full sparse solve under the
// default selective reorthogonalization; run with -benchmem to watch
// the allocation budget the AllocsO1 test enforces.
func BenchmarkLanczosSelective(b *testing.B) {
	lap := sparseTestLaplacian(1500, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Lanczos(lap, 8, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSelectiveReorthDisconnected: the invariant-subspace restart path
// must keep working under selective reorthogonalization (the ω state is
// rebuilt after a restart).
func TestSelectiveReorthDisconnected(t *testing.T) {
	// Two disjoint paths: eigenvalue 0 with multiplicity 2.
	n := 80
	m := linalg.NewDense(n, n)
	link := func(i, j int) {
		m.Add(i, i, 1)
		m.Add(j, j, 1)
		m.Add(i, j, -1)
		m.Add(j, i, -1)
	}
	for i := 0; i < n/2-1; i++ {
		link(i, i+1)
	}
	for i := n / 2; i < n-1; i++ {
		link(i, i+1)
	}
	dec, err := Lanczos(m, 3, &LanczosOptions{Reorth: ReorthSelective})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dec.Values[0]) > 1e-8 || math.Abs(dec.Values[1]) > 1e-8 {
		t.Errorf("expected double zero eigenvalue, got %v", dec.Values[:3])
	}
	if dec.Values[2] < 1e-6 {
		t.Errorf("third eigenvalue should be positive, got %v", dec.Values[2])
	}
}
