package eigen

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// ReorthMode selects how the Lanczos iteration fights the classic loss
// of orthogonality among its basis vectors.
type ReorthMode int

const (
	// ReorthSelective (the default) runs the ω-recurrence estimate of
	// the worst inner product between the incoming basis vector and the
	// existing basis, and performs a full two-pass block
	// reorthogonalization only when the estimate crosses √ε — the
	// classical selective-reorthogonalization criterion (Parlett–Scott,
	// Simon). Steps between crossings cost only the three-term
	// recurrence, turning the O(j·n) per-step reorthogonalization into
	// an event that fires a handful of times per converged eigenpair.
	// A triggered reorthogonalization also forces one at the next step
	// ("reorthogonalize in pairs"): the recurrence's β_{j−1} term would
	// otherwise reinfect the new vector from its unpurged predecessor.
	ReorthSelective ReorthMode = iota
	// ReorthFull reorthogonalizes at every step — the pre-optimization
	// behavior, kept as the reference the partest suite compares
	// against and as a fallback for hostile spectra.
	ReorthFull
)

// lanczosEps is the unit roundoff of float64; √lanczosEps is the
// semi-orthogonality threshold selective reorthogonalization maintains.
const lanczosEps = 0x1p-52

// LanczosOptions configures the Lanczos solver. The zero value selects
// sensible defaults.
type LanczosOptions struct {
	// Tol is the relative residual tolerance for Ritz pair convergence.
	// Default 1e-9.
	Tol float64
	// MaxDim caps the Krylov subspace dimension. Default
	// min(n, max(6d+40, 120)).
	MaxDim int
	// Seed seeds the deterministic starting vector. Default 1.
	Seed int64
	// CheckEvery controls how often (in Lanczos steps) convergence is
	// tested. Default 10.
	CheckEvery int
	// Reorth selects full or selective reorthogonalization; the zero
	// value is ReorthSelective.
	Reorth ReorthMode
	// Fault, when non-nil, receives per-attempt and per-step callbacks
	// for deterministic fault injection (tests and the resilience
	// layer).
	Fault FaultHook
	// Workers bounds the goroutines the solver's kernels (row-sharded
	// MatVec, block Gram–Schmidt reorthogonalization) may use. 0 selects
	// the process default (parallel.Limit()); 1 forces serial execution.
	// Every setting produces bitwise-identical eigenpairs: the kernels
	// fix their arithmetic order independently of the worker count.
	Workers int
	// InitialVector, when non-nil, seeds the Krylov recurrence with the
	// given direction instead of the deterministic random start — the
	// warm-start path hands in a combination of a prior solve's Ritz
	// vectors here. The vector is copied and normalized; it must have
	// length n and a finite nonzero norm, or the solver falls back to
	// the random start. Invariant-subspace restarts still draw random
	// directions. The solve remains fully deterministic: the result is
	// a pure function of (operator, d, options, InitialVector).
	InitialVector []float64
}

func (o *LanczosOptions) withDefaults(n, d int) LanczosOptions {
	v := LanczosOptions{Tol: 1e-9, Seed: 1, CheckEvery: 10}
	if o != nil {
		if o.Tol > 0 {
			v.Tol = o.Tol
		}
		if o.MaxDim > 0 {
			v.MaxDim = o.MaxDim
		}
		if o.Seed != 0 {
			v.Seed = o.Seed
		}
		if o.CheckEvery > 0 {
			v.CheckEvery = o.CheckEvery
		}
		v.Reorth = o.Reorth
		v.Fault = o.Fault
		v.Workers = o.Workers
		v.InitialVector = o.InitialVector
	}
	v.Workers = parallel.Workers(v.Workers)
	if v.MaxDim == 0 {
		// Clustered spectra (typical for netlist-derived Laplacians) need
		// a generous Krylov space; selective reorthogonalization keeps
		// the common-path cost at O(MaxDim·n) plus a few full
		// reorthogonalization events per converged pair.
		v.MaxDim = 12*d + 100
		if v.MaxDim < 300 {
			v.MaxDim = 300
		}
	}
	if v.MaxDim > n {
		v.MaxDim = n
	}
	return v
}

// Lanczos computes the d smallest eigenpairs of the symmetric operator a
// using the Lanczos iteration with selective reorthogonalization (see
// ReorthMode). The smallest eigenpairs of a graph Laplacian converge
// first, matching the behaviour the paper relied on from LASO2: "when
// computing the eigenvectors with the smallest corresponding
// eigenvalues, vector i will always converge faster than vector j if
// i < j".
//
// Limitation inherited from single-vector Lanczos: an eigenvalue of
// multiplicity m > 1 contributes only one copy per Krylov space, so extra
// copies are found only via the invariant-subspace restart (exact
// degeneracy with a proper invariant subspace, e.g. disconnected graphs).
// For spectra with exactly degenerate interior eigenvalues (highly
// symmetric graphs such as cycles), use BlockKrylov, which resolves
// multiplicities up to its block width directly.
//
// The operator must be symmetric; this is not checked (a full check would
// be as expensive as the solve for sparse operators).
func Lanczos(a linalg.Operator, d int, opts *LanczosOptions) (*Decomposition, error) {
	return LanczosCtx(context.Background(), a, d, opts)
}

// LanczosCtx is Lanczos with cooperative cancellation: ctx is checked at
// every iteration boundary, so a cancelled context aborts the solve
// within one Lanczos step, returning ctx.Err().
//
// On ErrNoConvergence the returned decomposition is non-nil when a
// prefix of the requested pairs did converge within the budget: it holds
// those d' < d pairs (smallest pairs converge first, so the prefix is
// the informative one). Callers that cannot use a partial result must
// treat any non-nil error as total failure.
func LanczosCtx(ctx context.Context, a linalg.Operator, d int, opts *LanczosOptions) (*Decomposition, error) {
	n := a.Dim()
	if d <= 0 {
		return nil, errors.New("eigen: Lanczos requires d >= 1")
	}
	if d > n {
		return nil, fmt.Errorf("eigen: cannot compute %d eigenpairs of a %d-dimensional operator", d, n)
	}
	o := opts.withDefaults(n, d)
	if o.MaxDim < d {
		o.MaxDim = d
	}
	var directive FaultDirective
	if o.Fault != nil {
		dir, err := o.Fault.StartAttempt()
		if err != nil {
			return nil, err
		}
		directive = dir
	}
	// One span per attempt; kernel-loop counters accumulate in locals
	// and post once on exit so the hot loop sees no atomics.
	ctx, span := trace.Start(ctx, "eigen.lanczos",
		trace.Int("n", n), trace.Int("d", d), trace.Int("maxdim", o.MaxDim), trace.Int64("seed", o.Seed))
	var matvecs, reorths, skips, restarts int64
	defer func() {
		if tr := trace.FromContext(ctx); tr != nil {
			tr.Add("eigen.matvec", matvecs)
			tr.Add("eigen.reorth", reorths)
			tr.Add("eigen.reorth.skipped", skips)
			tr.Add("eigen.restarts", restarts)
		}
		span.Annotate(trace.Int64("steps", matvecs), trace.Int64("restarts", restarts))
		span.End()
	}()
	rng := rand.New(rand.NewSource(o.Seed))
	// Row-shard the operator's MatVec across the solver's workers; the
	// wrapped product is bitwise identical to the serial one.
	a = linalg.Par(a, o.Workers)

	// All per-step n-vectors (basis growth, the residual vector, restart
	// directions, Ritz assembly scratch) come from one arena owned by
	// this solve, so the iteration loop allocates O(1) amortized — see
	// linalg.Arena for the ownership rules (nothing from the arena may
	// appear in the returned Decomposition).
	ar := linalg.NewArena(n)

	// Krylov basis, alpha (diagonal of T) and beta (subdiagonal of T).
	basis := make([][]float64, 0, o.MaxDim)
	alphas := make([]float64, 0, o.MaxDim)
	betas := make([]float64, 0, o.MaxDim) // betas[j] couples basis[j] and basis[j+1]

	v := ar.Vec()
	if !seedUnitInto(o.InitialVector, v) {
		v = randomUnitInto(rng, v)
	}
	w := ar.Vec()

	// Selective-reorthogonalization state: omCur[i] estimates
	// ⟨basis[j], basis[i]⟩ for the newest basis vector j, omPrev the
	// same for j−1, omNext for the incoming candidate. Estimates are
	// signed (see omegaStep) and maintained via the ω-recurrence; the
	// trigger compares |ω| against √ε.
	var omPrev, omCur, omNext []float64
	forceReorth := false
	if o.Reorth == ReorthSelective {
		omPrev = make([]float64, 0, o.MaxDim+1)
		omCur = append(make([]float64, 0, o.MaxDim+1), 1)
		omNext = make([]float64, 0, o.MaxDim+1)
	}
	coef := make([]float64, o.MaxDim) // Gram–Schmidt coefficient scratch
	var ws tridiagWS                  // convergence-check workspace

	// scale estimates ‖A‖ for the relative residual test; refined as the
	// largest Ritz value seen.
	scale := 1.0

	for len(basis) < o.MaxDim {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		basis = append(basis, v)
		a.MatVec(v, w)
		matvecs++
		if o.Fault != nil {
			o.Fault.AtStep(len(basis), w)
		}
		alpha := linalg.Dot(v, w)
		alphas = append(alphas, alpha)
		// w -= alpha*v + beta*v_prev (the three-term recurrence), then
		// reorthogonalize per the selected mode.
		linalg.Axpy(-alpha, v, w)
		if len(basis) >= 2 {
			linalg.Axpy(-betas[len(betas)-1], basis[len(basis)-2], w)
		}
		var beta float64
		if o.Reorth == ReorthFull {
			linalg.OrthogonalizeBlockBuf(w, basis, o.Workers, coef)
			reorths++
			beta = linalg.Norm2(w)
		} else {
			beta = linalg.Norm2(w)
			doFull := forceReorth
			if beta > lanczosTiny*scale {
				omNext = omegaStep(omNext[:0], omCur, omPrev, alphas, betas, alpha, beta, scale)
				if !doFull {
					for _, om := range omNext[:len(basis)] {
						if math.Abs(om) > lanczosThreshold {
							doFull = true
							break
						}
					}
					// A fresh trigger purges this vector; the next one
					// inherits contamination through the recurrence's
					// β_{j−1} term, so purge it too.
					forceReorth = doFull
				} else {
					forceReorth = false
				}
			} else {
				// Near-breakdown: the invariant-subspace branch below
				// restarts with a fully orthogonalized fresh vector.
				doFull = false
				forceReorth = false
			}
			if doFull {
				linalg.OrthogonalizeBlockBuf(w, basis, o.Workers, coef)
				reorths++
				beta = linalg.Norm2(w)
				for i := range omNext[:len(basis)] {
					omNext[i] = lanczosEps
				}
			} else {
				skips++
			}
		}
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) || math.IsNaN(beta) || math.IsInf(beta, 0) {
			return nil, fmt.Errorf("eigen: lanczos step %d produced alpha=%v beta=%v: %w",
				len(basis), alpha, beta, ErrBreakdown)
		}

		j := len(basis)
		invariant := beta <= 1e-12*scale
		if j >= d && (j%o.CheckEvery == 0 || j == o.MaxDim || j == n || (invariant && j+1 >= n)) {
			vals, svecs, err := ws.eig(alphas, betas[:j-1])
			if err != nil {
				return nil, err
			}
			if m := vals[len(vals)-1]; m > scale {
				scale = m
			}
			// When the basis spans the whole space the Ritz pairs are
			// exact; otherwise require the residual estimates to pass.
			if !directive.Stall && (j == n || convergedSmallest(vals, svecs, beta, d, o.Tol*scale)) {
				// An exactly invariant proper subspace can hide extra
				// copies of degenerate eigenvalues (single-vector Lanczos
				// sees one vector per eigenspace); force a restart sweep
				// before accepting in that case.
				if !invariant || j == n {
					return ritzPairs(basis, vals, svecs, d, ar), nil
				}
			}
			if j == o.MaxDim {
				// Budget exhausted: salvage the converged prefix (pairs
				// converge smallest-first, so a prefix is exactly what
				// degradation needs). A stalled attempt reports at most
				// its directive's cap.
				limit := d
				if directive.Stall {
					limit = directive.MaxConverged
				}
				if limit > d {
					limit = d
				}
				if m := convergedPrefix(vals, svecs, beta, limit, o.Tol*scale); m >= 1 {
					return ritzPairs(basis, vals, svecs, m, ar), ErrNoConvergence
				}
				return nil, ErrNoConvergence
			}
		}

		if invariant {
			// Invariant subspace found (e.g. one component of a
			// disconnected graph, or a degenerate eigenspace exhausted).
			// Restart with a fresh random direction orthogonal to the
			// current basis so the remaining spectrum is explored.
			v = randomUnitInto(rng, w)
			linalg.OrthogonalizeBlockBuf(v, basis, o.Workers, coef)
			reorths++
			restarts++
			if linalg.Normalize(v) == 0 {
				// Basis already spans the whole space; the j == n branch
				// above should have fired, so treat this as failure.
				return nil, ErrNoConvergence
			}
			betas = append(betas, 0)
			w = ar.Vec()
			if o.Reorth == ReorthSelective {
				// The restart vector was just fully orthogonalized.
				omPrev, omCur = omCur, omPrev
				omCur = omCur[:0]
				for i := 0; i < len(basis); i++ {
					omCur = append(omCur, lanczosEps)
				}
				omCur = append(omCur, 1)
				forceReorth = false
			}
			continue
		}
		betas = append(betas, beta)
		linalg.Scale(1/beta, w)
		// w becomes the next basis vector; its predecessor stays in the
		// basis, so a fresh arena vector takes w's slot. MatVec fully
		// overwrites it next iteration.
		v, w = w, ar.Vec()
		if o.Reorth == ReorthSelective {
			omPrev, omCur, omNext = omCur, omNext, omPrev
		}
	}
	return nil, ErrNoConvergence
}

// lanczosTiny is the relative β floor below which the ω-recurrence is
// skipped: the invariant-subspace restart handles such steps.
const lanczosTiny = 1e-12

// lanczosThreshold is √ε, the semi-orthogonality bound: estimates above
// it trigger a full reorthogonalization.
var lanczosThreshold = math.Sqrt(lanczosEps)

// omegaStep advances the ω-recurrence one Lanczos step (Simon's
// orthogonality-estimate recurrence): given the estimates for the
// newest basis vector (omCur, length j+1 with omCur[j] = 1) and its
// predecessor (omPrev), it appends the estimates for the incoming
// candidate vector to dst (final length j+2, self-estimate 1) and
// returns it. alpha/beta are the current step's recurrence
// coefficients; betas has length j−1 here (the current β is not yet
// appended).
//
// The estimates are SIGNED, exactly as in the reference
// implementations (Simon's analysis, PROPACK's update of ω): the
// −β_{j−1}·ω_{j−1,i} term must be allowed to cancel the
// β_i·ω_{j,i+1} term — at i = j−1 both are β_{j−1}·1, and their
// cancellation is what keeps the estimate at roundoff level. A
// non-negative "upper bound" form adds them instead and inflates every
// estimate to O(β_{j−1}/β_j) = O(1), degenerating selective
// reorthogonalization into full. Consumers compare |ω| against the
// threshold. A roundoff-level noise term is added away from zero so
// the estimate tracks accumulation rather than lucky cancellation.
//
// The arithmetic is scalar and worker-independent, so selective
// reorthogonalization preserves the bitwise parallelism-invariance
// contract.
func omegaStep(dst []float64, omCur, omPrev []float64, alphas, betas []float64, alpha, beta, scale float64) []float64 {
	j := len(omCur) - 1 // index of the newest basis vector
	noise := 2 * lanczosEps * scale
	for i := 0; i < j; i++ {
		t := betas[i]*omCur[i+1] + (alphas[i]-alpha)*omCur[i]
		if i > 0 {
			t += betas[i-1] * omCur[i-1]
		}
		if j >= 1 && i < len(omPrev) {
			t -= betas[j-1] * omPrev[i]
		}
		dst = append(dst, (t+math.Copysign(noise, t))/beta)
	}
	// The immediate predecessor: the three-term recurrence subtracts its
	// component explicitly, leaving roundoff-level coupling.
	dst = append(dst, lanczosEps*scale/beta+lanczosEps)
	return append(dst, 1)
}

// convergedSmallest reports whether the d smallest Ritz pairs of the
// current tridiagonal matrix have residual estimates |beta·s_last| below
// tol. vals/svecs come from SymTridiagEig (sorted ascending).
func convergedSmallest(vals []float64, svecs *linalg.Dense, beta float64, d int, tol float64) bool {
	return convergedPrefix(vals, svecs, beta, d, tol) >= d
}

// convergedPrefix returns the length of the longest prefix (at most
// limit) of the smallest Ritz pairs whose residual estimates pass tol.
func convergedPrefix(vals []float64, svecs *linalg.Dense, beta float64, limit int, tol float64) int {
	m := len(vals)
	if limit > m {
		limit = m
	}
	for i := 0; i < limit; i++ {
		if math.Abs(beta*svecs.At(m-1, i)) > tol {
			return i
		}
	}
	return limit
}

// ritzPairs assembles the d smallest Ritz pairs from the Lanczos basis and
// the tridiagonal eigendecomposition. The result is freshly allocated —
// nothing aliases the basis, the workspace, or the arena.
func ritzPairs(basis [][]float64, vals []float64, svecs *linalg.Dense, d int, ar *linalg.Arena) *Decomposition {
	n := len(basis[0])
	m := len(basis)
	u := linalg.NewDense(n, d)
	col := ar.Vec()
	for j := 0; j < d; j++ {
		linalg.Zero(col)
		for k := 0; k < m; k++ {
			linalg.Axpy(svecs.At(k, j), basis[k], col)
		}
		linalg.Normalize(col)
		for i := 0; i < n; i++ {
			u.Set(i, j, col[i])
		}
	}
	ar.Free(col)
	return &Decomposition{Values: linalg.CopyVec(vals[:d]), Vectors: u}
}

// seedUnitInto copies the caller-provided starting direction into v and
// normalizes it, reporting whether the seed was usable (right length,
// finite, nonzero norm).
func seedUnitInto(seed, v []float64) bool {
	if len(seed) != len(v) {
		return false
	}
	for i, x := range seed {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
		v[i] = x
	}
	return linalg.Normalize(v) > 0
}

// randomUnitInto fills v with a unit-norm standard normal direction.
func randomUnitInto(rng *rand.Rand, v []float64) []float64 {
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	if linalg.Normalize(v) == 0 {
		v[0] = 1
	}
	return v
}

// SmallestEigenpairs computes the d smallest eigenpairs of the symmetric
// operator a, dispatching between the dense solver (small problems, or
// d close to n) and Lanczos (large sparse problems). This is the main
// entry point used by the partitioning pipeline.
//
// The default relative residual tolerance of 1e-6 is chosen for spectral
// partitioning, where eigenvector coordinates feed ordering heuristics
// and residuals far below the eigenvalue gaps add cost without changing
// any ordering. Use SmallestEigenpairsTol for stricter tolerances.
func SmallestEigenpairs(a linalg.Operator, d int) (*Decomposition, error) {
	return SmallestEigenpairsCtx(context.Background(), a, d, 1e-6)
}

// SmallestEigenpairsTol is SmallestEigenpairs with an explicit relative
// residual tolerance. For large sparse operators it retries Lanczos with
// progressively larger Krylov budgets (netlist Laplacians have tightly
// clustered small eigenvalues, so the required subspace dimension varies
// widely between instances).
func SmallestEigenpairsTol(a linalg.Operator, d int, tol float64) (*Decomposition, error) {
	return SmallestEigenpairsCtx(context.Background(), a, d, tol)
}

// SmallestEigenpairsCtx is SmallestEigenpairsTol with cooperative
// cancellation, honoured at every solver iteration boundary. For the
// full retry/fallback/degradation ladder, use resilience.SolveEigen,
// which builds on this package.
func SmallestEigenpairsCtx(ctx context.Context, a linalg.Operator, d int, tol float64) (*Decomposition, error) {
	n := a.Dim()
	if d > n {
		return nil, fmt.Errorf("eigen: requested %d eigenpairs of a %d-dimensional operator", d, n)
	}
	if n <= 256 || d > n/3 {
		dec, err := SymEigCtx(ctx, Densify(a))
		if err != nil {
			return nil, err
		}
		return dec.Truncate(d)
	}
	dim := 12*d + 100
	if dim < 300 {
		dim = 300
	}
	for {
		if dim > n {
			dim = n
		}
		dec, err := LanczosCtx(ctx, a, d, &LanczosOptions{Tol: tol, MaxDim: dim})
		if err == nil {
			return dec, nil
		}
		if !errors.Is(err, ErrNoConvergence) || dim >= n {
			return nil, err
		}
		dim *= 2
	}
}

// Densify materializes an operator as a dense matrix: directly for Dense
// and CSR operators, by applying it to the standard basis otherwise.
// Only sensible for small dimensions.
func Densify(a linalg.Operator) *linalg.Dense {
	switch t := linalg.Unwrap(a).(type) {
	case *linalg.Dense:
		return t
	case *linalg.CSR:
		return t.ToDense()
	}
	n := a.Dim()
	m := linalg.NewDense(n, n)
	e := make([]float64, n)
	col := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		a.MatVec(e, col)
		e[j] = 0
		for i := 0; i < n; i++ {
			m.Set(i, j, col[i])
		}
	}
	return m
}
