package eigen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

// TestQuickEigenvalueSumEqualsTrace: Σλ = trace(A) for random symmetric
// matrices.
func TestQuickEigenvalueSumEqualsTrace(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		a := linalg.NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		dec, err := SymEig(a)
		if err != nil {
			return false
		}
		sum := linalg.Sum(dec.Values)
		return math.Abs(sum-a.Trace()) < 1e-8*(1+math.Abs(sum))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickEigenvectorsReconstruct: U·Λ·Uᵀ reproduces A.
func TestQuickEigenvectorsReconstruct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		a := linalg.NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		dec, err := SymEig(a)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < n; k++ {
					s += dec.Vectors.At(i, k) * dec.Values[k] * dec.Vectors.At(j, k)
				}
				if math.Abs(s-a.At(i, j)) > 1e-7 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickEigenvaluesSorted: SymEig always returns ascending values.
func TestQuickEigenvaluesSorted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		a := linalg.NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		dec, err := SymEig(a)
		if err != nil {
			return false
		}
		for j := 1; j < n; j++ {
			if dec.Values[j] < dec.Values[j-1]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickCGMatchesDenseSolve: CG solves random SPD systems (AᵀA + I).
func TestQuickCGMatchesDenseSolve(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		raw := linalg.NewDense(n, n)
		for i := range raw.Data {
			raw.Data[i] = rng.NormFloat64()
		}
		spd := linalg.Mul(raw.Transpose(), raw)
		for i := 0; i < n; i++ {
			spd.Add(i, i, 1)
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		spd.MatVec(xTrue, b)
		diag := make([]float64, n)
		for i := range diag {
			diag[i] = spd.At(i, i)
		}
		x, _, err := CG(spd, b, nil, diag, &CGOptions{Tol: 1e-12, MaxIter: 50 * n})
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-5*(1+math.Abs(xTrue[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
