// Package eigen implements the eigensolvers used by the spectral
// partitioning pipeline:
//
//   - a dense symmetric solver (Householder tridiagonalization followed by
//     the implicit-shift QL iteration, the classic EISPACK tred2/tql2
//     pair), which returns the full spectrum and is used for small graphs
//     and for validating the sparse path, and
//
//   - a Lanczos solver with full reorthogonalization that computes the
//     smallest d eigenpairs of a large sparse symmetric operator. This is
//     the stdlib-only substitute for the LASO2 library the paper used.
//
// The package also provides a Jacobi-preconditioned conjugate-gradient
// solver for symmetric positive-definite systems, used by the analytical
// placement baseline.
package eigen

import (
	"errors"
	"math"

	"repro/internal/linalg"
)

// ErrNoConvergence is returned when an iterative eigenvalue computation
// fails to converge within its iteration budget.
var ErrNoConvergence = errors.New("eigen: eigenvalue iteration did not converge")

// tred2 reduces the symmetric matrix held in z (n×n, overwritten) to
// tridiagonal form with diagonal d and subdiagonal e (e[0] unused),
// accumulating the orthogonal transformation in z so that on return
// z^T · A · z = tridiag(d, e).
//
// This is a direct port of the EISPACK/Numerical-Recipes tred2 routine.
func tred2(z *linalg.Dense, d, e []float64) {
	n := z.Rows
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		h, scale := 0.0, 0.0
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(z.At(i, k))
			}
			if scale == 0 {
				e[i] = z.At(i, l)
			} else {
				for k := 0; k <= l; k++ {
					v := z.At(i, k) / scale
					z.Set(i, k, v)
					h += v * v
				}
				f := z.At(i, l)
				g := math.Sqrt(h)
				if f >= 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				z.Set(i, l, f-g)
				f = 0
				for j := 0; j <= l; j++ {
					z.Set(j, i, z.At(i, j)/h)
					g = 0
					for k := 0; k <= j; k++ {
						g += z.At(j, k) * z.At(i, k)
					}
					for k := j + 1; k <= l; k++ {
						g += z.At(k, j) * z.At(i, k)
					}
					e[j] = g / h
					f += e[j] * z.At(i, j)
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f = z.At(i, j)
					g = e[j] - hh*f
					e[j] = g
					for k := 0; k <= j; k++ {
						z.Add(j, k, -(f*e[k] + g*z.At(i, k)))
					}
				}
			}
		} else {
			e[i] = z.At(i, l)
		}
		d[i] = h
	}
	d[0] = 0
	e[0] = 0
	for i := 0; i < n; i++ {
		l := i - 1
		if d[i] != 0 {
			for j := 0; j <= l; j++ {
				g := 0.0
				for k := 0; k <= l; k++ {
					g += z.At(i, k) * z.At(k, j)
				}
				for k := 0; k <= l; k++ {
					z.Add(k, j, -g*z.At(k, i))
				}
			}
		}
		d[i] = z.At(i, i)
		z.Set(i, i, 1)
		for j := 0; j <= l; j++ {
			z.Set(j, i, 0)
			z.Set(i, j, 0)
		}
	}
}

// tql2 computes the eigenvalues and eigenvectors of a symmetric
// tridiagonal matrix with diagonal d and subdiagonal e (e[0] unused) by
// the implicit-shift QL method. On entry z holds the transformation from
// tred2 (or the identity); on return d holds the eigenvalues (unsorted)
// and the columns of z the corresponding eigenvectors.
//
// This is a direct port of the EISPACK tql2 routine.
func tql2(d, e []float64, z *linalg.Dense) error {
	n := len(d)
	if n == 1 {
		return nil
	}
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0

	for l := 0; l < n; l++ {
		iter := 0
		for {
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= unitRoundoff*dd {
					break
				}
			}
			if m == l {
				break
			}
			iter++
			if iter > 50 {
				return ErrNoConvergence
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			brokeEarly := false
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					// Recover from underflow: deflate and restart this l.
					d[i+1] -= p
					e[m] = 0
					brokeEarly = true
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				for k := 0; k < n; k++ {
					f = z.At(k, i+1)
					z.Set(k, i+1, s*z.At(k, i)+c*f)
					z.Set(k, i, c*z.At(k, i)-s*f)
				}
			}
			if brokeEarly {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}

// unitRoundoff is the threshold used for off-diagonal negligibility tests.
const unitRoundoff = 1e-15

// SymTridiagEig computes all eigenvalues and (optionally) eigenvectors of
// the symmetric tridiagonal matrix with diagonal diag and subdiagonal sub
// (len(sub) == len(diag)-1). Results are sorted ascending. If wantVectors
// is false the returned vectors matrix is nil.
func SymTridiagEig(diag, sub []float64, wantVectors bool) (vals []float64, vecs *linalg.Dense, err error) {
	n := len(diag)
	if len(sub) != n-1 && !(n == 0 && len(sub) == 0) {
		return nil, nil, errors.New("eigen: subdiagonal must have length n-1")
	}
	d := linalg.CopyVec(diag)
	e := make([]float64, n)
	copy(e[1:], sub)
	z := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		z.Set(i, i, 1)
	}
	if err := tql2(d, e, z); err != nil {
		return nil, nil, err
	}
	sortEigenAscending(d, z)
	if !wantVectors {
		z = nil
	}
	return d, z, nil
}

// tridiagWS is a reusable workspace for the tridiagonal
// eigendecompositions the Lanczos convergence checks run every
// CheckEvery steps. It exists so the Lanczos iteration loop performs no
// per-check allocations once the workspace has grown to the Krylov
// budget: the returned slices and matrix ALIAS the workspace and are
// valid only until the next eig call — callers must copy anything that
// outlives the check (ritzPairs copies into fresh result storage).
type tridiagWS struct {
	d, e []float64
	zbuf []float64
	z    linalg.Dense
}

// eig is SymTridiagEig(diag, sub, true) into the reused workspace.
func (ws *tridiagWS) eig(diag, sub []float64) (vals []float64, vecs *linalg.Dense, err error) {
	n := len(diag)
	if len(sub) != n-1 && !(n == 0 && len(sub) == 0) {
		return nil, nil, errors.New("eigen: subdiagonal must have length n-1")
	}
	// Grow geometrically: successive convergence checks arrive with n
	// increasing by CheckEvery, and per-check reallocation would defeat
	// the workspace (O(checks) allocations instead of O(log)).
	if cap(ws.d) < n {
		ws.d = make([]float64, 0, 2*n)
		ws.e = make([]float64, 0, 2*n)
	}
	ws.d = ws.d[:n]
	ws.e = ws.e[:n]
	copy(ws.d, diag)
	ws.e[0] = 0
	copy(ws.e[1:], sub)
	if cap(ws.zbuf) < n*n {
		ws.zbuf = make([]float64, 4*n*n)
	}
	ws.z = linalg.Dense{Rows: n, Cols: n, Data: ws.zbuf[:n*n]}
	linalg.Zero(ws.z.Data)
	for i := 0; i < n; i++ {
		ws.z.Set(i, i, 1)
	}
	if err := tql2(ws.d, ws.e, &ws.z); err != nil {
		return nil, nil, err
	}
	sortEigenAscending(ws.d, &ws.z)
	return ws.d, &ws.z, nil
}

// sortEigenAscending sorts eigenvalues in d ascending and permutes the
// columns of z accordingly (selection sort; n is small relative to the
// O(n^3) work already done).
func sortEigenAscending(d []float64, z *linalg.Dense) {
	n := len(d)
	for i := 0; i < n-1; i++ {
		k := i
		for j := i + 1; j < n; j++ {
			if d[j] < d[k] {
				k = j
			}
		}
		if k != i {
			d[i], d[k] = d[k], d[i]
			if z != nil {
				for r := 0; r < n; r++ {
					vi, vk := z.At(r, i), z.At(r, k)
					z.Set(r, i, vk)
					z.Set(r, k, vi)
				}
			}
		}
	}
}
