package eigen

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/linalg"
)

const warmTol = 1e-6

// warmOperator returns a connected random graph's Laplacian plus a
// converged decomposition of its d smallest pairs.
func warmOperator(t *testing.T, n, d int, seed int64) (*linalg.CSR, *Decomposition) {
	t.Helper()
	g := graph.RandomConnected(n, 3*n, seed)
	a := g.Laplacian()
	dec, err := SmallestEigenpairsTol(a, d, warmTol)
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	return a, dec
}

func TestEvaluateWarmSeedAcceptsConvergedSeed(t *testing.T) {
	a, dec := warmOperator(t, 300, 6, 1)
	ev := EvaluateWarmSeed(a, dec, 6, warmTol)
	if ev.Outcome != WarmAccepted {
		t.Fatalf("outcome = %v (res %g, scale %g, reason %q), want accepted", ev.Outcome, ev.MaxResidual, ev.Scale, ev.Reason)
	}
	if ev.Refreshed == nil || ev.Refreshed.D() != 6 {
		t.Fatalf("accepted eval lacks a refreshed decomposition")
	}
	// The refreshed pairs must themselves satisfy the residual bound and
	// be sorted ascending.
	if r := Residual(a, ev.Refreshed); r > warmTol*ev.Scale {
		t.Fatalf("refreshed residual %g > %g", r, warmTol*ev.Scale)
	}
	for j := 1; j < len(ev.Refreshed.Values); j++ {
		if ev.Refreshed.Values[j] < ev.Refreshed.Values[j-1] {
			t.Fatalf("refreshed values not ascending: %v", ev.Refreshed.Values)
		}
	}
	// Refreshed must not alias the seed.
	ev.Refreshed.Vectors.Set(0, 0, math.Pi)
	if dec.Vectors.At(0, 0) == math.Pi {
		t.Fatal("refreshed decomposition aliases the seed")
	}
}

func TestEvaluateWarmSeedSeedsPerturbedOperator(t *testing.T) {
	_, dec := warmOperator(t, 300, 6, 2)
	// Perturb: add a handful of edges (rank-small, O(1)-norm change —
	// far beyond tol·scale but well within the seedable band).
	g2 := graph.RandomConnected(300, 3*300, 2)
	edges := g2.Edges()
	extra := []graph.Edge{
		{U: 0, V: 150, W: 1}, {U: 7, V: 240, W: 1}, {U: 33, V: 99, W: 1},
	}
	p := graph.MustNew(300, append(edges, extra...))
	ev := EvaluateWarmSeed(p.Laplacian(), dec, 6, warmTol)
	if ev.Outcome != WarmSeeded {
		t.Fatalf("outcome = %v (res %g, scale %g, reason %q), want seeded", ev.Outcome, ev.MaxResidual, ev.Scale, ev.Reason)
	}
	if len(ev.Start) != 300 || math.Abs(linalg.Norm2(ev.Start)-1) > 1e-12 {
		t.Fatalf("seeded start vector is not unit length-%d", len(ev.Start))
	}

	// A seeded Lanczos must converge to the same spectrum as a cold
	// solve of the perturbed operator.
	coldDec, err := SmallestEigenpairsTol(p.Laplacian(), 6, warmTol)
	if err != nil {
		t.Fatalf("cold solve of perturbed operator: %v", err)
	}
	warmDec, err := Lanczos(p.Laplacian(), 6, &LanczosOptions{Tol: warmTol, InitialVector: ev.Start})
	if err != nil {
		t.Fatalf("seeded solve: %v", err)
	}
	for j := range coldDec.Values {
		if diff := math.Abs(coldDec.Values[j] - warmDec.Values[j]); diff > 1e-5*ev.Scale {
			t.Fatalf("eigenvalue %d: warm %.12g vs cold %.12g", j, warmDec.Values[j], coldDec.Values[j])
		}
	}
	if r := Residual(p.Laplacian(), warmDec); r > warmTol*ev.Scale*2 {
		t.Fatalf("seeded solve residual %g too large", r)
	}
}

func TestEvaluateWarmSeedRejections(t *testing.T) {
	a, dec := warmOperator(t, 120, 4, 3)

	corrupt := func(mutate func(d *Decomposition)) *Decomposition {
		c := &Decomposition{Values: linalg.CopyVec(dec.Values), Vectors: dec.Vectors.Clone()}
		mutate(c)
		return c
	}

	cases := []struct {
		name string
		seed *Decomposition
		d    int
	}{
		{"nil-seed", nil, 4},
		{"nil-vectors", &Decomposition{Values: []float64{0}}, 4},
		{"dim-mismatch", func() *Decomposition {
			_, small := warmOperator(t, 60, 4, 4)
			return small
		}(), 4},
		{"too-few-pairs", dec, 6},
		{"nan-entry", corrupt(func(c *Decomposition) { c.Vectors.Set(5, 1, math.NaN()) }), 4},
		{"inf-entry", corrupt(func(c *Decomposition) { c.Vectors.Set(0, 0, math.Inf(1)) }), 4},
		{"zeroed-vector", corrupt(func(c *Decomposition) {
			for i := 0; i < c.Vectors.Rows; i++ {
				c.Vectors.Set(i, 2, 0)
			}
		}), 4},
		{"duplicate-vector", corrupt(func(c *Decomposition) {
			for i := 0; i < c.Vectors.Rows; i++ {
				c.Vectors.Set(i, 3, c.Vectors.At(i, 2))
			}
		}), 4},
		{"bad-d", dec, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ev := EvaluateWarmSeed(a, tc.seed, tc.d, warmTol)
			if ev.Outcome != WarmRejected {
				t.Fatalf("outcome = %v, want rejected (reason %q)", ev.Outcome, ev.Reason)
			}
			if ev.Reason == "" {
				t.Fatal("rejection carries no reason")
			}
		})
	}
}

// TestEvaluateWarmSeedRejectsUnrelatedSubspace: an orthonormal but
// spectrally meaningless seed (random subspace) must fail the residual
// check, not be accepted or seeded.
func TestEvaluateWarmSeedRejectsUnrelatedSubspace(t *testing.T) {
	a, _ := warmOperator(t, 200, 4, 5)
	// An orthonormal basis of coordinate directions is exactly unit and
	// orthogonal, but is no eigenbasis of a random graph's Laplacian.
	u := linalg.NewDense(200, 4)
	for j := 0; j < 4; j++ {
		u.Set(j*17, j, 1)
	}
	seed := &Decomposition{Values: []float64{0, 1, 2, 3}, Vectors: u}
	ev := EvaluateWarmSeed(a, seed, 4, warmTol)
	if ev.Outcome == WarmAccepted {
		t.Fatalf("random subspace accepted (res %g, scale %g)", ev.MaxResidual, ev.Scale)
	}
}

func TestLanczosInitialVectorDeterminismAndFallback(t *testing.T) {
	g := graph.RandomConnected(350, 900, 9)
	a := g.Laplacian()
	start := make([]float64, 350)
	for i := range start {
		start[i] = math.Sin(float64(3*i + 1))
	}
	d1, err := Lanczos(a, 5, &LanczosOptions{InitialVector: start})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Lanczos(a, 5, &LanczosOptions{InitialVector: start})
	if err != nil {
		t.Fatal(err)
	}
	for j := range d1.Values {
		if d1.Values[j] != d2.Values[j] {
			t.Fatalf("InitialVector solve not deterministic at pair %d", j)
		}
		for i := 0; i < 350; i++ {
			if d1.Vectors.At(i, j) != d2.Vectors.At(i, j) {
				t.Fatalf("InitialVector solve vectors differ at (%d,%d)", i, j)
			}
		}
	}

	// Unusable initial vectors (wrong length, non-finite, zero) fall
	// back to the default random start — bitwise equal to no seed.
	ref, err := Lanczos(a, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, bad := range map[string][]float64{
		"short": make([]float64, 10),
		"nan":   append(make([]float64, 349), math.NaN()),
		"zero":  make([]float64, 350),
	} {
		got, err := Lanczos(a, 5, &LanczosOptions{InitialVector: bad})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for j := range ref.Values {
			if got.Values[j] != ref.Values[j] {
				t.Fatalf("%s: fallback differs from default start at pair %d", name, j)
			}
		}
	}
}

func TestOperatorScaleLowerBoundsNorm(t *testing.T) {
	g := graph.RandomConnected(150, 400, 11)
	a := g.Laplacian()
	dense := Densify(a)
	full, err := SymEig(dense)
	if err != nil {
		t.Fatal(err)
	}
	lambdaMax := full.Values[len(full.Values)-1]
	scratch := make([]float64, 150)
	est := operatorScale(a, scratch)
	if est > lambdaMax*(1+1e-9) {
		t.Fatalf("operatorScale %g exceeds λmax %g", est, lambdaMax)
	}
	if est < lambdaMax/4 {
		t.Fatalf("operatorScale %g too far below λmax %g to be useful", est, lambdaMax)
	}
}
