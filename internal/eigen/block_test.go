package eigen

import (
	"math"
	"testing"

	"repro/internal/linalg"
)

func TestBlockKrylovMatchesDense(t *testing.T) {
	lap := pathLaplacian(120)
	dec, err := BlockKrylov(lap, 5, &BlockKrylovOptions{Block: 2, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	want := pathEigenvalues(120)
	for j := 0; j < 5; j++ {
		if math.Abs(dec.Values[j]-want[j]) > 1e-7 {
			t.Errorf("λ_%d = %v, want %v", j+1, dec.Values[j], want[j])
		}
	}
	if r := Residual(lap, dec); r > 1e-6 {
		t.Errorf("residual %v", r)
	}
}

func TestBlockKrylovDegenerateSpectrum(t *testing.T) {
	// Two identical disjoint paths: EVERY eigenvalue has multiplicity 2.
	// The block solver (block >= 2) must find both copies of the smallest
	// eigenvalues without relying on random restarts.
	n := 80
	m := linalg.NewDense(n, n)
	for _, base := range []int{0, n / 2} {
		for i := base; i < base+n/2-1; i++ {
			m.Add(i, i, 1)
			m.Add(i+1, i+1, 1)
			m.Add(i, i+1, -1)
			m.Add(i+1, i, -1)
		}
	}
	dec, err := BlockKrylov(m, 4, &BlockKrylovOptions{Block: 2, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	// Eigenvalues come in pairs: {0, 0, λ, λ}.
	if math.Abs(dec.Values[0]) > 1e-8 || math.Abs(dec.Values[1]) > 1e-8 {
		t.Errorf("double zero eigenvalue missed: %v", dec.Values)
	}
	if math.Abs(dec.Values[2]-dec.Values[3]) > 1e-7 {
		t.Errorf("degenerate pair split: %v vs %v", dec.Values[2], dec.Values[3])
	}
	if dec.Values[2] < 1e-6 {
		t.Errorf("third eigenvalue should be positive: %v", dec.Values[2])
	}
	if r := Residual(m, dec); r > 1e-6 {
		t.Errorf("residual %v", r)
	}
}

func TestBlockKrylovHighMultiplicity(t *testing.T) {
	// K_12: eigenvalue 12 with multiplicity 11; ask for the 6 smallest
	// (0 and five copies of 12).
	lap := completeLaplacian(12)
	dec, err := BlockKrylov(lap, 6, &BlockKrylovOptions{Block: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dec.Values[0]) > 1e-8 {
		t.Errorf("λ_1 = %v", dec.Values[0])
	}
	for j := 1; j < 6; j++ {
		if math.Abs(dec.Values[j]-12) > 1e-7 {
			t.Errorf("λ_%d = %v, want 12", j+1, dec.Values[j])
		}
	}
}

func TestBlockKrylovValidation(t *testing.T) {
	lap := pathLaplacian(10)
	if _, err := BlockKrylov(lap, 0, nil); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := BlockKrylov(lap, 11, nil); err == nil {
		t.Error("d>n accepted")
	}
}

func TestBlockKrylovCycleDegeneratePairs(t *testing.T) {
	// The cycle's nonzero eigenvalues all have multiplicity 2 — the case
	// that famously defeats single-vector Lanczos (it sees one copy per
	// Krylov space and silently skips to the next distinct eigenvalue).
	// The block solver must match the exact dense spectrum.
	n := 90
	lap := cycleLaplacian(n)
	blk, err := BlockKrylov(lap, 5, &BlockKrylovOptions{Block: 2, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := SymEig(lap)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 5; j++ {
		if math.Abs(blk.Values[j]-dense.Values[j]) > 1e-7 {
			t.Errorf("λ_%d: block %v vs dense %v", j+1, blk.Values[j], dense.Values[j])
		}
	}
	// And the degenerate pairs must actually be pairs.
	if math.Abs(blk.Values[1]-blk.Values[2]) > 1e-8 || math.Abs(blk.Values[3]-blk.Values[4]) > 1e-8 {
		t.Errorf("degenerate pairs split: %v", blk.Values)
	}
}
