package eigen

import "errors"

// ErrBreakdown is returned when an iterative solver encounters a
// non-finite value in its recurrence (NaN or Inf), typically from a
// corrupted operator or an injected fault. Unlike ErrNoConvergence it
// signals that the attempt's state is unusable, not merely incomplete;
// both are retryable with a fresh start.
var ErrBreakdown = errors.New("eigen: numerical breakdown (non-finite recurrence)")

// FaultDirective instructs a single iterative-solver attempt to
// misbehave in a controlled, deterministic way. It exists so the
// resilience layer's fault plans can prove that every rung of the
// eigensolver retry ladder fires; production code always sees the zero
// directive.
type FaultDirective struct {
	// Stall suppresses convergence acceptance for the attempt, forcing
	// it to run to its iteration budget and report ErrNoConvergence
	// even if the requested pairs converge.
	Stall bool
	// MaxConverged, when > 0 on a stalled attempt, caps how many
	// leading eigenpairs the failing attempt reports as converged in
	// its partial result — simulating the partial convergence that
	// clustered spectra produce. 0 reports none.
	MaxConverged int
}

// FaultHook receives callbacks from iterative eigensolvers. Implemented
// by resilience.FaultPlan; a nil hook means no fault injection.
type FaultHook interface {
	// StartAttempt is called once when a solver attempt begins. A
	// non-nil error aborts the attempt immediately with that error.
	StartAttempt() (FaultDirective, error)
	// AtStep is called at each iteration boundary with the 1-based step
	// index and the iterate being built, which it may corrupt in place.
	AtStep(step int, v []float64)
}
