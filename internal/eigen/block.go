package eigen

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/parallel"
)

// BlockKrylovOptions configures the block Rayleigh–Ritz solver.
type BlockKrylovOptions struct {
	// Block is the block width; eigenvalue multiplicities up to Block are
	// resolved without restarts. Default 2.
	Block int
	// Tol is the relative residual tolerance. Default 1e-8.
	Tol float64
	// MaxDim caps the subspace dimension. Default min(n, max(12d+96, 240)).
	MaxDim int
	// Seed seeds the starting block. Default 1.
	Seed int64
	// Workers bounds the goroutines the solver's kernels (sharded
	// MatVec, block Gram–Schmidt, the Rayleigh–Ritz projection) may
	// use. 0 selects the process default; 1 forces serial. Results are
	// bitwise identical at every setting.
	Workers int
}

// BlockKrylov computes the d smallest eigenpairs of the symmetric
// operator a with a block Krylov subspace and Rayleigh–Ritz extraction.
// Single-vector Lanczos sees at most one copy of each degenerate
// eigenvalue per Krylov space and needs restarts to find the rest (see
// Lanczos); a block of width b captures multiplicities up to b directly,
// which matters for the disconnected netlists and symmetric structures
// that arise in partitioning.
func BlockKrylov(a linalg.Operator, d int, opts *BlockKrylovOptions) (*Decomposition, error) {
	return BlockKrylovCtx(context.Background(), a, d, opts)
}

// BlockKrylovCtx is BlockKrylov with cooperative cancellation, checked at
// every block-expansion boundary.
func BlockKrylovCtx(ctx context.Context, a linalg.Operator, d int, opts *BlockKrylovOptions) (*Decomposition, error) {
	n := a.Dim()
	if d < 1 || d > n {
		return nil, fmt.Errorf("eigen: BlockKrylov d = %d out of range [1,%d]", d, n)
	}
	b := 2
	tol := 1e-8
	seed := int64(1)
	workers := 0
	maxDim := 12*d + 96
	if maxDim < 240 {
		maxDim = 240
	}
	if opts != nil {
		if opts.Block > 0 {
			b = opts.Block
		}
		if opts.Tol > 0 {
			tol = opts.Tol
		}
		if opts.MaxDim > 0 {
			maxDim = opts.MaxDim
		}
		if opts.Seed != 0 {
			seed = opts.Seed
		}
		workers = opts.Workers
	}
	workers = parallel.Workers(workers)
	if maxDim > n {
		maxDim = n
	}
	if b > n {
		b = n
	}
	rng := rand.New(rand.NewSource(seed))
	a = linalg.Par(a, workers)

	// All n-vectors (basis growth, expansion candidates, scratch) come
	// from one arena owned by this solve; rejected candidates are
	// recycled through Free. Nothing from the arena appears in the
	// returned Decomposition — see linalg.Arena for the ownership rules.
	ar := linalg.NewArena(n)
	coef := make([]float64, maxDim) // Gram–Schmidt coefficient scratch

	// Orthonormal basis, grown block by block. v must be an arena
	// vector; a rejected candidate is returned to the arena.
	basis := make([][]float64, 0, maxDim)
	appendOrthonormal := func(v []float64) bool {
		linalg.OrthogonalizeBlockBuf(v, basis, workers, coef)
		if linalg.Normalize(v) < 1e-10 {
			ar.Free(v)
			return false
		}
		basis = append(basis, v)
		return true
	}
	// Initial random block.
	for len(basis) < b {
		v := randomUnitInto(rng, ar.Vec())
		if !appendOrthonormal(v) && len(basis) == 0 {
			return nil, fmt.Errorf("eigen: BlockKrylov failed to seed the basis")
		}
	}

	scale := 1.0
	av := ar.Vec()   // MatVec target
	ritz := ar.Vec() // Ritz-vector assembly scratch
	// Rayleigh–Ritz scratch, reused across checks: the projected matrix
	// (grown geometrically like tridiagWS) and the candidate result
	// storage, handed to the caller only on success.
	var projBuf []float64
	vals := make([]float64, d)
	var vecs *linalg.Dense
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Expand: apply A to the newest block and orthonormalize.
		start := len(basis) - b
		if start < 0 {
			start = 0
		}
		newest := basis[start:]
		added := 0
		for _, v := range newest {
			if len(basis) >= maxDim {
				break
			}
			a.MatVec(v, av)
			w := ar.Vec()
			copy(w, av)
			if appendOrthonormal(w) {
				added++
			}
		}
		if added == 0 && len(basis) < maxDim {
			// Invariant subspace: top up with fresh random directions.
			v := randomUnitInto(rng, ar.Vec())
			if !appendOrthonormal(v) {
				// Basis spans the whole space; fall through to Ritz.
				added = -1
			}
		}

		// Rayleigh–Ritz on the current subspace.
		m := len(basis)
		if m >= d {
			if cap(projBuf) < m*m {
				projBuf = make([]float64, 4*m*m)
			}
			proj := &linalg.Dense{Rows: m, Cols: m, Data: projBuf[:m*m]}
			for i := 0; i < m; i++ {
				a.MatVec(basis[i], av)
				// Upper-triangle dots of row i, sharded over j: each
				// (i,j)/(j,i) pair is written by exactly one worker and
				// each dot is a serial whole-vector product, so the
				// projection is worker-invariant.
				i := i
				parallel.For(workers, m-i, 1, func(_, lo, hi int) {
					for j := i + lo; j < i+hi; j++ {
						val := linalg.Dot(av, basis[j])
						proj.Set(i, j, val)
						proj.Set(j, i, val)
					}
				})
			}
			small, err := SymEig(proj)
			if err != nil {
				return nil, err
			}
			if top := small.Values[m-1]; math.Abs(top) > scale {
				scale = math.Abs(top)
			}
			// Assemble the d smallest Ritz pairs into the reused result
			// storage and test residuals.
			copy(vals, small.Values[:d])
			if vecs == nil {
				vecs = linalg.NewDense(n, d)
			}
			worst := 0.0
			for j := 0; j < d; j++ {
				linalg.Zero(ritz)
				for k := 0; k < m; k++ {
					linalg.Axpy(small.Vectors.At(k, j), basis[k], ritz)
				}
				linalg.Normalize(ritz)
				for i := 0; i < n; i++ {
					vecs.Set(i, j, ritz[i])
				}
				a.MatVec(ritz, av)
				linalg.Axpy(-vals[j], ritz, av)
				if r := linalg.Norm2(av); r > worst {
					worst = r
				}
			}
			if worst <= tol*scale || m >= n {
				return &Decomposition{Values: linalg.CopyVec(vals), Vectors: vecs}, nil
			}
			if m >= maxDim {
				return nil, ErrNoConvergence
			}
		}
		if m >= maxDim && m < d {
			return nil, ErrNoConvergence
		}
	}
}
