package eigen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// pathLaplacian returns the Laplacian of the unweighted path graph on n
// vertices, whose eigenvalues are 2−2cos(πk/n) = 4·sin²(πk/2n), k=0..n−1.
func pathLaplacian(n int) *linalg.Dense {
	m := linalg.NewDense(n, n)
	for i := 0; i < n-1; i++ {
		m.Add(i, i, 1)
		m.Add(i+1, i+1, 1)
		m.Add(i, i+1, -1)
		m.Add(i+1, i, -1)
	}
	return m
}

// cycleLaplacian returns the Laplacian of the n-cycle, eigenvalues
// 2−2cos(2πk/n).
func cycleLaplacian(n int) *linalg.Dense {
	m := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		m.Add(i, i, 1)
		m.Add(j, j, 1)
		m.Add(i, j, -1)
		m.Add(j, i, -1)
	}
	return m
}

// completeLaplacian returns the Laplacian of K_n: eigenvalues 0 and n
// (n−1 times).
func completeLaplacian(n int) *linalg.Dense {
	m := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				m.Set(i, j, float64(n-1))
			} else {
				m.Set(i, j, -1)
			}
		}
	}
	return m
}

// starLaplacian returns the Laplacian of the star K_{1,n−1}: eigenvalues
// 0, 1 (n−2 times), n.
func starLaplacian(n int) *linalg.Dense {
	m := linalg.NewDense(n, n)
	for i := 1; i < n; i++ {
		m.Add(0, 0, 1)
		m.Add(i, i, 1)
		m.Add(0, i, -1)
		m.Add(i, 0, -1)
	}
	return m
}

func pathEigenvalues(n int) []float64 {
	v := make([]float64, n)
	for k := 0; k < n; k++ {
		s := math.Sin(math.Pi * float64(k) / (2 * float64(n)))
		v[k] = 4 * s * s
	}
	return v
}

func TestSymEigPathGraph(t *testing.T) {
	for _, n := range []int{2, 3, 5, 10, 37} {
		dec, err := SymEig(pathLaplacian(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := pathEigenvalues(n)
		for k := 0; k < n; k++ {
			if math.Abs(dec.Values[k]-want[k]) > 1e-9 {
				t.Errorf("n=%d: eigenvalue %d = %v, want %v", n, k, dec.Values[k], want[k])
			}
		}
		if r := Residual(pathLaplacian(n), dec); r > 1e-9 {
			t.Errorf("n=%d: residual %v too large", n, r)
		}
	}
}

func TestSymEigCompleteGraph(t *testing.T) {
	n := 12
	dec, err := SymEig(completeLaplacian(n))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dec.Values[0]) > 1e-9 {
		t.Errorf("smallest eigenvalue %v, want 0", dec.Values[0])
	}
	for k := 1; k < n; k++ {
		if math.Abs(dec.Values[k]-float64(n)) > 1e-8 {
			t.Errorf("eigenvalue %d = %v, want %d", k, dec.Values[k], n)
		}
	}
}

func TestSymEigStarGraph(t *testing.T) {
	n := 9
	dec, err := SymEig(starLaplacian(n))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dec.Values[0]) > 1e-9 {
		t.Errorf("λ_1 = %v, want 0", dec.Values[0])
	}
	for k := 1; k < n-1; k++ {
		if math.Abs(dec.Values[k]-1) > 1e-9 {
			t.Errorf("λ_%d = %v, want 1", k+1, dec.Values[k])
		}
	}
	if math.Abs(dec.Values[n-1]-float64(n)) > 1e-9 {
		t.Errorf("λ_n = %v, want %d", dec.Values[n-1], n)
	}
}

func TestSymEigOrthonormalVectors(t *testing.T) {
	n := 20
	rng := rand.New(rand.NewSource(7))
	a := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	dec, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			dot := 0.0
			for r := 0; r < n; r++ {
				dot += dec.Vectors.At(r, i) * dec.Vectors.At(r, j)
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-9 {
				t.Fatalf("columns %d,%d: dot = %v, want %v", i, j, dot, want)
			}
		}
	}
	if r := Residual(a, dec); r > 1e-8 {
		t.Errorf("residual %v too large", r)
	}
}

func TestSymEigRejectsNonSymmetric(t *testing.T) {
	a := linalg.NewDense(2, 2)
	a.Set(0, 1, 1)
	if _, err := SymEig(a); err == nil {
		t.Fatal("expected error for non-symmetric input")
	}
	b := linalg.NewDense(2, 3)
	if _, err := SymEig(b); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestSymTridiagEig(t *testing.T) {
	// Tridiagonal form of the path Laplacian on 5 vertices is itself a
	// valid test input via diag/sub of a known matrix: use diag=2, sub=-1
	// (the Dirichlet Laplacian), eigenvalues 2−2cos(kπ/(n+1)), k=1..n.
	n := 8
	diag := make([]float64, n)
	sub := make([]float64, n-1)
	for i := range diag {
		diag[i] = 2
	}
	for i := range sub {
		sub[i] = -1
	}
	vals, vecs, err := SymTridiagEig(diag, sub, true)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
		if math.Abs(vals[k-1]-want) > 1e-10 {
			t.Errorf("λ_%d = %v, want %v", k, vals[k-1], want)
		}
	}
	if vecs == nil || vecs.Rows != n || vecs.Cols != n {
		t.Fatal("eigenvector matrix has wrong shape")
	}
}

func TestTruncate(t *testing.T) {
	dec, err := SymEig(pathLaplacian(10))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := dec.Truncate(3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.D() != 3 || tr.Vectors.Cols != 3 || tr.Vectors.Rows != 10 {
		t.Fatal("Truncate shape wrong")
	}
	for j := 0; j < 3; j++ {
		if tr.Values[j] != dec.Values[j] {
			t.Fatal("Truncate changed eigenvalues")
		}
	}
	if _, err := dec.Truncate(11); err == nil {
		t.Fatal("expected error truncating beyond D()")
	}
}

func TestLanczosMatchesDense(t *testing.T) {
	// Random sparse Laplacian-like matrix, large enough to take the
	// Lanczos path in SmallestEigenpairs.
	n := 400
	rng := rand.New(rand.NewSource(3))
	var ts []linalg.Triplet
	deg := make([]float64, n)
	addEdge := func(i, j int, w float64) {
		ts = append(ts, linalg.Triplet{Row: i, Col: j, Val: -w}, linalg.Triplet{Row: j, Col: i, Val: -w})
		deg[i] += w
		deg[j] += w
	}
	for i := 0; i < n-1; i++ {
		addEdge(i, i+1, 1) // path backbone keeps it connected
	}
	for k := 0; k < 3*n; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			addEdge(i, j, 1+rng.Float64())
		}
	}
	for i := 0; i < n; i++ {
		ts = append(ts, linalg.Triplet{Row: i, Col: i, Val: deg[i]})
	}
	lap := linalg.NewCSR(n, n, ts)

	d := 6
	sparse, err := Lanczos(lap, d, &LanczosOptions{Tol: 1e-9, MaxDim: 400})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := SymEig(lap.ToDense())
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < d; j++ {
		if math.Abs(sparse.Values[j]-dense.Values[j]) > 1e-7*(1+math.Abs(dense.Values[j])) {
			t.Errorf("eigenvalue %d: Lanczos %v vs dense %v", j, sparse.Values[j], dense.Values[j])
		}
	}
	if r := Residual(lap, sparse); r > 1e-6 {
		t.Errorf("Lanczos residual %v too large", r)
	}
}

func TestLanczosDisconnectedGraph(t *testing.T) {
	// Two disjoint paths: eigenvalue 0 has multiplicity 2; the restart
	// logic must find both zero modes.
	n := 60
	m := linalg.NewDense(n, n)
	for i := 0; i < n/2-1; i++ {
		m.Add(i, i, 1)
		m.Add(i+1, i+1, 1)
		m.Add(i, i+1, -1)
		m.Add(i+1, i, -1)
	}
	for i := n / 2; i < n-1; i++ {
		m.Add(i, i, 1)
		m.Add(i+1, i+1, 1)
		m.Add(i, i+1, -1)
		m.Add(i+1, i, -1)
	}
	dec, err := Lanczos(m, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dec.Values[0]) > 1e-8 || math.Abs(dec.Values[1]) > 1e-8 {
		t.Errorf("expected double zero eigenvalue, got %v", dec.Values[:3])
	}
	if dec.Values[2] < 1e-6 {
		t.Errorf("third eigenvalue should be positive, got %v", dec.Values[2])
	}
}

func TestLanczosArgumentChecks(t *testing.T) {
	m := pathLaplacian(5)
	if _, err := Lanczos(m, 0, nil); err == nil {
		t.Fatal("expected error for d=0")
	}
	if _, err := Lanczos(m, 6, nil); err == nil {
		t.Fatal("expected error for d>n")
	}
}

func TestSmallestEigenpairsDispatch(t *testing.T) {
	// Small problem: dense path.
	dec, err := SmallestEigenpairs(pathLaplacian(30), 4)
	if err != nil {
		t.Fatal(err)
	}
	want := pathEigenvalues(30)
	for j := 0; j < 4; j++ {
		if math.Abs(dec.Values[j]-want[j]) > 1e-9 {
			t.Errorf("dense dispatch eigenvalue %d = %v, want %v", j, dec.Values[j], want[j])
		}
	}
	if _, err := SmallestEigenpairs(pathLaplacian(5), 9); err == nil {
		t.Fatal("expected error for d>n")
	}
}

func TestCGSolvesSPDSystem(t *testing.T) {
	// Anchored path Laplacian: L + I is SPD.
	n := 50
	a := pathLaplacian(n)
	for i := 0; i < n; i++ {
		a.Add(i, i, 1)
	}
	rng := rand.New(rand.NewSource(11))
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MatVec(xTrue, b)
	diag := make([]float64, n)
	for i := range diag {
		diag[i] = a.At(i, i)
	}
	x, iters, err := CG(a, b, nil, diag, nil)
	if err != nil {
		t.Fatal(err)
	}
	if iters <= 0 {
		t.Error("CG reported zero iterations for nontrivial system")
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-7 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := pathLaplacian(5)
	for i := 0; i < 5; i++ {
		a.Add(i, i, 1)
	}
	x, _, err := CG(a, make([]float64, 5), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if linalg.Norm2(x) != 0 {
		t.Error("zero RHS should give zero solution")
	}
}

func TestCGRejectsIndefinite(t *testing.T) {
	a := linalg.NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, -1)
	if _, _, err := CG(a, []float64{1, 1}, nil, nil, nil); err == nil {
		t.Fatal("expected error for indefinite operator")
	}
}

func TestDensify(t *testing.T) {
	c := linalg.NewCSR(3, 3, []linalg.Triplet{{Row: 0, Col: 1, Val: 2}, {Row: 2, Col: 0, Val: -1}})
	d := Densify(c)
	if d.At(0, 1) != 2 || d.At(2, 0) != -1 || d.At(1, 1) != 0 {
		t.Fatalf("densify wrong: %v", d.Data)
	}
}

// TestResidualTable drives Residual through its edge cases: an empty
// decomposition (d = 0) has no pairs and must report a zero residual; a
// full dense decomposition (d = n) of an exact solve is at numerical
// zero; a deliberately wrong eigenvalue shows up as exactly the norm of
// the perturbation it induces.
func TestResidualTable(t *testing.T) {
	lap := pathLaplacian(8)
	full, err := SymEig(Densify(lap))
	if err != nil {
		t.Fatal(err)
	}
	broken, err := full.Truncate(3)
	if err != nil {
		t.Fatal(err)
	}
	broken = &Decomposition{Values: append([]float64(nil), broken.Values...), Vectors: broken.Vectors}
	broken.Values[1] += 0.5 // residual becomes ‖0.5·u‖ = 0.5 exactly (u is unit)
	cases := []struct {
		name string
		dec  *Decomposition
		min  float64
		max  float64
	}{
		{"d=0 empty", &Decomposition{Values: nil, Vectors: linalg.NewDense(8, 0)}, 0, 0},
		{"d=n full dense solve", full, 0, 1e-8},
		{"perturbed eigenvalue", broken, 0.5 - 1e-9, 0.5 + 1e-9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := Residual(lap, tc.dec)
			if r < tc.min || r > tc.max {
				t.Fatalf("Residual = %v, want in [%v, %v]", r, tc.min, tc.max)
			}
		})
	}
}

// TestTruncateTable covers Truncate's boundary sizes: 0 pairs, all
// pairs, and out-of-range requests.
func TestTruncateTable(t *testing.T) {
	lap := pathLaplacian(6)
	full, err := SymEig(Densify(lap))
	if err != nil {
		t.Fatal(err)
	}
	if dec, err := full.Truncate(0); err != nil || dec.D() != 0 {
		t.Fatalf("Truncate(0): dec.D()=%v err=%v, want empty decomposition", dec.D(), err)
	}
	if dec, err := full.Truncate(full.D()); err != nil || dec.D() != full.D() {
		t.Fatalf("Truncate(n) failed: %v", err)
	}
	if _, err := full.Truncate(full.D() + 1); err == nil {
		t.Fatal("Truncate beyond capacity accepted")
	}
	if _, err := full.Truncate(-1); err == nil {
		t.Fatal("Truncate(-1) accepted")
	}
}
