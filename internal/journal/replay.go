package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Job lifecycle states as the journal spells them. They mirror
// jobs.State values; the journal keeps its own strings so the log
// format is self-contained.
const (
	StatePending   = "pending"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// NetlistRecord is one replayed netlist body.
type NetlistRecord struct {
	Hash string
	Name string
	Body []byte
}

// JobReplay is the folded state of one job after replaying every
// segment: the latest-known lifecycle state plus everything needed to
// re-enqueue it (spec + netlist hash) or report it (error, result).
type JobReplay struct {
	ID              string
	Hash            string
	Spec            *JobSpec
	State           string
	CancelRequested bool
	Error           string
	Result          json.RawMessage
	SubmittedNS     int64
	FinishedNS      int64
}

// Terminal reports whether the job reached a terminal state before the
// journal ended.
func (r *JobReplay) Terminal() bool {
	return r.State == StateDone || r.State == StateFailed || r.State == StateCancelled
}

// SpectrumHint is a warm-restart hint: this decomposition existed in
// the spectrum cache before the crash.
type SpectrumHint struct {
	Hash  string
	Model string
	Pairs int
}

// ReplayStats quantifies what replay found — and what it had to throw
// away. Damage counters are diagnostics, not errors: replay always
// produces a usable (possibly truncated) state.
type ReplayStats struct {
	Segments       int      `json:"segments"`
	Records        int      `json:"records"`
	NetlistRecords int      `json:"netlistRecords"`
	JobRecords     int      `json:"jobRecords"`
	SpectrumHints  int      `json:"spectrumHints"`
	CorruptRecords int      `json:"corruptRecords"`
	TruncatedBytes int64    `json:"truncatedBytes"`
	TornSegments   int      `json:"tornSegments"`
	DuplicateTerm  int      `json:"duplicateTerminalRecords"`
	Warnings       []string `json:"warnings,omitempty"`
}

func (s *ReplayStats) warnf(format string, args ...any) {
	const maxWarnings = 32
	if len(s.Warnings) < maxWarnings {
		s.Warnings = append(s.Warnings, fmt.Sprintf(format, args...))
	}
}

// ReplayResult is the folded journal state Open hands back.
type ReplayResult struct {
	// Netlists holds the latest body per hash, in first-seen order.
	Netlists []NetlistRecord
	// Jobs holds one entry per job ID, in first-seen (submission) order.
	Jobs []*JobReplay
	// Hints lists spectra that were cached before the crash.
	Hints []SpectrumHint
	Stats ReplayStats

	byHash map[string]int
	byID   map[string]*JobReplay
	hints  map[Key]int
}

// Key identifies a spectrum hint.
type Key struct {
	Hash, Model string
}

func newReplayResult() *ReplayResult {
	return &ReplayResult{
		byHash: make(map[string]int),
		byID:   make(map[string]*JobReplay),
		hints:  make(map[Key]int),
	}
}

// Netlist returns the replayed body for hash.
func (r *ReplayResult) Netlist(hash string) (NetlistRecord, bool) {
	i, ok := r.byHash[hash]
	if !ok {
		return NetlistRecord{}, false
	}
	return r.Netlists[i], true
}

// replayDir folds every segment in dir. It returns the highest segment
// generation seen so Open can continue numbering past it.
func replayDir(dir string) (*ReplayResult, uint64, error) {
	res := newReplayResult()
	names, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return res, 0, nil
		}
		return nil, 0, fmt.Errorf("journal: scan %s: %w", dir, err)
	}
	var maxGen uint64
	for _, name := range names {
		if g, ok := parseSegName(name); ok && g > maxGen {
			maxGen = g
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			// Unreadable segment: warn and keep booting with what we have.
			res.Stats.warnf("segment %s unreadable: %v", name, err)
			res.Stats.CorruptRecords++
			continue
		}
		res.Stats.Segments++
		res.replaySegment(name, data)
	}
	return res, maxGen, nil
}

// replaySegment folds one segment's bytes into the result, truncating
// at the first sign of damage (torn tail or CRC mismatch) — everything
// before the damage point is kept, everything after is counted as lost.
func (r *ReplayResult) replaySegment(name string, data []byte) {
	st := &r.Stats
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		st.warnf("segment %s: bad magic; skipped (%d bytes)", name, len(data))
		st.CorruptRecords++
		st.TruncatedBytes += int64(len(data))
		return
	}
	off := len(segMagic)
	for off < len(data) {
		rest := len(data) - off
		if rest < 8 {
			// Torn header at the tail: a crash mid-write. Normal; drop it.
			st.TornSegments++
			st.TruncatedBytes += int64(rest)
			st.warnf("segment %s: torn record header at offset %d (%d bytes dropped)", name, off, rest)
			return
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxRecordBytes {
			st.CorruptRecords++
			st.TruncatedBytes += int64(rest)
			st.warnf("segment %s: implausible record length %d at offset %d; segment truncated", name, n, off)
			return
		}
		if rest-8 < n {
			// Torn payload at the tail.
			st.TornSegments++
			st.TruncatedBytes += int64(rest)
			st.warnf("segment %s: torn record payload at offset %d (%d bytes dropped)", name, off, rest)
			return
		}
		payload := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			st.CorruptRecords++
			st.TruncatedBytes += int64(rest)
			st.warnf("segment %s: CRC mismatch at offset %d; segment truncated", name, off)
			return
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			// Checksummed but undecodable (format drift): skip just this
			// record — the framing is intact, so the next one is safe.
			st.CorruptRecords++
			st.warnf("segment %s: undecodable record at offset %d: %v", name, off, err)
			off += 8 + n
			continue
		}
		r.fold(rec)
		st.Records++
		off += 8 + n
	}
}

// fold applies one record. Records may arrive out of submission order
// across segments (and a start can precede its submit when a crash cut
// between the buffered and durable write paths), so fold is
// order-tolerant: it merges fields rather than assuming sequence.
func (r *ReplayResult) fold(rec Record) {
	st := &r.Stats
	switch rec.Type {
	case TypeNetlist:
		st.NetlistRecords++
		if i, ok := r.byHash[rec.Hash]; ok {
			r.Netlists[i].Body = rec.Netlist
			if rec.Name != "" {
				r.Netlists[i].Name = rec.Name
			}
			return
		}
		r.byHash[rec.Hash] = len(r.Netlists)
		r.Netlists = append(r.Netlists, NetlistRecord{Hash: rec.Hash, Name: rec.Name, Body: rec.Netlist})
	case TypeSubmit, TypeStart, TypeCancel, TypeFinish:
		st.JobRecords++
		if rec.ID == "" {
			st.CorruptRecords++
			st.warnf("job record with empty ID (type %s) ignored", rec.Type)
			return
		}
		j := r.byID[rec.ID]
		if j == nil {
			j = &JobReplay{ID: rec.ID, State: StatePending}
			r.byID[rec.ID] = j
			r.Jobs = append(r.Jobs, j)
		}
		switch rec.Type {
		case TypeSubmit:
			j.Hash = rec.Hash
			j.Spec = rec.Spec
			j.SubmittedNS = rec.UnixNS
		case TypeStart:
			if !j.Terminal() {
				j.State = StateRunning
			}
		case TypeCancel:
			j.CancelRequested = true
		case TypeFinish:
			if j.Terminal() {
				st.DuplicateTerm++
				st.warnf("job %s: duplicate terminal record (%s after %s)", j.ID, rec.State, j.State)
				return
			}
			switch rec.State {
			case StateDone, StateFailed, StateCancelled:
				j.State = rec.State
			default:
				st.CorruptRecords++
				st.warnf("job %s: finish record with state %q ignored", j.ID, rec.State)
				return
			}
			j.Error = rec.Error
			j.Result = rec.Result
			j.FinishedNS = rec.UnixNS
		}
	case TypeSpectrum:
		st.SpectrumHints++
		k := Key{Hash: rec.Hash, Model: rec.Model}
		if i, ok := r.hints[k]; ok {
			if rec.Pairs > r.Hints[i].Pairs {
				r.Hints[i].Pairs = rec.Pairs
			}
			return
		}
		r.hints[k] = len(r.Hints)
		r.Hints = append(r.Hints, SpectrumHint{Hash: rec.Hash, Model: rec.Model, Pairs: rec.Pairs})
	default:
		// Unknown record type: forward compatibility — count and continue.
		st.CorruptRecords++
		st.warnf("unknown record type %q ignored", rec.Type)
	}
}
