// Package journal is the crash-safety layer of the spectrald daemon: an
// append-only, CRC-checksummed record log of every netlist upload and
// every job state transition, durable enough that a SIGKILL'd daemon
// restarted against the same directory re-enqueues the jobs it was
// running, reports the jobs it had finished, and warms its spectrum
// cache — without a client noticing more than a latency blip.
//
// Layout: the journal is a directory of numbered segment files
// (journal-00000001.seg, ...). Each segment starts with a magic header
// and holds length-prefixed records:
//
//	[4B little-endian payload length][4B IEEE CRC32 of payload][payload]
//
// where the payload is one JSON-encoded Record. Appends go to the
// newest segment; when it exceeds Options.SegmentBytes the journal
// rotates to a fresh one. Compaction (Rewrite / CompactWith) folds the
// live state into a single new segment and deletes the old generation;
// CompactWith takes its snapshot with appends excluded, so a record
// acknowledged before the snapshot can never be deleted with the old
// segments.
//
// Durability is tiered. Append buffers the record; it becomes durable
// at the next sync. AppendDurable returns only after an fsync covers
// the record, and concurrent AppendDurable calls share one fsync
// (group commit), so a burst of submissions costs one disk flush, not
// one each. The daemon journals submissions, finishes and netlist
// bodies durably — those back client acknowledgements — and start /
// cancel / spectrum-hint records cheaply: losing an unsynced start
// record merely re-runs a deterministic job on replay.
//
// Replay (see replay.go) must never refuse to boot: a torn tail or a
// corrupt record truncates the damaged segment at the failure point,
// records the damage in ReplayStats, and continues with the next
// segment.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// segMagic opens every segment file; the version digit guards format
// evolution.
const segMagic = "SPECJRNL1\n"

// maxRecordBytes bounds a single record payload; replay treats a larger
// claimed length as corruption rather than attempting the allocation.
const maxRecordBytes = 64 << 20

// Type tags a Record.
type Type string

const (
	// TypeNetlist stores a netlist body (text interchange format) under
	// its content hash, so replay can rebuild Requests.
	TypeNetlist Type = "netlist"
	// TypeSubmit records an accepted job: ID, netlist hash, full spec.
	TypeSubmit Type = "submit"
	// TypeStart records that a worker picked the job up.
	TypeStart Type = "start"
	// TypeCancel records a client cancellation request.
	TypeCancel Type = "cancel"
	// TypeFinish records the terminal state, error and result.
	TypeFinish Type = "finish"
	// TypeSpectrum is a warm-restart hint: an eigendecomposition was
	// computed for (hash, model) with the given pair capacity.
	TypeSpectrum Type = "spectrum"
)

// JobSpec is the journal's serialization of a job request — plain
// fields, decoupled from the jobs package so the log format outlives
// refactors of the in-memory types.
type JobSpec struct {
	Kind        string  `json:"kind"`
	Method      string  `json:"method,omitempty"`
	K           int     `json:"k,omitempty"`
	D           int     `json:"d,omitempty"`
	Scheme      int     `json:"scheme,omitempty"`
	MinFrac     float64 `json:"minFrac,omitempty"`
	Refine      bool    `json:"refine,omitempty"`
	Parallelism int     `json:"parallelism,omitempty"`
	// CoarsenThreshold, MaxLevels and RefinePasses configure the
	// multilevel V-cycle (method "mlmelo"); zero values select the
	// façade defaults and flat methods ignore them.
	CoarsenThreshold int `json:"coarsenThreshold,omitempty"`
	MaxLevels        int `json:"maxLevels,omitempty"`
	RefinePasses     int `json:"refinePasses,omitempty"`
	// TimeoutNS is the per-request deadline in nanoseconds (0 = none).
	// Replay re-anchors it at restart time.
	TimeoutNS int64 `json:"timeoutNS,omitempty"`
	// ShedFromD records the originally requested d when admission
	// control degraded the job.
	ShedFromD int `json:"shedFromD,omitempty"`
	// BaseHash and Delta describe a kind "delta" job: the base netlist's
	// content hash (its body is journaled like any other netlist) and
	// the ECO delta as raw JSON, so replay can rebuild the mutated
	// netlist from base+delta even if the mutated body record is lost.
	BaseHash string          `json:"baseHash,omitempty"`
	Delta    json.RawMessage `json:"delta,omitempty"`
}

// Record is one journal entry. Which fields are meaningful depends on
// Type; unused fields are omitted from the encoding.
type Record struct {
	Type Type `json:"t"`
	// UnixNS is the event time (informational; replay logic is
	// order-based, not clock-based).
	UnixNS int64 `json:"ts,omitempty"`

	// Netlist records.
	Hash    string `json:"hash,omitempty"`
	Name    string `json:"name,omitempty"`
	Netlist []byte `json:"netlist,omitempty"`

	// Job records.
	ID     string          `json:"id,omitempty"`
	Spec   *JobSpec        `json:"spec,omitempty"`
	State  string          `json:"state,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`

	// Spectrum hints.
	Model string `json:"model,omitempty"`
	Pairs int    `json:"pairs,omitempty"`
}

// File is the subset of *os.File the journal writes through. The chaos
// harness injects implementations that fail, discard or tear writes.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// Options configures Open. Zero fields select the noted defaults.
type Options struct {
	// SegmentBytes rotates the active segment when it grows past this
	// size. Default 4 MiB.
	SegmentBytes int64
	// OpenFile creates/opens a segment for appending. Default os.OpenFile
	// with O_CREATE|O_WRONLY|O_APPEND. Injectable for fault testing.
	OpenFile func(path string) (File, error)
}

// DefaultOpenFile is the OpenFile used when Options leaves it nil —
// exported so fault-injecting wrappers can delegate to the real thing.
func DefaultOpenFile(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.OpenFile == nil {
		o.OpenFile = DefaultOpenFile
	}
	return o
}

// Stats is a snapshot of the journal's write-side counters.
type Stats struct {
	Appends     uint64 `json:"appends"`
	Syncs       uint64 `json:"syncs"`
	Rotations   uint64 `json:"rotations"`
	Compactions uint64 `json:"compactions"`
	WriteErrors uint64 `json:"writeErrors"`
	// ActiveSegment is the generation number of the segment being
	// appended to; Segments counts live segment files.
	ActiveSegment uint64 `json:"activeSegment"`
	Segments      int    `json:"segments"`
	// BytesAppended counts payload+framing bytes written since Open.
	BytesAppended uint64 `json:"bytesAppended"`
}

// cohort is one group-commit sync shared by concurrent AppendDurable
// callers: whoever creates it becomes the leader and performs the
// flush+fsync for everyone who wrote a record while it was open.
type cohort struct {
	done chan struct{}
	err  error
}

// Journal is an open, appendable journal. Safe for concurrent use.
type Journal struct {
	dir  string
	opts Options

	// gate serializes appends against compaction: appends hold it
	// shared, Rewrite/CompactWith hold it exclusively. Without it a
	// record durably appended between a compaction snapshot and the
	// segment swap would land in the old generation and be deleted with
	// it — losing acknowledged state.
	gate sync.RWMutex

	mu      sync.Mutex
	file    File
	w       *bufio
	gen     uint64              // active segment generation
	size    int64               // bytes written to the active segment
	segs    int                 // live segment count
	seen    map[string]struct{} // netlist hashes already journaled this generation set
	pending *cohort
	failed  error // sticky error after an unrecoverable write failure

	stats Stats
}

// bufio is a minimal buffered writer whose buffer the journal controls
// explicitly (flush points matter for torn-tail semantics; the standard
// bufio.Writer would be fine, but owning the flush makes the crash
// window explicit and testable).
type bufio struct {
	f   File
	buf []byte
}

func (b *bufio) Write(p []byte) (int, error) {
	b.buf = append(b.buf, p...)
	return len(p), nil
}

func (b *bufio) Flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	_, err := b.f.Write(b.buf)
	b.buf = b.buf[:0]
	return err
}

// segName formats the file name of generation g.
func segName(g uint64) string { return fmt.Sprintf("journal-%08d.seg", g) }

// parseSegName returns the generation of a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "journal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	var g uint64
	if _, err := fmt.Sscanf(name, "journal-%d.seg", &g); err != nil {
		return 0, false
	}
	return g, true
}

// listSegments returns the journal's segment file names in generation
// order.
func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if _, ok := parseSegName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Slice(names, func(i, j int) bool {
		gi, _ := parseSegName(names[i])
		gj, _ := parseSegName(names[j])
		return gi < gj
	})
	return names, nil
}

// Open replays the journal in dir (creating the directory if needed),
// then opens a fresh segment for appending. It never refuses to open
// over a damaged journal: torn tails and corrupt records are truncated
// out of the replayed state and reported in the ReplayResult's stats.
func Open(dir string, opts Options) (*Journal, *ReplayResult, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: create dir: %w", err)
	}
	rep, maxGen, err := replayDir(dir)
	if err != nil {
		return nil, nil, err
	}
	j := &Journal{
		dir:  dir,
		opts: opts,
		gen:  maxGen, // openSegment bumps to maxGen+1
		segs: rep.Stats.Segments,
		seen: make(map[string]struct{}),
	}
	// Hashes already durable in prior segments need not be re-journaled
	// until a compaction replaces those segments.
	for _, n := range rep.Netlists {
		j.seen[n.Hash] = struct{}{}
	}
	j.mu.Lock()
	err = j.openSegmentLocked()
	j.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	return j, rep, nil
}

// openSegmentLocked closes the active segment (if any) and starts the
// next generation. Caller holds j.mu.
func (j *Journal) openSegmentLocked() error {
	if j.file != nil {
		if err := j.w.Flush(); err != nil {
			return err
		}
		if err := j.file.Sync(); err != nil {
			return err
		}
		if err := j.file.Close(); err != nil {
			return err
		}
		j.stats.Rotations++
	}
	j.gen++
	f, err := j.opts.OpenFile(filepath.Join(j.dir, segName(j.gen)))
	if err != nil {
		return fmt.Errorf("journal: open segment %d: %w", j.gen, err)
	}
	j.file = f
	j.w = &bufio{f: f}
	if _, err := j.w.Write([]byte(segMagic)); err != nil {
		return err
	}
	j.size = int64(len(segMagic))
	j.segs++
	j.stats.ActiveSegment = j.gen
	return nil
}

// frame encodes rec with its length+CRC header.
func frame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: encode record: %w", err)
	}
	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[8:], payload)
	return out, nil
}

// Append buffers rec into the active segment. The record becomes
// durable at the next sync (an AppendDurable, a rotation, or Close).
func (j *Journal) Append(rec Record) error {
	j.gate.RLock()
	defer j.gate.RUnlock()
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(rec)
}

func (j *Journal) appendLocked(rec Record) error {
	if j.failed != nil {
		return j.failed
	}
	b, err := frame(rec)
	if err != nil {
		return err
	}
	if _, err := j.w.Write(b); err != nil {
		return j.fail(err)
	}
	j.size += int64(len(b))
	j.stats.Appends++
	j.stats.BytesAppended += uint64(len(b))
	if j.size >= j.opts.SegmentBytes {
		if err := j.openSegmentLocked(); err != nil {
			return j.fail(err)
		}
	}
	return nil
}

// fail records a write-path error. The journal stays usable only if the
// caller recovers it via Rewrite (compaction onto a fresh segment);
// until then every append returns the sticky error so the daemon can
// refuse durable acknowledgements instead of lying.
func (j *Journal) fail(err error) error {
	j.stats.WriteErrors++
	j.failed = fmt.Errorf("journal: %w", err)
	return j.failed
}

// AppendDurable appends rec and returns once an fsync covers it.
// Concurrent calls share one fsync (group commit).
func (j *Journal) AppendDurable(rec Record) error {
	j.gate.RLock()
	defer j.gate.RUnlock()
	return j.appendDurableGated(rec)
}

// appendDurableGated is AppendDurable minus the compaction gate, for
// callers (AppendNetlist) that already hold it shared.
func (j *Journal) appendDurableGated(rec Record) error {
	j.mu.Lock()
	if err := j.appendLocked(rec); err != nil {
		j.mu.Unlock()
		return err
	}
	c := j.pending
	leader := c == nil
	if leader {
		c = &cohort{done: make(chan struct{})}
		j.pending = c
	}
	j.mu.Unlock()

	if !leader {
		<-c.done
		return c.err
	}
	// Leader: detach the cohort, then flush+fsync while still holding
	// j.mu, so a concurrent append cannot rotate the segment — flushing,
	// syncing and closing the very file this sync targets — out from
	// under it. Everyone who appended while the cohort was attached wrote
	// before this flush (appends and cohort membership share j.mu), so
	// one fsync covers them all; records a rotation already carried to
	// disk are simply covered twice. Appends arriving after the detach
	// form the next cohort and wait their turn behind this sync.
	j.mu.Lock()
	var err error
	j.pending = nil
	switch {
	case j.failed != nil:
		// A concurrent append already failed the journal; this cohort's
		// records may never have reached the file. Report, don't lie.
		err = j.failed
	case j.file == nil:
		err = fmt.Errorf("journal: closed")
	default:
		if err = j.w.Flush(); err != nil {
			err = j.fail(err)
		} else if err = j.file.Sync(); err != nil {
			err = j.fail(err)
		} else {
			j.stats.Syncs++
		}
	}
	j.mu.Unlock()
	c.err = err
	close(c.done)
	return err
}

// AppendNetlist durably journals a netlist body under its hash, once:
// re-journaling a hash already recorded in this journal's lifetime is a
// no-op, so every submission can call it unconditionally.
func (j *Journal) AppendNetlist(hash, name string, body []byte, unixNS int64) error {
	j.gate.RLock()
	defer j.gate.RUnlock()
	j.mu.Lock()
	if j.failed != nil {
		err := j.failed
		j.mu.Unlock()
		return err
	}
	if _, ok := j.seen[hash]; ok {
		j.mu.Unlock()
		return nil
	}
	j.seen[hash] = struct{}{}
	j.mu.Unlock()
	err := j.appendDurableGated(Record{Type: TypeNetlist, Hash: hash, Name: name, Netlist: body, UnixNS: unixNS})
	if err != nil {
		// Not durable: allow a retry on the next submission.
		j.mu.Lock()
		delete(j.seen, hash)
		j.mu.Unlock()
	}
	return err
}

// Rewrite compacts the journal: it writes recs (the caller's snapshot
// of all live state — netlist bodies plus one submit and, for terminal
// jobs, one finish record each) into a fresh segment, fsyncs it, and
// deletes every older segment. It also clears a sticky write error,
// giving the daemon a recovery path that does not lose acknowledged
// state that still lives in memory.
//
// Rewrite excludes concurrent appends for its whole duration, but the
// caller's snapshot was necessarily taken earlier: a record appended
// between the two lands in the old generation and is deleted with it.
// Callers whose snapshot source may be appended to concurrently must
// use CompactWith instead.
func (j *Journal) Rewrite(recs []Record) error {
	j.gate.Lock()
	defer j.gate.Unlock()
	return j.rewriteGated(recs)
}

// CompactWith compacts the journal onto the records snapshot returns,
// calling it with all appends excluded: every append either completes
// before the snapshot is taken (so the caller's state — and hence the
// snapshot — reflects it) or starts after the segment swap (landing in
// the new generation). Either way no acknowledged record is deleted
// with the old segments.
func (j *Journal) CompactWith(snapshot func() []Record) error {
	j.gate.Lock()
	defer j.gate.Unlock()
	return j.rewriteGated(snapshot())
}

func (j *Journal) rewriteGated(recs []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()

	// Best-effort close of the previous segment; its contents are about
	// to be superseded, so flush errors are not fatal.
	if j.file != nil {
		_ = j.w.Flush()
		_ = j.file.Sync()
		_ = j.file.Close()
		j.file = nil
	}
	oldGen := j.gen
	j.failed = nil
	if err := j.openSegmentLocked(); err != nil {
		return err
	}
	j.segs = 1
	j.seen = make(map[string]struct{})
	for _, rec := range recs {
		if rec.Type == TypeNetlist {
			j.seen[rec.Hash] = struct{}{}
		}
		if err := j.appendLocked(rec); err != nil {
			return err
		}
	}
	if err := j.w.Flush(); err != nil {
		return j.fail(err)
	}
	if err := j.file.Sync(); err != nil {
		return j.fail(err)
	}
	j.stats.Syncs++
	j.stats.Compactions++

	names, err := listSegments(j.dir)
	if err != nil {
		return nil // compacted state is durable; stale segments are replay-tolerated
	}
	for _, name := range names {
		if g, ok := parseSegName(name); ok && g <= oldGen {
			_ = os.Remove(filepath.Join(j.dir, name))
		}
	}
	j.segs = 1
	return nil
}

// Sync flushes and fsyncs the active segment.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed != nil {
		return j.failed
	}
	if err := j.w.Flush(); err != nil {
		return j.fail(err)
	}
	if err := j.file.Sync(); err != nil {
		return j.fail(err)
	}
	j.stats.Syncs++
	return nil
}

// Close flushes, fsyncs and closes the journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.file == nil {
		return nil
	}
	ferr := j.w.Flush()
	serr := j.file.Sync()
	cerr := j.file.Close()
	j.file = nil
	if ferr != nil {
		return ferr
	}
	if serr != nil {
		return serr
	}
	return cerr
}

// Stats returns a snapshot of the journal's counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := j.stats
	s.Segments = j.segs
	return s
}

// Err returns the sticky write error, if the journal has failed.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.failed
}
