package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"testing"
)

// frameT frames rec for corpus construction, failing the test on
// marshal errors.
func frameT(t interface{ Fatal(...any) }, rec Record) []byte {
	b, err := frame(rec)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// validSegment builds a well-formed segment holding a netlist, a
// submitted job, its start, and its finish.
func validSegment(t interface{ Fatal(...any) }) []byte {
	var buf bytes.Buffer
	buf.WriteString(segMagic)
	buf.Write(frameT(t, Record{Type: TypeNetlist, Hash: "sha256:ab", Name: "prim1", Netlist: []byte("net n1 a b\nnet n2 b c\n")}))
	buf.Write(frameT(t, Record{Type: TypeSubmit, ID: "job-000001", Hash: "sha256:ab",
		Spec: &JobSpec{Kind: "partition", Method: "melo", K: 2, D: 10, TimeoutNS: 5e9}}))
	buf.Write(frameT(t, Record{Type: TypeStart, ID: "job-000001"}))
	buf.Write(frameT(t, Record{Type: TypeFinish, ID: "job-000001", State: StateDone, Result: json.RawMessage(`{"assign":[0,1],"k":2}`)}))
	buf.Write(frameT(t, Record{Type: TypeSpectrum, Hash: "sha256:ab", Model: "partitioning-specific", Pairs: 11}))
	return buf.Bytes()
}

// FuzzJournalReplay feeds arbitrary segment bytes to the replay path.
// The contract under test is the boot guarantee: replay never panics
// and never rejects input — any damage folds into truncation/corruption
// counters while every intact prefix record is preserved.
func FuzzJournalReplay(f *testing.F) {
	f.Add(validSegment(f))
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	f.Add([]byte("not a journal at all"))

	// Torn tail: valid segment with the last 7 bytes missing.
	seg := validSegment(f)
	f.Add(seg[:len(seg)-7])

	// Bit flip in the middle (CRC must catch it).
	flipped := append([]byte(nil), seg...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	// Checksummed garbage: framing intact, payload is not JSON.
	var garbage bytes.Buffer
	garbage.WriteString(segMagic)
	payload := []byte("{{{{not json")
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	garbage.Write(hdr[:])
	garbage.Write(payload)
	garbage.Write(frameT(f, Record{Type: TypeSubmit, ID: "job-000002", Hash: "h"}))
	f.Add(garbage.Bytes())

	// Implausible length header.
	var huge bytes.Buffer
	huge.WriteString(segMagic)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(maxRecordBytes+12))
	huge.Write(hdr[:])
	f.Add(huge.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		res := newReplayResult()
		res.replaySegment("fuzz", data) // must not panic

		// Replay output must be internally consistent: every job listed
		// once, terminal jobs carry a valid state string.
		seen := make(map[string]bool)
		for _, j := range res.Jobs {
			if j.ID == "" {
				t.Fatalf("replayed job with empty ID")
			}
			if seen[j.ID] {
				t.Fatalf("job %s listed twice", j.ID)
			}
			seen[j.ID] = true
			switch j.State {
			case StatePending, StateRunning, StateDone, StateFailed, StateCancelled:
			default:
				t.Fatalf("job %s has invalid state %q", j.ID, j.State)
			}
		}
		for _, n := range res.Netlists {
			if _, ok := res.byHash[n.Hash]; !ok {
				t.Fatalf("netlist %s missing from index", n.Hash)
			}
		}
	})
}

// The fuzz seeds double as a regression test: the valid segment seed
// must replay completely.
func TestFuzzSeedValidSegmentReplays(t *testing.T) {
	res := newReplayResult()
	res.replaySegment("seed", validSegment(t))
	if len(res.Jobs) != 1 || res.Jobs[0].State != StateDone {
		t.Fatalf("valid seed replay: %+v", res.Jobs)
	}
	if res.Stats.CorruptRecords != 0 || res.Stats.TornSegments != 0 {
		t.Fatalf("valid seed reported damage: %+v", res.Stats)
	}
	if len(res.Netlists) != 1 || len(res.Hints) != 1 {
		t.Fatalf("valid seed state: netlists=%d hints=%d", len(res.Netlists), len(res.Hints))
	}
}
