package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openT(t *testing.T, dir string, opts Options) (*Journal, *ReplayResult) {
	t.Helper()
	j, rep, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j, rep
}

func submitRec(id, hash string) Record {
	return Record{Type: TypeSubmit, ID: id, Hash: hash, Spec: &JobSpec{Kind: "partition", Method: "melo", K: 2, D: 10}}
}

func finishRec(id, state string) Record {
	return Record{Type: TypeFinish, ID: id, State: state, Result: json.RawMessage(`{"k":2}`)}
}

// Round trip: everything appended before a clean close replays, with
// job records folded to their latest state.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, rep := openT(t, dir, Options{})
	if len(rep.Jobs) != 0 || len(rep.Netlists) != 0 {
		t.Fatalf("fresh dir replayed state: %+v", rep)
	}
	if err := j.AppendNetlist("sha256:aa", "prim1", []byte("net n1 a b\n"), 1); err != nil {
		t.Fatal(err)
	}
	// Duplicate netlist appends are deduplicated.
	if err := j.AppendNetlist("sha256:aa", "prim1", []byte("net n1 a b\n"), 2); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendDurable(submitRec("job-000001", "sha256:aa")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: TypeStart, ID: "job-000001"}); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendDurable(finishRec("job-000001", StateDone)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendDurable(submitRec("job-000002", "sha256:aa")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: TypeCancel, ID: "job-000002"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: TypeSpectrum, Hash: "sha256:aa", Model: "partitioning-specific", Pairs: 11}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, rep = openT(t, dir, Options{})
	if got := len(rep.Netlists); got != 1 {
		t.Fatalf("netlists = %d, want 1", got)
	}
	if len(rep.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(rep.Jobs))
	}
	j1, j2 := rep.Jobs[0], rep.Jobs[1]
	if j1.ID != "job-000001" || j1.State != StateDone || string(j1.Result) != `{"k":2}` {
		t.Errorf("job 1 replay: %+v", j1)
	}
	if j1.Spec == nil || j1.Spec.Method != "melo" || j1.Spec.D != 10 {
		t.Errorf("job 1 spec: %+v", j1.Spec)
	}
	if j2.State != StatePending || !j2.CancelRequested {
		t.Errorf("job 2 replay: state=%s cancelRequested=%v", j2.State, j2.CancelRequested)
	}
	if len(rep.Hints) != 1 || rep.Hints[0].Pairs != 11 {
		t.Errorf("hints: %+v", rep.Hints)
	}
	if rep.Stats.CorruptRecords != 0 || rep.Stats.TornSegments != 0 {
		t.Errorf("clean journal reported damage: %+v", rep.Stats)
	}
}

// A torn tail (crash mid-write) truncates, warns, and keeps every
// record before the tear. Boot is never refused.
func TestTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{})
	if err := j.AppendDurable(submitRec("job-000001", "h")); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendDurable(submitRec("job-000002", "h")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	for _, drop := range []int{1, 5, 9} { // torn payload, torn payload, torn header
		t.Run(fmt.Sprintf("drop%d", drop), func(t *testing.T) {
			dir2 := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir2, segName(1)), data[:len(data)-drop], 0o644); err != nil {
				t.Fatal(err)
			}
			_, rep := openT(t, dir2, Options{})
			if len(rep.Jobs) != 1 || rep.Jobs[0].ID != "job-000001" {
				t.Fatalf("replayed jobs: %+v", rep.Jobs)
			}
			if rep.Stats.TornSegments != 1 || rep.Stats.TruncatedBytes == 0 {
				t.Errorf("stats: %+v", rep.Stats)
			}
			if len(rep.Stats.Warnings) == 0 {
				t.Error("no warning recorded for torn tail")
			}
		})
	}
}

// A corrupt record (bit flip under the CRC) truncates that segment at
// the damage point and continues with later segments.
func TestCorruptRecordTruncatesSegmentOnly(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{SegmentBytes: 1}) // rotate after every record
	if err := j.AppendDurable(submitRec("job-000001", "h")); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendDurable(submitRec("job-000002", "h")); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendDurable(finishRec("job-000002", StateFailed)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte in the second record's segment.
	seg := filepath.Join(dir, segName(2))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(segMagic)+12] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rep := openT(t, dir, Options{})
	if rep.Stats.CorruptRecords == 0 {
		t.Fatalf("corruption not detected: %+v", rep.Stats)
	}
	// Job 1 (earlier segment) and job 2's finish (later segment) survive;
	// job 2's submit is the sacrificed record, so it appears
	// finish-only.
	var ids []string
	for _, jr := range rep.Jobs {
		ids = append(ids, jr.ID+":"+jr.State)
	}
	want := map[string]string{"job-000001": StatePending, "job-000002": StateFailed}
	if len(rep.Jobs) != 2 {
		t.Fatalf("jobs after corruption: %v", ids)
	}
	for _, jr := range rep.Jobs {
		if want[jr.ID] != jr.State {
			t.Errorf("job %s state %s, want %s", jr.ID, jr.State, want[jr.ID])
		}
	}
	if rep.Jobs[1].Spec != nil {
		t.Errorf("job 2 spec should be lost to corruption, got %+v", rep.Jobs[1].Spec)
	}
}

// Segments rotate at the size threshold and replay across generations.
func TestRotationAndReplayAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{SegmentBytes: 256})
	for i := 1; i <= 20; i++ {
		if err := j.AppendDurable(submitRec(fmt.Sprintf("job-%06d", i), "h")); err != nil {
			t.Fatal(err)
		}
	}
	st := j.Stats()
	if st.Rotations == 0 || st.Segments < 2 {
		t.Fatalf("expected rotations, got %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rep := openT(t, dir, Options{})
	if len(rep.Jobs) != 20 {
		t.Fatalf("replayed %d jobs, want 20", len(rep.Jobs))
	}
	// First-seen order is submission order.
	for i, jr := range rep.Jobs {
		if want := fmt.Sprintf("job-%06d", i+1); jr.ID != want {
			t.Fatalf("jobs[%d] = %s, want %s", i, jr.ID, want)
		}
	}
}

// Rewrite folds live state into one segment and deletes the old
// generation; a subsequent replay sees exactly the rewritten records.
func TestRewriteCompacts(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{SegmentBytes: 256})
	for i := 1; i <= 12; i++ {
		id := fmt.Sprintf("job-%06d", i)
		if err := j.AppendDurable(submitRec(id, "h")); err != nil {
			t.Fatal(err)
		}
		if err := j.AppendDurable(finishRec(id, StateDone)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Rewrite([]Record{
		{Type: TypeNetlist, Hash: "h", Netlist: []byte("net n a b\n")},
		submitRec("job-000012", "h"),
		finishRec("job-000012", StateDone),
	}); err != nil {
		t.Fatal(err)
	}
	if st := j.Stats(); st.Compactions != 1 || st.Segments != 1 {
		t.Fatalf("stats after rewrite: %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 { // Rewrite folds everything into exactly one segment
		t.Fatalf("segments on disk: %v", names)
	}
	_, rep := openT(t, dir, Options{})
	if len(rep.Jobs) != 1 || rep.Jobs[0].ID != "job-000012" || rep.Jobs[0].State != StateDone {
		t.Fatalf("replay after compaction: %+v", rep.Jobs)
	}
	if _, ok := rep.Netlist("h"); !ok {
		t.Error("netlist lost in compaction")
	}
}

// failFile injects a write error on the nth Write call.
type failFile struct {
	f      File
	writes int
	failAt int
}

func (f *failFile) Write(p []byte) (int, error) {
	f.writes++
	if f.failAt > 0 && f.writes >= f.failAt {
		return 0, errors.New("injected write error")
	}
	return f.f.Write(p)
}
func (f *failFile) Sync() error  { return f.f.Sync() }
func (f *failFile) Close() error { return f.f.Close() }

// A failed write leaves the journal sticky-failed — durable appends
// refuse to lie — until a Rewrite recovers it onto a fresh segment.
func TestWriteErrorIsStickyUntilRewrite(t *testing.T) {
	dir := t.TempDir()
	var ff *failFile
	opts := Options{OpenFile: func(path string) (File, error) {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		ff = &failFile{f: f}
		return ff, nil
	}}
	j, _ := openT(t, dir, opts)
	if err := j.AppendDurable(submitRec("job-000001", "h")); err != nil {
		t.Fatal(err)
	}
	ff.failAt = ff.writes + 1
	if err := j.AppendDurable(submitRec("job-000002", "h")); err == nil {
		t.Fatal("append through failing file succeeded")
	}
	ff.failAt = 0
	if err := j.AppendDurable(submitRec("job-000003", "h")); err == nil {
		t.Fatal("sticky error cleared without Rewrite")
	}
	if j.Err() == nil {
		t.Fatal("Err() nil after failure")
	}
	if err := j.Rewrite([]Record{submitRec("job-000001", "h")}); err != nil {
		t.Fatalf("Rewrite recovery: %v", err)
	}
	if err := j.AppendDurable(submitRec("job-000004", "h")); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if st := j.Stats(); st.WriteErrors == 0 {
		t.Error("write error not counted")
	}
}

// Group commit: concurrent durable appends all land, and the fsync
// count stays well below one per append.
func TestGroupCommitBatchesFsyncs(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{})
	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = j.AppendDurable(submitRec(fmt.Sprintf("job-%06d", i+1), "h"))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	st := j.Stats()
	if st.Appends != n {
		t.Fatalf("appends = %d, want %d", st.Appends, n)
	}
	t.Logf("group commit: %d appends, %d fsyncs", st.Appends, st.Syncs)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rep := openT(t, dir, Options{})
	if len(rep.Jobs) != n {
		t.Fatalf("replayed %d jobs, want %d", len(rep.Jobs), n)
	}
}

// Rotation under concurrent durable appends: the group-commit leader's
// fsync must target the live segment even when another append rotates
// (flushes, syncs and closes the previous file) between the leader's
// append and its sync. With SegmentBytes=1 every record rotates, so any
// sync aimed at a stale file handle errors and sticky-fails the
// journal.
func TestDurableAppendsSurviveConcurrentRotation(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{SegmentBytes: 1})
	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = j.AppendDurable(submitRec(fmt.Sprintf("job-%06d", i+1), "h"))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := j.Err(); err != nil {
		t.Fatalf("journal sticky-failed under rotation pressure: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rep := openT(t, dir, Options{})
	if len(rep.Jobs) != n {
		t.Fatalf("replayed %d jobs, want %d", len(rep.Jobs), n)
	}
}

// Compaction racing durable appends must not lose acknowledged records:
// every append either completes before CompactWith takes its snapshot
// (and the snapshot source, written to before the append, reflects it)
// or lands in the post-compaction generation. Appenders here mirror the
// pool's publish-then-journal ordering.
func TestCompactWithDoesNotLoseConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{SegmentBytes: 512}) // rotate often
	var (
		mu    sync.Mutex
		acked = make(map[string]bool) // published before append; true once durable
	)
	const workers, each = 4, 32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				id := fmt.Sprintf("job-%03d%03d", w, i)
				mu.Lock()
				acked[id] = false
				mu.Unlock()
				if err := j.AppendDurable(submitRec(id, "h")); err != nil {
					t.Errorf("append %s: %v", id, err)
					return
				}
				mu.Lock()
				acked[id] = true
				mu.Unlock()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	compactions := 0
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
		}
		if err := j.CompactWith(func() []Record {
			mu.Lock()
			defer mu.Unlock()
			recs := make([]Record, 0, len(acked))
			for id := range acked {
				recs = append(recs, submitRec(id, "h"))
			}
			return recs
		}); err != nil {
			t.Fatalf("compaction %d: %v", compactions, err)
		}
		compactions++
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rep := openT(t, dir, Options{})
	replayed := make(map[string]bool, len(rep.Jobs))
	for _, jr := range rep.Jobs {
		replayed[jr.ID] = true
	}
	mu.Lock()
	defer mu.Unlock()
	lost := 0
	for id, ok := range acked {
		if ok && !replayed[id] {
			lost++
			t.Errorf("durably acknowledged record %s lost across %d compactions", id, compactions)
		}
	}
	if lost == 0 && len(replayed) < workers*each {
		t.Fatalf("replayed only %d of %d records", len(replayed), workers*each)
	}
}

// A finish record arriving before its submit (the buffered/durable
// write race around a crash) still folds into a terminal job.
func TestFoldOrderTolerance(t *testing.T) {
	res := newReplayResult()
	res.fold(finishRec("job-000007", StateDone))
	res.fold(Record{Type: TypeStart, ID: "job-000007"})
	res.fold(submitRec("job-000007", "h"))
	if len(res.Jobs) != 1 {
		t.Fatalf("jobs: %+v", res.Jobs)
	}
	jr := res.Jobs[0]
	if jr.State != StateDone || jr.Spec == nil || jr.Hash != "h" {
		t.Fatalf("folded job: %+v", jr)
	}
	// A second terminal record is counted, not applied.
	res.fold(finishRec("job-000007", StateFailed))
	if jr.State != StateDone || res.Stats.DuplicateTerm != 1 {
		t.Fatalf("duplicate terminal handling: state=%s stats=%+v", jr.State, res.Stats)
	}
}

// Implausible record lengths are treated as corruption, not allocated.
func TestImplausibleLengthIsCorruption(t *testing.T) {
	dir := t.TempDir()
	data := []byte(segMagic)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(maxRecordBytes+1))
	data = append(data, hdr[:]...)
	data = append(data, []byte("xxxxxxxxxxxxxxxx")...)
	if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rep := openT(t, dir, Options{})
	if rep.Stats.CorruptRecords == 0 {
		t.Fatalf("implausible length not flagged: %+v", rep.Stats)
	}
}
