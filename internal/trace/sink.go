package trace

import (
	"encoding/json"
	"io"
	"sync"
)

// Ring is a bounded in-memory sink keeping the most recent spans. It
// backs unit tests and spectrald's /debug/trace endpoint.
type Ring struct {
	mu   sync.Mutex
	buf  []SpanRecord
	next int
	full bool
}

// NewRing returns a ring holding the latest n spans (n < 1 is clamped
// to 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]SpanRecord, n)}
}

// Record implements Sink.
func (r *Ring) Record(rec SpanRecord) {
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Snapshot returns the retained spans, oldest first.
func (r *Ring) Snapshot() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]SpanRecord(nil), r.buf[:r.next]...)
	}
	out := make([]SpanRecord, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// JSONWriter is a sink writing one JSON object per finished span
// (JSON-lines), for the -trace out.jsonl flags.
type JSONWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONWriter returns a sink encoding spans onto w. The caller owns
// w's lifecycle (close after the tracer is quiescent).
func NewJSONWriter(w io.Writer) *JSONWriter {
	return &JSONWriter{enc: json.NewEncoder(w)}
}

// Record implements Sink.
func (j *JSONWriter) Record(rec SpanRecord) {
	j.mu.Lock()
	j.enc.Encode(rec) //nolint:errcheck // tracing is best-effort; a full disk must not fail the pipeline
	j.mu.Unlock()
}
