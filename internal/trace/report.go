package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteReport renders a human-readable summary of the tracer's span
// statistics (count, total, p50/p95/max) followed by counter and gauge
// totals. cmd/oracle and cmd/experiments print it after their runs.
func (t *Tracer) WriteReport(w io.Writer) {
	if t == nil {
		return
	}
	stats := t.SpanStats()
	if len(stats) > 0 {
		fmt.Fprintf(w, "%-24s %8s %12s %10s %10s %10s\n",
			"span", "count", "total", "p50", "p95", "max")
		for _, s := range stats {
			fmt.Fprintf(w, "%-24s %8d %12s %10s %10s %10s\n",
				s.Name, s.Count, fmtDur(s.Total), fmtDur(s.P50), fmtDur(s.P95), fmtDur(s.Max))
		}
	}
	counters := t.Counters()
	if len(counters) > 0 {
		names := make([]string, 0, len(counters))
		for name := range counters {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "%-24s %12s\n", "counter", "total")
		for _, name := range names {
			fmt.Fprintf(w, "%-24s %12d\n", name, counters[name])
		}
	}
	gauges := t.Gauges()
	if len(gauges) > 0 {
		names := make([]string, 0, len(gauges))
		for name := range gauges {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "%-24s %12s\n", "gauge", "value")
		for _, name := range names {
			fmt.Fprintf(w, "%-24s %12g\n", name, gauges[name])
		}
	}
}

// fmtDur trims duration formatting to a stable, column-friendly width.
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}
