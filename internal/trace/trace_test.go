package trace

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeParentage(t *testing.T) {
	ring := NewRing(16)
	tr := New(ring)
	ctx := WithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "partition", Str("method", "melo"))
	cctx, child := Start(ctx, "eigen")
	_, grand := Start(cctx, "eigen.lanczos", Int("n", 40))
	grand.End()
	child.End()
	root.End()

	recs := ring.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	// Ring holds spans in End order: grand, child, root.
	g, c, r := recs[0], recs[1], recs[2]
	if r.Name != "partition" || c.Name != "eigen" || g.Name != "eigen.lanczos" {
		t.Fatalf("unexpected names: %q %q %q", r.Name, c.Name, g.Name)
	}
	if r.Parent != 0 {
		t.Errorf("root parent = %d, want 0", r.Parent)
	}
	if c.Parent != r.Span {
		t.Errorf("child parent = %d, want root span %d", c.Parent, r.Span)
	}
	if g.Parent != c.Span {
		t.Errorf("grandchild parent = %d, want child span %d", g.Parent, c.Span)
	}
	if r.Trace != r.Span || c.Trace != r.Span || g.Trace != r.Span {
		t.Errorf("trace ids not shared: %d %d %d (root span %d)", r.Trace, c.Trace, g.Trace, r.Span)
	}
	if len(r.Attrs) != 1 || r.Attrs[0] != Str("method", "melo") {
		t.Errorf("root attrs = %v", r.Attrs)
	}
}

func TestSiblingsShareParentNotChain(t *testing.T) {
	ring := NewRing(8)
	tr := New(ring)
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "root")
	// Two siblings both started from the root's ctx.
	_, a := Start(ctx, "a")
	a.End()
	_, b := Start(ctx, "b")
	b.End()
	root.End()
	recs := ring.Snapshot()
	if recs[0].Parent != recs[2].Span || recs[1].Parent != recs[2].Span {
		t.Fatalf("siblings should share root parent: %+v", recs)
	}
}

func TestDisabledTracerIsNoop(t *testing.T) {
	ring := NewRing(8)
	tr := New(ring)
	tr.SetEnabled(false)
	ctx := WithTracer(context.Background(), tr)

	sctx, sp := Start(ctx, "x")
	if sp != nil {
		t.Fatal("disabled tracer returned non-nil span")
	}
	if sctx != ctx {
		t.Fatal("disabled Start should return ctx unchanged")
	}
	sp.Annotate(Str("k", "v")) // must not panic
	sp.End()
	tr.Add("c", 5)
	tr.SetGauge("g", 1.5)
	if got := tr.Counter("c"); got != 0 {
		t.Errorf("disabled Add recorded %d", got)
	}
	if len(ring.Snapshot()) != 0 {
		t.Error("disabled tracer recorded spans")
	}
	if tr.ChunkSpan("chunk") != nil {
		t.Error("disabled tracer issued chunk span")
	}
}

func TestNoTracerContext(t *testing.T) {
	SetGlobal(nil)
	ctx, sp := Start(context.Background(), "x")
	if sp != nil {
		t.Fatal("no-tracer ctx returned non-nil span")
	}
	sp.End()
	Add(ctx, "c", 1) // must not panic
	SetGauge(ctx, "g", 1)
}

func TestGlobalFallback(t *testing.T) {
	tr := New()
	SetGlobal(tr)
	defer SetGlobal(nil)
	_, sp := Start(context.Background(), "via-global")
	if sp == nil {
		t.Fatal("global fallback did not produce a span")
	}
	sp.End()
	Add(context.Background(), "gc", 3)
	if got := tr.Counter("gc"); got != 3 {
		t.Errorf("global counter = %d, want 3", got)
	}
	if Active() != tr {
		t.Error("Active() should return enabled global")
	}
	tr.SetEnabled(false)
	if Active() != nil {
		t.Error("Active() should be nil when global disabled")
	}
}

func TestCountersAndGauges(t *testing.T) {
	tr := New()
	ctx := WithTracer(context.Background(), tr)
	Add(ctx, "matvec", 10)
	Add(ctx, "matvec", 5)
	tr.Add("reorth", 2)
	SetGauge(ctx, "workers", 8)
	tr.SetGauge("workers", 4)

	if got := tr.Counter("matvec"); got != 15 {
		t.Errorf("matvec = %d, want 15", got)
	}
	c := tr.Counters()
	if c["matvec"] != 15 || c["reorth"] != 2 {
		t.Errorf("counters = %v", c)
	}
	g := tr.Gauges()
	if g["workers"] != 4 {
		t.Errorf("gauges = %v", g)
	}
}

func TestStartAtRetroactive(t *testing.T) {
	tr := New()
	ctx := WithTracer(context.Background(), tr)
	past := time.Now().Add(-50 * time.Millisecond)
	_, sp := StartAt(ctx, "job.queue", past)
	sp.End()
	stats := tr.SpanStats()
	if len(stats) != 1 || stats[0].Name != "job.queue" {
		t.Fatalf("stats = %v", stats)
	}
	if stats[0].Max < 40*time.Millisecond {
		t.Errorf("retroactive span dur = %v, want >= ~50ms", stats[0].Max)
	}
}

func TestSpanStatsPercentiles(t *testing.T) {
	tr := New()
	// Feed 100 known durations straight into the aggregation.
	for i := 1; i <= 100; i++ {
		tr.observe("s", time.Duration(i)*time.Millisecond)
	}
	stats := tr.SpanStats()
	if len(stats) != 1 {
		t.Fatalf("stats = %v", stats)
	}
	s := stats[0]
	if s.Count != 100 || s.Max != 100*time.Millisecond {
		t.Errorf("count=%d max=%v", s.Count, s.Max)
	}
	if s.P50 < 45*time.Millisecond || s.P50 > 55*time.Millisecond {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.P95 < 90*time.Millisecond || s.P95 > 100*time.Millisecond {
		t.Errorf("p95 = %v", s.P95)
	}
	if s.Total != 5050*time.Millisecond {
		t.Errorf("total = %v", s.Total)
	}
}

func TestSampleDecimationBoundsMemory(t *testing.T) {
	tr := New()
	for i := 0; i < 3*maxSamples; i++ {
		tr.observe("hot", time.Microsecond)
	}
	tr.mu.Lock()
	n := len(tr.spans["hot"].samples)
	stride := tr.spans["hot"].stride
	tr.mu.Unlock()
	if n >= maxSamples {
		t.Errorf("samples grew to %d, cap %d", n, maxSamples)
	}
	if stride < 2 {
		t.Errorf("stride = %d, expected decimation to have kicked in", stride)
	}
	if got := tr.SpanStats()[0].Count; got != int64(3*maxSamples) {
		t.Errorf("count = %d, want %d", got, 3*maxSamples)
	}
}

func TestRingWrapsOldestFirst(t *testing.T) {
	ring := NewRing(3)
	for i := 0; i < 5; i++ {
		ring.Record(SpanRecord{Span: uint64(i + 1)})
	}
	recs := ring.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("len = %d", len(recs))
	}
	if recs[0].Span != 3 || recs[1].Span != 4 || recs[2].Span != 5 {
		t.Errorf("ring order = %d,%d,%d want 3,4,5", recs[0].Span, recs[1].Span, recs[2].Span)
	}
}

func TestJSONWriterEmitsLines(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJSONWriter(&buf))
	ctx := WithTracer(context.Background(), tr)
	_, sp := Start(ctx, "a", Int("n", 7))
	sp.End()
	_, sp2 := Start(ctx, "b")
	sp2.End()

	sc := bufio.NewScanner(&buf)
	var names []string
	for sc.Scan() {
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad json line: %v", err)
		}
		names = append(names, rec.Name)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
}

func TestChunkSampling(t *testing.T) {
	tr := New()
	if sp := tr.ChunkSpan("c"); sp != nil {
		t.Fatal("sampling off should yield nil chunk spans")
	}
	tr.SetChunkSampling(4)
	var sampled int
	for i := 0; i < 16; i++ {
		if sp := tr.ChunkSpan("c"); sp != nil {
			sampled++
			sp.End()
		}
	}
	if sampled != 4 {
		t.Errorf("sampled %d of 16 with every=4", sampled)
	}
}

func TestAdoptCarriesTracerAndSpan(t *testing.T) {
	tr := New(NewRing(4))
	src := WithTracer(context.Background(), tr)
	src, parent := Start(src, "job")
	base, cancel := context.WithCancel(context.Background())
	defer cancel()

	adopted := Adopt(base, src)
	if FromContext(adopted) != tr {
		t.Fatal("Adopt dropped tracer")
	}
	_, child := Start(adopted, "decompose")
	child.End()
	parent.End()

	stats := tr.SpanStats()
	if len(stats) != 2 {
		t.Fatalf("stats = %v", stats)
	}
	// The child must nest under the job span despite the fresh base ctx.
	cancel()
	if adopted.Err() == nil {
		t.Error("Adopt must preserve base cancellation")
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := New()
	ctx := WithTracer(context.Background(), tr)
	_, sp := Start(ctx, "once")
	sp.End()
	sp.End()
	if got := tr.SpanStats()[0].Count; got != 1 {
		t.Errorf("double End recorded %d spans", got)
	}
}

func TestWriteReport(t *testing.T) {
	tr := New()
	ctx := WithTracer(context.Background(), tr)
	_, sp := Start(ctx, "eigen")
	sp.End()
	tr.Add("eigen.matvec", 42)
	tr.SetGauge("parallel.workers", 8)

	var buf bytes.Buffer
	tr.WriteReport(&buf)
	out := buf.String()
	for _, want := range []string{"eigen", "eigen.matvec", "42", "parallel.workers", "8"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	tr := New(NewRing(128))
	ctx := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c, sp := Start(ctx, "work")
				Add(c, "n", 1)
				_, inner := Start(c, "inner")
				inner.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := tr.Counter("n"); got != 1600 {
		t.Errorf("counter = %d, want 1600", got)
	}
	stats := tr.SpanStats()
	var total int64
	for _, s := range stats {
		total += s.Count
	}
	if total != 3200 {
		t.Errorf("span count = %d, want 3200", total)
	}
}

func BenchmarkStartEndDisabled(b *testing.B) {
	tr := New()
	tr.SetEnabled(false)
	ctx := WithTracer(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, sp := Start(ctx, "x")
		_ = c
		sp.End()
	}
}

func BenchmarkStartEndEnabled(b *testing.B) {
	tr := New()
	ctx := WithTracer(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "x")
		sp.End()
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Add("c", 1)
	}
}
