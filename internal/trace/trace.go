// Package trace is the repository's zero-dependency tracing and metrics
// layer: hierarchical spans with monotonic timings, named counters and
// gauges, and pluggable sinks for finished spans (an in-memory ring for
// tests and the daemon's /debug/trace dump, a JSON-lines writer for
// offline analysis; the spectrald /metrics endpoint renders the
// tracer's built-in aggregation as its Prometheus bridge).
//
// Design constraints, in order:
//
//  1. A disabled (or absent) tracer is a no-op. Every entry point is
//     guarded by one context lookup plus one atomic load, so the
//     instrumented pipeline costs the same with tracing off as the
//     uninstrumented pipeline did (benchpar's trace-off rows prove the
//     bound; the budget is <= 2%).
//  2. Timing is monotonic: spans measure time.Since on a time.Time that
//     carries Go's monotonic clock reading, so wall-clock steps never
//     corrupt a duration.
//  3. The numerical kernels (internal/eigen, melo, dprp, parallel) must
//     not read the clock directly — cmd/vet-invariants enforces that
//     they never import "time" — so every timing they report flows
//     through this package, keeping the serial≡parallel equivalence
//     suite honest: instrumentation can observe a kernel but never
//     perturb its arithmetic.
//
// Spans form trees: Start(ctx, name) derives a child of the span carried
// by ctx (or a new root), returns a context carrying the new span, and
// Span.End delivers a SpanRecord to every sink plus the tracer's
// aggregation. Counters and gauges are flat names resolved through the
// same context (Add, SetGauge). Code that has no context — the parallel
// chunk scheduler — reports through the process-global tracer
// (SetGlobal), which is also the fallback for contexts without an
// attached tracer.
package trace

import (
	"context"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span. Values are strings so
// records serialize without reflection surprises; use the Str/Int/
// Int64/Float/Bool constructors.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Str returns a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int returns an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// Int64 returns a 64-bit integer attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: strconv.FormatInt(v, 10)} }

// Float returns a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: strconv.FormatFloat(v, 'g', -1, 64)} }

// Bool returns a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: strconv.FormatBool(v)} }

// SpanRecord is a finished span as delivered to sinks. Parent is 0 for
// trace roots; Trace is the root span's ID, shared by every span of one
// trace.
type SpanRecord struct {
	Trace  uint64        `json:"trace"`
	Span   uint64        `json:"span"`
	Parent uint64        `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"ns"`
	Attrs  []Attr        `json:"attrs,omitempty"`
}

// Sink receives finished spans. Implementations must be safe for
// concurrent use; Record must not block (sinks run inline in Span.End).
type Sink interface {
	Record(SpanRecord)
}

// Tracer issues spans and accumulates counters, gauges and per-span-name
// duration statistics. Safe for concurrent use. The zero value is not
// usable; create with New.
type Tracer struct {
	enabled    atomic.Bool
	ids        atomic.Uint64
	chunkEvery atomic.Int64
	chunkSeq   atomic.Uint64

	sinks []Sink // immutable after New

	mu    sync.Mutex
	spans map[string]*spanAgg

	counters sync.Map // string -> *atomic.Int64
	gauges   sync.Map // string -> *atomic.Uint64 (float64 bits)
}

// New returns an enabled tracer delivering finished spans to the given
// sinks (none is fine: the built-in aggregation still works, which is
// all /metrics and WriteReport need).
func New(sinks ...Sink) *Tracer {
	t := &Tracer{sinks: sinks, spans: make(map[string]*spanAgg)}
	t.enabled.Store(true)
	return t
}

// SetEnabled flips the tracer's master switch. While disabled every
// operation is a no-op behind a single atomic load; spans started
// before disabling still record on End.
func (t *Tracer) SetEnabled(v bool) { t.enabled.Store(v) }

// Enabled reports the master switch.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetChunkSampling enables per-chunk spans in internal/parallel: one in
// every `every` chunks gets a span (0 disables, the default). Sampling
// exists because chunk spans are the only per-iteration instrumentation
// in the repository — recording all of them would dominate small
// kernels.
func (t *Tracer) SetChunkSampling(every int) {
	if every < 0 {
		every = 0
	}
	t.chunkEvery.Store(int64(every))
}

// ChunkSamplingEnabled reports whether ChunkSpan can ever return a
// non-nil span. Hot loops (internal/parallel.For) check it once per
// kernel call so the per-chunk span wrapper — a heap-allocated closure —
// is only built when sampling could actually observe a chunk.
func (t *Tracer) ChunkSamplingEnabled() bool {
	return t != nil && t.enabled.Load() && t.chunkEvery.Load() > 0
}

// ChunkSpan returns a detached (root) span for a sampled chunk, or nil
// when chunk sampling is off or this chunk is not sampled. Callers must
// End a non-nil span.
func (t *Tracer) ChunkSpan(name string) *Span {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	every := t.chunkEvery.Load()
	if every <= 0 || t.chunkSeq.Add(1)%uint64(every) != 0 {
		return nil
	}
	return t.newSpan(name, nil, time.Now(), nil)
}

// global is the process-wide fallback tracer (see SetGlobal).
var global atomic.Pointer[Tracer]

// SetGlobal installs t as the process-global tracer: the fallback for
// contexts without an attached tracer, and the only reporting path for
// code with no context at all (internal/parallel). Pass nil to clear.
func SetGlobal(t *Tracer) {
	if t == nil {
		global.Store(nil)
		return
	}
	global.Store(t)
}

// Global returns the process-global tracer, or nil.
func Global() *Tracer { return global.Load() }

// Active returns the process-global tracer when it is set and enabled,
// else nil. internal/parallel gates its instrumentation on this.
func Active() *Tracer {
	if t := global.Load(); t != nil && t.enabled.Load() {
		return t
	}
	return nil
}

type tracerKey struct{}
type spanKey struct{}

// WithTracer returns a context carrying t; Start/Add/SetGauge calls on
// the returned context (and its descendants) report to t.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// FromContext returns the tracer attached to ctx, falling back to the
// process-global tracer; nil when neither exists.
func FromContext(ctx context.Context) *Tracer {
	if t, ok := ctx.Value(tracerKey{}).(*Tracer); ok {
		return t
	}
	return global.Load()
}

// Adopt returns a context with base's deadline and cancellation but the
// trace state (tracer and current span) of src. The spectrald job pool
// uses it so a shared spectrum compute detached from one job's
// cancellation still nests its spans under that job's trace.
func Adopt(base, src context.Context) context.Context {
	if t, ok := src.Value(tracerKey{}).(*Tracer); ok {
		base = context.WithValue(base, tracerKey{}, t)
	}
	if s, ok := src.Value(spanKey{}).(*Span); ok && s != nil {
		base = context.WithValue(base, spanKey{}, s)
	}
	return base
}

// Span is one in-flight span. Spans are single-owner: Annotate and End
// are not safe for concurrent use on the same span. All methods are
// nil-safe, so the disabled-tracer path needs no branches at call
// sites.
type Span struct {
	t      *Tracer
	name   string
	trace  uint64
	id     uint64
	parent uint64
	start  time.Time
	attrs  []Attr
	ended  bool
}

// Start begins a span named name as a child of the span carried by ctx
// (or a new trace root), returning a context carrying the new span.
// When ctx has no enabled tracer it returns (ctx, nil) untouched — the
// nil span's methods are no-ops.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	return StartAt(ctx, name, time.Time{}, attrs...)
}

// StartAt is Start with an explicit start time, for spans observed
// retroactively (the job pool's queue-wait span starts when the job was
// submitted). A zero start means "now".
func StartAt(ctx context.Context, name string, start time.Time, attrs ...Attr) (context.Context, *Span) {
	t := FromContext(ctx)
	if t == nil || !t.enabled.Load() {
		return ctx, nil
	}
	if start.IsZero() {
		start = time.Now()
	}
	var parent *Span
	if s, ok := ctx.Value(spanKey{}).(*Span); ok {
		parent = s
	}
	sp := t.newSpan(name, parent, start, attrs)
	return context.WithValue(ctx, spanKey{}, sp), sp
}

func (t *Tracer) newSpan(name string, parent *Span, start time.Time, attrs []Attr) *Span {
	id := t.ids.Add(1)
	sp := &Span{t: t, name: name, id: id, trace: id, start: start, attrs: attrs}
	if parent != nil {
		sp.trace = parent.trace
		sp.parent = parent.id
	}
	return sp
}

// Annotate appends attributes to the span (recorded at End).
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// End finishes the span: its duration enters the tracer's aggregation
// and a SpanRecord is delivered to every sink. Safe on nil spans and
// idempotent.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	d := time.Since(s.start)
	s.t.observe(s.name, d)
	if len(s.t.sinks) == 0 {
		return
	}
	rec := SpanRecord{
		Trace:  s.trace,
		Span:   s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start,
		Dur:    d,
		Attrs:  s.attrs,
	}
	for _, sink := range s.t.sinks {
		sink.Record(rec)
	}
}

// Add increments the named counter by delta on the context's tracer
// (no-op without one).
func Add(ctx context.Context, name string, delta int64) {
	FromContext(ctx).Add(name, delta)
}

// Add increments the named counter by delta. No-op while disabled.
func (t *Tracer) Add(name string, delta int64) {
	if t == nil || !t.enabled.Load() {
		return
	}
	v, ok := t.counters.Load(name)
	if !ok {
		v, _ = t.counters.LoadOrStore(name, new(atomic.Int64))
	}
	v.(*atomic.Int64).Add(delta)
}

// SetGauge sets the named gauge on the context's tracer (no-op without
// one).
func SetGauge(ctx context.Context, name string, val float64) {
	FromContext(ctx).SetGauge(name, val)
}

// SetGauge sets the named gauge to val. No-op while disabled.
func (t *Tracer) SetGauge(name string, val float64) {
	if t == nil || !t.enabled.Load() {
		return
	}
	v, ok := t.gauges.Load(name)
	if !ok {
		v, _ = t.gauges.LoadOrStore(name, new(atomic.Uint64))
	}
	v.(*atomic.Uint64).Store(mathFloat64bits(val))
}

// Counter returns the current value of the named counter (0 if never
// incremented).
func (t *Tracer) Counter(name string) int64 {
	if t == nil {
		return 0
	}
	if v, ok := t.counters.Load(name); ok {
		return v.(*atomic.Int64).Load()
	}
	return 0
}

// Counters returns a snapshot of all counters.
func (t *Tracer) Counters() map[string]int64 {
	out := make(map[string]int64)
	if t == nil {
		return out
	}
	t.counters.Range(func(k, v any) bool {
		out[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	return out
}

// Gauges returns a snapshot of all gauges.
func (t *Tracer) Gauges() map[string]float64 {
	out := make(map[string]float64)
	if t == nil {
		return out
	}
	t.gauges.Range(func(k, v any) bool {
		out[k.(string)] = mathFloat64frombits(v.(*atomic.Uint64).Load())
		return true
	})
	return out
}

// spanAgg accumulates one span name's durations. Percentiles come from
// a bounded sample: once maxSamples are held, every other sample is
// dropped and the recording stride doubles, so long runs keep an
// unbiased-enough spread at constant memory.
type spanAgg struct {
	count   int64
	total   time.Duration
	max     time.Duration
	samples []time.Duration
	stride  int64
	skip    int64
}

const maxSamples = 4096

func (t *Tracer) observe(name string, d time.Duration) {
	t.mu.Lock()
	a := t.spans[name]
	if a == nil {
		a = &spanAgg{stride: 1}
		t.spans[name] = a
	}
	a.count++
	a.total += d
	if d > a.max {
		a.max = d
	}
	a.skip++
	if a.skip >= a.stride {
		a.skip = 0
		a.samples = append(a.samples, d)
		if len(a.samples) >= maxSamples {
			half := len(a.samples) / 2
			for i := 0; i < half; i++ {
				a.samples[i] = a.samples[2*i]
			}
			a.samples = a.samples[:half]
			a.stride *= 2
		}
	}
	t.mu.Unlock()
}

// SpanStat summarizes one span name's recorded durations.
type SpanStat struct {
	Name  string
	Count int64
	Total time.Duration
	P50   time.Duration
	P95   time.Duration
	Max   time.Duration
}

// SpanStats returns per-span-name duration statistics, sorted by name.
// Percentiles are computed over the (possibly decimated) sample.
func (t *Tracer) SpanStats() []SpanStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	stats := make([]SpanStat, 0, len(t.spans))
	for name, a := range t.spans {
		s := SpanStat{Name: name, Count: a.count, Total: a.total, Max: a.max}
		if len(a.samples) > 0 {
			sorted := append([]time.Duration(nil), a.samples...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			s.P50 = percentile(sorted, 0.50)
			s.P95 = percentile(sorted, 0.95)
		}
		stats = append(stats, s)
	}
	t.mu.Unlock()
	sort.Slice(stats, func(i, j int) bool { return stats[i].Name < stats[j].Name })
	return stats
}

// percentile returns the q-quantile of sorted (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func mathFloat64bits(f float64) uint64     { return math.Float64bits(f) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }
