// Package kl implements Kernighan–Lin bipartition refinement for weighted
// graphs: passes of greedy pair swaps with rollback to the best prefix.
// KL is the classic iterative improver the VLSI partitioning literature
// (and the paper's survey [4]) builds on; FM (internal/fm) is its
// linear-time single-move successor for hypergraphs. KL preserves the
// exact side sizes of its input, making it the natural post-processor for
// size-constrained graph partitions (e.g. vector-partitioning output).
package kl

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/partition"
)

// Options configures refinement.
type Options struct {
	// MaxPasses caps the number of passes. Default 8.
	MaxPasses int
	// MaxSwapsPerPass caps the swaps attempted per pass (0 = min side
	// size).
	MaxSwapsPerPass int
}

// Result reports a refinement outcome.
type Result struct {
	Partition  *partition.Partition
	Cut        float64
	InitialCut float64
	Passes     int
	Swaps      int
}

// Refine improves a graph bipartition by KL passes. Side sizes are
// preserved exactly. The input partition is not modified.
func Refine(g *graph.Graph, p *partition.Partition, opts Options) (*Result, error) {
	if p.K != 2 {
		return nil, fmt.Errorf("kl: need a bipartition, got k = %d", p.K)
	}
	n := g.N()
	if p.N() != n {
		return nil, fmt.Errorf("kl: partition over %d vertices, graph has %d", p.N(), n)
	}
	maxPasses := opts.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 8
	}

	side := append([]int(nil), p.Assign...)
	res := &Result{InitialCut: cutOf(g, side)}

	// D values: external − internal connection weight per vertex.
	dval := make([]float64, n)
	computeD := func() {
		for u := 0; u < n; u++ {
			var ext, int_ float64
			for _, h := range g.Adj(u) {
				if side[h.To] == side[u] {
					int_ += h.W
				} else {
					ext += h.W
				}
			}
			dval[u] = ext - int_
		}
	}

	for pass := 0; pass < maxPasses; pass++ {
		res.Passes = pass + 1
		computeD()
		locked := make([]bool, n)
		type swap struct {
			a, b int
			gain float64
		}
		var swaps []swap
		maxSwaps := opts.MaxSwapsPerPass
		if maxSwaps <= 0 {
			c0 := 0
			for _, s := range side {
				if s == 0 {
					c0++
				}
			}
			maxSwaps = c0
			if n-c0 < maxSwaps {
				maxSwaps = n - c0
			}
		}

		for len(swaps) < maxSwaps {
			// Best (a ∈ side0, b ∈ side1) pair by gain
			// g = D_a + D_b − 2·w(a,b).
			bestA, bestB := -1, -1
			bestGain := math.Inf(-1)
			for a := 0; a < n; a++ {
				if locked[a] || side[a] != 0 {
					continue
				}
				for b := 0; b < n; b++ {
					if locked[b] || side[b] != 1 {
						continue
					}
					gain := dval[a] + dval[b] - 2*g.Weight(a, b)
					if gain > bestGain {
						bestGain = gain
						bestA, bestB = a, b
					}
				}
			}
			if bestA == -1 {
				break
			}
			// Tentatively swap, lock, and update D values.
			locked[bestA], locked[bestB] = true, true
			side[bestA], side[bestB] = 1, 0
			swaps = append(swaps, swap{bestA, bestB, bestGain})
			for _, u := range []int{bestA, bestB} {
				for _, h := range g.Adj(u) {
					if locked[h.To] {
						continue
					}
					// Recompute lazily: exact incremental D updates for a
					// swap are error-prone; the O(deg) recomputation per
					// neighbor keeps the pass O(n²) overall, which the
					// pair search already costs.
					var ext, int_ float64
					for _, hh := range g.Adj(h.To) {
						if side[hh.To] == side[h.To] {
							int_ += hh.W
						} else {
							ext += hh.W
						}
					}
					dval[h.To] = ext - int_
				}
			}
		}

		// Best prefix of the tentative swap sequence.
		bestPrefix, bestTotal, running := 0, 0.0, 0.0
		for i, s := range swaps {
			running += s.gain
			if running > bestTotal {
				bestTotal = running
				bestPrefix = i + 1
			}
		}
		// Undo swaps beyond the best prefix.
		for i := len(swaps) - 1; i >= bestPrefix; i-- {
			side[swaps[i].a] = 0
			side[swaps[i].b] = 1
		}
		res.Swaps += bestPrefix
		if bestTotal <= 1e-12 {
			break
		}
	}

	refined, err := partition.New(side, 2)
	if err != nil {
		return nil, err
	}
	res.Partition = refined
	res.Cut = cutOf(g, side)
	return res, nil
}

func cutOf(g *graph.Graph, side []int) float64 {
	var cut float64
	for u := 0; u < g.N(); u++ {
		for _, h := range g.Adj(u) {
			if u < h.To && side[u] != side[h.To] {
				cut += h.W
			}
		}
	}
	return cut
}
