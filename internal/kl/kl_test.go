package kl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/partition"
)

func randomBalanced(rng *rand.Rand, n int) *partition.Partition {
	assign := make([]int, n)
	perm := rng.Perm(n)
	for i, v := range perm {
		if i < n/2 {
			assign[v] = 0
		} else {
			assign[v] = 1
		}
	}
	return partition.MustNew(assign, 2)
}

func TestRefineNeverWorsensAndPreservesSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		n := 16 + rng.Intn(30)
		g := graph.RandomConnected(n, 3*n, int64(trial))
		p := randomBalanced(rng, n)
		want := p.Sizes()
		res, err := Refine(g, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cut > res.InitialCut+1e-9 {
			t.Errorf("trial %d: cut worsened %v -> %v", trial, res.InitialCut, res.Cut)
		}
		got := res.Partition.Sizes()
		if got[0] != want[0] || got[1] != want[1] {
			t.Errorf("trial %d: sizes changed %v -> %v", trial, want, got)
		}
		if direct := partition.CutWeight(g, res.Partition); direct != res.Cut {
			t.Errorf("trial %d: reported %v, metric %v", trial, res.Cut, direct)
		}
	}
}

func TestRefineFindsPlantedCut(t *testing.T) {
	g := graph.TwoClusters(12, 12, 2, 0.25, 3)
	// Worst start: alternating sides.
	assign := make([]int, 24)
	for i := range assign {
		assign[i] = i % 2
	}
	p := partition.MustNew(assign, 2)
	res, err := Refine(g, p, Options{MaxPasses: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut > 0.5+1e-9 {
		t.Errorf("cut %v, want planted 0.5", res.Cut)
	}
	t.Logf("alternating %v -> refined %v in %d passes, %d swaps",
		res.InitialCut, res.Cut, res.Passes, res.Swaps)
}

func TestRefineStableAtOptimum(t *testing.T) {
	g := graph.TwoClusters(10, 10, 1, 0.5, 7)
	assign := make([]int, 20)
	for i := 10; i < 20; i++ {
		assign[i] = 1
	}
	p := partition.MustNew(assign, 2)
	res, err := Refine(g, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != res.InitialCut {
		t.Errorf("optimal partition changed: %v -> %v", res.InitialCut, res.Cut)
	}
}

func TestRefineValidation(t *testing.T) {
	g := graph.Path(6)
	p3 := partition.MustNew([]int{0, 1, 2, 0, 1, 2}, 3)
	if _, err := Refine(g, p3, Options{}); err == nil {
		t.Error("3-way accepted")
	}
	short := partition.MustNew([]int{0, 1}, 2)
	if _, err := Refine(g, short, Options{}); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestRefineInputNotMutated(t *testing.T) {
	g := graph.RandomConnected(20, 50, 3)
	rng := rand.New(rand.NewSource(9))
	p := randomBalanced(rng, 20)
	orig := append([]int(nil), p.Assign...)
	if _, err := Refine(g, p, Options{}); err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if p.Assign[i] != orig[i] {
			t.Fatal("input mutated")
		}
	}
}

// Property: for arbitrary seeds, refinement never worsens the cut and
// preserves the size signature.
func TestQuickRefineInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(20)
		g := graph.RandomConnected(n, 2*n, seed)
		p := randomBalanced(rng, n)
		want := p.Sizes()
		res, err := Refine(g, p, Options{MaxPasses: 3})
		if err != nil {
			return false
		}
		got := res.Partition.Sizes()
		return res.Cut <= res.InitialCut+1e-9 && got[0] == want[0] && got[1] == want[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
