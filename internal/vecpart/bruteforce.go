package vecpart

import (
	"math"

	"repro/internal/graph"
	"repro/internal/partition"
)

// The brute-force solvers in this file exist to verify the paper's
// reduction theorems exactly: on small instances, the optimum of the
// vector-partitioning problem (with d = n) must coincide with the optimum
// of min-cut graph partitioning. They enumerate all k^n assignments and
// are intended for n ≲ 14.

// enumerate calls fn for every k-way assignment of n elements in which
// cluster labels appear in first-use order (canonical form), skipping the
// label-permutation duplicates. Assignments with empty clusters are
// included (fn can filter).
func enumerate(n, k int, fn func(assign []int)) {
	assign := make([]int, n)
	var rec func(i, maxUsed int)
	rec = func(i, maxUsed int) {
		if i == n {
			fn(assign)
			return
		}
		limit := maxUsed + 1
		if limit >= k {
			limit = k - 1
		}
		for c := 0; c <= limit; c++ {
			assign[i] = c
			next := maxUsed
			if c > maxUsed {
				next = c
			}
			rec(i+1, next)
		}
	}
	rec(0, -1)
}

// BestCutPartition enumerates all k-way partitions of g's vertices (with
// every cluster non-empty) and returns one minimizing the paper's cut
// objective f(P_k), together with its value.
func BestCutPartition(g *graph.Graph, k int) (*partition.Partition, float64) {
	n := g.N()
	best := math.Inf(1)
	var bestAssign []int
	enumerate(n, k, func(assign []int) {
		if !allUsed(assign, k) {
			return
		}
		p := partition.Partition{Assign: assign, K: k}
		f := partition.F(g, &p)
		if f < best {
			best = f
			bestAssign = append([]int(nil), assign...)
		}
	})
	if bestAssign == nil {
		return nil, best
	}
	return partition.MustNew(bestAssign, k), best
}

// BestVectorPartition enumerates all k-way partitions (every cluster
// non-empty) and returns one optimizing the vector-partitioning objective
// Σ_h ‖Y_h‖²: maximized for MaxSum instances, minimized for MinSum.
func BestVectorPartition(v *Vectors, k int) (*partition.Partition, float64) {
	n := v.N()
	maximize := v.Scale == MaxSum
	best := math.Inf(1)
	if maximize {
		best = math.Inf(-1)
	}
	var bestAssign []int
	enumerate(n, k, func(assign []int) {
		if !allUsed(assign, k) {
			return
		}
		p := partition.Partition{Assign: assign, K: k}
		obj := v.SumSquaredSubsets(&p)
		if (maximize && obj > best) || (!maximize && obj < best) {
			best = obj
			bestAssign = append([]int(nil), assign...)
		}
	})
	if bestAssign == nil {
		return nil, best
	}
	return partition.MustNew(bestAssign, k), best
}

func allUsed(assign []int, k int) bool {
	var used uint64
	for _, c := range assign {
		used |= 1 << uint(c)
	}
	return used == 1<<uint(k)-1
}
