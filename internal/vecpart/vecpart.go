// Package vecpart implements the paper's central construction: the
// reduction from min-cut graph partitioning to vector partitioning.
//
// Given the Laplacian eigendecomposition Q = U Λ Uᵀ with eigenvalues
// 0 = λ_1 ≤ … ≤ λ_n, each vertex v_i is mapped to a d-dimensional vector.
// Two scalings are provided:
//
//   - MaxSum: y_i[j] = sqrt(H − λ_j) · U[i][j]. With d = n,
//     Σ_h ‖Y_h‖² = n·H − f(P_k), so minimizing the cut f is *exactly*
//     maximizing the sum of squared subset-vector magnitudes.
//   - MinSum: y_i[j] = sqrt(λ_j) · U[i][j]. With d = n,
//     Σ_h ‖Y_h‖² = f(P_k), giving the min-sum dual (Corollary 5), and
//     ‖y_iⁿ‖² = deg(v_i) (Corollary 6).
//
// where Y_h = Σ_{i ∈ C_h} y_i is the subset vector of cluster h. These
// identities — and their exactness at d = n — are the formal basis for the
// paper's thesis that more eigenvectors are strictly more informative.
package vecpart

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/eigen"
	"repro/internal/linalg"
	"repro/internal/partition"
)

// Scaling selects how eigenvector coordinates are scaled into vertex
// vectors.
type Scaling int

const (
	// MaxSum scales by sqrt(H − λ_j): min-cut == max-sum vector
	// partitioning. This is the scaling MELO uses.
	MaxSum Scaling = iota
	// MinSum scales by sqrt(λ_j): min-cut == min-sum vector partitioning.
	MinSum
)

// String returns the scaling name.
func (s Scaling) String() string {
	switch s {
	case MaxSum:
		return "max-sum"
	case MinSum:
		return "min-sum"
	default:
		return fmt.Sprintf("Scaling(%d)", int(s))
	}
}

// Vectors holds the vertex vectors of a vector-partitioning instance.
type Vectors struct {
	// Y is n×d: row i is the vector of vertex i.
	Y *linalg.Dense
	// H is the constant used by the MaxSum scaling (0 for MinSum).
	H float64
	// Lambda are the eigenvalues used (length d).
	Lambda []float64
	// Scale records which scaling produced Y.
	Scale Scaling
}

// N returns the number of vertices.
func (v *Vectors) N() int { return v.Y.Rows }

// D returns the dimension of the vectors.
func (v *Vectors) D() int { return v.Y.Cols }

// Row returns vertex i's vector (a view; do not modify).
func (v *Vectors) Row(i int) []float64 { return v.Y.Row(i) }

// FromDecomposition builds vertex vectors from the first d eigenpairs of
// dec under the given scaling. For MaxSum, H must satisfy H ≥ λ_d (so all
// coordinates are real); ChooseH provides the paper's truncation-balanced
// choice.
func FromDecomposition(dec *eigen.Decomposition, d int, s Scaling, H float64) (*Vectors, error) {
	if d < 1 || d > dec.D() {
		return nil, fmt.Errorf("vecpart: d = %d out of range [1,%d]", d, dec.D())
	}
	lam := linalg.CopyVec(dec.Values[:d])
	n := dec.Vectors.Rows
	y := linalg.NewDense(n, d)
	for j := 0; j < d; j++ {
		var c float64
		switch s {
		case MaxSum:
			if H < lam[j]-1e-9 {
				return nil, fmt.Errorf("vecpart: H = %v < λ_%d = %v", H, j+1, lam[j])
			}
			c = math.Sqrt(math.Max(0, H-lam[j]))
		case MinSum:
			c = math.Sqrt(math.Max(0, lam[j]))
		default:
			return nil, errors.New("vecpart: unknown scaling")
		}
		for i := 0; i < n; i++ {
			y.Set(i, j, c*dec.Vectors.At(i, j))
		}
	}
	return &Vectors{Y: y, H: H, Lambda: lam, Scale: s}, nil
}

// ChooseH returns the H that makes the summed contribution of the unused
// n−d eigenvectors vanish: Σ_{j>d} (H − λ_j) = 0, i.e. H is the mean of
// the unused eigenvalues,
//
//	H = (trace(Q) − Σ_{j≤d} λ_j) / (n − d)
//
// computable without the full spectrum because trace(Q) equals the total
// weighted degree. For d = n any H ≥ λ_n keeps the reduction exact; λ_n
// is returned. The mean of the unused eigenvalues is always ≥ λ_d, so the
// MaxSum scaling stays real.
func ChooseH(traceQ float64, lambda []float64, n int) float64 {
	d := len(lambda)
	if d >= n {
		return lambda[d-1]
	}
	var used float64
	for _, l := range lambda {
		used += l
	}
	return (traceQ - used) / float64(n-d)
}

// SubsetVector returns Y_h = Σ_{i ∈ members} y_i.
func (v *Vectors) SubsetVector(members []int) []float64 {
	sum := make([]float64, v.D())
	for _, i := range members {
		linalg.Axpy(1, v.Row(i), sum)
	}
	return sum
}

// SumSquaredSubsets returns Σ_h ‖Y_h‖² for the given partition — the
// vector-partitioning objective (maximize under MaxSum, minimize under
// MinSum).
func (v *Vectors) SumSquaredSubsets(p *partition.Partition) float64 {
	if p.N() != v.N() {
		panic(fmt.Sprintf("vecpart: partition over %d elements, vectors over %d", p.N(), v.N()))
	}
	sums := make([][]float64, p.K)
	for h := range sums {
		sums[h] = make([]float64, v.D())
	}
	for i, c := range p.Assign {
		linalg.Axpy(1, v.Row(i), sums[c])
	}
	var total float64
	for _, s := range sums {
		total += linalg.NormSq(s)
	}
	return total
}

// MinMaxSquaredSubset returns min_h ‖Y_h‖² (the max-min variant mentioned
// for Scaled-Cost-style objectives) and max_h ‖Y_h‖².
func (v *Vectors) MinMaxSquaredSubset(p *partition.Partition) (min, max float64) {
	sums := make([][]float64, p.K)
	for h := range sums {
		sums[h] = make([]float64, v.D())
	}
	for i, c := range p.Assign {
		linalg.Axpy(1, v.Row(i), sums[c])
	}
	min, max = math.Inf(1), math.Inf(-1)
	for _, s := range sums {
		ns := linalg.NormSq(s)
		if ns < min {
			min = ns
		}
		if ns > max {
			max = ns
		}
	}
	return min, max
}

// PredictedCut converts the vector-partitioning objective value into the
// predicted graph cut f(P_k) under this instance's scaling. The prediction
// is exact when d = n and approximate otherwise (the approximation error
// is what ChooseH balances to zero in expectation).
func (v *Vectors) PredictedCut(p *partition.Partition) float64 {
	obj := v.SumSquaredSubsets(p)
	switch v.Scale {
	case MaxSum:
		return float64(v.N())*v.H - obj
	default: // MinSum
		return obj
	}
}
