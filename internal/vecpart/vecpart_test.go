package vecpart

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/partition"
)

func decompose(t *testing.T, g *graph.Graph) *eigen.Decomposition {
	t.Helper()
	dec, err := eigen.SymEig(g.LaplacianDense())
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

func randomPartition(rng *rand.Rand, n, k int) *partition.Partition {
	assign := make([]int, n)
	// Guarantee every cluster non-empty.
	perm := rng.Perm(n)
	for c := 0; c < k; c++ {
		assign[perm[c]] = c
	}
	for _, i := range perm[k:] {
		assign[i] = rng.Intn(k)
	}
	return partition.MustNew(assign, k)
}

// TestExactMaxSumReduction verifies the paper's main theorem: with all n
// eigenvectors under the MaxSum scaling, Σ_h ‖Y_h‖² = n·H − f(P_k) for
// every partition.
func TestExactMaxSumReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 6; trial++ {
		n := 6 + rng.Intn(8)
		g := graph.RandomConnected(n, 2*n, int64(trial+100))
		dec := decompose(t, g)
		H := ChooseH(g.TotalDegree(), dec.Values, n) // = λ_n for d = n
		H += rng.Float64() * 3                       // any H ≥ λ_n works
		v, err := FromDecomposition(dec, n, MaxSum, H)
		if err != nil {
			t.Fatal(err)
		}
		for k := 2; k <= 4; k++ {
			for rep := 0; rep < 10; rep++ {
				p := randomPartition(rng, n, k)
				obj := v.SumSquaredSubsets(p)
				f := partition.F(g, p)
				want := float64(n)*H - f
				if math.Abs(obj-want) > 1e-7*(1+math.Abs(want)) {
					t.Fatalf("n=%d k=%d: Σ‖Y_h‖² = %v, want nH−f = %v", n, k, obj, want)
				}
				if pc := v.PredictedCut(p); math.Abs(pc-f) > 1e-7*(1+f) {
					t.Fatalf("PredictedCut = %v, want f = %v", pc, f)
				}
			}
		}
	}
}

// TestExactMinSumReduction verifies Corollary 5's dual form: with the
// MinSum scaling and d = n, Σ_h ‖Y_h‖² = f(P_k).
func TestExactMinSumReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 6; trial++ {
		n := 6 + rng.Intn(8)
		g := graph.RandomConnected(n, 2*n, int64(trial+200))
		dec := decompose(t, g)
		v, err := FromDecomposition(dec, n, MinSum, 0)
		if err != nil {
			t.Fatal(err)
		}
		for k := 2; k <= 3; k++ {
			p := randomPartition(rng, n, k)
			obj := v.SumSquaredSubsets(p)
			f := partition.F(g, p)
			if math.Abs(obj-f) > 1e-7*(1+f) {
				t.Fatalf("min-sum: Σ‖Y_h‖² = %v, want f = %v", obj, f)
			}
			if pc := v.PredictedCut(p); math.Abs(pc-f) > 1e-7*(1+f) {
				t.Fatalf("PredictedCut = %v, want %v", pc, f)
			}
		}
	}
}

// TestCorollary6 verifies ‖y_iⁿ‖² = deg(v_i) under the MinSum scaling, and
// the complementary ‖y_iⁿ‖² = H − deg(v_i) under MaxSum.
func TestCorollary6(t *testing.T) {
	g := graph.RandomConnected(12, 20, 3)
	dec := decompose(t, g)
	n := g.N()
	vMin, err := FromDecomposition(dec, n, MinSum, 0)
	if err != nil {
		t.Fatal(err)
	}
	H := dec.Values[n-1] + 1.5
	vMax, err := FromDecomposition(dec, n, MaxSum, H)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		nsMin := normSq(vMin.Row(i))
		if math.Abs(nsMin-g.Degree(i)) > 1e-8 {
			t.Errorf("‖y_%d‖² = %v, want deg = %v", i, nsMin, g.Degree(i))
		}
		nsMax := normSq(vMax.Row(i))
		if math.Abs(nsMax-(H-g.Degree(i))) > 1e-8 {
			t.Errorf("max-sum ‖y_%d‖² = %v, want H−deg = %v", i, nsMax, H-g.Degree(i))
		}
	}
}

func normSq(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

// TestOptimaCoincide verifies the reduction at the level of argmins: the
// optimal vector partition (d = n, MaxSum) achieves exactly the optimal
// cut, on exhaustively solvable instances.
func TestOptimaCoincide(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		n := 7 + trial
		g := graph.RandomConnected(n, n, int64(trial+50))
		dec := decompose(t, g)
		H := dec.Values[n-1] + 1
		v, err := FromDecomposition(dec, n, MaxSum, H)
		if err != nil {
			t.Fatal(err)
		}
		for k := 2; k <= 3; k++ {
			pCut, fOpt := BestCutPartition(g, k)
			pVec, objOpt := BestVectorPartition(v, k)
			if pCut == nil || pVec == nil {
				t.Fatal("brute force returned nil")
			}
			// The vector optimum must translate to the same cut value.
			fFromVec := partition.F(g, pVec)
			if math.Abs(fFromVec-fOpt) > 1e-7*(1+fOpt) {
				t.Errorf("n=%d k=%d: vector optimum has cut %v, graph optimum %v", n, k, fFromVec, fOpt)
			}
			// And the objective must satisfy the identity at the optimum.
			if math.Abs(objOpt-(float64(n)*H-fOpt)) > 1e-7*(1+objOpt) {
				t.Errorf("objective %v != nH−f* = %v", objOpt, float64(n)*H-fOpt)
			}
		}
	}
}

// TestMinSumOptimaCoincide does the same for the MinSum dual.
func TestMinSumOptimaCoincide(t *testing.T) {
	g := graph.RandomConnected(8, 10, 77)
	dec := decompose(t, g)
	v, err := FromDecomposition(dec, 8, MinSum, 0)
	if err != nil {
		t.Fatal(err)
	}
	pCut, fOpt := BestCutPartition(g, 2)
	pVec, objOpt := BestVectorPartition(v, 2)
	_ = pCut
	if math.Abs(objOpt-fOpt) > 1e-7*(1+fOpt) {
		t.Errorf("min-sum optimum %v != f* %v", objOpt, fOpt)
	}
	if f := partition.F(g, pVec); math.Abs(f-fOpt) > 1e-7*(1+fOpt) {
		t.Errorf("min-sum argmin has cut %v, want %v", f, fOpt)
	}
}

func TestChooseH(t *testing.T) {
	g := graph.Path(10)
	dec := decompose(t, g)
	n := g.N()
	// d = n: returns λ_n.
	if h := ChooseH(g.TotalDegree(), dec.Values, n); math.Abs(h-dec.Values[n-1]) > 1e-12 {
		t.Errorf("ChooseH(d=n) = %v, want λ_n = %v", h, dec.Values[n-1])
	}
	// d < n: mean of unused eigenvalues, which must zero the truncation sum.
	for d := 1; d < n; d++ {
		h := ChooseH(g.TotalDegree(), dec.Values[:d], n)
		var sum float64
		for j := d; j < n; j++ {
			sum += h - dec.Values[j]
		}
		if math.Abs(sum) > 1e-9 {
			t.Errorf("d=%d: Σ_{j>d}(H−λ_j) = %v, want 0", d, sum)
		}
		if h < dec.Values[d-1]-1e-12 {
			t.Errorf("d=%d: H = %v below λ_d = %v", d, h, dec.Values[d-1])
		}
	}
}

func TestFromDecompositionValidation(t *testing.T) {
	g := graph.Path(5)
	dec := decompose(t, g)
	if _, err := FromDecomposition(dec, 0, MaxSum, 10); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := FromDecomposition(dec, 9, MaxSum, 10); err == nil {
		t.Error("d>n accepted")
	}
	// H below λ_d must be rejected.
	if _, err := FromDecomposition(dec, 5, MaxSum, dec.Values[4]-1); err == nil {
		t.Error("H < λ_d accepted")
	}
}

func TestSubsetVectorAndMinMax(t *testing.T) {
	g := graph.Cycle(6)
	dec := decompose(t, g)
	v, err := FromDecomposition(dec, 3, MaxSum, ChooseH(g.TotalDegree(), dec.Values[:3], 6))
	if err != nil {
		t.Fatal(err)
	}
	s := v.SubsetVector([]int{0, 1})
	want := make([]float64, 3)
	for j := 0; j < 3; j++ {
		want[j] = v.Y.At(0, j) + v.Y.At(1, j)
	}
	for j := range want {
		if math.Abs(s[j]-want[j]) > 1e-12 {
			t.Fatalf("SubsetVector = %v, want %v", s, want)
		}
	}
	p := partition.MustNew([]int{0, 0, 0, 1, 1, 1}, 2)
	min, max := v.MinMaxSquaredSubset(p)
	if min > max {
		t.Error("min > max")
	}
	total := v.SumSquaredSubsets(p)
	if min+max-total > 1e-9 || total-(min+max) > 1e-9 {
		t.Errorf("for k=2, min+max = %v should equal total %v", min+max, total)
	}
}

// TestTruncatedObjectiveIsUpperBiased checks the qualitative property
// motivating "more eigenvectors": as d grows, the MaxSum objective of any
// fixed partition approaches nH_d − f monotonically in accuracy (we check
// the d = n endpoint is exact and that prediction error shrinks from d=2
// to d=n on average).
func TestTruncatedObjectivePredictionImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomConnected(12, 24, 9)
	dec := decompose(t, g)
	n := g.N()
	var errLow, errHigh float64
	for rep := 0; rep < 20; rep++ {
		p := randomPartition(rng, n, 3)
		f := partition.F(g, p)
		for _, d := range []int{2, n} {
			H := ChooseH(g.TotalDegree(), dec.Values[:d], n)
			v, err := FromDecomposition(dec, d, MaxSum, H)
			if err != nil {
				t.Fatal(err)
			}
			e := math.Abs(v.PredictedCut(p) - f)
			if d == 2 {
				errLow += e
			} else {
				errHigh += e
			}
		}
	}
	if errHigh > 1e-6 {
		t.Errorf("d=n prediction error %v, want ~0", errHigh)
	}
	if errLow <= errHigh {
		t.Errorf("d=2 error (%v) should exceed d=n error (%v)", errLow, errHigh)
	}
}

// Property-based: the reduction identity holds for arbitrary random
// partitions on a fixed graph (testing/quick drives the assignments).
func TestQuickReductionIdentity(t *testing.T) {
	g := graph.RandomConnected(10, 15, 31)
	dec := decompose(t, g)
	n := g.N()
	H := dec.Values[n-1] + 2
	v, err := FromDecomposition(dec, n, MaxSum, H)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []uint8) bool {
		if len(raw) < n {
			return true // not enough entropy; skip
		}
		assign := make([]int, n)
		for i := 0; i < n; i++ {
			assign[i] = int(raw[i]) % 3
		}
		p := partition.MustNew(assign, 3)
		obj := v.SumSquaredSubsets(p)
		want := float64(n)*H - partition.F(g, p)
		return math.Abs(obj-want) <= 1e-7*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEnumerateCanonical(t *testing.T) {
	count := 0
	enumerate(4, 2, func(assign []int) {
		if assign[0] != 0 {
			t.Fatal("first element must be cluster 0 in canonical enumeration")
		}
		count++
	})
	// Canonical 2-cluster assignments of 4 elements: 2^3 = 8.
	if count != 8 {
		t.Errorf("enumerate count = %d, want 8", count)
	}
}

func TestScalingString(t *testing.T) {
	if MaxSum.String() != "max-sum" || MinSum.String() != "min-sum" {
		t.Error("String names wrong")
	}
	if Scaling(5).String() == "" {
		t.Error("unknown scaling should format")
	}
}
