// Package flow implements a minimum-cost maximum-flow solver (successive
// shortest paths with Johnson potentials) and the balanced transportation
// problem built on it. It is the substrate for Barnes' spectral
// partitioning algorithm [7], which rounds eigenvector approximations to
// cluster indicators via a transportation problem.
package flow

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Network is a directed flow network with per-arc capacity and cost,
// built incrementally. Node ids are dense from 0.
type Network struct {
	n    int
	arcs []arc // forward/backward pairs: arc i ^ 1 is the reverse
	head [][]int
}

type arc struct {
	to   int
	cap  float64
	cost float64
}

// NewNetwork creates a network with n nodes.
func NewNetwork(n int) *Network {
	return &Network{n: n, head: make([][]int, n)}
}

// AddArc adds a directed arc with the given capacity and cost and returns
// its id (usable with Flow after solving).
func (nw *Network) AddArc(from, to int, capacity, cost float64) (int, error) {
	if from < 0 || from >= nw.n || to < 0 || to >= nw.n {
		return 0, fmt.Errorf("flow: arc (%d,%d) out of range [0,%d)", from, to, nw.n)
	}
	if capacity < 0 {
		return 0, fmt.Errorf("flow: negative capacity %v", capacity)
	}
	id := len(nw.arcs)
	nw.arcs = append(nw.arcs, arc{to: to, cap: capacity, cost: cost})
	nw.arcs = append(nw.arcs, arc{to: from, cap: 0, cost: -cost})
	nw.head[from] = append(nw.head[from], id)
	nw.head[to] = append(nw.head[to], id+1)
	return id, nil
}

// Flow returns the flow routed on the arc with the given id after a
// MinCostFlow call (the residual capacity of the reverse arc).
func (nw *Network) Flow(id int) float64 { return nw.arcs[id^1].cap }

// MinCostFlow routes `amount` units from s to t at minimum total cost
// using successive shortest augmenting paths with potentials (Dijkstra).
// Arc costs may be negative only if no negative cycle exists; an initial
// Bellman-Ford pass establishes valid potentials.
func (nw *Network) MinCostFlow(s, t int, amount float64) (cost float64, err error) {
	if s < 0 || s >= nw.n || t < 0 || t >= nw.n || s == t {
		return 0, fmt.Errorf("flow: bad endpoints %d,%d", s, t)
	}
	pot := make([]float64, nw.n)
	if err := nw.bellmanFord(s, pot); err != nil {
		return 0, err
	}
	dist := make([]float64, nw.n)
	prevArc := make([]int, nw.n)
	remaining := amount

	for remaining > 1e-12 {
		// Dijkstra on reduced costs.
		for i := range dist {
			dist[i] = math.Inf(1)
			prevArc[i] = -1
		}
		dist[s] = 0
		pq := &nodeHeap{{node: s, dist: 0}}
		for pq.Len() > 0 {
			it := heap.Pop(pq).(nodeItem)
			if it.dist > dist[it.node] {
				continue
			}
			for _, id := range nw.head[it.node] {
				a := nw.arcs[id]
				if a.cap <= 1e-12 {
					continue
				}
				nd := it.dist + a.cost + pot[it.node] - pot[a.to]
				if nd < dist[a.to]-1e-15 {
					dist[a.to] = nd
					prevArc[a.to] = id
					heap.Push(pq, nodeItem{node: a.to, dist: nd})
				}
			}
		}
		if math.IsInf(dist[t], 1) {
			return 0, errors.New("flow: insufficient capacity to route the requested amount")
		}
		// Bottleneck along the path.
		push := remaining
		for v := t; v != s; {
			id := prevArc[v]
			if nw.arcs[id].cap < push {
				push = nw.arcs[id].cap
			}
			v = nw.arcs[id^1].to
		}
		for v := t; v != s; {
			id := prevArc[v]
			nw.arcs[id].cap -= push
			nw.arcs[id^1].cap += push
			cost += push * nw.arcs[id].cost
			v = nw.arcs[id^1].to
		}
		for i := range pot {
			if !math.IsInf(dist[i], 1) {
				pot[i] += dist[i]
			}
		}
		remaining -= push
	}
	return cost, nil
}

// bellmanFord initializes potentials; detects negative cycles.
func (nw *Network) bellmanFord(s int, pot []float64) error {
	for i := range pot {
		pot[i] = math.Inf(1)
	}
	pot[s] = 0
	for iter := 0; iter < nw.n; iter++ {
		changed := false
		for from := 0; from < nw.n; from++ {
			if math.IsInf(pot[from], 1) {
				continue
			}
			for _, id := range nw.head[from] {
				a := nw.arcs[id]
				if a.cap <= 1e-12 {
					continue
				}
				if nd := pot[from] + a.cost; nd < pot[a.to]-1e-12 {
					pot[a.to] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		if iter == nw.n-1 {
			return errors.New("flow: negative cycle detected")
		}
	}
	// Unreached nodes get potential 0 (they are only entered later when
	// residual arcs open; reduced costs stay valid because Dijkstra
	// updates potentials each round).
	for i := range pot {
		if math.IsInf(pot[i], 1) {
			pot[i] = 0
		}
	}
	return nil
}

type nodeItem struct {
	node int
	dist float64
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Transportation solves the balanced transportation problem: supplies[i]
// units at source i, demands[j] units required at sink j (sums must
// match), cost[i][j] per unit shipped. Returns the shipment matrix and
// the total cost.
func Transportation(supplies, demands []float64, cost [][]float64) ([][]float64, float64, error) {
	ns, nd := len(supplies), len(demands)
	if ns == 0 || nd == 0 {
		return nil, 0, errors.New("flow: empty transportation problem")
	}
	if len(cost) != ns {
		return nil, 0, fmt.Errorf("flow: cost matrix has %d rows, want %d", len(cost), ns)
	}
	var supSum, demSum float64
	for _, s := range supplies {
		if s < 0 {
			return nil, 0, errors.New("flow: negative supply")
		}
		supSum += s
	}
	for _, d := range demands {
		if d < 0 {
			return nil, 0, errors.New("flow: negative demand")
		}
		demSum += d
	}
	if math.Abs(supSum-demSum) > 1e-6*(1+supSum) {
		return nil, 0, fmt.Errorf("flow: unbalanced problem (supply %v, demand %v)", supSum, demSum)
	}

	// Nodes: 0 = source, 1..ns = supplies, ns+1..ns+nd = demands, last = sink.
	n := ns + nd + 2
	src, sink := 0, n-1
	nw := NewNetwork(n)
	ids := make([][]int, ns)
	for i := 0; i < ns; i++ {
		if _, err := nw.AddArc(src, 1+i, supplies[i], 0); err != nil {
			return nil, 0, err
		}
		if len(cost[i]) != nd {
			return nil, 0, fmt.Errorf("flow: cost row %d has %d entries, want %d", i, len(cost[i]), nd)
		}
		ids[i] = make([]int, nd)
		for j := 0; j < nd; j++ {
			id, err := nw.AddArc(1+i, 1+ns+j, supplies[i], cost[i][j])
			if err != nil {
				return nil, 0, err
			}
			ids[i][j] = id
		}
	}
	for j := 0; j < nd; j++ {
		if _, err := nw.AddArc(1+ns+j, sink, demands[j], 0); err != nil {
			return nil, 0, err
		}
	}
	total, err := nw.MinCostFlow(src, sink, supSum)
	if err != nil {
		return nil, 0, err
	}
	ship := make([][]float64, ns)
	for i := range ship {
		ship[i] = make([]float64, nd)
		for j := range ship[i] {
			ship[i][j] = nw.Flow(ids[i][j])
		}
	}
	return ship, total, nil
}
