package flow

import (
	"math"
	"testing"
)

func TestMinCostFlowSimple(t *testing.T) {
	// Two parallel paths s->t: cheap capacity 1, expensive capacity 10.
	nw := NewNetwork(2)
	cheap, _ := nw.AddArc(0, 1, 1, 1)
	exp, _ := nw.AddArc(0, 1, 10, 5)
	cost, err := nw.MinCostFlow(0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 1*1+2*5 {
		t.Errorf("cost = %v, want 11", cost)
	}
	if nw.Flow(cheap) != 1 || nw.Flow(exp) != 2 {
		t.Errorf("flows = %v,%v", nw.Flow(cheap), nw.Flow(exp))
	}
}

func TestMinCostFlowChoosesCheaperPath(t *testing.T) {
	// s -> a -> t cost 2; s -> b -> t cost 3.
	nw := NewNetwork(4)
	_, _ = nw.AddArc(0, 1, 5, 1)
	_, _ = nw.AddArc(1, 3, 5, 1)
	_, _ = nw.AddArc(0, 2, 5, 1)
	_, _ = nw.AddArc(2, 3, 5, 2)
	cost, err := nw.MinCostFlow(0, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	// 5 units via a (cost 2), 2 units via b (cost 3).
	if cost != 5*2+2*3 {
		t.Errorf("cost = %v, want 16", cost)
	}
}

func TestMinCostFlowInsufficientCapacity(t *testing.T) {
	nw := NewNetwork(2)
	_, _ = nw.AddArc(0, 1, 1, 1)
	if _, err := nw.MinCostFlow(0, 1, 5); err == nil {
		t.Error("over-capacity request accepted")
	}
}

func TestMinCostFlowNegativeCosts(t *testing.T) {
	// Negative arc cost without a negative cycle must be handled by the
	// Bellman-Ford potential initialization.
	nw := NewNetwork(3)
	_, _ = nw.AddArc(0, 1, 2, -3)
	_, _ = nw.AddArc(1, 2, 2, 1)
	_, _ = nw.AddArc(0, 2, 2, 0)
	cost, err := nw.MinCostFlow(0, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 2 units via the negative path (-2 each), 1 direct (0).
	if cost != 2*(-2)+0 {
		t.Errorf("cost = %v, want -4", cost)
	}
}

func TestAddArcValidation(t *testing.T) {
	nw := NewNetwork(2)
	if _, err := nw.AddArc(0, 5, 1, 1); err == nil {
		t.Error("out-of-range arc accepted")
	}
	if _, err := nw.AddArc(0, 1, -1, 1); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := nw.MinCostFlow(0, 0, 1); err == nil {
		t.Error("s == t accepted")
	}
}

func TestTransportationSquare(t *testing.T) {
	// Classic 2x2: optimal is diagonal assignment.
	ship, cost, err := Transportation(
		[]float64{1, 1},
		[]float64{1, 1},
		[][]float64{{1, 10}, {10, 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 2 {
		t.Errorf("cost = %v, want 2", cost)
	}
	if ship[0][0] != 1 || ship[1][1] != 1 || ship[0][1] != 0 || ship[1][0] != 0 {
		t.Errorf("shipment = %v", ship)
	}
}

func TestTransportationRectangular(t *testing.T) {
	// 3 supplies, 2 demands.
	ship, cost, err := Transportation(
		[]float64{2, 3, 1},
		[]float64{4, 2},
		[][]float64{{1, 4}, {2, 1}, {3, 3}},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Verify feasibility: row sums == supplies, column sums == demands.
	for i, s := range []float64{2, 3, 1} {
		var sum float64
		for j := range ship[i] {
			sum += ship[i][j]
		}
		if math.Abs(sum-s) > 1e-9 {
			t.Errorf("row %d ships %v, want %v", i, sum, s)
		}
	}
	for j, d := range []float64{4, 2} {
		var sum float64
		for i := range ship {
			sum += ship[i][j]
		}
		if math.Abs(sum-d) > 1e-9 {
			t.Errorf("col %d receives %v, want %v", j, sum, d)
		}
	}
	// Optimal: supply1->d0 (2·1), supply2: 2 to d1 (2·1), 1 to d0 (1·2),
	// supply3: 1 to d0 (1·3) = 2+2+2+3 = 9.
	if math.Abs(cost-9) > 1e-9 {
		t.Errorf("cost = %v, want 9", cost)
	}
}

func TestTransportationValidation(t *testing.T) {
	if _, _, err := Transportation(nil, []float64{1}, nil); err == nil {
		t.Error("empty supplies accepted")
	}
	if _, _, err := Transportation([]float64{1}, []float64{2}, [][]float64{{1}}); err == nil {
		t.Error("unbalanced problem accepted")
	}
	if _, _, err := Transportation([]float64{-1}, []float64{-1}, [][]float64{{1}}); err == nil {
		t.Error("negative supply accepted")
	}
	if _, _, err := Transportation([]float64{1}, []float64{1}, [][]float64{{1, 2}}); err == nil {
		t.Error("ragged cost matrix accepted")
	}
}

func TestTransportationIntegrality(t *testing.T) {
	// Integral supplies/demands admit an integral optimum (network flow
	// integrality); the SSP solver should return one.
	ship, _, err := Transportation(
		[]float64{3, 3, 3},
		[]float64{3, 3, 3},
		[][]float64{{1, 2, 3}, {2, 1, 3}, {3, 2, 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ship {
		for j := range ship[i] {
			if math.Abs(ship[i][j]-math.Round(ship[i][j])) > 1e-9 {
				t.Fatalf("non-integral shipment %v at (%d,%d)", ship[i][j], i, j)
			}
		}
	}
}
