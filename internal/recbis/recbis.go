// Package recbis implements recursive spectral bisection from one
// shared eigendecomposition, in the style of NetworKit's spectral
// partitioner: the Laplacian spectrum is computed once for the whole
// graph, and each recursion level splits its subregion at a quantile of
// the next eigenvector, restricted to the subregion's vertices. This is
// the cheap cousin of internal/rsb (which re-eigensolves every induced
// sub-hypergraph): one solve, arbitrary K, and — run on the coarsest
// level of the multilevel engine — arbitrary n.
package recbis

import (
	"fmt"
	"sort"

	"repro/internal/eigen"
	"repro/internal/partition"
)

// Partition splits the decomposition's n vertices into k clusters by
// per-subregion recursion: a region responsible for k clusters is split
// into halves responsible for ⌊k/2⌋ and ⌈k/2⌉ clusters at the matching
// quantile of eigenvector (depth+1), ordered within the region. The
// eigenvector index is clamped to the decomposition, so deep recursions
// reuse the last available vector. Every cluster receives at least one
// vertex; ties order by vertex index, and each eigenvector's global sign
// is canonicalized, so the result is deterministic.
func Partition(dec *eigen.Decomposition, k int) (*partition.Partition, error) {
	if dec == nil || dec.D() == 0 {
		return nil, fmt.Errorf("recbis: empty decomposition")
	}
	n := dec.Vectors.Rows
	if k < 1 {
		return nil, fmt.Errorf("recbis: k = %d, want >= 1", k)
	}
	if k > n {
		return nil, fmt.Errorf("recbis: k = %d exceeds %d vertices", k, n)
	}
	assign := make([]int, n)
	if k == 1 {
		return partition.New(assign, 1)
	}
	if dec.D() < 2 {
		return nil, fmt.Errorf("recbis: need >= 2 eigenpairs for k = %d, have %d", k, dec.D())
	}
	// Extract and sign-canonicalize the non-trivial eigenvectors once.
	vecs := make([][]float64, dec.D())
	for j := 1; j < dec.D(); j++ {
		v := dec.Vector(j)
		canonSign(v)
		vecs[j] = v
	}
	region := make([]int, n)
	for i := range region {
		region[i] = i
	}
	var rec func(vs []int, k, base, depth int)
	rec = func(vs []int, k, base, depth int) {
		if k == 1 {
			for _, v := range vs {
				assign[v] = base
			}
			return
		}
		j := 1 + depth
		if j > dec.D()-1 {
			j = dec.D() - 1
		}
		vec := vecs[j]
		sort.Slice(vs, func(a, b int) bool {
			va, vb := vec[vs[a]], vec[vs[b]]
			if va != vb {
				return va < vb
			}
			return vs[a] < vs[b]
		})
		k1 := k / 2
		k2 := k - k1
		m := (len(vs)*k1 + k/2) / k
		if m < k1 {
			m = k1
		}
		if m > len(vs)-k2 {
			m = len(vs) - k2
		}
		rec(vs[:m], k1, base, depth+1)
		rec(vs[m:], k2, base+k1, depth+1)
	}
	rec(region, k, 0, 0)
	return partition.New(assign, k)
}

// canonSign flips v in place so its first entry of magnitude > 1e-12 is
// positive, resolving the ±v ambiguity of a unit eigenvector.
func canonSign(v []float64) {
	for _, x := range v {
		if x > 1e-12 {
			return
		}
		if x < -1e-12 {
			for i := range v {
				v[i] = -v[i]
			}
			return
		}
	}
}
