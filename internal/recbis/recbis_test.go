package recbis

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/partest"
)

func TestPartitionCoversAllK(t *testing.T) {
	h := partest.RandomNetlist(30, 40, 4, 1)
	g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := partest.FullDecomposition(g)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 9; k++ {
		p, err := Partition(dec, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if p.K != k || p.N() != 30 {
			t.Fatalf("k=%d: got K=%d N=%d", k, p.K, p.N())
		}
		for c, s := range p.Sizes() {
			if s == 0 {
				t.Fatalf("k=%d: cluster %d empty", k, c)
			}
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	h := partest.RandomNetlist(40, 60, 5, 7)
	g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := partest.FullDecomposition(g)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Partition(dec, 4)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		p, err := Partition(dec, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first.Assign, p.Assign) {
			t.Fatalf("run %d differs", run)
		}
	}
}

func TestPartitionSignInvariant(t *testing.T) {
	// Flipping an eigenvector's sign must not change the partition:
	// canonSign resolves the ±v ambiguity.
	h := partest.RandomNetlist(25, 30, 4, 3)
	g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := partest.FullDecomposition(g)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Partition(dec, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < dec.Vectors.Rows; i++ {
		dec.Vectors.Set(i, 1, -dec.Vectors.At(i, 1))
	}
	flipped, err := Partition(dec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Assign, flipped.Assign) {
		t.Fatal("partition changed under an eigenvector sign flip")
	}
}

func TestPartitionKEqualsN(t *testing.T) {
	h := partest.RandomNetlist(8, 6, 3, 2)
	g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := partest.FullDecomposition(g)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Partition(dec, 8)
	if err != nil {
		t.Fatal(err)
	}
	for c, s := range p.Sizes() {
		if s != 1 {
			t.Fatalf("cluster %d has %d vertices, want 1", c, s)
		}
	}
}

func TestPartitionValidation(t *testing.T) {
	h := partest.RandomNetlist(6, 4, 3, 2)
	g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := partest.FullDecomposition(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Partition(dec, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Partition(dec, 7); err == nil {
		t.Fatal("k > n accepted")
	}
	if _, err := Partition(nil, 2); err == nil {
		t.Fatal("nil decomposition accepted")
	}
}
