package shard

import (
	"fmt"
	"sort"
	"testing"
)

func fingerprints(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("sha256:%064x", i)
	}
	return keys
}

func mustRing(t *testing.T, self string, peers []string) *Ring {
	t.Helper()
	r, err := New(self, peers)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", []string{"a"}); err == nil {
		t.Error("empty self accepted")
	}
	if _, err := New("a", []string{"b", ""}); err == nil {
		t.Error("empty peer accepted")
	}
	r := mustRing(t, "b", []string{"c", "a", "b", "c"})
	if r.N() != 3 {
		t.Errorf("N = %d after dedup, want 3", r.N())
	}
	peers := r.Peers()
	if !sort.StringsAreSorted(peers) {
		t.Errorf("peers not sorted: %v", peers)
	}
	if r.Self() != "b" {
		t.Errorf("self = %q", r.Self())
	}
}

// Every instance must compute the identical placement from the same
// membership, regardless of which instance it is or how the peer list
// was spelled on its command line.
func TestOwnerDeterministicAcrossInstances(t *testing.T) {
	views := []*Ring{
		mustRing(t, "http://a:9", []string{"http://b:9", "http://c:9"}),
		mustRing(t, "http://b:9", []string{"http://c:9", "http://a:9"}),
		mustRing(t, "http://c:9", []string{"http://a:9", "http://b:9"}),
	}
	for _, key := range fingerprints(1000) {
		owner := views[0].Owner(key)
		for i, v := range views[1:] {
			if got := v.Owner(key); got != owner {
				t.Fatalf("key %s: view %d says owner %s, view 0 says %s", key, i+1, got, owner)
			}
		}
		// Exactly one view claims the key as local.
		locals := 0
		for _, v := range views {
			if v.IsLocal(key) {
				locals++
			}
		}
		if locals != 1 {
			t.Fatalf("key %s claimed local by %d views, want 1", key, locals)
		}
	}
}

// Rendezvous hashing over sha256 must spread keys near-uniformly: over
// 10^4 fingerprints and 5 peers, no peer's load strays far from the
// mean.
func TestPlacementBalance(t *testing.T) {
	peers := []string{"http://n1:9", "http://n2:9", "http://n3:9", "http://n4:9", "http://n5:9"}
	r := mustRing(t, peers[0], peers[1:])
	load := map[string]int{}
	keys := fingerprints(10000)
	for _, key := range keys {
		load[r.Owner(key)]++
	}
	if len(load) != len(peers) {
		t.Fatalf("only %d of %d peers own keys: %v", len(load), len(peers), load)
	}
	min, max := len(keys), 0
	for _, n := range load {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if ratio := float64(max) / float64(min); ratio > 1.3 {
		t.Errorf("load imbalance max/min = %.2f (%v), want <= 1.3", ratio, load)
	}
}

// The rendezvous stability property: dropping one peer remaps only the
// keys that peer owned. Keys owned by a survivor keep their owner —
// nothing shuffles between survivors.
func TestPeerRemovalRemapsOnlyItsKeys(t *testing.T) {
	peers := []string{"http://n1:9", "http://n2:9", "http://n3:9", "http://n4:9", "http://n5:9"}
	full := mustRing(t, peers[0], peers[1:])
	removed := peers[2]
	survivors := []string{peers[0], peers[1], peers[3], peers[4]}
	shrunk := mustRing(t, survivors[0], survivors[1:])

	keys := fingerprints(10000)
	remapped := 0
	for _, key := range keys {
		before := full.Owner(key)
		after := shrunk.Owner(key)
		if before == removed {
			remapped++
			if after == removed {
				t.Fatalf("key %s still owned by removed peer", key)
			}
			continue
		}
		if after != before {
			t.Fatalf("key %s owned by survivor %s moved to %s on unrelated removal", key, before, after)
		}
	}
	// The removed peer held ~1/5 of the keys; all of them (and only
	// them) remapped.
	frac := float64(remapped) / float64(len(keys))
	if frac < 0.1 || frac > 0.3 {
		t.Errorf("removal remapped %.1f%% of keys, want ~20%%", 100*frac)
	}
}

// A single-instance ring owns everything locally — the degenerate
// configuration every non-sharded daemon runs in.
func TestSingleInstanceOwnsAll(t *testing.T) {
	r := mustRing(t, "http://solo:9", nil)
	for _, key := range fingerprints(100) {
		if !r.IsLocal(key) {
			t.Fatalf("key %s not local on a single-instance ring", key)
		}
	}
}
