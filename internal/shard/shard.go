// Package shard routes netlist fingerprints to spectrald instances via
// rendezvous (highest-random-weight) hashing: every instance scores
// each (peer, key) pair independently and the peer with the top score
// owns the key. The placement is deterministic from the peer list
// alone — no coordinator, no rebalancing protocol — and removing one
// peer remaps only the keys that peer owned, never shuffling keys
// between survivors.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Ring is an immutable rendezvous-hashing view of a static peer list.
// Safe for concurrent use.
type Ring struct {
	self  string
	peers []string // deduped, sorted; includes self
}

// New builds a ring over the given peers plus self. Peer identity is
// the exact string (for spectrald, the peer's base URL): "a" and "a/"
// are different peers, so configure every instance with identical
// spellings.
func New(self string, peers []string) (*Ring, error) {
	if self == "" {
		return nil, fmt.Errorf("shard: empty self identity")
	}
	seen := map[string]bool{self: true}
	all := []string{self}
	for _, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("shard: empty peer identity")
		}
		if !seen[p] {
			seen[p] = true
			all = append(all, p)
		}
	}
	sort.Strings(all)
	return &Ring{self: self, peers: all}, nil
}

// score is the rendezvous weight of key on peer: the first 8 bytes of
// sha256(peer || NUL || key). The NUL separator keeps ("ab","c") and
// ("a","bc") from colliding.
func score(peer, key string) uint64 {
	h := sha256.New()
	h.Write([]byte(peer))
	h.Write([]byte{0})
	h.Write([]byte(key))
	var sum [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(sum[:0])[:8])
}

// Owner returns the peer owning key: the argmax of score over the peer
// list, ties broken by peer string order (deterministic across
// instances because the list is sorted).
func (r *Ring) Owner(key string) string {
	best := r.peers[0]
	bestScore := score(best, key)
	for _, p := range r.peers[1:] {
		if s := score(p, key); s > bestScore || (s == bestScore && p > best) {
			best, bestScore = p, s
		}
	}
	return best
}

// IsLocal reports whether this instance owns key.
func (r *Ring) IsLocal(key string) bool { return r.Owner(key) == r.self }

// Self returns this instance's identity.
func (r *Ring) Self() string { return r.self }

// Peers returns the full membership (self included), sorted.
func (r *Ring) Peers() []string { return append([]string(nil), r.peers...) }

// N returns the membership size.
func (r *Ring) N() int { return len(r.peers) }

// String renders the ring for logs: "self=X peers=[a b c]".
func (r *Ring) String() string {
	return fmt.Sprintf("self=%s peers=[%s]", r.self, strings.Join(r.peers, " "))
}
