package hypergraph

import (
	"bytes"
	"strings"
	"testing"
)

func TestAreasDefaultToUnit(t *testing.T) {
	h := tiny(t)
	if h.HasAreas() {
		t.Fatal("fresh hypergraph should not have explicit areas")
	}
	if h.Area(0) != 1 || h.TotalArea() != 5 {
		t.Errorf("unit areas wrong: %v / %v", h.Area(0), h.TotalArea())
	}
	if h.AreaOf([]int{0, 2}) != 2 {
		t.Errorf("AreaOf = %v", h.AreaOf([]int{0, 2}))
	}
}

func TestSetAreas(t *testing.T) {
	h := tiny(t)
	areas := []float64{1, 2, 3, 4, 5}
	if err := h.SetAreas(areas); err != nil {
		t.Fatal(err)
	}
	areas[0] = 99 // must have been copied
	if h.Area(0) != 1 || h.Area(4) != 5 || h.TotalArea() != 15 {
		t.Errorf("areas wrong after SetAreas")
	}
	if err := h.SetAreas([]float64{1}); err == nil {
		t.Error("wrong-length areas accepted")
	}
	if err := h.SetAreas([]float64{1, 2, 3, 4, 0}); err == nil {
		t.Error("zero area accepted")
	}
	if err := h.SetAreas([]float64{1, 2, 3, 4, -1}); err == nil {
		t.Error("negative area accepted")
	}
}

func TestInduceCarriesAreas(t *testing.T) {
	h := tiny(t)
	if err := h.SetAreas([]float64{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	sub, _ := h.Induce([]int{2, 4})
	if !sub.HasAreas() {
		t.Fatal("induced hypergraph lost areas")
	}
	if sub.Area(0) != 3 || sub.Area(1) != 5 {
		t.Errorf("induced areas %v / %v", sub.Area(0), sub.Area(1))
	}
}

func TestAreasRoundTripThroughIO(t *testing.T) {
	h := tiny(t)
	if err := h.SetAreas([]float64{1, 2.5, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, "areas", h); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "module b 2.5") {
		t.Fatalf("serialized form missing area:\n%s", buf.String())
	}
	_, h2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !h2.HasAreas() || h2.Area(1) != 2.5 || h2.TotalArea() != 15.5 {
		t.Errorf("areas lost in round trip: %v", h2.TotalArea())
	}
}

func TestReadRejectsBadArea(t *testing.T) {
	for _, src := range []string{
		"module a zero\nnet n a b\n",
		"module a 0\nnet n a b\n",
		"module a -2\nnet n a b\n",
		"module a 1 2\n",
	} {
		if _, _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("input %q accepted", src)
		}
	}
}

func TestReadPartialAreasDefaultRestToUnit(t *testing.T) {
	src := "module a 3\nnet n a b c\n"
	_, h, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if h.Area(0) != 3 || h.Area(1) != 1 || h.Area(2) != 1 {
		t.Errorf("areas = %v %v %v", h.Area(0), h.Area(1), h.Area(2))
	}
}
