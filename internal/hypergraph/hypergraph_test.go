package hypergraph

import (
	"bytes"
	"strings"
	"testing"
)

// tiny returns a 5-module, 3-net example used across the tests:
// n0 = {a,b,c}, n1 = {c,d}, n2 = {d,e}.
func tiny(t *testing.T) *Hypergraph {
	t.Helper()
	b := NewBuilder()
	a := b.AddModule("a")
	bb := b.AddModule("b")
	c := b.AddModule("c")
	d := b.AddModule("d")
	e := b.AddModule("e")
	for _, net := range []struct {
		name string
		mods []int
	}{
		{"n0", []int{a, bb, c}},
		{"n1", []int{c, d}},
		{"n2", []int{d, e}},
	} {
		if err := b.AddNet(net.name, net.mods...); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestBuilderAndStats(t *testing.T) {
	h := tiny(t)
	s := h.Stats()
	if s.Modules != 5 || s.Nets != 3 || s.Pins != 7 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxNetSize != 3 {
		t.Errorf("MaxNetSize = %d, want 3", s.MaxNetSize)
	}
	if got := s.AvgNetSize; got < 2.33 || got > 2.34 {
		t.Errorf("AvgNetSize = %v", got)
	}
	if h.Degree(2) != 2 { // module c on n0 and n1
		t.Errorf("Degree(c) = %d, want 2", h.Degree(2))
	}
	if err := h.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderDeduplicatesModulesAndNets(t *testing.T) {
	b := NewBuilder()
	i1 := b.AddModule("x")
	i2 := b.AddModule("x")
	if i1 != i2 {
		t.Fatal("re-adding a module must return the same index")
	}
	b.AddModule("y")
	if err := b.AddNet("n", i1, i1, 1); err != nil {
		t.Fatal(err)
	}
	h := b.Build()
	if len(h.Nets[0]) != 2 {
		t.Fatalf("net should collapse duplicates: %v", h.Nets[0])
	}
}

func TestAddNetRejectsInvalid(t *testing.T) {
	b := NewBuilder()
	b.AddModule("a")
	if err := b.AddNet("bad", 0); err == nil {
		t.Error("single-module net accepted")
	}
	if err := b.AddNet("bad", 0, 7); err == nil {
		t.Error("out-of-range module accepted")
	}
	if err := b.AddNet("bad", 0, 0); err == nil {
		t.Error("net of duplicate single module accepted")
	}
}

func TestAddModules(t *testing.T) {
	b := NewBuilder()
	first := b.AddModules(3)
	if first != 0 || len(b.Build().Names) != 3 {
		t.Fatal("AddModules wrong")
	}
}

func TestConnectivity(t *testing.T) {
	h := tiny(t)
	if !h.IsConnected() {
		t.Error("tiny hypergraph should be connected")
	}
	// Two disjoint nets.
	b := NewBuilder()
	b.AddModules(4)
	_ = b.AddNet("", 0, 1)
	_ = b.AddNet("", 2, 3)
	h2 := b.Build()
	if h2.IsConnected() {
		t.Error("disconnected hypergraph reported connected")
	}
	comps := h2.Components()
	if len(comps) != 2 || len(comps[0]) != 2 || comps[0][0] != 0 || comps[1][0] != 2 {
		t.Errorf("Components = %v", comps)
	}
}

func TestInduce(t *testing.T) {
	h := tiny(t)
	// Induce on {a,b,c,d}: n0 survives fully, n1 survives, n2 drops to one
	// module and is removed.
	sub, back := h.Induce([]int{0, 1, 2, 3})
	if sub.NumModules() != 4 || sub.NumNets() != 2 {
		t.Fatalf("induced: %d modules %d nets", sub.NumModules(), sub.NumNets())
	}
	if back[3] != 3 || sub.Names[0] != "a" {
		t.Error("back-mapping wrong")
	}
	// Induce on {c,d,e} with non-identity mapping.
	sub2, back2 := h.Induce([]int{2, 3, 4})
	if sub2.NumNets() != 2 { // n1 {c,d} and n2 {d,e}; n0 drops to {c} alone
		t.Fatalf("induced 2: %d nets, want 2", sub2.NumNets())
	}
	if back2[0] != 2 || back2[2] != 4 {
		t.Error("back-mapping 2 wrong")
	}
	if err := sub2.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	h := tiny(t)
	h.Nets[0] = []int{3, 1} // unsorted
	if err := h.Validate(); err == nil {
		t.Error("unsorted net not caught")
	}
	h.Nets[0] = []int{1, 99}
	if err := h.Validate(); err == nil {
		t.Error("out-of-range module not caught")
	}
	h.Nets[0] = []int{1}
	if err := h.Validate(); err == nil {
		t.Error("degenerate net not caught")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	h := tiny(t)
	var buf bytes.Buffer
	if err := Write(&buf, "tiny", h); err != nil {
		t.Fatal(err)
	}
	name, h2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "tiny" {
		t.Errorf("name = %q", name)
	}
	if h2.NumModules() != h.NumModules() || h2.NumNets() != h.NumNets() || h2.NumPins() != h.NumPins() {
		t.Fatalf("round trip changed shape: %+v vs %+v", h2.Stats(), h.Stats())
	}
	for e := range h.Nets {
		if len(h.Nets[e]) != len(h2.Nets[e]) {
			t.Fatalf("net %d size changed", e)
		}
	}
}

func TestReadImplicitModules(t *testing.T) {
	src := "# compact form\nnet n0 a b c\nnet n1 c d\n"
	_, h, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumModules() != 4 || h.NumNets() != 2 {
		t.Fatalf("stats = %+v", h.Stats())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"bogus directive\n",
		"net onlyname\n",
		"net n a\n", // fewer than 2 modules
		"module\n",
		"netlist a b\n",
	}
	for _, src := range cases {
		if _, _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("input %q: expected parse error", src)
		}
	}
}
