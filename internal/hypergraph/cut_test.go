package hypergraph

import (
	"strings"
	"testing"
)

func TestCutSize(t *testing.T) {
	h := tiny(t) // n0={a,b,c} n1={c,d} n2={d,e}
	cases := []struct {
		name   string
		assign []int
		want   int
	}{
		{"all together", []int{0, 0, 0, 0, 0}, 0},
		{"split after c", []int{0, 0, 0, 1, 1}, 1},
		{"split inside n0", []int{0, 1, 0, 0, 0}, 1},
		{"alternating", []int{0, 1, 0, 1, 0}, 3},
		{"three way", []int{0, 0, 1, 1, 2}, 2},
	}
	for _, tc := range cases {
		got, err := h.CutSize(tc.assign)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			t.Errorf("%s: CutSize = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestCutSizeLengthMismatch(t *testing.T) {
	h := tiny(t)
	if _, err := h.CutSize([]int{0, 1}); err == nil {
		t.Fatal("short assignment accepted")
	}
	if _, err := h.CutSize(make([]int, 6)); err == nil {
		t.Fatal("long assignment accepted")
	}
}

// Duplicate pins in a net must not inflate the count: a net is cut once
// no matter how many of its pins straddle the boundary.
func TestCutSizeDuplicatePins(t *testing.T) {
	h, err := ReadHMetis(strings.NewReader("2 4\n1 2 2 3\n3 3 4 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.CutSize([]int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("CutSize = %d, want 2", got)
	}
	got, err = h.CutSize([]int{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("CutSize on uncut netlist = %d, want 0", got)
	}
}
