package hypergraph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead exercises the text-format parser: it must never panic, and
// anything it accepts must round-trip to an equivalent netlist.
func FuzzRead(f *testing.F) {
	f.Add("netlist x\nmodule a\nnet n a b\n")
	f.Add("net n m0 m1 m2\nnet q m2 m3\n")
	f.Add("# comment\nmodule a 2.5\nnet n a b\n")
	f.Add("")
	f.Add("bogus\n")
	f.Add("net n a\n")
	f.Add("module a -1\nnet n a b\n")
	f.Add("module a NaN\nnet n a b\n")
	f.Add("module a Inf\nnet n a b\n")
	f.Add("net n a a a\n")
	f.Add("netlist\n")
	f.Add("net n a b\nnet n a b\n")
	f.Fuzz(func(t *testing.T, src string) {
		name, h, err := Read(strings.NewReader(src))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("accepted netlist fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, name, h); err != nil {
			t.Fatalf("write: %v", err)
		}
		name2, h2, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if name2 != name || h2.NumModules() != h.NumModules() ||
			h2.NumNets() != h.NumNets() || h2.NumPins() != h.NumPins() {
			t.Fatalf("round trip changed the netlist: %+v vs %+v", h2.Stats(), h.Stats())
		}
	})
}

// FuzzReadHMetis exercises the hMETIS parser the same way.
func FuzzReadHMetis(f *testing.F) {
	f.Add("2 3\n1 2\n2 3\n")
	f.Add("1 2 1\n5 1 2\n")
	f.Add("1 2 10\n1 2\n3\n4\n")
	f.Add("1 2 11\n2 1 2\n1\n1\n")
	f.Add("% only a comment\n")
	f.Add("x y\n")
	// Malformed headers.
	f.Add("1\n")
	f.Add("1 2 3 4\n")
	f.Add("-1 5\n")
	f.Add("999999999 999999999\n")
	f.Add("0 999999999\n")
	f.Add("2 3 7\n1 2\n2 3\n")
	// Truncated net sections and module-weight sections.
	f.Add("3 3\n1 2\n")
	f.Add("1 2 10\n1 2\n")
	f.Add("1 2 11\n2 1 2\n1\n")
	// Duplicate and degenerate pins.
	f.Add("1 3\n2 2 2\n")
	f.Add("1 3\n1 1\n")
	f.Add("2 3\n1 2 2 3\n3 3 1\n")
	// Hostile weights.
	f.Add("1 2 1\nNaN 1 2\n")
	f.Add("1 2 1\n-1 1 2\n")
	f.Add("1 2 1\n0 1 2\n")
	f.Add("1 2 10\n1 2\nNaN\n2\n")
	f.Add("1 2 10\n1 2\n+Inf\n2\n")
	f.Add("1 2 10\n1 2\n0\n2\n")
	f.Fuzz(func(t *testing.T, src string) {
		h, err := ReadHMetis(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("accepted netlist fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteHMetis(&buf, h); err != nil {
			t.Fatalf("write: %v", err)
		}
		h2, err := ReadHMetis(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if h2.NumNets() != h.NumNets() || h2.NumPins() != h.NumPins() {
			t.Fatalf("round trip changed the netlist")
		}
	})
}
