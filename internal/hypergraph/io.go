package hypergraph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// The text interchange format is line oriented:
//
//	# comment (anywhere)
//	netlist <name>            (optional header)
//	module <name> [area]      (one per module; optional if nets name them)
//	net <name> <m1> <m2> ...  (module names; >= 2 distinct)
//
// Modules referenced by a net line that were not declared with a module
// line are created on first use, so compact files can consist solely of
// net lines. The optional area is a positive float (default 1).

// Write serializes the hypergraph to w in the text interchange format.
func Write(w io.Writer, name string, h *Hypergraph) error {
	bw := bufio.NewWriter(w)
	if name != "" {
		fmt.Fprintf(bw, "netlist %s\n", name)
	}
	for i, m := range h.Names {
		if h.HasAreas() {
			fmt.Fprintf(bw, "module %s %g\n", m, h.Area(i))
		} else {
			fmt.Fprintf(bw, "module %s\n", m)
		}
	}
	for e, net := range h.Nets {
		fmt.Fprintf(bw, "net %s", h.NetNames[e])
		for _, m := range net {
			fmt.Fprintf(bw, " %s", h.Names[m])
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Read parses a hypergraph in the text interchange format. It returns the
// netlist name from the header (or "" if absent) and the hypergraph.
func Read(r io.Reader) (string, *Hypergraph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	b := NewBuilder()
	areas := map[int]float64{}
	var name string
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "netlist":
			if len(fields) != 2 {
				return "", nil, fmt.Errorf("hypergraph: line %d: netlist header wants one name", lineNo)
			}
			name = fields[1]
		case "module":
			if len(fields) != 2 && len(fields) != 3 {
				return "", nil, fmt.Errorf("hypergraph: line %d: module line wants a name and optional area", lineNo)
			}
			idx := b.AddModule(fields[1])
			if len(fields) == 3 {
				a, err := strconv.ParseFloat(fields[2], 64)
				if err != nil || math.IsNaN(a) || math.IsInf(a, 0) || a <= 0 {
					return "", nil, fmt.Errorf("hypergraph: line %d: bad area %q, want finite > 0", lineNo, fields[2])
				}
				areas[idx] = a
			}
		case "net":
			if len(fields) < 4 {
				return "", nil, fmt.Errorf("hypergraph: line %d: net needs a name and >= 2 modules", lineNo)
			}
			mods := make([]int, 0, len(fields)-2)
			for _, mn := range fields[2:] {
				mods = append(mods, b.AddModule(mn))
			}
			if err := b.AddNet(fields[1], mods...); err != nil {
				return "", nil, fmt.Errorf("hypergraph: line %d: %v", lineNo, err)
			}
		default:
			return "", nil, fmt.Errorf("hypergraph: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return "", nil, fmt.Errorf("hypergraph: read: %v", err)
	}
	h := b.Build()
	if len(areas) > 0 {
		full := make([]float64, h.NumModules())
		for i := range full {
			full[i] = 1
		}
		for idx, a := range areas {
			full[idx] = a
		}
		if err := h.SetAreas(full); err != nil {
			return "", nil, err
		}
	}
	return name, h, nil
}
