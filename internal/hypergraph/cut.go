package hypergraph

import "fmt"

// CutSize returns the number of nets that span more than one cluster
// under the given assignment (assign[i] is module i's cluster).
//
// This is the ground-truth cut recomputation used by the differential
// oracle (internal/oracle): it is implemented independently of
// partition.NetCut — a net is cut iff the minimum and maximum cluster id
// over its pins differ — so bookkeeping drift in any algorithm's
// incremental cut maintenance shows up as a mismatch against this value.
func (h *Hypergraph) CutSize(assign []int) (int, error) {
	if len(assign) != h.NumModules() {
		return 0, fmt.Errorf("hypergraph: assignment covers %d modules, netlist has %d", len(assign), h.NumModules())
	}
	cut := 0
	for _, net := range h.Nets {
		lo, hi := assign[net[0]], assign[net[0]]
		for _, m := range net[1:] {
			c := assign[m]
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if lo != hi {
			cut++
		}
	}
	return cut, nil
}
