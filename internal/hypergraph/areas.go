package hypergraph

import (
	"fmt"
	"math"
)

// Module areas support the paper's weighted-vertex extension: "when the
// weight of vertex v_i is extended to be the weight of y_i, the vector
// partitioning constraints are simply L_h ≤ w(S_h) ≤ W_h". Areas default
// to 1 (unit-area modules) when never set.

// SetAreas assigns an area to every module. The slice is copied.
func (h *Hypergraph) SetAreas(areas []float64) error {
	if len(areas) != h.NumModules() {
		return fmt.Errorf("hypergraph: %d areas for %d modules", len(areas), h.NumModules())
	}
	for i, a := range areas {
		if math.IsNaN(a) || math.IsInf(a, 0) || a <= 0 {
			return fmt.Errorf("hypergraph: module %d area %v, want finite > 0", i, a)
		}
	}
	h.areas = make([]float64, len(areas))
	copy(h.areas, areas)
	// Areas are part of the canonical content hash; drop any memoized
	// fingerprint computed before this mutation.
	h.canonHash.Store(nil)
	return nil
}

// Area returns module i's area (1 if areas were never set).
func (h *Hypergraph) Area(i int) float64 {
	if h.areas == nil {
		return 1
	}
	return h.areas[i]
}

// TotalArea returns the sum of all module areas.
func (h *Hypergraph) TotalArea() float64 {
	if h.areas == nil {
		return float64(h.NumModules())
	}
	var t float64
	for _, a := range h.areas {
		t += a
	}
	return t
}

// AreaOf returns the total area of a module subset.
func (h *Hypergraph) AreaOf(modules []int) float64 {
	var t float64
	for _, m := range modules {
		t += h.Area(m)
	}
	return t
}

// HasAreas reports whether explicit areas were assigned.
func (h *Hypergraph) HasAreas() bool { return h.areas != nil }
