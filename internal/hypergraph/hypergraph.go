// Package hypergraph models VLSI netlists as hypergraphs: a set of
// modules (cells) and a set of nets (hyperedges), each net connecting two
// or more modules through pins.
//
// The package provides construction, statistics, connectivity queries,
// sub-hypergraph extraction for recursive partitioning, and a simple text
// interchange format.
package hypergraph

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Hypergraph is an immutable netlist. Build one with a Builder or a
// constructor; do not mutate the exported slices.
type Hypergraph struct {
	// Names holds one name per module. Module indices are 0-based.
	Names []string
	// Nets holds, for each net, the sorted list of distinct module
	// indices it connects. Every net has at least two modules.
	Nets [][]int
	// NetNames holds one name per net (parallel to Nets).
	NetNames []string

	// pins[i] lists the nets incident to module i (sorted).
	pins [][]int
	// areas holds per-module areas; nil means unit areas (see areas.go).
	areas []float64

	// canonHash memoizes the canonical content fingerprint (computed by
	// internal/speccache.Fingerprint). A Hypergraph is immutable after
	// construction, so the O(pins) canonicalization need run only once
	// per netlist no matter how many jobs are submitted against it. nil
	// means "not yet computed".
	canonHash atomic.Pointer[string]
}

// CanonicalHash returns the memoized content fingerprint, or "" if none
// has been recorded yet.
func (h *Hypergraph) CanonicalHash() string {
	if p := h.canonHash.Load(); p != nil {
		return *p
	}
	return ""
}

// SetCanonicalHash records the content fingerprint for reuse. The first
// recorded value wins; later calls are no-ops, so concurrent recorders
// cannot flap the memo.
func (h *Hypergraph) SetCanonicalHash(hash string) {
	if hash == "" {
		return
	}
	h.canonHash.CompareAndSwap(nil, &hash)
}

// NumModules returns the number of modules.
func (h *Hypergraph) NumModules() int { return len(h.Names) }

// NumNets returns the number of nets.
func (h *Hypergraph) NumNets() int { return len(h.Nets) }

// NumPins returns the total number of pins (module-net incidences).
func (h *Hypergraph) NumPins() int {
	p := 0
	for _, net := range h.Nets {
		p += len(net)
	}
	return p
}

// Degree returns the number of nets incident to module i.
func (h *Hypergraph) Degree(i int) int { return len(h.pins[i]) }

// NetsOf returns the nets incident to module i. The returned slice must
// not be modified.
func (h *Hypergraph) NetsOf(i int) []int { return h.pins[i] }

// MaxNetSize returns the number of modules on the largest net (0 for an
// empty hypergraph).
func (h *Hypergraph) MaxNetSize() int {
	m := 0
	for _, net := range h.Nets {
		if len(net) > m {
			m = len(net)
		}
	}
	return m
}

// Stats summarizes a netlist for reporting (the paper's Table 1 columns).
type Stats struct {
	Modules, Nets, Pins int
	AvgNetSize          float64
	MaxNetSize          int
}

// Stats returns the summary statistics of the hypergraph.
func (h *Hypergraph) Stats() Stats {
	s := Stats{Modules: h.NumModules(), Nets: h.NumNets(), Pins: h.NumPins(), MaxNetSize: h.MaxNetSize()}
	if s.Nets > 0 {
		s.AvgNetSize = float64(s.Pins) / float64(s.Nets)
	}
	return s
}

// Builder incrementally constructs a hypergraph.
type Builder struct {
	names    []string
	index    map[string]int
	nets     [][]int
	netNames []string
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{index: make(map[string]int)}
}

// AddModule registers a module by name and returns its index. Re-adding an
// existing name returns the existing index.
func (b *Builder) AddModule(name string) int {
	if i, ok := b.index[name]; ok {
		return i
	}
	i := len(b.names)
	b.names = append(b.names, name)
	b.index[name] = i
	return i
}

// AddModules registers n anonymous modules named "m0" … and returns the
// index of the first.
func (b *Builder) AddModules(n int) int {
	first := len(b.names)
	for i := 0; i < n; i++ {
		b.AddModule(fmt.Sprintf("m%d", first+i))
	}
	return first
}

// AddNet adds a net connecting the given module indices. Duplicate module
// indices within a net are collapsed; nets with fewer than two distinct
// modules are rejected.
func (b *Builder) AddNet(name string, modules ...int) error {
	set := make(map[int]bool, len(modules))
	for _, m := range modules {
		if m < 0 || m >= len(b.names) {
			return fmt.Errorf("hypergraph: net %q references unknown module %d", name, m)
		}
		set[m] = true
	}
	if len(set) < 2 {
		return fmt.Errorf("hypergraph: net %q connects fewer than 2 distinct modules", name)
	}
	net := make([]int, 0, len(set))
	for m := range set {
		net = append(net, m)
	}
	sort.Ints(net)
	b.nets = append(b.nets, net)
	if name == "" {
		name = fmt.Sprintf("n%d", len(b.nets)-1)
	}
	b.netNames = append(b.netNames, name)
	return nil
}

// Build finalizes the hypergraph.
func (b *Builder) Build() *Hypergraph {
	h := &Hypergraph{Names: b.names, Nets: b.nets, NetNames: b.netNames}
	h.buildPins()
	return h
}

// FromParts builds a hypergraph directly from ready-made components,
// skipping the Builder's name indexing and per-net deduplication. Every
// net must already satisfy Validate's invariants (sorted, duplicate-free,
// in range, >= 2 modules); the slices are retained, not copied. It exists
// for bulk construction on hot paths (multilevel contraction builds one
// netlist per V-cycle level).
func FromParts(names []string, nets [][]int, netNames []string) (*Hypergraph, error) {
	h := &Hypergraph{Names: names, Nets: nets, NetNames: netNames}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	h.buildPins()
	return h, nil
}

func (h *Hypergraph) buildPins() {
	n := len(h.Names)
	counts := make([]int, n)
	total := 0
	for _, net := range h.Nets {
		total += len(net)
		for _, m := range net {
			counts[m]++
		}
	}
	// One backing array for every incidence list; appending nets in
	// index order leaves each list sorted, as NetsOf documents.
	flat := make([]int, total)
	h.pins = make([][]int, n)
	off := 0
	for m := 0; m < n; m++ {
		h.pins[m] = flat[off : off : off+counts[m]]
		off += counts[m]
	}
	for e, net := range h.Nets {
		for _, m := range net {
			h.pins[m] = append(h.pins[m], e)
		}
	}
}

// IsConnected reports whether the hypergraph is connected (every module
// reachable from module 0 through shared nets). An empty hypergraph is
// considered connected.
func (h *Hypergraph) IsConnected() bool {
	n := h.NumModules()
	if n <= 1 {
		return true
	}
	return len(h.componentOf(0)) == n
}

// Components returns the connected components as slices of module
// indices, each sorted, ordered by smallest member.
func (h *Hypergraph) Components() [][]int {
	n := h.NumModules()
	seen := make([]bool, n)
	var comps [][]int
	for i := 0; i < n; i++ {
		if seen[i] {
			continue
		}
		c := h.componentOf(i)
		for _, m := range c {
			seen[m] = true
		}
		comps = append(comps, c)
	}
	return comps
}

func (h *Hypergraph) componentOf(start int) []int {
	visited := make(map[int]bool)
	netSeen := make([]bool, len(h.Nets))
	queue := []int{start}
	visited[start] = true
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		for _, e := range h.pins[m] {
			if netSeen[e] {
				continue
			}
			netSeen[e] = true
			for _, other := range h.Nets[e] {
				if !visited[other] {
					visited[other] = true
					queue = append(queue, other)
				}
			}
		}
	}
	comp := make([]int, 0, len(visited))
	for m := range visited {
		comp = append(comp, m)
	}
	sort.Ints(comp)
	return comp
}

// Induce extracts the sub-hypergraph on the given modules. Nets are kept
// (restricted to the subset) when at least two of their modules are in the
// subset. The second return value maps new module indices back to the
// original indices.
func (h *Hypergraph) Induce(modules []int) (*Hypergraph, []int) {
	old2new := make(map[int]int, len(modules))
	back := make([]int, len(modules))
	names := make([]string, len(modules))
	for newIdx, oldIdx := range modules {
		old2new[oldIdx] = newIdx
		back[newIdx] = oldIdx
		names[newIdx] = h.Names[oldIdx]
	}
	sub := &Hypergraph{Names: names}
	for e, net := range h.Nets {
		var kept []int
		for _, m := range net {
			if nm, ok := old2new[m]; ok {
				kept = append(kept, nm)
			}
		}
		if len(kept) >= 2 {
			sort.Ints(kept)
			sub.Nets = append(sub.Nets, kept)
			sub.NetNames = append(sub.NetNames, h.NetNames[e])
		}
	}
	if h.areas != nil {
		sub.areas = make([]float64, len(modules))
		for newIdx, oldIdx := range modules {
			sub.areas[newIdx] = h.areas[oldIdx]
		}
	}
	sub.buildPins()
	return sub, back
}

// Validate checks internal consistency and returns a descriptive error for
// the first violation found. Hypergraphs produced by Builder are always
// valid; Validate is useful after manual construction or parsing.
func (h *Hypergraph) Validate() error {
	n := h.NumModules()
	if len(h.NetNames) != len(h.Nets) {
		return fmt.Errorf("hypergraph: %d nets but %d net names", len(h.Nets), len(h.NetNames))
	}
	for e, net := range h.Nets {
		if len(net) < 2 {
			return fmt.Errorf("hypergraph: net %d has %d modules, want >= 2", e, len(net))
		}
		for i, m := range net {
			if m < 0 || m >= n {
				return fmt.Errorf("hypergraph: net %d references module %d out of range [0,%d)", e, m, n)
			}
			if i > 0 && net[i-1] >= m {
				return fmt.Errorf("hypergraph: net %d is not sorted/deduplicated", e)
			}
		}
	}
	return nil
}
