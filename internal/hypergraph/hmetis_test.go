package hypergraph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadHMetisPlain(t *testing.T) {
	src := `% a comment
4 7
1 2
1 7 5 6
5 6 4
2 3 4
`
	h, err := ReadHMetis(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumModules() != 7 || h.NumNets() != 4 || h.NumPins() != 12 {
		t.Fatalf("stats = %+v", h.Stats())
	}
	// Net 2 connects modules 1,7,5,6 (0-indexed 0,6,4,5).
	net := h.Nets[1]
	want := []int{0, 4, 5, 6}
	for i := range want {
		if net[i] != want[i] {
			t.Fatalf("net 2 = %v, want %v", net, want)
		}
	}
	if h.HasAreas() {
		t.Error("plain format should not set areas")
	}
	if h.Names[0] != "m1" || h.Names[6] != "m7" {
		t.Error("names should be 1-indexed m<i>")
	}
}

func TestReadHMetisNetWeights(t *testing.T) {
	src := "2 3 1\n5 1 2\n2.5 2 3\n"
	h, err := ReadHMetis(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumNets() != 2 || h.NumPins() != 4 {
		t.Fatalf("stats = %+v", h.Stats())
	}
}

func TestReadHMetisModuleWeights(t *testing.T) {
	src := "1 3 10\n1 2 3\n2\n4.5\n1\n"
	h, err := ReadHMetis(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !h.HasAreas() || h.Area(1) != 4.5 || h.TotalArea() != 7.5 {
		t.Errorf("areas wrong: total %v", h.TotalArea())
	}
}

func TestReadHMetisBothWeights(t *testing.T) {
	src := "1 2 11\n3 1 2\n2\n2\n"
	h, err := ReadHMetis(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !h.HasAreas() || h.TotalArea() != 4 {
		t.Error("fmt 11 parsing wrong")
	}
}

func TestReadHMetisErrors(t *testing.T) {
	cases := []string{
		"",                      // no header
		"x 3\n",                 // bad header
		"1 2 7\n1 2\n",          // unsupported fmt
		"1 3\n1 9\n",            // module id out of range
		"2 3\n1 2\n",            // missing net line
		"1 3\n1\n",              // single-pin net
		"1 2 10\n1 2\n-1\n-1\n", // bad module weight
		"1 2 1\nx 1 2\n",        // bad net weight
	}
	for _, src := range cases {
		if _, err := ReadHMetis(strings.NewReader(src)); err == nil {
			t.Errorf("input %q accepted", src)
		}
	}
}

func TestHMetisRoundTrip(t *testing.T) {
	h := tiny(t)
	if err := h.SetAreas([]float64{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHMetis(&buf, h); err != nil {
		t.Fatal(err)
	}
	h2, err := ReadHMetis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.NumModules() != h.NumModules() || h2.NumNets() != h.NumNets() || h2.NumPins() != h.NumPins() {
		t.Fatalf("round trip changed shape: %+v vs %+v", h2.Stats(), h.Stats())
	}
	if !h2.HasAreas() || h2.TotalArea() != 15 {
		t.Error("areas lost in round trip")
	}
	for e := range h.Nets {
		if len(h.Nets[e]) != len(h2.Nets[e]) {
			t.Fatalf("net %d changed", e)
		}
		for i := range h.Nets[e] {
			if h.Nets[e][i] != h2.Nets[e][i] {
				t.Fatalf("net %d contents changed", e)
			}
		}
	}
}

func TestHMetisRoundTripNoAreas(t *testing.T) {
	h := tiny(t)
	var buf bytes.Buffer
	if err := WriteHMetis(&buf, h); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), " 10\n") {
		t.Error("unit-area netlist should use the plain header")
	}
	h2, err := ReadHMetis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.HasAreas() {
		t.Error("round trip invented areas")
	}
}
