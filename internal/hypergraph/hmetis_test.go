package hypergraph

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestReadHMetisPlain(t *testing.T) {
	src := `% a comment
4 7
1 2
1 7 5 6
5 6 4
2 3 4
`
	h, err := ReadHMetis(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumModules() != 7 || h.NumNets() != 4 || h.NumPins() != 12 {
		t.Fatalf("stats = %+v", h.Stats())
	}
	// Net 2 connects modules 1,7,5,6 (0-indexed 0,6,4,5).
	net := h.Nets[1]
	want := []int{0, 4, 5, 6}
	for i := range want {
		if net[i] != want[i] {
			t.Fatalf("net 2 = %v, want %v", net, want)
		}
	}
	if h.HasAreas() {
		t.Error("plain format should not set areas")
	}
	if h.Names[0] != "m1" || h.Names[6] != "m7" {
		t.Error("names should be 1-indexed m<i>")
	}
}

func TestReadHMetisNetWeights(t *testing.T) {
	src := "2 3 1\n5 1 2\n2.5 2 3\n"
	h, err := ReadHMetis(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumNets() != 2 || h.NumPins() != 4 {
		t.Fatalf("stats = %+v", h.Stats())
	}
}

func TestReadHMetisModuleWeights(t *testing.T) {
	src := "1 3 10\n1 2 3\n2\n4.5\n1\n"
	h, err := ReadHMetis(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !h.HasAreas() || h.Area(1) != 4.5 || h.TotalArea() != 7.5 {
		t.Errorf("areas wrong: total %v", h.TotalArea())
	}
}

func TestReadHMetisBothWeights(t *testing.T) {
	src := "1 2 11\n3 1 2\n2\n2\n"
	h, err := ReadHMetis(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !h.HasAreas() || h.TotalArea() != 4 {
		t.Error("fmt 11 parsing wrong")
	}
}

func TestReadHMetisErrors(t *testing.T) {
	cases := []string{
		"",                      // no header
		"x 3\n",                 // bad header
		"1 2 7\n1 2\n",          // unsupported fmt
		"1 3\n1 9\n",            // module id out of range
		"2 3\n1 2\n",            // missing net line
		"1 3\n1\n",              // single-pin net
		"1 2 10\n1 2\n-1\n-1\n", // bad module weight
		"1 2 1\nx 1 2\n",        // bad net weight
	}
	for _, src := range cases {
		if _, err := ReadHMetis(strings.NewReader(src)); err == nil {
			t.Errorf("input %q accepted", src)
		}
	}
}

func TestHMetisRoundTrip(t *testing.T) {
	h := tiny(t)
	if err := h.SetAreas([]float64{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHMetis(&buf, h); err != nil {
		t.Fatal(err)
	}
	h2, err := ReadHMetis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.NumModules() != h.NumModules() || h2.NumNets() != h.NumNets() || h2.NumPins() != h.NumPins() {
		t.Fatalf("round trip changed shape: %+v vs %+v", h2.Stats(), h.Stats())
	}
	if !h2.HasAreas() || h2.TotalArea() != 15 {
		t.Error("areas lost in round trip")
	}
	for e := range h.Nets {
		if len(h.Nets[e]) != len(h2.Nets[e]) {
			t.Fatalf("net %d changed", e)
		}
		for i := range h.Nets[e] {
			if h.Nets[e][i] != h2.Nets[e][i] {
				t.Fatalf("net %d contents changed", e)
			}
		}
	}
}

func TestHMetisRoundTripNoAreas(t *testing.T) {
	h := tiny(t)
	var buf bytes.Buffer
	if err := WriteHMetis(&buf, h); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), " 10\n") {
		t.Error("unit-area netlist should use the plain header")
	}
	h2, err := ReadHMetis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.HasAreas() {
		t.Error("round trip invented areas")
	}
}

func TestReadHMetisHostileHeaders(t *testing.T) {
	cases := []string{
		"999999999 999999999\n",
		"0 999999999\n",
		"4194305 3\n",
		"3 4194305\n",
		"-1 5\n",
		"1\n",
		"1 2 3 4\n",
		"1 2 7\n1 2\n",
	}
	for _, src := range cases {
		done := make(chan error, 1)
		go func() {
			_, err := ReadHMetis(strings.NewReader(src))
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil {
				t.Errorf("%q accepted", src)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%q: parser hung (likely allocating for a hostile header)", src)
		}
	}
}

func TestReadHMetisTruncated(t *testing.T) {
	for _, src := range []string{
		"3 3\n1 2\n",         // declared 3 nets, got 1
		"1 2 10\n1 2\n",      // missing module weights
		"1 2 11\n2 1 2\n1\n", // missing second module weight
	} {
		if _, err := ReadHMetis(strings.NewReader(src)); err == nil {
			t.Errorf("%q accepted", src)
		}
	}
}

func TestReadHMetisDuplicatePinsCollapse(t *testing.T) {
	h, err := ReadHMetis(strings.NewReader("1 3\n1 2 2 3 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Nets[0]; len(got) != 3 {
		t.Fatalf("net pins %v, want 3 distinct", got)
	}
	if _, err := ReadHMetis(strings.NewReader("1 3\n2 2 2\n")); err == nil {
		t.Error("single-distinct-pin net accepted")
	}
}

func TestReadHMetisWeightValidation(t *testing.T) {
	// Zero net weights are legal; NaN/Inf/negative are not.
	if _, err := ReadHMetis(strings.NewReader("1 2 1\n0 1 2\n")); err != nil {
		t.Errorf("zero net weight rejected: %v", err)
	}
	for _, src := range []string{
		"1 2 1\nNaN 1 2\n",
		"1 2 1\n-Inf 1 2\n",
		"1 2 1\n-1 1 2\n",
		"1 2 10\n1 2\nNaN\n2\n",
		"1 2 10\n1 2\nInf\n2\n",
		"1 2 10\n1 2\n0\n2\n",
		"1 2 10\n1 2\n-3\n2\n",
	} {
		if _, err := ReadHMetis(strings.NewReader(src)); err == nil {
			t.Errorf("%q accepted", src)
		}
	}
}
