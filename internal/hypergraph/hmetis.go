package hypergraph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// hMETIS hypergraph format support (the de-facto standard exchange format
// for VLSI partitioning benchmarks):
//
//	% comment lines
//	<numNets> <numModules> [fmt]
//	<net line: 1-indexed module ids>            (one per net)
//	[<module weight>]                           (one per module, fmt 10/11)
//
// fmt 1/11 prefixes each net line with a net weight (parsed and ignored —
// this repository's cut metrics are unweighted per net); fmt 10/11 append
// one module-weight line per module, mapped to module areas.

// maxHMetisDeclared caps the module and net counts an hMETIS header may
// declare. The largest public hMETIS benchmarks are ~200k modules; this
// leaves generous headroom while keeping a hostile header ("999999999
// 999999999") from forcing gigabyte allocations before a single net
// line has been read.
const maxHMetisDeclared = 1 << 22

// ReadHMetis parses an hMETIS hypergraph file. Module names are
// synthesized as "m1".."mN" (matching the format's 1-indexed ids).
// Headers declaring implausibly large counts, non-finite or negative
// net weights, and non-finite or non-positive module weights are all
// rejected; module storage is only allocated after the declared nets
// have parsed, so truncated files fail cheaply.
func ReadHMetis(r io.Reader) (*Hypergraph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	next := func() ([]string, error) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "%") {
				continue
			}
			return strings.Fields(line), nil
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}

	header, err := next()
	if err != nil {
		return nil, fmt.Errorf("hypergraph: hmetis: missing header: %v", err)
	}
	if len(header) < 2 || len(header) > 3 {
		return nil, fmt.Errorf("hypergraph: hmetis: header wants 2 or 3 fields, got %d", len(header))
	}
	numNets, err1 := strconv.Atoi(header[0])
	numMods, err2 := strconv.Atoi(header[1])
	if err1 != nil || err2 != nil || numNets < 0 || numMods < 1 {
		return nil, fmt.Errorf("hypergraph: hmetis: bad header %v", header)
	}
	if numNets > maxHMetisDeclared || numMods > maxHMetisDeclared {
		return nil, fmt.Errorf("hypergraph: hmetis: header declares %d nets, %d modules; both must be <= %d", numNets, numMods, maxHMetisDeclared)
	}
	format := 0
	if len(header) == 3 {
		format, err = strconv.Atoi(header[2])
		if err != nil || (format != 0 && format != 1 && format != 10 && format != 11) {
			return nil, fmt.Errorf("hypergraph: hmetis: unsupported fmt %q", header[2])
		}
	}
	netWeights := format == 1 || format == 11
	modWeights := format == 10 || format == 11

	// Parse every net before materializing module storage: a truncated
	// file with a giant header then fails on the first missing net line
	// instead of after an O(numMods) allocation.
	nets := make([][]int, 0, minInt(numNets, 4096))
	for e := 0; e < numNets; e++ {
		fields, err := next()
		if err != nil {
			return nil, fmt.Errorf("hypergraph: hmetis: net %d: %v", e+1, err)
		}
		start := 0
		if netWeights {
			w, err := strconv.ParseFloat(fields[0], 64)
			if err != nil || math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
				return nil, fmt.Errorf("hypergraph: hmetis: net %d: bad weight %q, want finite >= 0", e+1, fields[0])
			}
			start = 1
		}
		mods := make([]int, 0, len(fields)-start)
		for _, f := range fields[start:] {
			id, err := strconv.Atoi(f)
			if err != nil || id < 1 || id > numMods {
				return nil, fmt.Errorf("hypergraph: hmetis: net %d: bad module id %q", e+1, f)
			}
			mods = append(mods, id-1)
		}
		// Collapse duplicate pins, matching Builder.AddNet.
		sort.Ints(mods)
		distinct := mods[:0]
		for i, m := range mods {
			if i == 0 || m != mods[i-1] {
				distinct = append(distinct, m)
			}
		}
		if len(distinct) < 2 {
			return nil, fmt.Errorf("hypergraph: hmetis: net %d connects fewer than 2 distinct modules", e+1)
		}
		nets = append(nets, distinct)
	}
	names := make([]string, numMods)
	for i := range names {
		names[i] = fmt.Sprintf("m%d", i+1)
	}
	netNames := make([]string, len(nets))
	for e := range netNames {
		netNames[e] = fmt.Sprintf("n%d", e+1)
	}
	h := &Hypergraph{Names: names, Nets: nets, NetNames: netNames}
	h.buildPins()
	if modWeights {
		areas := make([]float64, numMods)
		for i := 0; i < numMods; i++ {
			fields, err := next()
			if err != nil {
				return nil, fmt.Errorf("hypergraph: hmetis: module weight %d: %v", i+1, err)
			}
			w, err := strconv.ParseFloat(fields[0], 64)
			if err != nil || math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
				return nil, fmt.Errorf("hypergraph: hmetis: module weight %d: bad value %q, want finite > 0", i+1, fields[0])
			}
			areas[i] = w
		}
		if err := h.SetAreas(areas); err != nil {
			return nil, err
		}
	}
	return h, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// WriteHMetis serializes the hypergraph in hMETIS format (fmt 10 when
// explicit areas are present, plain otherwise).
func WriteHMetis(w io.Writer, h *Hypergraph) error {
	bw := bufio.NewWriter(w)
	if h.HasAreas() {
		fmt.Fprintf(bw, "%d %d 10\n", h.NumNets(), h.NumModules())
	} else {
		fmt.Fprintf(bw, "%d %d\n", h.NumNets(), h.NumModules())
	}
	for _, net := range h.Nets {
		for i, m := range net {
			if i > 0 {
				fmt.Fprint(bw, " ")
			}
			fmt.Fprintf(bw, "%d", m+1)
		}
		fmt.Fprintln(bw)
	}
	if h.HasAreas() {
		for i := 0; i < h.NumModules(); i++ {
			fmt.Fprintf(bw, "%g\n", h.Area(i))
		}
	}
	return bw.Flush()
}
