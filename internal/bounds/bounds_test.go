package bounds

import (
	"math"
	"testing"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/vecpart"
)

// bruteMinF returns the minimum f(P_k) over all partitions with exactly
// the given sizes (as a multiset).
func bruteMinF(g *graph.Graph, sizes []int) float64 {
	n := g.N()
	k := len(sizes)
	best := math.Inf(1)
	assign := make([]int, n)
	counts := make([]int, k)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			p := partition.Partition{Assign: assign, K: k}
			if f := partition.F(g, &p); f < best {
				best = f
			}
			return
		}
		for c := 0; c < k; c++ {
			if counts[c] < sizes[c] {
				counts[c]++
				assign[i] = c
				rec(i + 1)
				counts[c]--
			}
		}
	}
	rec(0)
	return best
}

func TestDonathHoffmanIsValidLowerBound(t *testing.T) {
	cases := []struct {
		g     *graph.Graph
		sizes []int
	}{
		{graph.RandomConnected(9, 14, 1), []int{5, 4}},
		{graph.RandomConnected(9, 14, 2), []int{3, 3, 3}},
		{graph.RandomConnected(10, 20, 3), []int{4, 3, 3}},
		{graph.Cycle(8), []int{4, 4}},
		{graph.Grid(3, 3), []int{3, 3, 3}},
	}
	for i, c := range cases {
		b, err := DonathHoffman(c.g, c.sizes)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		opt := bruteMinF(c.g, c.sizes)
		if b > opt+1e-9 {
			t.Errorf("case %d: bound %v exceeds optimum %v", i, b, opt)
		}
		if b < 0 {
			t.Errorf("case %d: negative bound %v", i, b)
		}
	}
}

func TestDonathHoffmanTightOnCompleteGraph(t *testing.T) {
	// K_n with equal sizes: every balanced partition has
	// f = n² − Σ m_h² and the bound is tight.
	n, k := 12, 3
	g := graph.Complete(n)
	sizes := []int{4, 4, 4}
	b, err := DonathHoffman(g, sizes)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n*n) - 3*16
	if math.Abs(b-want) > 1e-8 {
		t.Errorf("bound %v, want tight %v (k=%d)", b, want, k)
	}
}

func TestBipartitionCutBound(t *testing.T) {
	g := graph.RandomConnected(12, 25, 7)
	for _, m1 := range []int{3, 6} {
		b, err := BipartitionCutBound(g, m1, 12-m1)
		if err != nil {
			t.Fatal(err)
		}
		opt := bruteMinF(g, []int{m1, 12 - m1}) / 2 // f counts twice
		if b > opt+1e-9 {
			t.Errorf("m1=%d: bound %v exceeds optimal cut %v", m1, b, opt)
		}
	}
	if _, err := BipartitionCutBound(g, 5, 5); err == nil {
		t.Error("sizes not summing to n accepted")
	}
}

func TestRatioCutBound(t *testing.T) {
	g := graph.RandomConnected(11, 25, 4)
	b, err := RatioCutBound(g)
	if err != nil {
		t.Fatal(err)
	}
	// Check against the best ratio cut by enumeration.
	n := g.N()
	best := math.Inf(1)
	for mask := 1; mask < 1<<(n-1); mask++ {
		assign := make([]int, n)
		ones := 0
		for i := 0; i < n-1; i++ {
			assign[i] = (mask >> i) & 1
			ones += assign[i]
		}
		if ones == 0 {
			continue
		}
		p := partition.MustNew(assign, 2)
		rc := partition.GraphRatioCut(g, p)
		if rc < best {
			best = rc
		}
	}
	if b > best+1e-9 {
		t.Errorf("ratio-cut bound %v exceeds optimum %v", b, best)
	}
}

func TestOptimizeDiagonalImprovesAndStaysValid(t *testing.T) {
	g := graph.RandomConnected(10, 18, 9)
	sizes := []int{5, 5}
	base, err := DonathHoffman(g, sizes)
	if err != nil {
		t.Fatal(err)
	}
	improved, diag, err := OptimizeDiagonal(g, sizes, OptimizeDiagonalOptions{Iterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	if improved < base-1e-9 {
		t.Errorf("optimized bound %v below unoptimized %v", improved, base)
	}
	// Zero trace is the validity condition.
	var tr float64
	for _, d := range diag {
		tr += d
	}
	if math.Abs(tr) > 1e-8 {
		t.Errorf("diagonal trace %v, want 0", tr)
	}
	// Still a lower bound on the true optimum.
	opt := bruteMinF(g, sizes)
	if improved > opt+1e-9 {
		t.Errorf("optimized bound %v exceeds optimum %v", improved, opt)
	}
	t.Logf("bound: %v -> %v (optimum %v)", base, improved, opt)
}

func TestBoundErrors(t *testing.T) {
	g := graph.Path(5)
	if _, err := DonathHoffman(g, nil); err == nil {
		t.Error("empty sizes accepted")
	}
	if _, err := DonathHoffman(g, []int{5, 0}); err == nil {
		t.Error("zero size accepted")
	}
	if _, _, err := OptimizeDiagonal(g, []int{1, 1, 1, 1, 1, 1}, OptimizeDiagonalOptions{}); err == nil {
		t.Error("k>n accepted")
	}
}

// TestBoundVersusVectorObjective ties the bound to the vector view: for
// any partition, n·H − Σ‖Y_h‖² = f ≥ bound.
func TestBoundVersusVectorObjective(t *testing.T) {
	g := graph.RandomConnected(8, 12, 13)
	n := g.N()
	dec := mustEig(t, g)
	H := vecpart.ChooseH(g.TotalDegree(), dec.Values, n)
	v, err := vecpart.FromDecomposition(dec, n, vecpart.MaxSum, H)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{4, 4}
	bound, err := DonathHoffman(g, sizes)
	if err != nil {
		t.Fatal(err)
	}
	// A specific balanced partition.
	p := partition.MustNew([]int{0, 0, 0, 0, 1, 1, 1, 1}, 2)
	f := float64(n)*H - v.SumSquaredSubsets(p)
	if f < bound-1e-8 {
		t.Errorf("vector-derived f %v below the bound %v", f, bound)
	}
}

func mustEig(t *testing.T, g *graph.Graph) *eigen.Decomposition {
	t.Helper()
	dec, err := eigen.SymEig(g.LaplacianDense())
	if err != nil {
		t.Fatal(err)
	}
	return dec
}
