// Package bounds implements the spectral lower bounds the paper builds
// on: the Donath–Hoffman bound [16] on the k-way cut, the Hagen–Kahng
// ratio-cut bound [25], and the diagonal-perturbation improvement the
// paper's §6 describes ([8][9][12][17]): choosing a zero-trace diagonal D
// that maximizes the bound computed from Q + D.
//
// These bounds certify how far any heuristic solution can be from
// optimal, and the diagonal optimization is the paper's suggested tool
// for tightening them.
package bounds

import (
	"fmt"
	"sort"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/linalg"
)

// DonathHoffman returns the lower bound on the paper's cut objective
// f(P_k) = Σ_h E_h over all partitions with the given cluster sizes:
//
//	f(P_k) ≥ Σ_{j=1..k} m_(j) · λ_j
//
// where λ_1 ≤ … ≤ λ_k are the smallest Laplacian eigenvalues and
// m_(1) ≥ … ≥ m_(k) the sizes sorted descending (largest size paired
// with smallest eigenvalue). Since λ_1 = 0, the first term vanishes.
func DonathHoffman(g *graph.Graph, sizes []int) (float64, error) {
	lam, err := smallestValues(g.Laplacian(), len(sizes))
	if err != nil {
		return 0, err
	}
	return boundFromValues(lam, sizes)
}

// boundFromValues pairs sizes (sorted descending) with eigenvalues
// (ascending) and sums the products.
func boundFromValues(lam []float64, sizes []int) (float64, error) {
	k := len(sizes)
	if k < 1 {
		return 0, fmt.Errorf("bounds: need at least one cluster size")
	}
	if len(lam) < k {
		return 0, fmt.Errorf("bounds: %d eigenvalues for %d sizes", len(lam), k)
	}
	m := append([]int(nil), sizes...)
	sort.Sort(sort.Reverse(sort.IntSlice(m)))
	var b float64
	for j := 0; j < k; j++ {
		if m[j] < 1 {
			return 0, fmt.Errorf("bounds: cluster size %d < 1", m[j])
		}
		b += float64(m[j]) * lam[j]
	}
	return b, nil
}

// RatioCutBound returns the Hagen–Kahng lower bound on the ratio cut of
// any bipartition: cut/(|C_1||C_2|) ≥ λ_2/n.
func RatioCutBound(g *graph.Graph) (float64, error) {
	lam, err := smallestValues(g.Laplacian(), 2)
	if err != nil {
		return 0, err
	}
	return lam[1] / float64(g.N()), nil
}

// BipartitionCutBound returns the Fiedler bound on the weighted cut of a
// bipartition with sides m1, m2: cut ≥ λ_2·m1·m2/n.
func BipartitionCutBound(g *graph.Graph, m1, m2 int) (float64, error) {
	if m1+m2 != g.N() || m1 < 1 || m2 < 1 {
		return 0, fmt.Errorf("bounds: sizes %d+%d do not partition %d vertices", m1, m2, g.N())
	}
	lam, err := smallestValues(g.Laplacian(), 2)
	if err != nil {
		return 0, err
	}
	return lam[1] * float64(m1) * float64(m2) / float64(g.N()), nil
}

// OptimizeDiagonalOptions configures the diagonal-perturbation ascent.
type OptimizeDiagonalOptions struct {
	// Iterations of subgradient ascent (default 20).
	Iterations int
	// Step is the initial step size (default 0.5), halved on failure to
	// improve.
	Step float64
}

// OptimizeDiagonal improves the Donath–Hoffman bound by subgradient
// ascent over zero-trace diagonal perturbations: for any diagonal D with
// trace(D) = 0, trace(Xᵀ(Q+D)X) = f(P_k) + trace(D) = f(P_k), so the
// bound computed from Q + D is also a valid lower bound on f. The
// subgradient of λ_j with respect to D_ii is U[i][j]².
//
// Returns the best bound found and the diagonal achieving it. Intended
// for analysis of small graphs (each iteration is a dense eigensolve).
func OptimizeDiagonal(g *graph.Graph, sizes []int, opts OptimizeDiagonalOptions) (float64, []float64, error) {
	n := g.N()
	k := len(sizes)
	if k > n {
		return 0, nil, fmt.Errorf("bounds: %d sizes for %d vertices", k, n)
	}
	iters := opts.Iterations
	if iters <= 0 {
		iters = 20
	}
	step := opts.Step
	if step <= 0 {
		step = 0.5
	}
	m := append([]int(nil), sizes...)
	sort.Sort(sort.Reverse(sort.IntSlice(m)))

	q := g.LaplacianDense()
	diag := make([]float64, n)
	evalBound := func(d []float64) (float64, *eigen.Decomposition, error) {
		qd := q.Clone()
		for i := 0; i < n; i++ {
			qd.Add(i, i, d[i])
		}
		dec, err := eigen.SymEig(qd)
		if err != nil {
			return 0, nil, err
		}
		b, err := boundFromValues(dec.Values, m)
		return b, dec, err
	}

	best, dec, err := evalBound(diag)
	if err != nil {
		return 0, nil, err
	}
	bestDiag := linalg.CopyVec(diag)

	for it := 0; it < iters; it++ {
		// Subgradient: ∂(Σ_j m_j λ_j)/∂d_i = Σ_j m_j·U[i][j]², projected
		// onto the zero-trace subspace.
		grad := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				u := dec.Vectors.At(i, j)
				grad[i] += float64(m[j]) * u * u
			}
		}
		mean := linalg.Sum(grad) / float64(n)
		for i := range grad {
			grad[i] -= mean
		}
		if linalg.Norm2(grad) < 1e-12 {
			break
		}
		trial := linalg.CopyVec(bestDiag)
		linalg.Axpy(step, grad, trial)
		b, decTrial, err := evalBound(trial)
		if err != nil {
			return 0, nil, err
		}
		if b > best {
			best = b
			bestDiag = trial
			dec = decTrial
		} else {
			step /= 2
			if step < 1e-6 {
				break
			}
		}
	}
	return best, bestDiag, nil
}

// smallestValues returns the k smallest eigenvalues of op.
func smallestValues(op linalg.Operator, k int) ([]float64, error) {
	dec, err := eigen.SmallestEigenpairs(op, k)
	if err != nil {
		return nil, err
	}
	return dec.Values, nil
}
