// Package delta models incremental netlist changes (ECO — engineering
// change orders) against a content-addressed base hypergraph.
//
// A Delta edits the net set and module areas of a fixed module
// population: nets can be added, removed (by name), or have their pin
// list replaced, and module areas can be updated. Module count never
// changes — an ECO that adds or drops cells is a new base upload, not a
// delta. Apply never mutates the base; it builds a fresh Hypergraph so
// the base (and any cached decomposition keyed on its fingerprint)
// stays valid.
//
// Apply also reports the perturbation's Reach — how many modules and
// nets the edit touches — which callers use to decide whether a
// warm-started eigensolve is worth attempting and to annotate traces.
package delta

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/hypergraph"
)

// NetChange names a net and gives its (new) module list. In AddNets the
// name must be unused; in SetPins it must name exactly one existing net.
type NetChange struct {
	Name    string `json:"name"`
	Modules []int  `json:"modules"`
}

// AreaChange updates one module's area.
type AreaChange struct {
	Module int     `json:"module"`
	Area   float64 `json:"area"`
}

// Delta is one batch of netlist edits, applied atomically: removals
// first, then pin replacements, then additions, then area updates. An
// empty Delta is valid and yields a netlist with the base's fingerprint.
type Delta struct {
	// RemoveNets deletes nets by name.
	RemoveNets []string `json:"removeNets,omitempty"`
	// SetPins replaces the module lists of existing nets (matched by
	// name; the net keeps its name and position).
	SetPins []NetChange `json:"setPins,omitempty"`
	// AddNets appends new nets.
	AddNets []NetChange `json:"addNets,omitempty"`
	// SetAreas updates per-module areas. Setting areas on a base without
	// areas gives every untouched module area 1.
	SetAreas []AreaChange `json:"setAreas,omitempty"`
}

// Empty reports whether the delta contains no edits.
func (d *Delta) Empty() bool {
	return d == nil || len(d.RemoveNets) == 0 && len(d.SetPins) == 0 && len(d.AddNets) == 0 && len(d.SetAreas) == 0
}

// Ops returns the number of individual edits in the delta.
func (d *Delta) Ops() int {
	if d == nil {
		return 0
	}
	return len(d.RemoveNets) + len(d.SetPins) + len(d.AddNets) + len(d.SetAreas)
}

// Reach measures how much of the base a delta perturbs: the modules on
// any removed, repinned (old or new pins), or added net, plus modules
// whose area actually changed. The eigensolver warm-start heuristic and
// the job traces consume it.
type Reach struct {
	// Modules is the number of distinct modules touched by the edit.
	Modules int `json:"modules"`
	// Nets is the number of nets removed, repinned, or added.
	Nets int `json:"nets"`
	// Frac is Modules over the base module count (0 for an empty base).
	Frac float64 `json:"frac"`
}

// Apply builds the netlist that results from applying d to base,
// leaving base untouched, and reports the edit's Reach. It errors
// (without partial effects) when a removal or pin change names a
// missing or ambiguous net, an added net's name collides with a
// surviving net, a net has fewer than two distinct in-range modules, or
// an area update is out of range or not a positive finite value.
func Apply(base *hypergraph.Hypergraph, d *Delta) (*hypergraph.Hypergraph, Reach, error) {
	if base == nil {
		return nil, Reach{}, fmt.Errorf("delta: nil base")
	}
	n := base.NumModules()
	touched := make([]bool, n)
	var reach Reach

	// Resolve net names. Duplicate names are legal in a Hypergraph (the
	// Builder auto-names, but FromParts accepts anything), so a name is
	// only a valid edit target while it is unambiguous.
	index := make(map[string]int, base.NumNets())
	dup := make(map[string]bool)
	for i, name := range base.NetNames {
		if _, ok := index[name]; ok {
			dup[name] = true
		}
		index[name] = i
	}
	resolve := func(op, name string) (int, error) {
		if dup[name] {
			return 0, fmt.Errorf("delta: %s %q: net name is ambiguous in base", op, name)
		}
		i, ok := index[name]
		if !ok {
			return 0, fmt.Errorf("delta: %s %q: no such net", op, name)
		}
		return i, nil
	}

	// canonNet validates and canonicalizes a net's module list into the
	// sorted-distinct form FromParts requires.
	canonNet := func(op, name string, modules []int) ([]int, error) {
		out := make([]int, 0, len(modules))
		for _, m := range modules {
			if m < 0 || m >= n {
				return nil, fmt.Errorf("delta: %s %q: module %d out of range [0,%d)", op, name, m, n)
			}
			out = append(out, m)
		}
		sort.Ints(out)
		w := 0
		for i, m := range out {
			if i == 0 || m != out[w-1] {
				out[w] = m
				w++
			}
		}
		out = out[:w]
		if len(out) < 2 {
			return nil, fmt.Errorf("delta: %s %q: a net needs at least 2 distinct modules, got %d", op, name, len(out))
		}
		return out, nil
	}

	removed := make([]bool, base.NumNets())
	seenRemove := make(map[string]bool, len(d.RemoveNets))
	for _, name := range d.RemoveNets {
		if seenRemove[name] {
			return nil, Reach{}, fmt.Errorf("delta: removeNets %q: removed twice", name)
		}
		seenRemove[name] = true
		i, err := resolve("removeNets", name)
		if err != nil {
			return nil, Reach{}, err
		}
		removed[i] = true
		reach.Nets++
		for _, m := range base.Nets[i] {
			touched[m] = true
		}
	}

	repinned := make(map[int][]int, len(d.SetPins))
	for _, ch := range d.SetPins {
		i, err := resolve("setPins", ch.Name)
		if err != nil {
			return nil, Reach{}, err
		}
		if removed[i] {
			return nil, Reach{}, fmt.Errorf("delta: setPins %q: net is also removed", ch.Name)
		}
		if _, ok := repinned[i]; ok {
			return nil, Reach{}, fmt.Errorf("delta: setPins %q: repinned twice", ch.Name)
		}
		pins, err := canonNet("setPins", ch.Name, ch.Modules)
		if err != nil {
			return nil, Reach{}, err
		}
		repinned[i] = pins
		reach.Nets++
		for _, m := range base.Nets[i] {
			touched[m] = true
		}
		for _, m := range pins {
			touched[m] = true
		}
	}

	// Surviving net names, for add-collision checks.
	surviving := make(map[string]bool, base.NumNets())
	for i, name := range base.NetNames {
		if !removed[i] {
			surviving[name] = true
		}
	}
	added := make([][]int, 0, len(d.AddNets))
	addedNames := make([]string, 0, len(d.AddNets))
	for _, ch := range d.AddNets {
		if ch.Name == "" {
			return nil, Reach{}, fmt.Errorf("delta: addNets: empty net name")
		}
		if surviving[ch.Name] {
			return nil, Reach{}, fmt.Errorf("delta: addNets %q: name collides with an existing net", ch.Name)
		}
		surviving[ch.Name] = true
		pins, err := canonNet("addNets", ch.Name, ch.Modules)
		if err != nil {
			return nil, Reach{}, err
		}
		added = append(added, pins)
		addedNames = append(addedNames, ch.Name)
		reach.Nets++
		for _, m := range pins {
			touched[m] = true
		}
	}

	// Areas: start from the base's effective areas, apply updates, then
	// normalize all-unit areas back to "no areas" so a delta that only
	// restates the default cannot change the fingerprint.
	var areas []float64
	if base.HasAreas() || len(d.SetAreas) > 0 {
		areas = make([]float64, n)
		for i := range areas {
			areas[i] = base.Area(i)
		}
	}
	seenArea := make(map[int]bool, len(d.SetAreas))
	for _, ch := range d.SetAreas {
		if ch.Module < 0 || ch.Module >= n {
			return nil, Reach{}, fmt.Errorf("delta: setAreas: module %d out of range [0,%d)", ch.Module, n)
		}
		if seenArea[ch.Module] {
			return nil, Reach{}, fmt.Errorf("delta: setAreas: module %d set twice", ch.Module)
		}
		seenArea[ch.Module] = true
		if !(ch.Area > 0) || math.IsInf(ch.Area, 1) {
			return nil, Reach{}, fmt.Errorf("delta: setAreas: module %d: area must be a positive finite number, got %v", ch.Module, ch.Area)
		}
		if areas[ch.Module] != ch.Area {
			touched[ch.Module] = true
		}
		areas[ch.Module] = ch.Area
	}
	if areas != nil {
		unit := true
		for _, a := range areas {
			if a != 1 {
				unit = false
				break
			}
		}
		if unit {
			areas = nil
		}
	}

	// Assemble: surviving base nets in base order (repins in place),
	// then additions in delta order. Unmodified net slices are shared
	// with the immutable base.
	nets := make([][]int, 0, base.NumNets()+len(added))
	netNames := make([]string, 0, base.NumNets()+len(added))
	for i, net := range base.Nets {
		if removed[i] {
			continue
		}
		if pins, ok := repinned[i]; ok {
			net = pins
		}
		nets = append(nets, net)
		netNames = append(netNames, base.NetNames[i])
	}
	nets = append(nets, added...)
	netNames = append(netNames, addedNames...)

	names := make([]string, n)
	copy(names, base.Names)
	h, err := hypergraph.FromParts(names, nets, netNames)
	if err != nil {
		return nil, Reach{}, fmt.Errorf("delta: assembling result: %w", err)
	}
	if areas != nil {
		if err := h.SetAreas(areas); err != nil {
			return nil, Reach{}, fmt.Errorf("delta: applying areas: %w", err)
		}
	}

	for _, t := range touched {
		if t {
			reach.Modules++
		}
	}
	if n > 0 {
		reach.Frac = float64(reach.Modules) / float64(n)
	}
	return h, reach, nil
}
