package delta

import (
	"encoding/json"
	"sort"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/speccache"
)

// fuzzBase returns one of a few canned base netlists, selected by sel.
// Bases are rebuilt per call so corruption cannot leak between fuzz
// iterations.
func fuzzBase(sel uint8) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder()
	switch sel % 4 {
	case 0: // path of 6
		b.AddModules(6)
		for i := 0; i < 5; i++ {
			b.AddNet("", i, i+1)
		}
	case 1: // star + clique net, duplicate names
		b.AddModules(5)
		b.AddNet("hub", 0, 1)
		b.AddNet("hub", 0, 2)
		b.AddNet("big", 0, 1, 2, 3, 4)
	case 2: // two triangles with areas
		b.AddModules(6)
		b.AddNet("t1", 0, 1, 2)
		b.AddNet("t2", 3, 4, 5)
		b.AddNet("bridge", 2, 3)
		h := b.Build()
		_ = h.SetAreas([]float64{1, 2, 3, 4, 5, 6})
		return h
	default: // minimal
		b.AddModules(2)
		b.AddNet("only", 0, 1)
	}
	return b.Build()
}

// structEqual compares two netlists by canonical content — module
// count, effective per-module areas, and the sorted multiset of nets —
// mirroring exactly what speccache.Fingerprint hashes.
func structEqual(a, b *hypergraph.Hypergraph) bool {
	if a.NumModules() != b.NumModules() || a.NumNets() != b.NumNets() {
		return false
	}
	for i := 0; i < a.NumModules(); i++ {
		if a.Area(i) != b.Area(i) {
			return false
		}
	}
	canon := func(h *hypergraph.Hypergraph) [][]int {
		nets := make([][]int, len(h.Nets))
		copy(nets, h.Nets)
		sort.Slice(nets, func(i, j int) bool {
			x, y := nets[i], nets[j]
			for k := 0; k < len(x) && k < len(y); k++ {
				if x[k] != y[k] {
					return x[k] < y[k]
				}
			}
			return len(x) < len(y)
		})
		return nets
	}
	na, nb := canon(a), canon(b)
	for i := range na {
		if len(na[i]) != len(nb[i]) {
			return false
		}
		for j := range na[i] {
			if na[i][j] != nb[i][j] {
				return false
			}
		}
	}
	return true
}

// FuzzApplyDelta checks, for arbitrary JSON-decoded deltas against
// canned bases, that Apply never panics, never mutates the base, and
// that the result's fingerprint changes iff the netlist content
// changed.
func FuzzApplyDelta(f *testing.F) {
	f.Add(uint8(0), []byte(`{}`))
	f.Add(uint8(0), []byte(`{"removeNets":["n0"]}`))
	f.Add(uint8(0), []byte(`{"addNets":[{"name":"x","modules":[0,3]}],"removeNets":["n4"]}`))
	f.Add(uint8(1), []byte(`{"removeNets":["hub"]}`))
	f.Add(uint8(1), []byte(`{"setPins":[{"name":"big","modules":[4,4,1,0]}]}`))
	f.Add(uint8(2), []byte(`{"setAreas":[{"module":3,"area":2.25},{"module":0,"area":1}]}`))
	f.Add(uint8(2), []byte(`{"setAreas":[{"module":1,"area":1},{"module":2,"area":1},{"module":3,"area":1},{"module":4,"area":1},{"module":5,"area":1},{"module":0,"area":1}]}`))
	f.Add(uint8(3), []byte(`{"removeNets":["only"],"addNets":[{"name":"only2","modules":[1,0]}]}`))
	f.Add(uint8(3), []byte(`{"addNets":[{"name":"dup","modules":[0,1]},{"name":"dup","modules":[0,1]}]}`))
	f.Add(uint8(2), []byte(`{"setPins":[{"name":"bridge","modules":[0,5]}],"setAreas":[{"module":0,"area":1e308}]}`))

	f.Fuzz(func(t *testing.T, sel uint8, data []byte) {
		var d Delta
		if err := json.Unmarshal(data, &d); err != nil {
			return
		}
		base := fuzzBase(sel)
		before := snap(base)
		baseFP := speccache.Fingerprint(base)

		h, reach, err := Apply(base, &d)

		if !snap(base).equal(before) {
			t.Fatalf("Apply mutated the base (sel=%d, delta=%s, err=%v)", sel, data, err)
		}
		if err != nil {
			return
		}
		if verr := h.Validate(); verr != nil {
			t.Fatalf("Apply returned an invalid netlist: %v (delta=%s)", verr, data)
		}
		if reach.Modules < 0 || reach.Modules > base.NumModules() || reach.Nets < 0 {
			t.Fatalf("implausible reach %+v", reach)
		}
		same := structEqual(base, h)
		fpSame := speccache.Fingerprint(h) == baseFP
		if same != fpSame {
			t.Fatalf("fingerprint changed=%v but content changed=%v (delta=%s)", !fpSame, !same, data)
		}
	})
}
