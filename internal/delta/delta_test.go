package delta

import (
	"strings"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/speccache"
)

// testBase builds a 6-module base netlist:
//
//	a: {0,1}  b: {1,2,3}  c: {3,4}  d: {4,5}
func testBase(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder()
	b.AddModules(6)
	for _, net := range []struct {
		name string
		mods []int
	}{
		{"a", []int{0, 1}}, {"b", []int{1, 2, 3}}, {"c", []int{3, 4}}, {"d", []int{4, 5}},
	} {
		if err := b.AddNet(net.name, net.mods...); err != nil {
			t.Fatalf("AddNet(%s): %v", net.name, err)
		}
	}
	return b.Build()
}

// snapshot captures the observable content of a hypergraph so tests can
// assert Apply left the base untouched.
type snapshot struct {
	names, netNames []string
	nets            [][]int
	areas           []float64
	fp              string
}

func snap(h *hypergraph.Hypergraph) snapshot {
	s := snapshot{
		names:    append([]string(nil), h.Names...),
		netNames: append([]string(nil), h.NetNames...),
		fp:       speccache.Fingerprint(h),
	}
	for _, net := range h.Nets {
		s.nets = append(s.nets, append([]int(nil), net...))
	}
	for i := 0; i < h.NumModules(); i++ {
		s.areas = append(s.areas, h.Area(i))
	}
	return s
}

func (s snapshot) equal(o snapshot) bool {
	if len(s.names) != len(o.names) || len(s.nets) != len(o.nets) || s.fp != o.fp {
		return false
	}
	for i := range s.names {
		if s.names[i] != o.names[i] || s.areas[i] != o.areas[i] {
			return false
		}
	}
	for i := range s.nets {
		if s.netNames[i] != o.netNames[i] || len(s.nets[i]) != len(o.nets[i]) {
			return false
		}
		for j := range s.nets[i] {
			if s.nets[i][j] != o.nets[i][j] {
				return false
			}
		}
	}
	return true
}

func TestApplyEmptyDeltaKeepsFingerprint(t *testing.T) {
	base := testBase(t)
	h, reach, err := Apply(base, &Delta{})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if reach.Modules != 0 || reach.Nets != 0 || reach.Frac != 0 {
		t.Fatalf("empty delta reach = %+v, want zero", reach)
	}
	if got, want := speccache.Fingerprint(h), speccache.Fingerprint(base); got != want {
		t.Fatalf("empty delta changed fingerprint: %s != %s", got, want)
	}
	if !(&Delta{}).Empty() || (&Delta{AddNets: []NetChange{{}}}).Empty() {
		t.Fatal("Empty() misreports")
	}
}

func TestApplyEdits(t *testing.T) {
	base := testBase(t)
	before := snap(base)
	d := &Delta{
		RemoveNets: []string{"a"},
		SetPins:    []NetChange{{Name: "c", Modules: []int{3, 5, 5, 2}}},
		AddNets:    []NetChange{{Name: "e", Modules: []int{0, 5}}},
		SetAreas:   []AreaChange{{Module: 0, Area: 2.5}},
	}
	h, reach, err := Apply(base, d)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !snap(base).equal(before) {
		t.Fatal("Apply mutated the base")
	}
	if h.NumNets() != 4 {
		t.Fatalf("NumNets = %d, want 4", h.NumNets())
	}
	// Net order: surviving base nets (b, c', d) then additions (e).
	wantNames := []string{"b", "c", "d", "e"}
	for i, w := range wantNames {
		if h.NetNames[i] != w {
			t.Fatalf("NetNames[%d] = %q, want %q", i, h.NetNames[i], w)
		}
	}
	// setPins canonicalized: sorted, deduped.
	cNet := h.Nets[1]
	if len(cNet) != 3 || cNet[0] != 2 || cNet[1] != 3 || cNet[2] != 5 {
		t.Fatalf("repinned c = %v, want [2 3 5]", cNet)
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("result invalid: %v", err)
	}
	if h.Area(0) != 2.5 || h.Area(1) != 1 {
		t.Fatalf("areas = %v, %v, want 2.5, 1", h.Area(0), h.Area(1))
	}
	// Reach: nets a (mods 0,1), c old {3,4} + new {2,3,5}, e {0,5}, and
	// area change on 0 → modules {0,1,2,3,4,5} = 6; nets = 3.
	if reach.Nets != 3 || reach.Modules != 6 {
		t.Fatalf("reach = %+v, want Nets=3 Modules=6", reach)
	}
	if speccache.Fingerprint(h) == speccache.Fingerprint(base) {
		t.Fatal("edit did not change the fingerprint")
	}
}

func TestApplyUnitAreaNormalization(t *testing.T) {
	base := testBase(t)
	// Setting an area to the default 1 must not flip HasAreas (and so
	// must not change the fingerprint).
	h, reach, err := Apply(base, &Delta{SetAreas: []AreaChange{{Module: 2, Area: 1}}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if h.HasAreas() {
		t.Fatal("all-unit areas were materialized")
	}
	if reach.Modules != 0 {
		t.Fatalf("no-op area change counted in reach: %+v", reach)
	}
	if speccache.Fingerprint(h) != speccache.Fingerprint(base) {
		t.Fatal("no-op area change moved the fingerprint")
	}

	// And resetting a real area back to all-ones drops the areas array.
	withAreas, _, err := Apply(base, &Delta{SetAreas: []AreaChange{{Module: 2, Area: 4}}})
	if err != nil {
		t.Fatalf("Apply(areas): %v", err)
	}
	if !withAreas.HasAreas() {
		t.Fatal("area change lost")
	}
	back, _, err := Apply(withAreas, &Delta{SetAreas: []AreaChange{{Module: 2, Area: 1}}})
	if err != nil {
		t.Fatalf("Apply(reset): %v", err)
	}
	if back.HasAreas() {
		t.Fatal("reset-to-unit areas were materialized")
	}
	if speccache.Fingerprint(back) != speccache.Fingerprint(base) {
		t.Fatal("round-trip areas did not restore the fingerprint")
	}
}

func TestApplyErrors(t *testing.T) {
	base := testBase(t)
	before := snap(base)
	cases := []struct {
		name string
		d    *Delta
		want string
	}{
		{"remove-missing", &Delta{RemoveNets: []string{"zz"}}, "no such net"},
		{"remove-twice", &Delta{RemoveNets: []string{"a", "a"}}, "removed twice"},
		{"setpins-missing", &Delta{SetPins: []NetChange{{Name: "zz", Modules: []int{0, 1}}}}, "no such net"},
		{"setpins-removed", &Delta{RemoveNets: []string{"a"}, SetPins: []NetChange{{Name: "a", Modules: []int{0, 1}}}}, "also removed"},
		{"setpins-twice", &Delta{SetPins: []NetChange{{Name: "a", Modules: []int{0, 1}}, {Name: "a", Modules: []int{0, 2}}}}, "repinned twice"},
		{"setpins-short", &Delta{SetPins: []NetChange{{Name: "a", Modules: []int{1, 1}}}}, "at least 2 distinct"},
		{"setpins-range", &Delta{SetPins: []NetChange{{Name: "a", Modules: []int{0, 6}}}}, "out of range"},
		{"add-collision", &Delta{AddNets: []NetChange{{Name: "b", Modules: []int{0, 1}}}}, "collides"},
		{"add-empty-name", &Delta{AddNets: []NetChange{{Name: "", Modules: []int{0, 1}}}}, "empty net name"},
		{"add-short", &Delta{AddNets: []NetChange{{Name: "x", Modules: []int{3}}}}, "at least 2 distinct"},
		{"area-range", &Delta{SetAreas: []AreaChange{{Module: -1, Area: 1}}}, "out of range"},
		{"area-nonpositive", &Delta{SetAreas: []AreaChange{{Module: 0, Area: 0}}}, "positive finite"},
		{"area-nan", &Delta{SetAreas: []AreaChange{{Module: 0, Area: nan()}}}, "positive finite"},
		{"area-twice", &Delta{SetAreas: []AreaChange{{Module: 0, Area: 1}, {Module: 0, Area: 2}}}, "set twice"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Apply(base, tc.d)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Apply err = %v, want substring %q", err, tc.want)
			}
		})
	}
	if !snap(base).equal(before) {
		t.Fatal("a failed Apply mutated the base")
	}
	if _, _, err := Apply(nil, &Delta{}); err == nil {
		t.Fatal("Apply(nil base) succeeded")
	}
}

// TestApplyAmbiguousName: a duplicated net name may not be edited, but
// uninvolved duplicates don't block other edits.
func TestApplyAmbiguousName(t *testing.T) {
	names := []string{"m0", "m1", "m2"}
	nets := [][]int{{0, 1}, {1, 2}, {0, 2}}
	h, err := hypergraph.FromParts(names, nets, []string{"x", "x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Apply(h, &Delta{RemoveNets: []string{"x"}}); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("ambiguous removal err = %v", err)
	}
	if _, _, err := Apply(h, &Delta{RemoveNets: []string{"y"}}); err != nil {
		t.Fatalf("unambiguous removal failed: %v", err)
	}
}

func TestRemoveThenReAddSameNetRestoresFingerprint(t *testing.T) {
	base := testBase(t)
	h, _, err := Apply(base, &Delta{
		RemoveNets: []string{"b"},
		AddNets:    []NetChange{{Name: "b2", Modules: []int{1, 2, 3}}},
	})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	// Same net structure under a different name: names are excluded from
	// the fingerprint, so content-addressing must see the same netlist.
	if speccache.Fingerprint(h) != speccache.Fingerprint(base) {
		t.Fatal("structurally identical netlist got a different fingerprint")
	}
}

func nan() float64 {
	var z float64
	return z / z
}
