package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func tinyLab() *Lab {
	return NewLab(Config{
		Out:        &bytes.Buffer{},
		Scale:      0.04,
		Benchmarks: []string{"bm1", "prim1", "struct"},
	})
}

func output(l *Lab) string {
	return l.Config().Out.(*bytes.Buffer).String()
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Scale != 1 || c.D != 10 || len(c.Benchmarks) != 12 {
		t.Errorf("defaults wrong: %+v", c)
	}
}

func TestTable1(t *testing.T) {
	l := tinyLab()
	if err := Table1(l); err != nil {
		t.Fatal(err)
	}
	out := output(l)
	for _, want := range []string{"Table 1", "bm1", "prim1", "struct", "882/902/2910"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
}

func TestTable2(t *testing.T) {
	l := tinyLab()
	if err := Table2(l); err != nil {
		t.Fatal(err)
	}
	out := output(l)
	for _, want := range []string{"Table 2", "#1 gain", "#2 cosine", "sum"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 output missing %q", want)
		}
	}
}

func TestTable3(t *testing.T) {
	l := tinyLab()
	if err := Table3(l); err != nil {
		t.Fatal(err)
	}
	out := output(l)
	for _, want := range []string{"Table 3", "d=1", "d=10"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 output missing %q", want)
		}
	}
}

func TestTable4(t *testing.T) {
	l := tinyLab()
	if err := Table4(l); err != nil {
		t.Fatal(err)
	}
	out := output(l)
	for _, want := range []string{"Table 4", "RSB", "KP", "SFC", "MELO", "improvement"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 4 output missing %q", want)
		}
	}
}

func TestTable5(t *testing.T) {
	l := tinyLab()
	if err := Table5(l); err != nil {
		t.Fatal(err)
	}
	out := output(l)
	for _, want := range []string{"Table 5", "SB", "PARABOLI", "MELO", "t(d=2)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 5 output missing %q", want)
		}
	}
}

func TestFigures(t *testing.T) {
	l := tinyLab()
	if err := Figure1(l); err != nil {
		t.Fatal(err)
	}
	if err := Figure2(l); err != nil {
		t.Fatal(err)
	}
	out := output(l)
	for _, want := range []string{"Figure 1", "reduction is exact", "Figure 2", "ordering:"} {
		if !strings.Contains(out, want) {
			t.Errorf("figures output missing %q", want)
		}
	}
}

func TestTableExtensions(t *testing.T) {
	l := tinyLab()
	if err := TableExtensions(l); err != nil {
		t.Fatal(err)
	}
	out := output(l)
	for _, want := range []string{"Extensions", "MELO", "VKP", "Barnes", "HL"} {
		if !strings.Contains(out, want) {
			t.Errorf("extensions table missing %q", want)
		}
	}
}

func TestLabCaching(t *testing.T) {
	l := tinyLab()
	h1, err := l.Netlist("bm1")
	if err != nil {
		t.Fatal(err)
	}
	h2, err := l.Netlist("bm1")
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("Netlist not cached")
	}
	r1, err := l.MeloOrdering("bm1", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := l.MeloOrdering("bm1", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("MeloOrdering not cached")
	}
}

func TestLabUnknownBenchmark(t *testing.T) {
	l := tinyLab()
	if _, err := l.Netlist("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestTableRenderGolden(t *testing.T) {
	var buf bytes.Buffer
	tb := &table{header: []string{"a", "bb"}}
	tb.addRow("x", "1")
	tb.addRow("long", "2")
	tb.render(&buf, "Title")
	want := "Title\n" +
		"----------\n" +
		"a     bb  \n" +
		"----------\n" +
		"x     1   \n" +
		"long  2   \n" +
		"----------\n"
	if buf.String() != want {
		t.Errorf("render mismatch:\ngot:\n%q\nwant:\n%q", buf.String(), want)
	}
}

func TestAvgImprovement(t *testing.T) {
	got := avgImprovement([]float64{10, 20}, []float64{9, 10})
	// (10-9)/10 = 10%, (20-10)/20 = 50% -> avg 30%.
	if got < 29.99 || got > 30.01 {
		t.Errorf("avgImprovement = %v, want 30", got)
	}
	if avgImprovement(nil, nil) != 0 {
		t.Error("empty input should give 0")
	}
	if avgImprovement([]float64{0}, []float64{1}) != 0 {
		t.Error("zero baseline should be skipped")
	}
}
