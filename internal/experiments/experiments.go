// Package experiments regenerates every table and figure of the paper's
// evaluation section on the synthesized benchmark suite:
//
//	Table 1 — benchmark characteristics
//	Table 2 — MELO weighting-scheme comparison
//	Table 3 — effect of the number of eigenvectors d
//	Table 4 — multi-way Scaled Cost: MELO vs RSB, KP, SFC
//	Table 5 — balanced 2-way cuts: MELO vs SB and the PARABOLI substitute,
//	          with MELO ordering+split runtimes for d = 2 and d = 10
//	Figure 1 — the graph → vector-partitioning reduction on an example
//	Figure 2 — a step-by-step MELO trace
//
// Absolute values differ from the paper (synthetic circuits, different
// eigensolver); EXPERIMENTS.md records the paper-vs-measured comparison
// and the qualitative shapes that must hold.
package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/dprp"
	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/melo"
	"repro/internal/resilience"
)

// Config controls an experiment run.
type Config struct {
	// Ctx bounds the whole run; a cancelled or expired context aborts
	// eigensolves, orderings and DP splits at their next iteration
	// boundary. Nil means context.Background().
	Ctx context.Context
	// Out receives the rendered table.
	Out io.Writer
	// Scale shrinks every benchmark (1 = the published sizes). The
	// qualitative comparisons hold at any scale; small scales run in
	// seconds.
	Scale float64
	// D is MELO's eigenvector count (the paper's experiments use 10).
	D int
	// Benchmarks restricts the suite (nil = all of Table 1).
	Benchmarks []string
}

// WithDefaults fills unset fields: Background context, Scale 1, D 10,
// all benchmarks.
func (c Config) WithDefaults() Config {
	if c.Ctx == nil {
		c.Ctx = context.Background()
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.D <= 0 {
		c.D = 10
	}
	if len(c.Benchmarks) == 0 {
		for _, b := range bench.Table1 {
			c.Benchmarks = append(c.Benchmarks, b.Name)
		}
	}
	return c
}

// Lab caches the expensive artifacts — generated netlists, clique-model
// graphs, eigendecompositions and MELO orderings — across experiments in
// one run. The caches are safe for concurrent use; the table drivers
// parallelize across benchmarks (distinct benchmarks never share cache
// keys, so the occasional duplicated computation race is impossible).
type Lab struct {
	cfg    Config
	mu     sync.Mutex
	nets   map[string]*hypergraph.Hypergraph
	graphs map[string]*graph.Graph         // key: name/model
	decs   map[string]*eigen.Decomposition // key: name/model/d
	orders map[string]*melo.Result         // key: name/d/scheme
}

// NewLab creates a Lab for the given config.
func NewLab(cfg Config) *Lab {
	return &Lab{
		cfg:    cfg.WithDefaults(),
		nets:   map[string]*hypergraph.Hypergraph{},
		graphs: map[string]*graph.Graph{},
		decs:   map[string]*eigen.Decomposition{},
		orders: map[string]*melo.Result{},
	}
}

// Config returns the lab's (defaulted) configuration.
func (l *Lab) Config() Config { return l.cfg }

// Netlist returns the (cached) synthesized hypergraph for a benchmark.
func (l *Lab) Netlist(name string) (*hypergraph.Hypergraph, error) {
	l.mu.Lock()
	if h, ok := l.nets[name]; ok {
		l.mu.Unlock()
		return h, nil
	}
	l.mu.Unlock()
	c, err := bench.Lookup(name)
	if err != nil {
		return nil, err
	}
	h, err := bench.Generate(c.Scaled(l.cfg.Scale))
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.nets[name] = h
	l.mu.Unlock()
	return h, nil
}

// Graph returns the (cached) clique-model graph for a benchmark.
func (l *Lab) Graph(name string, model graph.CliqueModel) (*graph.Graph, error) {
	key := fmt.Sprintf("%s/%v", name, model)
	l.mu.Lock()
	if g, ok := l.graphs[key]; ok {
		l.mu.Unlock()
		return g, nil
	}
	l.mu.Unlock()
	h, err := l.Netlist(name)
	if err != nil {
		return nil, err
	}
	g, err := graph.FromHypergraph(h, model, 0)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.graphs[key] = g
	l.mu.Unlock()
	return g, nil
}

// Decomposition returns the (cached) d+1 smallest Laplacian eigenpairs of
// a benchmark's clique-model graph.
func (l *Lab) Decomposition(name string, model graph.CliqueModel, d int) (*eigen.Decomposition, error) {
	key := fmt.Sprintf("%s/%v/%d", name, model, d)
	l.mu.Lock()
	if dec, ok := l.decs[key]; ok {
		l.mu.Unlock()
		return dec, nil
	}
	// A larger cached decomposition can serve smaller d.
	for dd := d + 1; dd <= d+16; dd++ {
		if dec, ok := l.decs[fmt.Sprintf("%s/%v/%d", name, model, dd)]; ok {
			l.mu.Unlock()
			return dec, nil
		}
	}
	l.mu.Unlock()
	g, err := l.Graph(name, model)
	if err != nil {
		return nil, err
	}
	want := d + 1
	if want > g.N() {
		want = g.N()
	}
	sol, err := resilience.SolveEigen(l.cfg.Ctx, g.Laplacian(), want, resilience.EigenPolicy{})
	if err != nil {
		if cerr := l.cfg.Ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, fmt.Errorf("experiments: %s eigensolve: %v", name, err)
	}
	dec := sol.Dec
	l.mu.Lock()
	l.decs[key] = dec
	l.mu.Unlock()
	return dec, nil
}

// MeloOrdering builds (and caches) a MELO ordering with the given d and
// scheme; orderings are independent of the split count k, so one ordering
// serves every downstream split.
func (l *Lab) MeloOrdering(name string, d int, scheme melo.Scheme) (*melo.Result, error) {
	key := fmt.Sprintf("%s/%d/%v", name, d, scheme)
	l.mu.Lock()
	if r, ok := l.orders[key]; ok {
		l.mu.Unlock()
		return r, nil
	}
	l.mu.Unlock()
	g, err := l.Graph(name, graph.PartitioningSpecific)
	if err != nil {
		return nil, err
	}
	dec, err := l.Decomposition(name, graph.PartitioningSpecific, d)
	if err != nil {
		return nil, err
	}
	opts := melo.NewOptions()
	opts.D = d
	opts.Scheme = scheme
	r, err := melo.OrderCtx(l.cfg.Ctx, g, dec, opts)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.orders[key] = r
	l.mu.Unlock()
	return r, nil
}

// MeloBestScaledCost splits the cached MELO orderings for every scheme
// and every d in ds, returning the best Scaled Cost — the paper's Table 4
// protocol ("the best observed from splitting each of the ten
// orderings"). For k = 2 the split is the best ratio-cut split over all
// positions (Scaled Cost at k = 2 IS the ratio cut, and RSB enjoys the
// same unrestricted split); for k > 2 DP-RP is used with the widened
// restricted-partitioning bounds [n/(6k), 3n/k].
func (l *Lab) MeloBestScaledCost(name string, ds []int, k int) (float64, error) {
	h, err := l.Netlist(name)
	if err != nil {
		return 0, err
	}
	n := h.NumModules()
	lo := n / (6 * k)
	if lo < 1 {
		lo = 1
	}
	hi := 3 * n / k
	if hi > n {
		hi = n
	}
	best := 0.0
	first := true
	for _, d := range ds {
		for s := melo.Scheme(0); s < melo.NumSchemes; s++ {
			res, err := l.MeloOrdering(name, d, s)
			if err != nil {
				return 0, err
			}
			var sc float64
			if k == 2 {
				split, err := dprp.BestRatioCutSplit(h, res.Order)
				if err != nil {
					return 0, err
				}
				sc = split.Cut // ratio cut == Scaled Cost for k = 2
			} else {
				dp, err := dprp.PartitionCtx(l.cfg.Ctx, h, res.Order, dprp.Options{K: k, MinSize: lo, MaxSize: hi})
				if err != nil {
					return 0, err
				}
				sc = dp.ScaledCost
			}
			if first || sc < best {
				best = sc
				first = false
			}
		}
	}
	return best, nil
}

// MeloScaledCost builds a MELO ordering and splits it k ways with DP-RP,
// returning the Scaled Cost.
func (l *Lab) MeloScaledCost(name string, d int, scheme melo.Scheme, k int) (float64, error) {
	h, err := l.Netlist(name)
	if err != nil {
		return 0, err
	}
	res, err := l.MeloOrdering(name, d, scheme)
	if err != nil {
		return 0, err
	}
	dp, err := dprp.PartitionCtx(l.cfg.Ctx, h, res.Order, dprp.Options{K: k})
	if err != nil {
		return 0, err
	}
	return dp.ScaledCost, nil
}

// MeloBalancedCut builds a MELO ordering and returns the best >= minFrac
// balanced split's net cut, together with the ordering+split runtime
// (excluding the eigensolve, matching the paper's Table 5 runtimes).
func (l *Lab) MeloBalancedCut(name string, d int, scheme melo.Scheme, minFrac float64) (float64, time.Duration, error) {
	h, err := l.Netlist(name)
	if err != nil {
		return 0, 0, err
	}
	g, err := l.Graph(name, graph.PartitioningSpecific)
	if err != nil {
		return 0, 0, err
	}
	dec, err := l.Decomposition(name, graph.PartitioningSpecific, d)
	if err != nil {
		return 0, 0, err
	}
	opts := melo.NewOptions()
	opts.D = d
	opts.Scheme = scheme
	start := time.Now()
	res, err := melo.OrderCtx(l.cfg.Ctx, g, dec, opts)
	if err != nil {
		return 0, 0, err
	}
	split, err := dprp.BestBalancedSplit(h, res.Order, minFrac)
	if err != nil {
		return 0, 0, err
	}
	return split.Cut, time.Since(start), nil
}

// forEachBenchmark evaluates fn for every configured benchmark
// concurrently (bounded by GOMAXPROCS) and returns the results in suite
// order. The first error wins.
func forEachBenchmark[T any](l *Lab, fn func(name string) (T, error)) ([]T, error) {
	names := l.cfg.Benchmarks
	results := make([]T, len(names))
	errs := make([]error, len(names))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = fn(name)
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// table is a minimal fixed-width table renderer.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) render(w io.Writer, title string) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	fmt.Fprintln(w, title)
	line := make([]byte, 0, total)
	for i := 0; i < total; i++ {
		line = append(line, '-')
	}
	fmt.Fprintln(w, string(line))
	printRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s", widths[i]+2, c)
		}
		fmt.Fprintln(w)
	}
	printRow(t.header)
	fmt.Fprintln(w, string(line))
	for _, r := range t.rows {
		printRow(r)
	}
	fmt.Fprintln(w, string(line))
}

// geomean-free average improvement helper: mean over rows of
// (base − x)/base in percent.
func avgImprovement(base, x []float64) float64 {
	if len(base) == 0 {
		return 0
	}
	var s float64
	n := 0
	for i := range base {
		if base[i] > 0 {
			s += (base[i] - x[i]) / base[i] * 100
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}
