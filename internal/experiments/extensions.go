package experiments

import (
	"fmt"

	"repro/internal/barnes"
	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/hl"
	"repro/internal/linalg"
	"repro/internal/melo"
	"repro/internal/partition"
	"repro/internal/vecpart"
	"repro/internal/vkp"
)

// TableExtensions compares the repository's beyond-the-paper partitioners
// against MELO on 4-way Scaled Cost: the direct vector k-partitioning
// heuristic (vkp, the paper's proposed future work), Barnes'
// transportation rounding, and Hendrickson–Leland median splitting
// (k = 2² = 4). Lower is better.
func TableExtensions(l *Lab) error {
	cfg := l.Config()
	const k = 4
	t := &table{header: []string{"circuit", "MELO", "VKP", "Barnes", "HL(2^2)"}}
	type row struct{ melo, vkp, barnes, hl float64 }
	rows, err := forEachBenchmark(l, func(name string) (row, error) {
		var out row
		h, err := l.Netlist(name)
		if err != nil {
			return out, err
		}
		g, err := l.Graph(name, graph.PartitioningSpecific)
		if err != nil {
			return out, err
		}
		dec, err := l.Decomposition(name, graph.PartitioningSpecific, cfg.D)
		if err != nil {
			return out, err
		}

		// MELO ordering + DP-RP (single scheme-#1 d=10 ordering: this
		// table compares algorithms under equal effort, not the Table 4
		// best-of protocol).
		meloSC, err := l.MeloScaledCost(name, cfg.D, melo.SchemeGain, k)
		if err != nil {
			return out, err
		}
		out.melo = meloSC

		// VKP on the same eigenvectors.
		used := cfg.D
		if used > dec.D()-1 {
			used = dec.D() - 1
		}
		trimmed, err := trimTrivialPairs(dec, used)
		if err != nil {
			return out, err
		}
		H := vecpart.ChooseH(g.TotalDegree(), append([]float64{0}, trimmed.Values...), g.N())
		vectors, err := vecpart.FromDecomposition(trimmed, used, vecpart.MaxSum, H)
		if err != nil {
			return out, err
		}
		vres, err := vkp.Partition(vectors, vkp.Options{K: k})
		if err != nil {
			return out, err
		}
		out.vkp = partition.ScaledCost(h, vres.Partition)

		// Barnes.
		bp, err := barnes.Partition(g, barnes.Options{K: k, SignFlips: true})
		if err != nil {
			return out, err
		}
		out.barnes = partition.ScaledCost(h, bp)

		// Hendrickson–Leland with d = 2 → 4 clusters.
		hp, err := hl.Partition(dec, 2)
		if err != nil {
			return out, err
		}
		out.hl = partition.ScaledCost(h, hp)
		return out, nil
	})
	if err != nil {
		return err
	}
	var meloV, vkpV, barnesV, hlV []float64
	for bi, name := range cfg.Benchmarks {
		r := rows[bi]
		meloV = append(meloV, r.melo)
		vkpV = append(vkpV, r.vkp)
		barnesV = append(barnesV, r.barnes)
		hlV = append(hlV, r.hl)
		t.addRow(name,
			fmt.Sprintf("%.4f", r.melo*1e4),
			fmt.Sprintf("%.4f", r.vkp*1e4),
			fmt.Sprintf("%.4f", r.barnes*1e4),
			fmt.Sprintf("%.4f", r.hl*1e4))
	}
	t.addRow("MELO avg improvement", "-",
		fmt.Sprintf("%+.1f%%", avgImprovement(vkpV, meloV)),
		fmt.Sprintf("%+.1f%%", avgImprovement(barnesV, meloV)),
		fmt.Sprintf("%+.1f%%", avgImprovement(hlV, meloV)))
	t.render(cfg.Out, "Extensions: 4-way Scaled Cost (x1e4) — MELO vs direct vector k-partitioning vs Barnes vs Hendrickson-Leland")
	return nil
}

// trimTrivialPairs drops the trivial eigenpair and keeps d pairs.
func trimTrivialPairs(dec *eigen.Decomposition, d int) (*eigen.Decomposition, error) {
	if dec.D() < d+1 {
		return nil, fmt.Errorf("experiments: decomposition has %d pairs, need %d", dec.D(), d+1)
	}
	full, err := dec.Truncate(d + 1)
	if err != nil {
		return nil, err
	}
	n := full.Vectors.Rows
	out := linalg.NewDense(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			out.Set(i, j, full.Vectors.At(i, j+1))
		}
	}
	vals := make([]float64, d)
	copy(vals, full.Values[1:])
	return &eigen.Decomposition{Values: vals, Vectors: out}, nil
}
