package experiments

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/dprp"
	"repro/internal/graph"
	"repro/internal/kp"
	"repro/internal/melo"
	"repro/internal/paraboli"
	"repro/internal/partition"
	"repro/internal/rsb"
	"repro/internal/sb"
	"repro/internal/sfc"
)

// Table1 prints the benchmark characteristics (name, modules, nets, pins)
// of the generated suite next to the published targets.
func Table1(l *Lab) error {
	cfg := l.Config()
	t := &table{header: []string{"circuit", "modules", "nets", "pins", "avg net", "max net", "published (M/N/P)"}}
	for _, name := range cfg.Benchmarks {
		h, err := l.Netlist(name)
		if err != nil {
			return err
		}
		c, err := bench.Lookup(name)
		if err != nil {
			return err
		}
		s := h.Stats()
		t.addRow(name,
			fmt.Sprintf("%d", s.Modules),
			fmt.Sprintf("%d", s.Nets),
			fmt.Sprintf("%d", s.Pins),
			fmt.Sprintf("%.2f", s.AvgNetSize),
			fmt.Sprintf("%d", s.MaxNetSize),
			fmt.Sprintf("%d/%d/%d", c.Modules, c.Nets, c.Pins),
		)
	}
	t.render(cfg.Out, fmt.Sprintf("Table 1: benchmark circuit characteristics (scale %.2f)", cfg.Scale))
	return nil
}

// Table2 compares MELO's four weighting schemes: Scaled Cost (×10⁴) of
// 10-way DP-RP partitionings from d-eigenvector orderings.
func Table2(l *Lab) error {
	cfg := l.Config()
	const k = 10
	t := &table{header: []string{"circuit", "#1 gain", "#2 cosine", "#3 norm gain", "#4 projection", "best"}}
	sums := make([]float64, melo.NumSchemes)
	rows, err := forEachBenchmark(l, func(name string) ([]float64, error) {
		vals := make([]float64, melo.NumSchemes)
		for s := melo.Scheme(0); s < melo.NumSchemes; s++ {
			sc, err := l.MeloScaledCost(name, cfg.D, s, k)
			if err != nil {
				return nil, fmt.Errorf("table2 %s scheme %v: %v", name, s, err)
			}
			vals[s] = sc
		}
		return vals, nil
	})
	if err != nil {
		return err
	}
	for bi, name := range cfg.Benchmarks {
		vals := rows[bi]
		row := []string{name}
		best := melo.SchemeGain
		for s := melo.Scheme(0); s < melo.NumSchemes; s++ {
			sums[s] += vals[s]
			row = append(row, fmt.Sprintf("%.4f", vals[s]*1e4))
			if vals[s] < vals[best] {
				best = s
			}
		}
		row = append(row, best.String())
		t.addRow(row...)
	}
	avgRow := []string{"sum"}
	for s := 0; s < melo.NumSchemes; s++ {
		avgRow = append(avgRow, fmt.Sprintf("%.4f", sums[s]*1e4))
	}
	avgRow = append(avgRow, "")
	t.addRow(avgRow...)
	t.render(cfg.Out, fmt.Sprintf("Table 2: weighting schemes — Scaled Cost (x1e4) of %d-way DP-RP splits, d=%d", k, cfg.D))
	return nil
}

// Table3 varies the number of eigenvectors d and reports the Scaled Cost
// (×10⁴) of 10-way DP-RP splits of scheme-#1 MELO orderings. The paper's
// point: quality improves as d grows.
func Table3(l *Lab) error {
	cfg := l.Config()
	ds := []int{1, 2, 3, 5, 7, 10}
	const k = 10
	header := []string{"circuit"}
	for _, d := range ds {
		header = append(header, fmt.Sprintf("d=%d", d))
	}
	t := &table{header: header}
	sums := make([]float64, len(ds))
	rows, err := forEachBenchmark(l, func(name string) ([]float64, error) {
		vals := make([]float64, len(ds))
		for i, d := range ds {
			sc, err := l.MeloScaledCost(name, d, melo.SchemeGain, k)
			if err != nil {
				return nil, fmt.Errorf("table3 %s d=%d: %v", name, d, err)
			}
			vals[i] = sc
		}
		return vals, nil
	})
	if err != nil {
		return err
	}
	for bi, name := range cfg.Benchmarks {
		row := []string{name}
		for i := range ds {
			sums[i] += rows[bi][i]
			row = append(row, fmt.Sprintf("%.4f", rows[bi][i]*1e4))
		}
		t.addRow(row...)
	}
	row := []string{"sum"}
	for i := range ds {
		row = append(row, fmt.Sprintf("%.4f", sums[i]*1e4))
	}
	t.addRow(row...)
	t.render(cfg.Out, fmt.Sprintf("Table 3: effect of d — Scaled Cost (x1e4) of %d-way splits, scheme #1", k))
	return nil
}

// Table4 compares multi-way Scaled Cost (×10⁴) of MELO against RSB, KP
// and SFC for several k, and prints MELO's average improvement over each
// baseline (the paper reports +10.6%, +15.8% and +13.2% respectively).
func Table4(l *Lab) error {
	cfg := l.Config()
	ks := []int{2, 5, 10}
	t := &table{header: []string{"circuit", "k", "RSB", "KP", "SFC", "MELO"}}
	var rsbV, kpV, sfcV, meloV []float64
	type cell struct{ rsb, kp, sfc, melo float64 }
	rows, err := forEachBenchmark(l, func(name string) ([]cell, error) {
		h, err := l.Netlist(name)
		if err != nil {
			return nil, err
		}
		var cells []cell
		for _, k := range ks {
			// RSB with the partitioning-specific model (paper's choice).
			rp, err := rsb.Partition(h, rsb.Options{K: k, Model: graph.PartitioningSpecific})
			if err != nil {
				return nil, fmt.Errorf("table4 %s rsb k=%d: %v", name, k, err)
			}
			rsbSC := partition.ScaledCost(h, rp)

			// KP with the Frankle model (paper's choice for KP).
			decK, err := l.Decomposition(name, graph.Frankle, k)
			if err != nil {
				return nil, err
			}
			kpPart, err := kp.Partition(decK, kp.Options{K: k, MinSize: 2})
			if err != nil {
				return nil, fmt.Errorf("table4 %s kp k=%d: %v", name, k, err)
			}
			kpSC := partition.ScaledCost(h, kpPart)

			// SFC: Hilbert curve through the 2-eigenvector embedding,
			// split by DP-RP.
			decS, err := l.Decomposition(name, graph.PartitioningSpecific, 2)
			if err != nil {
				return nil, err
			}
			sfcOrder, err := sfc.Order(decS, sfc.Options{D: 2, Curve: sfc.Hilbert})
			if err != nil {
				return nil, fmt.Errorf("table4 %s sfc: %v", name, err)
			}
			var sfcSC float64
			if k == 2 {
				// Same unrestricted ratio-cut split every bipartitioner
				// gets (Scaled Cost at k = 2 is the ratio cut).
				split, err := dprp.BestRatioCutSplit(h, sfcOrder)
				if err != nil {
					return nil, fmt.Errorf("table4 %s sfc split: %v", name, err)
				}
				sfcSC = split.Cut
			} else {
				sfcDP, err := dprp.Partition(h, sfcOrder, dprp.Options{K: k})
				if err != nil {
					return nil, fmt.Errorf("table4 %s sfc dprp k=%d: %v", name, k, err)
				}
				sfcSC = sfcDP.ScaledCost
			}

			// MELO: best split over the orderings of all four schemes at
			// d ∈ {20, 15, 10, 5} — the paper reports the best over its
			// ten constructed orderings, and its thesis is to use as many
			// eigenvectors as practically possible. Descending d lets the
			// d=20 decomposition serve the smaller values from cache.
			meloSC, err := l.MeloBestScaledCost(name, []int{20, 15, cfg.D, 5}, k)
			if err != nil {
				return nil, fmt.Errorf("table4 %s melo k=%d: %v", name, k, err)
			}

			cells = append(cells, cell{rsb: rsbSC, kp: kpSC, sfc: sfcSC, melo: meloSC})
		}
		return cells, nil
	})
	if err != nil {
		return err
	}
	for bi, name := range cfg.Benchmarks {
		for ki, k := range ks {
			c := rows[bi][ki]
			rsbV = append(rsbV, c.rsb)
			kpV = append(kpV, c.kp)
			sfcV = append(sfcV, c.sfc)
			meloV = append(meloV, c.melo)
			t.addRow(name, fmt.Sprintf("%d", k),
				fmt.Sprintf("%.4f", c.rsb*1e4),
				fmt.Sprintf("%.4f", c.kp*1e4),
				fmt.Sprintf("%.4f", c.sfc*1e4),
				fmt.Sprintf("%.4f", c.melo*1e4))
		}
	}
	t.addRow("MELO avg improvement", "",
		fmt.Sprintf("%+.1f%%", avgImprovement(rsbV, meloV)),
		fmt.Sprintf("%+.1f%%", avgImprovement(kpV, meloV)),
		fmt.Sprintf("%+.1f%%", avgImprovement(sfcV, meloV)),
		"-")
	t.render(cfg.Out, "Table 4: multi-way Scaled Cost (x1e4) — RSB vs KP vs SFC vs MELO (paper: MELO +10.6%/+15.8%/+13.2%)")
	return nil
}

// Table5 compares balanced (45–55%) bipartition net cuts: SB, the
// PARABOLI substitute, and MELO (best of schemes #2–#4), plus MELO
// ordering+split runtimes for d = 2 and d = 10.
func Table5(l *Lab) error {
	cfg := l.Config()
	const minFrac = 0.45
	t := &table{header: []string{"circuit", "SB", "PARABOLI*", "MELO", "melo t(d=2)", "melo t(d=10)"}}
	var sbV, pbV, meloV []float64
	for _, name := range cfg.Benchmarks {
		h, err := l.Netlist(name)
		if err != nil {
			return err
		}
		g, err := l.Graph(name, graph.PartitioningSpecific)
		if err != nil {
			return err
		}
		dec, err := l.Decomposition(name, graph.PartitioningSpecific, cfg.D)
		if err != nil {
			return err
		}
		sbRes, err := sb.Bipartition(h, g, dec, minFrac)
		if err != nil {
			return fmt.Errorf("table5 %s sb: %v", name, err)
		}
		pbRes, err := paraboli.Bipartition(h, paraboli.Options{Model: graph.PartitioningSpecific, MinFrac: minFrac})
		if err != nil {
			return fmt.Errorf("table5 %s paraboli: %v", name, err)
		}
		// MELO: best over schemes #2, #3, #4 (the paper's Table 5 choice).
		best := 0.0
		first := true
		for _, s := range []melo.Scheme{melo.SchemeCosine, melo.SchemeNormalizedGain, melo.SchemeProjection} {
			cut, _, err := l.MeloBalancedCut(name, cfg.D, s, minFrac)
			if err != nil {
				return fmt.Errorf("table5 %s melo: %v", name, err)
			}
			if first || cut < best {
				best = cut
				first = false
			}
		}
		_, t2, err := l.MeloBalancedCut(name, 2, melo.SchemeGain, minFrac)
		if err != nil {
			return err
		}
		_, t10, err := l.MeloBalancedCut(name, 10, melo.SchemeGain, minFrac)
		if err != nil {
			return err
		}
		sbV = append(sbV, sbRes.Cut)
		pbV = append(pbV, pbRes.Cut)
		meloV = append(meloV, best)
		t.addRow(name,
			fmt.Sprintf("%.0f", sbRes.Cut),
			fmt.Sprintf("%.0f", pbRes.Cut),
			fmt.Sprintf("%.0f", best),
			t2.Round(100*1e3).String(),
			t10.Round(100*1e3).String())
	}
	t.addRow("MELO avg improvement",
		fmt.Sprintf("%+.1f%%", avgImprovement(sbV, meloV)),
		fmt.Sprintf("%+.1f%%", avgImprovement(pbV, meloV)),
		"-", "", "")
	t.render(cfg.Out, "Table 5: balanced (45%) bipartitioning net cuts — SB vs PARABOLI substitute vs MELO (best of schemes #2-#4)")
	return nil
}
