package experiments

import (
	"fmt"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/melo"
	"repro/internal/partition"
	"repro/internal/vecpart"
)

// Figure1 reproduces the paper's illustrative figure: a small example
// graph, its Laplacian spectrum, the vertex vectors of the
// vector-partitioning instance, and a numeric verification of the
// reduction identity Σ_h ‖Y_h‖² = n·H − f(P_k) on a sample partition.
func Figure1(l *Lab) error {
	w := l.Config().Out
	// A 6-vertex graph with two obvious triangles joined by one edge —
	// the canonical two-cluster example.
	g := graph.MustNew(6, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1},
		{U: 3, V: 4, W: 1}, {U: 4, V: 5, W: 1}, {U: 3, V: 5, W: 1},
		{U: 2, V: 3, W: 1},
	})
	dec, err := eigen.SymEig(g.LaplacianDense())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 1: the graph -> vector partitioning reduction")
	fmt.Fprintln(w, "graph: two triangles {0,1,2} and {3,4,5} joined by edge (2,3)")
	fmt.Fprintf(w, "Laplacian eigenvalues: ")
	for _, v := range dec.Values {
		fmt.Fprintf(w, "%.4f ", v)
	}
	fmt.Fprintln(w)

	n := g.N()
	H := dec.Values[n-1] + 0.5
	vecs, err := vecpart.FromDecomposition(dec, n, vecpart.MaxSum, H)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "vertex vectors y_i (d = n = %d, H = %.4f, scaling sqrt(H-lambda_j)):\n", n, H)
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "  y_%d = [", i)
		for j, v := range vecs.Row(i) {
			if j > 0 {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprintf(w, "%+.3f", v)
		}
		fmt.Fprintln(w, "]")
	}
	p := partition.MustNew([]int{0, 0, 0, 1, 1, 1}, 2)
	obj := vecs.SumSquaredSubsets(p)
	f := partition.F(g, p)
	fmt.Fprintf(w, "partition {0,1,2}|{3,4,5}: f(P) = %.4f (the single cut edge, counted twice)\n", f)
	fmt.Fprintf(w, "vector objective Sum_h ||Y_h||^2 = %.4f;  n*H - f = %.4f  (identical: the reduction is exact)\n",
		obj, float64(n)*H-f)
	bad := partition.MustNew([]int{0, 1, 0, 1, 0, 1}, 2)
	fmt.Fprintf(w, "a bad partition cuts f = %.4f and scores only %.4f — maximizing the vector objective IS minimizing the cut\n",
		partition.F(g, bad), vecs.SumSquaredSubsets(bad))
	fmt.Fprintln(w)
	return nil
}

// Figure2 walks MELO step by step on a small two-cluster netlist, tracing
// the inserted vertex, the running objective ‖Y_S‖² and the value of H —
// the runnable counterpart of the paper's pseudocode figure.
func Figure2(l *Lab) error {
	w := l.Config().Out
	g := graph.TwoClusters(6, 6, 1, 0.5, 3)
	dec, err := eigen.SmallestEigenpairs(g.Laplacian(), 4)
	if err != nil {
		return err
	}
	opts := melo.NewOptions()
	opts.D = 3
	opts.RecomputeEvery = 4
	res, err := melo.Order(g, dec, opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 2: MELO trace (two planted clusters of 6, one 0.5-weight bridge, d = 3)")
	fmt.Fprintf(w, "%-6s %-8s %-14s %-10s\n", "step", "vertex", "||Y_S||^2", "H")
	for t := range res.Order {
		fmt.Fprintf(w, "%-6d %-8d %-14.4f %-10.4f\n", t+1, res.Order[t], res.Objective[t], res.H[t])
	}
	fmt.Fprintf(w, "ordering: %v\n", res.Order)
	fmt.Fprintln(w, "note how all six vertices of one planted cluster are inserted before any of the other")
	fmt.Fprintln(w)
	return nil
}
