package rsb

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/partition"
)

// clusteredNetlist builds k planted clusters of the given size connected
// internally by 2-pin nets, with a few bridge nets between consecutive
// clusters.
func clusteredNetlist(t *testing.T, k, size int, seed int64) *hypergraph.Hypergraph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := hypergraph.NewBuilder()
	b.AddModules(k * size)
	for c := 0; c < k; c++ {
		base := c * size
		for i := 0; i < size-1; i++ {
			_ = b.AddNet("", base+i, base+i+1)
		}
		for extra := 0; extra < 2*size; extra++ {
			i, j := rng.Intn(size), rng.Intn(size)
			if i != j {
				_ = b.AddNet("", base+i, base+j)
			}
		}
	}
	for c := 0; c+1 < k; c++ {
		_ = b.AddNet("", c*size+rng.Intn(size), (c+1)*size+rng.Intn(size))
	}
	return b.Build()
}

func TestRSBRecoversPlantedClusters(t *testing.T) {
	k, size := 4, 12
	h := clusteredNetlist(t, k, size, 3)
	p, err := Partition(h, Options{K: k, Model: graph.PartitioningSpecific})
	if err != nil {
		t.Fatal(err)
	}
	if p.K != k {
		t.Fatalf("K = %d", p.K)
	}
	// Each planted cluster should land in a single output cluster.
	for c := 0; c < k; c++ {
		first := p.Assign[c*size]
		for i := 1; i < size; i++ {
			if p.Assign[c*size+i] != first {
				t.Errorf("planted cluster %d split across output clusters", c)
				break
			}
		}
	}
	// Only the k−1 bridge nets may be cut.
	if cut := partition.NetCut(h, p); cut > k-1 {
		t.Errorf("net cut = %d, want <= %d", cut, k-1)
	}
}

func TestRSBHandlesDisconnected(t *testing.T) {
	// Two disjoint planted pieces: zero-cut bipartition must be found.
	b := hypergraph.NewBuilder()
	b.AddModules(12)
	for i := 0; i < 5; i++ {
		_ = b.AddNet("", i, i+1)
	}
	for i := 6; i < 11; i++ {
		_ = b.AddNet("", i, i+1)
	}
	h := b.Build()
	p, err := Partition(h, Options{K: 2, Model: graph.Standard})
	if err != nil {
		t.Fatal(err)
	}
	if cut := partition.NetCut(h, p); cut != 0 {
		t.Errorf("cut = %d, want 0 for disconnected input", cut)
	}
}

func TestRSBValidation(t *testing.T) {
	h := clusteredNetlist(t, 2, 5, 1)
	if _, err := Partition(h, Options{K: 1}); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := Partition(h, Options{K: 99}); err == nil {
		t.Error("k>n accepted")
	}
}

func TestRSBEveryClusterNonEmpty(t *testing.T) {
	h := clusteredNetlist(t, 3, 10, 7)
	for k := 2; k <= 6; k++ {
		p, err := Partition(h, Options{K: k, Model: graph.Standard})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		for c, s := range p.Sizes() {
			if s == 0 {
				t.Errorf("k=%d: cluster %d empty", k, c)
			}
		}
	}
}
