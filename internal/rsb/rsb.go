// Package rsb implements recursive spectral bipartitioning (RSB), the
// multi-way baseline of the paper's Table 4: "RSB constructs ratio cut
// bipartitionings by choosing the best of all splits of the Fiedler
// vector, and the algorithm is iteratively applied to the largest
// remaining cluster" until k clusters exist.
package rsb

import (
	"context"
	"fmt"

	"repro/internal/dprp"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/partition"
	"repro/internal/resilience"
	"repro/internal/sb"
)

// Options configures RSB.
type Options struct {
	// K is the target number of clusters, >= 2.
	K int
	// Model is the clique model used when building each sub-hypergraph's
	// graph. The paper's Table 4 uses the partitioning-specific model.
	Model graph.CliqueModel
	// MaxNet drops nets larger than this during clique expansion
	// (0 keeps all nets).
	MaxNet int
	// MinSide rejects splits that leave a side with fewer modules; a
	// floor of 1 always applies. Keeps the recursion from shaving single
	// vertices when a cluster must still be split k−1 more times.
	MinSide int
}

// Partition runs RSB on the netlist h and returns a k-way partitioning.
func Partition(h *hypergraph.Hypergraph, opts Options) (*partition.Partition, error) {
	return PartitionCtx(context.Background(), h, opts)
}

// PartitionCtx is Partition with cooperative cancellation (checked
// before each bisection and inside every eigensolve) and with each
// bisection's eigensolve routed through the resilience retry ladder, so
// one hard-to-converge cluster does not fail the whole recursion.
func PartitionCtx(ctx context.Context, h *hypergraph.Hypergraph, opts Options) (*partition.Partition, error) {
	k := opts.K
	if k < 2 {
		return nil, fmt.Errorf("rsb: k = %d, want >= 2", k)
	}
	n := h.NumModules()
	if k > n {
		return nil, fmt.Errorf("rsb: k = %d exceeds %d modules", k, n)
	}
	assign := make([]int, n)
	// clusters[c] holds original module indices of cluster c.
	clusters := [][]int{allModules(n)}
	for len(clusters) < k {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Split the largest remaining cluster.
		largest := 0
		for c := 1; c < len(clusters); c++ {
			if len(clusters[c]) > len(clusters[largest]) {
				largest = c
			}
		}
		if len(clusters[largest]) < 2 {
			return nil, fmt.Errorf("rsb: cannot reach k = %d, largest remaining cluster has %d modules", k, len(clusters[largest]))
		}
		left, right, err := bisect(ctx, h, clusters[largest], opts)
		if err != nil {
			return nil, err
		}
		clusters[largest] = left
		clusters = append(clusters, right)
	}
	for c, members := range clusters {
		for _, m := range members {
			assign[m] = c
		}
	}
	return partition.New(assign, k)
}

// bisect splits one cluster (given as original module indices) by the best
// ratio-cut split of its Fiedler ordering, falling back to a component
// split when the induced sub-hypergraph is disconnected.
func bisect(ctx context.Context, h *hypergraph.Hypergraph, members []int, opts Options) (left, right []int, err error) {
	sub, back := h.Induce(members)
	order := make([]int, sub.NumModules())
	for i := range order {
		order[i] = i
	}
	if sub.NumModules() != len(members) {
		return nil, nil, fmt.Errorf("rsb: induced sub-hypergraph lost modules")
	}

	g, err := graph.FromHypergraph(sub, opts.Model, opts.MaxNet)
	if err != nil {
		return nil, nil, err
	}
	if comps := g.Components(); len(comps) > 1 {
		// Disconnected: the Fiedler vector is degenerate (λ2 = 0). Split
		// by grouping components greedily toward half the modules — the
		// cut is zero, which is optimal.
		order = order[:0]
		for _, c := range comps {
			order = append(order, c...)
		}
	} else {
		sol, derr := resilience.SolveEigen(ctx, g.Laplacian(), 2, resilience.EigenPolicy{})
		if derr != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, nil, cerr
			}
			return nil, nil, fmt.Errorf("rsb: eigensolve failed on %d-module cluster: %v", len(members), derr)
		}
		order, err = sb.FiedlerOrder(g, sol.Dec)
		if err != nil {
			return nil, nil, err
		}
	}

	res, err := dprp.BestRatioCutSplit(sub, order)
	if err != nil {
		return nil, nil, err
	}
	pos := res.Pos
	minSide := opts.MinSide
	if minSide < 1 {
		minSide = 1
	}
	if pos < minSide {
		pos = minSide
	}
	if pos > len(order)-minSide {
		pos = len(order) - minSide
	}
	for i, v := range order {
		orig := back[v]
		if i < pos {
			left = append(left, orig)
		} else {
			right = append(right, orig)
		}
	}
	return left, right, nil
}

func allModules(n int) []int {
	a := make([]int, n)
	for i := range a {
		a[i] = i
	}
	return a
}
