package maxcut

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/vecpart"
)

func TestValueKnownCuts(t *testing.T) {
	// K4: max cut = 4 (2+2 split cuts 4 of 6 edges).
	g := graph.Complete(4)
	p := partition.MustNew([]int{0, 0, 1, 1}, 2)
	if v := Value(g, p); v != 4 {
		t.Errorf("K4 2+2 cut = %v, want 4", v)
	}
	// Even cycle: alternating sides cut every edge.
	c := graph.Cycle(6)
	alt := partition.MustNew([]int{0, 1, 0, 1, 0, 1}, 2)
	if v := Value(c, alt); v != 6 {
		t.Errorf("C6 alternating cut = %v, want 6", v)
	}
}

func TestBruteForceKnownOptima(t *testing.T) {
	// K_n: max cut = floor(n/2)*ceil(n/2).
	for _, n := range []int{4, 5, 6} {
		_, v := BruteForce(graph.Complete(n))
		want := float64((n / 2) * ((n + 1) / 2))
		if v != want {
			t.Errorf("K%d max cut = %v, want %v", n, v, want)
		}
	}
	// Even cycle: n; odd cycle: n-1.
	if _, v := BruteForce(graph.Cycle(8)); v != 8 {
		t.Errorf("C8 max cut = %v, want 8", v)
	}
	if _, v := BruteForce(graph.Cycle(7)); v != 6 {
		t.Errorf("C7 max cut = %v, want 6", v)
	}
}

// TestReductionExactness: maximizing Σ‖Y_h‖² over the full-spectrum
// MinSum instance is exactly maximizing the cut (paper §3).
func TestReductionExactness(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := graph.RandomConnected(9, 14, seed)
		v, err := Instance(g, g.N())
		if err != nil {
			t.Fatal(err)
		}
		// For every bipartition: Σ‖Y_h‖² = f = 2·cut.
		n := g.N()
		for mask := 1; mask < 1<<(n-1); mask++ {
			assign := make([]int, n)
			for i := 0; i < n-1; i++ {
				assign[i] = (mask >> i) & 1
			}
			p := partition.MustNew(assign, 2)
			obj := v.SumSquaredSubsets(p)
			want := 2 * Value(g, p)
			if math.Abs(obj-want) > 1e-6*(1+want) {
				t.Fatalf("seed %d mask %d: obj %v, want 2·cut %v", seed, mask, obj, want)
			}
		}
		// Argmax coincidence.
		pVec, _ := vecpart.BestVectorPartition(maxSumView(v), 2)
		_, cutOpt := BruteForce(g)
		if got := Value(g, pVec); math.Abs(got-cutOpt) > 1e-9 {
			t.Errorf("seed %d: vector argmax cut %v, brute force %v", seed, got, cutOpt)
		}
	}
}

// maxSumView relabels a MinSum instance as MaxSum so that
// BestVectorPartition maximizes (the vectors are unchanged).
func maxSumView(v *vecpart.Vectors) *vecpart.Vectors {
	return &vecpart.Vectors{Y: v.Y, H: v.H, Lambda: v.Lambda, Scale: vecpart.MaxSum}
}

func TestProbeNearOptimal(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := graph.RandomConnected(14, 30, seed)
		p, cut, err := Probe(g, ProbeOptions{Probes: 200, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if p.K != 2 {
			t.Fatal("not a bipartition")
		}
		_, opt := BruteForce(g)
		if cut < 0.85*opt {
			t.Errorf("seed %d: probe cut %v below 85%% of optimum %v", seed, cut, opt)
		}
		if cut > opt+1e-9 {
			t.Errorf("seed %d: probe cut %v exceeds optimum %v", seed, cut, opt)
		}
	}
}

func TestGreedyIsLocalOptimum(t *testing.T) {
	g := graph.RandomConnected(40, 120, 5)
	p, cut := Greedy(g, 7)
	// No single flip may improve the cut.
	for i := 0; i < g.N(); i++ {
		flipped := append([]int(nil), p.Assign...)
		flipped[i] = 1 - flipped[i]
		q := partition.MustNew(flipped, 2)
		if Value(g, q) > cut+1e-9 {
			t.Fatalf("flipping %d improves the greedy cut", i)
		}
	}
	// Local optima of max-cut cut at least half the total weight.
	var total float64
	for _, e := range g.Edges() {
		total += e.W
	}
	if cut < total/2 {
		t.Errorf("greedy cut %v below half of total weight %v", cut, total)
	}
}

func TestProbeBeatsOrMatchesGreedyOnAverage(t *testing.T) {
	var probeSum, greedySum float64
	for seed := int64(0); seed < 5; seed++ {
		g := graph.RandomConnected(30, 90, seed+40)
		_, pc, err := Probe(g, ProbeOptions{Probes: 100, Seed: seed + 1})
		if err != nil {
			t.Fatal(err)
		}
		_, gc := Greedy(g, seed+1)
		probeSum += pc
		greedySum += gc
	}
	t.Logf("probe total %v, greedy total %v", probeSum, greedySum)
	if probeSum < 0.95*greedySum {
		t.Errorf("probe (%v) much worse than greedy (%v)", probeSum, greedySum)
	}
}

func TestInstanceValidation(t *testing.T) {
	g := graph.Path(5)
	if _, err := Instance(g, 0); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := Instance(g, 6); err == nil {
		t.Error("d>n accepted")
	}
	if _, _, err := Probe(graph.MustNew(1, nil), ProbeOptions{}); err == nil {
		t.Error("1-vertex graph accepted")
	}
}

func TestInstanceTruncationKeepsLargest(t *testing.T) {
	g := graph.RandomConnected(12, 30, 3)
	v, err := Instance(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v.D() != 4 {
		t.Fatalf("D = %d", v.D())
	}
	// The kept eigenvalues must be the largest ones (ascending order
	// preserved within the kept block).
	for j := 1; j < 4; j++ {
		if v.Lambda[j] < v.Lambda[j-1]-1e-12 {
			t.Error("kept eigenvalues not ascending")
		}
	}
}
