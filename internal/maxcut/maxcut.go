// Package maxcut implements the paper's §3 extension of the vector
// partitioning view to the maximum-cut problem [13][14][35]: with the
// MinSum scaling y_i[j] = sqrt(λ_j)·U[i][j] and all n eigenvectors,
// Σ_h ‖Y_h‖² = f(P_k) exactly, so MAXIMIZING the vector objective is
// maximizing the cut. The package provides the objective, the exact
// reduction (tested against brute force), a probe-based heuristic in the
// style of Goemans–Williamson random-hyperplane rounding [22], and a
// greedy local-improvement baseline.
package maxcut

import (
	"fmt"
	"math/rand"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/partition"
	"repro/internal/probe"
	"repro/internal/vecpart"
)

// Value returns the total weight of edges cut by the bipartition (each
// edge counted once) — the quantity the max-cut problem maximizes.
func Value(g *graph.Graph, p *partition.Partition) float64 {
	return partition.CutWeight(g, p)
}

// Instance builds the max-sum vector-partitioning instance for max-cut on
// g: MinSum-scaled vectors from the d smallest Laplacian eigenpairs
// (d = n makes the reduction exact; the LARGEST eigenvalues carry the
// most max-cut signal, so prefer d close to n for quality).
func Instance(g *graph.Graph, d int) (*vecpart.Vectors, error) {
	n := g.N()
	if d < 1 || d > n {
		return nil, fmt.Errorf("maxcut: d = %d out of range [1,%d]", d, n)
	}
	dec, err := eigen.SmallestEigenpairs(g.Laplacian(), n)
	if err != nil {
		return nil, err
	}
	// Keep the d eigenpairs with the LARGEST eigenvalues: under the
	// sqrt(λ) scaling they dominate the objective.
	if d < n {
		dec = columns(dec, n-d, n)
	}
	return vecpart.FromDecomposition(dec, dec.D(), vecpart.MinSum, 0)
}

// columns copies eigenpairs [lo, hi) of a decomposition.
func columns(dec *eigen.Decomposition, lo, hi int) *eigen.Decomposition {
	n := dec.Vectors.Rows
	d := hi - lo
	vecs := linalg.NewDense(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			vecs.Set(i, j, dec.Vectors.At(i, lo+j))
		}
	}
	vals := make([]float64, d)
	copy(vals, dec.Values[lo:hi])
	return &eigen.Decomposition{Values: vals, Vectors: vecs}
}

// ProbeOptions configures the probe heuristic.
type ProbeOptions struct {
	// D is the number of (largest-eigenvalue) eigenvectors (default n).
	D int
	// Probes is the number of random hyperplane probes (default 64).
	Probes int
	// Seed makes the search deterministic (default 1).
	Seed int64
}

// Probe runs the probe-vector max-cut heuristic: random directions in the
// vector space, each rounded to the bipartition maximizing the vector
// objective, best cut kept.
func Probe(g *graph.Graph, opts ProbeOptions) (*partition.Partition, float64, error) {
	n := g.N()
	if n < 2 {
		return nil, 0, fmt.Errorf("maxcut: need >= 2 vertices")
	}
	d := opts.D
	if d <= 0 || d > n {
		d = n
	}
	v, err := Instance(g, d)
	if err != nil {
		return nil, 0, err
	}
	res, err := probe.Bipartition(v, probe.Options{Probes: opts.Probes, Seed: opts.Seed})
	if err != nil {
		return nil, 0, err
	}
	// The probe maximizes Σ‖Y_h‖², which for the MinSum scaling is
	// (approximately, exactly at d = n) the doubled cut.
	p := res.Partition
	return p, Value(g, p), nil
}

// Greedy runs single-vertex local improvement from a random balanced
// start: move any vertex whose side change increases the cut, repeat to a
// local optimum. The classic 1/2-approximation baseline.
func Greedy(g *graph.Graph, seed int64) (*partition.Partition, float64) {
	n := g.N()
	rng := rand.New(rand.NewSource(seed))
	assign := make([]int, n)
	for i := range assign {
		assign[i] = rng.Intn(2)
	}
	// gain[i]: cut increase from flipping i = (same-side weight) −
	// (cross-side weight).
	improved := true
	for improved {
		improved = false
		for i := 0; i < n; i++ {
			var same, cross float64
			for _, h := range g.Adj(i) {
				if assign[h.To] == assign[i] {
					same += h.W
				} else {
					cross += h.W
				}
			}
			if same > cross {
				assign[i] = 1 - assign[i]
				improved = true
			}
		}
	}
	p := partition.MustNew(assign, 2)
	return p, Value(g, p)
}

// BruteForce returns the exact maximum cut by enumeration (n <= ~22).
func BruteForce(g *graph.Graph) (*partition.Partition, float64) {
	n := g.N()
	best := -1.0
	var bestAssign []int
	assign := make([]int, n)
	for mask := 0; mask < 1<<(n-1); mask++ { // fix vertex n-1 on side 0
		for i := 0; i < n-1; i++ {
			assign[i] = (mask >> i) & 1
		}
		assign[n-1] = 0
		p := partition.Partition{Assign: assign, K: 2}
		if v := Value(g, &p); v > best {
			best = v
			bestAssign = append([]int(nil), assign...)
		}
	}
	return partition.MustNew(bestAssign, 2), best
}
