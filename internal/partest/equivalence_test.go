package partest

import (
	"context"
	"math"
	"testing"

	spectral "repro"
	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/melo"
	"repro/internal/parallel"
	"repro/internal/vecpart"
)

var workerLevels = []int{1, 2, 3, 4, 7}

// TestMatVecSerialParallelExact: the row-sharded MatVec must reproduce
// the serial product bit for bit at every worker count, on real
// netlist-derived Laplacians (uneven row sparsity) and dense matrices.
func TestMatVecSerialParallelExact(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		h := RandomNetlist(400, 900, 6, seed)
		g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
		if err != nil {
			t.Fatal(err)
		}
		q := g.Laplacian()
		x := make([]float64, g.N())
		for i := range x {
			x[i] = math.Sin(float64(i)*0.7 + float64(seed))
		}
		want := make([]float64, g.N())
		q.MatVec(x, want)
		for _, w := range workerLevels {
			got := make([]float64, g.N())
			q.MatVecPar(x, got, w)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d workers %d: CSR row %d: got %v, want %v (bitwise)", seed, w, i, got[i], want[i])
				}
			}
		}
		dm := g.LaplacianDense()
		dwant := make([]float64, g.N())
		dm.MatVec(x, dwant)
		for _, w := range workerLevels {
			got := make([]float64, g.N())
			dm.MatVecPar(x, got, w)
			for i := range dwant {
				if got[i] != dwant[i] {
					t.Fatalf("seed %d workers %d: Dense row %d differs bitwise", seed, w, i)
				}
			}
		}
	}
}

// TestLanczosWorkerEquivalence: the full Lanczos solve is built from
// worker-invariant kernels, so its eigenpairs must agree across worker
// counts — eigenvalues to tiny tolerance and eigenvectors after sign
// canonicalization (the ±1 ambiguity is the only slack allowed).
func TestLanczosWorkerEquivalence(t *testing.T) {
	h := RandomNetlist(300, 700, 5, 11)
	g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := g.Laplacian()
	const d = 8
	ref, err := eigen.Lanczos(q, d, &eigen.LanczosOptions{Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	refVecs := CanonicalVectors(ref, 1e-8)
	for _, w := range workerLevels[1:] {
		dec, err := eigen.Lanczos(q, d, &eigen.LanczosOptions{Seed: 7, Workers: w})
		if err != nil {
			t.Fatalf("workers %d: %v", w, err)
		}
		if dec.D() != ref.D() {
			t.Fatalf("workers %d: got %d pairs, want %d", w, dec.D(), ref.D())
		}
		vecs := CanonicalVectors(dec, 1e-8)
		for j := 0; j < dec.D(); j++ {
			if dv := math.Abs(dec.Values[j] - ref.Values[j]); dv > 1e-12 {
				t.Errorf("workers %d: λ_%d differs by %g", w, j, dv)
			}
			for i := range vecs[j] {
				if dv := math.Abs(vecs[j][i] - refVecs[j][i]); dv > 1e-12 {
					t.Fatalf("workers %d: vector %d entry %d differs by %g", w, j, i, dv)
				}
			}
		}
	}
}

// TestLanczosSelectiveReorthInvariants: on the netlist corpus, the
// selective-reorthogonalization Lanczos (the default) must match the
// full-reorth solver's eigenvalues, keep true residuals under the
// semi-orthogonality floor O(√ε·‖A‖), and return an orthonormal Ritz
// basis — at every worker count, bit-identically across worker counts.
// This is the corpus-wide guarantee behind replacing full reorth in the
// hot path: selective trades per-step O(m·n) work for an ω-recurrence
// estimate, and this test is what keeps that trade honest.
func TestLanczosSelectiveReorthInvariants(t *testing.T) {
	const d = 8
	sqrtEps := math.Sqrt(0x1p-52)
	for _, seed := range []int64{3, 17, 29} {
		h := RandomNetlist(350, 800, 6, seed)
		g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
		if err != nil {
			t.Fatal(err)
		}
		q := g.Laplacian()
		// Gershgorin bound on ‖A‖ for the residual floor.
		scale := 1.0
		for i := 0; i < q.N; i++ {
			row := 0.0
			for k := q.RowPtr[i]; k < q.RowPtr[i+1]; k++ {
				row += math.Abs(q.Val[k])
			}
			if row > scale {
				scale = row
			}
		}

		full, err := eigen.Lanczos(q, d, &eigen.LanczosOptions{Seed: 7, Reorth: eigen.ReorthFull})
		if err != nil {
			t.Fatalf("seed %d full: %v", seed, err)
		}
		ref, err := eigen.Lanczos(q, d, &eigen.LanczosOptions{Seed: 7, Workers: 1})
		if err != nil {
			t.Fatalf("seed %d selective: %v", seed, err)
		}
		for j := 0; j < d; j++ {
			if dv := math.Abs(ref.Values[j] - full.Values[j]); dv > 1e-7*scale {
				t.Errorf("seed %d: λ_%d selective %g vs full %g (Δ %g)", seed, j, ref.Values[j], full.Values[j], dv)
			}
		}
		if r := eigen.Residual(q, ref); r > 100*sqrtEps*scale {
			t.Errorf("seed %d: selective residual %g exceeds semi-orthogonality floor %g", seed, r, 100*sqrtEps*scale)
		}
		for a := 0; a < d; a++ {
			va := ref.Vector(a)
			for b := a; b < d; b++ {
				dot := linalg.Dot(va, ref.Vector(b))
				want := 0.0
				if a == b {
					want = 1
				}
				if math.Abs(dot-want) > 1e-7 {
					t.Errorf("seed %d: Ritz basis not orthonormal: <u_%d,u_%d> = %g", seed, a, b, dot)
				}
			}
		}
		// Bitwise worker invariance of the selective path.
		for _, w := range []int{2, 4} {
			dec, err := eigen.Lanczos(q, d, &eigen.LanczosOptions{Seed: 7, Workers: w})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, w, err)
			}
			for j := 0; j < d; j++ {
				if dec.Values[j] != ref.Values[j] {
					t.Fatalf("seed %d workers %d: λ_%d differs bitwise", seed, w, j)
				}
				got, want := dec.Vector(j), ref.Vector(j)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("seed %d workers %d: vector %d entry %d differs bitwise", seed, w, j, i)
					}
				}
			}
		}
	}
}

// TestBlockKrylovWorkerEquivalence: same contract for the block solver,
// which exercises the parallel Rayleigh–Ritz projection as well.
func TestBlockKrylovWorkerEquivalence(t *testing.T) {
	g := graph.Cycle(64) // degenerate interior eigenvalues: block solver's home turf
	q := g.Laplacian()
	const d = 6
	ref, err := eigen.BlockKrylov(q, d, &eigen.BlockKrylovOptions{Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	refVecs := CanonicalVectors(ref, 1e-8)
	for _, w := range workerLevels[1:] {
		dec, err := eigen.BlockKrylov(q, d, &eigen.BlockKrylovOptions{Seed: 3, Workers: w})
		if err != nil {
			t.Fatalf("workers %d: %v", w, err)
		}
		vecs := CanonicalVectors(dec, 1e-8)
		for j := 0; j < d; j++ {
			if dv := math.Abs(dec.Values[j] - ref.Values[j]); dv > 1e-10 {
				t.Errorf("workers %d: λ_%d differs by %g", w, j, dv)
			}
			for i := range vecs[j] {
				if dv := math.Abs(vecs[j][i] - refVecs[j][i]); dv > 1e-10 {
					t.Fatalf("workers %d: vector %d entry %d differs by %g", w, j, i, dv)
				}
			}
		}
	}
}

// TestOrthogonalizeBlockWorkerInvariance: the block Gram–Schmidt helper
// is bitwise worker-invariant against a basis with realistic length.
func TestOrthogonalizeBlockWorkerInvariance(t *testing.T) {
	const n, m = 500, 24
	basis := make([][]float64, m)
	for b := range basis {
		v := make([]float64, n)
		for i := range v {
			v[i] = math.Cos(float64(b*n+i) * 0.13)
		}
		linalg.Normalize(v)
		basis[b] = v
	}
	mk := func() []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = math.Sin(float64(i) * 0.31)
		}
		return v
	}
	want := mk()
	linalg.OrthogonalizeBlock(want, basis, 1)
	for _, w := range workerLevels[1:] {
		got := mk()
		linalg.OrthogonalizeBlock(got, basis, w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers %d: entry %d differs bitwise: %v vs %v", w, i, got[i], want[i])
			}
		}
	}
}

// TestMELOOrderingWorkerEquivalence: the constructed ordering — the
// paper's primary artifact — must be identical at every worker count,
// for every weighting scheme, including the candidate-window path.
func TestMELOOrderingWorkerEquivalence(t *testing.T) {
	h := RandomNetlist(220, 500, 5, 23)
	g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := eigen.SmallestEigenpairs(g.Laplacian(), 9)
	if err != nil {
		t.Fatal(err)
	}
	for scheme := melo.SchemeGain; scheme <= melo.SchemeProjection; scheme++ {
		for _, window := range []int{0, 40} {
			base := melo.NewOptions()
			base.D = 8
			base.Scheme = scheme
			base.CandidateWindow = window
			base.Workers = 1
			ref, err := melo.Order(g, dec, base)
			if err != nil {
				t.Fatalf("scheme %v window %d: %v", scheme, window, err)
			}
			for _, w := range workerLevels[1:] {
				opts := base
				opts.Workers = w
				res, err := melo.Order(g, dec, opts)
				if err != nil {
					t.Fatalf("scheme %v window %d workers %d: %v", scheme, window, w, err)
				}
				for i := range ref.Order {
					if res.Order[i] != ref.Order[i] {
						t.Fatalf("scheme %v window %d workers %d: ordering diverges at position %d (%d vs %d)",
							scheme, window, w, i, res.Order[i], ref.Order[i])
					}
				}
			}
		}
	}
}

// TestOrderVectorsWorkerEquivalence: the direct vector-instance ordering
// entry point keeps the same identical-ordering contract.
func TestOrderVectorsWorkerEquivalence(t *testing.T) {
	h := RandomNetlist(150, 320, 5, 31)
	g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := FullDecomposition(g)
	if err != nil {
		t.Fatal(err)
	}
	hc := vecpart.ChooseH(g.TotalDegree(), dec.Values[:11], g.N())
	v, err := vecpart.FromDecomposition(dec, 11, vecpart.MaxSum, hc)
	if err != nil {
		t.Fatal(err)
	}
	for scheme := melo.SchemeGain; scheme <= melo.SchemeProjection; scheme++ {
		ref, err := melo.OrderVectorsWorkers(v, scheme, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerLevels[1:] {
			res, err := melo.OrderVectorsWorkers(v, scheme, w)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref.Order {
				if res.Order[i] != ref.Order[i] {
					t.Fatalf("scheme %v workers %d: ordering diverges at %d", scheme, w, i)
				}
			}
		}
	}
}

// TestPartitionParallelismEquivalence: end to end through the facade,
// Options.Parallelism must not change the chosen partition — for every
// method that consumes the parallel kernels and several K.
func TestPartitionParallelismEquivalence(t *testing.T) {
	h := RandomNetlist(160, 350, 5, 47)
	cases := []struct {
		method spectral.Method
		k      int
	}{
		{spectral.MELO, 2},
		{spectral.MELO, 4},
		{spectral.MELO, 8},
		{spectral.SB, 2},
		{spectral.KP, 4},
		{spectral.SFC, 4},
		{spectral.HL, 4},
	}
	for _, tc := range cases {
		ref, err := spectral.Partition(h, spectral.Options{K: tc.k, Method: tc.method, Parallelism: 1})
		if err != nil {
			t.Fatalf("%v/K=%d serial: %v", tc.method, tc.k, err)
		}
		for _, w := range []int{2, 4} {
			p, err := spectral.Partition(h, spectral.Options{K: tc.k, Method: tc.method, Parallelism: w})
			if err != nil {
				t.Fatalf("%v/K=%d parallelism %d: %v", tc.method, tc.k, w, err)
			}
			for i := range ref.Assign {
				if p.Assign[i] != ref.Assign[i] {
					t.Fatalf("%v/K=%d: parallelism %d changed module %d's cluster (%d vs %d)",
						tc.method, tc.k, w, i, p.Assign[i], ref.Assign[i])
				}
			}
		}
	}
}

// TestDisconnectedComponentsParallelism: concurrent per-component solves
// must merge to the same decomposition-driven partition as the serial
// component loop, including singleton components.
func TestDisconnectedComponentsParallelism(t *testing.T) {
	// Three islands: two random blobs and one isolated module.
	islands := DisconnectedNetlist(1, RandomNetlist(60, 120, 4, 5), RandomNetlist(40, 80, 4, 6))
	ref, err := spectral.Partition(islands, spectral.Options{K: 3, Method: spectral.MELO, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		p, err := spectral.Partition(islands, spectral.Options{K: 3, Method: spectral.MELO, Parallelism: w})
		if err != nil {
			t.Fatalf("parallelism %d: %v", w, err)
		}
		for i := range ref.Assign {
			if p.Assign[i] != ref.Assign[i] {
				t.Fatalf("parallelism %d changed module %d's cluster", w, i)
			}
		}
	}
}

// TestOrderModulesProcessDefaultEquivalence: OrderModulesCtx uses the
// process-wide parallel.Limit; changing the limit must not change the
// ordering.
func TestOrderModulesProcessDefaultEquivalence(t *testing.T) {
	defer parallel.SetLimit(0)
	h := RandomNetlist(180, 400, 5, 71)
	parallel.SetLimit(1)
	ref, err := spectral.OrderModulesCtx(context.Background(), h, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		parallel.SetLimit(w)
		order, err := spectral.OrderModulesCtx(context.Background(), h, 8, 0)
		if err != nil {
			t.Fatalf("limit %d: %v", w, err)
		}
		for i := range ref {
			if order[i] != ref[i] {
				t.Fatalf("limit %d: ordering diverges at position %d", w, i)
			}
		}
	}
}
