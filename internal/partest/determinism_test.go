package partest

import (
	"context"
	"testing"

	spectral "repro"
)

// TestOrderingByteIdentical: same seed and same parallelism must give a
// byte-identical ordering from OrderModulesCtx — the regression gate
// for any future kernel change that would sneak order-sensitive float
// accumulation into the pipeline (the graph-degree map-order bug this
// suite originally caught).
func TestOrderingByteIdentical(t *testing.T) {
	for _, seed := range []int64{0, 3} {
		h, err := spectral.GenerateBenchmarkSeeded("bm1", 1.0, seed)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := spectral.OrderModulesCtx(context.Background(), h, 6, 0)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 3; trial++ {
			order, err := spectral.OrderModulesCtx(context.Background(), h, 6, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref {
				if order[i] != ref[i] {
					t.Fatalf("seed %d trial %d: ordering diverges at position %d (%d vs %d)",
						seed, trial, i, order[i], ref[i])
				}
			}
		}
	}
}

// TestPartitionRunToRunStable: repeated Partition calls on the same
// netlist and options give the identical partition, at serial and
// parallel settings.
func TestPartitionRunToRunStable(t *testing.T) {
	h, err := spectral.GenerateBenchmarkSeeded("bm1", 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		opts := spectral.Options{K: 4, Method: spectral.MELO, Parallelism: par}
		ref, err := spectral.Partition(h, opts)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 3; trial++ {
			p, err := spectral.Partition(h, opts)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref.Assign {
				if p.Assign[i] != ref.Assign[i] {
					t.Fatalf("parallelism %d trial %d: module %d moved (%d vs %d)",
						par, trial, i, p.Assign[i], ref.Assign[i])
				}
			}
		}
	}
}

// TestBenchmarkPartitionParallelismInvariant: on the paper's seed
// benchmarks, the parallelism level must not change the chosen
// partition.
func TestBenchmarkPartitionParallelismInvariant(t *testing.T) {
	for _, name := range []string{"bm1", "prim1"} {
		scale := 1.0
		if name == "prim1" {
			scale = 0.4 // keep the suite fast; the contract is scale-free
		}
		h, err := spectral.GenerateBenchmarkSeeded(name, scale, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{2, 4} {
			ref, err := spectral.Partition(h, spectral.Options{K: k, Method: spectral.MELO, Parallelism: 1})
			if err != nil {
				t.Fatalf("%s K=%d: %v", name, k, err)
			}
			for _, par := range []int{2, 4, 8} {
				p, err := spectral.Partition(h, spectral.Options{K: k, Method: spectral.MELO, Parallelism: par})
				if err != nil {
					t.Fatalf("%s K=%d parallelism %d: %v", name, k, par, err)
				}
				for i := range ref.Assign {
					if p.Assign[i] != ref.Assign[i] {
						t.Fatalf("%s K=%d: parallelism %d moved module %d (%d vs %d)",
							name, k, par, i, p.Assign[i], ref.Assign[i])
					}
				}
			}
		}
	}
}
