// Package partest is the serial-vs-parallel equivalence and
// paper-invariant test harness for the parallel numerical kernels
// (internal/parallel and its users: linalg, eigen, melo, the facade).
//
// The kernels promise bitwise worker-invariance: every parallelism level
// produces the same floating-point results as the serial run. The
// equivalence suite holds them to it — orderings and partitions must be
// *identical* across worker counts, eigenpairs must match after sign
// canonicalization. The invariant suite checks the paper's exact
// identities (Theorem 1, Corollaries 5/6) on seeded random netlists, so
// a kernel change that silently altered the arithmetic would break an
// algebraic identity even if it stayed self-consistent.
package partest

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/linalg"
	"repro/internal/partition"
)

// RandomNetlist synthesizes a connected netlist with n modules and about
// extra random multi-pin nets, reproducibly from seed: a Hamiltonian
// chain of 2-pin nets guarantees connectivity, then extra nets of 2..maxPin
// pins are drawn uniformly. Distinct seeds give distinct instances.
func RandomNetlist(n, extra, maxPin int, seed int64) *hypergraph.Hypergraph {
	if maxPin < 2 {
		maxPin = 2
	}
	rng := rand.New(rand.NewSource(seed))
	b := hypergraph.NewBuilder()
	b.AddModules(n)
	for i := 0; i+1 < n; i++ {
		if err := b.AddNet(fmt.Sprintf("chain%d", i), i, i+1); err != nil {
			panic(err)
		}
	}
	for e := 0; e < extra; e++ {
		pins := 2 + rng.Intn(maxPin-1)
		if pins > n {
			pins = n
		}
		seen := make(map[int]bool, pins)
		mods := make([]int, 0, pins)
		for len(mods) < pins {
			m := rng.Intn(n)
			if !seen[m] {
				seen[m] = true
				mods = append(mods, m)
			}
		}
		if err := b.AddNet(fmt.Sprintf("rnd%d", e), mods...); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

// DisconnectedNetlist concatenates netlists into one with no nets
// between the parts, then appends `isolated` modules with no nets at
// all — the worst case for per-component eigensolving.
func DisconnectedNetlist(isolated int, parts ...*hypergraph.Hypergraph) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder()
	base := 0
	for pi, p := range parts {
		b.AddModules(p.NumModules())
		for ni, net := range p.Nets {
			mods := make([]int, len(net))
			for i, m := range net {
				mods[i] = base + m
			}
			if err := b.AddNet(fmt.Sprintf("p%d_%d", pi, ni), mods...); err != nil {
				panic(err)
			}
		}
		base += p.NumModules()
	}
	b.AddModules(isolated)
	return b.Build()
}

// RandomPartition assigns each of n elements to one of k clusters
// uniformly at random, reproducibly, forcing every cluster non-empty by
// seeding cluster h with element h.
func RandomPartition(n, k int, seed int64) *partition.Partition {
	rng := rand.New(rand.NewSource(seed))
	assign := make([]int, n)
	for i := range assign {
		if i < k {
			assign[i] = i
		} else {
			assign[i] = rng.Intn(k)
		}
	}
	return partition.MustNew(assign, k)
}

// CanonSign flips v in place so its first entry of magnitude > tol is
// positive, resolving the ±1 ambiguity of a unit eigenvector.
func CanonSign(v []float64, tol float64) {
	for _, x := range v {
		if math.Abs(x) > tol {
			if x < 0 {
				for i := range v {
					v[i] = -v[i]
				}
			}
			return
		}
	}
}

// CanonicalVectors returns a copy of the decomposition's eigenvector
// columns, each sign-canonicalized via CanonSign.
func CanonicalVectors(dec *eigen.Decomposition, tol float64) [][]float64 {
	out := make([][]float64, dec.D())
	for j := range out {
		v := linalg.CopyVec(dec.Vector(j))
		CanonSign(v, tol)
		out[j] = v
	}
	return out
}

// TraceXtQX computes trace(XᵀQX) for the indicator matrix X of p over
// the Laplacian of g — the right-hand side of Theorem 1 — using only
// Laplacian matvecs.
func TraceXtQX(g *graph.Graph, p *partition.Partition) float64 {
	q := g.Laplacian()
	n := g.N()
	x := make([]float64, n)
	qx := make([]float64, n)
	var trace float64
	for h := 0; h < p.K; h++ {
		for i := range x {
			x[i] = 0
		}
		for i, c := range p.Assign {
			if c == h {
				x[i] = 1
			}
		}
		q.MatVec(x, qx)
		trace += linalg.Dot(x, qx)
	}
	return trace
}

// FullDecomposition returns the complete dense eigendecomposition of g's
// Laplacian (all n pairs, ascending), the exact d = n setting the
// paper's Corollaries 5 and 6 hold in.
func FullDecomposition(g *graph.Graph) (*eigen.Decomposition, error) {
	return eigen.SymEig(g.LaplacianDense())
}
