package partest

import (
	"fmt"
	"testing"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/melo"
	"repro/internal/parallel"
)

// benchGraph synthesizes a large netlist-derived Laplacian once per
// size; n = 20000 is the ISSUE's speedup-measurement size.
var benchGraphs = map[int]*graph.Graph{}

func benchGraph(b *testing.B, n int) *graph.Graph {
	if g, ok := benchGraphs[n]; ok {
		return g
	}
	h := RandomNetlist(n, 5*n/2, 6, 99)
	g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
	if err != nil {
		b.Fatal(err)
	}
	benchGraphs[n] = g
	return g
}

func benchMatVec(b *testing.B, n, workers int) {
	g := benchGraph(b, n)
	q := g.Laplacian()
	x := make([]float64, g.N())
	for i := range x {
		x[i] = float64(i%13) * 0.3
	}
	y := make([]float64, g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.MatVecPar(x, y, workers)
	}
}

func BenchmarkMatVecSerial(b *testing.B)   { benchMatVec(b, 20000, 1) }
func BenchmarkMatVecParallel(b *testing.B) { benchMatVec(b, 20000, parallel.Limit()) }

func BenchmarkMatVecWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("n=20000/workers=%d", w), func(b *testing.B) {
			benchMatVec(b, 20000, w)
		})
	}
}

func benchLanczos(b *testing.B, workers int) {
	g := benchGraph(b, 4000)
	q := g.Laplacian()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eigen.Lanczos(q, 8, &eigen.LanczosOptions{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLanczosSerial(b *testing.B)   { benchLanczos(b, 1) }
func BenchmarkLanczosParallel(b *testing.B) { benchLanczos(b, parallel.Limit()) }

func benchMELO(b *testing.B, workers int) {
	g := benchGraph(b, 2000)
	dec, err := eigen.SmallestEigenpairs(g.Laplacian(), 9)
	if err != nil {
		b.Fatal(err)
	}
	opts := melo.NewOptions()
	opts.D = 8
	opts.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := melo.Order(g, dec, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMELOSerial(b *testing.B)   { benchMELO(b, 1) }
func BenchmarkMELOParallel(b *testing.B) { benchMELO(b, parallel.Limit()) }
