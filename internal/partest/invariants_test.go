package partest

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/vecpart"
)

// relClose reports |a−b| ≤ tol·max(1, |a|, |b|).
func relClose(a, b, tol float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// TestTheorem1TraceIdentity: Theorem 1 states f(P_k) = trace(XᵀQX) for
// the indicator matrix X of any partition — exactly, for any K and any
// clique model. Checked on 54 seeded random netlists (18 seeds × 3
// clique models) with K ∈ {2,4,8}.
func TestTheorem1TraceIdentity(t *testing.T) {
	models := []graph.CliqueModel{graph.Standard, graph.PartitioningSpecific, graph.Frankle}
	cases := 0
	for seed := int64(1); seed <= 18; seed++ {
		h := RandomNetlist(40+int(seed)*3, 90+int(seed)*5, 5, seed)
		for _, model := range models {
			g, err := graph.FromHypergraph(h, model, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{2, 4, 8} {
				p := RandomPartition(g.N(), k, seed*100+int64(k))
				f := partition.F(g, p)
				trace := TraceXtQX(g, p)
				if !relClose(f, trace, 1e-10) {
					t.Errorf("seed %d model %v K=%d: f(P_k) = %v but trace(XᵀQX) = %v", seed, model, k, f, trace)
				}
			}
			cases++
		}
	}
	if cases < 50 {
		t.Fatalf("only %d netlist cases exercised, want >= 50", cases)
	}
}

// TestMaxSumIdentity: with d = n, the MaxSum scaling satisfies
// Σ_h ‖Y_h‖² = n·H − f(P_k) (the max-sum duality the MELO objective
// maximizes), and MinSum satisfies Σ_h ‖Y_h‖² = f(P_k) (Corollary 5).
// PredictedCut must therefore reproduce f exactly under both scalings.
// Together with Theorem 1 this is the "cut three ways" agreement: edge
// scan, trace form, and vector-partitioning form.
func TestMaxSumIdentity(t *testing.T) {
	models := []graph.CliqueModel{graph.Standard, graph.PartitioningSpecific, graph.Frankle}
	cases := 0
	for seed := int64(1); seed <= 18; seed++ {
		h := RandomNetlist(25+int(seed)*2, 60+int(seed)*4, 5, 1000+seed)
		for _, model := range models {
			g, err := graph.FromHypergraph(h, model, 0)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := FullDecomposition(g)
			if err != nil {
				t.Fatal(err)
			}
			n := g.N()
			hval := vecpart.ChooseH(g.TotalDegree(), dec.Values, n) // d = n: any H ≥ λ_n
			maxsum, err := vecpart.FromDecomposition(dec, n, vecpart.MaxSum, hval)
			if err != nil {
				t.Fatal(err)
			}
			minsum, err := vecpart.FromDecomposition(dec, n, vecpart.MinSum, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{2, 4, 8} {
				p := RandomPartition(n, k, seed*31+int64(k))
				f := partition.F(g, p)
				obj := maxsum.SumSquaredSubsets(p)
				if !relClose(obj, float64(n)*hval-f, 1e-8) {
					t.Errorf("seed %d model %v K=%d: Σ‖Y_h‖² = %v, want n·H − f = %v", seed, model, k, obj, float64(n)*hval-f)
				}
				if pc := maxsum.PredictedCut(p); !relClose(pc, f, 1e-8) {
					t.Errorf("seed %d model %v K=%d: MaxSum PredictedCut = %v, f = %v", seed, model, k, pc, f)
				}
				if pc := minsum.PredictedCut(p); !relClose(pc, f, 1e-8) {
					t.Errorf("seed %d model %v K=%d: MinSum PredictedCut = %v, f = %v", seed, model, k, pc, f)
				}
				if trace := TraceXtQX(g, p); !relClose(trace, f, 1e-10) {
					t.Errorf("seed %d model %v K=%d: trace form %v disagrees with edge scan %v", seed, model, k, trace, f)
				}
			}
			cases++
		}
	}
	if cases < 50 {
		t.Fatalf("only %d netlist cases exercised, want >= 50", cases)
	}
}

// TestTruncatedMaxSumBound: with d < n and the truncation-balanced H,
// the MaxSum objective over the first d coordinates can only shed
// nonnegative per-coordinate mass: each retained coordinate contributes
// (H−λ_j)·(xᵀu_j)² ≥ 0, so the d-dimensional objective is monotonically
// nondecreasing in d for a fixed partition. This is the structural fact
// behind "the more eigenvectors, the better".
func TestTruncatedMaxSumBound(t *testing.T) {
	h := RandomNetlist(48, 110, 5, 9)
	g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := FullDecomposition(g)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	hval := vecpart.ChooseH(g.TotalDegree(), dec.Values, n)
	for _, k := range []int{2, 4} {
		p := RandomPartition(n, k, int64(k))
		prev := math.Inf(-1)
		for d := 1; d <= n; d++ {
			v, err := vecpart.FromDecomposition(dec, d, vecpart.MaxSum, hval)
			if err != nil {
				t.Fatal(err)
			}
			obj := v.SumSquaredSubsets(p)
			if obj < prev-1e-8 {
				t.Fatalf("K=%d: MaxSum objective decreased from %v to %v at d=%d", k, prev, obj, d)
			}
			prev = obj
		}
	}
}
