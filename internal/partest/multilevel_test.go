package partest

import (
	"testing"

	spectral "repro"
	"repro/internal/graph"
	"repro/internal/partition"
)

// mlOptions forces a real V-cycle on the small netlists these tests use:
// a low threshold guarantees several coarsening levels instead of a
// degenerate flat solve.
func mlOptions(k int, workers int) spectral.Options {
	return spectral.Options{K: k, Method: spectral.MultilevelMELO, CoarsenThreshold: 12, Parallelism: workers}
}

// TestMultilevelParallelismEquivalence: the multilevel V-cycle — matching,
// contraction, projection and the nested coarsest MELO solve — must
// produce bit-identical partitions at every worker count, for both the
// bipartition and k-way refinement paths.
func TestMultilevelParallelismEquivalence(t *testing.T) {
	for _, k := range []int{2, 4} {
		for _, seed := range []int64{3, 19} {
			h := RandomNetlist(180, 380, 5, seed)
			ref, err := spectral.Partition(h, mlOptions(k, 1))
			if err != nil {
				t.Fatalf("K=%d seed %d serial: %v", k, seed, err)
			}
			for _, w := range workerLevels[1:] {
				p, err := spectral.Partition(h, mlOptions(k, w))
				if err != nil {
					t.Fatalf("K=%d seed %d workers %d: %v", k, seed, w, err)
				}
				for i := range ref.Assign {
					if p.Assign[i] != ref.Assign[i] {
						t.Fatalf("K=%d seed %d: workers %d changed module %d's cluster (%d vs %d)",
							k, seed, w, i, p.Assign[i], ref.Assign[i])
					}
				}
			}
		}
	}
}

// TestMultilevelRunToRunStable: repeated runs in one process must agree
// exactly — the V-cycle has no hidden randomness (map iteration, seeds,
// time) anywhere in matching, contraction or refinement.
func TestMultilevelRunToRunStable(t *testing.T) {
	h := RandomNetlist(200, 420, 5, 41)
	ref, err := spectral.Partition(h, mlOptions(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		p, err := spectral.Partition(h, mlOptions(2, 0))
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		for i := range ref.Assign {
			if p.Assign[i] != ref.Assign[i] {
				t.Fatalf("run %d: module %d moved between identical runs", run, i)
			}
		}
	}
}

// TestMultilevelInvariantsOnSeededNetlists: on 50+ seeded random
// netlists the V-cycle must deliver a complete K-way assignment with no
// empty cluster, and its partition must satisfy the paper's Theorem 1
// identity f(P_k) = trace(XᵀQX) on the clique-model graph — the same
// "cut three ways" agreement the flat invariant suite checks, now for
// multilevel-produced partitions.
func TestMultilevelInvariantsOnSeededNetlists(t *testing.T) {
	if testing.Short() {
		t.Skip("50-netlist sweep")
	}
	cases := 0
	for seed := int64(1); seed <= 26; seed++ {
		h := RandomNetlist(60+int(seed)*2, 130+int(seed)*4, 5, 500+seed)
		for _, k := range []int{2, 3} {
			p, err := spectral.Partition(h, mlOptions(k, 0))
			if err != nil {
				t.Fatalf("seed %d K=%d: %v", seed, k, err)
			}
			if p.K != k || p.N() != h.NumModules() {
				t.Fatalf("seed %d K=%d: got K=%d N=%d", seed, k, p.K, p.N())
			}
			for c, s := range p.Sizes() {
				if s == 0 {
					t.Fatalf("seed %d K=%d: cluster %d empty", seed, k, c)
				}
			}
			if cut := partition.NetCut(h, p); cut < 0 || cut > h.NumNets() {
				t.Fatalf("seed %d K=%d: net cut %d outside [0, %d]", seed, k, cut, h.NumNets())
			}
			g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
			if err != nil {
				t.Fatal(err)
			}
			if f, tr := partition.F(g, p), TraceXtQX(g, p); !relClose(f, tr, 1e-10) {
				t.Errorf("seed %d K=%d: f(P_k) = %v but trace(XᵀQX) = %v", seed, k, f, tr)
			}
			cases++
		}
	}
	if cases < 50 {
		t.Fatalf("only %d multilevel cases exercised, want >= 50", cases)
	}
}
