package partest

import (
	"sync"
	"testing"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/melo"
	"repro/internal/parallel"
)

// The stress tests hammer the parallel kernels from many goroutines at
// once — each caller itself running a multi-worker kernel — so `go test
// -race ./internal/partest/` exercises nested parallelism, the shared
// process-wide limit, and concurrent reads of shared operands.

func TestStressConcurrentMatVec(t *testing.T) {
	h := RandomNetlist(800, 2000, 6, 13)
	g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := g.Laplacian()
	x := make([]float64, g.N())
	for i := range x {
		x[i] = float64(i%17) * 0.25
	}
	want := make([]float64, g.N())
	q.MatVec(x, want)

	var wg sync.WaitGroup
	errc := make(chan string, 16)
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			got := make([]float64, g.N())
			for rep := 0; rep < 20; rep++ {
				q.MatVecPar(x, got, 1+c%5)
				for i := range want {
					if got[i] != want[i] {
						select {
						case errc <- "concurrent MatVecPar diverged from serial":
						default:
						}
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Fatal(msg)
	}
}

func TestStressConcurrentOrderings(t *testing.T) {
	h := RandomNetlist(120, 260, 5, 17)
	g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := eigen.SmallestEigenpairs(g.Laplacian(), 7)
	if err != nil {
		t.Fatal(err)
	}
	base := melo.NewOptions()
	base.D = 6
	base.Workers = 1
	ref, err := melo.Order(g, dec, base)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan string, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			opts := base
			opts.Workers = 1 + c%4
			res, err := melo.Order(g, dec, opts)
			if err != nil {
				select {
				case errc <- err.Error():
				default:
				}
				return
			}
			for i := range ref.Order {
				if res.Order[i] != ref.Order[i] {
					select {
					case errc <- "concurrent ordering diverged":
					default:
					}
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Fatal(msg)
	}
}

func TestStressForUnderChangingLimit(t *testing.T) {
	// SetLimit races against running kernels by design (kernels resolve
	// their worker count at entry); results must stay correct throughout.
	defer parallel.SetLimit(0)
	const n = 5000
	src := make([]float64, n)
	for i := range src {
		src[i] = float64(i)
	}
	stop := make(chan struct{})
	var changer sync.WaitGroup
	changer.Add(1)
	go func() {
		defer changer.Done()
		for lim := 1; ; lim++ {
			select {
			case <-stop:
				return
			default:
				parallel.SetLimit(1 + lim%6)
			}
		}
	}()
	var wg sync.WaitGroup
	errc := make(chan string, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]float64, n)
			for rep := 0; rep < 50; rep++ {
				parallel.For(0, n, 64, func(_, lo, hi int) {
					for i := lo; i < hi; i++ {
						dst[i] = 2 * src[i]
					}
				})
				for i := range dst {
					if dst[i] != 2*src[i] {
						select {
						case errc <- "For dropped or corrupted an index under changing limit":
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	changer.Wait()
	close(errc)
	for msg := range errc {
		t.Fatal(msg)
	}
}

func TestStressConcurrentOrthogonalize(t *testing.T) {
	const n, m = 600, 16
	basis := make([][]float64, m)
	for b := range basis {
		v := make([]float64, n)
		for i := range v {
			v[i] = float64((b*31+i)%23) - 11
		}
		linalg.Normalize(v)
		basis[b] = v
	}
	mk := func() []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(i%19) * 0.4
		}
		return v
	}
	want := mk()
	linalg.OrthogonalizeBlock(want, basis, 1)
	var wg sync.WaitGroup
	errc := make(chan string, 12)
	for c := 0; c < 12; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				got := mk()
				linalg.OrthogonalizeBlock(got, basis, 1+c%5)
				for i := range want {
					if got[i] != want[i] {
						select {
						case errc <- "concurrent OrthogonalizeBlock diverged":
						default:
						}
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Fatal(msg)
	}
}
