package place

import (
	"math"
	"testing"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/hypergraph"
)

func TestHallAchievesEigenvalueSum(t *testing.T) {
	// Hall's theorem: the r-dimensional spectral placement has quadratic
	// wirelength Σ_{j=2..r+1} λ_j.
	g := graph.RandomConnected(30, 80, 3)
	dec, err := eigen.SmallestEigenpairs(g.Laplacian(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 3; r++ {
		p, err := Hall(g, r)
		if err != nil {
			t.Fatal(err)
		}
		got := QuadraticWirelength(g, p)
		var want float64
		for j := 1; j <= r; j++ {
			want += dec.Values[j]
		}
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Errorf("r=%d: wirelength %v, want Σλ = %v", r, got, want)
		}
	}
}

func TestHallIsOptimalAmongNormalizedPlacements(t *testing.T) {
	// Any competing zero-mean unit-norm 1-D placement must have
	// wirelength >= λ_2 (compare a few arbitrary ones).
	g := graph.RandomConnected(15, 35, 5)
	hall, err := Hall(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt := QuadraticWirelength(g, hall)
	n := g.N()
	for seed := 0; seed < 5; seed++ {
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(float64(i*(seed+2)) * 1.7)
		}
		// Normalize to zero mean, unit norm.
		var mean float64
		for _, v := range x {
			mean += v
		}
		mean /= float64(n)
		var ns float64
		for i := range x {
			x[i] -= mean
			ns += x[i] * x[i]
		}
		scale := 1 / math.Sqrt(ns)
		coords := make([][]float64, n)
		for i := range coords {
			coords[i] = []float64{x[i] * scale}
		}
		p := &Placement{Coords: coords, R: 1}
		if QuadraticWirelength(g, p) < opt-1e-9 {
			t.Fatalf("seed %d: competing placement beats Hall's optimum", seed)
		}
	}
}

func TestHallValidation(t *testing.T) {
	g := graph.Path(5)
	if _, err := Hall(g, 0); err == nil {
		t.Error("r=0 accepted")
	}
	if _, err := Hall(g, 5); err == nil {
		t.Error("r=n accepted")
	}
}

func TestWithPadsPathInterpolates(t *testing.T) {
	// A path with endpoints pinned at 0 and 1: the quadratic optimum
	// spaces the vertices evenly.
	n := 6
	g := graph.Path(n)
	p, err := WithPads(g, 1, []Pad{
		{Vertex: 0, At: []float64{0}},
		{Vertex: n - 1, At: []float64{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := float64(i) / float64(n-1)
		if math.Abs(p.At(i, 0)-want) > 1e-7 {
			t.Errorf("vertex %d at %v, want %v", i, p.At(i, 0), want)
		}
	}
}

func TestWithPads2D(t *testing.T) {
	// Grid corners pinned to the unit square: interior must stay inside
	// the square (discrete maximum principle) and wirelength must be
	// finite and small.
	g := graph.Grid(4, 4)
	p, err := WithPads(g, 2, []Pad{
		{Vertex: 0, At: []float64{0, 0}},
		{Vertex: 3, At: []float64{1, 0}},
		{Vertex: 12, At: []float64{0, 1}},
		{Vertex: 15, At: []float64{1, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.N(); i++ {
		for j := 0; j < 2; j++ {
			if p.At(i, j) < -1e-9 || p.At(i, j) > 1+1e-9 {
				t.Errorf("vertex %d dim %d at %v, outside [0,1]", i, j, p.At(i, j))
			}
		}
	}
}

func TestWithPadsValidation(t *testing.T) {
	g := graph.Path(4)
	if _, err := WithPads(g, 1, nil); err == nil {
		t.Error("no pads accepted")
	}
	if _, err := WithPads(g, 1, []Pad{{Vertex: 9, At: []float64{0}}}); err == nil {
		t.Error("out-of-range pad accepted")
	}
	if _, err := WithPads(g, 2, []Pad{{Vertex: 0, At: []float64{0}}}); err == nil {
		t.Error("wrong pad dimensionality accepted")
	}
	if _, err := WithPads(g, 1, []Pad{{Vertex: 0, At: []float64{0}}, {Vertex: 0, At: []float64{1}}}); err == nil {
		t.Error("duplicate pad accepted")
	}
}

func TestWirelengthMetrics(t *testing.T) {
	g := graph.Path(3)
	p := &Placement{Coords: [][]float64{{0}, {1}, {3}}, R: 1}
	if got := QuadraticWirelength(g, p); got != 1+4 {
		t.Errorf("quadratic = %v, want 5", got)
	}
	if got := LinearWirelength(g, p); got != 1+2 {
		t.Errorf("linear = %v, want 3", got)
	}
}

func TestHPWL(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddModules(3)
	_ = b.AddNet("", 0, 1, 2)
	h := b.Build()
	p := &Placement{Coords: [][]float64{{0, 0}, {2, 1}, {1, 5}}, R: 2}
	// Span x: 2, span y: 5.
	if got := HPWL(h, p); got != 7 {
		t.Errorf("HPWL = %v, want 7", got)
	}
}

func TestSpread(t *testing.T) {
	p := &Placement{Coords: [][]float64{{-2}, {0}, {2}}, R: 1}
	p.Spread()
	if p.At(0, 0) != 0 || p.At(1, 0) != 0.5 || p.At(2, 0) != 1 {
		t.Errorf("spread coords %v", p.Coords)
	}
	// Degenerate dimension stays put.
	q := &Placement{Coords: [][]float64{{3}, {3}}, R: 1}
	q.Spread()
	if q.At(0, 0) != 3 {
		t.Error("degenerate dimension modified")
	}
}
