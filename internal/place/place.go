// Package place implements the quadratic placement machinery the paper's
// methods descend from: Hall's r-dimensional spectral placement [27]
// (eigenvectors 2..r+1 of the Laplacian minimize quadratic wirelength
// among balanced placements), and constrained quadratic placement with
// fixed pads solved by conjugate gradients (the Charney–Plato [11] /
// PROUD-style formulation the PARABOLI substitute builds on).
//
// Wirelength metrics for evaluating placements of netlists are included:
// quadratic and linear graph wirelength, and half-perimeter wirelength
// (HPWL) over hypergraph nets.
package place

import (
	"fmt"
	"math"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/linalg"
)

// Placement holds r-dimensional coordinates, one row per vertex.
type Placement struct {
	Coords [][]float64 // Coords[i] has length R
	R      int
}

// At returns vertex i's coordinate in dimension j.
func (p *Placement) At(i, j int) float64 { return p.Coords[i][j] }

// N returns the number of placed vertices.
func (p *Placement) N() int { return len(p.Coords) }

// Hall computes Hall's r-dimensional spectral placement: coordinate j of
// vertex i is the i-th entry of Laplacian eigenvector j+1 (skipping the
// trivial constant). Among placements with zero mean and unit norm per
// dimension (and mutually orthogonal dimensions), it minimizes the total
// quadratic wirelength Σ_e w_e·‖x_u − x_v‖², achieving Σ_{j=2..r+1} λ_j.
func Hall(g *graph.Graph, r int) (*Placement, error) {
	n := g.N()
	if r < 1 || r >= n {
		return nil, fmt.Errorf("place: r = %d out of range [1,%d)", r, n)
	}
	dec, err := eigen.SmallestEigenpairs(g.Laplacian(), r+1)
	if err != nil {
		return nil, err
	}
	coords := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, r)
		for j := 0; j < r; j++ {
			row[j] = dec.Vectors.At(i, j+1)
		}
		coords[i] = row
	}
	return &Placement{Coords: coords, R: r}, nil
}

// QuadraticWirelength returns Σ_e w_e·‖x_u − x_v‖² for a placement.
func QuadraticWirelength(g *graph.Graph, p *Placement) float64 {
	var total float64
	for u := 0; u < g.N(); u++ {
		for _, h := range g.Adj(u) {
			if u < h.To {
				var d2 float64
				for j := 0; j < p.R; j++ {
					d := p.At(u, j) - p.At(h.To, j)
					d2 += d * d
				}
				total += h.W * d2
			}
		}
	}
	return total
}

// LinearWirelength returns Σ_e w_e·‖x_u − x_v‖₂.
func LinearWirelength(g *graph.Graph, p *Placement) float64 {
	var total float64
	for u := 0; u < g.N(); u++ {
		for _, h := range g.Adj(u) {
			if u < h.To {
				var d2 float64
				for j := 0; j < p.R; j++ {
					d := p.At(u, j) - p.At(h.To, j)
					d2 += d * d
				}
				total += h.W * math.Sqrt(d2)
			}
		}
	}
	return total
}

// HPWL returns the half-perimeter wirelength of a netlist placement: for
// each net, the sum over dimensions of the coordinate span of its pins.
func HPWL(h *hypergraph.Hypergraph, p *Placement) float64 {
	var total float64
	for _, net := range h.Nets {
		for j := 0; j < p.R; j++ {
			lo, hi := p.At(net[0], j), p.At(net[0], j)
			for _, m := range net[1:] {
				v := p.At(m, j)
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			total += hi - lo
		}
	}
	return total
}

// Pad fixes a vertex at a location during constrained placement.
type Pad struct {
	Vertex int
	At     []float64 // length R
}

// WithPads solves the constrained quadratic placement: minimize
// Σ_e w_e·‖x_u − x_v‖² with the pad vertices fixed. Each free coordinate
// dimension solves the SPD system L_ff·x_f = −L_fp·x_p by Jacobi-
// preconditioned CG, where f/p index free/pad vertices.
func WithPads(g *graph.Graph, r int, pads []Pad) (*Placement, error) {
	n := g.N()
	if r < 1 {
		return nil, fmt.Errorf("place: r = %d", r)
	}
	if len(pads) == 0 {
		return nil, fmt.Errorf("place: constrained placement needs at least one pad")
	}
	fixed := make([]bool, n)
	coords := make([][]float64, n)
	for i := range coords {
		coords[i] = make([]float64, r)
	}
	for _, pad := range pads {
		if pad.Vertex < 0 || pad.Vertex >= n {
			return nil, fmt.Errorf("place: pad vertex %d out of range", pad.Vertex)
		}
		if len(pad.At) != r {
			return nil, fmt.Errorf("place: pad at %v has %d coordinates, want %d", pad.Vertex, len(pad.At), r)
		}
		if fixed[pad.Vertex] {
			return nil, fmt.Errorf("place: vertex %d fixed twice", pad.Vertex)
		}
		fixed[pad.Vertex] = true
		copy(coords[pad.Vertex], pad.At)
	}

	// Index the free vertices.
	free := make([]int, 0, n)
	idx := make([]int, n)
	for i := 0; i < n; i++ {
		if !fixed[i] {
			idx[i] = len(free)
			free = append(free, i)
		}
	}
	if len(free) == 0 {
		return &Placement{Coords: coords, R: r}, nil
	}

	// Assemble L_ff (free-free block) once.
	var ts []linalg.Triplet
	diag := make([]float64, len(free))
	for fi, u := range free {
		ts = append(ts, linalg.Triplet{Row: fi, Col: fi, Val: g.Degree(u)})
		diag[fi] = g.Degree(u)
		for _, h := range g.Adj(u) {
			if !fixed[h.To] {
				ts = append(ts, linalg.Triplet{Row: fi, Col: idx[h.To], Val: -h.W})
			}
		}
	}
	lff := linalg.NewCSR(len(free), len(free), ts)

	// Solve per dimension: rhs_f = Σ_{pads p adjacent} w_up·x_p[j].
	for j := 0; j < r; j++ {
		b := make([]float64, len(free))
		for fi, u := range free {
			for _, h := range g.Adj(u) {
				if fixed[h.To] {
					b[fi] += h.W * coords[h.To][j]
				}
			}
		}
		x, _, err := eigen.CG(lff, b, nil, diag, &eigen.CGOptions{Tol: 1e-10})
		if err != nil {
			return nil, fmt.Errorf("place: dimension %d solve: %v", j, err)
		}
		for fi, u := range free {
			coords[u][j] = x[fi]
		}
	}
	return &Placement{Coords: coords, R: r}, nil
}

// Spread rescales each dimension of a placement to the unit interval —
// convenient before quantizing to rows/slots.
func (p *Placement) Spread() {
	for j := 0; j < p.R; j++ {
		lo, hi := p.At(0, j), p.At(0, j)
		for i := 1; i < p.N(); i++ {
			v := p.At(i, j)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		span := hi - lo
		if span == 0 {
			continue
		}
		for i := 0; i < p.N(); i++ {
			p.Coords[i][j] = (p.Coords[i][j] - lo) / span
		}
	}
}
