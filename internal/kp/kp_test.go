package kp

import (
	"testing"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/partition"
)

func decompose(t *testing.T, g *graph.Graph, d int) *eigen.Decomposition {
	t.Helper()
	dec, err := eigen.SmallestEigenpairs(g.Laplacian(), d)
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

// threeClusters returns a graph of three dense clusters weakly joined.
func threeClusters(size int) *graph.Graph {
	var edges []graph.Edge
	for c := 0; c < 3; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				edges = append(edges, graph.Edge{U: base + i, V: base + j, W: 1})
			}
		}
	}
	edges = append(edges,
		graph.Edge{U: size - 1, V: size, W: 0.05},
		graph.Edge{U: 2*size - 1, V: 2 * size, W: 0.05},
	)
	return graph.MustNew(3*size, edges)
}

func TestKPRecoversThreeClusters(t *testing.T) {
	size := 8
	g := threeClusters(size)
	dec := decompose(t, g, 3)
	p, err := Partition(dec, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Each planted cluster must map to one output cluster, and the three
	// output clusters must be distinct.
	labels := make([]int, 3)
	for c := 0; c < 3; c++ {
		labels[c] = p.Assign[c*size]
		for i := 1; i < size; i++ {
			if p.Assign[c*size+i] != labels[c] {
				t.Fatalf("planted cluster %d split: %v", c, p.Assign)
			}
		}
	}
	if labels[0] == labels[1] || labels[1] == labels[2] || labels[0] == labels[2] {
		t.Errorf("clusters merged: labels %v", labels)
	}
	if cut := partition.CutWeight(g, p); cut > 0.11 {
		t.Errorf("cut weight %v, want only the two weak bridges (0.1)", cut)
	}
}

func TestKPMinSizeRepair(t *testing.T) {
	g := graph.RandomConnected(30, 90, 4)
	dec := decompose(t, g, 4)
	p, err := Partition(dec, Options{K: 4, MinSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	for c, s := range p.Sizes() {
		if s < 3 {
			t.Errorf("cluster %d has %d < 3 vertices", c, s)
		}
	}
}

func TestKPValidation(t *testing.T) {
	g := graph.Path(10)
	dec := decompose(t, g, 3)
	if _, err := Partition(dec, Options{K: 1}); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := Partition(dec, Options{K: 5}); err == nil {
		t.Error("k > available pairs accepted")
	}
	if _, err := Partition(dec, Options{K: 3, MinSize: 5}); err == nil {
		t.Error("infeasible MinSize accepted")
	}
}

func TestKPNonEmptyClusters(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := graph.RandomConnected(40, 100, seed)
		for _, k := range []int{2, 3, 5} {
			dec := decompose(t, g, k)
			p, err := Partition(dec, Options{K: k})
			if err != nil {
				t.Fatalf("seed %d k=%d: %v", seed, k, err)
			}
			for c, s := range p.Sizes() {
				if s == 0 {
					t.Errorf("seed %d k=%d: cluster %d empty", seed, k, c)
				}
			}
		}
	}
}

// TestPartitionAreaFloor: on a heterogeneous-area netlist a count-
// balanced KP cluster can hold almost none of the area. With Areas and
// MinArea set, the repair pass must bring every cluster up to the area
// floor (the oracle harness held KP to the restricted-partitioning
// floor A/(2k) and caught the count-only accounting).
func TestPartitionAreaFloor(t *testing.T) {
	size := 6
	g := threeClusters(size)
	n := 3 * size
	dec := decompose(t, g, 3)
	// One cluster carries tiny modules: its natural cosine assignment is
	// count-fine but area-starved.
	areas := make([]float64, n)
	total := 0.0
	for i := range areas {
		areas[i] = 1
		if i >= 2*size {
			areas[i] = 0.05
		}
		total += areas[i]
	}
	floor := total / 6 // A/(2k), k = 3
	p, err := Partition(dec, Options{K: 3, MinSize: 1, Areas: areas, MinArea: floor})
	if err != nil {
		t.Fatal(err)
	}
	sums := make([]float64, 3)
	for i, c := range p.Assign {
		sums[c] += areas[i]
	}
	for c, s := range sums {
		if s < floor-1e-9 {
			t.Errorf("cluster %d area %g below floor %g (sums %v)", c, s, floor, sums)
		}
	}
}

// TestPartitionAreaValidation covers the new option's error paths.
func TestPartitionAreaValidation(t *testing.T) {
	g := threeClusters(4)
	dec := decompose(t, g, 2)
	if _, err := Partition(dec, Options{K: 2, MinArea: 1}); err == nil {
		t.Error("MinArea without Areas accepted")
	}
	bad := make([]float64, g.N())
	for i := range bad {
		bad[i] = 1
	}
	bad[0] = -1
	if _, err := Partition(dec, Options{K: 2, Areas: bad, MinArea: 1}); err == nil {
		t.Error("negative area accepted")
	}
	ok := make([]float64, g.N())
	for i := range ok {
		ok[i] = 1
	}
	if _, err := Partition(dec, Options{K: 2, Areas: ok, MinArea: 100}); err == nil {
		t.Error("infeasible MinArea accepted")
	}
}
