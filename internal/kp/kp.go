// Package kp reimplements the KP algorithm of Chan, Schlag and Zien [10]
// ("Spectral k-way ratio-cut partitioning and clustering"): embed each
// vertex as the i-th row of the n×k matrix of the k lowest Laplacian
// eigenvectors, treat rows as vectors, and cluster by directional cosines
// against k mutually-orthogonal prototype rows.
//
// KP is the paper's representative of the "k eigenvectors for a k-way
// partitioning" school that MELO's use of many eigenvectors argues
// against.
package kp

import (
	"fmt"
	"math"

	"repro/internal/eigen"
	"repro/internal/linalg"
	"repro/internal/partition"
)

// Options configures KP.
type Options struct {
	// K is the number of clusters, >= 2.
	K int
	// MinSize forces every cluster to hold at least this many vertices by
	// reassigning from the prototype-cosine ranking; 1 guarantees
	// non-empty clusters. Default 1 (0 is treated as 1).
	MinSize int
	// Areas optionally gives per-vertex areas (length n). With MinArea > 0
	// the repair pass balances cluster AREA sums, not module counts — on
	// heterogeneous-area netlists a count-balanced cluster can still hold
	// almost none of the area.
	Areas []float64
	// MinArea forces every cluster's area sum to at least this value by
	// the same weakest-affinity reassignment as MinSize. Requires Areas.
	MinArea float64
}

// Partition runs KP using the first K eigenpairs of dec (which must hold
// at least K pairs, computed from the graph's Laplacian).
func Partition(dec *eigen.Decomposition, opts Options) (*partition.Partition, error) {
	k := opts.K
	if k < 2 {
		return nil, fmt.Errorf("kp: k = %d, want >= 2", k)
	}
	if dec.D() < k {
		return nil, fmt.Errorf("kp: decomposition holds %d pairs, need %d", dec.D(), k)
	}
	n := dec.Vectors.Rows
	if k > n {
		return nil, fmt.Errorf("kp: k = %d exceeds n = %d", k, n)
	}
	minSize := opts.MinSize
	if minSize < 1 {
		minSize = 1
	}
	if minSize*k > n {
		return nil, fmt.Errorf("kp: MinSize %d infeasible for n=%d k=%d", minSize, n, k)
	}
	if opts.MinArea > 0 {
		if len(opts.Areas) != n {
			return nil, fmt.Errorf("kp: MinArea set but Areas has %d entries, need %d", len(opts.Areas), n)
		}
		total := 0.0
		for _, a := range opts.Areas {
			if a <= 0 {
				return nil, fmt.Errorf("kp: module areas must be positive")
			}
			total += a
		}
		if opts.MinArea*float64(k) > total {
			return nil, fmt.Errorf("kp: MinArea %g infeasible for total area %g, k=%d", opts.MinArea, total, k)
		}
	}

	// Rows of the n×k eigenvector matrix, normalized to the unit sphere.
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		r := make([]float64, k)
		for j := 0; j < k; j++ {
			r[j] = dec.Vectors.At(i, j)
		}
		if linalg.Normalize(r) == 0 {
			r[0] = 1 // degenerate all-zero row: park on the first axis
		}
		rows[i] = r
	}

	protos := chooseLinearlyIndependentPrototypes(rows, k)

	// Assign each vertex to the prototype with the largest |cosine|.
	assign := make([]int, n)
	cos := make([][]float64, n) // |cosine| per prototype, kept for repair
	for i := 0; i < n; i++ {
		cos[i] = make([]float64, k)
		best, bestC := 0, -1.0
		for c := 0; c < k; c++ {
			v := math.Abs(linalg.Dot(rows[i], rows[protos[c]]))
			cos[i][c] = v
			if v > bestC {
				bestC = v
				best = c
			}
		}
		assign[i] = best
	}

	repairSizes(assign, cos, k, minSize)
	if opts.MinArea > 0 {
		repairAreas(assign, cos, k, opts.Areas, opts.MinArea)
	}
	return partition.New(assign, k)
}

// chooseLinearlyIndependentPrototypes greedily picks k row indices that
// are maximally mutually orthogonal: the first is the row closest to the
// first axis direction; each subsequent choice minimizes its largest
// |cosine| to the already-chosen prototypes.
func chooseLinearlyIndependentPrototypes(rows [][]float64, k int) []int {
	n := len(rows)
	protos := make([]int, 0, k)
	// worst[i] tracks max |cos| of row i to the chosen prototypes.
	worst := make([]float64, n)
	first := 0
	// Seed: row with the largest leading coordinate magnitude (the
	// direction the trivial eigenvector dominates).
	bestLead := -1.0
	for i := 0; i < n; i++ {
		if a := math.Abs(rows[i][0]); a > bestLead {
			bestLead = a
			first = i
		}
	}
	protos = append(protos, first)
	for i := 0; i < n; i++ {
		worst[i] = math.Abs(linalg.Dot(rows[i], rows[first]))
	}
	for len(protos) < k {
		next, nextWorst := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if contains(protos, i) {
				continue
			}
			if worst[i] < nextWorst {
				nextWorst = worst[i]
				next = i
			}
		}
		protos = append(protos, next)
		for i := 0; i < n; i++ {
			if c := math.Abs(linalg.Dot(rows[i], rows[next])); c > worst[i] {
				worst[i] = c
			}
		}
	}
	return protos
}

// repairSizes moves the weakest-affinity members of oversized clusters
// into undersized ones until every cluster holds at least minSize
// vertices.
func repairSizes(assign []int, cos [][]float64, k, minSize int) {
	sizes := make([]int, k)
	for _, c := range assign {
		sizes[c]++
	}
	for {
		deficit := -1
		for c := 0; c < k; c++ {
			if sizes[c] < minSize {
				deficit = c
				break
			}
		}
		if deficit == -1 {
			return
		}
		// Take the vertex from a donor cluster (size > minSize) with the
		// best affinity to the deficit cluster.
		best, bestScore := -1, math.Inf(-1)
		for i, c := range assign {
			if c == deficit || sizes[c] <= minSize {
				continue
			}
			if s := cos[i][deficit]; s > bestScore {
				bestScore = s
				best = i
			}
		}
		if best == -1 {
			return // nothing movable; leave as is
		}
		sizes[assign[best]]--
		assign[best] = deficit
		sizes[deficit]++
	}
}

// repairAreas moves the best-affinity vertices of area-rich clusters
// into clusters below the area floor until every cluster's area sum
// reaches minArea. A donor must stay at or above the floor after giving
// up a vertex, so repaired clusters are never re-broken.
func repairAreas(assign []int, cos [][]float64, k int, areas []float64, minArea float64) {
	areaSum := make([]float64, k)
	for i, c := range assign {
		areaSum[c] += areas[i]
	}
	tol := 1e-9 * (1 + minArea)
	for {
		deficit := -1
		for c := 0; c < k; c++ {
			if areaSum[c] < minArea-tol {
				deficit = c
				break
			}
		}
		if deficit == -1 {
			return
		}
		best, bestScore := -1, math.Inf(-1)
		for i, c := range assign {
			if c == deficit || areaSum[c]-areas[i] < minArea-tol {
				continue
			}
			if s := cos[i][deficit]; s > bestScore {
				bestScore = s
				best = i
			}
		}
		if best == -1 {
			return // nothing movable; leave as is
		}
		areaSum[assign[best]] -= areas[best]
		assign[best] = deficit
		areaSum[deficit] += areas[best]
	}
}

func contains(a []int, v int) bool {
	for _, x := range a {
		if x == v {
			return true
		}
	}
	return false
}
