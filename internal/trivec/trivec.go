// Package trivec implements two-eigenvector tripartitioning after
// Richardson, Mucha and Porter (Phys. Rev. E 80, 036111, the
// "spectral23" scheme): each vertex is embedded in the plane at the
// coordinates of the second and third Laplacian eigenvectors, and the
// plane is divided into three 120° sectors around the origin; the
// sector orientation is grid-searched and scored by net cut. The
// original formulation maximizes modularity from the leading vectors of
// the modularity matrix; this adaptation minimizes net cut from the
// trailing non-trivial Laplacian vectors, which plays the same
// geometric role for the clique-model embedding.
package trivec

import (
	"fmt"
	"math"

	"repro/internal/eigen"
	"repro/internal/hypergraph"
	"repro/internal/parallel"
	"repro/internal/partition"
)

// Options configures Partition.
type Options struct {
	// Angles is the rotation grid resolution over one 120° period
	// (default 24).
	Angles int
	// Workers bounds the goroutines scanning the rotation grid
	// (0 = process default). The result is identical at every value.
	Workers int
}

// Partition splits h's modules into three clusters from the
// decomposition's second and third eigenvectors. dec must hold at least
// three eigenpairs of h's clique-model Laplacian. Every cluster is
// non-empty; the search is deterministic (fixed grid, index ties, one
// sign canonicalization per eigenvector).
func Partition(h *hypergraph.Hypergraph, dec *eigen.Decomposition, o Options) (*partition.Partition, error) {
	n := h.NumModules()
	if n < 3 {
		return nil, fmt.Errorf("trivec: need >= 3 modules for a tripartition, have %d", n)
	}
	if dec == nil || dec.D() < 3 {
		d := 0
		if dec != nil {
			d = dec.D()
		}
		return nil, fmt.Errorf("trivec: need 3 eigenpairs, have %d", d)
	}
	if dec.Vectors.Rows != n {
		return nil, fmt.Errorf("trivec: decomposition over %d vertices, hypergraph has %d modules", dec.Vectors.Rows, n)
	}
	angles := o.Angles
	if angles <= 0 {
		angles = 24
	}
	x := dec.Vector(1)
	y := dec.Vector(2)
	canonSign(x)
	canonSign(y)

	// Each grid angle is scored independently; the slices are indexed
	// by angle so the scan shards without cross-worker state.
	cuts := make([]int, angles)
	parts := make([]*partition.Partition, angles)
	parallel.For(parallel.Workers(o.Workers), angles, 1, func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			theta := 2 * math.Pi / 3 * float64(s) / float64(angles)
			p := sectorAssign(x, y, theta)
			repair(x, y, theta, p)
			parts[s] = partition.MustNew(p, 3)
			cuts[s] = partition.NetCut(h, parts[s])
		}
	})
	best := 0
	for s := 1; s < angles; s++ {
		if cuts[s] < cuts[best] {
			best = s
		}
	}
	return parts[best], nil
}

// anchor returns the unit vector of sector c's axis at rotation theta.
func anchor(theta float64, c int) (ax, ay float64) {
	a := theta + 2*math.Pi/3*float64(c)
	return math.Cos(a), math.Sin(a)
}

// sectorAssign maps each vertex to the sector axis with the largest
// projection of its (x, y) embedding; ties (including vertices at the
// origin) go to the smallest sector index.
func sectorAssign(x, y []float64, theta float64) []int {
	assign := make([]int, len(x))
	for i := range x {
		bestC, bestDot := 0, math.Inf(-1)
		for c := 0; c < 3; c++ {
			ax, ay := anchor(theta, c)
			if dot := x[i]*ax + y[i]*ay; dot > bestDot {
				bestDot = dot
				bestC = c
			}
		}
		assign[i] = bestC
	}
	return assign
}

// repair guarantees three non-empty clusters: an empty sector steals,
// from the largest cluster, the vertex projecting furthest toward the
// empty sector's axis. Deterministic: ties break to the smallest
// cluster/vertex index. With n >= 3 at most two steals are needed.
func repair(x, y []float64, theta float64, assign []int) {
	for {
		var sizes [3]int
		for _, c := range assign {
			sizes[c]++
		}
		empty := -1
		for c := 0; c < 3; c++ {
			if sizes[c] == 0 {
				empty = c
				break
			}
		}
		if empty < 0 {
			return
		}
		donor := 0
		for c := 1; c < 3; c++ {
			if sizes[c] > sizes[donor] {
				donor = c
			}
		}
		ax, ay := anchor(theta, empty)
		bestV, bestDot := -1, math.Inf(-1)
		for i, c := range assign {
			if c != donor {
				continue
			}
			if dot := x[i]*ax + y[i]*ay; dot > bestDot {
				bestDot = dot
				bestV = i
			}
		}
		assign[bestV] = empty
	}
}

// canonSign flips v in place so its first entry of magnitude > 1e-12 is
// positive.
func canonSign(v []float64) {
	for _, x := range v {
		if x > 1e-12 {
			return
		}
		if x < -1e-12 {
			for i := range v {
				v[i] = -v[i]
			}
			return
		}
	}
}
