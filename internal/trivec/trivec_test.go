package trivec

import (
	"reflect"
	"testing"

	"repro/internal/eigen"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/partest"
	"repro/internal/partition"
)

func fullDec(t *testing.T, h *hypergraph.Hypergraph) *eigen.Decomposition {
	t.Helper()
	g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := partest.FullDecomposition(g)
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

func TestPartitionBasic(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		h := partest.RandomNetlist(24, 36, 4, seed)
		p, err := Partition(h, fullDec(t, h), Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if p.K != 3 || p.N() != h.NumModules() {
			t.Fatalf("seed %d: K=%d N=%d", seed, p.K, p.N())
		}
		for c, s := range p.Sizes() {
			if s == 0 {
				t.Fatalf("seed %d: cluster %d empty", seed, c)
			}
		}
	}
}

func TestPartitionFindsPlantedTriangle(t *testing.T) {
	// Three dense 6-module groups joined by three bridge nets: the
	// embedding separates the groups, so the sector search should cut
	// only (about) the bridges.
	b := hypergraph.NewBuilder()
	b.AddModules(18)
	for gI := 0; gI < 3; gI++ {
		base := gI * 6
		for i := 0; i < 6; i++ {
			for j := i + 1; j < 6; j++ {
				if err := b.AddNet("", base+i, base+j); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for gI := 0; gI < 3; gI++ {
		if err := b.AddNet("", gI*6, ((gI+1)%3)*6); err != nil {
			t.Fatal(err)
		}
	}
	h := b.Build()
	p, err := Partition(h, fullDec(t, h), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cut := partition.NetCut(h, p); cut > 3 {
		t.Fatalf("cut %d on the planted 3-community instance, want <= 3", cut)
	}
	sizes := p.Sizes()
	for c, s := range sizes {
		if s != 6 {
			t.Fatalf("cluster %d has %d modules, want 6 (sizes %v)", c, s, sizes)
		}
	}
}

func TestPartitionWorkerInvariant(t *testing.T) {
	h := partest.RandomNetlist(30, 50, 5, 4)
	dec := fullDec(t, h)
	base, err := Partition(h, dec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 8} {
		p, err := Partition(h, dec, Options{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base.Assign, p.Assign) {
			t.Fatalf("partition differs at workers=%d", w)
		}
	}
}

func TestPartitionSignInvariant(t *testing.T) {
	h := partest.RandomNetlist(20, 30, 4, 6)
	dec := fullDec(t, h)
	base, err := Partition(h, dec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j <= 2; j++ {
		for i := 0; i < dec.Vectors.Rows; i++ {
			dec.Vectors.Set(i, j, -dec.Vectors.At(i, j))
		}
	}
	flipped, err := Partition(h, dec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Assign, flipped.Assign) {
		t.Fatal("partition changed under eigenvector sign flips")
	}
}

func TestPartitionTinyAndValidation(t *testing.T) {
	h := partest.RandomNetlist(3, 2, 3, 1)
	p, err := Partition(h, fullDec(t, h), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for c, s := range p.Sizes() {
		if s != 1 {
			t.Fatalf("cluster %d has %d modules on n=3", c, s)
		}
	}
	h2 := partest.RandomNetlist(2, 1, 2, 1)
	if _, err := Partition(h2, fullDec(t, h2), Options{}); err == nil {
		t.Fatal("n=2 accepted for a tripartition")
	}
	if _, err := Partition(h, nil, Options{}); err == nil {
		t.Fatal("nil decomposition accepted")
	}
}
