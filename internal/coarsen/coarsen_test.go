package coarsen

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/partest"
	"repro/internal/partition"
)

func TestMatchIsInvolution(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		h := partest.RandomNetlist(40, 60, 5, seed)
		g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
		if err != nil {
			t.Fatal(err)
		}
		m := Match(g, nil, MatchOptions{})
		for i, j := range m {
			if j < 0 || j >= g.N() || m[j] != i {
				t.Fatalf("seed %d: match not an involution at %d: m[%d]=%d, m[%d]=%d", seed, i, i, j, j, m[j])
			}
		}
	}
}

func TestMatchWorkerInvariant(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		h := partest.RandomNetlist(60, 90, 6, seed)
		g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
		if err != nil {
			t.Fatal(err)
		}
		base := Match(g, nil, MatchOptions{Workers: 1})
		for _, w := range []int{2, 3, 4, 7, 8} {
			got := Match(g, nil, MatchOptions{Workers: w})
			if !reflect.DeepEqual(base, got) {
				t.Fatalf("seed %d: matching differs at workers=%d", seed, w)
			}
		}
	}
}

func TestMatchRespectsAreaCap(t *testing.T) {
	h := partest.RandomNetlist(30, 40, 4, 3)
	g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
	if err != nil {
		t.Fatal(err)
	}
	areas := make([]float64, g.N())
	for i := range areas {
		areas[i] = 1 + float64(i%5)
	}
	cap := 4.0
	m := Match(g, areas, MatchOptions{MaxArea: cap})
	matched := 0
	for i, j := range m {
		if j == i {
			continue
		}
		matched++
		if areas[i]+areas[j] > cap {
			t.Fatalf("pair (%d,%d) has combined area %v > cap %v", i, j, areas[i]+areas[j], cap)
		}
	}
	if matched == 0 {
		t.Fatal("area cap eliminated every match; expected some pairs under the cap")
	}
}

func TestContractPreservesCountAndArea(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		h := partest.RandomNetlist(50, 70, 5, seed)
		areas := make([]float64, h.NumModules())
		for i := range areas {
			areas[i] = 0.5 + float64((seed+int64(i))%7)
		}
		if err := h.SetAreas(areas); err != nil {
			t.Fatal(err)
		}
		g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
		if err != nil {
			t.Fatal(err)
		}
		lvl, err := Contract(h, Match(g, areas, MatchOptions{}))
		if err != nil {
			t.Fatal(err)
		}
		if got := lvl.Coarse.NumModules(); got != h.NumModules()-lvl.Merged {
			t.Fatalf("coarse has %d modules, want %d - %d", got, h.NumModules(), lvl.Merged)
		}
		counts := make([]int, lvl.Coarse.NumModules())
		for _, c := range lvl.Map {
			counts[c]++
		}
		total := 0
		for c, ct := range counts {
			if ct < 1 || ct > 2 {
				t.Fatalf("coarse module %d has multiplicity %d, want 1 or 2", c, ct)
			}
			total += ct
		}
		if total != h.NumModules() {
			t.Fatalf("multiplicities sum to %d, want %d", total, h.NumModules())
		}
		if df := math.Abs(lvl.Coarse.TotalArea() - h.TotalArea()); df > 1e-9*(1+h.TotalArea()) {
			t.Fatalf("total area drifted by %v", df)
		}
		if lvl.Coarse.NumNets()+lvl.DroppedNets != h.NumNets() {
			t.Fatalf("nets: %d kept + %d dropped != %d fine", lvl.Coarse.NumNets(), lvl.DroppedNets, h.NumNets())
		}
	}
}

func TestProjectPreservesCut(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		h := partest.RandomNetlist(50, 80, 6, seed)
		g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
		if err != nil {
			t.Fatal(err)
		}
		lvl, err := Contract(h, Match(g, nil, MatchOptions{}))
		if err != nil {
			t.Fatal(err)
		}
		for k := 2; k <= 4; k++ {
			cp := partest.RandomPartition(lvl.Coarse.NumModules(), k, seed*10+int64(k))
			fp, err := lvl.Project(cp, 0)
			if err != nil {
				t.Fatal(err)
			}
			coarseCut := partition.NetCut(lvl.Coarse, cp)
			fineCut := partition.NetCut(h, fp)
			if coarseCut != fineCut {
				t.Fatalf("seed %d k %d: coarse cut %d != projected fine cut %d", seed, k, coarseCut, fineCut)
			}
			serial, err := lvl.Project(cp, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial.Assign, fp.Assign) {
				t.Fatalf("seed %d k %d: projection differs between worker counts", seed, k)
			}
		}
	}
}

func TestContractRejectsBadMatching(t *testing.T) {
	h := partest.RandomNetlist(6, 4, 3, 1)
	if _, err := Contract(h, []int{0, 1, 2}); err == nil {
		t.Fatal("short matching accepted")
	}
	if _, err := Contract(h, []int{1, 2, 0, 3, 4, 5}); err == nil {
		t.Fatal("non-involution accepted")
	}
	if _, err := Contract(h, []int{9, 1, 2, 3, 4, 5}); err == nil {
		t.Fatal("out-of-range matching accepted")
	}
}
