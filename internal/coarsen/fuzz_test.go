package coarsen

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/partest"
	"repro/internal/partition"
)

// FuzzCoarsenUncoarsen drives Match/Contract/Project over generated
// netlists and asserts the contraction invariants the V-cycle relies
// on: every fine module lands in exactly one coarse module, total area
// is preserved, kept+dropped nets account for every fine net, and any
// coarse partitioning's net cut equals its fine projection's net cut.
func FuzzCoarsenUncoarsen(f *testing.F) {
	f.Add(uint8(8), uint8(6), uint8(3), int64(1), uint8(2), uint8(0))
	f.Add(uint8(40), uint8(60), uint8(5), int64(7), uint8(3), uint8(1))
	f.Add(uint8(120), uint8(200), uint8(8), int64(42), uint8(4), uint8(2))
	f.Add(uint8(2), uint8(0), uint8(2), int64(0), uint8(2), uint8(0))
	f.Add(uint8(65), uint8(33), uint8(12), int64(-9), uint8(5), uint8(3))
	f.Fuzz(func(t *testing.T, n, extra, maxPin uint8, seed int64, kSel, areaSel uint8) {
		if n < 2 {
			n = 2
		}
		h := partest.RandomNetlist(int(n), int(extra), int(maxPin), seed)
		var areas []float64
		if areaSel%2 == 1 {
			areas = make([]float64, h.NumModules())
			for i := range areas {
				areas[i] = 0.25 + float64((int(areaSel)+i)%9)
			}
			if err := h.SetAreas(areas); err != nil {
				t.Fatal(err)
			}
		}
		g, err := graph.FromHypergraph(h, graph.PartitioningSpecific, 0)
		if err != nil {
			t.Fatal(err)
		}
		var maxArea float64
		if areaSel >= 128 {
			maxArea = h.TotalArea() / 4
		}
		lvl, err := Contract(h, Match(g, areas, MatchOptions{MaxArea: maxArea}))
		if err != nil {
			t.Fatal(err)
		}

		// Vertex conservation: the projection map is a surjection onto
		// the coarse modules with multiplicities 1 or 2 summing to n.
		counts := make([]int, lvl.Coarse.NumModules())
		for i, c := range lvl.Map {
			if c < 0 || c >= len(counts) {
				t.Fatalf("module %d maps to out-of-range coarse module %d", i, c)
			}
			counts[c]++
		}
		sum := 0
		for c, ct := range counts {
			if ct < 1 || ct > 2 {
				t.Fatalf("coarse module %d has multiplicity %d", c, ct)
			}
			sum += ct
		}
		if sum != h.NumModules() {
			t.Fatalf("multiplicities sum to %d, want %d", sum, h.NumModules())
		}

		// Area conservation.
		if df := lvl.Coarse.TotalArea() - h.TotalArea(); df > 1e-9*(1+h.TotalArea()) || df < -1e-9*(1+h.TotalArea()) {
			t.Fatalf("total area drifted by %v", df)
		}
		if lvl.Coarse.NumNets()+lvl.DroppedNets != h.NumNets() {
			t.Fatalf("nets: %d kept + %d dropped != %d fine", lvl.Coarse.NumNets(), lvl.DroppedNets, h.NumNets())
		}

		// Cut preservation under projection, for a pseudo-random k-way
		// coarse partitioning.
		k := 2 + int(kSel)%3
		if k > lvl.Coarse.NumModules() {
			k = lvl.Coarse.NumModules()
		}
		if k >= 2 {
			cp := partest.RandomPartition(lvl.Coarse.NumModules(), k, seed^int64(kSel))
			fp, err := lvl.Project(cp, 0)
			if err != nil {
				t.Fatal(err)
			}
			if cc, fc := partition.NetCut(lvl.Coarse, cp), partition.NetCut(h, fp); cc != fc {
				t.Fatalf("coarse cut %d != projected fine cut %d", cc, fc)
			}
		}
	})
}
