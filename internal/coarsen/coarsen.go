// Package coarsen implements heavy-edge-matching coarsening of a
// netlist for the multilevel V-cycle (internal/multilevel): a matching
// is computed on the clique-model graph, matched module pairs are
// contracted into coarse modules with accumulated areas, and the coarse
// netlist keeps exactly the nets that still span more than one coarse
// module. The contraction is exact in the sense the V-cycle relies on:
// projecting any coarse partitioning back to the fine netlist preserves
// its net cut identically (see Level.Project).
//
// Matching uses deterministic handshake rounds so it can shard across
// workers (internal/parallel) while producing the same matching at
// every worker count: each round computes, per vertex, the heaviest
// eligible neighbour from the fixed adjacency order, then matches
// exactly the mutual ("handshake") pairs. Both phases write disjoint
// per-vertex state, so the worker count never changes the result.
package coarsen

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/parallel"
	"repro/internal/partition"
)

// MatchOptions configures Match.
type MatchOptions struct {
	// MaxArea caps the combined area of a matched pair; a merge that
	// would exceed it is skipped so no coarse module can grow heavy
	// enough to make downstream balance windows infeasible. <= 0
	// disables the cap.
	MaxArea float64
	// Workers bounds the goroutines used for the per-vertex scans
	// (0 = process default). The matching is identical at every value.
	Workers int
	// Rounds caps the handshake rounds (default 8). More rounds match
	// more vertices; unmatched vertices stay singletons.
	Rounds int
}

// Match computes a heavy-edge matching of g. areas[i] is module i's
// area (nil = unit areas). The result maps each vertex to its partner,
// or to itself if unmatched; it is an involution (match[match[i]] == i).
func Match(g *graph.Graph, areas []float64, o MatchOptions) []int {
	n := g.N()
	rounds := o.Rounds
	if rounds <= 0 {
		rounds = 8
	}
	workers := parallel.Workers(o.Workers)
	area := func(i int) float64 {
		if areas == nil {
			return 1
		}
		return areas[i]
	}
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	best := make([]int, n)
	for r := 0; r < rounds; r++ {
		// Phase 1: per-vertex heaviest eligible unmatched neighbour.
		// Weight ties break on a fixed hash of the edge, not on vertex
		// index: an index tie-break makes every vertex of a uniform
		// chain point at its smaller neighbour, which collapses the
		// handshake phase to one match per round. The hash decorrelates
		// pointing directions so a constant fraction of vertices pair
		// up each round, and it is a pure function of the edge, so the
		// scan stays deterministic and worker-invariant.
		parallel.For(workers, n, 64, func(_, lo, hi int) {
			for u := lo; u < hi; u++ {
				best[u] = -1
				if match[u] >= 0 {
					continue
				}
				bw := 0.0
				var bh uint64
				for _, hv := range g.Adj(u) {
					v := hv.To
					if v == u || match[v] >= 0 {
						continue
					}
					if o.MaxArea > 0 && area(u)+area(v) > o.MaxArea {
						continue
					}
					if hv.W > bw || (hv.W == bw && best[u] >= 0 && edgeHash(u, v) > bh) {
						bw = hv.W
						best[u] = v
						bh = edgeHash(u, v)
					}
				}
			}
		})
		if !handshake(match, best, workers) {
			break
		}
	}
	for i := range match {
		if match[i] < 0 {
			match[i] = i
		}
	}
	return match
}

// handshake is phase 2 of a matching round: mutual choices in best
// become matches. Only the smaller endpoint of a pair writes (best[v]
// has a unique value, so no other vertex writes match[v]); which pairs
// match is a pure function of best[], so the phase is worker-invariant.
// It reports whether any new pair matched.
func handshake(match, best []int, workers int) bool {
	var progress atomic.Bool
	parallel.For(workers, len(best), 64, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			v := best[u]
			if v <= u {
				continue
			}
			if best[v] == u {
				match[u] = v
				match[v] = u
				progress.Store(true)
			}
		}
	})
	return progress.Load()
}

// nbrScratch is the per-goroutine workspace MatchNetlist uses to
// accumulate one vertex's neighbour weights: a dense array kept zeroed
// between vertices via the touched list.
type nbrScratch struct {
	w       []float64
	touched []int
}

// MatchNetlist computes a heavy-edge matching directly on the netlist:
// neighbour weights are the clique-model expansion's edge weights,
// accumulated on the fly from net incidence, so the clique graph is
// never materialized. It applies the same heaviest-eligible-neighbour
// handshake rounds as Match; it exists because on large V-cycle levels
// building the expansion costs more than the whole matching.
func MatchNetlist(h *hypergraph.Hypergraph, model graph.CliqueModel, areas []float64, o MatchOptions) []int {
	n := h.NumModules()
	rounds := o.Rounds
	if rounds <= 0 {
		rounds = 8
	}
	workers := parallel.Workers(o.Workers)
	area := func(i int) float64 {
		if areas == nil {
			return 1
		}
		return areas[i]
	}
	cost := make([]float64, h.NumNets())
	for e, net := range h.Nets {
		cost[e] = model.EdgeCost(len(net))
	}
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	best := make([]int, n)
	// Chunk indices are not goroutine identities, so the dense scratch
	// is pooled. Results never depend on which scratch a chunk draws:
	// every vertex leaves w zeroed again, and the weight sum for a
	// vertex runs in NetsOf order — a fixed order, so the scan is
	// deterministic and worker-invariant exactly like Match's.
	pool := sync.Pool{New: func() any {
		return &nbrScratch{w: make([]float64, n), touched: make([]int, 0, 64)}
	}}
	for r := 0; r < rounds; r++ {
		parallel.For(workers, n, 64, func(_, lo, hi int) {
			sc := pool.Get().(*nbrScratch)
			for u := lo; u < hi; u++ {
				if match[u] >= 0 {
					best[u] = -1
					continue
				}
				best[u] = heaviestNeighbor(h, cost, sc, u, match, area, o.MaxArea)
			}
			pool.Put(sc)
		})
		if !handshake(match, best, workers) {
			break
		}
	}
	// Greedy serial fallback: on dense levels the weight profile is
	// hub-shaped — many vertices choose the same heaviest neighbour, so
	// mutual choices are rare and the handshake rounds leave most of the
	// level unmatched, which used to stretch V-cycles to dozens of
	// near-stalled levels. A sweep in index order matches each remaining
	// vertex to its heaviest still-unmatched neighbour; serial by design,
	// so it is trivially worker-invariant, and it makes the matching
	// maximal under the area cap.
	sc := pool.Get().(*nbrScratch)
	for u := 0; u < n; u++ {
		if match[u] >= 0 {
			continue
		}
		if v := heaviestNeighbor(h, cost, sc, u, match, area, o.MaxArea); v >= 0 {
			match[u] = v
			match[v] = u
		}
	}
	pool.Put(sc)
	for i := range match {
		if match[i] < 0 {
			match[i] = i
		}
	}
	return match
}

// heaviestNeighbor returns u's heaviest unmatched eligible neighbour
// under the clique-model net costs, or -1. Weights accumulate in NetsOf
// order and ties break on edgeHash, mirroring the handshake scan.
func heaviestNeighbor(h *hypergraph.Hypergraph, cost []float64, sc *nbrScratch, u int, match []int, area func(int) float64, maxArea float64) int {
	touched := sc.touched[:0]
	for _, e := range h.NetsOf(u) {
		c := cost[e]
		for _, v := range h.Nets[e] {
			if v == u {
				continue
			}
			if sc.w[v] == 0 {
				touched = append(touched, v)
			}
			sc.w[v] += c
		}
	}
	best, bw := -1, 0.0
	var bh uint64
	for _, v := range touched {
		wv := sc.w[v]
		sc.w[v] = 0
		if match[v] >= 0 {
			continue
		}
		if maxArea > 0 && area(u)+area(v) > maxArea {
			continue
		}
		if wv > bw || (wv == bw && best >= 0 && edgeHash(u, v) > bh) {
			bw = wv
			best = v
			bh = edgeHash(u, v)
		}
	}
	sc.touched = touched
	return best
}

// edgeHash is a fixed avalanche mix of an edge's endpoints, used only
// to break weight ties in Match.
func edgeHash(u, v int) uint64 {
	x := uint64(u)*0x9e3779b97f4a7c15 ^ uint64(v)*0xbf58476d1ce4e5b9
	x ^= x >> 31
	x *= 0x94d049bb133111eb
	x ^= x >> 29
	return x
}

// Level records one contraction step of the V-cycle: the fine netlist,
// the coarse netlist built from it, and the projection map between them.
type Level struct {
	// Fine is the netlist that was contracted.
	Fine *hypergraph.Hypergraph
	// Coarse is the contracted netlist. Its module areas are the sums
	// of the merged fine areas (unit fine areas become multiplicities).
	Coarse *hypergraph.Hypergraph
	// Map sends each fine module to its coarse module.
	Map []int
	// Merged counts the matched pairs that were contracted;
	// Coarse.NumModules() == Fine.NumModules() - Merged.
	Merged int
	// DroppedNets counts fine nets whose pins all collapsed into one
	// coarse module. Such nets can never be cut by a projected
	// partitioning, which is why dropping them preserves cuts exactly.
	DroppedNets int
}

// Contract builds the coarse netlist induced by a matching (as produced
// by Match: an involution over the fine modules). Matched pairs become
// one coarse module each, unmatched modules carry over; a net keeps the
// distinct coarse images of its pins, and is dropped when fewer than two
// remain. Parallel coarse nets (distinct fine nets with identical coarse
// pins) are kept distinct, so coarse net cuts count exactly the fine
// nets a projected partitioning cuts.
func Contract(h *hypergraph.Hypergraph, match []int) (*Level, error) {
	n := h.NumModules()
	if len(match) != n {
		return nil, fmt.Errorf("coarsen: matching covers %d modules, netlist has %d", len(match), n)
	}
	for i, j := range match {
		if j < 0 || j >= n || match[j] != i {
			return nil, fmt.Errorf("coarsen: matching is not an involution at module %d", i)
		}
	}
	cmap := make([]int, n)
	for i := range cmap {
		cmap[i] = -1
	}
	nc, merged := 0, 0
	for i := 0; i < n; i++ {
		if cmap[i] >= 0 {
			continue
		}
		cmap[i] = nc
		if j := match[i]; j != i {
			cmap[j] = nc
			merged++
		}
		nc++
	}
	// The coarse netlist is assembled without the Builder: pins are
	// already valid indices, so name indexing and per-net re-dedup would
	// only burn time on the V-cycle's hottest allocation path. One arena
	// backs every coarse net (NumPins bounds the total, dedup only
	// shrinks it, so the arena never reallocates).
	names := make([]string, nc)
	for i := range names {
		names[i] = "m" + strconv.Itoa(i)
	}
	nets := make([][]int, 0, len(h.Nets))
	netNames := make([]string, 0, len(h.Nets))
	arena := make([]int, 0, h.NumPins())
	dropped := 0
	buf := make([]int, 0, 16)
	for e, net := range h.Nets {
		buf = buf[:0]
		for _, m := range net {
			buf = append(buf, cmap[m])
		}
		sortSmall(buf)
		w := 1
		for r := 1; r < len(buf); r++ {
			if buf[r] != buf[w-1] {
				buf[w] = buf[r]
				w++
			}
		}
		if w < 2 {
			dropped++
			continue
		}
		start := len(arena)
		arena = append(arena, buf[:w]...)
		nets = append(nets, arena[start:len(arena):len(arena)])
		netNames = append(netNames, h.NetNames[e])
	}
	ch, err := hypergraph.FromParts(names, nets, netNames)
	if err != nil {
		return nil, fmt.Errorf("coarsen: coarse netlist: %w", err)
	}
	areas := make([]float64, nc)
	for i := 0; i < n; i++ {
		areas[cmap[i]] += h.Area(i)
	}
	if err := ch.SetAreas(areas); err != nil {
		return nil, fmt.Errorf("coarsen: coarse areas: %w", err)
	}
	return &Level{Fine: h, Coarse: ch, Map: cmap, Merged: merged, DroppedNets: dropped}, nil
}

// sortSmall sorts an int slice in place; coarse nets are almost always a
// handful of pins, where insertion sort beats sort.Ints' overhead.
func sortSmall(a []int) {
	if len(a) > 16 {
		sort.Ints(a)
		return
	}
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// Project lifts a partitioning of the coarse netlist to the fine one:
// every fine module inherits its coarse module's cluster. The projection
// preserves the net cut exactly — a kept net spans the same clusters
// before and after, and a dropped net lies inside one coarse module, so
// it is uncut on both sides.
func (l *Level) Project(p *partition.Partition, workers int) (*partition.Partition, error) {
	if p.N() != l.Coarse.NumModules() {
		return nil, fmt.Errorf("coarsen: partitioning covers %d modules, coarse netlist has %d", p.N(), l.Coarse.NumModules())
	}
	assign := make([]int, len(l.Map))
	parallel.For(parallel.Workers(workers), len(assign), 1024, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			assign[i] = p.Assign[l.Map[i]]
		}
	})
	return partition.New(assign, p.K)
}
