// Package multilevel implements the multilevel V-cycle that lifts every
// flat spectral method past the eigensolve ceiling: the netlist is
// coarsened by heavy-edge matching (internal/coarsen) until it is small
// enough to eigensolve comfortably, the injected solver partitions the
// coarsest netlist, and the solution is projected back level by level
// with Fiduccia–Mattheyses refinement after each projection.
//
// The driver is deterministic and worker-invariant end to end: matching
// and projection shard across workers without changing their results,
// refinement is serial, and the coarsest solve is whatever the injected
// Solve produces — the façade passes its worker-invariant MELO pipeline.
// Consequently the final partitioning is bitwise identical at every
// parallelism level.
package multilevel

import (
	"context"
	"fmt"
	"math"

	"repro/internal/coarsen"
	"repro/internal/fm"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/trace"
)

// Defaults used when the corresponding Options fields are zero.
const (
	// DefaultThreshold is the coarsening stop: levels are added until
	// the netlist has at most this many modules.
	DefaultThreshold = 128
	// DefaultMaxLevels caps the V-cycle depth.
	DefaultMaxLevels = 32
	// DefaultRefinePasses is the FM pass budget per level. Two passes
	// capture almost all of a level's improvement — later passes trade
	// a fraction of a percent of cut for a linear rescan of every level
	// — and keep the whole uncoarsening phase O(pins · levels).
	DefaultRefinePasses = 2
)

// Solve partitions the coarsest netlist. The façade injects its
// resilient MELO pipeline here; tests inject cheap stand-ins. The
// returned partitioning must be a complete K-way assignment with no
// empty cluster.
type Solve func(ctx context.Context, h *hypergraph.Hypergraph) (*partition.Partition, error)

// Options configures a V-cycle run.
type Options struct {
	// K is the number of clusters (>= 2).
	K int
	// Threshold stops coarsening once the netlist has at most this
	// many modules (default DefaultThreshold; never below 2·K so the
	// coarsest solve stays feasible).
	Threshold int
	// MaxLevels caps the number of coarsening levels (default
	// DefaultMaxLevels).
	MaxLevels int
	// RefinePasses is the FM pass budget per level (default
	// DefaultRefinePasses; < 0 disables refinement).
	RefinePasses int
	// MinFrac is the bipartition balance bound refinement maintains,
	// in area (default 0.45). A projected partitioning below the bound
	// is refined under its own (weaker) balance instead — refinement
	// never fails a feasible projection.
	MinFrac float64
	// Model is the clique expansion used for matching weights and the
	// KL polish.
	Model graph.CliqueModel
	// Workers bounds the goroutines for matching and projection
	// (0 = process default). Results are identical at every value.
	Workers int
}

// LevelStat records one uncoarsening step, coarsest-first.
type LevelStat struct {
	// FineN and CoarseN are the module counts on the two sides of the
	// level.
	FineN, CoarseN int
	// DroppedNets counts fine nets internal to one coarse module.
	DroppedNets int
	// ProjectedCut is the fine net cut right after projection (equal
	// to the coarse cut by construction); RefinedCut is the cut after
	// the level's refinement.
	ProjectedCut, RefinedCut int
}

// Stats reports what a V-cycle run did.
type Stats struct {
	// CoarsestN is the module count the solver saw; CoarsestCut its
	// net cut on the coarsest netlist.
	CoarsestN, CoarsestCut int
	// Levels holds one entry per uncoarsening step, coarsest-first.
	Levels []LevelStat
}

func (o Options) withDefaults() Options {
	if o.Threshold == 0 {
		o.Threshold = DefaultThreshold
	}
	if o.MaxLevels == 0 {
		o.MaxLevels = DefaultMaxLevels
	}
	if o.RefinePasses == 0 {
		o.RefinePasses = DefaultRefinePasses
	}
	if o.MinFrac == 0 {
		o.MinFrac = 0.45
	}
	return o
}

// PartitionCtx runs the V-cycle: coarsen h until it has at most
// Threshold modules, partition the coarsest netlist with solve, then
// project back level by level, refining after each projection. The
// returned Stats describe the cycle; they are valid whenever the error
// is nil.
func PartitionCtx(ctx context.Context, h *hypergraph.Hypergraph, opts Options, solve Solve) (*partition.Partition, *Stats, error) {
	o := opts.withDefaults()
	if solve == nil {
		return nil, nil, fmt.Errorf("multilevel: nil solver")
	}
	if o.K < 2 {
		return nil, nil, fmt.Errorf("multilevel: K = %d, want >= 2", o.K)
	}
	if math.IsNaN(o.MinFrac) || o.MinFrac <= 0 || o.MinFrac > 0.5 {
		return nil, nil, fmt.Errorf("multilevel: MinFrac = %v, want in (0, 0.5]", o.MinFrac)
	}
	if o.Threshold < 0 || o.MaxLevels < 0 {
		return nil, nil, fmt.Errorf("multilevel: Threshold/MaxLevels must be >= 0")
	}
	workers := parallel.Workers(o.Workers)
	stop := o.Threshold
	if stop < 2*o.K {
		stop = 2 * o.K
	}
	acap := areaCap(h.TotalArea(), o.K, o.MinFrac)

	// Coarsening phase: heavy-edge match on the clique-model graph,
	// contract, repeat until the netlist is small or matching stalls.
	var levels []*coarsen.Level
	cur := h
	for cur.NumModules() > stop && len(levels) < o.MaxLevels {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		_, span := trace.Start(ctx, "multilevel.coarsen",
			trace.Int("level", len(levels)), trace.Int("n", cur.NumModules()))
		lvl, err := coarsenOnce(cur, o.Model, acap, workers)
		if err != nil {
			span.End()
			return nil, nil, err
		}
		span.Annotate(trace.Int("coarse_n", lvl.Coarse.NumModules()),
			trace.Int("dropped_nets", lvl.DroppedNets))
		span.End()
		if lvl.Merged == 0 {
			break // matching stalled (area cap or isolated vertices)
		}
		levels = append(levels, lvl)
		cur = lvl.Coarse
		if lvl.Merged*50 < lvl.Fine.NumModules() {
			break // < 2% contraction: further levels won't pay for themselves
		}
	}

	// Coarsest solve.
	sctx, span := trace.Start(ctx, "multilevel.solve",
		trace.Int("n", cur.NumModules()), trace.Int("levels", len(levels)))
	p, err := solve(sctx, cur)
	span.End()
	if err != nil {
		return nil, nil, err
	}
	if p == nil || p.N() != cur.NumModules() || p.K != o.K {
		return nil, nil, fmt.Errorf("multilevel: solver returned an invalid partitioning")
	}
	stats := &Stats{CoarsestN: cur.NumModules(), CoarsestCut: partition.NetCut(cur, p)}

	// Uncoarsening phase: project and refine, coarsest level first.
	for i := len(levels) - 1; i >= 0; i-- {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		lvl := levels[i]
		_, span := trace.Start(ctx, "multilevel.refine",
			trace.Int("level", i), trace.Int("n", lvl.Fine.NumModules()))
		p, err = lvl.Project(p, workers)
		if err != nil {
			span.End()
			return nil, nil, err
		}
		st := LevelStat{
			FineN:        lvl.Fine.NumModules(),
			CoarseN:      lvl.Coarse.NumModules(),
			DroppedNets:  lvl.DroppedNets,
			ProjectedCut: partition.NetCut(lvl.Fine, p),
		}
		p, err = refineLevel(lvl.Fine, p, o)
		if err != nil {
			span.End()
			return nil, nil, err
		}
		st.RefinedCut = partition.NetCut(lvl.Fine, p)
		span.Annotate(trace.Int("projected_cut", st.ProjectedCut),
			trace.Int("refined_cut", st.RefinedCut))
		span.End()
		stats.Levels = append(stats.Levels, st)
	}
	return p, stats, nil
}

// areaCap bounds the area a coarse module may accumulate so the
// downstream balance windows stay reachable: for bipartitions the window
// [MinFrac·A, (1−MinFrac)·A] must be hittable by whole modules, for
// k-way the DP windows [A/2k, 2A/k] must each fit a combination of
// modules. The cap keeps every module at most one window-width heavy.
func areaCap(total float64, k int, minFrac float64) float64 {
	if k == 2 {
		w := (1 - 2*minFrac) * total
		if floor := total / 16; w < floor {
			w = floor
		}
		return w
	}
	return total / float64(2*k)
}

// coarsenOnce matches on the netlist's clique-model weights and
// contracts. Matching runs directly on net incidence
// (coarsen.MatchNetlist) — materializing the clique expansion per level
// used to dominate the whole V-cycle.
func coarsenOnce(h *hypergraph.Hypergraph, model graph.CliqueModel, acap float64, workers int) (*coarsen.Level, error) {
	var areas []float64
	if h.HasAreas() {
		areas = make([]float64, h.NumModules())
		for i := range areas {
			areas[i] = h.Area(i)
		}
	}
	// Two handshake rounds harvest the easy mutual pairs in parallel;
	// MatchNetlist's greedy fallback makes the matching maximal anyway,
	// so more rounds only rescan the level for vanishing returns.
	m := coarsen.MatchNetlist(h, model, areas, coarsen.MatchOptions{MaxArea: acap, Workers: workers, Rounds: 2})
	return coarsen.Contract(h, m)
}

// refineLevel post-processes one projected partitioning with FM under
// an achievable balance bound. FM works on the hypergraph's true net
// cut; a KL polish on the clique expansion was tried here and removed —
// it optimizes a proxy objective at O(n²) per level, which dominated
// the whole V-cycle on dense coarse levels.
func refineLevel(h *hypergraph.Hypergraph, p *partition.Partition, o Options) (*partition.Partition, error) {
	if o.RefinePasses < 0 {
		return p, nil
	}
	if o.K == 2 {
		eff := effectiveMinFrac(h, p, o.MinFrac)
		if eff > 0 {
			res, err := fm.Refine(h, p, fm.Options{MinFrac: eff, MaxPasses: o.RefinePasses})
			if err != nil {
				return nil, fmt.Errorf("multilevel: fm refine: %w", err)
			}
			p = res.Partition
		}
		return p, nil
	}
	res, err := fm.RefineKWay(h, p, fm.KWayOptions{PassesPerPair: o.RefinePasses})
	if err != nil {
		return nil, fmt.Errorf("multilevel: fm k-way refine: %w", err)
	}
	return res.Partition, nil
}

// effectiveMinFrac relaxes the configured bound to one the projected
// partitioning already satisfies: FM rejects inputs below its bound, and
// a projection of a balanced coarse solution can legitimately sit
// slightly outside the configured window (coarse modules are chunky).
// The cluster-area sum here matches fm.Refine's summation order, so the
// derived bound is feasible by construction. Returns 0 when refinement
// must be skipped (a degenerate empty side).
func effectiveMinFrac(h *hypergraph.Hypergraph, p *partition.Partition, minFrac float64) float64 {
	areas := partition.ClusterAreas(h, p)
	minSide := math.Min(areas[0], areas[1])
	total := h.TotalArea()
	if !(minSide > 0) || !(total > 0) {
		return 0
	}
	if frac := minSide / total; frac < minFrac {
		return frac
	}
	return minFrac
}
