package multilevel

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/partest"
	"repro/internal/partition"
)

// chunkSolve is a deterministic stand-in for the façade's coarsest
// solver: contiguous index ranges of nearly equal module count.
func chunkSolve(k int) Solve {
	return func(_ context.Context, h *hypergraph.Hypergraph) (*partition.Partition, error) {
		n := h.NumModules()
		assign := make([]int, n)
		for i := range assign {
			assign[i] = i * k / n
		}
		return partition.New(assign, k)
	}
}

func TestVCycleProducesValidPartition(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		for seed := int64(1); seed <= 5; seed++ {
			h := partest.RandomNetlist(400, 600, 5, seed)
			p, stats, err := PartitionCtx(context.Background(), h, Options{K: k, Threshold: 32}, chunkSolve(k))
			if err != nil {
				t.Fatalf("k=%d seed=%d: %v", k, seed, err)
			}
			if p.N() != h.NumModules() || p.K != k {
				t.Fatalf("k=%d seed=%d: got %d modules / %d clusters", k, seed, p.N(), p.K)
			}
			sizes := p.Sizes()
			for c, s := range sizes {
				if s == 0 {
					t.Fatalf("k=%d seed=%d: cluster %d empty", k, seed, c)
				}
			}
			if len(stats.Levels) == 0 {
				t.Fatalf("k=%d seed=%d: no coarsening levels on a 400-module netlist", k, seed)
			}
			if stats.CoarsestN > 400 {
				t.Fatalf("coarsest has %d modules", stats.CoarsestN)
			}
			// The first projection's cut equals the coarsest cut
			// (exact cut preservation) and refinement never worsens.
			if got := stats.Levels[0].ProjectedCut; got != stats.CoarsestCut {
				t.Fatalf("k=%d seed=%d: first projected cut %d != coarsest cut %d", k, seed, got, stats.CoarsestCut)
			}
			prev := stats.CoarsestCut
			for li, st := range stats.Levels {
				if st.ProjectedCut > prev && li > 0 {
					t.Fatalf("level %d: projected cut %d above previous refined %d", li, st.ProjectedCut, prev)
				}
				if st.RefinedCut > st.ProjectedCut {
					t.Fatalf("level %d: refinement worsened cut %d -> %d", li, st.ProjectedCut, st.RefinedCut)
				}
				prev = st.RefinedCut
			}
		}
	}
}

func TestVCycleWorkerInvariant(t *testing.T) {
	h := partest.RandomNetlist(300, 450, 6, 11)
	base, _, err := PartitionCtx(context.Background(), h, Options{K: 2, Threshold: 24, Workers: 1}, chunkSolve(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 4, 8} {
		p, _, err := PartitionCtx(context.Background(), h, Options{K: 2, Threshold: 24, Workers: w}, chunkSolve(2))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base.Assign, p.Assign) {
			t.Fatalf("partition differs at workers=%d", w)
		}
	}
}

func TestVCycleHeterogeneousAreas(t *testing.T) {
	h := partest.RandomNetlist(300, 400, 5, 5)
	areas := make([]float64, h.NumModules())
	for i := range areas {
		areas[i] = 0.5 + float64(i%13)
	}
	if err := h.SetAreas(areas); err != nil {
		t.Fatal(err)
	}
	p, _, err := PartitionCtx(context.Background(), h, Options{K: 2, Threshold: 32}, chunkSolve(2))
	if err != nil {
		t.Fatal(err)
	}
	ca := partition.ClusterAreas(h, p)
	if ca[0] == 0 || ca[1] == 0 {
		t.Fatalf("empty side: %v", ca)
	}
}

func TestVCycleSmallNetlistSkipsCoarsening(t *testing.T) {
	h := partest.RandomNetlist(20, 20, 4, 2)
	p, stats, err := PartitionCtx(context.Background(), h, Options{K: 2}, chunkSolve(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Levels) != 0 {
		t.Fatalf("expected no levels under the threshold, got %d", len(stats.Levels))
	}
	if stats.CoarsestN != h.NumModules() || p.N() != h.NumModules() {
		t.Fatalf("coarsest n %d, partition n %d, want %d", stats.CoarsestN, p.N(), h.NumModules())
	}
}

func TestVCycleSolverErrorPropagates(t *testing.T) {
	h := partest.RandomNetlist(300, 300, 4, 3)
	boom := errors.New("boom")
	_, _, err := PartitionCtx(context.Background(), h, Options{K: 2},
		func(context.Context, *hypergraph.Hypergraph) (*partition.Partition, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	_, _, err = PartitionCtx(context.Background(), h, Options{K: 2},
		func(_ context.Context, ch *hypergraph.Hypergraph) (*partition.Partition, error) {
			return partition.MustNew(make([]int, ch.NumModules()+1), 2), nil
		})
	if err == nil {
		t.Fatal("invalid solver output accepted")
	}
}

func TestVCycleCancellation(t *testing.T) {
	h := partest.RandomNetlist(500, 700, 5, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := PartitionCtx(ctx, h, Options{K: 2, Threshold: 16}, chunkSolve(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestVCycleValidation(t *testing.T) {
	h := partest.RandomNetlist(10, 10, 3, 1)
	cases := []struct {
		o    Options
		s    Solve
		want string
	}{
		{Options{K: 1}, chunkSolve(1), "K ="},
		{Options{K: 2, MinFrac: 0.7}, chunkSolve(2), "MinFrac"},
		{Options{K: 2, Threshold: -1}, chunkSolve(2), "Threshold"},
		{Options{K: 2}, nil, "nil solver"},
	}
	for i, c := range cases {
		if _, _, err := PartitionCtx(context.Background(), h, c.o, c.s); err == nil {
			t.Fatalf("case %d: invalid options accepted", i)
		}
	}
}

func TestVCycleDeterministicAcrossRuns(t *testing.T) {
	h := partest.RandomNetlist(350, 500, 5, 21)
	var first []int
	for run := 0; run < 3; run++ {
		p, _, err := PartitionCtx(context.Background(), h, Options{K: 3, Threshold: 32}, chunkSolve(3))
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			first = p.Assign
			continue
		}
		if !reflect.DeepEqual(first, p.Assign) {
			t.Fatalf("run %d differs", run)
		}
	}
}

func TestVCycleDeepCoarseningReachesThreshold(t *testing.T) {
	h := partest.RandomNetlist(2000, 3000, 4, 77)
	_, stats, err := PartitionCtx(context.Background(), h, Options{K: 2, Threshold: 64}, chunkSolve(2))
	if err != nil {
		t.Fatal(err)
	}
	if stats.CoarsestN > 200 {
		t.Fatalf("coarsest still has %d modules (threshold 64); levels: %v",
			stats.CoarsestN, fmt.Sprint(stats.Levels))
	}
}
