package jobs

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	spectral "repro"
	"repro/internal/resilience"
	"repro/internal/speccache"
	"repro/internal/trace"
)

// Config sizes a Pool. Zero fields select the noted defaults.
type Config struct {
	// Workers is the number of concurrent executors. Default
	// GOMAXPROCS, capped at 8.
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker;
	// submissions beyond it are rejected with ErrQueueFull. Default 64.
	QueueDepth int
	// CacheEntries bounds the spectrum cache (decompositions, not
	// bytes). Default 32.
	CacheEntries int
	// MaxJobs bounds the number of finished jobs retained for status
	// queries; the oldest finished jobs are forgotten first. Default
	// 1024.
	MaxJobs int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers > 8 {
			c.Workers = 8
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 32
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	return c
}

// StageStats accumulates latency for one pipeline stage across jobs.
type StageStats struct {
	Count        uint64  `json:"count"`
	TotalSeconds float64 `json:"totalSeconds"`
}

// Stats is a snapshot of the pool for /metrics.
type Stats struct {
	Pending, Running, Done, Failed, Cancelled int
	Submitted, Rejected                       uint64
	QueueDepth, QueueCapacity, Workers        int
	Cache                                     speccache.Stats
	QueueWait, Spectrum, Solve                StageStats
}

// Pool runs jobs on a fixed set of workers fed by a bounded FIFO queue.
type Pool struct {
	cfg        Config
	cache      *speccache.Cache
	queue      chan *Job
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	// runFn executes one job's work; tests substitute it to get
	// deterministic slow/blocking workloads.
	runFn func(ctx context.Context, j *Job) (*Result, error)

	// tracer, when set, receives per-job spans: a "job" root with a
	// retroactive "job.queue" child (queue wait) and a "job.run" child
	// wrapping the pipeline, whose own spans nest beneath it.
	tracer *trace.Tracer

	mu        sync.Mutex
	jobs      map[string]*Job
	order     []string // insertion order, for bounded retention
	seq       int
	closed    bool
	submitted uint64
	rejected  uint64
	waitAgg   StageStats
	specAgg   StageStats
	solveAgg  StageStats
}

// NewPool creates a stopped pool; call Start to launch the workers.
func NewPool(cfg Config) *Pool {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		cfg:        cfg,
		cache:      speccache.New(cfg.CacheEntries),
		queue:      make(chan *Job, cfg.QueueDepth),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
	}
	p.runFn = p.run
	return p
}

// Start launches the worker goroutines.
func (p *Pool) Start() {
	for i := 0; i < p.cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
}

// Cache exposes the spectrum cache (for metrics).
func (p *Pool) Cache() *speccache.Cache { return p.cache }

// SetTracer attaches a tracer to the pool's job executions. Call before
// Start; a nil tracer (the default) leaves jobs untraced.
func (p *Pool) SetTracer(t *trace.Tracer) { p.tracer = t }

// Submit validates and enqueues a request. It never blocks: a full
// queue returns ErrQueueFull, a shut-down pool ErrShuttingDown.
func (p *Pool) Submit(req Request) (*Job, error) {
	if req.Netlist == nil {
		return nil, fmt.Errorf("jobs: nil netlist")
	}
	if req.Kind == "" {
		req.Kind = KindPartition
	}
	if req.Kind != KindPartition && req.Kind != KindOrder {
		return nil, fmt.Errorf("jobs: unknown kind %q", req.Kind)
	}
	if err := spectral.ValidateNetlist(req.Netlist); err != nil {
		return nil, err
	}
	switch req.Kind {
	case KindPartition:
		if err := req.Opts.Validate(req.Netlist); err != nil {
			return nil, err
		}
	case KindOrder:
		if req.Scheme < 0 || req.Scheme > 3 {
			return nil, fmt.Errorf("jobs: scheme = %d, want 0..3", req.Scheme)
		}
		if req.D < 0 {
			return nil, fmt.Errorf("jobs: d = %d, want >= 0", req.D)
		}
	}
	if req.Hash == "" {
		req.Hash = speccache.Fingerprint(req.Netlist)
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrShuttingDown
	}
	p.seq++
	ctx, cancel := context.WithCancel(p.baseCtx)
	j := &Job{
		id:      fmt.Sprintf("job-%06d", p.seq),
		req:     req,
		ctx:     ctx,
		cancel:  cancel,
		state:   Pending,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	select {
	case p.queue <- j:
		p.jobs[j.id] = j
		p.order = append(p.order, j.id)
		p.submitted++
		p.retainLocked()
		return j, nil
	default:
		cancel()
		p.rejected++
		return nil, ErrQueueFull
	}
}

// retainLocked forgets the oldest finished jobs beyond MaxJobs. Pending
// and running jobs are never forgotten.
func (p *Pool) retainLocked() {
	excess := len(p.jobs) - p.cfg.MaxJobs
	if excess <= 0 {
		return
	}
	kept := p.order[:0]
	for _, id := range p.order {
		j := p.jobs[id]
		if excess > 0 && j != nil && isTerminal(j.State()) {
			delete(p.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	p.order = kept
}

func isTerminal(s State) bool { return s == Done || s == Failed || s == Cancelled }

// Job returns a tracked job by ID.
func (p *Pool) Job(id string) (*Job, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	return j, ok
}

// Jobs returns status snapshots of all tracked jobs, oldest first.
func (p *Pool) Jobs() []Status {
	p.mu.Lock()
	ids := append([]string(nil), p.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j, ok := p.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	p.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Cancel requests cancellation of a job. It returns false if the job is
// unknown or already finished.
func (p *Pool) Cancel(id string) bool {
	j, ok := p.Job(id)
	if !ok || isTerminal(j.State()) {
		return false
	}
	j.cancel()
	return true
}

// Shutdown stops accepting work and waits for the queue to drain. If
// ctx expires first, all pending and running jobs are cancelled and
// Shutdown waits for the workers to acknowledge. The spectrum cache
// survives until the pool is garbage collected; the pool cannot be
// restarted.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	if !already {
		close(p.queue)
	}
	p.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		p.baseCancel() // cancel running and queued jobs
		<-drained
	}
	p.baseCancel()
	return err
}

// Stats returns a snapshot of the pool's counters for /metrics.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	s := Stats{
		Submitted:     p.submitted,
		Rejected:      p.rejected,
		QueueDepth:    len(p.queue),
		QueueCapacity: p.cfg.QueueDepth,
		Workers:       p.cfg.Workers,
		QueueWait:     p.waitAgg,
		Spectrum:      p.specAgg,
		Solve:         p.solveAgg,
	}
	jobs := make([]*Job, 0, len(p.jobs))
	for _, j := range p.jobs {
		jobs = append(jobs, j)
	}
	p.mu.Unlock()
	for _, j := range jobs {
		switch j.State() {
		case Pending:
			s.Pending++
		case Running:
			s.Running++
		case Done:
			s.Done++
		case Failed:
			s.Failed++
		case Cancelled:
			s.Cancelled++
		}
	}
	s.Cache = p.cache.Stats()
	return s
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		p.execute(j)
	}
}

func (p *Pool) execute(j *Job) {
	now := time.Now()
	if err := j.ctx.Err(); err != nil {
		// Cancelled (or the pool shut down) while queued.
		j.finish(nil, err, true, now)
		return
	}
	ctx := j.ctx
	if p.tracer != nil {
		ctx = trace.WithTracer(ctx, p.tracer)
	}
	ctx, jspan := trace.Start(ctx, "job",
		trace.Str("job", j.id), trace.Str("kind", string(j.req.Kind)), trace.Str("method", j.req.Opts.Method.String()))
	// The queue wait already happened; record it retroactively as the
	// job's first child so queue-wait vs run time splits per trace.
	_, qspan := trace.StartAt(ctx, "job.queue", j.created)
	qspan.End()
	j.markStarted(now)
	rctx, rspan := trace.Start(ctx, "job.run")
	res, err := p.runFn(rctx, j)
	rspan.End()
	cancelled := err != nil && resilience.IsContextError(err)
	if err != nil {
		jspan.Annotate(trace.Str("error", err.Error()))
	}
	jspan.End()
	j.finish(res, err, cancelled, time.Now())
	p.mu.Lock()
	j.mu.Lock()
	p.waitAgg.Count++
	p.waitAgg.TotalSeconds += j.queueDur.Seconds()
	p.specAgg.Count++
	p.specAgg.TotalSeconds += j.spectrumDur.Seconds()
	p.solveAgg.Count++
	p.solveAgg.TotalSeconds += j.solveDur.Seconds()
	j.mu.Unlock()
	p.mu.Unlock()
}

// run executes one job through the façade with spectrum reuse.
func (p *Pool) run(ctx context.Context, j *Job) (*Result, error) {
	req := j.req
	switch req.Kind {
	case KindOrder:
		spec := spectral.OrderSpectrumSpec(req.D)
		sp, hit, err := p.spectrum(ctx, j, spec)
		if err != nil {
			return nil, err
		}
		t := time.Now()
		order, err := spectral.OrderModulesWithSpectrum(ctx, req.Netlist, sp, req.D, req.Scheme)
		j.recordSolve(time.Since(t))
		if err != nil {
			return nil, err
		}
		return &Result{Order: order, SpectrumCacheHit: hit}, nil
	default: // KindPartition
		var (
			sp  *spectral.Spectrum
			hit bool
			err error
		)
		if spec := req.Opts.SpectrumSpec(); spec.Needed {
			sp, hit, err = p.spectrum(ctx, j, spec)
			if err != nil {
				return nil, err
			}
		}
		t := time.Now()
		part, err := spectral.PartitionWithSpectrum(ctx, req.Netlist, sp, req.Opts)
		j.recordSolve(time.Since(t))
		if err != nil {
			return nil, err
		}
		return &Result{
			Assign:           part.Assign,
			K:                part.K,
			NetCut:           spectral.NetCut(req.Netlist, part),
			ScaledCost:       spectral.ScaledCost(req.Netlist, part),
			SpectrumCacheHit: hit,
		}, nil
	}
}

// spectrum fetches (or computes and caches) the decomposition the job
// needs. The compute itself runs under the pool's base context, not the
// job's: cancelling one job must not poison the shared compute other
// jobs may be waiting on; pool shutdown still aborts it.
func (p *Pool) spectrum(ctx context.Context, j *Job, spec spectral.SpectrumSpec) (*spectral.Spectrum, bool, error) {
	t := time.Now()
	defer func() { j.recordSpectrum(time.Since(t)) }()
	pairs := spec.D + 1
	if n := j.req.Netlist.NumModules(); pairs > n {
		pairs = n
	}
	key := speccache.Key{Hash: j.req.Hash, Model: spec.Model.String()}
	entry, hit, err := p.cache.GetOrCompute(ctx, key, pairs, func(cctx context.Context) (speccache.Entry, error) {
		// Detach from the job's cancellation but keep its trace: the
		// decompose spans nest under this job's cache.lookup span even
		// though the compute outlives the job on purpose.
		sp, err := spectral.DecomposeCtx(trace.Adopt(p.baseCtx, cctx), j.req.Netlist, spec.Model, spec.D)
		if err != nil {
			return speccache.Entry{}, err
		}
		return speccache.Entry{Value: sp, Pairs: sp.Pairs()}, nil
	})
	if err != nil {
		return nil, false, err
	}
	return entry.Value.(*spectral.Spectrum), hit, nil
}
